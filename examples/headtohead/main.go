// Headtohead: the same transpose-permutation workload on the Phastlane
// optical network and the Table 2 electrical baseline, swept from light
// load toward saturation - a single-pattern slice of the paper's Fig. 9.
package main

import (
	"fmt"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

func main() {
	pattern := traffic.Transpose(64)
	rates := []float64{0.02, 0.05, 0.10, 0.15, 0.20}

	fmt.Println("transpose traffic, 8x8 mesh: Phastlane (4-hop) vs electrical (3-cycle)")
	fmt.Println()
	fmt.Println("rate   optical-lat  electrical-lat  ratio  optical-W  electrical-W")
	for _, rate := range rates {
		opt := sim.RunRate(core.New(core.DefaultConfig()), sim.RateConfig{
			Pattern: pattern, Rate: rate, Seed: 9,
		})
		ele := sim.RunRate(electrical.New(electrical.DefaultConfig()), sim.RateConfig{
			Pattern: pattern, Rate: rate, Seed: 9,
		})
		if opt.Saturated || ele.Saturated {
			fmt.Printf("%.2f   (saturated)\n", rate)
			break
		}
		ol, el := opt.Run.Latency.Mean(), ele.Run.Latency.Mean()
		fmt.Printf("%.2f   %11.2f  %14.2f  %5.1f  %9.2f  %12.2f\n",
			rate, ol, el, el/ol,
			opt.Run.PowerW(photonic.DefaultClockGHz),
			ele.Run.PowerW(photonic.DefaultClockGHz))
	}
	fmt.Println()
	fmt.Println("the optical network delivers packets several times faster at a")
	fmt.Println("fraction of the power until both networks approach saturation")
}
