// Scalability: Phastlane beyond the paper's 8x8 mesh. The 14-group control
// format caps a packet's predecoded route; this build truncates over-long
// routes at an interim node that rebuilds the remainder, so 16x16 (256
// nodes) and larger meshes work transparently. Compare latency across mesh
// sizes at equal per-node load.
package main

import (
	"fmt"

	"phastlane/internal/core"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

func main() {
	fmt.Println("Phastlane mesh-size scaling, uniform traffic at 0.05 pkts/node/cycle")
	fmt.Println()
	fmt.Println("mesh   nodes  avg-latency  p99  drops")
	for _, size := range []int{4, 8, 16} {
		cfg := core.DefaultConfig()
		cfg.Width, cfg.Height = size, size
		res := sim.RunRate(core.New(cfg), sim.RateConfig{
			Pattern: traffic.UniformRandom(size*size, 11),
			Rate:    0.05, Warmup: 500, Measure: 3000, Seed: 11,
		})
		fmt.Printf("%2dx%-2d  %5d  %11.2f  %3.0f  %5d\n",
			size, size, size*size,
			res.Run.Latency.Mean(), res.Run.Latency.Percentile(99), res.Run.Drops)
	}
	fmt.Println()
	fmt.Println("latency grows sublinearly with diameter: a packet still covers")
	fmt.Println("4 links per cycle, so doubling the mesh radius adds ~2 cycles")
}
