// Quickstart: build an 8x8 Phastlane network, send a few packets -
// including a full broadcast - and watch single-cycle multi-hop delivery,
// interim-node pipelining, and the drop/retransmit path in action.
package main

import (
	"fmt"

	"phastlane/internal/core"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

func main() {
	// The paper's Table 1 configuration: 8x8 mesh, 4 hops per cycle,
	// 10-entry electrical buffers, 50-entry NIC, 64-way WDM.
	net := core.New(core.DefaultConfig())
	fmt.Printf("Phastlane %d-node network, %d hops per 4 GHz cycle\n\n",
		net.Nodes(), net.Config().MaxHops)

	// A short unicast: 3 links, well within the per-cycle hop budget,
	// delivered in the very cycle it launches.
	net.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})

	// Corner to corner: 14 links. The route is pre-segmented with
	// interim nodes every 4 links; each interim buffers the packet and
	// relaunches it next cycle.
	net.Inject(sim.Message{ID: 2, Src: 0, Dsts: []mesh.NodeID{63}, Op: packet.OpSynthetic})

	// A broadcast from the mesh centre: the NIC decomposes it into 16
	// multicast column sweeps whose taps deliver to every node.
	var everyone []mesh.NodeID
	for n := mesh.NodeID(0); n < 64; n++ {
		if n != 27 {
			everyone = append(everyone, n)
		}
	}
	net.Inject(sim.Message{ID: 3, Src: 27, Dsts: everyone, Op: packet.OpReadReq})

	// Step appends into a caller-owned buffer; reusing it across cycles
	// keeps the steady-state loop allocation-free.
	served := map[uint64]int{}
	var deliveries []sim.Delivery
	for cycle := 0; !net.Quiescent() && cycle < 100; cycle++ {
		deliveries = net.Step(deliveries[:0])
		for _, d := range deliveries {
			served[d.MsgID]++
		}
		if len(deliveries) > 0 {
			fmt.Printf("cycle %2d: %2d deliveries (msg1 %d/1, msg2 %d/1, broadcast %2d/63)\n",
				cycle, len(deliveries), served[1], served[2], served[3])
		}
	}

	run := net.Run()
	fmt.Printf("\ntotals: %d link traversals, %d buffered, %d dropped\n",
		run.LinkTraversals, run.BufferedPackets, run.Drops)
	fmt.Printf("energy: %.0f pJ optical, %.0f pJ electrical\n",
		run.OpticalEnergyPJ, run.ElectricalEnergyPJ)
}
