// Coherence: run the 64-core snoopy cache-coherent substrate over a
// SPLASH2-style workload, generate its network trace, and replay it on the
// Phastlane network - the full pipeline behind the paper's Fig. 10.
package main

import (
	"fmt"

	"phastlane/internal/coherence"
	"phastlane/internal/core"
	"phastlane/internal/packet"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
)

func main() {
	// Model the Ocean stencil benchmark with a short trace: bursty
	// sweeps that stress Phastlane's small electrical buffers.
	params, err := coherence.BenchmarkByName("Ocean")
	if err != nil {
		panic(err)
	}
	params.Messages = 6000
	cfg := coherence.DefaultConfig()
	fmt.Printf("generating %s trace (%s): 64 cores, %dKB L2, MSI over broadcast\n",
		params.Name, params.DataSet, cfg.L2SizeBytes>>10)

	tr, err := coherence.GenerateTrace(params, cfg, 42)
	if err != nil {
		panic(err)
	}
	counts := map[packet.Op]int{}
	for _, m := range tr.Messages {
		counts[m.Op]++
	}
	fmt.Printf("trace: %d messages (%d read-req, %d write-req/upgrades, %d replies, %d writebacks)\n\n",
		len(tr.Messages), counts[packet.OpReadReq], counts[packet.OpWriteReq],
		counts[packet.OpDataReply], counts[packet.OpWriteback])

	// Replay on the four-hop Phastlane network with the paper's 10
	// buffer entries, then with 64 - the buffering sensitivity that
	// Fig. 10 highlights for Ocean.
	for _, buffers := range []int{10, 64} {
		ncfg := core.DefaultConfig()
		ncfg.BufferEntries = buffers
		res, err := sim.RunTrace(core.New(ncfg), tr, sim.ReplayConfig{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("Optical4 with %2d buffers: avg latency %6.1f cycles, %6d drops, %.1f W\n",
			buffers, res.Run.Latency.Mean(), res.Run.Drops,
			res.Run.PowerW(photonic.DefaultClockGHz))
	}
}
