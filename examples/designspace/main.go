// Designspace: explore the Section 3 tradeoffs interactively - how the
// wavelength count, crossing efficiency, and per-cycle hop budget trade
// latency, peak optical power, and router area against each other, ending
// at the paper's chosen operating point (64 wavelengths, 4 hops).
package main

import (
	"fmt"

	"phastlane/internal/photonic"
)

func main() {
	fmt.Println("Phastlane router design space at 16 nm, 4 GHz")
	fmt.Println()

	// 1. How far can a packet fly in one cycle under each device
	// scaling assumption?
	for _, s := range photonic.Scenarios() {
		d := photonic.Delays16(s)
		cp := photonic.Paths(s, 64)
		fmt.Printf("%-12s tx %5.1f ps, rx %3.1f ps, packet-pass %5.1f ps -> %d hops/cycle\n",
			s, d.TransmitPs, d.ReceivePs, cp.PacketPass,
			photonic.MaxHopsPerCycle(s, 64, photonic.DefaultClockGHz))
	}
	fmt.Println()

	// 2. The wavelength count sets the waveguide count, and with it the
	// crossing losses and the router footprint.
	fmt.Println("wdm  waveguides  crossings/router  area(mm2)  peak-W(4hop,98%)")
	for _, wdm := range []int{32, 64, 128} {
		fmt.Printf("%3d  %10d  %16d  %9.2f  %16.1f\n",
			wdm, photonic.TotalWaveguides(wdm), photonic.CrossingsPerRouter(wdm),
			photonic.AreaAt(wdm).TotalMM2, photonic.PeakOpticalPowerW(wdm, 4, 0.98))
	}
	fmt.Println()

	// 3. The hop budget trades reach against laser power.
	fmt.Println("hops  peak-W(64λ,98%)  peak-W(64λ,99%)")
	for _, hops := range []int{2, 3, 4, 5, 8} {
		fmt.Printf("%4d  %15.1f  %15.1f\n", hops,
			photonic.PeakOpticalPowerW(64, hops, 0.98),
			photonic.PeakOpticalPowerW(64, hops, 0.99))
	}
	fmt.Println()

	sweet := photonic.SweetSpotWDM([]int{16, 32, 64, 128, 256})
	fmt.Printf("area sweet spot: %d wavelengths (%.2f mm2 vs %.2f mm2 tile)\n",
		sweet, photonic.AreaAt(sweet).TotalMM2, photonic.TileAreaSingleCoreMM2)
	fmt.Println("chosen operating point: 64 wavelengths, 4 hops per cycle, 98% crossing efficiency")
}
