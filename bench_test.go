// One benchmark per table and figure of the paper's evaluation. Each
// Benchmark regenerates its table/figure through internal/figures and
// prints the rows the paper reports (once), so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation at reduced scale. The cmd/ tools run the
// same harness at full scale. BenchmarkAblation* cover the design choices
// DESIGN.md calls out.
package phastlane_test

import (
	"fmt"
	"sync"
	"testing"

	"phastlane/internal/coherence"
	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/figures"
	"phastlane/internal/islip"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// printOnce guards table output so repeated bench iterations stay quiet.
var printOnce sync.Map

func printTable(key string, f func() fmt.Stringer) {
	if _, done := printOnce.LoadOrStore(key, true); !done {
		fmt.Println(f())
	}
}

// --- Section 3 design space (cheap analytic models) ---

func BenchmarkFig4ScalingTrends(b *testing.B) {
	printTable("fig4", func() fmt.Stringer { return figures.Fig4() })
	for i := 0; i < b.N; i++ {
		for _, s := range photonic.Scenarios() {
			photonic.DelaysAt(s, 16)
		}
	}
}

func BenchmarkFig5CriticalPaths(b *testing.B) {
	printTable("fig5", func() fmt.Stringer { return figures.Fig5() })
	for i := 0; i < b.N; i++ {
		for _, s := range photonic.Scenarios() {
			photonic.Paths(s, 64)
		}
	}
}

func BenchmarkFig6MaxHops(b *testing.B) {
	printTable("fig6", func() fmt.Stringer { return figures.Fig6() })
	for i := 0; i < b.N; i++ {
		for _, s := range photonic.Scenarios() {
			photonic.MaxHopsPerCycle(s, 64, photonic.DefaultClockGHz)
		}
	}
}

func BenchmarkFig7PeakPower(b *testing.B) {
	printTable("fig7", func() fmt.Stringer { return figures.Fig7() })
	for i := 0; i < b.N; i++ {
		photonic.PeakOpticalPowerW(64, 4, 0.98)
	}
}

func BenchmarkFig8Area(b *testing.B) {
	printTable("fig8", func() fmt.Stringer { return figures.Fig8() })
	for i := 0; i < b.N; i++ {
		photonic.AreaAt(64)
	}
}

func BenchmarkTable1OpticalConfig(b *testing.B) {
	printTable("table1", func() fmt.Stringer { return figures.Table1() })
	for i := 0; i < b.N; i++ {
		_ = core.DefaultConfig().Validate()
	}
}

func BenchmarkTable2ElectricalConfig(b *testing.B) {
	printTable("table2", func() fmt.Stringer { return figures.Table2() })
	for i := 0; i < b.N; i++ {
		_ = electrical.DefaultConfig().Validate()
	}
}

func BenchmarkTable3Workloads(b *testing.B) {
	printTable("table3", func() fmt.Stringer { return figures.Table3() })
	for i := 0; i < b.N; i++ {
		_ = coherence.Benchmarks()
	}
}

func BenchmarkTable4CacheConfig(b *testing.B) {
	printTable("table4", func() fmt.Stringer { return figures.Table4() })
	for i := 0; i < b.N; i++ {
		_ = coherence.DefaultConfig().Validate()
	}
}

// --- Fig. 9: synthetic latency versus injection rate ---

var (
	fig9Once sync.Once
	fig9Res  []figures.Fig9Result
)

func fig9() []figures.Fig9Result {
	fig9Once.Do(func() {
		fig9Res = figures.Fig9(figures.Fig9Opts{
			Rates:  []float64{0.02, 0.10, 0.20, 0.30, 0.40},
			Warmup: 300, Measure: 1200, Seed: 2,
		})
		for _, r := range fig9Res {
			fmt.Println(figures.Fig9Table(r))
		}
	})
	return fig9Res
}

func BenchmarkFig9SyntheticLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig9()
		// Report the headline low-load latency advantage
		// (Electrical3 / Optical4 at the lowest rate, averaged over
		// the four patterns).
		var ratio float64
		for _, r := range res {
			lat := map[string]float64{}
			for _, c := range r.Curves {
				lat[c.Config] = c.Points[0].AvgLatency
			}
			ratio += lat["Electrical3"] / lat["Optical4"]
		}
		b.ReportMetric(ratio/float64(len(res)), "latency-advantage-x")
	}
}

// --- Figs. 10 and 11: SPLASH2 speedup and power ---

var (
	splashOnce sync.Once
	splashRows []figures.SplashRow
	splashErr  error
)

// splash runs the full ten-benchmark evaluation once at a reduced trace
// length and is shared by the Fig. 10, Fig. 11 and headline benchmarks.
func splash(b *testing.B) []figures.SplashRow {
	splashOnce.Do(func() {
		splashRows, splashErr = figures.Splash(figures.SplashOpts{Messages: 6000, Seed: 1})
		if splashErr == nil {
			fmt.Println(figures.Fig10Table(splashRows))
			fmt.Println(figures.Fig11Table(splashRows))
		}
	})
	if splashErr != nil {
		b.Fatal(splashErr)
	}
	return splashRows
}

func BenchmarkFig10SplashSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := splash(b)
		h := figures.Summarise(rows, "Optical4")
		b.ReportMetric(h.GeoMeanSpeedup, "geomean-speedup-x")
	}
}

func BenchmarkFig11SplashPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := splash(b)
		h := figures.Summarise(rows, "Optical4")
		b.ReportMetric(h.PowerReduction*100, "power-reduction-%")
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := splash(b)
		h := figures.Summarise(rows, "Optical4")
		if _, done := printOnce.LoadOrStore("headline", true); !done {
			fmt.Printf("HEADLINE (paper: 2X speedup, 80%% less power): Optical4 %.2fx speedup, %.0f%% less power\n\n",
				h.GeoMeanSpeedup, h.PowerReduction*100)
		}
		b.ReportMetric(h.GeoMeanSpeedup, "speedup-x")
		b.ReportMetric(h.PowerReduction*100, "power-reduction-%")
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

func ablationRun(b *testing.B, benchmark string, mutate func(*core.Config)) float64 {
	b.Helper()
	tr, err := figures.TraceFor(benchmark, 4000, 17)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := sim.RunTrace(core.New(cfg), tr, sim.ReplayConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Run.Latency.Mean()
}

// BenchmarkAblationArbitration: the paper's footnote 3 - round-robin turn
// arbitration buys nothing over fixed priority.
func BenchmarkAblationArbitration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixed := ablationRun(b, "LU", nil)
		rr := ablationRun(b, "LU", func(c *core.Config) { c.RoundRobinTurns = true })
		b.ReportMetric(fixed, "fixed-latency")
		b.ReportMetric(rr, "roundrobin-latency")
	}
}

// BenchmarkAblationBypass: interim re-segmentation on relaunch (Section
// 2.1.3's "may choose to bypass the original interim node").
func BenchmarkAblationBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablationRun(b, "LU", nil)
		off := ablationRun(b, "LU", func(c *core.Config) { c.Bypass = false })
		b.ReportMetric(on, "bypass-latency")
		b.ReportMetric(off, "no-bypass-latency")
	}
}

// BenchmarkAblationBackoff: retransmission pacing after drops.
func BenchmarkAblationBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		weak := ablationRun(b, "Ocean", nil)
		strong := ablationRun(b, "Ocean", func(c *core.Config) {
			c.BackoffBase, c.BackoffMax = 16, 256
		})
		b.ReportMetric(weak, "backoff-1-8-latency")
		b.ReportMetric(strong, "backoff-16-256-latency")
	}
}

// BenchmarkAblationBuffering: the Fig. 10 buffer sweep on the
// buffer-hungriest workload.
func BenchmarkAblationBuffering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, buf := range []int{10, 32, 64, -1} {
			lat := ablationRun(b, "Ocean", func(c *core.Config) { c.BufferEntries = buf })
			name := fmt.Sprintf("buf%d-latency", buf)
			if buf < 0 {
				name = "bufInf-latency"
			}
			b.ReportMetric(lat, name)
		}
	}
}

// BenchmarkAblationMulticast: Section 2.1.4's multicast sweeps versus a
// 63-packet unicast storm per broadcast.
func BenchmarkAblationMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mcast := ablationRun(b, "Barnes", nil)
		storm := ablationRun(b, "Barnes", func(c *core.Config) { c.UnicastBroadcast = true })
		b.ReportMetric(mcast, "multicast-latency")
		b.ReportMetric(storm, "unicast-storm-latency")
	}
}

// --- Microbenchmarks of the hot paths ---

func BenchmarkOpticalStepLoaded(b *testing.B) {
	net := core.New(core.DefaultConfig())
	inj := traffic.NewInjector(traffic.UniformRandom(64, 1), 64, 0.10, 2)
	var id uint64
	var buf []sim.Delivery
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inj.Tick() {
			if net.NICFree(in.Src) > 0 {
				id++
				net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: []mesh.NodeID{in.Dst}, Op: packet.OpSynthetic})
			}
		}
		buf = net.Step(buf[:0])
	}
}

func BenchmarkElectricalStepLoaded(b *testing.B) {
	net := electrical.New(electrical.DefaultConfig())
	inj := traffic.NewInjector(traffic.UniformRandom(64, 1), 64, 0.10, 2)
	var id uint64
	var buf []sim.Delivery
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inj.Tick() {
			if net.NICFree(in.Src) > 0 {
				id++
				net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: []mesh.NodeID{in.Dst}, Op: packet.OpSynthetic})
			}
		}
		buf = net.Step(buf[:0])
	}
}

// stepSteadyState measures one warmed-up inject+Step cycle under
// sustained uniform-random load: the pools and scratch buffers are grown
// before the timer starts, so the measured loop must report 0 allocs/op.
// cmd/bench runs this pair and records the results in BENCH_kernel.json.
func stepSteadyState(b *testing.B, net sim.Network, rate float64) {
	inj := traffic.NewInjector(traffic.UniformRandom(net.Nodes(), 1), net.Nodes(), rate, 2)
	var id uint64
	var buf []sim.Delivery
	dsts := make([]mesh.NodeID, 1)
	cycle := func() {
		for _, in := range inj.Tick() {
			if net.NICFree(in.Src) > 0 {
				id++
				dsts[0] = in.Dst
				net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: dsts, Op: packet.OpSynthetic})
			}
		}
		buf = net.Step(buf[:0])
	}
	for i := 0; i < 500; i++ {
		cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

func BenchmarkStepSteadyState(b *testing.B) {
	b.Run("Optical", func(b *testing.B) {
		stepSteadyState(b, core.New(core.DefaultConfig()), 0.10)
	})
	b.Run("Electrical", func(b *testing.B) {
		stepSteadyState(b, electrical.New(electrical.DefaultConfig()), 0.10)
	})
}

// BenchmarkRunRate measures the full harness (injection bookkeeping,
// latency accounting, drain) at a comfortably low load and near the
// optical network's saturation knee. Run with -benchmem: the per-op
// allocations are dominated by one-time setup, not the cycle loop.
func BenchmarkRunRate(b *testing.B) {
	bench := func(build func() sim.Network, rate float64) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.RunRate(build(), sim.RateConfig{
					Pattern: traffic.UniformRandom(64, 1),
					Rate:    rate, Warmup: 100, Measure: 400, Seed: 2,
				})
			}
		}
	}
	b.Run("Optical/low", bench(func() sim.Network { return core.New(core.DefaultConfig()) }, 0.05))
	b.Run("Optical/saturation", bench(func() sim.Network { return core.New(core.DefaultConfig()) }, 0.40))
	b.Run("Electrical/low", bench(func() sim.Network { return electrical.New(electrical.DefaultConfig()) }, 0.05))
	b.Run("Electrical/saturation", bench(func() sim.Network { return electrical.New(electrical.DefaultConfig()) }, 0.25))
}

func BenchmarkBuildBroadcast(b *testing.B) {
	m := mesh.New(8, 8)
	for i := 0; i < b.N; i++ {
		packet.BuildBroadcast(m, mesh.NodeID(i%64), 4)
	}
}

func BenchmarkISLIPMatch(b *testing.B) {
	a := islip.New(5, 4, 4, 2)
	want := func(in, out int) bool { return (in+out)%2 == 0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Match(want)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p, err := coherence.BenchmarkByName("Water-Spatial")
	if err != nil {
		b.Fatal(err)
	}
	p.Messages = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coherence.GenerateTrace(p, coherence.DefaultConfig(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationArbiterPolicy: Section 7's future-work question -
// does a smarter electrical-buffer relaunch arbiter beat rotating priority?
func BenchmarkAblationArbiterPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rot := ablationRun(b, "Ocean", nil)
		old := ablationRun(b, "Ocean", func(c *core.Config) { c.Arbiter = core.ArbOldestFirst })
		lng := ablationRun(b, "Ocean", func(c *core.Config) { c.Arbiter = core.ArbLongestQueue })
		b.ReportMetric(rot, "rotating-latency")
		b.ReportMetric(old, "oldest-first-latency")
		b.ReportMetric(lng, "longest-queue-latency")
	}
}

// BenchmarkComparison: the four-architecture shoot-out quantifying the
// paper's Section 1/6 arguments (Phastlane vs electrical vs Corona-style
// bus vs circuit switching).
func BenchmarkComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := figures.Compare(figures.CompareOpts{
			Messages: 3000, Measure: 1000, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore("comparison", true); !done {
			fmt.Println(figures.CompareTable(results, nil))
		}
		for _, r := range results {
			if r.Config == "Optical4" {
				b.ReportMetric(r.TraceLatency, "phastlane-coherence-latency")
			}
		}
	}
}

// BenchmarkScalability: Phastlane beyond the paper's 8x8, using the
// truncated-control extension (interim nodes rebuild over-long routes).
func BenchmarkScalability(b *testing.B) {
	for _, size := range []int{4, 8, 16} {
		size := size
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Width, cfg.Height = size, size
				r := sim.RunRate(core.New(cfg), sim.RateConfig{
					Pattern: traffic.UniformRandom(size*size, 5),
					Rate:    0.05, Warmup: 200, Measure: 1000, Seed: 5,
				})
				b.ReportMetric(r.Run.Latency.Mean(), "latency-cycles")
			}
		})
	}
}

// BenchmarkProtocolComparison: snoopy (the paper's model, broadcast-heavy,
// where Phastlane's multicast sweeps shine) versus a directory protocol
// (beyond the paper: unicast-only traffic) on both networks.
func BenchmarkProtocolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, proto := range []coherence.Protocol{coherence.Snoopy, coherence.DirectoryMSI} {
			p, err := coherence.BenchmarkByName("Barnes")
			if err != nil {
				b.Fatal(err)
			}
			p.Messages = 4000
			p.Protocol = proto
			tr, err := coherence.GenerateTrace(p, coherence.DefaultConfig(), 29)
			if err != nil {
				b.Fatal(err)
			}
			opt, err := sim.RunTrace(core.New(core.DefaultConfig()), tr, sim.ReplayConfig{})
			if err != nil {
				b.Fatal(err)
			}
			ele, err := sim.RunTrace(electrical.New(electrical.DefaultConfig()), tr, sim.ReplayConfig{})
			if err != nil {
				b.Fatal(err)
			}
			speedup := ele.Run.Latency.Mean() / opt.Run.Latency.Mean()
			b.ReportMetric(speedup, proto.String()+"-speedup-x")
		}
	}
}
