module phastlane

go 1.22
