// Command compare runs the four-architecture shoot-out that quantifies the
// paper's Section 1/6 arguments: Phastlane versus the electrical baseline,
// a Corona-style MWSR token-bus optical crossbar, and a Columbia-style
// circuit-switched photonic mesh, on identical uniform traffic and an
// identical coherence trace.
//
// Usage:
//
//	compare
//	compare -benchmark Ocean -messages 8000
package main

import (
	"flag"
	"fmt"
	"os"

	"phastlane/internal/figures"
)

func main() {
	benchmark := flag.String("benchmark", "LU", "coherence workload for the trace round")
	messages := flag.Int("messages", 8000, "trace length")
	measure := flag.Int("measure", 3000, "measurement cycles per synthetic point")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	results, err := figures.Compare(figures.CompareOpts{
		Benchmark: *benchmark, Messages: *messages,
		Measure: *measure, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	fmt.Println(figures.CompareTable(results, nil))
	fmt.Println("Phastlane combines the bus designs' low unicast latency with")
	fmt.Println("switched multicast, avoiding the single broadcast bus (Corona) and")
	fmt.Println("the per-packet electrical setup round-trip (circuit switching).")
}
