// Command compare runs the N-way architecture shoot-out that quantifies
// the paper's Section 1/6 arguments: Phastlane versus the electrical
// baseline, a Corona-style MWSR token-bus optical crossbar, a
// Columbia-style circuit-switched photonic mesh, and the indirect
// fabrics behind the topology layer (64-endpoint Benes, radix-4
// Shufflecast), on identical uniform traffic and an identical coherence
// trace.
//
// Usage:
//
//	compare
//	compare -benchmark Ocean -messages 8000
package main

import (
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"

	"phastlane/internal/exp"
	"phastlane/internal/figures"
	"phastlane/internal/telemetry"
)

func main() {
	benchmark := flag.String("benchmark", "LU", "coherence workload for the trace round")
	messages := flag.Int("messages", 8000, "trace length")
	measure := flag.Int("measure", 3000, "measurement cycles per synthetic point")
	seed := cliflags.Seed(flag.CommandLine)
	traceOut := flag.String("trace-out", "", "re-run the uniform point and write a Perfetto trace to this file")
	metricsOut := flag.String("metrics-out", "", "write the per-node event matrices as CSV to this file")
	heatmap := flag.Bool("heatmap", false, "print link-utilization and drop heatmaps")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fail(err)
	}

	results, err := figures.Compare(figures.CompareOpts{
		Benchmark: *benchmark, Messages: *messages,
		Measure: *measure, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println(figures.CompareTable(results, nil))
	fmt.Println("Phastlane combines the bus designs' low unicast latency with")
	fmt.Println("switched multicast, avoiding the single broadcast bus (Corona) and")
	fmt.Println("the per-packet electrical setup round-trip (circuit switching).")

	bundle := figures.BundleOpts{TracePath: *traceOut, MetricsPath: *metricsOut, Heatmap: *heatmap}
	if !bundle.Enabled() {
		return
	}
	// Deep-dive every architecture at the shared uniform point. The
	// related-work networks carry no event instrumentation, so only their
	// harness-side time series fill in; the bundle says so per network.
	var inspects []figures.InspectOpts
	for _, cfg := range figures.CompareConfigs() {
		p, err := figures.PatternByName("Uniform", 64, *seed)
		if err != nil {
			fail(err)
		}
		inspects = append(inspects, figures.InspectOpts{
			Name: cfg.Name, Build: cfg.Build, Width: 8, Height: 8,
			Topo:    cfg.Topo,
			Pattern: p, Rate: 0.10, Measure: *measure, Seed: *seed,
		})
	}
	if _, err := figures.InspectBundle(inspects, exp.Options{}, bundle, os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) { cliflags.Fail("compare", err) }
