// Command faults studies how the two networks degrade as hardware dies.
// By default it sweeps randomly-placed fault plans along three axes —
// dead links, stuck routers, and optical control corruption — at a fixed
// offered load, and reports delivered throughput, latency and lost
// traffic for each fault level (the degradation curves). With -faults it
// instead runs one user-specified fault scenario on both simulators and
// reports the outcome.
//
// The JSON report contains no timestamps or wall-clock data: two runs
// with the same flags produce byte-identical output.
//
// Usage:
//
//	faults                                  # full degradation sweep
//	faults -csv                             # sweep as CSV
//	faults -json FAULTS_degradation.json    # sweep + JSON report
//	faults -faults 'seed=3;dead-link@9:E;stuck@27' -rate 0.1
//	faults -faults @plan.json               # JSON fault plan from a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/figures"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
	"phastlane/internal/traffic"
)

// report is the JSON document for the sweep mode. It carries only the
// sweep inputs and measured outputs — nothing host- or time-dependent —
// so repeated runs are byte-identical.
type report struct {
	Rate    float64                    `json:"offered_rate"`
	Warmup  int                        `json:"warmup_cycles"`
	Measure int                        `json:"measure_cycles"`
	Trials  int                        `json:"trials_per_point"`
	Seed    int64                      `json:"seed"`
	Points  []figures.DegradationPoint `json:"points"`
}

func main() {
	spec := flag.String("faults", "", "run one fault scenario: a fault spec, inline JSON, or @file")
	rate := flag.Float64("rate", 0.10, "offered load (packets/node/cycle)")
	warmup := flag.Int("warmup", 300, "warmup cycles per point")
	measure := flag.Int("measure", 1500, "measurement cycles per point")
	trials := flag.Int("trials", 2, "fault placements averaged per sweep point")
	seed := cliflags.Seed(flag.CommandLine)
	workers := flag.Int("workers", 0, "worker pool size (0 = one per core)")
	csv := flag.Bool("csv", false, "emit the sweep as CSV")
	jsonPath := flag.String("json", "", "also write the sweep report to this JSON file")
	plots := flag.Bool("plots", false, "render ASCII degradation plots")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fail(err)
	}

	if *spec != "" {
		runScenario(*spec, *rate, *warmup, *measure, *seed)
		return
	}

	pts := figures.Degradation(figures.DegradationOpts{
		Rate: *rate, Warmup: *warmup, Measure: *measure,
		Trials: *trials, Seed: *seed, Workers: *workers,
	})
	table := figures.DegradationTable(pts)
	if *csv {
		fmt.Print(table.CSV())
	} else {
		fmt.Println(table)
	}
	if *plots {
		for _, axis := range []string{"dead-links", "stuck-routers", "corruption"} {
			fmt.Println(figures.DegradationPlot(axis, pts))
		}
	}
	if *jsonPath != "" {
		doc, err := json.MarshalIndent(report{
			Rate: *rate, Warmup: *warmup, Measure: *measure,
			Trials: *trials, Seed: *seed, Points: pts,
		}, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(doc, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d points)\n", *jsonPath, len(pts))
	}
}

// runScenario drives one fault plan through both simulators at the given
// load and reports delivery outcomes side by side.
func runScenario(arg string, rate float64, warmup, measure int, seed int64) {
	plan, err := cliflags.ParseFaultArg(arg)
	if err != nil {
		fail(err)
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Fault scenario %q at offered %.3f", plan.Spec(), rate),
		Columns: []string{"config", "delivered", "throughput", "latency", "lost", "unreachable", "corrupt", "saturated"},
	}
	for _, name := range []string{"Optical4", "Electrical3"} {
		var net sim.Network
		switch name {
		case "Optical4":
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Faults = plan
			cfg.RetryLimit = 16
			cfg.LossTimeout = 4000
			if err := cfg.Validate(); err != nil {
				fail(err)
			}
			net = core.New(cfg)
		case "Electrical3":
			cfg := electrical.DefaultConfig()
			cfg.Seed = seed
			cfg.Faults = plan
			cfg.LossTimeout = 4000
			if err := cfg.Validate(); err != nil {
				fail(err)
			}
			net = electrical.New(cfg)
		}
		res := sim.RunRate(net, sim.RateConfig{
			Pattern: traffic.UniformRandom(64, seed+7),
			Rate:    rate, Warmup: warmup, Measure: measure, Seed: seed,
		})
		sat := ""
		if res.Saturated {
			sat = "sat"
		}
		t.AddRow(name, fmt.Sprint(res.Run.Delivered),
			stats.F(res.Run.ThroughputPerNode(net.Nodes())),
			stats.F(res.Run.Latency.Mean()),
			fmt.Sprint(res.Lost), fmt.Sprint(res.Run.Unreachable),
			fmt.Sprint(res.Run.Corrupt), sat)
	}
	fmt.Println(t)
}

func fail(err error) { cliflags.Fail("faults", err) }
