// Command why answers "where did the latency go?" for one (configuration,
// pattern, rate) point: it replays the run with per-packet latency
// provenance attached, deterministically samples the slowest packets, and
// prints a tail-blame report — the per-stage latency decomposition of the
// whole run and of the slow cohort, the routers and links ranked by
// queueing time they contributed, and the slowest packet's hop-by-hop
// span tree. The same report can be written as JSON (the CI gate parses
// it) and the sampled span trees as a Perfetto trace.
//
// The run is the same deterministic replay cmd/inspect performs, so a
// sweep point can be explained after the fact by re-running its seed.
//
// Usage:
//
//	why                                   # both networks, uniform 0.10
//	why -net optical -rate 0.3            # one network, past the knee
//	why -why-sample 128 -why-top 20       # bigger cohort, longer tables
//	why -why-out report.json              # machine-readable report
//	why -trace-out why.json               # span trees for ui.perfetto.dev
//	why -min-attrib 0.95                  # fail unless 95% attributed
//	why -telemetry-addr :9090             # live tail quantiles + stages
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"phastlane/internal/cliflags"
	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/exp"
	"phastlane/internal/figures"
	"phastlane/internal/provenance"
	"phastlane/internal/sim"
	"phastlane/internal/telemetry"
)

func main() {
	netFlag := flag.String("net", "both", "network to explain: both, optical, electrical (mesh only)")
	geo := cliflags.RegisterGeometry(flag.CommandLine)
	pattern := flag.String("pattern", "Uniform", "traffic pattern (Uniform, BitComp, BitRev, Shuffle, Transpose)")
	rate := flag.Float64("rate", 0.10, "injection rate (packets/node/cycle)")
	warmup := flag.Int("warmup", 500, "warmup cycles")
	measure := flag.Int("measure", 2000, "measurement cycles")
	seed := cliflags.Seed(flag.CommandLine)
	hops := flag.Int("hops", 4, "optical MaxHops (4, 5 or 8)")
	buffers := flag.Int("buffers", 10, "optical buffer entries (-1 = infinite)")
	delay := flag.Int("delay", 3, "electrical router delay in cycles (2 or 3)")
	whyOut := flag.String("why-out", "", "write the tail-blame reports as a JSON array to this file")
	traceOut := flag.String("trace-out", "", "write the sampled span trees as Perfetto trace-event JSON to this file")
	minAttrib := flag.Float64("min-attrib", 0.95,
		"fail unless every sampled packet's named stages explain at least this latency fraction")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per core)")
	why := provenance.RegisterAlwaysOn(flag.CommandLine)
	flag.Parse()
	why.Clamp()

	w, h := geo.Width, geo.Height
	var opts []figures.InspectOpts
	add := func(name string, build func(seed int64) sim.Network) {
		p, err := figures.PatternByName(*pattern, w*h, *seed)
		if err != nil {
			fail(err)
		}
		opts = append(opts, figures.InspectOpts{
			Name: name, Build: build, Width: w, Height: h,
			Pattern: p, Rate: *rate,
			Warmup: *warmup, Measure: *measure, Seed: *seed,
		})
	}
	if !geo.IsMesh() {
		// Indirect fabrics are explained through the generic fabric
		// simulator; -net selects among the mesh models only.
		tp, err := geo.Build()
		if err != nil {
			fail(err)
		}
		add(geo.Topo, func(seed int64) sim.Network {
			net, err := geo.FabricNetwork(0, 0, seed)
			if err != nil {
				fail(err)
			}
			return net
		})
		opts[0].Topo = tp
	} else {
		if *netFlag == "both" || *netFlag == "optical" {
			add("optical", func(seed int64) sim.Network {
				cfg := core.DefaultConfig()
				cfg.Width, cfg.Height = w, h
				cfg.MaxHops = *hops
				cfg.BufferEntries = *buffers
				cfg.Seed = seed
				if err := cfg.Validate(); err != nil {
					fail(err)
				}
				return core.New(cfg)
			})
		}
		if *netFlag == "both" || *netFlag == "electrical" {
			add("electrical", func(seed int64) sim.Network {
				cfg := electrical.DefaultConfig()
				cfg.Width, cfg.Height = w, h
				cfg.RouterDelay = *delay
				cfg.Seed = seed
				if err := cfg.Validate(); err != nil {
					fail(err)
				}
				return electrical.New(cfg)
			})
		}
	}
	if len(opts) == 0 {
		fail(fmt.Errorf("unknown -net %q (want both, optical or electrical)", *netFlag))
	}

	reg, err := telemetry.Start(*telemetryAddr, nil)
	if err != nil {
		fail(err)
	}
	for i := range opts {
		o := &opts[i]
		pc := provenance.Config{
			K: why.Sample, Seed: o.Seed, Width: o.Width, Height: o.Height,
		}
		if o.Topo != nil {
			pc.Label = o.Topo.NodeLabel
		}
		o.Prov = provenance.New(pc)
		if *telemetryAddr != "" {
			o.Prov.Register(reg, o.Name)
		}
	}

	results, err := figures.InspectBundle(opts, exp.Options{Workers: *parallel}, figures.BundleOpts{
		TracePath: *traceOut, WhyTop: why.Top,
	}, os.Stdout)
	if err != nil {
		fail(err)
	}

	var reports []*provenance.Report
	failed := false
	for i := range results {
		rep := results[i].Prov.Report(results[i].Name)
		reports = append(reports, rep)
		if rep.Cohort == 0 {
			fmt.Fprintf(os.Stderr, "why: %s completed no packets\n", rep.Name)
			failed = true
			continue
		}
		if rep.AttributionMin < *minAttrib {
			fmt.Fprintf(os.Stderr, "why: %s attribution min %.3f below -min-attrib %.3f\n",
				rep.Name, rep.AttributionMin, *minAttrib)
			failed = true
		}
	}
	if *whyOut != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*whyOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d reports)\n", *whyOut, len(reports))
	}
	if failed {
		os.Exit(1)
	}
}

func fail(err error) { cliflags.Fail("why", err) }
