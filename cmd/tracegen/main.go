// Command tracegen runs the snoopy cache-coherence substrate over a SPLASH2
// workload model and writes the resulting dependency-carrying packet trace
// to a file, which cmd/phastlane and cmd/electrical can replay - the same
// shared-trace methodology as the paper's Section 4.
//
// Usage:
//
//	tracegen -benchmark Ocean -out ocean.trace
//	tracegen -benchmark LU -messages 10000 -out lu.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"

	"phastlane/internal/coherence"
	"phastlane/internal/telemetry"
	"phastlane/internal/trace"
)

func main() {
	benchmark := flag.String("benchmark", "", "Table 3 benchmark name (required; see -list)")
	out := flag.String("out", "", "output trace file (required)")
	messages := flag.Int("messages", 0, "override trace length (0 = benchmark default)")
	protocol := flag.String("protocol", "snoopy", "coherence protocol: snoopy (paper) or directory")
	seed := cliflags.Seed(flag.CommandLine)
	list := flag.Bool("list", false, "list available benchmarks and exit")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fail(err)
	}

	if *list {
		for _, p := range coherence.Benchmarks() {
			fmt.Printf("%-16s %s (~%d messages)\n", p.Name, p.DataSet, p.Messages)
		}
		return
	}
	if *benchmark == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, err := coherence.BenchmarkByName(*benchmark)
	if err != nil {
		fail(err)
	}
	if *messages > 0 {
		p.Messages = *messages
	}
	switch *protocol {
	case "snoopy":
		p.Protocol = coherence.Snoopy
	case "directory":
		p.Protocol = coherence.DirectoryMSI
	default:
		fail(fmt.Errorf("unknown protocol %q", *protocol))
	}
	tr, err := coherence.GenerateTrace(p, coherence.DefaultConfig(), *seed)
	if err != nil {
		fail(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fail(err)
	}
	broadcasts := 0
	for _, m := range tr.Messages {
		if m.IsBroadcast() {
			broadcasts++
		}
	}
	fmt.Printf("%s: wrote %d messages (%d broadcasts, %d unicasts) to %s\n",
		p.Name, len(tr.Messages), broadcasts, len(tr.Messages)-broadcasts, *out)
}

func fail(err error) { cliflags.Fail("tracegen", err) }
