// Command inspect replays one (configuration, rate) point with the full
// observability bundle attached and dumps everything it sees: a summary
// table, per-node event matrices, cycle-windowed time series, ASCII
// link-utilization and drop heatmaps, and a Perfetto-compatible event
// trace that loads in ui.perfetto.dev or chrome://tracing. It is the deep
// dive behind a single point of a cmd/sweep curve.
//
// Usage:
//
//	inspect                                  # both networks, uniform 0.10
//	inspect -net optical -rate 0.3 -heatmap  # one network, past the knee
//	inspect -trace-out trace.json            # Perfetto trace of both
//	inspect -metrics-out m.csv -series-out s.csv
//	inspect -width 4 -height 4 -measure 500  # small mesh, short run
//	inspect -topo benes -width 8 -height 1   # deep-dive an indirect fabric
//	inspect -telemetry-addr :9090            # live metrics + pprof endpoint
//	inspect -why -rate 0.3                   # per-packet tail-blame report
package main

import (
	"flag"
	"fmt"
	"os"

	"phastlane/internal/cliflags"
	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/exp"
	"phastlane/internal/figures"
	"phastlane/internal/provenance"
	"phastlane/internal/sim"
	"phastlane/internal/telemetry"
)

func main() {
	netFlag := flag.String("net", "both", "network to inspect: both, optical, electrical (mesh only)")
	geo := cliflags.RegisterGeometry(flag.CommandLine)
	pattern := flag.String("pattern", "Uniform", "traffic pattern (Uniform, BitComp, BitRev, Shuffle, Transpose)")
	rate := flag.Float64("rate", 0.10, "injection rate (packets/node/cycle)")
	warmup := flag.Int("warmup", 500, "warmup cycles")
	measure := flag.Int("measure", 2000, "measurement cycles")
	window := flag.Int64("window", 0, "sampler bin width in cycles (0 = default)")
	seed := cliflags.Seed(flag.CommandLine)
	hops := flag.Int("hops", 4, "optical MaxHops (4, 5 or 8)")
	buffers := flag.Int("buffers", 10, "optical buffer entries (-1 = infinite)")
	delay := flag.Int("delay", 3, "electrical router delay in cycles (2 or 3)")
	traceOut := flag.String("trace-out", "", "write Perfetto trace-event JSON to this file")
	metricsOut := flag.String("metrics-out", "", "write per-node event matrices as CSV to this file")
	seriesOut := flag.String("series-out", "", "write cycle-windowed time series as CSV to this file")
	heatmap := flag.Bool("heatmap", false, "print link-utilization and drop heatmaps")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per core)")
	why := provenance.RegisterFlags(flag.CommandLine)
	flag.Parse()
	why.Clamp()

	w, h := geo.Width, geo.Height
	var opts []figures.InspectOpts
	add := func(name string, build func(seed int64) sim.Network) {
		p, err := figures.PatternByName(*pattern, w*h, *seed)
		if err != nil {
			fail(err)
		}
		opts = append(opts, figures.InspectOpts{
			Name: name, Build: build, Width: w, Height: h,
			Pattern: p, Rate: *rate,
			Warmup: *warmup, Measure: *measure,
			Window: *window, Seed: *seed,
		})
	}
	if !geo.IsMesh() {
		// Indirect fabrics deep-dive through the generic fabric simulator;
		// -net selects among the mesh models only.
		tp, err := geo.Build()
		if err != nil {
			fail(err)
		}
		add(geo.Topo, func(seed int64) sim.Network {
			net, err := geo.FabricNetwork(0, 0, seed)
			if err != nil {
				fail(err)
			}
			return net
		})
		opts[0].Topo = tp
	} else {
		if *netFlag == "both" || *netFlag == "optical" {
			add("optical", func(seed int64) sim.Network {
				cfg := core.DefaultConfig()
				cfg.Width, cfg.Height = w, h
				cfg.MaxHops = *hops
				cfg.BufferEntries = *buffers
				cfg.Seed = seed
				if err := cfg.Validate(); err != nil {
					fail(err)
				}
				return core.New(cfg)
			})
		}
		if *netFlag == "both" || *netFlag == "electrical" {
			add("electrical", func(seed int64) sim.Network {
				cfg := electrical.DefaultConfig()
				cfg.Width, cfg.Height = w, h
				cfg.RouterDelay = *delay
				cfg.Seed = seed
				if err := cfg.Validate(); err != nil {
					fail(err)
				}
				return electrical.New(cfg)
			})
		}
	}
	if len(opts) == 0 {
		fail(fmt.Errorf("unknown -net %q (want both, optical or electrical)", *netFlag))
	}

	// CPU profiles now come from the shared telemetry endpoint:
	// curl http://<addr>/debug/pprof/profile?seconds=10 during the replay.
	reg, err := telemetry.Start(*telemetryAddr, nil)
	if err != nil {
		fail(err)
	}
	if why.Why {
		// Pre-build the trackers so live tail quantiles land on the
		// telemetry endpoint while the replay runs.
		for i := range opts {
			o := &opts[i]
			pc := provenance.Config{
				K: why.Sample, Seed: o.Seed, Width: o.Width, Height: o.Height,
			}
			if o.Topo != nil {
				pc.Label = o.Topo.NodeLabel
			}
			o.Prov = provenance.New(pc)
			if *telemetryAddr != "" {
				o.Prov.Register(reg, o.Name)
			}
		}
	}

	_, err = figures.InspectBundle(opts, exp.Options{Workers: *parallel}, figures.BundleOpts{
		TracePath: *traceOut, MetricsPath: *metricsOut, SeriesPath: *seriesOut,
		Heatmap: *heatmap, WhyTop: why.Top,
	}, os.Stdout)
	if err != nil {
		fail(err)
	}
}

func fail(err error) { cliflags.Fail("inspect", err) }
