// Command electrical runs one baseline electrical-network simulation (the
// Table 2 virtual-channel router mesh) and reports latency, throughput and
// power, mirroring cmd/phastlane for head-to-head comparisons.
//
// With -topo benes or -topo shufflecast the run uses the generic fabric
// simulator over that topology with the same per-hop router delay
// (synthetic traffic only).
//
// Usage:
//
//	electrical -traffic Uniform -rate 0.1
//	electrical -delay 2 -trace ocean.trace
//	electrical -topo shufflecast -width 8 -height 1 -arity 2
package main

import (
	"flag"
	"fmt"
	"os"

	"phastlane/internal/cliflags"
	"phastlane/internal/electrical"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
	"phastlane/internal/telemetry"
	"phastlane/internal/trace"
	"phastlane/internal/traffic"
)

func main() {
	trafficName := flag.String("traffic", "Uniform", "pattern: Uniform, BitComp, BitRev, Shuffle, Transpose")
	rate := flag.Float64("rate", 0.05, "injection rate (packets/node/cycle)")
	tracePath := flag.String("trace", "", "replay a trace file instead of synthetic traffic")
	delay := flag.Int("delay", 3, "per-hop router delay in cycles (2 or 3)")
	geo := cliflags.RegisterGeometry(flag.CommandLine)
	measure := flag.Int("measure", 4000, "measurement cycles (synthetic traffic)")
	seed := cliflags.Seed(flag.CommandLine)
	faultSpec := flag.String("faults", "", "fault plan: spec string, inline JSON, or @file")
	lossTimeout := flag.Int64("loss-timeout", 0, "cycles before an undelivered packet is declared lost (0 = never)")
	ccFlags := cliflags.RegisterCC(flag.CommandLine)
	telFlags := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	var net sim.Network
	if geo.IsMesh() {
		cfg := electrical.DefaultConfig()
		cfg.Width, cfg.Height = geo.Width, geo.Height
		cfg.RouterDelay = *delay
		cfg.Seed = *seed
		cfg.LossTimeout = *lossTimeout
		if *faultSpec != "" {
			plan, err := cliflags.ParseFaultArg(*faultSpec)
			if err != nil {
				fail(err)
			}
			cfg.Faults = plan
		}
		if err := cfg.Validate(); err != nil {
			fail(err)
		}
		net = electrical.New(cfg)
	} else {
		if *tracePath != "" {
			fail(geo.RequireMesh("-trace replay"))
		}
		if *faultSpec != "" {
			fail(geo.RequireMesh("-faults"))
		}
		fnet, err := geo.FabricNetwork(*delay, *lossTimeout, *seed)
		if err != nil {
			fail(err)
		}
		net = fnet
		fmt.Printf("fabric %s: %d endpoints, %d nodes\n",
			geo.Topo, fnet.Topology().Endpoints(), fnet.Topology().Nodes())
	}
	tel, err := telFlags.StartRun()
	if err != nil {
		fail(err)
	}

	var res sim.Result
	if *tracePath != "" {
		if ccFlags.Enabled {
			fail(fmt.Errorf("-cc applies to synthetic-traffic runs, not -trace replay"))
		}
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fail(err)
		}
		res, err = sim.RunTrace(net, tr, sim.ReplayConfig{Telemetry: tel})
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d messages, makespan %d cycles\n", len(tr.Messages), res.Makespan)
	} else {
		pattern, err := patternByName(*trafficName, net.Nodes())
		if err != nil {
			fail(err)
		}
		gov, err := ccFlags.Governor(net.Nodes(), *seed)
		if err != nil {
			fail(err)
		}
		if gov != nil && tel != nil {
			gov.Register(tel.Reg)
		}
		res = sim.RunRate(net, sim.RateConfig{
			Pattern: pattern, Rate: *rate, Measure: *measure, Seed: *seed,
			Telemetry: tel, CC: gov,
		})
		fmt.Printf("pattern %s at rate %.3f over %d cycles\n", *trafficName, *rate, *measure)
		if gov != nil {
			fmt.Printf("cc: mean admitted rate %.4f pkts/node/cycle; %d injections paced\n",
				gov.MeanRate(), res.Paced)
		}
	}
	fmt.Printf("delivered %d messages; avg latency %.2f cycles (p99 %.0f)\n",
		res.Run.Delivered, res.Run.Latency.Mean(), res.Run.Latency.Percentile(99))
	fmt.Printf("throughput %.4f pkts/node/cycle; network power %.2f W\n",
		res.Run.ThroughputPerNode(net.Nodes()), res.Run.PowerW(photonic.DefaultClockGHz))
	if res.Lost > 0 {
		fmt.Printf("lost %d; unresolved %d\n", res.Lost, res.Unresolved)
	}
	if res.Saturated {
		fmt.Println("NOTE: the network saturated at this load")
	}
	if err := telFlags.Finish(tel, os.Stdout); err != nil {
		fail(err)
	}
}

func patternByName(name string, nodes int) (traffic.Pattern, error) {
	switch name {
	case "Uniform":
		return traffic.UniformRandom(nodes, 7), nil
	case "BitComp":
		return traffic.BitComplement(nodes), nil
	case "BitRev":
		return traffic.BitReverse(nodes), nil
	case "Shuffle":
		return traffic.Shuffle(nodes), nil
	case "Transpose":
		return traffic.Transpose(nodes), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

func fail(err error) { cliflags.Fail("electrical", err) }
