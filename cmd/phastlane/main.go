// Command phastlane runs one Phastlane optical-network simulation and
// reports latency, throughput, drops and power. Traffic is either a
// synthetic pattern at a fixed injection rate or a trace file produced by
// tracegen. With -topo benes or -topo shufflecast the run uses the
// generic fabric simulator over that topology instead of the mesh
// optical model (synthetic traffic only).
//
// Usage:
//
//	phastlane -traffic Uniform -rate 0.1
//	phastlane -traffic Transpose -rate 0.2 -hops 5 -buffers 32
//	phastlane -trace ocean.trace
//	phastlane -topo benes -width 8 -height 1 -rate 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"phastlane/internal/cliflags"
	"phastlane/internal/core"
	"phastlane/internal/packet"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
	"phastlane/internal/telemetry"
	"phastlane/internal/trace"
	"phastlane/internal/traffic"
)

func main() {
	trafficName := flag.String("traffic", "Uniform", "pattern: Uniform, BitComp, BitRev, Shuffle, Transpose")
	rate := flag.Float64("rate", 0.05, "injection rate (packets/node/cycle)")
	tracePath := flag.String("trace", "", "replay a trace file instead of synthetic traffic")
	hops := flag.Int("hops", 4, "max hops per cycle (4, 5, or 8)")
	geo := cliflags.RegisterGeometry(flag.CommandLine)
	buffers := flag.Int("buffers", 10, "electrical buffer entries per port (-1 = infinite)")
	measure := flag.Int("measure", 4000, "measurement cycles (synthetic traffic)")
	seed := cliflags.Seed(flag.CommandLine)
	faultSpec := flag.String("faults", "", "fault plan: spec string, inline JSON, or @file")
	retryLimit := flag.Int("retry-limit", 0, "drop-retry budget per packet (0 = unlimited)")
	lossTimeout := flag.Int64("loss-timeout", 0, "cycles before an undelivered packet is declared lost (0 = never)")
	ccFlags := cliflags.RegisterCC(flag.CommandLine)
	telFlags := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	var net sim.Network
	if geo.IsMesh() {
		cfg := core.DefaultConfig()
		cfg.Width, cfg.Height = geo.Width, geo.Height
		cfg.MaxHops = *hops
		cfg.BufferEntries = *buffers
		cfg.Seed = *seed
		cfg.RetryLimit = *retryLimit
		cfg.LossTimeout = *lossTimeout
		if *faultSpec != "" {
			plan, err := cliflags.ParseFaultArg(*faultSpec)
			if err != nil {
				fail(err)
			}
			cfg.Faults = plan
		}
		if err := cfg.Validate(); err != nil {
			fail(err)
		}
		net = core.New(cfg)
	} else {
		if *tracePath != "" {
			fail(geo.RequireMesh("-trace replay"))
		}
		if *faultSpec != "" {
			fail(geo.RequireMesh("-faults"))
		}
		if *retryLimit != 0 {
			fail(geo.RequireMesh("-retry-limit (fabric simulators have no drop/retry protocol)"))
		}
		fnet, err := geo.FabricNetwork(0, *lossTimeout, *seed)
		if err != nil {
			fail(err)
		}
		net = fnet
		fmt.Printf("fabric %s: %d endpoints, %d nodes\n",
			geo.Topo, fnet.Topology().Endpoints(), fnet.Topology().Nodes())
	}
	tel, err := telFlags.StartRun()
	if err != nil {
		fail(err)
	}

	var res sim.Result
	if *tracePath != "" {
		if ccFlags.Enabled {
			fail(fmt.Errorf("-cc applies to synthetic-traffic runs, not -trace replay"))
		}
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fail(err)
		}
		res, err = sim.RunTrace(net, tr, sim.ReplayConfig{Telemetry: tel})
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d messages, makespan %d cycles\n", len(tr.Messages), res.Makespan)
		for op := packet.Op(0); op < packet.NumOps; op++ {
			if l := res.LatencyByOp[op]; l != nil {
				fmt.Printf("  %-10s %6d msgs, avg latency %6.1f cycles\n", op, l.Count(), l.Mean())
			}
		}
	} else {
		pattern, err := patternByName(*trafficName, net.Nodes())
		if err != nil {
			fail(err)
		}
		gov, err := ccFlags.Governor(net.Nodes(), *seed)
		if err != nil {
			fail(err)
		}
		if gov != nil && tel != nil {
			gov.Register(tel.Reg)
		}
		res = sim.RunRate(net, sim.RateConfig{
			Pattern: pattern, Rate: *rate, Measure: *measure, Seed: *seed,
			Telemetry: tel, CC: gov,
		})
		fmt.Printf("pattern %s at rate %.3f over %d cycles\n", *trafficName, *rate, *measure)
		if gov != nil {
			fmt.Printf("cc: mean admitted rate %.4f pkts/node/cycle; %d injections paced\n",
				gov.MeanRate(), res.Paced)
		}
	}
	report(res, net.Nodes())
	if err := telFlags.Finish(tel, os.Stdout); err != nil {
		fail(err)
	}
}

func patternByName(name string, nodes int) (traffic.Pattern, error) {
	switch name {
	case "Uniform":
		return traffic.UniformRandom(nodes, 7), nil
	case "BitComp":
		return traffic.BitComplement(nodes), nil
	case "BitRev":
		return traffic.BitReverse(nodes), nil
	case "Shuffle":
		return traffic.Shuffle(nodes), nil
	case "Transpose":
		return traffic.Transpose(nodes), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

func report(res sim.Result, nodes int) {
	fmt.Printf("delivered %d messages; avg latency %.2f cycles (p99 %.0f, max %.0f)\n",
		res.Run.Delivered, res.Run.Latency.Mean(), res.Run.Latency.Percentile(99), res.Run.Latency.Max())
	fmt.Printf("throughput %.4f pkts/node/cycle; drops %d; retries %d; buffered %d\n",
		res.Run.ThroughputPerNode(nodes), res.Run.Drops, res.Run.Retries, res.Run.BufferedPackets)
	if res.Lost > 0 || res.Run.Unreachable > 0 || res.Run.Corrupt > 0 {
		fmt.Printf("lost %d; unreachable probes %d; corrupted hops %d; unresolved %d\n",
			res.Lost, res.Run.Unreachable, res.Run.Corrupt, res.Unresolved)
	}
	fmt.Printf("network power %.2f W (optical %.2f W, electrical %.2f W, leakage %.2f W)\n",
		res.Run.PowerW(photonic.DefaultClockGHz),
		powerShare(res, res.Run.OpticalEnergyPJ),
		powerShare(res, res.Run.ElectricalEnergyPJ),
		powerShare(res, res.Run.LeakagePJ))
	if res.Saturated {
		fmt.Println("NOTE: the network saturated at this load")
	}
}

func powerShare(res sim.Result, pj float64) float64 {
	total := res.Run.TotalEnergyPJ()
	if total == 0 {
		return 0
	}
	return res.Run.PowerW(photonic.DefaultClockGHz) * pj / total
}

func fail(err error) { cliflags.Fail("phastlane", err) }
