// Command phastlane runs one Phastlane optical-network simulation and
// reports latency, throughput, drops and power. Traffic is either a
// synthetic pattern at a fixed injection rate or a trace file produced by
// tracegen.
//
// Usage:
//
//	phastlane -traffic Uniform -rate 0.1
//	phastlane -traffic Transpose -rate 0.2 -hops 5 -buffers 32
//	phastlane -trace ocean.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"phastlane/internal/core"
	"phastlane/internal/packet"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
	"phastlane/internal/trace"
	"phastlane/internal/traffic"
)

func main() {
	trafficName := flag.String("traffic", "Uniform", "pattern: Uniform, BitComp, BitRev, Shuffle, Transpose")
	rate := flag.Float64("rate", 0.05, "injection rate (packets/node/cycle)")
	tracePath := flag.String("trace", "", "replay a trace file instead of synthetic traffic")
	hops := flag.Int("hops", 4, "max hops per cycle (4, 5, or 8)")
	buffers := flag.Int("buffers", 10, "electrical buffer entries per port (-1 = infinite)")
	measure := flag.Int("measure", 4000, "measurement cycles (synthetic traffic)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.MaxHops = *hops
	cfg.BufferEntries = *buffers
	cfg.Seed = *seed
	net := core.New(cfg)

	var res sim.Result
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fail(err)
		}
		res, err = sim.RunTrace(net, tr, sim.ReplayConfig{})
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d messages, makespan %d cycles\n", len(tr.Messages), res.Makespan)
		for op := packet.Op(0); op < packet.NumOps; op++ {
			if l := res.LatencyByOp[op]; l != nil {
				fmt.Printf("  %-10s %6d msgs, avg latency %6.1f cycles\n", op, l.Count(), l.Mean())
			}
		}
	} else {
		pattern, err := patternByName(*trafficName)
		if err != nil {
			fail(err)
		}
		res = sim.RunRate(net, sim.RateConfig{
			Pattern: pattern, Rate: *rate, Measure: *measure, Seed: *seed,
		})
		fmt.Printf("pattern %s at rate %.3f over %d cycles\n", *trafficName, *rate, *measure)
	}
	report(res, net.Nodes())
}

func patternByName(name string) (traffic.Pattern, error) {
	switch name {
	case "Uniform":
		return traffic.UniformRandom(64, 7), nil
	case "BitComp":
		return traffic.BitComplement(64), nil
	case "BitRev":
		return traffic.BitReverse(64), nil
	case "Shuffle":
		return traffic.Shuffle(64), nil
	case "Transpose":
		return traffic.Transpose(64), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

func report(res sim.Result, nodes int) {
	fmt.Printf("delivered %d messages; avg latency %.2f cycles (p99 %.0f, max %.0f)\n",
		res.Run.Delivered, res.Run.Latency.Mean(), res.Run.Latency.Percentile(99), res.Run.Latency.Max())
	fmt.Printf("throughput %.4f pkts/node/cycle; drops %d; retries %d; buffered %d\n",
		res.Run.ThroughputPerNode(nodes), res.Run.Drops, res.Run.Retries, res.Run.BufferedPackets)
	fmt.Printf("network power %.2f W (optical %.2f W, electrical %.2f W, leakage %.2f W)\n",
		res.Run.PowerW(photonic.DefaultClockGHz),
		powerShare(res, res.Run.OpticalEnergyPJ),
		powerShare(res, res.Run.ElectricalEnergyPJ),
		powerShare(res, res.Run.LeakagePJ))
	if res.Saturated {
		fmt.Println("NOTE: the network saturated at this load")
	}
}

func powerShare(res sim.Result, pj float64) float64 {
	total := res.Run.TotalEnergyPJ()
	if total == 0 {
		return 0
	}
	return res.Run.PowerW(photonic.DefaultClockGHz) * pj / total
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "phastlane:", err)
	os.Exit(1)
}
