// Command designspace prints the paper's Section 3 design-space analyses:
// device-delay scaling (Fig. 4), router critical paths (Fig. 5), per-cycle
// hop limits (Fig. 6), peak optical power (Fig. 7), router area (Fig. 8),
// and the configuration tables (Tables 1-4).
//
// Usage:
//
//	designspace            # print everything
//	designspace -fig 7     # one figure
//	designspace -tables    # only Tables 1-4
package main

import (
	"flag"
	"fmt"
	"os"

	"phastlane/internal/figures"
	"phastlane/internal/stats"
)

func main() {
	fig := flag.Int("fig", 0, "print a single figure (4-8); 0 prints all")
	tables := flag.Bool("tables", false, "print only Tables 1-4")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()
	render := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Println(t)
	}

	figs := map[int]func() *stats.Table{
		4: figures.Fig4,
		5: figures.Fig5,
		6: figures.Fig6,
		7: figures.Fig7,
		8: figures.Fig8,
	}
	if *tables {
		render(figures.Table1())
		render(figures.Table2())
		render(figures.Table3())
		render(figures.Table4())
		return
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "designspace: no figure %d (want 4-8)\n", *fig)
			os.Exit(2)
		}
		render(f())
		return
	}
	for _, n := range []int{4, 5, 6, 7, 8} {
		render(figs[n]())
	}
	render(figures.Table1())
	render(figures.Table2())
	render(figures.Table3())
	render(figures.Table4())
}
