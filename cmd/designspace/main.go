// Command designspace prints the paper's Section 3 design-space analyses:
// device-delay scaling (Fig. 4), router critical paths (Fig. 5), per-cycle
// hop limits (Fig. 6), peak optical power (Fig. 7), router area (Fig. 8),
// and the configuration tables (Tables 1-4). The analyses are pure
// computation; with -parallel they are generated concurrently on the exp
// worker pool and printed in the usual order.
//
// Usage:
//
//	designspace            # print everything
//	designspace -fig 7     # one figure
//	designspace -tables    # only Tables 1-4
//	designspace -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"

	"phastlane/internal/exp"
	"phastlane/internal/figures"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
)

func main() {
	fig := flag.Int("fig", 0, "print a single figure (4-8); 0 prints all")
	tables := flag.Bool("tables", false, "print only Tables 1-4")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per core)")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "designspace:", err)
		os.Exit(1)
	}
	render := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Println(t)
	}
	// renderAll generates the tables on the worker pool, then prints them
	// in submission order.
	renderAll := func(gens []func() *stats.Table) {
		for _, t := range exp.Run(gens, func(_ int, gen func() *stats.Table) *stats.Table {
			return gen()
		}, exp.Options{Workers: *parallel}) {
			render(t)
		}
	}

	figs := map[int]func() *stats.Table{
		4: figures.Fig4,
		5: figures.Fig5,
		6: figures.Fig6,
		7: figures.Fig7,
		8: figures.Fig8,
	}
	if *tables {
		renderAll([]func() *stats.Table{figures.Table1, figures.Table2, figures.Table3, figures.Table4})
		return
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "designspace: no figure %d (want 4-8)\n", *fig)
			os.Exit(2)
		}
		render(f())
		return
	}
	renderAll([]func() *stats.Table{
		figs[4], figs[5], figs[6], figs[7], figs[8],
		figures.Table1, figures.Table2, figures.Table3, figures.Table4,
	})
}
