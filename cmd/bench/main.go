// Command bench measures the steady-state simulation kernels of the two
// cycle-accurate simulators — the Phastlane optical mesh and the
// electrical VC-router baseline — and writes the results to a JSON report
// (BENCH_kernel.json by default).
//
// For each simulator it drives sustained uniform-random load through the
// redesigned zero-allocation Step(buf) API: after a pool-warming phase it
// times inject+Step cycles and counts heap allocations with
// runtime.MemStats. The report includes cycles/sec, ns and allocations
// per cycle, and the speedup over the pre-redesign kernel (baselines
// recorded below, measured on the same harness before the
// pooling/scratch-buffer rework).
//
// Usage:
//
//	bench                     # ~2s per kernel, writes BENCH_kernel.json
//	bench -benchtime 10s      # longer measurement
//	bench -out report.json    # alternate output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// Pre-redesign kernel timings (ns per inject+Step cycle at 0.10
// uniform-random load on the reference container, Intel Xeon @ 2.10GHz),
// captured immediately before the zero-allocation rework. Speedups in the
// report are relative to these; on different hardware the absolute
// numbers shift but the ratio stays meaningful because both sides of the
// comparison ran the same workload.
const (
	baselineOpticalNsPerCycle    = 16102.0
	baselineElectricalNsPerCycle = 296615.0
	baselineOpticalAllocs        = 68.0
	baselineElectricalAllocs     = 582.0
)

// kernelResult is one simulator's measurement in the JSON report.
type kernelResult struct {
	Name           string  `json:"name"`
	Cycles         int64   `json:"cycles"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	// Baseline fields describe the pre-redesign kernel this run is
	// compared against.
	BaselineNsPerCycle float64 `json:"baseline_ns_per_cycle"`
	BaselineAllocs     float64 `json:"baseline_allocs_per_cycle"`
	Speedup            float64 `json:"speedup"`
}

// report is the BENCH_kernel.json document.
type report struct {
	BenchtimeSec float64        `json:"benchtime_sec"`
	Rate         float64        `json:"injection_rate"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	Kernels      []kernelResult `json:"kernels"`
}

// measure drives net at the given load until benchtime elapses (after a
// 500-cycle pool-warming phase) and returns timing and allocation rates.
func measure(name string, net sim.Network, rate float64, benchtime time.Duration, baseNs, baseAllocs float64) kernelResult {
	inj := traffic.NewInjector(traffic.UniformRandom(net.Nodes(), 1), net.Nodes(), rate, 2)
	var id uint64
	var buf []sim.Delivery
	dsts := make([]mesh.NodeID, 1)
	cycle := func() {
		for _, in := range inj.Tick() {
			if net.NICFree(in.Src) > 0 {
				id++
				dsts[0] = in.Dst
				net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: dsts, Op: packet.OpSynthetic})
			}
		}
		buf = net.Step(buf[:0])
	}
	for i := 0; i < 500; i++ {
		cycle()
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var cycles int64
	var elapsed time.Duration
	start := time.Now()
	for elapsed < benchtime {
		for i := 0; i < 1000; i++ {
			cycle()
		}
		cycles += 1000
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)

	ns := float64(elapsed.Nanoseconds()) / float64(cycles)
	return kernelResult{
		Name:               name,
		Cycles:             cycles,
		NsPerCycle:         ns,
		CyclesPerSec:       1e9 / ns,
		AllocsPerCycle:     float64(after.Mallocs-before.Mallocs) / float64(cycles),
		BytesPerCycle:      float64(after.TotalAlloc-before.TotalAlloc) / float64(cycles),
		BaselineNsPerCycle: baseNs,
		BaselineAllocs:     baseAllocs,
		Speedup:            baseNs / ns,
	}
}

func main() {
	out := flag.String("out", "BENCH_kernel.json", "output path for the JSON report")
	benchtime := flag.Duration("benchtime", 2*time.Second, "measurement time per kernel")
	rate := flag.Float64("rate", 0.10, "uniform-random injection rate per node per cycle")
	flag.Parse()

	rep := report{
		BenchtimeSec: benchtime.Seconds(),
		Rate:         *rate,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
	}
	rep.Kernels = append(rep.Kernels, measure("optical",
		core.New(core.DefaultConfig()), *rate, *benchtime,
		baselineOpticalNsPerCycle, baselineOpticalAllocs))
	rep.Kernels = append(rep.Kernels, measure("electrical",
		electrical.New(electrical.DefaultConfig()), *rate, *benchtime,
		baselineElectricalNsPerCycle, baselineElectricalAllocs))

	for _, k := range rep.Kernels {
		fmt.Printf("%-11s %10.0f cycles/sec  %8.0f ns/cycle  %6.2f allocs/cycle  %5.2fx vs pre-redesign\n",
			k.Name, k.CyclesPerSec, k.NsPerCycle, k.AllocsPerCycle, k.Speedup)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
