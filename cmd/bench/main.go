// Command bench measures the steady-state simulation kernels of the two
// cycle-accurate simulators — the Phastlane optical mesh and the
// electrical VC-router baseline — and writes the results to a JSON report
// (BENCH_kernel.json by default).
//
// For each simulator it drives sustained uniform-random load through the
// zero-allocation Step(buf) API: after a pool-warming phase it times
// inject+Step cycles and counts heap allocations with runtime.MemStats.
// The report includes cycles/sec, ns and allocations per cycle, the mesh
// geometry and GOMAXPROCS of each entry, and the speedup over the
// pre-redesign kernel (baselines recorded below, measured on the same
// harness before the pooling/scratch-buffer rework).
//
// The -scale mode sweeps mesh sizes 8×8 → 64×64 at a low injection rate
// where idle routers dominate, measuring the optical simulator, the
// event-driven electrical kernel, and the dense-walk electrical reference
// at every size, and writes BENCH_scale.json with the event-vs-dense
// speedup per size.
//
// Usage:
//
//	bench                     # ~2s per kernel, writes BENCH_kernel.json
//	bench -benchtime 10s      # longer measurement
//	bench -out report.json    # alternate output path
//	bench -scale              # mesh-size sweep, writes BENCH_scale.json
//	bench -check              # regression gate vs the committed report
//	bench -check -tolerance 0.25
//	bench -history BENCH_history.jsonl
//
// With -check, bench measures as usual but compares against the
// committed report instead of overwriting it: any kernel whose ns/cycle
// or allocs/cycle regresses past the tolerance fails the run with exit
// code 1. -history appends every run to a JSONL log for trend analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"
	"runtime"
	"time"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/telemetry"
	"phastlane/internal/traffic"
)

// Pre-redesign kernel timings (ns per inject+Step cycle at 0.10
// uniform-random load on the reference container, Intel Xeon @ 2.10GHz),
// captured immediately before the zero-allocation rework. Speedups in the
// default report are relative to these; on different hardware the
// absolute numbers shift but the ratio stays meaningful because both
// sides of the comparison ran the same workload.
const (
	baselineOpticalNsPerCycle    = 16102.0
	baselineElectricalNsPerCycle = 296615.0
	baselineOpticalAllocs        = 68.0
	baselineElectricalAllocs     = 582.0
)

// kernelResult is one simulator's measurement in the JSON report.
type kernelResult struct {
	Name           string  `json:"name"`
	Width          int     `json:"width"`
	Height         int     `json:"height"`
	Nodes          int     `json:"nodes"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	Cycles         int64   `json:"cycles"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	// Baseline fields describe the kernel this run is compared against:
	// the pre-redesign kernel in the default report, the dense-walk
	// reference at the same size for event-driven entries in -scale.
	BaselineNsPerCycle float64 `json:"baseline_ns_per_cycle,omitempty"`
	BaselineAllocs     float64 `json:"baseline_allocs_per_cycle,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
}

// report is the BENCH_kernel.json document.
type report struct {
	BenchtimeSec float64        `json:"benchtime_sec"`
	Rate         float64        `json:"injection_rate"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	Kernels      []kernelResult `json:"kernels"`
}

// scaleSpeedup is one mesh size's event-driven vs dense-walk comparison.
type scaleSpeedup struct {
	Width        int     `json:"width"`
	Height       int     `json:"height"`
	Nodes        int     `json:"nodes"`
	DenseNs      float64 `json:"dense_ns_per_cycle"`
	EventNs      float64 `json:"event_ns_per_cycle"`
	EventSpeedup float64 `json:"event_speedup"`
}

// scaleReport is the BENCH_scale.json document.
type scaleReport struct {
	BenchtimeSec float64        `json:"benchtime_sec"`
	Rate         float64        `json:"injection_rate"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	Entries      []kernelResult `json:"entries"`
	Speedups     []scaleSpeedup `json:"speedups"`
}

// measure drives net at the given load until benchtime elapses (after a
// warmup pool-warming phase) and returns timing and allocation rates.
func measure(name string, net sim.Network, w, h int, rate float64, warmup int, benchtime time.Duration) kernelResult {
	inj := traffic.NewInjector(traffic.UniformRandom(net.Nodes(), 1), net.Nodes(), rate, 2)
	var id uint64
	var buf []sim.Delivery
	dsts := make([]mesh.NodeID, 1)
	cycle := func() {
		for _, in := range inj.Tick() {
			if net.NICFree(in.Src) > 0 {
				id++
				dsts[0] = in.Dst
				net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: dsts, Op: packet.OpSynthetic})
			}
		}
		buf = net.Step(buf[:0])
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var cycles int64
	var elapsed time.Duration
	start := time.Now()
	for elapsed < benchtime {
		// Small batches keep the time check honest even when one cycle
		// costs a millisecond (the dense walk on a 64×64 mesh).
		for i := 0; i < 100; i++ {
			cycle()
		}
		cycles += 100
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)

	ns := float64(elapsed.Nanoseconds()) / float64(cycles)
	return kernelResult{
		Name:           name,
		Width:          w,
		Height:         h,
		Nodes:          w * h,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Cycles:         cycles,
		NsPerCycle:     ns,
		CyclesPerSec:   1e9 / ns,
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(cycles),
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / float64(cycles),
	}
}

// writeReport marshals doc to path.
func writeReport(path string, doc any) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// historyEntry is one JSONL line of the -history log.
type historyEntry struct {
	Time       string         `json:"time"`
	Mode       string         `json:"mode"` // "kernel" or "scale"
	GoMaxProcs int            `json:"gomaxprocs"`
	Kernels    []kernelResult `json:"kernels"`
}

// appendHistory appends the run to the JSONL history log.
func appendHistory(path, mode string, kernels []kernelResult) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(historyEntry{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Mode:       mode,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Kernels:    kernels,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %s\n", path)
}

// checkAgainst compares the freshly measured kernels against the
// committed report at path, by kernel name. A kernel regresses when its
// ns/cycle exceeds the baseline by more than the tolerance fraction, or
// its allocs/cycle does (with a small absolute floor so a 0-alloc
// baseline tolerates measurement noise, not a real leak). Returns false
// on any regression.
func checkAgainst(path string, current []kernelResult, tol float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: -check baseline: %v\n", err)
		os.Exit(1)
	}
	// Both report shapes carry their kernels under a different key.
	var doc struct {
		Kernels []kernelResult `json:"kernels"`
		Entries []kernelResult `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "bench: -check baseline %s: %v\n", path, err)
		os.Exit(1)
	}
	base := make(map[string]kernelResult)
	for _, k := range append(doc.Kernels, doc.Entries...) {
		base[k.Name] = k
	}

	const allocFloor = 0.05 // absolute allocs/cycle slack on top of the fraction
	ok := true
	for _, cur := range current {
		b, found := base[cur.Name]
		if !found {
			fmt.Printf("CHECK %-22s no baseline entry, skipped\n", cur.Name)
			continue
		}
		nsLimit := b.NsPerCycle * (1 + tol)
		allocLimit := b.AllocsPerCycle*(1+tol) + allocFloor
		verdict := "ok"
		if cur.NsPerCycle > nsLimit || cur.AllocsPerCycle > allocLimit {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("CHECK %-22s ns/cycle %9.0f vs %9.0f (limit %9.0f)  allocs %5.2f vs %5.2f (limit %5.2f)  %s\n",
			cur.Name, cur.NsPerCycle, b.NsPerCycle, nsLimit,
			cur.AllocsPerCycle, b.AllocsPerCycle, allocLimit, verdict)
	}
	return ok
}

// runDefault measures both simulators at the default 8×8 size against the
// pre-redesign baselines and returns the kernels, writing the report to
// out when it is non-empty.
func runDefault(out string, rate float64, benchtime time.Duration) []kernelResult {
	rep := report{
		BenchtimeSec: benchtime.Seconds(),
		Rate:         rate,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
	}
	ocfg := core.DefaultConfig()
	opt := measure("optical", core.New(ocfg), ocfg.Width, ocfg.Height, rate, 500, benchtime)
	opt.BaselineNsPerCycle = baselineOpticalNsPerCycle
	opt.BaselineAllocs = baselineOpticalAllocs
	opt.Speedup = baselineOpticalNsPerCycle / opt.NsPerCycle

	ecfg := electrical.DefaultConfig()
	ele := measure("electrical", electrical.New(ecfg), ecfg.Width, ecfg.Height, rate, 500, benchtime)
	ele.BaselineNsPerCycle = baselineElectricalNsPerCycle
	ele.BaselineAllocs = baselineElectricalAllocs
	ele.Speedup = baselineElectricalNsPerCycle / ele.NsPerCycle

	rep.Kernels = append(rep.Kernels, opt, ele)
	for _, k := range rep.Kernels {
		fmt.Printf("%-11s %10.0f cycles/sec  %8.0f ns/cycle  %6.2f allocs/cycle  %5.2fx vs pre-redesign\n",
			k.Name, k.CyclesPerSec, k.NsPerCycle, k.AllocsPerCycle, k.Speedup)
	}
	if out != "" {
		writeReport(out, rep)
	}
	return rep.Kernels
}

// runScale sweeps mesh sizes at a low injection rate — the regime the
// event-driven kernel exists for, where nearly every router is idle in
// any given cycle — and returns the entries, writing BENCH_scale.json
// when out is non-empty.
func runScale(out string, rate float64, benchtime time.Duration, maxSize int) []kernelResult {
	rep := scaleReport{
		BenchtimeSec: benchtime.Seconds(),
		Rate:         rate,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
	}
	for _, size := range []int{8, 16, 32, 64} {
		if size > maxSize {
			break
		}
		// Warmup scales with the node count so free-list pools reach
		// their steady-state population before allocation counting.
		warmup := 500 + size*size/2
		name := func(k string) string { return fmt.Sprintf("%s-%dx%d", k, size, size) }

		ocfg := core.DefaultConfig()
		ocfg.Width, ocfg.Height = size, size
		opt := measure(name("optical"), core.New(ocfg), size, size, rate, warmup, benchtime)

		ecfg := electrical.DefaultConfig()
		ecfg.Width, ecfg.Height = size, size
		dense := measure(name("electrical-dense"), electrical.NewReference(ecfg), size, size, rate, warmup, benchtime)
		event := measure(name("electrical"), electrical.New(ecfg), size, size, rate, warmup, benchtime)
		event.BaselineNsPerCycle = dense.NsPerCycle
		event.BaselineAllocs = dense.AllocsPerCycle
		event.Speedup = dense.NsPerCycle / event.NsPerCycle

		rep.Entries = append(rep.Entries, opt, dense, event)
		rep.Speedups = append(rep.Speedups, scaleSpeedup{
			Width: size, Height: size, Nodes: size * size,
			DenseNs: dense.NsPerCycle, EventNs: event.NsPerCycle,
			EventSpeedup: event.Speedup,
		})
		fmt.Printf("%2dx%-2d  optical %8.0f ns/cycle   electrical dense %9.0f ns/cycle   event %8.0f ns/cycle   %6.2fx   %.2f allocs/cycle\n",
			size, size, opt.NsPerCycle, dense.NsPerCycle, event.NsPerCycle, event.Speedup, event.AllocsPerCycle)
	}
	if out != "" {
		writeReport(out, rep)
	}
	return rep.Entries
}

func main() {
	out := flag.String("out", "", "output path for the JSON report (default BENCH_kernel.json, or BENCH_scale.json with -scale)")
	benchtime := flag.Duration("benchtime", 2*time.Second, "measurement time per kernel entry")
	rate := flag.Float64("rate", 0.10, "injection rate per node per cycle (default mode)")
	scale := flag.Bool("scale", false, "run the mesh-size scaling sweep instead of the default report")
	scaleRate := flag.Float64("scalerate", 0.002, "injection rate per node per cycle (-scale mode)")
	maxSize := flag.Int("maxsize", 64, "largest mesh side in the -scale sweep")
	check := flag.Bool("check", false, "regression gate: compare against the committed report instead of overwriting it; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.10, "tolerated fractional ns/cycle and allocs/cycle growth in -check mode")
	baseline := flag.String("baseline", "", "baseline report for -check (default: the report path the run would write)")
	history := flag.String("history", "", "append this run's measurements to a JSONL history log")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	mode, defaultPath := "kernel", "BENCH_kernel.json"
	if *scale {
		mode, defaultPath = "scale", "BENCH_scale.json"
	}
	path := *out
	if path == "" {
		path = defaultPath
	}
	writePath := path
	if *check {
		// A gate run compares; it never overwrites the committed report.
		writePath = ""
	}

	var kernels []kernelResult
	if *scale {
		kernels = runScale(writePath, *scaleRate, *benchtime, *maxSize)
	} else {
		kernels = runDefault(writePath, *rate, *benchtime)
	}
	if *history != "" {
		appendHistory(*history, mode, kernels)
	}
	if *check {
		basePath := *baseline
		if basePath == "" {
			basePath = path
		}
		if !checkAgainst(basePath, kernels, *tolerance) {
			fmt.Fprintf(os.Stderr, "bench: regression against %s (tolerance %.0f%%)\n", basePath, *tolerance*100)
			os.Exit(1)
		}
		fmt.Printf("check passed against %s (tolerance %.0f%%)\n", basePath, *tolerance*100)
	}
}
