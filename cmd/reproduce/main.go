// Command reproduce regenerates the paper's entire evaluation in one run
// and writes each table/figure to a results directory as both an aligned
// text table and CSV: Figs. 4-8 and Tables 1-4 (design space), Fig. 9
// (synthetic sweeps), Figs. 10-11 (SPLASH2 speedup and power), the
// headline summary, and the beyond-the-paper architecture comparison and
// sensitivity sweep. The simulation grids fan out over a worker pool;
// results are bit-identical for any worker count.
//
// Usage:
//
//	reproduce -out results/              # full scale (several minutes)
//	reproduce -out results/ -quick       # reduced scale (tens of seconds)
//	reproduce -out results/ -parallel 4  # explicit worker count (0 = all cores)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"phastlane/internal/cliflags"
	"time"

	"phastlane/internal/exp"
	"phastlane/internal/figures"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced-scale run")
	seed := cliflags.Seed(flag.CommandLine)
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per core)")
	quiet := flag.Bool("quiet", false, "suppress progress log lines")
	traceOut := flag.Bool("trace-out", false, "write a Perfetto trace of the inspection stage to <out>/inspect_trace.json")
	metricsOut := flag.Bool("metrics-out", false, "write per-node event matrices to <out>/inspect_metrics.csv")
	heatmap := flag.Bool("heatmap", false, "print link-utilization and drop heatmaps for the inspection stage")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fail(err)
	}

	progress := func(label string) func(done, total int) {
		if *quiet {
			return nil
		}
		return exp.Logger(os.Stderr, label, 2*time.Second)
	}
	start := time.Now()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	write := func(name string, t *stats.Table) {
		if err := os.WriteFile(filepath.Join(*out, name+".txt"), []byte(t.String()), 0o644); err != nil {
			fail(err)
		}
		if err := os.WriteFile(filepath.Join(*out, name+".csv"), []byte(t.CSV()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%.1fs elapsed)\n", name, time.Since(start).Seconds())
	}

	// Design space: cheap, always full scale.
	write("fig4_scaling", figures.Fig4())
	write("fig5_critical_paths", figures.Fig5())
	write("fig6_max_hops", figures.Fig6())
	write("fig7_peak_power", figures.Fig7())
	write("fig8_area", figures.Fig8())
	write("table1_optical_config", figures.Table1())
	write("table2_electrical_config", figures.Table2())
	write("table3_benchmarks", figures.Table3())
	write("table4_cache_config", figures.Table4())

	// Fig. 9 sweeps.
	f9 := figures.Fig9Opts{Seed: *seed, Workers: *parallel, Progress: progress("fig9")}
	if *quick {
		f9.Rates = []float64{0.02, 0.10, 0.20}
		f9.Warmup, f9.Measure = 300, 1000
	}
	for _, res := range figures.Fig9(f9) {
		write("fig9_"+res.Pattern, figures.Fig9Table(res))
	}

	// Figs. 10-11.
	so := figures.SplashOpts{Seed: *seed, Workers: *parallel, Progress: progress("splash")}
	if *quick {
		so.Messages = 5000
	}
	rows, err := figures.Splash(so)
	if err != nil {
		fail(err)
	}
	write("fig10_speedup", figures.Fig10Table(rows))
	write("fig11_power", figures.Fig11Table(rows))
	h := figures.Summarise(rows, "Optical4")
	headline := fmt.Sprintf("Optical4 headline: %.2fx geomean network speedup, %.0f%% lower network power (paper: 2X, 80%%)\n",
		h.GeoMeanSpeedup, h.PowerReduction*100)
	if err := os.WriteFile(filepath.Join(*out, "headline.txt"), []byte(headline), 0o644); err != nil {
		fail(err)
	}
	fmt.Print(headline)

	// Beyond the paper.
	co := figures.CompareOpts{Seed: *seed, Workers: *parallel, Progress: progress("compare")}
	if *quick {
		co.Messages, co.Measure = 3000, 1000
	}
	cmp, err := figures.Compare(co)
	if err != nil {
		fail(err)
	}
	write("comparison_architectures", figures.CompareTable(cmp, nil))

	sv := figures.SensitivityOpts{Seed: *seed, Benchmark: "Barnes", Workers: *parallel, Progress: progress("sensitivity")}
	if *quick {
		sv.Messages = 3000
	}
	pts, err := figures.Sensitivity(sv)
	if err != nil {
		fail(err)
	}
	write("sensitivity_knobs", figures.SensitivityTable(pts, sv.Benchmark))

	// Observability deep dive: the headline pair on uniform traffic at
	// 0.10 packets/node/cycle, dumped as trace + matrices + series.
	bundle := figures.BundleOpts{Heatmap: *heatmap}
	if *traceOut {
		bundle.TracePath = filepath.Join(*out, "inspect_trace.json")
	}
	if *metricsOut {
		bundle.MetricsPath = filepath.Join(*out, "inspect_metrics.csv")
		bundle.SeriesPath = filepath.Join(*out, "inspect_series.csv")
	}
	if bundle.Enabled() {
		warmup, measure := 1000, 4000
		if *quick {
			warmup, measure = 300, 1000
		}
		var inspects []figures.InspectOpts
		for _, cfg := range []figures.NetConfig{figures.Optical4, figures.Electrical3} {
			p, err := figures.PatternByName("Uniform", 64, *seed)
			if err != nil {
				fail(err)
			}
			inspects = append(inspects, figures.InspectOpts{
				Name: cfg.Name, Build: cfg.Build, Width: 8, Height: 8,
				Pattern: p, Rate: 0.10, Warmup: warmup, Measure: measure, Seed: *seed,
			})
		}
		if _, err := figures.InspectBundle(inspects, exp.Options{Workers: *parallel}, bundle, os.Stdout); err != nil {
			fail(err)
		}
	}
	fmt.Printf("reproduce: done in %.1fs\n", time.Since(start).Seconds())
}

func fail(err error) { cliflags.Fail("reproduce", err) }
