// Command splash regenerates Figs. 10 and 11: per-benchmark network speedup
// and network power for the SPLASH2 workload models across every Section 5
// configuration, plus the paper's headline summary (2X speedup at 80% lower
// power for the four-hop network).
//
// Usage:
//
//	splash                          # all ten benchmarks, full traces
//	splash -benchmarks Ocean,FMM    # a subset
//	splash -messages 8000           # shorter traces for a quick look
//	splash -summary                 # headline numbers only
package main

import (
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"
	"strings"

	"phastlane/internal/figures"
	"phastlane/internal/telemetry"
)

func main() {
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark names (default: all ten)")
	messages := flag.Int("messages", 0, "override trace length per benchmark (0 = full)")
	seed := cliflags.Seed(flag.CommandLine)
	summary := flag.Bool("summary", false, "print only the headline numbers")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "splash:", err)
		os.Exit(1)
	}

	opts := figures.SplashOpts{Messages: *messages, Seed: *seed}
	if *benchmarks != "" {
		for _, b := range strings.Split(*benchmarks, ",") {
			opts.Benchmarks = append(opts.Benchmarks, strings.TrimSpace(b))
		}
	}
	rows, err := figures.Splash(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splash:", err)
		os.Exit(1)
	}
	if !*summary {
		if *csv {
			fmt.Print(figures.Fig10Table(rows).CSV())
			fmt.Print(figures.Fig11Table(rows).CSV())
		} else {
			fmt.Println(figures.Fig10Table(rows))
			fmt.Println(figures.Fig11Table(rows))
		}
	}
	for _, cfg := range []string{"Optical4", "Optical5", "Optical8"} {
		h := figures.Summarise(rows, cfg)
		fmt.Printf("%-9s geomean network speedup %.2fx, network power %+.0f%% vs Electrical3\n",
			cfg, h.GeoMeanSpeedup, -h.PowerReduction*100)
	}
}
