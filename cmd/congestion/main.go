// Command congestion runs the closed-loop congestion-control studies:
// the governed sweep (ungoverned vs static backoff vs delay-gradient
// AIMD senders across the saturation knee) and the fault-recovery trace
// (AIMD senders backing off through a mid-run dead-link window and
// re-converging after the heal).
//
// The JSON report contains no timestamps or wall-clock data: two runs
// with the same flags produce byte-identical output.
//
// Usage:
//
//	congestion                               # full sweep + recovery study
//	congestion -csv                          # sweep as CSV
//	congestion -json CC_governed.json        # sweep + JSON report
//	congestion -plots                        # ASCII throughput/p99/recovery plots
//	congestion -configs Optical4 -patterns BitComp -rates 0.5 -recovery=false
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"phastlane/internal/cliflags"
	"phastlane/internal/figures"
	"phastlane/internal/telemetry"
)

// report is the JSON document: sweep inputs, sweep points, and (unless
// disabled) the recovery study. Nothing host- or time-dependent.
type report struct {
	Configs    []string                `json:"configs"`
	Patterns   []string                `json:"patterns"`
	Rates      []float64               `json:"rates"`
	StaticRate float64                 `json:"static_rate"`
	Warmup     int                     `json:"warmup_cycles"`
	Measure    int                     `json:"measure_cycles"`
	Seed       int64                   `json:"seed"`
	Points     []figures.GovernedPoint `json:"points"`
	Recovery   *figures.RecoveryResult `json:"recovery,omitempty"`
}

func main() {
	configs := flag.String("configs", "", "comma-separated network variants (default Optical4,Electrical3)")
	patterns := flag.String("patterns", "", "comma-separated traffic patterns (default Uniform,BitComp)")
	rates := flag.String("rates", "", "comma-separated offered loads (default 0.30,0.40,0.50,0.60,0.70)")
	static := flag.Float64("static", 0, "static-backoff cap (0 = default 0.30)")
	warmup := flag.Int("warmup", 300, "warmup cycles per point")
	measure := flag.Int("measure", 2000, "measurement cycles per point")
	recovery := flag.Bool("recovery", true, "also run the dead-link back-off/re-convergence study")
	recoveryMeasure := flag.Int("recovery-measure", 6000, "measurement cycles for the recovery study")
	seed := cliflags.Seed(flag.CommandLine)
	workers := flag.Int("workers", 0, "worker pool size (0 = one per core)")
	csv := flag.Bool("csv", false, "emit the sweep as CSV")
	jsonPath := flag.String("json", "", "also write the report to this JSON file")
	plots := flag.Bool("plots", false, "render ASCII throughput, tail and recovery plots")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fail(err)
	}

	opts := figures.GovernedOpts{
		Configs: splitList(*configs), Patterns: splitList(*patterns),
		StaticRate: *static,
		Warmup:     *warmup, Measure: *measure,
		Seed: *seed, Workers: *workers,
	}
	for _, f := range splitList(*rates) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fail(fmt.Errorf("bad -rates entry %q: %v", f, err))
		}
		opts.Rates = append(opts.Rates, r)
	}
	pts := figures.Governed(opts)

	table := figures.GovernedTable(pts)
	if *csv {
		fmt.Print(table.CSV())
	} else {
		fmt.Println(table)
	}

	rep := report{
		Configs: orDefault(opts.Configs, []string{"Optical4", "Electrical3"}),
		Patterns: orDefault(opts.Patterns,
			[]string{"Uniform", "BitComp"}),
		Rates:      orDefaultF(opts.Rates, []float64{0.30, 0.40, 0.50, 0.60, 0.70}),
		StaticRate: *static,
		Warmup:     *warmup, Measure: *measure, Seed: *seed,
		Points: pts,
	}
	if rep.StaticRate == 0 {
		rep.StaticRate = 0.30
	}

	if *plots {
		for _, config := range rep.Configs {
			for _, pattern := range rep.Patterns {
				fmt.Println(figures.GovernedPlot(config, pattern, pts))
				fmt.Println(figures.GovernedTailPlot(config, pattern, pts))
			}
		}
	}

	if *recovery {
		const deadLinks = 6
		rec := figures.GovernedRecovery(figures.RecoveryOpts{
			DeadLinks: deadLinks, Measure: *recoveryMeasure, Seed: *seed,
		})
		rep.Recovery = &rec
		fmt.Printf("recovery: rate %.4f pre-fault -> %.4f with %d bisection links dead -> %.4f after heal (%d delivered, %d lost)\n",
			rec.PreRate, rec.FaultRate, deadLinks, rec.PostRate, rec.Delivered, rec.Lost)
		if *plots {
			fmt.Println(figures.RecoveryPlot(rec))
		}
	}

	if *jsonPath != "" {
		doc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(doc, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d points)\n", *jsonPath, len(pts))
	}
}

// splitList parses a comma-separated flag value, dropping empty entries
// so "" means "use the default".
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func orDefault(v, def []string) []string {
	if len(v) == 0 {
		return def
	}
	return v
}

func orDefaultF(v, def []float64) []float64 {
	if len(v) == 0 {
		return def
	}
	return v
}

func fail(err error) { cliflags.Fail("congestion", err) }
