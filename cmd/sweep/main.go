// Command sweep regenerates Fig. 9: average packet latency versus injection
// rate for the bit-complement, bit-reverse, shuffle and transpose patterns
// on the optical 4/5/8-hop networks and the 2- and 3-cycle electrical
// baselines. The (pattern x config) curves fan out over a worker pool;
// results are bit-identical for any worker count.
//
// Usage:
//
//	sweep                        # all four patterns, default rate grid
//	sweep -pattern Shuffle       # one pattern
//	sweep -measure 8000          # longer measurement windows
//	sweep -parallel 4            # explicit worker count (0 = all cores)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"phastlane/internal/exp"
	"phastlane/internal/figures"
)

func main() {
	pattern := flag.String("pattern", "", "restrict to one pattern (BitComp, BitRev, Shuffle, Transpose)")
	plot := flag.Bool("plot", false, "render ASCII charts instead of tables")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	measure := flag.Int("measure", 4000, "measurement cycles per point")
	warmup := flag.Int("warmup", 1000, "warmup cycles per point")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per core)")
	quiet := flag.Bool("quiet", false, "suppress progress log lines")
	ratesFlag := flag.String("rates", "", "comma-separated injection rates (default grid if empty)")
	flag.Parse()

	opts := figures.Fig9Opts{Warmup: *warmup, Measure: *measure, Seed: *seed, Workers: *parallel}
	if !*quiet {
		opts.Progress = exp.Logger(os.Stderr, "sweep", 2*time.Second)
	}
	if *ratesFlag != "" {
		for _, f := range strings.Split(*ratesFlag, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: bad rate %q: %v\n", f, err)
				os.Exit(2)
			}
			opts.Rates = append(opts.Rates, r)
		}
	}
	start := time.Now()
	results := figures.Fig9(opts)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: done in %.1fs\n", time.Since(start).Seconds())
	}
	for _, res := range results {
		if *pattern != "" && res.Pattern != *pattern {
			continue
		}
		switch {
		case *plot:
			fmt.Println(figures.Fig9Plot(res))
		case *csv:
			fmt.Print(figures.Fig9Table(res).CSV())
		default:
			fmt.Println(figures.Fig9Table(res))
		}
	}
}
