// Command sweep regenerates Fig. 9: average packet latency versus injection
// rate for the bit-complement, bit-reverse, shuffle and transpose patterns
// on the optical 4/5/8-hop networks and the 2- and 3-cycle electrical
// baselines. The (pattern x config) curves fan out over a worker pool;
// results are bit-identical for any worker count.
//
// Usage:
//
//	sweep                        # all four patterns, default rate grid
//	sweep -pattern Shuffle       # one pattern
//	sweep -measure 8000          # longer measurement windows
//	sweep -parallel 4            # explicit worker count (0 = all cores)
//	sweep -tails -csv            # long form with p50/p95/p99 columns
//	sweep -heatmap -trace-out t.json  # deep-dive each curve's knee point
//	sweep -why                   # tail-blame report at each curve's knee
package main

import (
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"
	"strconv"
	"strings"
	"time"

	"phastlane/internal/exp"
	"phastlane/internal/figures"
	"phastlane/internal/provenance"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
)

func main() {
	pattern := flag.String("pattern", "", "restrict to one pattern (BitComp, BitRev, Shuffle, Transpose)")
	plot := flag.Bool("plot", false, "render ASCII charts instead of tables")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	measure := flag.Int("measure", 4000, "measurement cycles per point")
	warmup := flag.Int("warmup", 1000, "warmup cycles per point")
	seed := cliflags.Seed(flag.CommandLine)
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per core)")
	quiet := flag.Bool("quiet", false, "suppress progress log lines")
	ratesFlag := flag.String("rates", "", "comma-separated injection rates (default grid if empty)")
	tails := flag.Bool("tails", false, "emit long-form tables with p50/p95/p99 latency columns")
	traceOut := flag.String("trace-out", "", "re-run each curve's knee point and write a Perfetto trace to this file")
	metricsOut := flag.String("metrics-out", "", "write the knee points' per-node event matrices as CSV to this file")
	heatmap := flag.Bool("heatmap", false, "print link-utilization and drop heatmaps for each curve's knee point")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	why := provenance.RegisterFlags(flag.CommandLine)
	flag.Parse()
	why.Clamp()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	opts := figures.Fig9Opts{Warmup: *warmup, Measure: *measure, Seed: *seed, Workers: *parallel}
	if !*quiet {
		opts.Progress = exp.Logger(os.Stderr, "sweep", 2*time.Second)
	}
	if *ratesFlag != "" {
		for _, f := range strings.Split(*ratesFlag, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: bad rate %q: %v\n", f, err)
				os.Exit(2)
			}
			opts.Rates = append(opts.Rates, r)
		}
	}
	start := time.Now()
	results := figures.Fig9(opts)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: done in %.1fs\n", time.Since(start).Seconds())
	}
	table := func(res figures.Fig9Result) *stats.Table {
		if *tails {
			return figures.Fig9TailTable(res)
		}
		return figures.Fig9Table(res)
	}
	for _, res := range results {
		if *pattern != "" && res.Pattern != *pattern {
			continue
		}
		switch {
		case *plot:
			fmt.Println(figures.Fig9Plot(res))
		case *csv:
			fmt.Print(table(res).CSV())
		default:
			fmt.Println(table(res))
		}
	}

	bundle := figures.BundleOpts{TracePath: *traceOut, MetricsPath: *metricsOut, Heatmap: *heatmap, WhyTop: why.Top}
	if !bundle.Enabled() && !why.Why {
		return
	}
	// Deep-dive each displayed curve at its saturation knee (the highest
	// rate that stayed unsaturated; the lowest swept rate if none did).
	var inspects []figures.InspectOpts
	for _, res := range results {
		if *pattern != "" && res.Pattern != *pattern {
			continue
		}
		for _, curve := range res.Curves {
			if len(curve.Points) == 0 {
				continue
			}
			rate := sim.SaturationRate(curve.Points)
			if rate == 0 {
				rate = curve.Points[0].Rate
			}
			cfg, ok := configByName(curve.Config)
			if !ok {
				continue
			}
			p, err := figures.PatternByName(res.Pattern, 64, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(2)
			}
			whySample := 0
			if why.Why {
				whySample = why.Sample
			}
			inspects = append(inspects, figures.InspectOpts{
				Name: res.Pattern + "/" + curve.Config, Build: cfg.Build,
				Width: 8, Height: 8, Pattern: p, Rate: rate,
				Warmup: *warmup, Measure: *measure, Seed: *seed,
				WhySample: whySample,
			})
		}
	}
	if _, err := figures.InspectBundle(inspects, exp.Options{Workers: *parallel}, bundle, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func configByName(name string) (figures.NetConfig, bool) {
	for _, c := range figures.Fig9Configs() {
		if c.Name == name {
			return c, true
		}
	}
	return figures.NetConfig{}, false
}
