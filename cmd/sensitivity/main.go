// Command sensitivity sweeps the Phastlane design knobs one at a time
// around the paper's Optical4 operating point - per-cycle hop budget,
// buffer depth, retransmission backoff, NIC depth, crossing efficiency,
// and relaunch arbiter - reporting latency, drops and power for each
// setting. It extends the paper's Fig. 10 buffer study to every free
// parameter.
//
// Usage:
//
//	sensitivity
//	sensitivity -benchmark Ocean -messages 8000
package main

import (
	"flag"
	"fmt"
	"os"
	"phastlane/internal/cliflags"

	"phastlane/internal/figures"
	"phastlane/internal/telemetry"
)

func main() {
	benchmark := flag.String("benchmark", "Barnes", "coherence workload")
	messages := flag.Int("messages", 6000, "trace length")
	seed := cliflags.Seed(flag.CommandLine)
	csv := flag.Bool("csv", false, "emit CSV")
	telemetryAddr := cliflags.TelemetryAddr(flag.CommandLine)
	flag.Parse()
	if _, err := telemetry.Start(*telemetryAddr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}

	pts, err := figures.Sensitivity(figures.SensitivityOpts{
		Benchmark: *benchmark, Messages: *messages, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
	table := figures.SensitivityTable(pts, *benchmark)
	if *csv {
		fmt.Print(table.CSV())
		return
	}
	fmt.Println(table)
}
