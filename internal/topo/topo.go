// Package topo abstracts the network fabric behind a Topology interface
// so simulators, fault routing, observability and provenance can run on
// any graph — the 2D mesh of the paper, a Benes multistage network, a
// Shufflecast-style de Bruijn multicast fabric — without knowing its
// geometry.
//
// # Ownership
//
// Route compilation is owned by this package: simulators and harnesses
// obtain port sequences and control words through a Topology (AppendRoute,
// PortAt, ControlEncoder), never by calling mesh.Route or
// packet.BuildControl directly. The mesh primitives remain exported for
// the Mesh2D implementation itself and for geometry-level tests, but any
// new call site outside internal/topo is a layering bug.
//
// # Ports
//
// A port is a mesh.Dir value indexing one of a node's output links,
// 0 <= port < Degree(n). On the mesh the values keep their compass
// meaning (North/East/South/West); on other fabrics they are plain
// indices and the compass names do not apply. Routes are sequences of
// ports: route[i] is the output port taken at the i-th node of the path.
//
// # Zero-allocation contract
//
// AppendRoute appends into a caller-owned buffer and must not allocate
// when cap(buf) suffices; PortAt answers random-access route queries with
// no allocation at all. Implementations must be safe for concurrent
// read-only use after construction, except where a method documents
// otherwise (Mesh2D.AppendDetour reuses BFS scratch and is single-
// goroutine, matching the simulators' use).
package topo

import (
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
)

// Topology is the fabric-graph contract shared by every network
// implementation. Nodes are identified by mesh.NodeID in [0, Nodes());
// the first Endpoints() of them inject and eject traffic, while any
// higher IDs are internal switch stages (indirect fabrics such as Benes).
type Topology interface {
	// Name returns the registry name of the fabric ("mesh", "benes", ...).
	Name() string
	// Nodes returns the total graph node count, endpoints first.
	Nodes() int
	// Endpoints returns how many nodes source and sink traffic. For
	// direct fabrics (mesh, shufflecast) this equals Nodes().
	Endpoints() int
	// Degree returns the number of output ports of node n. Ports are
	// numbered 0..Degree(n)-1; a port may still be unconnected at a
	// boundary (Neighbor returns false), as on mesh edges.
	Degree(n mesh.NodeID) int
	// Neighbor returns the node reached from n through port p and true,
	// or false when the port is unconnected.
	Neighbor(n mesh.NodeID, p mesh.Dir) (mesh.NodeID, bool)
	// HopDistance returns the number of links the compiled route from
	// endpoint a to endpoint b traverses (0 when a == b).
	HopDistance(a, b mesh.NodeID) int
	// AppendRoute appends the port sequence of the route from endpoint
	// src to endpoint dst to buf and returns the extended slice. It must
	// not allocate when cap(buf)-len(buf) >= HopDistance(src, dst). The
	// route is deterministic: the same (src, dst) always compiles to the
	// same ports.
	AppendRoute(buf []mesh.Dir, src, dst mesh.NodeID) []mesh.Dir
	// PortAt returns the i-th port (0-based) of the route from src to
	// dst without materialising it. i must be in
	// [0, HopDistance(src, dst)); out-of-range indices panic.
	PortAt(src, dst mesh.NodeID, i int) mesh.Dir
	// MaxRouteLen returns the longest route AppendRoute can produce, so
	// callers can size scratch buffers once.
	MaxRouteLen() int
	// NodeLabel names node n for traces, heatmaps and blame reports —
	// "12 (4,1)" on the mesh, "s1.3" for a Benes switch.
	NodeLabel(n mesh.NodeID) string
}

// ControlEncoder is implemented by topologies whose routes compile to
// Phastlane 5-bit control words (today: the mesh). EncodeControl returns
// the predecoded control groups and the initial travel direction for a
// packet from src to dst, truncating at an interim stop when the route
// needs more than packet.MaxGroups routers. It must not allocate.
type ControlEncoder interface {
	EncodeControl(src, dst mesh.NodeID) (packet.Control, mesh.Dir)
}

// FaultRouting is implemented by topologies that can compile detours
// around failed links. AppendDetour appends a route from src to dst using
// only links for which usable returns true, falling back to a minimal
// search when the primary route is blocked; ok is false when dst is
// unreachable. Like AppendRoute it reuses buf, but implementations may
// keep internal scratch and be single-goroutine (Mesh2D's BFS is).
type FaultRouting interface {
	AppendDetour(buf []mesh.Dir, src, dst mesh.NodeID, usable mesh.LinkUsable) ([]mesh.Dir, bool)
}

// Walk traverses the compiled route from src to dst through Neighbor
// calls and returns the visited nodes, endpoints included. It is a test
// and tooling helper (it allocates); simulators advance hop by hop
// themselves.
func Walk(t Topology, src, dst mesh.NodeID) []mesh.NodeID {
	nodes := []mesh.NodeID{src}
	cur := src
	for i := 0; i < t.HopDistance(src, dst); i++ {
		next, ok := t.Neighbor(cur, t.PortAt(src, dst, i))
		if !ok {
			return nodes
		}
		cur = next
		nodes = append(nodes, cur)
	}
	return nodes
}
