package topo

import (
	"testing"

	"phastlane/internal/mesh"
)

// contractFabrics enumerates one instance of every registered fabric for
// the interface-contract tests.
func contractFabrics(t *testing.T) []Topology {
	t.Helper()
	b, err := NewBenes(16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShufflecast(27, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewShufflecast(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []Topology{NewMesh2D(4, 4), b, s, s2}
}

// TestTopologyContract checks the properties every fabric must share:
// routes have HopDistance links, walk via Neighbor from src to dst, use
// only in-range ports, fit MaxRouteLen, and agree with PortAt.
func TestTopologyContract(t *testing.T) {
	for _, top := range contractFabrics(t) {
		buf := make([]mesh.Dir, 0, top.MaxRouteLen())
		for src := mesh.NodeID(0); int(src) < top.Endpoints(); src++ {
			for dst := mesh.NodeID(0); int(dst) < top.Endpoints(); dst++ {
				route := top.AppendRoute(buf[:0], src, dst)
				if len(route) != top.HopDistance(src, dst) {
					t.Fatalf("%s %d->%d: %d links, HopDistance %d",
						top.Name(), src, dst, len(route), top.HopDistance(src, dst))
				}
				if len(route) > top.MaxRouteLen() {
					t.Fatalf("%s %d->%d: route %d exceeds MaxRouteLen %d",
						top.Name(), src, dst, len(route), top.MaxRouteLen())
				}
				cur := src
				for i, p := range route {
					if int(p) < 0 || int(p) >= top.Degree(cur) {
						t.Fatalf("%s %d->%d: port %d out of degree %d at node %d",
							top.Name(), src, dst, p, top.Degree(cur), cur)
					}
					if q := top.PortAt(src, dst, i); q != p {
						t.Fatalf("%s %d->%d: PortAt(%d)=%d, route has %d", top.Name(), src, dst, i, q, p)
					}
					next, ok := top.Neighbor(cur, p)
					if !ok {
						t.Fatalf("%s %d->%d: route walks off fabric at %d port %d", top.Name(), src, dst, cur, p)
					}
					cur = next
				}
				if cur != dst {
					t.Fatalf("%s %d->%d: route ends at %d", top.Name(), src, dst, cur)
				}
			}
		}
		for n := mesh.NodeID(0); int(n) < top.Nodes(); n++ {
			if top.NodeLabel(n) == "" {
				t.Fatalf("%s: empty label for node %d", top.Name(), n)
			}
		}
	}
}

// TestAppendRouteZeroAlloc pins the zero-allocation half of the route
// compiler contract for every fabric.
func TestAppendRouteZeroAlloc(t *testing.T) {
	for _, top := range contractFabrics(t) {
		buf := make([]mesh.Dir, 0, top.MaxRouteLen())
		allocs := testing.AllocsPerRun(100, func() {
			for dst := mesh.NodeID(0); int(dst) < top.Endpoints(); dst++ {
				buf = top.AppendRoute(buf[:0], 0, dst)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: AppendRoute allocates %.1f per run, want 0", top.Name(), allocs)
		}
	}
}

func TestRegistry(t *testing.T) {
	cases := []struct {
		name          string
		w, h, arity   int
		wantName      string
		wantEndpoints int
		wantErr       bool
	}{
		{"mesh", 8, 8, 2, "mesh", 64, false},
		{"", 4, 4, 2, "mesh", 16, false},
		{"benes", 8, 8, 2, "benes", 64, false},
		{"benes", 3, 3, 2, "", 0, true},
		{"shufflecast", 8, 8, 4, "shufflecast", 64, false},
		{"shufflecast", 8, 8, 3, "", 0, true},
		{"ring", 8, 8, 2, "", 0, true},
	}
	for _, c := range cases {
		top, err := New(c.name, c.w, c.h, c.arity)
		if c.wantErr {
			if err == nil {
				t.Fatalf("New(%q,%d,%d,%d): want error", c.name, c.w, c.h, c.arity)
			}
			continue
		}
		if err != nil {
			t.Fatalf("New(%q,%d,%d,%d): %v", c.name, c.w, c.h, c.arity, err)
		}
		if top.Name() != c.wantName || top.Endpoints() != c.wantEndpoints {
			t.Fatalf("New(%q): got (%s,%d), want (%s,%d)",
				c.name, top.Name(), top.Endpoints(), c.wantName, c.wantEndpoints)
		}
	}
}
