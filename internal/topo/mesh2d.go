package topo

import (
	"fmt"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
)

// Mesh2D re-expresses the paper's 2D mesh as a Topology. All routing
// methods delegate to the mesh primitives (dimension-order X-then-Y
// routes, packet.BuildControl control words, FaultRouter BFS detours),
// so routes, control bits and detours are bit-identical to the legacy
// direct-call path — the differential tests in this package prove it
// pair by pair.
type Mesh2D struct {
	m  *mesh.Mesh
	fr *mesh.FaultRouter
}

var (
	_ Topology       = (*Mesh2D)(nil)
	_ ControlEncoder = (*Mesh2D)(nil)
	_ FaultRouting   = (*Mesh2D)(nil)
)

// NewMesh2D returns the mesh topology with the given dimensions. It
// panics on non-positive dimensions, like mesh.New.
func NewMesh2D(width, height int) *Mesh2D {
	m := mesh.New(width, height)
	return &Mesh2D{m: m, fr: mesh.NewFaultRouter(m)}
}

// Mesh exposes the underlying geometry for fabric physics that is
// genuinely mesh-specific (the optical walk's per-hop neighbour steps,
// fault-plan validation). Routing must go through the Topology methods.
func (t *Mesh2D) Mesh() *mesh.Mesh { return t.m }

// Name returns "mesh".
func (t *Mesh2D) Name() string { return "mesh" }

// Nodes returns width*height.
func (t *Mesh2D) Nodes() int { return t.m.Nodes() }

// Endpoints equals Nodes: every mesh node has a NIC.
func (t *Mesh2D) Endpoints() int { return t.m.Nodes() }

// Degree returns the four cardinal ports; edge nodes keep the port
// numbers but Neighbor reports the missing links.
func (t *Mesh2D) Degree(mesh.NodeID) int { return mesh.NumLinkDirs }

// Neighbor delegates to the mesh geometry.
func (t *Mesh2D) Neighbor(n mesh.NodeID, p mesh.Dir) (mesh.NodeID, bool) {
	return t.m.Neighbor(n, p)
}

// HopDistance is the Manhattan distance.
func (t *Mesh2D) HopDistance(a, b mesh.NodeID) int { return t.m.HopDistance(a, b) }

// AppendRoute compiles the dimension-order route.
func (t *Mesh2D) AppendRoute(buf []mesh.Dir, src, dst mesh.NodeID) []mesh.Dir {
	return t.m.AppendRoute(buf, src, dst)
}

// PortAt answers random-access route queries via mesh.RouteDir.
func (t *Mesh2D) PortAt(src, dst mesh.NodeID, i int) mesh.Dir {
	return t.m.RouteDir(src, dst, i)
}

// MaxRouteLen is the longest dimension-order route: (w-1)+(h-1) links.
func (t *Mesh2D) MaxRouteLen() int { return t.m.Width() + t.m.Height() - 2 }

// NodeLabel renders "id (x,y)".
func (t *Mesh2D) NodeLabel(n mesh.NodeID) string {
	c := t.m.Coord(n)
	return fmt.Sprintf("%d (%d,%d)", n, c.X, c.Y)
}

// EncodeControl compiles the Phastlane control word via
// packet.BuildControl — the canonical encoder, now reached only through
// this method.
func (t *Mesh2D) EncodeControl(src, dst mesh.NodeID) (packet.Control, mesh.Dir) {
	return packet.BuildControl(t.m, src, dst)
}

// AppendDetour compiles a fault-aware route via the mesh FaultRouter
// (dimension-order fast path, BFS detour fallback). The BFS scratch is
// reused across calls, so AppendDetour is single-goroutine — matching
// the simulators, which each own their topology instance.
func (t *Mesh2D) AppendDetour(buf []mesh.Dir, src, dst mesh.NodeID, usable mesh.LinkUsable) ([]mesh.Dir, bool) {
	return t.fr.AppendRoute(buf, src, dst, usable)
}
