package topo

import (
	"testing"

	"phastlane/internal/mesh"
)

func TestBenesStructure(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 128} {
		b, err := NewBenes(n)
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		for 1<<k < n {
			k++
		}
		if got, want := b.Nodes(), n+(2*k-1)*n/2; got != want {
			t.Fatalf("n=%d: Nodes=%d, want %d", n, got, want)
		}
		if b.MaxRouteLen() != 2*k {
			t.Fatalf("n=%d: MaxRouteLen=%d, want %d", n, b.MaxRouteLen(), 2*k)
		}
		// Every switch's two output wires must lead to distinct nodes,
		// and every stage-s switch must feed stage s+1 (or endpoints).
		for node := mesh.NodeID(n); int(node) < b.Nodes(); node++ {
			a0, ok0 := b.Neighbor(node, 0)
			a1, ok1 := b.Neighbor(node, 1)
			if !ok0 || !ok1 || a0 == a1 {
				t.Fatalf("n=%d switch %d: outputs (%d,%v) (%d,%v)", n, node, a0, ok0, a1, ok1)
			}
		}
	}
}

func TestBenesReachability(t *testing.T) {
	// From any endpoint, following the compiled routes must reach every
	// other endpoint — and a one-to-all flood through Neighbor must
	// cover the whole output side (the spanning-tree builder relies on
	// this).
	b, err := NewBenes(32)
	if err != nil {
		t.Fatal(err)
	}
	for src := mesh.NodeID(0); int(src) < b.Endpoints(); src++ {
		for dst := mesh.NodeID(0); int(dst) < b.Endpoints(); dst++ {
			nodes := Walk(b, src, dst)
			if nodes[len(nodes)-1] != dst {
				t.Fatalf("route %d->%d ends at %d", src, dst, nodes[len(nodes)-1])
			}
			if len(nodes) < 2 {
				continue
			}
			for _, mid := range nodes[1 : len(nodes)-1] {
				if int(mid) < b.Endpoints() {
					t.Fatalf("route %d->%d passes through endpoint %d", src, dst, mid)
				}
			}
		}
	}
}

func TestBenesRouteDeterminism(t *testing.T) {
	b, err := NewBenes(64)
	if err != nil {
		t.Fatal(err)
	}
	var a, c []mesh.Dir
	for src := mesh.NodeID(0); src < 64; src += 5 {
		for dst := mesh.NodeID(0); dst < 64; dst += 3 {
			a = b.AppendRoute(a[:0], src, dst)
			c = b.AppendRoute(c[:0], src, dst)
			for i := range a {
				if a[i] != c[i] {
					t.Fatalf("route %d->%d not deterministic", src, dst)
				}
			}
		}
	}
}
