package topo

import (
	"testing"

	"phastlane/internal/mesh"
)

// bfsDistances returns single-source shortest link counts over Neighbor.
func bfsDistances(top Topology, src mesh.NodeID) []int {
	dist := make([]int, top.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []mesh.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for p := 0; p < top.Degree(cur); p++ {
			next, ok := top.Neighbor(cur, mesh.Dir(p))
			if !ok || dist[next] >= 0 {
				continue
			}
			dist[next] = dist[cur] + 1
			queue = append(queue, next)
		}
	}
	return dist
}

// TestShufflecastRoutesAreShortest proves the digit-shift route compiler
// finds true shortest paths: HopDistance must equal BFS distance over
// the shuffle links for every pair.
func TestShufflecastRoutesAreShortest(t *testing.T) {
	for _, c := range []struct{ n, k int }{{8, 2}, {64, 2}, {27, 3}, {64, 4}} {
		s, err := NewShufflecast(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		for src := mesh.NodeID(0); int(src) < c.n; src++ {
			dist := bfsDistances(s, src)
			for dst := mesh.NodeID(0); int(dst) < c.n; dst++ {
				if got := s.HopDistance(src, dst); got != dist[dst] {
					t.Fatalf("n=%d k=%d %d->%d: HopDistance=%d, BFS=%d", c.n, c.k, src, dst, got, dist[dst])
				}
			}
		}
	}
}

func TestShufflecastRejectsBadRadix(t *testing.T) {
	for _, c := range []struct{ n, k int }{{12, 2}, {10, 3}, {8, 1}, {0, 2}} {
		if _, err := NewShufflecast(c.n, c.k); err == nil {
			t.Fatalf("NewShufflecast(%d,%d): want error", c.n, c.k)
		}
	}
}
