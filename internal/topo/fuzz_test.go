package topo

import (
	"testing"

	"phastlane/internal/mesh"
)

// FuzzBenesRoute drives the Benes route compiler across arbitrary sizes
// and endpoint pairs: every compiled route must use in-range ports,
// agree with PortAt at every hop, walk through switches only, and land
// exactly on the destination in HopDistance links.
func FuzzBenesRoute(f *testing.F) {
	f.Add(uint8(1), uint16(0), uint16(1))
	f.Add(uint8(3), uint16(5), uint16(2))
	f.Add(uint8(6), uint16(63), uint16(0))
	f.Add(uint8(6), uint16(17), uint16(17))
	f.Add(uint8(8), uint16(255), uint16(128))
	f.Fuzz(func(t *testing.T, kRaw uint8, srcRaw, dstRaw uint16) {
		k := int(kRaw)%8 + 1 // 2..256 endpoints
		n := 1 << k
		b, err := NewBenes(n)
		if err != nil {
			t.Fatalf("NewBenes(%d): %v", n, err)
		}
		src := mesh.NodeID(int(srcRaw) % n)
		dst := mesh.NodeID(int(dstRaw) % n)
		route := b.AppendRoute(nil, src, dst)
		if len(route) != b.HopDistance(src, dst) {
			t.Fatalf("n=%d %d->%d: %d links, HopDistance %d", n, src, dst, len(route), b.HopDistance(src, dst))
		}
		cur := src
		for i, p := range route {
			if int(p) < 0 || int(p) >= b.Degree(cur) {
				t.Fatalf("n=%d %d->%d: port %d out of degree %d at %d", n, src, dst, p, b.Degree(cur), cur)
			}
			if q := b.PortAt(src, dst, i); q != p {
				t.Fatalf("n=%d %d->%d: PortAt(%d)=%d, route has %d", n, src, dst, i, q, p)
			}
			next, ok := b.Neighbor(cur, p)
			if !ok {
				t.Fatalf("n=%d %d->%d: dead port %d at %d", n, src, dst, p, cur)
			}
			if i > 0 && int(cur) < n {
				t.Fatalf("n=%d %d->%d: route forwards through endpoint %d", n, src, dst, cur)
			}
			cur = next
		}
		if cur != dst {
			t.Fatalf("n=%d %d->%d: route ends at %d", n, src, dst, cur)
		}
	})
}
