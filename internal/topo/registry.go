package topo

import "fmt"

// Names lists the registered fabrics in presentation order.
func Names() []string { return []string{"mesh", "benes", "shufflecast"} }

// New builds the named fabric from the shared geometry flags. The mesh
// is width x height; the indirect fabrics only need the endpoint count
// width*height (pass the node count as -width with -height 1, or keep a
// rectangle whose product fits the fabric's radix rule). Benes requires
// a power-of-two endpoint count; shufflecast a power of the arity.
func New(name string, width, height, arity int) (Topology, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("topo: invalid geometry %dx%d", width, height)
	}
	switch name {
	case "mesh", "":
		return NewMesh2D(width, height), nil
	case "benes":
		return NewBenes(width * height)
	case "shufflecast":
		return NewShufflecast(width*height, arity)
	default:
		return nil, fmt.Errorf("topo: unknown fabric %q (have %v)", name, Names())
	}
}
