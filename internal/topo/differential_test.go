package topo

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
)

// The mesh topology must be a pure re-expression of the legacy direct
// calls: identical routes, identical control bits, identical detours.
// These tests compare the interface path against the legacy path pair by
// pair so the simulators' golden outputs cannot drift through the
// refactor.

var diffGeometries = [][2]int{
	{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {2, 3}, {4, 4}, {5, 3},
	{8, 8}, {16, 16},
}

func TestMesh2DRoutesMatchLegacy(t *testing.T) {
	for _, g := range diffGeometries {
		w, h := g[0], g[1]
		top := NewMesh2D(w, h)
		m := mesh.New(w, h)
		buf := make([]mesh.Dir, 0, top.MaxRouteLen())
		for src := mesh.NodeID(0); int(src) < m.Nodes(); src++ {
			for dst := mesh.NodeID(0); int(dst) < m.Nodes(); dst++ {
				legacy := m.Route(src, dst)
				got := top.AppendRoute(buf[:0], src, dst)
				if len(got) != len(legacy) {
					t.Fatalf("%dx%d %d->%d: route length %d, legacy %d", w, h, src, dst, len(got), len(legacy))
				}
				for i := range legacy {
					if got[i] != legacy[i] {
						t.Fatalf("%dx%d %d->%d: route[%d]=%s, legacy %s", w, h, src, dst, i, got[i], legacy[i])
					}
					if p := top.PortAt(src, dst, i); p != legacy[i] {
						t.Fatalf("%dx%d %d->%d: PortAt(%d)=%s, legacy %s", w, h, src, dst, i, p, legacy[i])
					}
				}
				if top.HopDistance(src, dst) != m.HopDistance(src, dst) {
					t.Fatalf("%dx%d %d->%d: HopDistance mismatch", w, h, src, dst)
				}
			}
		}
	}
}

func TestMesh2DControlBitsMatchLegacy(t *testing.T) {
	for _, g := range diffGeometries {
		w, h := g[0], g[1]
		top := NewMesh2D(w, h)
		m := mesh.New(w, h)
		for src := mesh.NodeID(0); int(src) < m.Nodes(); src++ {
			for dst := mesh.NodeID(0); int(dst) < m.Nodes(); dst++ {
				if src == dst {
					continue
				}
				wantC, wantD := packet.BuildControl(m, src, dst)
				gotC, gotD := top.EncodeControl(src, dst)
				if gotC != wantC || gotD != wantD {
					t.Fatalf("%dx%d %d->%d: control (%v,%s), legacy (%v,%s)",
						w, h, src, dst, gotC, gotD, wantC, wantD)
				}
			}
		}
	}
}

func TestMesh2DDetoursMatchLegacy(t *testing.T) {
	// A deterministic sprinkling of dead links: every third link in a
	// fixed enumeration order. Both routers see the same predicate, so
	// their BFS detours must agree exactly.
	for _, g := range [][2]int{{4, 4}, {8, 8}, {5, 3}} {
		w, h := g[0], g[1]
		top := NewMesh2D(w, h)
		m := mesh.New(w, h)
		fr := mesh.NewFaultRouter(m)
		usable := func(from mesh.NodeID, d mesh.Dir) bool {
			return (int(from)*mesh.NumLinkDirs+int(d))%3 != 0
		}
		var bufA, bufB []mesh.Dir
		for src := mesh.NodeID(0); int(src) < m.Nodes(); src++ {
			for dst := mesh.NodeID(0); int(dst) < m.Nodes(); dst++ {
				wantR, wantOK := fr.AppendRoute(bufA[:0], src, dst, usable)
				gotR, gotOK := top.AppendDetour(bufB[:0], src, dst, usable)
				if gotOK != wantOK || len(gotR) != len(wantR) {
					t.Fatalf("%dx%d %d->%d: detour (%v,%v), legacy (%v,%v)",
						w, h, src, dst, gotR, gotOK, wantR, wantOK)
				}
				for i := range wantR {
					if gotR[i] != wantR[i] {
						t.Fatalf("%dx%d %d->%d: detour[%d] mismatch", w, h, src, dst, i)
					}
				}
				bufA, bufB = wantR, gotR
			}
		}
	}
}

// TestMesh2DRouteCompilerAllocs pins the zero-allocation contract of the
// interface path: compiling routes and control words through the
// Topology must not allocate once the caller's buffer has capacity.
func TestMesh2DRouteCompilerAllocs(t *testing.T) {
	top := NewMesh2D(8, 8)
	buf := make([]mesh.Dir, 0, top.MaxRouteLen())
	var sink packet.Control
	allocs := testing.AllocsPerRun(200, func() {
		for src := mesh.NodeID(0); src < 8; src++ {
			for dst := mesh.NodeID(0); int(dst) < top.Nodes(); dst += 7 {
				buf = top.AppendRoute(buf[:0], src, dst)
				if src != dst {
					sink, _ = top.EncodeControl(src, dst)
					_ = top.PortAt(src, dst, 0)
				}
			}
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("route compiler allocates %.1f per run, want 0", allocs)
	}
}
