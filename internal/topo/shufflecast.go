package topo

import (
	"fmt"

	"phastlane/internal/mesh"
)

// Shufflecast is a k-ary de Bruijn fabric in the style of the
// Shufflecast optical multicast architecture: n = k^m nodes, each with k
// outgoing links, where port j of node x leads to (k*x + j) mod n — a
// perfect-shuffle interconnect. Every node is an endpoint; multicast
// spanning trees built over the shuffle links reach all n-1 other nodes
// in at most m hops with fan-out k per node, which is what makes the
// fabric attractive for the VCTM-style tree machinery.
//
// Unicast routes shift the destination address in digit by digit: the
// route from src to dst is the shortest L <= m such that dst's address
// equals src's address shifted left L digits with some L-digit suffix v
// appended (mod n); the ports are v's base-k digits, most significant
// first.
type Shufflecast struct {
	k int // arity: out-links per node
	m int // digits: diameter
	n int // nodes = k^m
}

var _ Topology = (*Shufflecast)(nil)

// NewShufflecast returns the shuffle fabric with n nodes of arity k.
// n must be an exact power k^m with k >= 2.
func NewShufflecast(n, k int) (*Shufflecast, error) {
	if k < 2 {
		return nil, fmt.Errorf("shufflecast: arity %d must be >= 2", k)
	}
	m, p := 0, 1
	for p < n {
		p *= k
		m++
	}
	if p != n || n < k {
		return nil, fmt.Errorf("shufflecast: node count %d is not a power of arity %d", n, k)
	}
	return &Shufflecast{k: k, m: m, n: n}, nil
}

// Arity returns k, the per-node fan-out.
func (t *Shufflecast) Arity() int { return t.k }

// Name returns "shufflecast".
func (t *Shufflecast) Name() string { return "shufflecast" }

// Nodes returns k^m.
func (t *Shufflecast) Nodes() int { return t.n }

// Endpoints equals Nodes: every shuffle node sources and sinks traffic.
func (t *Shufflecast) Endpoints() int { return t.n }

// Degree is the arity k at every node.
func (t *Shufflecast) Degree(mesh.NodeID) int { return t.k }

// Neighbor follows the shuffle link: port j of x reaches (k*x+j) mod n.
// Some links are self-loops (node 0 port 0); they exist physically and
// Neighbor reports them like any other link.
func (t *Shufflecast) Neighbor(n mesh.NodeID, p mesh.Dir) (mesh.NodeID, bool) {
	if p < 0 || int(p) >= t.k {
		return 0, false
	}
	return mesh.NodeID((t.k*int(n) + int(p)) % t.n), true
}

// routeLen returns the shortest route length L and the suffix value v
// whose base-k digits are the ports.
func (t *Shufflecast) routeLen(src, dst mesh.NodeID) (L int, v int) {
	// After L hops from src taking digit sequence v (value in [0, k^L)),
	// the position is (src*k^L + v) mod n. The smallest L whose residue
	// lands in range is the shortest route.
	pow := 1 // k^L
	for L = 0; L <= t.m; L++ {
		v = (int(dst) - int(src)*pow) % t.n
		if v < 0 {
			v += t.n
		}
		if v < pow {
			return L, v
		}
		pow *= t.k
	}
	panic(fmt.Sprintf("shufflecast: no route %d->%d", src, dst)) // unreachable: L=m always matches
}

// HopDistance is the shortest shuffle-route length, at most m.
func (t *Shufflecast) HopDistance(a, b mesh.NodeID) int {
	L, _ := t.routeLen(a, b)
	return L
}

// AppendRoute appends the digits of the shortest route, most significant
// first.
func (t *Shufflecast) AppendRoute(buf []mesh.Dir, src, dst mesh.NodeID) []mesh.Dir {
	L, v := t.routeLen(src, dst)
	pow := 1
	for i := 0; i < L-1; i++ {
		pow *= t.k
	}
	for i := 0; i < L; i++ {
		buf = append(buf, mesh.Dir(v/pow%t.k))
		pow /= t.k
	}
	return buf
}

// PortAt returns digit i of the route without materialising it.
func (t *Shufflecast) PortAt(src, dst mesh.NodeID, i int) mesh.Dir {
	L, v := t.routeLen(src, dst)
	if i < 0 || i >= L {
		panic(fmt.Sprintf("shufflecast: PortAt index %d out of range for route %d->%d", i, src, dst))
	}
	pow := 1
	for j := 0; j < L-1-i; j++ {
		pow *= t.k
	}
	return mesh.Dir(v / pow % t.k)
}

// MaxRouteLen is the diameter m.
func (t *Shufflecast) MaxRouteLen() int { return t.m }

// NodeLabel renders the node ID with its base-k address, "27 [123]".
func (t *Shufflecast) NodeLabel(n mesh.NodeID) string {
	digits := make([]byte, t.m)
	v := int(n)
	for i := t.m - 1; i >= 0; i-- {
		digits[i] = byte('0' + v%t.k)
		v /= t.k
	}
	return fmt.Sprintf("%d [%s]", n, digits)
}
