package topo

import (
	"fmt"

	"phastlane/internal/mesh"
)

// Benes is an n-endpoint rearrangeable multistage network: 2k-1 stages
// of n/2 two-by-two switches (n = 2^k), wired so that stage s pairs the
// wires differing in bit b(s), with b(s) descending k-1..0 over the
// first k stages and ascending 1..k-1 over the rest (a butterfly and an
// inverse butterfly sharing their middle stage). Routing is distributed
// in the spirit of the Benes-control paper: no global permutation
// algorithm runs — each packet self-routes, spending the first k-1
// stages on a deterministic per-(src,dst) spreading choice for load
// balance and the last k stages forcing the destination address one bit
// per stage. Every route is exactly 2k links: source endpoint into
// stage 0, one hop per stage, last stage into the destination endpoint.
//
// Node IDs place the n endpoints first (0..n-1); switch (s, j) is node
// n + s*(n/2) + j. Endpoints have one port (into stage 0); switches have
// two (their output wires, port = the value taken by bit b(s)).
type Benes struct {
	k      int // log2(n)
	n      int // endpoints
	stages int // 2k-1
}

var _ Topology = (*Benes)(nil)

// NewBenes returns the Benes topology with n endpoints. n must be a
// power of two and at least 2.
func NewBenes(n int) (*Benes, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("benes: endpoint count %d is not a power of two >= 2", n)
	}
	k := 0
	for 1<<k < n {
		k++
	}
	return &Benes{k: k, n: n, stages: 2*k - 1}, nil
}

// stageBit returns b(s), the wire bit that stage s switches.
func (t *Benes) stageBit(s int) int {
	if s < t.k-1 {
		return t.k - 1 - s
	}
	return s - (t.k - 1)
}

// compress drops bit β from wire w, yielding the switch index that
// handles w at a stage switching bit β.
func compress(w, beta int) int {
	return (w>>(beta+1))<<beta | w&(1<<beta-1)
}

// expand re-inserts bit β with the given value into switch index j,
// yielding the wire leaving that switch through port bit.
func expand(j, beta, bit int) int {
	return (j>>beta)<<(beta+1) | bit<<beta | j&(1<<beta-1)
}

// mix64 is a splitmix64 finaliser; the free-stage spreading bits of the
// (src, dst) route are drawn from it so repeated routes stay identical
// while distinct pairs scatter across the middle stages.
func mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ v>>30) * 0xbf58476d1ce4e5b9
	v = (v ^ v>>27) * 0x94d049bb133111eb
	return v ^ v>>31
}

// freeBit is the spreading choice at free stage s (s < k-1).
func (t *Benes) freeBit(src, dst mesh.NodeID, s int) int {
	return int(mix64(uint64(src)*uint64(t.n)+uint64(dst)) >> uint(s) & 1)
}

// Name returns "benes".
func (t *Benes) Name() string { return "benes" }

// Nodes counts endpoints plus all stage switches.
func (t *Benes) Nodes() int { return t.n + t.stages*t.n/2 }

// Endpoints returns the input/output terminal count n.
func (t *Benes) Endpoints() int { return t.n }

// switchID maps stage and index to the node ID.
func (t *Benes) switchID(s, j int) mesh.NodeID {
	return mesh.NodeID(t.n + s*t.n/2 + j)
}

// switchAt inverts switchID; ok is false for endpoint IDs.
func (t *Benes) switchAt(n mesh.NodeID) (s, j int, ok bool) {
	v := int(n) - t.n
	if v < 0 {
		return 0, 0, false
	}
	return v / (t.n / 2), v % (t.n / 2), true
}

// Degree is 1 for endpoints (the injection wire) and 2 for switches.
func (t *Benes) Degree(n mesh.NodeID) int {
	if int(n) < t.n {
		return 1
	}
	return 2
}

// Neighbor follows port p: endpoints feed their stage-0 switch; switch
// (s, j) port p leads along wire expand(j, b(s), p) to stage s+1, or to
// that wire's endpoint after the last stage.
func (t *Benes) Neighbor(n mesh.NodeID, p mesh.Dir) (mesh.NodeID, bool) {
	if int(n) < t.n {
		if p != 0 {
			return 0, false
		}
		return t.switchID(0, compress(int(n), t.stageBit(0))), true
	}
	s, j, ok := t.switchAt(n)
	if !ok || p < 0 || p > 1 || s >= t.stages {
		return 0, false
	}
	w := expand(j, t.stageBit(s), int(p))
	if s == t.stages-1 {
		return mesh.NodeID(w), true
	}
	return t.switchID(s+1, compress(w, t.stageBit(s+1))), true
}

// HopDistance is 2k links between distinct endpoints — every route
// crosses all 2k-1 stages. It is defined for endpoints only and panics
// on switch IDs.
func (t *Benes) HopDistance(a, b mesh.NodeID) int {
	if int(a) >= t.n || int(b) >= t.n {
		panic(fmt.Sprintf("benes: HopDistance on non-endpoint %d->%d", a, b))
	}
	if a == b {
		return 0
	}
	return 2 * t.k
}

// AppendRoute compiles the distributed route: port 0 out of the source
// endpoint, then one bit choice per stage — spreading bits first,
// destination bits last.
func (t *Benes) AppendRoute(buf []mesh.Dir, src, dst mesh.NodeID) []mesh.Dir {
	if src == dst {
		return buf
	}
	buf = append(buf, 0)
	for s := 0; s < t.stages; s++ {
		buf = append(buf, t.routeBit(src, dst, s))
	}
	return buf
}

// routeBit is the port taken at stage s of the (src, dst) route.
func (t *Benes) routeBit(src, dst mesh.NodeID, s int) mesh.Dir {
	if s < t.k-1 {
		return mesh.Dir(t.freeBit(src, dst, s))
	}
	return mesh.Dir(int(dst) >> uint(t.stageBit(s)) & 1)
}

// PortAt answers random-access route queries without materialising the
// route.
func (t *Benes) PortAt(src, dst mesh.NodeID, i int) mesh.Dir {
	if src == dst || i < 0 || i >= 2*t.k {
		panic(fmt.Sprintf("benes: PortAt index %d out of range for route %d->%d", i, src, dst))
	}
	if i == 0 {
		return 0
	}
	return t.routeBit(src, dst, i-1)
}

// MaxRouteLen is the uniform route length 2k.
func (t *Benes) MaxRouteLen() int { return 2 * t.k }

// NodeLabel renders endpoints as "e<i>" and switches as "s<stage>.<idx>".
func (t *Benes) NodeLabel(n mesh.NodeID) string {
	if s, j, ok := t.switchAt(n); ok {
		return fmt.Sprintf("s%d.%d", s, j)
	}
	return fmt.Sprintf("e%d", n)
}
