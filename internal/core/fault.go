package core

// Fault handling and the NIC-level delivery layer. Everything here is
// inert unless a fault plan is armed or a delivery limit (RetryLimit,
// LossTimeout) is configured: the hot paths in network.go and walk.go
// guard each consultation behind a nil-injector check, so the fault-free
// simulation stays bit-identical and allocation-free.

import (
	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

const (
	// unreachableProbe is how long a parcel whose destination has no
	// usable route waits before probing again; transient faults may have
	// healed by then.
	unreachableProbe = 8
	// watchdogDefaultPeriod is the delivery watchdog's scan interval when
	// no LossTimeout bounds it more tightly.
	watchdogDefaultPeriod = 64
	// starveDefault is the starvation-report threshold (cycles buffered
	// without delivery) when no LossTimeout is configured.
	starveDefault = 4096
)

// faultInit arms the configured fault plan and delivery watchdog; called
// once from New. Panics on an invalid plan (New's contract for bad
// configuration).
func (n *Network) faultInit() {
	inj, err := n.cfg.Faults.Arm(n.m)
	if err != nil {
		panic(err)
	}
	n.faults = inj
	if inj != nil {
		// Fault detours come from the topology's FaultRouting view
		// (the mesh BFS router behind topo.Mesh2D).
		// One closure for the life of the network: reads the advancing
		// cycle through the receiver, so route queries always see the
		// current fault state without a per-query allocation.
		n.routeUsable = func(from mesh.NodeID, d mesh.Dir) bool {
			return !n.faults.LinkDown(n.cycle, from, d)
		}
	}
	if inj != nil || n.cfg.LossTimeout > 0 {
		n.watchEvery = watchdogDefaultPeriod
		n.starveAfter = starveDefault
		if t := n.cfg.LossTimeout; t > 0 {
			n.starveAfter = t / 2
			if p := t / 4; p > 0 && p < n.watchEvery {
				n.watchEvery = p
			}
			if n.starveAfter < 1 {
				n.starveAfter = 1
			}
		}
	}
}

// SetLossHandler implements sim.LossReporting: handler is invoked
// synchronously whenever the delivery layer abandons a parcel. Nil
// disables reporting (losses are still counted in Run().Lost).
func (n *Network) SetLossHandler(handler func(sim.Loss)) { n.lossHandler = handler }

var _ sim.LossReporting = (*Network)(nil)

// SetNackHandler implements sim.CongestionReporting: handler is invoked
// synchronously with the original sender whenever a drop notice returns
// to a parcel's owner (once per drop, before any retry-budget loss). Nil
// disables reporting — the default, costing one branch per drop.
func (n *Network) SetNackHandler(handler func(src mesh.NodeID)) { n.nackHandler = handler }

var _ sim.CongestionReporting = (*Network)(nil)

// faultPrepare rebuilds the parcel's route from its owner around the
// currently-dead hardware, replacing resegment when a plan is armed. It
// reports whether the parcel can launch this cycle; when it cannot
// (destination unreachable, or a multicast segment blocked) the parcel is
// left queued with a probe delay so it retries after transient faults may
// have healed.
func (n *Network) faultPrepare(p *parcel) bool {
	if p.multicast {
		// Multicast sweeps cannot detour (the taps pin the path), so
		// rebuild the dimension-order sweep and hold the parcel while
		// its first segment crosses dead hardware.
		ctl, launch := n.buildSweepFrom(p.owner, p.remaining, n.cfg.MaxHops)
		at := p.owner
		for i, d := range n.sweepDirs {
			if i >= n.cfg.MaxHops {
				break
			}
			if n.faults.LinkDown(n.cycle, at, d) {
				n.holdUnreachable(p)
				return false
			}
			next, ok := n.m.Neighbor(at, d)
			if !ok {
				panic("core: multicast fault probe walks off mesh")
			}
			at = next
		}
		p.control, p.launch = ctl, launch
		return true
	}
	dirs, ok := n.det.AppendDetour(n.frDirs[:0], p.owner, p.dst, n.routeUsable)
	n.frDirs = dirs
	if !ok {
		n.holdUnreachable(p)
		return false
	}
	ctl, launch := packet.ControlFromDirs(dirs)
	ctl.MarkInterims(n.cfg.MaxHops)
	p.control, p.launch = ctl, launch
	return true
}

// holdUnreachable records a failed route probe and delays the parcel's
// next attempt. The parcel is not abandoned here — transient faults heal,
// and the loss timeout (when configured) bounds how long it waits.
func (n *Network) holdUnreachable(p *parcel) {
	n.run.Unreachable++
	n.emit(obs.KindUnreachable, p.msgID, p.owner, mesh.Local)
	p.eligibleAt = n.cycle + unreachableProbe
}

// loseParcel abandons a parcel: its outstanding deliveries are reported
// lost to the handler (so harnesses do not wait for them forever) and the
// parcel returns to the free list. The caller removes it from whatever
// queue held it.
func (n *Network) loseParcel(p *parcel, reason sim.LossReason) {
	count := 1
	if p.multicast {
		count = len(p.remaining)
	}
	n.live--
	if count > 0 {
		n.run.Lost += int64(count)
		n.emit(obs.KindLost, p.msgID, p.owner, mesh.Local)
		if n.lossHandler != nil {
			n.lossHandler(sim.Loss{MsgID: p.msgID, Node: p.owner, Count: count, Reason: reason})
		}
	}
	n.putParcel(p)
}

// faultStep runs once per cycle when the watchdog is armed: it surfaces
// fault activation/heal boundaries as observability events and
// periodically scans the buffers for timed-out or starving parcels.
func (n *Network) faultStep() {
	if n.faults.Pending(n.cycle) {
		n.faults.Step(n.cycle, n.emitTransition)
	}
	if n.cycle >= n.nextScan {
		n.watchdogScan()
		n.nextScan = n.cycle + n.watchEvery
	}
}

// emitTransition reports one fault boundary through the tracer.
func (n *Network) emitTransition(tr fault.Transition) {
	n.emit(obs.KindFault, 0, tr.Node, tr.Dir)
}

// watchdogScan is the livelock/starvation watchdog: it walks every
// electrical buffer, abandons parcels older than LossTimeout, and reports
// parcels that crossed the starvation threshold since the last scan. It
// runs every watchEvery cycles, off the per-cycle hot path.
func (n *Network) watchdogScan() {
	for node := range n.routers {
		r := &n.routers[node]
		for d := 0; d < mesh.NumDirs; d++ {
			q := &r.queues[d]
			if len(q.items) == 0 {
				continue
			}
			w := 0
			for _, p := range q.items {
				age := n.cycle - p.born
				if n.cfg.LossTimeout > 0 && age >= n.cfg.LossTimeout {
					n.loseParcel(p, sim.LossTimeout)
					continue
				}
				if age >= n.starveAfter && age-n.watchEvery < n.starveAfter {
					// First scan past the threshold only, so a
					// starving parcel is reported once.
					n.emit(obs.KindStarve, p.msgID, p.owner, p.launch)
				}
				q.items[w] = p
				w++
			}
			for i := w; i < len(q.items); i++ {
				q.items[i] = nil
			}
			q.items = q.items[:w]
		}
	}
}
