// Package core implements the cycle-accurate simulator of the Phastlane
// optical routing network (paper Section 2): an 8x8 grid of optical
// crossbar switches in which a packet carrying predecoded source-routing
// control bits traverses up to MaxHops links per 4 GHz cycle. Contention is
// resolved with fixed priority (straight-through beats turns, buffered
// packets beat new arrivals); losers are captured into small per-port
// electrical buffers, or dropped - triggering an optical drop-signal return
// path to the responsible sender, which backs off and retransmits.
// Journeys longer than MaxHops stop at interim nodes that buffer and
// relaunch; broadcasts decompose into up to 16 tap-and-continue multicast
// column sweeps.
package core

import (
	"fmt"

	"phastlane/internal/fault"
	"phastlane/internal/packet"
	"phastlane/internal/photonic"
	"phastlane/internal/power"
)

// Arbiter names a buffered-packet relaunch arbitration policy.
type Arbiter int

// Relaunch arbiters. ArbRotating is the paper's scheme: a pointer rotates
// over the five queues each cycle. ArbOldestFirst serves the
// longest-waiting packet anywhere in the router; ArbLongestQueue drains the
// fullest buffer first (both Section 7 "future work" alternatives).
const (
	ArbRotating Arbiter = iota
	ArbOldestFirst
	ArbLongestQueue
	numArbiters
)

// String names the arbiter.
func (a Arbiter) String() string {
	switch a {
	case ArbRotating:
		return "rotating"
	case ArbOldestFirst:
		return "oldest-first"
	case ArbLongestQueue:
		return "longest-queue"
	default:
		return fmt.Sprintf("Arbiter(%d)", int(a))
	}
}

// Config parameterises a Phastlane network. DefaultConfig matches the
// paper's Table 1.
type Config struct {
	// Width, Height give the mesh radix (8x8 = 64 nodes).
	Width, Height int
	// MaxHops is the number of links a packet covers per cycle: 4, 5,
	// or 8 for pessimistic/average/optimistic device scaling (Fig. 6).
	MaxHops int
	// BufferEntries is the capacity of each of the five per-router
	// electrical buffers (four input ports + local). Negative means
	// unbounded (the paper's "Optical4IB").
	BufferEntries int
	// NICEntries is the network-interface injection queue size.
	NICEntries int
	// WDM is the payload wavelength count per waveguide.
	WDM int
	// CrossingEff is the per-waveguide-crossing power efficiency.
	CrossingEff float64
	// Bypass lets a buffering router re-segment the remaining route
	// from its own position (possibly skipping the original interim
	// nodes), as Section 2.1.3 allows.
	Bypass bool
	// BackoffBase and BackoffMax bound the randomised exponential
	// backoff before a dropped packet is retransmitted.
	BackoffBase, BackoffMax int
	// Arbiter selects the electrical-buffer relaunch policy; the
	// paper's Section 7 lists alternatives to the rotating scheme as
	// future work, and the ablation benchmark compares them.
	Arbiter Arbiter
	// RoundRobinTurns replaces the fixed straight-over-turn crossbar
	// priority with a rotating one. The paper's footnote 3 found no
	// performance advantage from this (it would also lengthen the
	// crossbar critical path); the ablation benchmark confirms it.
	RoundRobinTurns bool
	// UnicastBroadcast disables the multicast column sweeps and sends
	// broadcasts as 63 unicast packets - the ablation showing why
	// Section 2.1.4's multicast support matters.
	UnicastBroadcast bool
	// Faults, when non-nil and non-empty, arms the deterministic
	// fault-injection plan: dead links, stuck routers, buffer-slot
	// failures and control-bit corruption (package fault). Relaunches
	// then source-route around unusable hardware. Nil (or an empty
	// plan) costs nothing and leaves behaviour bit-identical.
	Faults *fault.Plan
	// RetryLimit caps drop-triggered retransmissions per packet; a
	// packet dropped past the limit is abandoned and reported lost
	// through the delivery layer. 0 retries forever (the paper's
	// protocol, which assumes perfect hardware).
	RetryLimit int
	// LossTimeout, when positive, is the delivery watchdog's loss
	// detector: a packet still undelivered that many cycles after
	// injection is abandoned and reported lost. 0 disables timeouts.
	LossTimeout int64
	// Seed drives the arbitration jitter and backoff randomness.
	Seed int64
}

// DefaultConfig returns the paper's baseline optical configuration
// (Table 1): an 8x8 mesh, 4 hops per cycle, 10-entry buffers, a 50-entry
// NIC, 64-way WDM, and 98% crossing efficiency.
func DefaultConfig() Config {
	return Config{
		Width: 8, Height: 8,
		MaxHops:       4,
		BufferEntries: 10,
		NICEntries:    50,
		WDM:           64,
		CrossingEff:   0.98,
		Bypass:        true,
		BackoffBase:   1,
		BackoffMax:    8,
		Seed:          1,
	}
}

// ConfigForScenario returns DefaultConfig with MaxHops set from the
// device-scaling scenario: 8 (optimistic), 5 (average) or 4 (pessimistic).
func ConfigForScenario(s photonic.Scenario) Config {
	cfg := DefaultConfig()
	cfg.MaxHops = photonic.MaxHopsPerCycle(s, cfg.WDM, photonic.DefaultClockGHz)
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width < 2 || c.Height < 2 {
		return fmt.Errorf("core: mesh %dx%d too small", c.Width, c.Height)
	}
	if c.MaxHops < 1 {
		return fmt.Errorf("core: MaxHops %d", c.MaxHops)
	}
	if c.BufferEntries == 0 {
		return fmt.Errorf("core: zero BufferEntries would drop every blocked packet")
	}
	if c.NICEntries < 1 {
		return fmt.Errorf("core: NICEntries %d", c.NICEntries)
	}
	if c.WDM < 1 {
		return fmt.Errorf("core: WDM %d", c.WDM)
	}
	if c.CrossingEff <= 0 || c.CrossingEff > 1 {
		return fmt.Errorf("core: crossing efficiency %v", c.CrossingEff)
	}
	if c.BackoffBase < 1 || c.BackoffMax < c.BackoffBase {
		return fmt.Errorf("core: backoff range [%d,%d]", c.BackoffBase, c.BackoffMax)
	}
	if c.Arbiter < 0 || c.Arbiter >= numArbiters {
		return fmt.Errorf("core: unknown arbiter %d", c.Arbiter)
	}
	if c.RetryLimit < 0 {
		return fmt.Errorf("core: negative retry limit %d", c.RetryLimit)
	}
	if c.LossTimeout < 0 {
		return fmt.Errorf("core: negative loss timeout %d", c.LossTimeout)
	}
	if err := c.Faults.Validate(c.Width, c.Height); err != nil {
		return err
	}
	if diameter := c.Width + c.Height - 2; diameter > packet.MaxGroups && !c.Bypass {
		return fmt.Errorf("core: %dx%d mesh (diameter %d) exceeds the %d-group control format; meshes beyond 8x8 require Bypass so interim nodes rebuild truncated routes",
			c.Width, c.Height, diameter, packet.MaxGroups)
	}
	return nil
}

// energyModel derives the power model for this configuration.
func (c Config) energyModel() power.Optical {
	return power.NewOptical(c.WDM, c.MaxHops, c.CrossingEff)
}
