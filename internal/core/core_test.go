package core

import (
	"math/rand"
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
)

func mustNew(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg)
}

// stepUntilQuiescent drives the network and collects deliveries, failing
// the test if it does not settle within limit cycles.
func stepUntilQuiescent(t *testing.T, n *Network, limit int) []sim.Delivery {
	t.Helper()
	var all []sim.Delivery
	for i := 0; i < limit; i++ {
		all = append(all, n.Step(nil)...)
		if n.Quiescent() {
			return all
		}
	}
	t.Fatalf("network not quiescent after %d cycles (live=%d)", limit, n.live)
	return nil
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Width = 1 },
		func(c *Config) { c.MaxHops = 0 },
		func(c *Config) { c.BufferEntries = 0 },
		func(c *Config) { c.NICEntries = 0 },
		func(c *Config) { c.WDM = 0 },
		func(c *Config) { c.CrossingEff = 0 },
		func(c *Config) { c.CrossingEff = 1.2 },
		func(c *Config) { c.BackoffBase = 0 },
		func(c *Config) { c.BackoffMax = 1; c.BackoffBase = 4 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Width != 8 || cfg.Height != 8 {
		t.Error("default mesh is not 8x8")
	}
	if cfg.NICEntries != 50 {
		t.Errorf("NIC entries = %d, want 50 (Table 1)", cfg.NICEntries)
	}
	if cfg.WDM != 64 {
		t.Errorf("WDM = %d, want 64 (Table 1)", cfg.WDM)
	}
	if cfg.BufferEntries != 10 {
		t.Errorf("buffers = %d, want 10 (Section 5)", cfg.BufferEntries)
	}
}

func TestSingleHopDeliveredSameCycle(t *testing.T) {
	n := mustNew(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	ds := n.Step(nil)
	if len(ds) != 1 || ds[0].MsgID != 1 || ds[0].Dst != 1 {
		t.Fatalf("deliveries = %v", ds)
	}
	if !n.Quiescent() {
		// The NIC slot is still reserved for the drop window.
		n.Step(nil)
	}
	if !n.Quiescent() {
		t.Error("network not quiescent after delivery")
	}
}

func TestMaxHopsReachedInOneCycle(t *testing.T) {
	// Distance 4 with MaxHops 4: one cycle.
	n := mustNew(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{4}, Op: packet.OpSynthetic})
	if ds := n.Step(nil); len(ds) != 1 {
		t.Fatalf("distance-4 packet not delivered in first cycle: %v", ds)
	}
}

func TestInterimNodePipelining(t *testing.T) {
	// Corner to corner: 14 links at MaxHops=4 => 4 transmission cycles
	// separated by 1-cycle buffer turnarounds: delivered on cycle
	// ceil(14/4) + turnarounds. Check it takes >1 and <=8 cycles and
	// exactly one delivery happens.
	n := mustNew(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{63}, Op: packet.OpSynthetic})
	var deliveredAt int64 = -1
	for i := int64(0); i < 10; i++ {
		if ds := n.Step(nil); len(ds) > 0 {
			deliveredAt = i
			break
		}
	}
	if deliveredAt <= 0 {
		t.Fatalf("corner-to-corner packet delivered at cycle %d, want >0", deliveredAt)
	}
	if deliveredAt > 7 {
		t.Fatalf("corner-to-corner took %d cycles uncontended, too slow", deliveredAt)
	}
	if n.Run().BufferedPackets == 0 {
		t.Error("expected interim buffering on a 14-link journey")
	}
}

func TestInterimCountMatchesSegmentation(t *testing.T) {
	// 14 links at 5 hops/cycle: interims at 5 and 10 => 2 bufferings,
	// 3 transmission cycles.
	n := mustNew(t, func(c *Config) { c.MaxHops = 5 })
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{63}, Op: packet.OpSynthetic})
	stepUntilQuiescent(t, n, 20)
	if got := n.Run().BufferedPackets; got != 2 {
		t.Errorf("buffered %d times, want 2 (interims at hops 5 and 10)", got)
	}
	if got := n.Run().LinkTraversals; got != 14 {
		t.Errorf("link traversals = %d, want 14", got)
	}
}

func TestEightHopNetworkSkipsInterims(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.MaxHops = 8 })
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{7}, Op: packet.OpSynthetic})
	if ds := n.Step(nil); len(ds) != 1 {
		t.Fatal("7-link journey should complete in one cycle at MaxHops=8")
	}
	if n.Run().BufferedPackets != 0 {
		t.Error("no interim buffering expected")
	}
}

func TestContentionBuffersLoser(t *testing.T) {
	// Two packets both need link (1 -> 2) eastward in the same cycle:
	// node 0 -> 3 and node 1 -> 3. The node-1 packet launches at step
	// 0 and claims (1,E); the node-0 packet arrives at router 1 a step
	// later, finds the link claimed, and is buffered at router 1.
	n := mustNew(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	n.Inject(sim.Message{ID: 2, Src: 1, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	first := n.Step(nil)
	if len(first) != 1 || first[0].MsgID != 2 {
		t.Fatalf("cycle 0 deliveries = %v, want msg 2 only", first)
	}
	if n.Run().BufferedPackets != 1 {
		t.Fatalf("buffered = %d, want 1", n.Run().BufferedPackets)
	}
	second := n.Step(nil)
	if len(second) != 1 || second[0].MsgID != 1 {
		t.Fatalf("cycle 1 deliveries = %v, want msg 1", second)
	}
}

func TestStraightBeatsTurn(t *testing.T) {
	// Under X-then-Y routing turns always exit vertically, so turn
	// contention arises on vertical links. At router 9 (coord (1,1)):
	// msg 1: 1 -> 17, straight north through 9.
	// msg 2: 8 -> 17, east to 9 then a left turn north.
	// Both request link (9, N) at the same walk step; the straight
	// packet must win and the turning one is buffered at router 9.
	n := mustNew(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 1, Dsts: []mesh.NodeID{17}, Op: packet.OpSynthetic})
	n.Inject(sim.Message{ID: 2, Src: 8, Dsts: []mesh.NodeID{17}, Op: packet.OpSynthetic})
	first := n.Step(nil)
	if len(first) != 1 || first[0].MsgID != 1 {
		t.Fatalf("cycle 0 deliveries = %v, want straight msg 1", first)
	}
	if n.Run().BufferedPackets != 1 {
		t.Errorf("buffered = %d, want 1 (the turning packet)", n.Run().BufferedPackets)
	}
	second := n.Step(nil)
	if len(second) != 1 || second[0].MsgID != 2 {
		t.Fatalf("cycle 1 deliveries = %v, want msg 2", second)
	}
	if n.Run().Drops != 0 {
		t.Error("no drops expected with empty buffers")
	}
}

func TestBufferFullDropsAndRetransmits(t *testing.T) {
	// BufferEntries=1. Flood link (1, E): node 1's NIC launches claim
	// it every cycle, so node 0's packets arriving at router 1 are
	// blocked into its single-entry West buffer; once that slot is
	// occupied (or reserved for the drop window), further arrivals are
	// dropped and must be retransmitted after the drop signal returns.
	n := mustNew(t, func(c *Config) { c.BufferEntries = 1; c.Seed = 7 })
	const perSource = 15
	var id uint64
	for i := 0; i < perSource; i++ {
		id++
		n.Inject(sim.Message{ID: id, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
		id++
		n.Inject(sim.Message{ID: id, Src: 1, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	}
	got := make(map[uint64]int)
	for _, d := range stepUntilQuiescent(t, n, 2000) {
		got[d.MsgID]++
	}
	for m := uint64(1); m <= id; m++ {
		if got[m] != 1 {
			t.Errorf("msg %d delivered %d times, want exactly once", m, got[m])
		}
	}
	if n.Run().Drops == 0 || n.Run().Retries == 0 {
		t.Errorf("expected drops and retries, got drops=%d retries=%d", n.Run().Drops, n.Run().Retries)
	}
}

func TestBroadcastDeliversToAll(t *testing.T) {
	n := mustNew(t, nil)
	all := make([]mesh.NodeID, 0, 63)
	for i := mesh.NodeID(0); i < 64; i++ {
		if i != 27 {
			all = append(all, i)
		}
	}
	n.Inject(sim.Message{ID: 1, Src: 27, Dsts: all, Op: packet.OpReadReq})
	got := make(map[mesh.NodeID]int)
	for _, d := range stepUntilQuiescent(t, n, 500) {
		got[d.Dst]++
	}
	if len(got) != 63 {
		t.Fatalf("broadcast reached %d nodes, want 63", len(got))
	}
	for node, cnt := range got {
		if cnt != 1 {
			t.Errorf("node %d received %d copies", node, cnt)
		}
	}
	if got[27] != 0 {
		t.Error("source received its own broadcast")
	}
}

func TestBroadcastUnderTinyBuffers(t *testing.T) {
	// With 1-entry buffers many sweeps drop; retransmission must still
	// deliver every node exactly once (served nodes are trimmed from
	// the resent multicast, paper Section 2.1.4).
	n := mustNew(t, func(c *Config) { c.BufferEntries = 1; c.Seed = 3 })
	var all []mesh.NodeID
	for i := mesh.NodeID(1); i < 64; i++ {
		all = append(all, i)
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: all, Op: packet.OpWriteReq})
	// Add unicast cross-traffic to force contention.
	id := uint64(2)
	for s := mesh.NodeID(8); s < 16; s++ {
		n.Inject(sim.Message{ID: id, Src: s, Dsts: []mesh.NodeID{63 - s}, Op: packet.OpSynthetic})
		id++
	}
	perNode := make(map[mesh.NodeID]int)
	for _, d := range stepUntilQuiescent(t, n, 2000) {
		if d.MsgID == 1 {
			perNode[d.Dst]++
		}
	}
	if len(perNode) != 63 {
		t.Fatalf("broadcast reached %d nodes, want 63", len(perNode))
	}
	for node, cnt := range perNode {
		if cnt != 1 {
			t.Errorf("node %d received %d copies", node, cnt)
		}
	}
}

func TestNICCapacity(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.NICEntries = 2 })
	if free := n.NICFree(0); free != 2 {
		t.Fatalf("NICFree = %d, want 2", free)
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	n.Inject(sim.Message{ID: 2, Src: 0, Dsts: []mesh.NodeID{2}, Op: packet.OpSynthetic})
	if free := n.NICFree(0); free != 0 {
		t.Fatalf("NICFree = %d, want 0", free)
	}
	defer func() {
		if recover() == nil {
			t.Error("Inject into full NIC did not panic")
		}
	}()
	n.Inject(sim.Message{ID: 3, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
}

func TestInjectRejectsBadDestinations(t *testing.T) {
	n := mustNew(t, nil)
	for _, dsts := range [][]mesh.NodeID{{0}, {1, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Inject with dsts %v did not panic", dsts)
				}
			}()
			n.Inject(sim.Message{ID: 1, Src: 0, Dsts: dsts, Op: packet.OpSynthetic})
		}()
	}
}

// checkQueueBounds asserts no buffer exceeds its capacity.
func checkQueueBounds(t *testing.T, n *Network) {
	t.Helper()
	for node := range n.routers {
		for d := 0; d < mesh.NumDirs; d++ {
			q := &n.routers[node].queues[d]
			if q.cap >= 0 && q.occupancy() > q.cap && d != int(mesh.Local) {
				t.Fatalf("router %d queue %s over capacity: %d > %d",
					node, mesh.Dir(d), q.occupancy(), q.cap)
			}
			if q.reserved < 0 {
				t.Fatalf("router %d queue %s negative reservation", node, mesh.Dir(d))
			}
		}
	}
}

// Property: under heavy random unicast load with small buffers, every
// message is delivered exactly once, buffers never overflow, and the
// network drains.
func TestConservationUnderLoad(t *testing.T) {
	for _, buffers := range []int{1, 2, 10, -1} {
		n := mustNew(t, func(c *Config) { c.BufferEntries = buffers; c.Seed = 11 })
		rng := rand.New(rand.NewSource(99))
		injected := make(map[uint64]mesh.NodeID)
		var id uint64
		for cycle := 0; cycle < 300; cycle++ {
			for node := mesh.NodeID(0); node < 64; node++ {
				if rng.Float64() < 0.15 && n.NICFree(node) > 0 {
					dst := mesh.NodeID(rng.Intn(64))
					if dst == node {
						continue
					}
					id++
					n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
					injected[id] = dst
				}
			}
			n.Step(nil)
			checkQueueBounds(t, n)
		}
		delivered := make(map[uint64]int)
		for i := 0; i < 20000 && !n.Quiescent(); i++ {
			for _, d := range n.Step(nil) {
				if injected[d.MsgID] != d.Dst {
					t.Fatalf("buffers=%d: msg %d delivered to %d, want %d", buffers, d.MsgID, d.Dst, injected[d.MsgID])
				}
				delivered[d.MsgID]++
			}
		}
		// Deliveries during the injection phase were not collected
		// above; re-run bookkeeping style: count only completeness.
		if !n.Quiescent() {
			t.Fatalf("buffers=%d: network failed to drain", buffers)
		}
		for msg, cnt := range delivered {
			if cnt != 1 {
				t.Fatalf("buffers=%d: msg %d delivered %d times", buffers, msg, cnt)
			}
		}
	}
}

// Property: full conservation - collect deliveries from injection on, and
// verify the delivered set equals the injected set exactly.
func TestExactOnceDelivery(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.BufferEntries = 2; c.Seed = 5 })
	rng := rand.New(rand.NewSource(42))
	injected := make(map[uint64]bool)
	delivered := make(map[uint64]int)
	var id uint64
	collect := func(ds []sim.Delivery) {
		for _, d := range ds {
			delivered[d.MsgID]++
		}
	}
	for cycle := 0; cycle < 500; cycle++ {
		for node := mesh.NodeID(0); node < 64; node++ {
			if rng.Float64() < 0.2 && n.NICFree(node) > 0 {
				dst := mesh.NodeID(rng.Intn(64))
				if dst == node {
					continue
				}
				id++
				injected[id] = true
				n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
			}
		}
		collect(n.Step(nil))
	}
	for i := 0; i < 30000 && !n.Quiescent(); i++ {
		collect(n.Step(nil))
	}
	if !n.Quiescent() {
		t.Fatal("network failed to drain")
	}
	if len(delivered) != len(injected) {
		t.Fatalf("delivered %d distinct messages, injected %d", len(delivered), len(injected))
	}
	for msg, cnt := range delivered {
		if cnt != 1 || !injected[msg] {
			t.Fatalf("msg %d delivered %d times (injected=%v)", msg, cnt, injected[msg])
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		n := mustNew(t, func(c *Config) { c.BufferEntries = 1; c.Seed = 13 })
		rng := rand.New(rand.NewSource(1))
		var id uint64
		for cycle := 0; cycle < 200; cycle++ {
			for node := mesh.NodeID(0); node < 64; node++ {
				if rng.Float64() < 0.3 && n.NICFree(node) > 0 {
					dst := mesh.NodeID(rng.Intn(64))
					if dst == node {
						continue
					}
					id++
					n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
				}
			}
			n.Step(nil)
		}
		r := n.Run()
		return r.Drops, r.Retries, r.LinkTraversals
	}
	d1, r1, l1 := run()
	d2, r2, l2 := run()
	if d1 != d2 || r1 != r2 || l1 != l2 {
		t.Errorf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", d1, r1, l1, d2, r2, l2)
	}
}

func TestBypassDisabledStillDelivers(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.Bypass = false; c.BufferEntries = 2; c.Seed = 17 })
	var id uint64
	injected := 0
	for s := mesh.NodeID(0); s < 8; s++ {
		id++
		n.Inject(sim.Message{ID: id, Src: s, Dsts: []mesh.NodeID{63 - s}, Op: packet.OpSynthetic})
		injected++
	}
	ds := stepUntilQuiescent(t, n, 2000)
	if len(ds) != injected {
		t.Errorf("delivered %d, want %d", len(ds), injected)
	}
}

func TestInfiniteBuffersNeverDrop(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.BufferEntries = -1; c.Seed = 19 })
	rng := rand.New(rand.NewSource(2))
	var id uint64
	for cycle := 0; cycle < 200; cycle++ {
		for node := mesh.NodeID(0); node < 64; node++ {
			if rng.Float64() < 0.4 && n.NICFree(node) > 0 {
				dst := mesh.NodeID(rng.Intn(64))
				if dst == node {
					continue
				}
				id++
				n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
			}
		}
		n.Step(nil)
	}
	if n.Run().Drops != 0 {
		t.Errorf("infinite buffers dropped %d packets", n.Run().Drops)
	}
}

func TestEnergyAccountingAccumulates(t *testing.T) {
	n := mustNew(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{7}, Op: packet.OpSynthetic})
	stepUntilQuiescent(t, n, 50)
	r := n.Run()
	if r.OpticalEnergyPJ <= 0 || r.ElectricalEnergyPJ <= 0 || r.LeakagePJ <= 0 {
		t.Errorf("energy not accumulating: optical=%v electrical=%v leakage=%v",
			r.OpticalEnergyPJ, r.ElectricalEnergyPJ, r.LeakagePJ)
	}
}

func TestConfigForScenario(t *testing.T) {
	want := map[photonic.Scenario]int{
		photonic.Optimistic:  8,
		photonic.Average:     5,
		photonic.Pessimistic: 4,
	}
	for s, hops := range want {
		cfg := ConfigForScenario(s)
		if cfg.MaxHops != hops {
			t.Errorf("scenario %s MaxHops = %d, want %d", s, cfg.MaxHops, hops)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scenario %s config invalid: %v", s, err)
		}
	}
}

func TestLargeMeshUnicastDelivery(t *testing.T) {
	// 16x16: the corner-to-corner route (30 links) exceeds the 14-group
	// control format and relies on truncation + interim rebuild.
	n := mustNew(t, func(c *Config) { c.Width = 16; c.Height = 16 })
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{255}, Op: packet.OpSynthetic})
	ds := stepUntilQuiescent(t, n, 100)
	if len(ds) != 1 || ds[0].Dst != 255 {
		t.Fatalf("deliveries = %v", ds)
	}
	if got := n.Run().LinkTraversals; got != 30 {
		t.Errorf("link traversals = %d, want 30", got)
	}
}

func TestLargeMeshBroadcastDelivery(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.Width = 16; c.Height = 16; c.BufferEntries = 4 })
	var all []mesh.NodeID
	for i := mesh.NodeID(0); i < 256; i++ {
		if i != 137 {
			all = append(all, i)
		}
	}
	n.Inject(sim.Message{ID: 1, Src: 137, Dsts: all, Op: packet.OpWriteReq})
	served := map[mesh.NodeID]int{}
	for _, d := range stepUntilQuiescent(t, n, 3000) {
		served[d.Dst]++
	}
	if len(served) != 255 {
		t.Fatalf("broadcast reached %d nodes, want 255", len(served))
	}
	for node, c := range served {
		if c != 1 {
			t.Errorf("node %d served %d times", node, c)
		}
	}
}

func TestLargeMeshRequiresBypass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 16, 16
	cfg.Bypass = false
	if err := cfg.Validate(); err == nil {
		t.Error("16x16 without bypass should fail validation")
	}
}

func TestUnicastBroadcastAblation(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.UnicastBroadcast = true })
	var all []mesh.NodeID
	for i := mesh.NodeID(1); i < 64; i++ {
		all = append(all, i)
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: all, Op: packet.OpWriteReq})
	served := map[mesh.NodeID]int{}
	for _, d := range stepUntilQuiescent(t, n, 3000) {
		served[d.Dst]++
	}
	if len(served) != 63 {
		t.Fatalf("unicast storm reached %d nodes, want 63", len(served))
	}
}

func TestRoundRobinTurnsStillDelivers(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.RoundRobinTurns = true; c.BufferEntries = 2; c.Seed = 23 })
	var id uint64
	for s := mesh.NodeID(0); s < 16; s++ {
		id++
		n.Inject(sim.Message{ID: id, Src: s, Dsts: []mesh.NodeID{63 - s}, Op: packet.OpSynthetic})
	}
	ds := stepUntilQuiescent(t, n, 2000)
	if len(ds) != int(id) {
		t.Errorf("delivered %d, want %d", len(ds), id)
	}
}

func TestArbiterPoliciesDeliver(t *testing.T) {
	for _, arb := range []Arbiter{ArbRotating, ArbOldestFirst, ArbLongestQueue} {
		n := mustNew(t, func(c *Config) { c.Arbiter = arb; c.BufferEntries = 2; c.Seed = 31 })
		rng := rand.New(rand.NewSource(8))
		injected := 0
		delivered := map[uint64]int{}
		var id uint64
		for cycle := 0; cycle < 150; cycle++ {
			for node := mesh.NodeID(0); node < 64; node++ {
				if rng.Float64() < 0.2 && n.NICFree(node) > 0 {
					dst := mesh.NodeID(rng.Intn(64))
					if dst == node {
						continue
					}
					id++
					injected++
					n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
				}
			}
			for _, d := range n.Step(nil) {
				delivered[d.MsgID]++
			}
		}
		for i := 0; i < 20000 && !n.Quiescent(); i++ {
			for _, d := range n.Step(nil) {
				delivered[d.MsgID]++
			}
		}
		if !n.Quiescent() {
			t.Fatalf("%s: failed to drain", arb)
		}
		if len(delivered) != injected {
			t.Fatalf("%s: delivered %d of %d", arb, len(delivered), injected)
		}
		for m, c := range delivered {
			if c != 1 {
				t.Fatalf("%s: msg %d delivered %d times", arb, m, c)
			}
		}
	}
}

func TestArbiterValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arbiter = Arbiter(99)
	if cfg.Validate() == nil {
		t.Error("unknown arbiter accepted")
	}
	for _, a := range []Arbiter{ArbRotating, ArbOldestFirst, ArbLongestQueue} {
		if a.String() == "" {
			t.Error("arbiter missing name")
		}
	}
	if Arbiter(99).String() == "" {
		t.Error("unknown arbiter name empty")
	}
}

func TestTracerEventSequence(t *testing.T) {
	n := mustNew(t, nil)
	var events []Event
	n.SetTracer(func(e Event) { events = append(events, e) })
	// 0 -> 2: inject at the NIC, launch, one pass at router 1, eject at 2.
	n.Inject(sim.Message{ID: 9, Src: 0, Dsts: []mesh.NodeID{2}, Op: packet.OpSynthetic})
	n.Step(nil)
	want := []EventKind{EventInject, EventLaunch, EventPass, EventEject}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i, k := range want {
		if events[i].Kind != k || events[i].MsgID != 9 {
			t.Fatalf("event %d = %v, want kind %v", i, events[i], k)
		}
	}
	if events[0].Node != 0 || events[1].Node != 0 || events[2].Node != 1 || events[3].Node != 2 {
		t.Fatalf("event nodes wrong: %v", events)
	}
	// Tracing off again: no more events.
	n.SetTracer(nil)
	n.Inject(sim.Message{ID: 10, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	n.Step(nil)
	if len(events) != len(want) {
		t.Error("events recorded after tracer removed")
	}
}

func TestTracerDropAndRetry(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.BufferEntries = 1; c.Seed = 7 })
	kinds := map[EventKind]int{}
	n.SetTracer(func(e Event) { kinds[e.Kind]++ })
	var id uint64
	for i := 0; i < 15; i++ {
		id++
		n.Inject(sim.Message{ID: id, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
		id++
		n.Inject(sim.Message{ID: id, Src: 1, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	}
	stepUntilQuiescent(t, n, 2000)
	if kinds[EventDrop] == 0 || kinds[EventRetry] == 0 {
		t.Errorf("expected drops and retries in trace: %v", kinds)
	}
	if kinds[EventDrop] != kinds[EventRetry] {
		t.Errorf("drops %d != retries %d", kinds[EventDrop], kinds[EventRetry])
	}
	if kinds[EventEject] != int(id) {
		t.Errorf("ejects %d, want %d", kinds[EventEject], id)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 12, Kind: EventLaunch, MsgID: 3, Node: 27, Dir: mesh.North}
	if got := e.String(); got != "c12 launch msg3 @27->N" {
		t.Errorf("Event.String = %q", got)
	}
	for k := EventLaunch; k <= EventRetry; k++ {
		if k.String() == "" {
			t.Error("missing kind name")
		}
	}
}
