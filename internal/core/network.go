package core

import (
	"fmt"
	"math/rand"

	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/photonic"
	"phastlane/internal/power"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
	"phastlane/internal/topo"
)

// parcel is one physical Phastlane packet: a unicast message or one
// multicast column-sweep of a broadcast. It lives in exactly one electrical
// buffer (or the NIC) between transmission attempts.
type parcel struct {
	msgID uint64
	op    packet.Op
	src   mesh.NodeID
	dst   mesh.NodeID // final destination (sweep end for multicast)
	// owner is the node currently responsible for delivery: the
	// original source, or the last router that buffered the parcel.
	owner mesh.NodeID
	// control and launch describe the remaining route from owner.
	control packet.Control
	launch  mesh.Dir
	// remaining lists the multicast destinations not yet served, in
	// sweep order. Nil for unicast parcels. It slides forward over
	// remBuf, the parcel-owned backing array the free list preserves
	// across reuses.
	remaining []mesh.NodeID
	remBuf    []mesh.NodeID
	multicast bool
	retries   int
	// born is the injection cycle, the delivery watchdog's age base.
	born int64
	// eligibleAt gates relaunch (buffer turnaround, drop backoff);
	// enqueuedAt records when the parcel entered its current queue
	// (for the oldest-first arbiter).
	eligibleAt, enqueuedAt int64
	// skipAt marks the parcel as passed over by this cycle's arbiter
	// (its output port was already granted), replacing the per-router
	// skip set the launch loop used to allocate each cycle.
	skipAt int64
}

// outcome of one transmission attempt, resolved within the launch cycle and
// acted on at the start of the next (the drop-signal window).
type outcome int

const (
	outcomePending  outcome = iota
	outcomeSafe             // buffered downstream; the parcel lives on
	outcomeRetired          // delivered; the parcel is finished
	outcomeDropped          // drop signal returns to the owner
	outcomeComplete         // dropped, but no deliveries remained
)

// launchRecord remembers a transmission so the owner's buffer slot can be
// released (or the parcel requeued) one cycle later.
type launchRecord struct {
	p       *parcel
	q       *pqueue
	control packet.Control // pre-launch control, restored on drop
	launch  mesh.Dir
	result  outcome
}

// pqueue is one electrical buffer: a FIFO with a capacity that also counts
// slots reserved by in-flight launches awaiting their drop window.
type pqueue struct {
	items    []*parcel
	reserved int
	cap      int // negative = unbounded
}

func (q *pqueue) occupancy() int { return len(q.items) + q.reserved }

func (q *pqueue) free() int {
	if q.cap < 0 {
		return 1 << 30
	}
	f := q.cap - q.occupancy()
	if f < 0 {
		return 0
	}
	return f
}

// headEligible returns the first launchable parcel, or nil.
func (q *pqueue) headEligible(cycle int64) *parcel {
	for _, p := range q.items {
		if p.eligibleAt <= cycle {
			return p
		}
	}
	return nil
}

// take removes p from the queue and reserves its slot for the drop window.
func (q *pqueue) take(p *parcel) {
	for i, it := range q.items {
		if it == p {
			q.items = append(q.items[:i], q.items[i+1:]...)
			q.reserved++
			return
		}
	}
	panic("core: take of parcel not in queue")
}

// router holds the five electrical buffers (N, E, S, W input ports plus the
// local NIC) and the rotating-priority launch pointer.
type router struct {
	queues [mesh.NumDirs]pqueue
	rotate int
}

// Network is the Phastlane simulator. Create with New; drive with Inject
// and Step (the sim.Network interface).
type Network struct {
	cfg Config
	// top is the routing view of the fabric; all route compilation
	// (control words, sweep rebuilds, fault detours) goes through it.
	// m is the concrete geometry the optical walk steps across — the
	// Phastlane datapath itself is a 2D-mesh design (predecoded compass
	// control groups, column broadcast sweeps), so the physics stays on
	// the concrete mesh while routing is interface-shaped.
	top    topo.Topology
	enc    topo.ControlEncoder
	det    topo.FaultRouting
	m      *mesh.Mesh
	energy power.Optical
	rng    *rand.Rand

	routers []router
	// claims[node*4+dir] holds the cycle in which the directed link
	// out of node toward dir was last used; a link carries one packet
	// per cycle.
	claims []int64
	// pending holds launches awaiting their drop window.
	pending []launchRecord
	// live counts parcels anywhere in the system.
	live int
	// tracer receives router events when set (SetTracer).
	tracer func(Event)
	// phases receives sampled per-phase step timings when set
	// (SetPhases); nil — the default — costs one branch per Step.
	phases *telemetry.Phases

	// Fault injection and the delivery layer (fault.go). faults is nil
	// unless a plan is armed: every hot-path consultation hides behind
	// that one nil check. watchEvery > 0 arms the delivery watchdog
	// (fault plan, or LossTimeout without one).
	faults      *fault.Injector
	routeUsable mesh.LinkUsable
	frDirs      []mesh.Dir
	lossHandler func(sim.Loss)
	nackHandler func(src mesh.NodeID)
	watchEvery  int64
	nextScan    int64
	starveAfter int64

	// Free lists and per-cycle scratch, reused across Step calls so the
	// steady-state simulation loop performs no allocation. parcelFree
	// and flightFree pool the two hot-path object kinds; flights is the
	// registry of flight objects lent out this cycle; walkActive and
	// walkCont are the wavefront/contender scratch of walk; sweepDirs
	// backs multicast route rebuilds.
	parcelFree []*parcel
	flightFree []*flight
	flights    []*flight
	walkActive []*flight
	walkCont   []*flight
	sweepDirs  []mesh.Dir

	run   stats.Run
	cycle int64
}

var (
	_ sim.Network                = (*Network)(nil)
	_ telemetry.Instrumentable   = (*Network)(nil)
	_ telemetry.InvariantChecker = (*Network)(nil)
)

// New builds a Phastlane network. It panics on invalid configuration (a
// programming error, not a runtime condition).
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	top := topo.NewMesh2D(cfg.Width, cfg.Height)
	m := top.Mesh()
	n := &Network{
		cfg:     cfg,
		top:     top,
		enc:     top,
		det:     top,
		m:       m,
		energy:  cfg.energyModel(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		routers: make([]router, m.Nodes()),
		claims:  make([]int64, m.Nodes()*mesh.NumLinkDirs),
	}
	for i := range n.claims {
		n.claims[i] = -1
	}
	for i := range n.routers {
		for d := 0; d < mesh.NumDirs; d++ {
			q := &n.routers[i].queues[d]
			q.cap = cfg.BufferEntries
			if mesh.Dir(d) == mesh.Local {
				q.cap = cfg.NICEntries
			}
			// Bounded queues get their full backing up front so the
			// steady-state loop never grows them.
			if q.cap > 0 {
				q.items = make([]*parcel, 0, q.cap)
			}
		}
	}
	n.faultInit()
	return n
}

// getParcel takes a parcel from the free list (or allocates one) and
// resets it to a fresh state, keeping the multicast backing array.
func (n *Network) getParcel() *parcel {
	if k := len(n.parcelFree); k > 0 {
		p := n.parcelFree[k-1]
		n.parcelFree = n.parcelFree[:k-1]
		rem := p.remBuf
		*p = parcel{remBuf: rem[:0], skipAt: -1}
		return p
	}
	return &parcel{skipAt: -1}
}

// putParcel returns a finished parcel to the free list. Callers must not
// touch the parcel afterwards: the next Inject may reuse it.
func (n *Network) putParcel(p *parcel) { n.parcelFree = append(n.parcelFree, p) }

// getFlight takes a zeroed flight from the free list or allocates one.
func (n *Network) getFlight() *flight {
	if k := len(n.flightFree); k > 0 {
		f := n.flightFree[k-1]
		n.flightFree = n.flightFree[:k-1]
		*f = flight{}
		return f
	}
	return &flight{}
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes implements sim.Network.
func (n *Network) Nodes() int { return n.m.Nodes() }

// Run implements sim.Network.
func (n *Network) Run() *stats.Run { return &n.run }

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// NICFree implements sim.Network. Under an armed fault plan a stuck
// router's NIC accepts nothing and failed injection-queue slots reduce
// the reported capacity.
func (n *Network) NICFree(node mesh.NodeID) int {
	free := n.routers[node].queues[mesh.Local].free()
	if n.faults != nil {
		if n.faults.NodeStuck(n.cycle, node) {
			return 0
		}
		free -= n.faults.LostSlots(n.cycle, node, mesh.Local)
		if free < 0 {
			free = 0
		}
	}
	return free
}

// Quiescent implements sim.Network.
func (n *Network) Quiescent() bool { return n.live == 0 }

// Inject implements sim.Network. A single-destination message becomes one
// unicast parcel; a broadcast (every node except the source) becomes up to
// 16 multicast column-sweep parcels assembled by the NIC, which together
// are charged against the injection queue. It panics when the NIC is full
// or the destination set is neither unicast nor full broadcast. The
// message's Dsts slice is not retained.
func (n *Network) Inject(m sim.Message) {
	nic := &n.routers[m.Src].queues[mesh.Local]
	if free := n.NICFree(m.Src); free <= 0 {
		panic(fmt.Sprintf("core: inject into full NIC at node %d (%d free entries; check NICFree before Inject)", m.Src, free))
	}
	n.run.Injected++
	n.emit(EventInject, m.ID, m.Src, mesh.Local)
	switch {
	case len(m.Dsts) == 1:
		if m.Dsts[0] == m.Src {
			panic("core: self-directed message")
		}
		n.enqueueUnicast(nic, m, m.Dsts[0])
	case len(m.Dsts) == n.m.Nodes()-1:
		if n.cfg.UnicastBroadcast {
			// Ablation: a broadcast as 63 independent unicasts.
			for _, dst := range m.Dsts {
				n.enqueueUnicast(nic, m, dst)
			}
			return
		}
		for _, msg := range packet.BuildBroadcast(n.m, m.Src, n.cfg.MaxHops) {
			p := n.getParcel()
			p.msgID, p.op, p.src = m.ID, m.Op, m.Src
			p.owner = m.Src
			p.control, p.launch = msg.Control, msg.Launch
			p.remBuf = append(p.remBuf[:0], msg.Delivers...)
			p.remaining = p.remBuf
			p.dst = p.remaining[len(p.remaining)-1]
			p.multicast = true
			p.born = n.cycle
			p.eligibleAt, p.enqueuedAt = n.cycle, n.cycle
			nic.items = append(nic.items, p)
			n.live++
		}
	default:
		panic(fmt.Sprintf("core: message with %d destinations: only unicast or full broadcast supported", len(m.Dsts)))
	}
}

// enqueueUnicast builds one unicast parcel from the free list and queues
// it on the source NIC.
func (n *Network) enqueueUnicast(nic *pqueue, m sim.Message, dst mesh.NodeID) {
	ctl, launch := n.enc.EncodeControl(m.Src, dst)
	ctl.MarkInterims(n.cfg.MaxHops)
	p := n.getParcel()
	p.msgID, p.op, p.src, p.dst = m.ID, m.Op, m.Src, dst
	p.owner = m.Src
	p.control, p.launch = ctl, launch
	p.born = n.cycle
	p.eligibleAt, p.enqueuedAt = n.cycle, n.cycle
	nic.items = append(nic.items, p)
	n.live++
}

// Step implements sim.Network: resolve last cycle's drop window, launch new
// transmissions under rotating/fixed priority, walk them through the mesh,
// and account leakage. Deliveries are appended to buf per the sim.Network
// buffer-ownership contract; the warmed-up loop performs no allocation.
func (n *Network) Step(buf []sim.Delivery) []sim.Delivery {
	sp := n.phases.Begin(n.cycle)
	if n.watchEvery > 0 {
		n.faultStep()
	}
	sp.Mark(telemetry.PhaseWatchdog)
	n.resolveDropWindow()
	sp.Mark(telemetry.PhaseDropWindow)
	flights := n.launch()
	sp.Mark(telemetry.PhaseLaunch)
	buf = n.walk(flights, buf)
	sp.Mark(telemetry.PhaseWalk)
	// All flights have landed (delivered, buffered, or dropped); return
	// them to the free list for the next cycle.
	n.flightFree = append(n.flightFree, n.flights...)
	n.flights = n.flights[:0]
	n.run.LeakagePJ += power.LeakagePJ(n.energy.LeakageWPerRouter, n.m.Nodes(), 1, photonic.DefaultClockGHz)
	n.cycle++
	sp.End()
	return buf
}

// SetPhases installs a sampled per-phase step profile (telemetry); nil
// disables it — the default, costing one branch per Step.
func (n *Network) SetPhases(p *telemetry.Phases) { n.phases = p }

// CheckInvariants audits live-parcel conservation: every live parcel is
// either queued in some router buffer or held by a pending launch record
// whose drop signal has not yet been resolved. Meant for watchdog flush
// boundaries (between Steps), never the per-cycle path.
func (n *Network) CheckInvariants() error {
	queued := 0
	for i := range n.routers {
		for d := range n.routers[i].queues {
			queued += len(n.routers[i].queues[d].items)
		}
	}
	dropped := 0
	for _, rec := range n.pending {
		if rec.result == outcomeDropped {
			dropped++
		}
	}
	if queued+dropped != n.live {
		return fmt.Errorf("core: live-parcel accounting: %d queued + %d pending-dropped != %d live",
			queued, dropped, n.live)
	}
	return nil
}

// resolveDropWindow acts on the previous cycle's launches: safe launches
// release their buffer slot; dropped parcels re-enter the owner's queue
// with randomised exponential backoff. Parcels whose journey finished
// (delivered, or dropped with nothing left to deliver) return to the free
// list here, once nothing references them any more.
func (n *Network) resolveDropWindow() {
	for _, rec := range n.pending {
		switch rec.result {
		case outcomeSafe:
			rec.q.reserved--
		case outcomeRetired, outcomeComplete:
			rec.q.reserved--
			n.putParcel(rec.p)
		case outcomeDropped:
			rec.q.reserved--
			p := rec.p
			p.retries++
			n.run.Retries++
			if n.nackHandler != nil {
				// A drop notice returning to the owner is the
				// protocol's congestion nack; attribute it to the
				// original sender.
				n.nackHandler(p.src)
			}
			if n.cfg.RetryLimit > 0 && p.retries > n.cfg.RetryLimit {
				// Retry budget exhausted: the delivery layer
				// abandons the parcel instead of requeueing it.
				n.loseParcel(p, sim.LossRetryBudget)
				continue
			}
			if !n.cfg.Bypass {
				// Restore the pre-launch route; with bypass
				// the relaunch rebuilds it anyway.
				p.control = rec.control
				p.launch = rec.launch
			}
			p.eligibleAt = n.cycle + 1 + n.backoff(p.retries)
			rec.q.items = append(rec.q.items, p)
			n.emit(EventRetry, p.msgID, p.owner, p.launch)
		default:
			panic("core: unresolved launch outcome")
		}
	}
	n.pending = n.pending[:0]
}

// backoff returns a randomised exponential delay for the given retry
// count: uniform over [0, min(BackoffBase<<(retries-1), BackoffMax)].
// The doubling clamps to BackoffMax before it can overflow, so the
// window is well-defined for any retry count and any configured maximum.
func (n *Network) backoff(retries int) int64 {
	window := n.cfg.BackoffBase
	for i := 1; i < retries && window < n.cfg.BackoffMax; i++ {
		if window > n.cfg.BackoffMax/2 {
			window = n.cfg.BackoffMax
			break
		}
		window *= 2
	}
	if window > n.cfg.BackoffMax {
		window = n.cfg.BackoffMax
	}
	return int64(n.rng.Intn(window + 1))
}

// launch runs each router's rotating-priority arbitration over its five
// queues: up to four packets per cycle, one per output port (Section
// 2.1.1). The arbiter rotates across the queues, taking at most one grant
// per queue per round, and keeps cycling while ports and candidates remain,
// so a single busy queue (e.g. a NIC holding a 16-sweep broadcast) can use
// several output ports in one cycle without starving the others.
func (n *Network) launch() []*flight {
	flights := n.flights[:0]
	for node := range n.routers {
		if n.faults != nil && n.faults.NodeStuck(n.cycle, mesh.NodeID(node)) {
			continue
		}
		r := &n.routers[node]
		var granted [mesh.NumLinkDirs]bool
		grants := 0
		order := n.queueOrder(r)
		for round := 0; round < mesh.NumLinkDirs && grants < mesh.NumLinkDirs; round++ {
			progressed := false
			for k := 0; k < mesh.NumDirs && grants < mesh.NumLinkDirs; k++ {
				q := &r.queues[order[k]]
				p := n.launchCandidate(q, granted[:])
				if p == nil {
					continue
				}
				granted[p.launch] = true
				grants++
				progressed = true
				q.take(p)
				rec := launchRecord{p: p, q: q, control: p.control, launch: p.launch, result: outcomePending}
				n.pending = append(n.pending, rec)
				f := n.getFlight()
				f.p, f.rec = p, len(n.pending)-1
				f.at, f.travel = mesh.NodeID(node), p.launch
				f.control = p.control
				n.claim(mesh.NodeID(node), p.launch)
				flights = append(flights, f)
				n.emit(EventLaunch, p.msgID, mesh.NodeID(node), p.launch)
				// Energy: laser power for the actual segment
				// (links and taps covered this cycle) plus
				// modulator drive and a buffer read for the
				// launching queue.
				n.run.OpticalEnergyPJ += n.energy.TransmitSegmentPJ(segmentOf(&p.control))
				n.run.ElectricalEnergyPJ += n.energy.ModulatePJ + n.energy.BufferReadPJ
			}
			if !progressed {
				break
			}
		}
		r.rotate = (r.rotate + 1) % mesh.NumDirs
	}
	n.flights = flights
	return flights
}

// queueOrder returns the order in which a router's five queues are offered
// grants this cycle, per the configured relaunch arbiter.
func (n *Network) queueOrder(r *router) [mesh.NumDirs]int {
	var order [mesh.NumDirs]int
	switch n.cfg.Arbiter {
	case ArbOldestFirst:
		// Queues whose oldest eligible parcel has waited longest go
		// first; empty queues last. Sorted in place with a stable
		// insertion sort over the five fixed slots: equivalent to
		// sort.SliceStable, without its per-cycle allocations.
		var ages [mesh.NumDirs]int64
		for i := 0; i < mesh.NumDirs; i++ {
			order[i] = i
			ages[i] = -1 << 62
			if p := r.queues[i].headEligible(n.cycle); p != nil {
				ages[i] = n.cycle - p.enqueuedAt
			}
		}
		for i := 1; i < mesh.NumDirs; i++ {
			for j := i; j > 0 && ages[order[j]] > ages[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	case ArbLongestQueue:
		var occ [mesh.NumDirs]int
		for i := 0; i < mesh.NumDirs; i++ {
			order[i] = i
			occ[i] = len(r.queues[i].items)
		}
		for i := 1; i < mesh.NumDirs; i++ {
			for j := i; j > 0 && occ[order[j]] > occ[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	default: // ArbRotating
		for i := 0; i < mesh.NumDirs; i++ {
			order[i] = (r.rotate + i) % mesh.NumDirs
		}
	}
	return order
}

// launchCandidate returns the first eligible parcel of q whose output port
// is still free, or nil. Parcels whose port is taken are marked (skipAt)
// so later rounds do not re-resegment them; the mark is the current cycle,
// so it expires on its own without per-cycle bookkeeping.
func (n *Network) launchCandidate(q *pqueue, granted []bool) *parcel {
	for _, p := range q.items {
		if p.eligibleAt > n.cycle || p.skipAt == n.cycle {
			continue
		}
		if n.faults != nil {
			// Route around the currently-dead hardware; a parcel
			// with no usable route stays queued with a probe delay.
			if !n.faultPrepare(p) {
				continue
			}
		} else if n.cfg.Bypass {
			n.resegment(p)
		}
		if p.launch == mesh.Local {
			panic("core: parcel launches toward its own node")
		}
		if granted[p.launch] {
			p.skipAt = n.cycle
			continue
		}
		return p
	}
	return nil
}

// resegment rebuilds the parcel's remaining route from its current owner,
// implementing the Section 2.1.3 bypass: a buffering router may skip the
// original interim nodes and head as far as MaxHops allows.
func (n *Network) resegment(p *parcel) {
	if p.multicast {
		ctl, launch := n.buildSweepFrom(p.owner, p.remaining, n.cfg.MaxHops)
		p.control, p.launch = ctl, launch
		return
	}
	ctl, launch := n.enc.EncodeControl(p.owner, p.dst)
	ctl.MarkInterims(n.cfg.MaxHops)
	p.control, p.launch = ctl, launch
}

// buildSweepFrom reconstructs a multicast sweep control from node src
// through the remaining delivery targets (which, by construction, lie in
// one column in sweep order, approached dimension-order). It runs on the
// bypass relaunch hot path and borrows the network's sweepDirs scratch
// instead of allocating.
func (n *Network) buildSweepFrom(src mesh.NodeID, remaining []mesh.NodeID, maxHops int) (packet.Control, mesh.Dir) {
	m := n.m
	if len(remaining) == 0 {
		panic("core: multicast relaunch with no remaining destinations")
	}
	if remaining[0] == src {
		panic("core: multicast relaunch targeting the owner itself")
	}
	dirs := n.top.AppendRoute(n.sweepDirs[:0], src, remaining[0])
	cur := remaining[0]
	for _, next := range remaining[1:] {
		if n.top.HopDistance(cur, next) != 1 {
			panic(fmt.Sprintf("core: non-contiguous multicast remainder %d->%d", cur, next))
		}
		dirs = append(dirs, n.top.PortAt(cur, next, 0))
		cur = next
	}
	n.sweepDirs = dirs
	// Truncate over-long reconstructions at an interim stop, as
	// packet.BuildControl does; the interim rebuilds the rest.
	var contDir mesh.Dir
	truncated := false
	if len(dirs) > packet.MaxGroups {
		contDir = dirs[packet.MaxGroups]
		dirs = dirs[:packet.MaxGroups]
		truncated = true
	}
	var ctl packet.Control
	at := src
	for i, d := range dirs {
		next, ok := m.Neighbor(at, d)
		if !ok {
			panic("core: multicast resegment walks off mesh")
		}
		at = next
		deliver := false
		for _, r := range remaining {
			if r == at {
				deliver = true
				break
			}
		}
		out := mesh.Local
		if i+1 < len(dirs) {
			out = dirs[i+1]
		}
		ctl.Groups[i] = packet.GroupForStep(d, out, deliver)
		ctl.Used = i + 1
	}
	if truncated {
		last := &ctl.Groups[ctl.Used-1]
		last.Local = true
		g := packet.GroupForStep(dirs[len(dirs)-1], contDir, false)
		last.Straight, last.Left, last.Right = g.Straight, g.Left, g.Right
	}
	ctl.MarkInterims(maxHops)
	return ctl, dirs[0]
}

// segmentOf returns the link count and intermediate multicast-tap count of
// the control's next single-cycle segment, for transmit-energy accounting.
func segmentOf(c *packet.Control) (links, taps int) {
	links = c.NextStop()
	for i := 0; i < links-1; i++ {
		if c.Groups[i].Multicast {
			taps++
		}
	}
	return links, taps
}

// claim marks the directed link out of node toward d used this cycle.
func (n *Network) claim(node mesh.NodeID, d mesh.Dir) {
	n.claims[int(node)*mesh.NumLinkDirs+int(d)] = n.cycle
}

// claimed reports whether the link is already used this cycle.
func (n *Network) claimed(node mesh.NodeID, d mesh.Dir) bool {
	return n.claims[int(node)*mesh.NumLinkDirs+int(d)] == n.cycle
}
