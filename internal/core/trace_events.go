package core

import (
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/sim"
)

// The event vocabulary lives in internal/obs so both the Phastlane
// simulator and the electrical baseline report through one set of kinds
// and one Event shape. The aliases below keep the original core names
// (EventLaunch, core.Event, ...) working for existing callers and tests.

// EventKind classifies a router-level event for tracing.
type EventKind = obs.Kind

// Event is one traced router action.
type Event = obs.Event

// Event kinds, in rough lifecycle order (see obs.Kind for the full,
// cross-network vocabulary).
const (
	// EventLaunch: a packet leaves a buffer (or the NIC) onto its first
	// link of the cycle.
	EventLaunch = obs.KindLaunch
	// EventPass: the packet transits a router toward another output.
	EventPass = obs.KindPass
	// EventTap: a multicast tap delivers a copy to the local node while
	// the packet continues.
	EventTap = obs.KindTap
	// EventEject: the packet leaves the network at its destination.
	EventEject = obs.KindEject
	// EventBuffer: the packet is captured into an input-port buffer
	// (blocked, or an interim stop).
	EventBuffer = obs.KindBuffer
	// EventDrop: the buffer was full; the drop signal returns to the
	// responsible sender.
	EventDrop = obs.KindDrop
	// EventRetry: the dropped packet re-enters its owner's queue after
	// backoff.
	EventRetry = obs.KindRetry
	// EventInject: the NIC accepted the message from the harness (once
	// per message; the gap to the first launch is the source-queue wait).
	EventInject = obs.KindInject
)

// SetTracer installs a callback invoked synchronously for every router
// event; nil disables tracing (the default — tracing costs nothing when
// off). Intended for debugging, for tests that assert event sequences,
// and for the obs.Collector observability bundle.
func (n *Network) SetTracer(f func(Event)) { n.tracer = f }

var (
	_ obs.Traceable = (*Network)(nil)
	_ sim.Traceable = (*Network)(nil)
)

// emit reports an event to the tracer, if any.
func (n *Network) emit(kind EventKind, msgID uint64, node mesh.NodeID, dir mesh.Dir) {
	if n.tracer != nil {
		n.tracer(Event{Cycle: n.cycle, Kind: kind, MsgID: msgID, Node: node, Dir: dir})
	}
}
