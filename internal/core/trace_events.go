package core

import (
	"fmt"

	"phastlane/internal/mesh"
)

// EventKind classifies a router-level event for tracing.
type EventKind int

// Event kinds, in rough lifecycle order.
const (
	// EventLaunch: a packet leaves a buffer (or the NIC) onto its first
	// link of the cycle.
	EventLaunch EventKind = iota
	// EventPass: the packet transits a router toward another output.
	EventPass
	// EventTap: a multicast tap delivers a copy to the local node while
	// the packet continues.
	EventTap
	// EventEject: the packet leaves the network at its destination.
	EventEject
	// EventBuffer: the packet is captured into an input-port buffer
	// (blocked, or an interim stop).
	EventBuffer
	// EventDrop: the buffer was full; the drop signal returns to the
	// responsible sender.
	EventDrop
	// EventRetry: the dropped packet re-enters its owner's queue after
	// backoff.
	EventRetry
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventLaunch:
		return "launch"
	case EventPass:
		return "pass"
	case EventTap:
		return "tap"
	case EventEject:
		return "eject"
	case EventBuffer:
		return "buffer"
	case EventDrop:
		return "drop"
	case EventRetry:
		return "retry"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one traced router action.
type Event struct {
	Cycle int64
	Kind  EventKind
	MsgID uint64
	// Node is where the event happened; Dir its outgoing direction
	// (meaningful for launch/pass).
	Node mesh.NodeID
	Dir  mesh.Dir
}

// String renders the event compactly, e.g. "c12 launch msg3 @27->N".
func (e Event) String() string {
	return fmt.Sprintf("c%d %s msg%d @%d->%s", e.Cycle, e.Kind, e.MsgID, e.Node, e.Dir)
}

// SetTracer installs a callback invoked synchronously for every router
// event; nil disables tracing (the default — tracing costs nothing when
// off). Intended for debugging and for tests that assert event sequences.
func (n *Network) SetTracer(f func(Event)) { n.tracer = f }

// emit reports an event to the tracer, if any.
func (n *Network) emit(kind EventKind, msgID uint64, node mesh.NodeID, dir mesh.Dir) {
	if n.tracer != nil {
		n.tracer(Event{Cycle: n.cycle, Kind: kind, MsgID: msgID, Node: node, Dir: dir})
	}
}
