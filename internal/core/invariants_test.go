package core

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

// TestCheckInvariantsDetectsLiveDrift corrupts the live-parcel counter
// and asserts the telemetry invariant check notices — a passing
// watchdog is evidence, not vacuity.
func TestCheckInvariantsDetectsLiveDrift(t *testing.T) {
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 3, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("fresh inject: %v", err)
	}
	n.live++
	if err := n.CheckInvariants(); err == nil {
		t.Error("live-count drift not detected")
	}
	n.live--
}

// TestCheckInvariantsHoldsAcrossDropWindows runs a hot multicast-heavy
// load (drops and retries guaranteed) and audits the live-parcel
// accounting between every pair of Steps, covering the pending-dropped
// record case.
func TestCheckInvariantsHoldsAcrossDropWindows(t *testing.T) {
	n := New(DefaultConfig())
	var id uint64
	var buf []sim.Delivery
	// Hotspot load: every seventh router fires unicasts at node 0, so
	// link contention forces drops and retries.
	dsts := []mesh.NodeID{0}
	for cycle := 0; cycle < 2000; cycle++ {
		for src := 7; src < n.Nodes(); src += 7 {
			if n.NICFree(mesh.NodeID(src)) > 0 {
				id++
				n.Inject(sim.Message{ID: id, Src: mesh.NodeID(src), Dsts: dsts, Op: packet.OpSynthetic})
			}
		}
		buf = n.Step(buf[:0])
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if n.Run().Drops == 0 {
		t.Error("load never dropped a packet; the pending-dropped case went unexercised")
	}
}
