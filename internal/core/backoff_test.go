package core

import (
	"math"
	"testing"
)

// TestBackoffCap pins the randomised exponential backoff contract: the
// delay is uniform over [0, min(BackoffBase<<(retries-1), BackoffMax)],
// and the doubling clamps to BackoffMax before it can overflow — even
// with a huge configured maximum and an absurd retry count.
func TestBackoffCap(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.BackoffBase = 1
		c.BackoffMax = math.MaxInt - 1 // would overflow naive doubling
	})
	for _, retries := range []int{1, 2, 10, 63, 64, 65, 500} {
		d := n.backoff(retries)
		if d < 0 {
			t.Fatalf("backoff(%d) = %d: doubling overflowed", retries, d)
		}
	}

	// With a modest cap the window must clamp exactly at BackoffMax.
	n = mustNew(t, func(c *Config) {
		c.BackoffBase = 1
		c.BackoffMax = 7 // not a power-of-two multiple of the base
	})
	for i := 0; i < 2000; i++ {
		if d := n.backoff(50); d < 0 || d > 7 {
			t.Fatalf("backoff(50) = %d outside [0,7]", d)
		}
	}
}

// TestBackoffDeterminism is the regression test for the overflow fix: the
// clamped doubling must draw from the same windows as the original code
// for every non-overflowing configuration, so seeded runs stay
// bit-identical. Two networks with the same seed must produce the same
// delay sequence, and each delay must fit the expected window.
func TestBackoffDeterminism(t *testing.T) {
	mk := func() *Network {
		return mustNew(t, func(c *Config) { c.Seed = 42 })
	}
	a, b := mk(), mk()
	cfg := DefaultConfig()
	for step := 0; step < 400; step++ {
		retries := step%9 + 1
		da, db := a.backoff(retries), b.backoff(retries)
		if da != db {
			t.Fatalf("step %d: same seed diverged: %d vs %d", step, da, db)
		}
		window := cfg.BackoffBase << (retries - 1)
		if window > cfg.BackoffMax || window <= 0 {
			window = cfg.BackoffMax
		}
		if da < 0 || da > int64(window) {
			t.Fatalf("backoff(%d) = %d outside [0,%d]", retries, da, window)
		}
	}
}
