package core

import (
	"fmt"

	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

// flight is one transmission attempt during the current cycle: a parcel
// moving through the optical mesh, covering up to MaxHops links before it
// is accepted, buffered, or dropped. Flights are pooled on the network
// (flightFree) and live for exactly one Step.
type flight struct {
	p   *parcel
	rec int // index into Network.pending
	// at is the router the flight last departed (before move) or
	// arrived at (after move); travel is the direction of the link
	// being crossed.
	at     mesh.NodeID
	travel mesh.Dir
	// control is the in-flight route state; it is written back to the
	// parcel only if the flight ends in a buffer.
	control packet.Control
	hops    int
	next    mesh.Dir // requested outgoing direction after arrival
}

// walk advances all launched flights through the mesh in lockstep hop
// steps, resolving link contention with the paper's fixed priority:
// earlier claims win (packets already in the switch), then straight-through
// beats turns, then input-port order N, E, S, W. Deliveries are appended
// to buf; the wavefront and contender lists live in network scratch
// (walkActive, walkCont) so the loop does not allocate.
func (n *Network) walk(flights []*flight, buf []sim.Delivery) []sim.Delivery {
	active := append(n.walkActive[:0], flights...)
	contenders := n.walkCont
	for len(active) > 0 {
		contenders = contenders[:0]
		for _, f := range active {
			next, ok := n.m.Neighbor(f.at, f.travel)
			if !ok {
				panic(fmt.Sprintf("core: flight walks off mesh at %d going %s", f.at, f.travel))
			}
			f.at = next
			f.hops++
			n.run.LinkTraversals++
			g := f.control.Shift()
			if g.Zero() {
				panic(fmt.Sprintf("core: flight of msg %d ran out of control groups at %d", f.p.msgID, f.at))
			}
			if n.faults != nil {
				if eff := n.faults.Corrupt(n.cycle, f.at, f.p.msgID); eff != fault.EffectNone {
					// Resonator drift garbled the control group at
					// this router. A detected error drops the
					// packet; a misroute captures it here so the
					// owner re-routes. Sweeps (whose taps pin the
					// path) and packets already at their final
					// stop can only drop.
					n.run.Corrupt++
					n.emit(obs.KindCorrupt, f.p.msgID, f.at, f.travel)
					if eff == fault.EffectMisroute && !f.p.multicast && f.at != f.p.dst {
						n.receiveOrDrop(f, f.travel)
					} else {
						n.dropFlight(f)
					}
					continue
				}
			}
			// Multicast tap: a portion of the packet's power is
			// received for the local node while the packet
			// continues; this happens at the input port, before
			// any output contention, so it survives subsequent
			// blocking or dropping.
			if g.Multicast && len(f.p.remaining) > 0 && f.p.remaining[0] == f.at {
				f.p.remaining = f.p.remaining[1:]
				buf = append(buf, sim.Delivery{MsgID: f.p.msgID, Dst: f.at})
				n.run.ElectricalEnergyPJ += n.energy.ReceivePJ
				n.emit(EventTap, f.p.msgID, f.at, mesh.Local)
			}
			switch {
			case g.Local && !g.Transit():
				// Final stop: eject to the local node.
				if !f.p.multicast {
					buf = append(buf, sim.Delivery{MsgID: f.p.msgID, Dst: f.at})
					n.run.ElectricalEnergyPJ += n.energy.ReceivePJ
				}
				n.emit(EventEject, f.p.msgID, f.at, mesh.Local)
				n.finish(f)
			case g.Local:
				// Interim node: receive, buffer, relaunch later
				// toward the group's direction bits.
				n.receiveOrDrop(f, packet.DirAfterTurn(f.travel, g))
			default:
				if f.hops >= n.cfg.MaxHops {
					panic(fmt.Sprintf("core: msg %d transits beyond the %d-hop cycle budget", f.p.msgID, n.cfg.MaxHops))
				}
				f.next = packet.DirAfterTurn(f.travel, g)
				contenders = append(contenders, f)
			}
		}
		// Resolve output-link contention in fixed priority order:
		// straight-through first, then lower input-port index. A
		// link claimed in an earlier step (or by a launch) blocks
		// all later requests outright. With RoundRobinTurns the
		// straight-over-turn rule is dropped and the favoured input
		// port rotates each cycle (the paper's footnote-3
		// alternative). The stable insertion sort reproduces
		// sort.SliceStable's ordering without its allocations.
		rotate := 0
		if n.cfg.RoundRobinTurns {
			rotate = int(n.cycle) % mesh.NumLinkDirs
		}
		rrTurns := n.cfg.RoundRobinTurns
		for i := 1; i < len(contenders); i++ {
			for j := i; j > 0 && contenderLess(contenders[j], contenders[j-1], rrTurns, rotate); j-- {
				contenders[j], contenders[j-1] = contenders[j-1], contenders[j]
			}
		}
		active = active[:0]
		for _, f := range contenders {
			if n.claimed(f.at, f.next) ||
				(n.faults != nil && n.faults.LinkDown(n.cycle, f.at, f.next)) {
				n.receiveOrDrop(f, f.next)
				continue
			}
			n.claim(f.at, f.next)
			n.emit(EventPass, f.p.msgID, f.at, f.next)
			f.travel = f.next
			active = append(active, f)
		}
	}
	n.walkActive, n.walkCont = active, contenders
	return buf
}

// contenderLess is the output-link priority order: straight-through beats
// turns (unless RoundRobinTurns), then input-port order, rotated when the
// round-robin alternative is on.
func contenderLess(a, b *flight, rrTurns bool, rotate int) bool {
	if !rrTurns {
		sa, sb := a.next == a.travel, b.next == b.travel
		if sa != sb {
			return sa
		}
	}
	pa := (int(a.travel.Opposite()) + rotate) % mesh.NumLinkDirs
	pb := (int(b.travel.Opposite()) + rotate) % mesh.NumLinkDirs
	return pa < pb
}

// finish marks a flight's transmission delivered and retires the parcel;
// the free list reclaims it at the next drop-window resolution.
func (n *Network) finish(f *flight) {
	n.pending[f.rec].result = outcomeRetired
	n.live--
}

// receiveOrDrop captures a blocked (or interim-accepted) flight into the
// input-port buffer it arrived on, transferring delivery responsibility to
// this router - or drops the packet when the buffer is full, sending the
// drop signal back along the return path to the current owner.
func (n *Network) receiveOrDrop(f *flight, relaunch mesh.Dir) {
	port := f.travel.Opposite()
	q := &n.routers[f.at].queues[port]
	free := q.free()
	if n.faults != nil {
		if free -= n.faults.LostSlots(n.cycle, f.at, port); free < 0 {
			free = 0
		}
	}
	if free > 0 {
		p := f.p
		p.owner = f.at
		p.control = f.control
		p.launch = relaunch
		p.eligibleAt = n.cycle + 1
		p.enqueuedAt = n.cycle
		q.items = append(q.items, p)
		n.pending[f.rec].result = outcomeSafe
		n.run.BufferedPackets++
		n.run.ElectricalEnergyPJ += n.energy.ReceivePJ + n.energy.BufferWritePJ
		n.emit(EventBuffer, p.msgID, f.at, relaunch)
		return
	}
	n.dropFlight(f)
}

// dropFlight drops a flight's packet at its current router. The router
// transmits Packet Dropped plus its node ID on the return path; the owner
// requeues with backoff at the start of the next cycle
// (resolveDropWindow). Multicast parcels whose deliveries all completed
// need no retransmission.
func (n *Network) dropFlight(f *flight) {
	n.run.Drops++
	n.run.ElectricalEnergyPJ += n.energy.DropNoticePJ
	n.emit(EventDrop, f.p.msgID, f.at, f.travel)
	if f.p.multicast && len(f.p.remaining) == 0 {
		n.pending[f.rec].result = outcomeComplete
		n.live--
		return
	}
	n.pending[f.rec].result = outcomeDropped
}
