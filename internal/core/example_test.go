package core_test

import (
	"fmt"

	"phastlane/internal/core"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

// ExampleNetwork shows the minimal life of a packet: inject a unicast
// message and step the clock until delivery.
func ExampleNetwork() {
	net := core.New(core.DefaultConfig())
	net.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{4}, Op: packet.OpSynthetic})
	for !net.Quiescent() {
		for _, d := range net.Step(nil) {
			fmt.Printf("msg %d delivered to node %d\n", d.MsgID, d.Dst)
		}
	}
	// Output:
	// msg 1 delivered to node 4
}

// ExampleNetwork_broadcast decomposes a broadcast into multicast column
// sweeps that deliver to every node.
func ExampleNetwork_broadcast() {
	net := core.New(core.DefaultConfig())
	var everyone []mesh.NodeID
	for n := mesh.NodeID(1); n < 64; n++ {
		everyone = append(everyone, n)
	}
	net.Inject(sim.Message{ID: 7, Src: 0, Dsts: everyone, Op: packet.OpReadReq})
	served := 0
	for !net.Quiescent() {
		served += len(net.Step(nil))
	}
	fmt.Printf("broadcast served %d nodes\n", served)
	// Output:
	// broadcast served 63 nodes
}
