package core

import (
	"reflect"
	"testing"

	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
)

// isolateNode returns the dead-link faults that cut every link into and
// out of node, with the given window.
func isolateNode(m *mesh.Mesh, node mesh.NodeID, from, until int64) []fault.Fault {
	var fs []fault.Fault
	for d := mesh.Dir(0); d < mesh.NumLinkDirs; d++ {
		nb, ok := m.Neighbor(node, d)
		if !ok {
			continue
		}
		fs = append(fs,
			fault.Fault{Kind: fault.DeadLink, Node: node, Dir: d, From: from, Until: until},
			fault.Fault{Kind: fault.DeadLink, Node: nb, Dir: d.Opposite(), From: from, Until: until},
		)
	}
	return fs
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RetryLimit = -1 },
		func(c *Config) { c.LossTimeout = -1 },
		func(c *Config) { c.Faults = &fault.Plan{CorruptRate: 2} },
		func(c *Config) {
			c.Faults = &fault.Plan{Faults: []fault.Fault{{Kind: fault.DeadLink, Node: 999, Dir: mesh.North}}}
		},
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad fault config %d passed validation", i)
		}
	}
}

// TestEmptyPlanBitIdentical pins the zero-cost contract: a present but
// empty plan arms nothing and leaves the simulation bit-identical to a
// nil plan.
func TestEmptyPlanBitIdentical(t *testing.T) {
	run := func(p *fault.Plan) stats.Run {
		n := mustNew(t, func(c *Config) { c.Faults = p })
		for i := uint64(0); i < 24; i++ {
			src := mesh.NodeID(i % 8)
			n.Inject(sim.Message{ID: i + 1, Src: src, Dsts: []mesh.NodeID{63 - src}, Op: packet.OpSynthetic})
		}
		stepUntilQuiescent(t, n, 2000)
		return *n.Run()
	}
	a := run(nil)
	b := run(&fault.Plan{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("empty plan changed the run:\nnil:   %+v\nempty: %+v", a, b)
	}
}

func TestDeadLinkReroutesDelivery(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.DeadLink, Node: 1, Dir: mesh.East},
			{Kind: fault.DeadLink, Node: 2, Dir: mesh.West},
		}}
	})
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	deliveries := stepUntilQuiescent(t, n, 500)
	if len(deliveries) != 1 || deliveries[0].MsgID != 1 || deliveries[0].Dst != 3 {
		t.Fatalf("deliveries %+v, want msg 1 at node 3", deliveries)
	}
	if n.Run().Lost != 0 {
		t.Fatalf("rerouted delivery reported %d losses", n.Run().Lost)
	}
}

func TestTransientStuckDestinationHeals(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.StuckRouter, Node: 9, From: 0, Until: 50},
		}}
	})
	n.Inject(sim.Message{ID: 1, Src: 8, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	deliveries := stepUntilQuiescent(t, n, 500)
	if len(deliveries) != 1 || deliveries[0].Dst != 9 {
		t.Fatalf("deliveries %+v, want msg 1 at node 9 after heal", deliveries)
	}
	if n.Run().Unreachable == 0 {
		t.Error("no unreachable probes recorded while the destination was stuck")
	}
	if n.Run().Lost != 0 {
		t.Errorf("%d losses on a healing fault", n.Run().Lost)
	}
}

func TestUnreachableDestinationTimesOut(t *testing.T) {
	m := mesh.New(8, 8)
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: isolateNode(m, 9, 0, 0)}
		c.LossTimeout = 100
	})
	var losses []sim.Loss
	n.SetLossHandler(func(l sim.Loss) { losses = append(losses, l) })
	n.Inject(sim.Message{ID: 7, Src: 8, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	deliveries := stepUntilQuiescent(t, n, 1000)
	if len(deliveries) != 0 {
		t.Fatalf("deliveries %+v to an isolated node", deliveries)
	}
	if len(losses) != 1 || losses[0].MsgID != 7 || losses[0].Count != 1 || losses[0].Reason != sim.LossTimeout {
		t.Fatalf("losses %+v, want one timeout loss of msg 7", losses)
	}
	if n.Run().Lost != 1 || n.Run().Unreachable == 0 {
		t.Fatalf("Lost=%d Unreachable=%d", n.Run().Lost, n.Run().Unreachable)
	}
}

// TestRetryBudgetAccountsEveryMessage drives heavy single-destination
// contention through 1-entry buffers with a tight retry budget: every
// message must end up delivered or reported lost, never silently gone and
// never duplicated.
func TestRetryBudgetAccountsEveryMessage(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.BufferEntries = 1
		c.RetryLimit = 2
	})
	var losses []sim.Loss
	n.SetLossHandler(func(l sim.Loss) { losses = append(losses, l) })
	const msgs = 32
	for i := uint64(0); i < msgs; i++ {
		src := mesh.NodeID(i % 16) // sources all distinct from the hot destination
		n.Inject(sim.Message{ID: i + 1, Src: src, Dsts: []mesh.NodeID{36}, Op: packet.OpSynthetic})
	}
	deliveries := stepUntilQuiescent(t, n, 5000)
	seen := map[uint64]int{}
	for _, d := range deliveries {
		seen[d.MsgID]++
	}
	lost := map[uint64]int{}
	for _, l := range losses {
		if l.Reason != sim.LossRetryBudget {
			t.Errorf("unexpected loss reason %v", l.Reason)
		}
		lost[l.MsgID] += l.Count
	}
	for i := uint64(1); i <= msgs; i++ {
		if seen[i]+lost[i] != 1 {
			t.Errorf("msg %d: delivered %d times, lost %d times", i, seen[i], lost[i])
		}
	}
	if int64(len(losses)) != n.Run().Lost {
		t.Errorf("handler saw %d losses, Run counted %d", len(losses), n.Run().Lost)
	}
}

func TestCorruptionRecovers(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Seed: 3, CorruptRate: 0.05}
	})
	const msgs = 24
	for i := uint64(0); i < msgs; i++ {
		src := mesh.NodeID(i * 5 % 64)
		dst := mesh.NodeID((i*11 + 32) % 64)
		if src == dst {
			dst = (dst + 1) % 64
		}
		n.Inject(sim.Message{ID: i + 1, Src: src, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
	}
	deliveries := stepUntilQuiescent(t, n, 5000)
	if int64(len(deliveries)) != msgs {
		t.Fatalf("%d deliveries, want %d (Lost=%d)", len(deliveries), msgs, n.Run().Lost)
	}
	if n.Run().Corrupt == 0 {
		t.Error("no corruption events at 5% per-hop rate")
	}
	if n.Run().Lost != 0 {
		t.Errorf("%d losses without a retry budget", n.Run().Lost)
	}
}

func TestNICSlotFaultReducesCapacity(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.BufferSlots, Node: 4, Dir: mesh.Local, Slots: DefaultConfig().NICEntries},
		}}
	})
	if free := n.NICFree(4); free != 0 {
		t.Fatalf("NICFree = %d with every slot failed", free)
	}
	if free := n.NICFree(5); free != DefaultConfig().NICEntries {
		t.Fatalf("healthy NICFree = %d", free)
	}
}

func TestFaultTransitionsTraced(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.DeadLink, Node: 1, Dir: mesh.East, From: 3, Until: 6},
		}}
	})
	var kinds []obs.Kind
	n.SetTracer(func(e Event) { kinds = append(kinds, e.Kind) })
	for i := 0; i < 10; i++ {
		n.Step(nil)
	}
	faults := 0
	for _, k := range kinds {
		if k == obs.KindFault {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("%d fault transitions traced, want activation + heal", faults)
	}
}
