package core

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

// The event stream is the contract the observability layer builds on, so
// its semantics get their own tests: per-message lifecycle ordering and
// the drop/retry pairing, checked over a loaded run that actually drops.

// eventLog drives a small-buffer hot-spot run (two senders to one sink,
// plus a broadcast) to quiescence and returns the full event stream.
func eventLog(t *testing.T) []Event {
	t.Helper()
	n := mustNew(t, func(c *Config) { c.BufferEntries = 1; c.Seed = 7 })
	var events []Event
	n.SetTracer(func(e Event) { events = append(events, e) })
	var id uint64
	for i := 0; i < 12; i++ {
		id++
		n.Inject(sim.Message{ID: id, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
		id++
		n.Inject(sim.Message{ID: id, Src: 1, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	}
	all := make([]mesh.NodeID, 0, 63)
	for d := mesh.NodeID(1); d < 64; d++ {
		all = append(all, d)
	}
	id++
	n.Inject(sim.Message{ID: id, Src: 0, Dsts: all, Op: packet.OpReadReq})
	stepUntilQuiescent(t, n, 3000)
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	return events
}

// TestEventStreamDropRetryPairing: every drop must eventually be followed
// by a retry of the same message - a dropped packet is never silently
// lost, the source always retransmits it.
func TestEventStreamDropRetryPairing(t *testing.T) {
	events := eventLog(t)
	drops := 0
	for i, e := range events {
		if e.Kind != EventDrop {
			continue
		}
		drops++
		matched := false
		for _, later := range events[i+1:] {
			if later.MsgID == e.MsgID && later.Kind == EventRetry {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("drop at index %d (%v) never followed by a retry", i, e)
		}
	}
	if drops == 0 {
		t.Fatal("run produced no drops; the scenario no longer exercises the pairing")
	}
	// Per-message bookkeeping must balance exactly once the network
	// quiesces: as many retries as drops.
	dropsBy, retriesBy := map[uint64]int{}, map[uint64]int{}
	for _, e := range events {
		switch e.Kind {
		case EventDrop:
			dropsBy[e.MsgID]++
		case EventRetry:
			retriesBy[e.MsgID]++
		}
	}
	for id, d := range dropsBy {
		if retriesBy[id] != d {
			t.Errorf("msg %d: %d drops but %d retries", id, d, retriesBy[id])
		}
	}
}

// TestEventStreamLifecycleOrdering: every message's first event is its
// NIC injection followed by a launch, every message ends delivered (at
// least one eject), and cycles never run backwards.
func TestEventStreamLifecycleOrdering(t *testing.T) {
	events := eventLog(t)
	first := map[uint64]EventKind{}
	second := map[uint64]EventKind{}
	ejects := map[uint64]int{}
	var lastCycle int64
	for i, e := range events {
		if e.Cycle < lastCycle {
			t.Fatalf("event %d went back in time: %v after cycle %d", i, e, lastCycle)
		}
		lastCycle = e.Cycle
		if _, seen := first[e.MsgID]; !seen {
			first[e.MsgID] = e.Kind
		} else if _, seen := second[e.MsgID]; !seen {
			second[e.MsgID] = e.Kind
		}
		switch e.Kind {
		case EventEject, EventTap:
			ejects[e.MsgID]++
			if first[e.MsgID] != EventInject {
				t.Fatalf("msg %d delivered before any inject (first event %v)", e.MsgID, first[e.MsgID])
			}
		}
	}
	for id, k := range first {
		if k != EventInject {
			t.Errorf("msg %d: first event %v, want inject", id, k)
		}
		if second[id] != EventLaunch {
			t.Errorf("msg %d: second event %v, want launch", id, second[id])
		}
		if ejects[id] == 0 {
			t.Errorf("msg %d injected but never delivered", id)
		}
	}
	// The quiescent run delivered everything: the broadcast reached all
	// 63 destinations (retransmissions after drops may deliver to some
	// of them more than once at the event level, never fewer).
	if got := ejects[25]; got < 63 {
		t.Errorf("broadcast msg 25 delivered %d times, want >= 63", got)
	}
}
