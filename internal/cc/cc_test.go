package cc

import (
	"reflect"
	"testing"

	"phastlane/internal/mesh"
)

func nid(i int) mesh.NodeID { return mesh.NodeID(i) }

// quietCfg is a tuning with the controller effectively disabled (huge
// update period) so bucket mechanics can be observed in isolation.
func quietCfg(rate float64) Config {
	cfg := DefaultConfig()
	cfg.InitRate = rate
	cfg.UpdateEvery = 1 << 20
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"zero init":      func(c *Config) { c.InitRate = 0 },
		"init above max": func(c *Config) { c.InitRate = c.MaxRate + 1 },
		"max above one":  func(c *Config) { c.MaxRate = 1.5 },
		"beta one":       func(c *Config) { c.Beta = 1 },
		"zero gain":      func(c *Config) { c.Gain = 0 },
		"zero period":    func(c *Config) { c.UpdateEvery = 0 },
		"shallow bucket": func(c *Config) { c.BucketDepth = 0.5 },
		"bad smoothing":  func(c *Config) { c.GradSmoothing = 1.5 },
		"bad thresholds": func(c *Config) { c.ThreshInit = c.ThreshMax + 1 },
		"inverted band":  func(c *Config) { c.NackLow = c.NackHigh },
		"zero samples":   func(c *Config) { c.MinSamples = 0 },
		"neg history":    func(c *Config) { c.HistoryEvery = -1 },
		"zero overuse":   func(c *Config) { c.OveruseWindows = 0 },
		"zero thresh k":  func(c *Config) { c.ThreshKUp = 0 },
		"min above max":  func(c *Config) { c.MinRate = c.MaxRate + 1 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

// TestTokenBucket checks the admission mechanics: one free packet at
// start, refill at the admitted rate, and the depth cap bounding the
// post-idle burst.
func TestTokenBucket(t *testing.T) {
	g := New(quietCfg(0.5), 1)
	if !g.Allow(0) {
		t.Fatal("first packet denied")
	}
	if g.Allow(0) {
		t.Fatal("second packet admitted with an empty bucket")
	}
	g.Tick(1) // tokens 0.5
	if g.Allow(0) {
		t.Fatal("admitted at half a token")
	}
	g.Tick(2) // tokens 1.0
	if !g.Allow(0) {
		t.Fatal("denied with a full token")
	}
	// An idle spell accumulates at most BucketDepth tokens.
	for c := int64(3); c < 100; c++ {
		g.Tick(c)
	}
	depth := int(g.Config().BucketDepth)
	for i := 0; i < depth; i++ {
		if !g.Allow(0) {
			t.Fatalf("burst packet %d denied after idle", i)
		}
	}
	if g.Allow(0) {
		t.Fatalf("burst exceeded bucket depth %d", depth)
	}
}

// runWindows drives one governor for n update windows, invoking feed
// before every tick to supply that cycle's signals.
func runWindows(g *Governor, n int, feed func(cycle int64)) {
	every := int64(g.Config().UpdateEvery)
	for c := int64(1); c <= int64(n)*every; c++ {
		if feed != nil {
			feed(c)
		}
		g.Tick(c)
	}
}

// TestIncreaseOnCleanWindows checks additive increase: constant latency
// (zero gradient) and a clean loss window grow the rate by Gain per
// window up to MaxRate.
func TestIncreaseOnCleanWindows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateEvery = 16
	g := New(cfg, 1)
	runWindows(g, 10, func(int64) { g.Ack(0, 10) })
	if g.State(0) != StateIncrease {
		t.Fatalf("state %v after clean windows, want increase", g.State(0))
	}
	if g.Rate(0) <= cfg.InitRate {
		t.Fatalf("rate %v did not grow from %v", g.Rate(0), cfg.InitRate)
	}
	// And the cap holds under unlimited growth.
	runWindows(g, 2000, func(int64) { g.Ack(0, 10) })
	if g.Rate(0) != cfg.MaxRate {
		t.Fatalf("rate %v after 2000 clean windows, want cap %v", g.Rate(0), cfg.MaxRate)
	}
}

// TestOveruseDecrease checks the delay-gradient path: steadily rising
// latency drives the filtered gradient over the adaptive threshold for
// OveruseWindows consecutive windows and forces multiplicative decrease.
func TestOveruseDecrease(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateEvery = 16
	g := New(cfg, 1)
	// Mean latency climbs by 160 cycles per window — far past any
	// adapted threshold.
	runWindows(g, 12, func(c int64) { g.Ack(0, float64(10*c)) })
	if g.Rate(0) >= cfg.InitRate {
		t.Fatalf("rate %v never decreased from %v under rising latency",
			g.Rate(0), cfg.InitRate)
	}
	if g.Gradient(0) <= 0 {
		t.Fatalf("gradient %v not positive under rising latency", g.Gradient(0))
	}
}

// TestUnderuseHolds checks the drain phase: falling latency reads as
// underuse and the controller holds rather than increasing into a queue
// that is still emptying.
func TestUnderuseHolds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateEvery = 16
	g := New(cfg, 1)
	runWindows(g, 12, func(c int64) { g.Ack(0, float64(10*(300-c))) })
	if g.State(0) != StateHold {
		t.Fatalf("state %v under falling latency, want hold", g.State(0))
	}
}

// TestNackBand checks the loss-ratio overlay: a window past NackHigh
// decreases even with a flat gradient, and a window inside the band
// holds.
func TestNackBand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateEvery = 16
	g := New(cfg, 1)
	runWindows(g, 4, func(int64) { g.Nack(0) }) // badFrac = 1
	if g.Rate(0) >= cfg.InitRate {
		t.Fatalf("rate %v never decreased from %v under pure nacks",
			g.Rate(0), cfg.InitRate)
	}

	// badFrac pinned at 0.5 — inside (NackLow, NackHigh] — every window,
	// including the partial first window the update stagger produces, by
	// feeding one ack and one nack per cycle with MinSamples = 2.
	cfgHold := cfg
	cfgHold.MinSamples = 2
	g2 := New(cfgHold, 1)
	runWindows(g2, 4, func(int64) {
		g2.Ack(0, 10)
		g2.Nack(0)
	})
	if g2.State(0) != StateHold {
		t.Fatalf("state %v at badFrac 0.5, want hold", g2.State(0))
	}
	if g2.Rate(0) != cfg.InitRate {
		t.Fatalf("rate moved to %v inside the hold band", g2.Rate(0))
	}

	// Losses weigh like nacks.
	g3 := New(cfg, 1)
	runWindows(g3, 4, func(int64) { g3.Lost(0) })
	if g3.Rate(0) >= cfg.InitRate {
		t.Fatalf("rate %v never decreased under pure losses", g3.Rate(0))
	}
}

// TestDeterminism checks the reproducibility contract: two governors
// with the same config fed the same signal sequence end bit-identical,
// across every sender and the recorded history.
func TestDeterminism(t *testing.T) {
	build := func() *Governor {
		cfg := DefaultConfig()
		cfg.UpdateEvery = 32
		cfg.HistoryEvery = 64
		g := New(cfg, 16)
		runWindows(g, 8, func(c int64) {
			src := int(c) % 16
			switch {
			case c%3 == 0:
				g.Nack(nid(src))
			case c%7 == 0:
				g.Lost(nid(src))
			default:
				g.Ack(nid(src), float64(c%50))
			}
		})
		return g
	}
	a, b := build(), build()
	for i := 0; i < 16; i++ {
		if a.Rate(nid(i)) != b.Rate(nid(i)) || a.State(nid(i)) != b.State(nid(i)) ||
			a.Gradient(nid(i)) != b.Gradient(nid(i)) {
			t.Fatalf("sender %d diverged between identical runs", i)
		}
	}
	if !reflect.DeepEqual(a.History(), b.History()) {
		t.Fatal("history diverged between identical runs")
	}
	if len(a.History()) == 0 {
		t.Fatal("no history recorded with HistoryEvery set")
	}
}

// TestStaggerSpreadsUpdates checks that per-sender update phases are
// spread, not phase-locked: across a population the seeded offsets must
// not all coincide.
func TestStaggerSpreadsUpdates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateEvery = 64
	g := New(cfg, 64)
	offsets := map[int64]bool{}
	for i := range g.senders {
		offsets[g.senders[i].offset] = true
	}
	if len(offsets) < 16 {
		t.Fatalf("only %d distinct update phases across 64 senders", len(offsets))
	}
}

// TestZeroAllocSteadyState checks the armed-governor hot path allocates
// nothing: Tick, Allow, and every signal feed must be allocation-free
// once constructed (history disabled, no telemetry registered).
func TestZeroAllocSteadyState(t *testing.T) {
	g := New(DefaultConfig(), 64)
	var cycle int64
	allocs := testing.AllocsPerRun(200, func() {
		cycle++
		g.Tick(cycle)
		for s := 0; s < 64; s++ {
			if g.Allow(nid(s)) {
				g.Ack(nid(s), 12)
			}
			if s%5 == 0 {
				g.Nack(nid(s))
			}
			if s%17 == 0 {
				g.Lost(nid(s))
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("governor hot path allocates %.1f per cycle, want 0", allocs)
	}
}
