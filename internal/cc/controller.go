package cc

// The AIMD rate controller: one Hold/Increase/Decrease decision per
// sender per update window, driven by the estimator's delay signal and
// the window's loss ratio. The state machine follows the GCC rate
// controller:
//
//	overuse (or loss ratio above NackHigh) → Decrease: rate *= Beta
//	underuse                               → Hold: queues are draining;
//	                                         wait for them to empty
//	normal, loss ratio above NackLow       → Hold: indeterminate window
//	normal, clean window                   → Increase: rate += Gain
//
// Decrease resets the overuse streak so a sustained overload produces
// one multiplicative cut per detection, not one per window of backlog.

// update runs one controller window for sender i: estimator verdict,
// AIMD decision, gauge export, accumulator reset.
func (g *Governor) update(i int, s *sender) {
	sig := g.estimate(s)

	resolved := s.acks + s.nacks + s.losses
	var badFrac float64
	lossy := false
	if resolved >= int64(g.cfg.MinSamples) {
		badFrac = float64(s.nacks+s.losses) / float64(resolved)
		lossy = true
	}

	switch {
	case sig == sigOveruse || (lossy && badFrac > g.cfg.NackHigh):
		s.state = StateDecrease
		s.rate *= g.cfg.Beta
		if s.rate < g.cfg.MinRate {
			s.rate = g.cfg.MinRate
		}
		s.overuse = 0
	case sig == sigUnderuse:
		s.state = StateHold
	case lossy && badFrac > g.cfg.NackLow:
		s.state = StateHold
	default:
		s.state = StateIncrease
		s.rate += g.cfg.Gain
		if s.rate > g.cfg.MaxRate {
			s.rate = g.cfg.MaxRate
		}
	}

	if g.telRate != nil {
		g.telRate[i].Set(s.rate)
		g.telGrad[i].Set(s.grad)
		g.telState[i].Set(float64(s.state))
	}

	s.acks, s.rttSum, s.nacks, s.losses = 0, 0, 0, 0
}
