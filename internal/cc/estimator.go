package cc

// The delay-gradient overuse estimator, the GCC arrival-filter +
// over-use-detector pair collapsed to the signals a cycle-accurate
// simulator can observe exactly. Each update window the estimator takes
// the mean inject→eject latency of the window's acked messages, computes
// the raw gradient against the previous window's mean, smooths it with
// an exponential filter, and compares the filtered gradient m(i) against
// an adaptive threshold gamma(i):
//
//	m > +gamma for OveruseWindows consecutive windows → overuse
//	m < -gamma                                        → underuse
//	otherwise                                         → normal
//
// gamma tracks |m| — fast when |m| is above it (ThreshKUp), slowly when
// below (ThreshKDown) — so a persistent latency offset widens the dead
// band instead of locking the sender into permanent overuse, the GCC
// adaptive-threshold rule.

// signal is the estimator verdict for one update window.
type signal int8

const (
	sigNormal signal = iota
	sigOveruse
	sigUnderuse
)

// estimate runs one window of the delay-gradient estimator for s and
// returns its congestion signal. Windows without acks yield no gradient
// evidence and read as normal; the loss ratio still reaches the
// controller, which is the signal that matters when everything drops.
func (g *Governor) estimate(s *sender) signal {
	if s.acks == 0 {
		return sigNormal
	}
	mean := s.rttSum / float64(s.acks)
	if !s.havePrev {
		s.prevMean, s.havePrev = mean, true
		return sigNormal
	}
	raw := mean - s.prevMean
	s.prevMean = mean
	s.grad += g.cfg.GradSmoothing * (raw - s.grad)

	abs := s.grad
	if abs < 0 {
		abs = -abs
	}
	k := g.cfg.ThreshKDown
	if abs > s.thresh {
		k = g.cfg.ThreshKUp
	}
	s.thresh += k * (abs - s.thresh)
	if s.thresh < g.cfg.ThreshMin {
		s.thresh = g.cfg.ThreshMin
	} else if s.thresh > g.cfg.ThreshMax {
		s.thresh = g.cfg.ThreshMax
	}

	switch {
	case s.grad > s.thresh:
		s.overuse++
		if s.overuse >= g.cfg.OveruseWindows {
			return sigOveruse
		}
		return sigNormal
	case s.grad < -s.thresh:
		s.overuse = 0
		return sigUnderuse
	default:
		s.overuse = 0
		return sigNormal
	}
}
