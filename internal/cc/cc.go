// Package cc implements closed-loop congestion control for the NIC
// injection path: a per-sender delay-gradient overuse estimator, an AIMD
// rate controller with a Hold/Increase/Decrease state machine, and a
// token-bucket injection governor the sim harness consults before every
// injection. The decomposition follows the GCC (Google Congestion
// Control) architecture — arrival filter, over-use detector, rate
// controller — re-expressed over the signals a Phastlane NIC already
// observes: inject→eject latency for delivered messages (the RTT proxy),
// drop/nack notices from the drop/retry protocol, and delivery-layer
// losses.
//
// Everything is deterministic. A Governor consumes no wall clock and no
// shared randomness: controller updates are staggered across senders by a
// splitmix64 hash of (Seed, sender) so AIMD phases do not lock, and every
// decision depends only on the signal sequence the harness feeds it.
// Because the harness drives the governor synchronously from its own
// single-threaded cycle loop, governed runs are bit-identical at any
// worker count provided each experiment point builds its own Governor
// (the same fresh-network-per-point rule the exp engine already imposes).
//
// A nil *Governor disables congestion control entirely — the harness
// nil-guards every call, so disabled runs cost one branch per cycle and
// stay bit-identical to pre-cc behaviour, the same contract as the fault,
// telemetry, and provenance layers.
package cc

import (
	"fmt"

	"phastlane/internal/mesh"
	"phastlane/internal/telemetry"
)

// State is the AIMD controller state of one sender.
type State int8

// Controller states.
const (
	// StateHold keeps the rate: the estimator reports underuse (queues
	// draining after a decrease) or the loss ratio sits in the
	// indeterminate band.
	StateHold State = iota
	// StateIncrease grows the rate additively: no overuse signal and a
	// clean loss window.
	StateIncrease
	// StateDecrease cut the rate multiplicatively this window: the
	// estimator detected sustained overuse or losses crossed NackHigh.
	StateDecrease
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateHold:
		return "hold"
	case StateIncrease:
		return "increase"
	case StateDecrease:
		return "decrease"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config parameterises the control loop. Rates are in packets per node
// per cycle, the same unit as the harness's offered load; gradients and
// thresholds are in cycles of latency change per update window.
type Config struct {
	// InitRate is each sender's starting admitted rate.
	InitRate float64
	// MinRate floors multiplicative decrease so senders never starve.
	MinRate float64
	// MaxRate caps additive increase (1.0 = one packet per cycle, the
	// physical NIC limit).
	MaxRate float64
	// Beta is the multiplicative decrease factor (GCC uses 0.85).
	Beta float64
	// Gain is the additive increase per update window.
	Gain float64
	// UpdateEvery is the controller decision period in cycles. Each
	// sender's update is staggered by a seeded per-sender offset so the
	// population does not phase-lock.
	UpdateEvery int
	// BucketDepth caps accumulated injection tokens, bounding the burst
	// a sender can emit after an idle spell.
	BucketDepth float64

	// GradSmoothing is the exponential filter constant applied to the
	// raw per-window latency gradient (GCC's arrival filter stand-in).
	GradSmoothing float64
	// ThreshInit seeds the adaptive overuse threshold gamma; the
	// threshold then tracks |gradient| with ThreshKUp above it and
	// ThreshKDown below it, clamped to [ThreshMin, ThreshMax] — the GCC
	// adaptive-threshold rule that keeps a persistent offset from
	// starving the sender.
	ThreshInit, ThreshMin, ThreshMax float64
	ThreshKUp, ThreshKDown           float64
	// OveruseWindows is how many consecutive over-threshold windows
	// constitute a sustained overuse signal (GCC's overuse timer).
	OveruseWindows int

	// NackHigh forces Decrease when (nacks+losses)/(acks+nacks+losses)
	// exceeds it; NackLow gates Increase (between the two the controller
	// holds). The band must sit above the protocol's healthy drop ratio:
	// Phastlane drops and retries packets routinely even below the knee.
	NackHigh, NackLow float64
	// MinSamples is the fewest resolved signals (acks+nacks+losses) a
	// window needs before the loss ratio is trusted.
	MinSamples int

	// HistoryEvery, when positive, records a mean-rate sample every that
	// many cycles (see History) — the fault back-off/re-convergence
	// studies read it. Zero disables sampling and keeps the governor
	// allocation-free after construction.
	HistoryEvery int64
	// Seed derives the per-sender update stagger.
	Seed int64
}

// DefaultConfig returns the tuning used by the governed studies: an
// initial rate comfortably below the 8x8 mesh knee (~0.45 uniform),
// GCC-flavoured filter constants, and a loss band calibrated above the
// optical protocol's healthy drop/retry ratio.
func DefaultConfig() Config {
	return Config{
		InitRate:       0.30,
		MinRate:        0.01,
		MaxRate:        1.0,
		Beta:           0.85,
		Gain:           0.01,
		UpdateEvery:    64,
		BucketDepth:    4,
		GradSmoothing:  0.3,
		ThreshInit:     2.0,
		ThreshMin:      0.5,
		ThreshMax:      30,
		ThreshKUp:      0.05,
		ThreshKDown:    0.01,
		OveruseWindows: 2,
		NackHigh:       0.60,
		NackLow:        0.35,
		MinSamples:     8,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.InitRate <= 0 || c.InitRate > c.MaxRate {
		return fmt.Errorf("cc: init rate %v outside (0, %v]", c.InitRate, c.MaxRate)
	}
	if c.MinRate <= 0 || c.MinRate > c.MaxRate {
		return fmt.Errorf("cc: min rate %v outside (0, %v]", c.MinRate, c.MaxRate)
	}
	if c.MaxRate > 1 {
		return fmt.Errorf("cc: max rate %v above one packet/cycle", c.MaxRate)
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("cc: beta %v outside (0, 1)", c.Beta)
	}
	if c.Gain <= 0 {
		return fmt.Errorf("cc: gain %v", c.Gain)
	}
	if c.UpdateEvery < 1 {
		return fmt.Errorf("cc: update period %d", c.UpdateEvery)
	}
	if c.BucketDepth < 1 {
		return fmt.Errorf("cc: bucket depth %v below one packet", c.BucketDepth)
	}
	if c.GradSmoothing <= 0 || c.GradSmoothing > 1 {
		return fmt.Errorf("cc: gradient smoothing %v outside (0, 1]", c.GradSmoothing)
	}
	if c.ThreshMin <= 0 || c.ThreshMax < c.ThreshMin || c.ThreshInit < c.ThreshMin || c.ThreshInit > c.ThreshMax {
		return fmt.Errorf("cc: threshold bounds init %v, min %v, max %v", c.ThreshInit, c.ThreshMin, c.ThreshMax)
	}
	if c.ThreshKUp <= 0 || c.ThreshKDown <= 0 {
		return fmt.Errorf("cc: threshold gains up %v, down %v", c.ThreshKUp, c.ThreshKDown)
	}
	if c.OveruseWindows < 1 {
		return fmt.Errorf("cc: overuse windows %d", c.OveruseWindows)
	}
	if c.NackHigh <= 0 || c.NackHigh > 1 || c.NackLow < 0 || c.NackLow >= c.NackHigh {
		return fmt.Errorf("cc: nack band [%v, %v]", c.NackLow, c.NackHigh)
	}
	if c.MinSamples < 1 {
		return fmt.Errorf("cc: min samples %d", c.MinSamples)
	}
	if c.HistoryEvery < 0 {
		return fmt.Errorf("cc: history period %d", c.HistoryEvery)
	}
	return nil
}

// sender is one endpoint's complete control-loop state: token bucket,
// AIMD controller, estimator filter, and the current window's signal
// accumulators. Kept in one flat slice so a governor allocates nothing
// after construction.
type sender struct {
	// Token bucket (refilled by Tick, drained by Allow).
	tokens float64
	// Controller.
	rate  float64
	state State
	// Window accumulators, reset at every update.
	acks   int64
	rttSum float64
	nacks  int64
	losses int64
	// Estimator filter state.
	prevMean float64
	havePrev bool
	grad     float64 // filtered delay gradient m(i)
	thresh   float64 // adaptive overuse threshold gamma(i)
	overuse  int     // consecutive over-threshold windows
	// offset staggers this sender's update phase within UpdateEvery.
	offset int64
}

// RateSample is one entry of the governor's rate history: the
// population's state at one sampling instant, used by the fault studies
// to show back-off and re-convergence.
type RateSample struct {
	Cycle int64 `json:"cycle"`
	// MeanRate is the mean admitted rate across senders.
	MeanRate float64 `json:"mean_rate"`
	// Decreases counts senders whose last decision was Decrease.
	Decreases int `json:"decreases"`
	// Acks/Nacks/Losses are totals since the previous sample.
	Acks   int64 `json:"acks"`
	Nacks  int64 `json:"nacks"`
	Losses int64 `json:"losses"`
}

// Governor is the per-run congestion controller: one control loop per
// sender, consulted by the sim harness before every injection. A
// Governor is bound to a single run of a single network — build a fresh
// one per experiment point, exactly like the network itself.
type Governor struct {
	cfg     Config
	senders []sender
	cycle   int64

	// History accumulation (HistoryEvery > 0 only).
	history                      []RateSample
	histAcks, histNacks, histLost int64

	// Telemetry gauges, nil until Register: per-sender series plus
	// population aggregates, all atomically updated so a concurrent
	// scrape never races the cycle loop.
	telRate, telGrad, telState []*telemetry.Gauge
	aggMean, aggMin, aggMax    *telemetry.Gauge
	aggDecreases               *telemetry.Gauge
}

// New builds a governor for nodes senders; it panics on invalid
// configuration, like the simulators.
func New(cfg Config, nodes int) *Governor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Governor{cfg: cfg, senders: make([]sender, nodes)}
	for i := range g.senders {
		s := &g.senders[i]
		s.rate = cfg.InitRate
		s.tokens = 1 // first packet admitted immediately
		s.thresh = cfg.ThreshInit
		s.offset = int64(splitmix64(uint64(cfg.Seed)^(uint64(i)+0x9e3779b97f4a7c15)) % uint64(cfg.UpdateEvery))
	}
	if cfg.HistoryEvery > 0 {
		g.history = make([]RateSample, 0, 1024)
	}
	return g
}

// Config returns the tuning the governor was built with.
func (g *Governor) Config() Config { return g.cfg }

// Senders returns the controlled population size.
func (g *Governor) Senders() int { return len(g.senders) }

// Tick advances the governor to cycle: refills every token bucket and
// runs the staggered controller updates due this cycle. The harness
// calls it once per injection cycle, before consulting Allow.
func (g *Governor) Tick(cycle int64) {
	g.cycle = cycle
	every := int64(g.cfg.UpdateEvery)
	for i := range g.senders {
		s := &g.senders[i]
		if s.tokens += s.rate; s.tokens > g.cfg.BucketDepth {
			s.tokens = g.cfg.BucketDepth
		}
		if (cycle+s.offset)%every == 0 {
			g.update(i, s)
		}
	}
	if g.cfg.HistoryEvery > 0 && cycle%g.cfg.HistoryEvery == 0 {
		g.sampleHistory()
	}
	if g.aggMean != nil && cycle%every == 0 {
		g.updateAggregates()
	}
}

// Allow reports whether src may inject one packet this cycle, consuming
// a token when it may. A denied packet counts against the offered load
// exactly like a full NIC: the governor is an admission gate, not a
// queue.
func (g *Governor) Allow(src mesh.NodeID) bool {
	s := &g.senders[src]
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

// Ack feeds one delivered message's inject→eject latency (the RTT proxy)
// into src's estimator window.
func (g *Governor) Ack(src mesh.NodeID, latency float64) {
	s := &g.senders[src]
	s.acks++
	s.rttSum += latency
	g.histAcks++
}

// Nack feeds one congestion nack — an optical drop notice returning to
// the owner, or an electrical injection stall — into src's window.
func (g *Governor) Nack(src mesh.NodeID) {
	g.senders[src].nacks++
	g.histNacks++
}

// Lost feeds one delivery-layer loss (retry budget, timeout,
// unreachable) into src's window. Losses weigh like nacks in the loss
// ratio but are reported separately in the history.
func (g *Governor) Lost(src mesh.NodeID) {
	g.senders[src].losses++
	g.histLost++
}

// Rate returns src's current admitted rate.
func (g *Governor) Rate(src mesh.NodeID) float64 { return g.senders[src].rate }

// State returns src's controller state as of its last update.
func (g *Governor) State(src mesh.NodeID) State { return g.senders[src].state }

// Gradient returns src's filtered delay gradient.
func (g *Governor) Gradient(src mesh.NodeID) float64 { return g.senders[src].grad }

// MeanRate returns the population's mean admitted rate.
func (g *Governor) MeanRate() float64 {
	var sum float64
	for i := range g.senders {
		sum += g.senders[i].rate
	}
	return sum / float64(len(g.senders))
}

// History returns the recorded rate samples (HistoryEvery > 0); the
// slice is the governor's own, valid until the next Tick.
func (g *Governor) History() []RateSample { return g.history }

// sampleHistory appends one population sample and resets the interval
// totals.
func (g *Governor) sampleHistory() {
	var sum float64
	dec := 0
	for i := range g.senders {
		sum += g.senders[i].rate
		if g.senders[i].state == StateDecrease {
			dec++
		}
	}
	g.history = append(g.history, RateSample{
		Cycle:     g.cycle,
		MeanRate:  sum / float64(len(g.senders)),
		Decreases: dec,
		Acks:      g.histAcks,
		Nacks:     g.histNacks,
		Losses:    g.histLost,
	})
	g.histAcks, g.histNacks, g.histLost = 0, 0, 0
}

// splitmix64 is the stagger hash (same generator as the exp engine's
// per-point seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
