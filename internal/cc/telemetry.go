package cc

import (
	"fmt"

	"phastlane/internal/telemetry"
)

// maxPerSenderSeries caps the per-sender gauge fan-out: beyond this many
// senders only the population aggregates are exported, keeping a 64x64
// mesh from registering twelve thousand series.
const maxPerSenderSeries = 256

// Register exposes the governor on reg: population aggregates
// (phastlane_cc_rate_mean/min/max, phastlane_cc_decreases) always, plus
// per-sender rate/gradient/state gauges when the population is small
// enough to enumerate. All values are plain atomic gauges written from
// the cycle loop, so a concurrent scrape never races the simulation.
func (g *Governor) Register(reg *telemetry.Registry) {
	g.aggMean = reg.Gauge("phastlane_cc_rate_mean",
		"Mean admitted injection rate across senders (packets/node/cycle).")
	g.aggMin = reg.Gauge("phastlane_cc_rate_min",
		"Minimum per-sender admitted injection rate.")
	g.aggMax = reg.Gauge("phastlane_cc_rate_max",
		"Maximum per-sender admitted injection rate.")
	g.aggDecreases = reg.Gauge("phastlane_cc_decreases",
		"Senders whose last AIMD decision was Decrease.")
	g.updateAggregates()

	if len(g.senders) > maxPerSenderSeries {
		return
	}
	g.telRate = make([]*telemetry.Gauge, len(g.senders))
	g.telGrad = make([]*telemetry.Gauge, len(g.senders))
	g.telState = make([]*telemetry.Gauge, len(g.senders))
	for i := range g.senders {
		g.telRate[i] = reg.Gauge(fmt.Sprintf("phastlane_cc_rate{sender=%q}", fmt.Sprint(i)),
			"Admitted injection rate of one sender (packets/cycle).")
		g.telGrad[i] = reg.Gauge(fmt.Sprintf("phastlane_cc_gradient{sender=%q}", fmt.Sprint(i)),
			"Filtered delay gradient of one sender (cycles/window).")
		g.telState[i] = reg.Gauge(fmt.Sprintf("phastlane_cc_state{sender=%q}", fmt.Sprint(i)),
			"AIMD state of one sender (0 hold, 1 increase, 2 decrease).")
		g.telRate[i].Set(g.senders[i].rate)
	}
}

// updateAggregates refreshes the population gauges; called from Tick at
// update-period boundaries once registered.
func (g *Governor) updateAggregates() {
	min, max := g.senders[0].rate, g.senders[0].rate
	var sum float64
	dec := 0
	for i := range g.senders {
		r := g.senders[i].rate
		sum += r
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
		if g.senders[i].state == StateDecrease {
			dec++
		}
	}
	g.aggMean.Set(sum / float64(len(g.senders)))
	g.aggMin.Set(min)
	g.aggMax.Set(max)
	g.aggDecreases.Set(float64(dec))
}
