package coherence

import (
	"fmt"
	"math/rand"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/trace"
)

// globalLine is the system-wide MSI bookkeeping for one L2 line.
type globalLine struct {
	owner   int // core holding the line Modified, or -1
	sharers map[int]bool
}

// chainState is one outstanding-miss chain (MSHR) of a core: the trace
// message whose completion gates this chain's next miss.
type chainState struct {
	lastDep uint64
}

// generator runs the coherence protocol over synthetic reference streams
// and records the resulting network messages.
type generator struct {
	cfg Config
	p   Params
	rng *rand.Rand

	l1, l2 []*cache
	global map[uint64]*globalLine

	msgs   []trace.Message
	chains [][]chainState
	misses []int // per core, for chain round-robin and burst phase

	privPos, sharedPos []uint64
}

// GenerateTrace runs workload p over the cache hierarchy cfg and returns
// the network trace both simulators replay.
func GenerateTrace(p Params, cfg Config, seed int64) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg:       cfg,
		p:         p,
		rng:       rand.New(rand.NewSource(seed)),
		l1:        make([]*cache, cfg.Cores),
		l2:        make([]*cache, cfg.Cores),
		global:    make(map[uint64]*globalLine),
		chains:    make([][]chainState, cfg.Cores),
		misses:    make([]int, cfg.Cores),
		privPos:   make([]uint64, cfg.Cores),
		sharedPos: make([]uint64, cfg.Cores),
	}
	for c := 0; c < cfg.Cores; c++ {
		g.l1[c] = newCache(cfg.L1SizeBytes, cfg.L1Ways, cfg.L1BlockBytes)
		g.l2[c] = newCache(cfg.L2SizeBytes, cfg.L2Ways, cfg.L2BlockBytes)
		g.chains[c] = make([]chainState, p.MLP)
		g.privPos[c] = uint64(g.rng.Intn(p.PrivateLines))
		g.sharedPos[c] = uint64(g.rng.Intn(p.SharedLines))
	}
	// Warm the hierarchy silently so the emitted trace reflects steady
	// state - capacity misses, cache-to-cache transfers from Modified
	// owners, and dirty writebacks - rather than a pure cold-start.
	warmRefs := 2 * cfg.L2SizeBytes / cfg.L2BlockBytes
	for c := 0; c < cfg.Cores; c++ {
		for i := 0; i < warmRefs; i++ {
			g.warmReference(c)
		}
	}
	// Round-robin the cores; each turn runs references until one
	// produces network traffic, keeping per-core message interleaving
	// even.
	const maxRefsPerTurn = 400
	stuckTurns := 0
	for len(g.msgs) < p.Messages && stuckTurns < cfg.Cores*4 {
		progressed := false
		for c := 0; c < cfg.Cores && len(g.msgs) < p.Messages; c++ {
			for ref := 0; ref < maxRefsPerTurn; ref++ {
				if g.reference(c) {
					progressed = true
					break
				}
			}
		}
		if progressed {
			stuckTurns = 0
		} else {
			stuckTurns++
		}
	}
	if len(g.msgs) == 0 {
		return nil, fmt.Errorf("coherence: workload %q produced no traffic", p.Name)
	}
	tr := &trace.Trace{Nodes: cfg.Cores, Messages: g.msgs}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("coherence: generated invalid trace: %w", err)
	}
	return tr, nil
}

// lineBase addresses: private regions are disjoint per core; the shared
// region is common. All addresses are L2-line aligned.
func (g *generator) privateAddr(core int, line uint64) uint64 {
	return (uint64(core+1) << 32) | line*uint64(g.cfg.L2BlockBytes)
}

func (g *generator) sharedAddr(line uint64) uint64 {
	return (uint64(1) << 48) | line*uint64(g.cfg.L2BlockBytes)
}

// nextRef synthesises the next reference for a core.
func (g *generator) nextRef(core int) (addr uint64, write bool) {
	write = g.rng.Float64() < g.p.WriteFrac
	if g.rng.Float64() < g.p.SharedFrac {
		if g.rng.Float64() < g.p.Locality {
			g.sharedPos[core] = (g.sharedPos[core] + 1) % uint64(g.p.SharedLines)
		} else {
			g.sharedPos[core] = uint64(g.rng.Intn(g.p.SharedLines))
		}
		return g.sharedAddr(g.sharedPos[core]), write
	}
	if g.rng.Float64() < g.p.Locality {
		g.privPos[core] = (g.privPos[core] + 1) % uint64(g.p.PrivateLines)
	} else {
		g.privPos[core] = uint64(g.rng.Intn(g.p.PrivateLines))
	}
	return g.privateAddr(core, g.privPos[core]), write
}

// reference runs one memory reference through the hierarchy; it returns
// true when network traffic was generated.
func (g *generator) reference(core int) bool {
	addr, write := g.nextRef(core)
	// L1 filters read hits; writes always consult the L2 so upgrade
	// traffic is preserved.
	if !write {
		if g.l1[core].lookup(addr) != nil {
			return false
		}
		g.l1[core].insert(addr, shared)
	}
	w := g.l2[core].lookup(addr)
	switch {
	case w == nil:
		g.miss(core, addr, write)
		return true
	case write && w.state == shared:
		g.upgrade(core, addr)
		return true
	default:
		return false // L2 hit in a sufficient state
	}
}

// warmReference runs one reference through the hierarchy updating cache and
// MSI state without emitting trace messages, for cache warmup.
func (g *generator) warmReference(core int) {
	addr, write := g.nextRef(core)
	if !write {
		if g.l1[core].lookup(addr) != nil {
			return
		}
		g.l1[core].insert(addr, shared)
	}
	w := g.l2[core].lookup(addr)
	gl := g.line(addr)
	switch {
	case w == nil:
		st := shared
		if write {
			st = modified
			g.invalidateOthers(core, addr, gl)
			gl.owner = core
			gl.sharers = map[int]bool{core: true}
		} else {
			if gl.owner >= 0 && gl.owner != core {
				g.l2[gl.owner].setState(addr, shared)
				gl.sharers[gl.owner] = true
			}
			gl.owner = -1
			gl.sharers[core] = true
		}
		victimAddr, victimState := g.l2[core].insert(addr, st)
		if victimState != invalid {
			vgl := g.line(victimAddr)
			delete(vgl.sharers, core)
			if victimState == modified && vgl.owner == core {
				vgl.owner = -1
			}
		}
	case write && w.state == shared:
		g.invalidateOthers(core, addr, gl)
		gl.owner = core
		gl.sharers = map[int]bool{core: true}
		g.l2[core].setState(addr, modified)
	}
}

// invalidateOthers drops every other core's copy of addr.
func (g *generator) invalidateOthers(core int, addr uint64, gl *globalLine) {
	for s := range gl.sharers {
		if s != core {
			g.l2[s].invalidate(addr)
			g.l1[s].invalidate(addr)
		}
	}
	if gl.owner >= 0 && gl.owner != core {
		g.l2[gl.owner].invalidate(addr)
		g.l1[gl.owner].invalidate(addr)
	}
}

// pacing returns the think time before this core's next miss may inject,
// following the benchmark's burst structure.
func (g *generator) pacing(core int) int64 {
	n := g.misses[core]
	g.misses[core]++
	if g.p.BurstLen > 0 {
		phase := n % (g.p.BurstLen + g.p.BurstGap)
		if phase < g.p.BurstLen {
			return int64(g.p.BurstThink)
		}
	}
	return int64(g.p.ThinkMean + g.rng.Intn(g.p.ThinkMean/2+1))
}

// emit appends a message and returns its ID.
func (g *generator) emit(m trace.Message) uint64 {
	m.ID = uint64(len(g.msgs) + 1)
	g.msgs = append(g.msgs, m)
	return m.ID
}

// mcOf returns the memory controller owning a line: the 64 MCs are
// interleaved on a cache-line basis (paper Section 2).
func (g *generator) mcOf(addr uint64) int {
	return int((addr / uint64(g.cfg.L2BlockBytes)) % uint64(g.cfg.Cores))
}

// line returns the global MSI record for addr.
func (g *generator) line(addr uint64) *globalLine {
	gl, ok := g.global[addr]
	if !ok {
		gl = &globalLine{owner: -1, sharers: make(map[int]bool)}
		g.global[addr] = gl
	}
	return gl
}

// dirLatency is the directory lookup time at a home memory controller.
const dirLatency = 6

// miss handles an L2 miss: request the line (by broadcast under the snoopy
// protocol, or unicast to the home directory), have the owner or the
// line's memory controller reply, update MSI state, and write back any
// dirty victim.
func (g *generator) miss(core int, addr uint64, write bool) {
	if g.p.Protocol == DirectoryMSI {
		g.missDirectory(core, addr, write)
		return
	}
	chain := &g.chains[core][g.misses[core]%g.p.MLP]
	op := packet.OpReadReq
	if write {
		op = packet.OpWriteReq
	}
	req := g.emit(trace.Message{
		Src: mesh.NodeID(core), Dst: trace.Broadcast, Op: op,
		Dep: chain.lastDep, Think: g.pacing(core),
		EarliestCycle: g.stagger(chain.lastDep),
	})
	completion := req
	gl := g.line(addr)

	// Data supplier: the Modified owner if any, else the line's MC.
	supplier, latency := g.mcOf(addr), int64(g.cfg.MemLatency)
	if gl.owner >= 0 && gl.owner != core {
		supplier, latency = gl.owner, int64(g.cfg.SnoopLatency)
	}
	if supplier != core {
		completion = g.emit(trace.Message{
			Src: mesh.NodeID(supplier), Dst: mesh.NodeID(core),
			Op: packet.OpDataReply, Dep: req, Think: latency,
		})
	}

	// Snoop effects and local fill.
	st := shared
	if write {
		st = modified
		g.invalidateOthers(core, addr, gl)
		gl.owner = core
		gl.sharers = map[int]bool{core: true}
	} else {
		if gl.owner >= 0 && gl.owner != core {
			g.l2[gl.owner].setState(addr, shared)
			gl.sharers[gl.owner] = true
		}
		gl.owner = -1
		gl.sharers[core] = true
	}
	victimAddr, victimState := g.l2[core].insert(addr, st)
	g.evict(core, victimAddr, victimState, completion)
	chain.lastDep = completion
}

// missDirectory is the DirectoryMSI miss flow: unicast request to the home
// MC; the directory forwards to the Modified owner or replies itself, and
// sends targeted invalidations on writes. No broadcasts.
func (g *generator) missDirectory(core int, addr uint64, write bool) {
	chain := &g.chains[core][g.misses[core]%g.p.MLP]
	home := g.mcOf(addr)
	gl := g.line(addr)
	think := g.pacing(core)
	op := packet.OpReadReq
	if write {
		op = packet.OpWriteReq
	}

	// Request to the home directory (silent when home is local).
	reqDep := chain.lastDep
	req := reqDep
	if home != core {
		req = g.emit(trace.Message{
			Src: mesh.NodeID(core), Dst: mesh.NodeID(home), Op: op,
			Dep: reqDep, Think: think,
			EarliestCycle: g.stagger(reqDep),
		})
	}

	// Targeted invalidations on writes.
	if write {
		for s := range gl.sharers {
			if s != core && s != home {
				g.emit(trace.Message{
					Src: mesh.NodeID(home), Dst: mesh.NodeID(s),
					Op: packet.OpWriteReq, Dep: req, Think: dirLatency,
				})
			}
		}
	}

	// Data supply: forward to the owner for a cache-to-cache transfer,
	// or reply from memory at the home node.
	completion := req
	if gl.owner >= 0 && gl.owner != core {
		fwd := req
		if gl.owner != home {
			fwd = g.emit(trace.Message{
				Src: mesh.NodeID(home), Dst: mesh.NodeID(gl.owner),
				Op: op, Dep: req, Think: dirLatency,
			})
		}
		completion = g.emit(trace.Message{
			Src: mesh.NodeID(gl.owner), Dst: mesh.NodeID(core),
			Op: packet.OpDataReply, Dep: fwd, Think: int64(g.cfg.SnoopLatency),
		})
	} else if home != core {
		completion = g.emit(trace.Message{
			Src: mesh.NodeID(home), Dst: mesh.NodeID(core),
			Op: packet.OpDataReply, Dep: req, Think: int64(dirLatency + g.cfg.MemLatency),
		})
	}

	// State updates mirror the snoopy path.
	st := shared
	if write {
		st = modified
		g.invalidateOthers(core, addr, gl)
		gl.owner = core
		gl.sharers = map[int]bool{core: true}
	} else {
		if gl.owner >= 0 && gl.owner != core {
			g.l2[gl.owner].setState(addr, shared)
			gl.sharers[gl.owner] = true
		}
		gl.owner = -1
		gl.sharers[core] = true
	}
	victimAddr, victimState := g.l2[core].insert(addr, st)
	g.evict(core, victimAddr, victimState, completion)
	chain.lastDep = completion
}

// upgrade handles a write hit on a Shared line: broadcast the invalidation
// (snoopy) or send targeted invalidations via the home directory, and take
// ownership.
func (g *generator) upgrade(core int, addr uint64) {
	if g.p.Protocol == DirectoryMSI {
		g.upgradeDirectory(core, addr)
		return
	}
	chain := &g.chains[core][g.misses[core]%g.p.MLP]
	req := g.emit(trace.Message{
		Src: mesh.NodeID(core), Dst: trace.Broadcast, Op: packet.OpWriteReq,
		Dep: chain.lastDep, Think: g.pacing(core),
		EarliestCycle: g.stagger(chain.lastDep),
	})
	gl := g.line(addr)
	g.invalidateOthers(core, addr, gl)
	gl.owner = core
	gl.sharers = map[int]bool{core: true}
	g.l2[core].setState(addr, modified)
	chain.lastDep = req
}

// upgradeDirectory is the DirectoryMSI upgrade flow: request ownership at
// the home MC, which invalidates the other sharers and acknowledges.
func (g *generator) upgradeDirectory(core int, addr uint64) {
	chain := &g.chains[core][g.misses[core]%g.p.MLP]
	home := g.mcOf(addr)
	gl := g.line(addr)
	think := g.pacing(core)

	req := chain.lastDep
	if home != core {
		req = g.emit(trace.Message{
			Src: mesh.NodeID(core), Dst: mesh.NodeID(home),
			Op: packet.OpWriteReq, Dep: chain.lastDep, Think: think,
			EarliestCycle: g.stagger(chain.lastDep),
		})
	}
	for s := range gl.sharers {
		if s != core && s != home {
			g.emit(trace.Message{
				Src: mesh.NodeID(home), Dst: mesh.NodeID(s),
				Op: packet.OpWriteReq, Dep: req, Think: dirLatency,
			})
		}
	}
	completion := req
	if home != core {
		completion = g.emit(trace.Message{
			Src: mesh.NodeID(home), Dst: mesh.NodeID(core),
			Op: packet.OpAck, Dep: req, Think: dirLatency,
		})
	}
	g.invalidateOthers(core, addr, gl)
	gl.owner = core
	gl.sharers = map[int]bool{core: true}
	g.l2[core].setState(addr, modified)
	chain.lastDep = completion
}

// evict emits the writeback for a dirty victim and updates global state.
func (g *generator) evict(core int, victimAddr uint64, victimState lineState, dep uint64) {
	if victimState == invalid {
		return
	}
	gl := g.line(victimAddr)
	delete(gl.sharers, core)
	if victimState == modified {
		if gl.owner == core {
			gl.owner = -1
		}
		if mc := g.mcOf(victimAddr); mc != core {
			g.emit(trace.Message{
				Src: mesh.NodeID(core), Dst: mesh.NodeID(mc),
				Op: packet.OpWriteback, Dep: dep, Think: 1,
			})
		}
	}
}

// stagger spreads dependency-free first misses over the first cycles so
// cold-start injection is not perfectly synchronised.
func (g *generator) stagger(dep uint64) int64 {
	if dep != 0 {
		return 0
	}
	return int64(g.rng.Intn(24))
}
