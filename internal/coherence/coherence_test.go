package coherence

import (
	"math/rand"
	"testing"

	"phastlane/internal/packet"
)

func TestCacheHitMiss(t *testing.T) {
	c := newCache(1024, 2, 64) // 8 sets x 2 ways
	if c.lookup(0) != nil {
		t.Fatal("empty cache hit")
	}
	c.insert(0, shared)
	if c.lookup(0) == nil {
		t.Fatal("miss after insert")
	}
	if c.lookup(64) != nil {
		t.Fatal("different line hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(1024, 2, 64) // 8 sets, 2 ways; lines mapping to set 0: 0, 512, 1024...
	c.insert(0, shared)
	c.insert(512, shared)
	c.lookup(0) // refresh line 0; 512 becomes LRU
	victim, st := c.insert(1024, modified)
	if st != shared || victim != 512 {
		t.Fatalf("evicted (%d,%v), want (512,shared)", victim, st)
	}
	if c.lookup(0) == nil || c.lookup(1024) == nil {
		t.Fatal("survivors missing")
	}
	if c.lookup(512) != nil {
		t.Fatal("victim still resident")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache(1024, 2, 64)
	c.insert(128, modified)
	if st := c.invalidate(128); st != modified {
		t.Fatalf("invalidate returned %v", st)
	}
	if c.lookup(128) != nil {
		t.Fatal("line survived invalidation")
	}
	if st := c.invalidate(128); st != invalid {
		t.Fatal("double invalidation returned non-invalid")
	}
}

func TestCacheSetState(t *testing.T) {
	c := newCache(1024, 2, 64)
	c.insert(0, modified)
	c.setState(0, shared)
	if w := c.lookup(0); w == nil || w.state != shared {
		t.Fatal("setState did not downgrade")
	}
	c.setState(999999, modified) // absent: no-op, no panic
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := DefaultConfig()
	bad.L2SizeBytes = 100 // not a power-of-two set count
	if err := bad.Validate(); err == nil {
		t.Error("bad L2 geometry accepted")
	}
	bad = DefaultConfig()
	bad.Cores = 1
	if err := bad.Validate(); err == nil {
		t.Error("1-core system accepted")
	}
}

func TestBenchmarksTable3(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 10 {
		t.Fatalf("got %d benchmarks, want 10 (Table 3)", len(bs))
	}
	want := []string{"Barnes", "Cholesky", "FFT", "LU", "Ocean", "Radix",
		"Raytrace", "Water-NSquared", "Water-Spatial", "FMM"}
	for i, p := range bs {
		if p.Name != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, p.Name, want[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.DataSet == "" {
			t.Errorf("%s missing data set", p.Name)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	if _, err := BenchmarkByName("Ocean"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkByName("Nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// small returns a fast-generating workload for tests.
func small() Params {
	p, _ := BenchmarkByName("Water-Spatial")
	p.Messages = 3000
	return p
}

func TestGenerateTraceValid(t *testing.T) {
	tr, err := GenerateTrace(small(), DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 64 {
		t.Errorf("trace nodes = %d", tr.Nodes)
	}
	if len(tr.Messages) < 3000 {
		t.Errorf("trace has %d messages, want >= 3000", len(tr.Messages))
	}
}

func TestGenerateTraceMessageMix(t *testing.T) {
	tr, err := GenerateTrace(small(), DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[packet.Op]int{}
	broadcasts := 0
	for _, m := range tr.Messages {
		counts[m.Op]++
		if m.IsBroadcast() {
			broadcasts++
		}
	}
	// A snoopy system broadcasts every miss and upgrade.
	if counts[packet.OpReadReq] == 0 || counts[packet.OpWriteReq] == 0 {
		t.Errorf("missing request ops: %v", counts)
	}
	if counts[packet.OpDataReply] == 0 {
		t.Error("no data replies")
	}
	if broadcasts == 0 || broadcasts <= len(tr.Messages)/4 {
		t.Errorf("broadcast share %d/%d too small for a snoopy protocol", broadcasts, len(tr.Messages))
	}
}

func TestGenerateTraceReplyDependsOnRequest(t *testing.T) {
	tr, err := GenerateTrace(small(), DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Messages {
		if m.Op == packet.OpDataReply {
			if m.Dep == 0 {
				t.Fatal("reply without dependency")
			}
			req := tr.Messages[m.Dep-1]
			if !req.IsBroadcast() {
				t.Fatalf("reply %d depends on non-broadcast %d", m.ID, req.ID)
			}
			if req.Src != m.Dst {
				t.Fatalf("reply %d goes to %d, requester was %d", m.ID, m.Dst, req.Src)
			}
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a, err := GenerateTrace(small(), DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(small(), DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Messages) != len(b.Messages) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Messages), len(b.Messages))
	}
	for i := range a.Messages {
		if a.Messages[i] != b.Messages[i] {
			t.Fatalf("message %d differs", i)
		}
	}
	c, err := GenerateTrace(small(), DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Messages) == len(c.Messages)
	if same {
		identical := true
		for i := range a.Messages {
			if a.Messages[i] != c.Messages[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateTraceCoreCoverage(t *testing.T) {
	tr, err := GenerateTrace(small(), DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[int]bool{}
	for _, m := range tr.Messages {
		srcs[int(m.Src)] = true
	}
	if len(srcs) < 60 {
		t.Errorf("only %d cores generated traffic", len(srcs))
	}
}

func TestGenerateTraceBurstyWorkloadsHaveLowThink(t *testing.T) {
	cfg := DefaultConfig()
	ocean, _ := BenchmarkByName("Ocean")
	ocean.Messages = 4000
	water, _ := BenchmarkByName("Water-NSquared")
	water.Messages = 4000
	meanThink := func(p Params) float64 {
		tr, err := GenerateTrace(p, cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		var sum, n float64
		for _, m := range tr.Messages {
			if m.IsBroadcast() {
				sum += float64(m.Think)
				n++
			}
		}
		return sum / n
	}
	if o, w := meanThink(ocean), meanThink(water); o >= w {
		t.Errorf("Ocean mean think %.1f not below Water %.1f (burstiness broken)", o, w)
	}
}

func TestGenerateTraceRejectsBadParams(t *testing.T) {
	p := small()
	p.Messages = 0
	if _, err := GenerateTrace(p, DefaultConfig(), 1); err == nil {
		t.Error("zero-message workload accepted")
	}
	p = small()
	bad := DefaultConfig()
	bad.Cores = 1
	if _, err := GenerateTrace(p, bad, 1); err == nil {
		t.Error("bad config accepted")
	}
}

// The victim-address reconstruction in insert must be exact: re-inserting
// the reported victim must hit the same set.
func TestVictimAddressReconstruction(t *testing.T) {
	c := newCache(4096, 2, 64) // 32 sets
	base := uint64(0xAB00_0000)
	a1 := base | (5 << 6)             // set 5
	a2 := base | (5 << 6) | (32 << 6) // same set, different tag
	a3 := base | (5 << 6) | (64 << 6)
	c.insert(a1, modified)
	c.insert(a2, shared)
	victim, st := c.insert(a3, shared)
	if st != modified || victim != a1 {
		t.Fatalf("victim = %#x (%v), want %#x (modified)", victim, st, a1)
	}
}

func TestChainCountMatchesMLP(t *testing.T) {
	// Each core's MLP chains start with one dependency-free request;
	// every other request chains off an earlier completion.
	p := small()
	tr, err := GenerateTrace(p, DefaultConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	rootRequests := 0
	for _, m := range tr.Messages {
		if m.IsBroadcast() && m.Dep == 0 {
			rootRequests++
		}
	}
	want := 64 * p.MLP
	if rootRequests != want {
		t.Errorf("dependency-free requests = %d, want cores x MLP = %d", rootRequests, want)
	}
}

func TestWritebacksTargetLineMC(t *testing.T) {
	// Writebacks go to a memory controller, which by construction is
	// never the evicting core itself (local writebacks are silent).
	radix, err := BenchmarkByName("Radix")
	if err != nil {
		t.Fatal(err)
	}
	radix.Messages = 6000
	tr, err := GenerateTrace(radix, DefaultConfig(), 10)
	if err != nil {
		t.Fatal(err)
	}
	writebacks := 0
	for _, m := range tr.Messages {
		if m.Op == packet.OpWriteback {
			writebacks++
			if m.IsBroadcast() {
				t.Fatal("writeback broadcast")
			}
			if m.Src == m.Dst {
				t.Fatal("writeback to self")
			}
		}
	}
	if writebacks == 0 {
		t.Error("write-heavy workload with warmed caches produced no writebacks")
	}
}

func TestWarmupCreatesCacheToCacheTransfers(t *testing.T) {
	// With a warmed shared region, some replies must come from Modified
	// owners (snoop latency) rather than memory controllers (80 cycles):
	// the think-time distribution of replies must be bimodal.
	p := small()
	tr, err := GenerateTrace(p, DefaultConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	snoop, memory := 0, 0
	cfg := DefaultConfig()
	for _, m := range tr.Messages {
		if m.Op != packet.OpDataReply {
			continue
		}
		switch {
		case m.Think == int64(cfg.SnoopLatency):
			snoop++
		case m.Think == int64(cfg.MemLatency):
			memory++
		}
	}
	if snoop == 0 {
		t.Error("no cache-to-cache transfers: sharing model broken")
	}
	if memory == 0 {
		t.Error("no memory-controller replies: capacity model broken")
	}
}

// checkMSIInvariants verifies the single-writer/multiple-reader property
// over the generator's global state and per-core caches.
func checkMSIInvariants(t *testing.T, g *generator) {
	t.Helper()
	for addr, gl := range g.global {
		modifiedHolders := 0
		for c := 0; c < g.cfg.Cores; c++ {
			set, tag := g.l2[c].index(addr)
			for i := range set {
				if set[i].state == invalid || set[i].tag != tag {
					continue
				}
				if set[i].state == modified {
					modifiedHolders++
					if gl.owner != c {
						t.Fatalf("line %#x: core %d holds M but owner is %d", addr, c, gl.owner)
					}
				} else if gl.owner == c {
					t.Fatalf("line %#x: owner %d holds line in state %v", addr, c, set[i].state)
				}
			}
		}
		if modifiedHolders > 1 {
			t.Fatalf("line %#x: %d modified holders", addr, modifiedHolders)
		}
		if gl.owner >= 0 && modifiedHolders == 0 {
			t.Fatalf("line %#x: owner %d recorded but no M copy resident", addr, gl.owner)
		}
	}
}

// Property: the MSI single-writer invariant holds throughout generation.
func TestMSISingleWriterInvariant(t *testing.T) {
	p := small()
	p.Messages = 1500
	cfg := DefaultConfig()
	g := &generator{
		cfg: cfg, p: p, rng: rand.New(rand.NewSource(13)),
		l1: make([]*cache, cfg.Cores), l2: make([]*cache, cfg.Cores),
		global:  make(map[uint64]*globalLine),
		chains:  make([][]chainState, cfg.Cores),
		misses:  make([]int, cfg.Cores),
		privPos: make([]uint64, cfg.Cores), sharedPos: make([]uint64, cfg.Cores),
	}
	for c := 0; c < cfg.Cores; c++ {
		g.l1[c] = newCache(cfg.L1SizeBytes, cfg.L1Ways, cfg.L1BlockBytes)
		g.l2[c] = newCache(cfg.L2SizeBytes, cfg.L2Ways, cfg.L2BlockBytes)
		g.chains[c] = make([]chainState, p.MLP)
	}
	for round := 0; round < 30; round++ {
		for c := 0; c < cfg.Cores; c++ {
			for r := 0; r < 40; r++ {
				g.reference(c)
			}
		}
		checkMSIInvariants(t, g)
	}
}

func TestDirectoryProtocolNoBroadcasts(t *testing.T) {
	p := small()
	p.Protocol = DirectoryMSI
	tr, err := GenerateTrace(p, DefaultConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[packet.Op]int{}
	for _, m := range tr.Messages {
		if m.IsBroadcast() {
			t.Fatal("directory protocol emitted a broadcast")
		}
		counts[m.Op]++
	}
	if counts[packet.OpReadReq] == 0 || counts[packet.OpDataReply] == 0 {
		t.Errorf("missing request/reply traffic: %v", counts)
	}
	if counts[packet.OpWriteReq] == 0 {
		t.Errorf("missing write requests/invalidations: %v", counts)
	}
}

func TestProtocolString(t *testing.T) {
	if Snoopy.String() != "snoopy" || DirectoryMSI.String() != "directory" {
		t.Error("protocol names wrong")
	}
	if Protocol(9).String() == "" {
		t.Error("unknown protocol name empty")
	}
}

func TestGenerateTrace256Cores(t *testing.T) {
	p := small()
	p.Messages = 2500
	cfg := DefaultConfig()
	cfg.Cores = 256
	tr, err := GenerateTrace(p, cfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 256 {
		t.Fatalf("nodes = %d", tr.Nodes)
	}
	srcs := map[int]bool{}
	for _, m := range tr.Messages {
		srcs[int(m.Src)] = true
	}
	if len(srcs) < 200 {
		t.Errorf("only %d of 256 cores generated traffic", len(srcs))
	}
}
