package coherence

import "fmt"

// Protocol selects the coherence protocol the trace generator models.
type Protocol int

// Protocols. Snoopy is the paper's model: every L2 miss and upgrade
// broadcasts to all nodes. DirectoryMSI is a beyond-the-paper alternative:
// requests go unicast to the line's home memory controller, which forwards
// to the owner or replies itself and sends targeted invalidations - no
// broadcasts at all, removing the traffic pattern Phastlane's multicast
// sweeps accelerate.
const (
	Snoopy Protocol = iota
	DirectoryMSI
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Snoopy:
		return "snoopy"
	case DirectoryMSI:
		return "directory"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Params characterises one SPLASH2 benchmark's memory behaviour as seen by
// the network: working-set sizes, sharing, write mix, locality,
// memory-level parallelism and burstiness. The ten parameter sets below
// model the Table 3 benchmarks; the values are chosen so each benchmark's
// network-level signature (injection intensity, multicast fraction,
// burstiness) matches its qualitative description in the SPLASH2
// literature and reproduces the paper's Fig. 10 sensitivities - in
// particular Ocean's and FMM's heavy transient bursts, which overwhelm
// small Phastlane buffers and cause drop storms.
type Params struct {
	// Name and DataSet mirror Table 3.
	Name    string
	DataSet string
	// PrivateLines and SharedLines size the per-core private region
	// and the global shared region, in L2 lines.
	PrivateLines, SharedLines int
	// SharedFrac is the probability a reference targets the shared
	// region; WriteFrac the probability it is a store.
	SharedFrac, WriteFrac float64
	// Locality is the probability the next reference continues
	// sequentially instead of jumping randomly.
	Locality float64
	// MLP is the number of independent outstanding-miss chains per
	// core (MSHRs the out-of-order core keeps busy).
	MLP int
	// ThinkMean is the mean compute time between misses of one chain;
	// within a burst it drops to BurstThink for BurstLen misses.
	ThinkMean, BurstThink int
	// BurstLen is the number of consecutive low-think misses in a
	// burst; BurstGap the number of misses between bursts. BurstLen 0
	// disables bursts.
	BurstLen, BurstGap int
	// Messages is the approximate trace length to generate.
	Messages int
	// Protocol selects snoopy (paper, default) or directory coherence.
	Protocol Protocol
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Name == "" || p.PrivateLines < 1 || p.SharedLines < 1 {
		return fmt.Errorf("coherence: bad regions in %q", p.Name)
	}
	if p.SharedFrac < 0 || p.SharedFrac > 1 || p.WriteFrac < 0 || p.WriteFrac > 1 ||
		p.Locality < 0 || p.Locality > 1 {
		return fmt.Errorf("coherence: bad fractions in %q", p.Name)
	}
	if p.MLP < 1 || p.ThinkMean < 0 || p.BurstThink < 0 || p.BurstLen < 0 || p.BurstGap < 0 {
		return fmt.Errorf("coherence: bad pacing in %q", p.Name)
	}
	if p.Messages < 1 {
		return fmt.Errorf("coherence: no messages in %q", p.Name)
	}
	return nil
}

// Benchmarks returns the ten SPLASH2 workload models in Table 3 order.
func Benchmarks() []Params {
	return []Params{
		{
			// N-body octree walk: pointer-chasing with moderate
			// sharing and force-exchange bursts; buffer-sensitive
			// in Fig. 10.
			Name: "Barnes", DataSet: "64K particles",
			PrivateLines: 12288, SharedLines: 3072,
			SharedFrac: 0.50, WriteFrac: 0.30, Locality: 0.55,
			MLP: 2, ThinkMean: 20, BurstThink: 0, BurstLen: 24, BurstGap: 36,
			Messages: 24000,
		},
		{
			// Sparse factorisation: irregular supernode updates,
			// mild bursts.
			Name: "Cholesky", DataSet: "tk29.O",
			PrivateLines: 10240, SharedLines: 3072,
			SharedFrac: 0.45, WriteFrac: 0.30, Locality: 0.50,
			MLP: 2, ThinkMean: 20, BurstThink: 1, BurstLen: 16, BurstGap: 48,
			Messages: 24000,
		},
		{
			// All-to-all transpose phases, parallel misses, strong
			// spatial locality, heavy cache-to-cache transfers.
			Name: "FFT", DataSet: "4M points",
			PrivateLines: 16384, SharedLines: 3072,
			SharedFrac: 0.60, WriteFrac: 0.35, Locality: 0.80,
			MLP: 2, ThinkMean: 22, BurstThink: 1, BurstLen: 12, BurstGap: 36,
			Messages: 26000,
		},
		{
			// Blocked dense LU: streaming blocks with pivot-row
			// sharing; the network latency is on the critical path
			// nearly every miss.
			Name: "LU", DataSet: "2048x2048 matrix",
			PrivateLines: 12288, SharedLines: 2048,
			SharedFrac: 0.65, WriteFrac: 0.35, Locality: 0.85,
			MLP: 2, ThinkMean: 24, BurstThink: 2, BurstLen: 10, BurstGap: 30,
			Messages: 26000,
		},
		{
			// Stencil sweeps over a huge grid: long, dense miss
			// bursts every sweep - the paper's most buffer-hungry
			// workload.
			Name: "Ocean", DataSet: "2050x2050 grid",
			PrivateLines: 32768, SharedLines: 8192,
			SharedFrac: 0.45, WriteFrac: 0.40, Locality: 0.75,
			MLP: 5, ThinkMean: 14, BurstThink: 0, BurstLen: 80, BurstGap: 20,
			Messages: 28000,
		},
		{
			// Permutation writes: poor locality, write-heavy,
			// large footprint.
			Name: "Radix", DataSet: "64M integers",
			PrivateLines: 24576, SharedLines: 4096,
			SharedFrac: 0.50, WriteFrac: 0.60, Locality: 0.25,
			MLP: 2, ThinkMean: 24, BurstThink: 1, BurstLen: 14, BurstGap: 36,
			Messages: 26000,
		},
		{
			// Read-mostly irregular scene traversal.
			Name: "Raytrace", DataSet: "balls4",
			PrivateLines: 10240, SharedLines: 4096,
			SharedFrac: 0.55, WriteFrac: 0.12, Locality: 0.45,
			MLP: 1, ThinkMean: 10, BurstThink: 1, BurstLen: 12, BurstGap: 30,
			Messages: 24000,
		},
		{
			// Small working set, high compute-to-miss ratio.
			Name: "Water-NSquared", DataSet: "512 molecules",
			PrivateLines: 6144, SharedLines: 2048,
			SharedFrac: 0.45, WriteFrac: 0.25, Locality: 0.60,
			MLP: 1, ThinkMean: 16, BurstThink: 2, BurstLen: 8, BurstGap: 40,
			Messages: 20000,
		},
		{
			// Spatial-decomposition variant: less sharing, similar
			// pace.
			Name: "Water-Spatial", DataSet: "512 molecules",
			PrivateLines: 6144, SharedLines: 1536,
			SharedFrac: 0.35, WriteFrac: 0.25, Locality: 0.65,
			MLP: 1, ThinkMean: 16, BurstThink: 2, BurstLen: 8, BurstGap: 40,
			Messages: 20000,
		},
		{
			// Adaptive fast multipole: deep tree-phase bursts; the
			// other buffer-sensitive workload of Fig. 10.
			Name: "FMM", DataSet: "512K particles",
			PrivateLines: 20480, SharedLines: 6144,
			SharedFrac: 0.50, WriteFrac: 0.30, Locality: 0.55,
			MLP: 4, ThinkMean: 12, BurstThink: 0, BurstLen: 64, BurstGap: 24,
			Messages: 26000,
		},
	}
}

// BenchmarkByName returns the named workload model.
func BenchmarkByName(name string) (Params, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("coherence: unknown benchmark %q", name)
}
