// Package coherence implements the workload substrate behind the paper's
// SPLASH2 evaluation (Section 4, Tables 3 and 4): a 64-core snoopy
// cache-coherent system - private L1 data and L2 caches per core, MSI
// states over broadcast requests, line-interleaved memory controllers -
// driven by per-benchmark synthetic address streams. Running a workload
// produces a dependency-carrying packet trace (package trace) that both the
// Phastlane and electrical simulators replay, mirroring the paper's
// methodology of feeding both simulators identical SESC-generated traces.
//
// Substitution note (see DESIGN.md): the paper generated traces with the
// SESC full-system simulator running SPLASH2 binaries. This package
// replaces the cores with parameterised reference generators (working-set
// size, sharing degree, write fraction, memory-level parallelism,
// burstiness) in front of a real cache hierarchy and coherence protocol, so
// the network observes structurally identical traffic: broadcast miss
// requests, cache-to-cache and memory-controller data replies, upgrades,
// and writebacks, with per-core dependency chains pacing injection.
package coherence

import "fmt"

// Config describes the per-node cache hierarchy and memory, matching the
// paper's simulated parameters (Table 4).
type Config struct {
	Cores int
	// L1: 32 KB, 4-way, 32 B blocks.
	L1SizeBytes, L1Ways, L1BlockBytes int
	// L2: 256 KB, 16-way, 64 B blocks (the coherence unit).
	L2SizeBytes, L2Ways, L2BlockBytes int
	// MemLatency is the memory-controller access time in cycles.
	MemLatency int
	// SnoopLatency is the cache-to-cache supply time in cycles.
	SnoopLatency int
}

// DefaultConfig returns the Table 4 parameters for a 64-node system.
func DefaultConfig() Config {
	return Config{
		Cores:       64,
		L1SizeBytes: 32 << 10, L1Ways: 4, L1BlockBytes: 32,
		L2SizeBytes: 256 << 10, L2Ways: 16, L2BlockBytes: 64,
		MemLatency:   80,
		SnoopLatency: 4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores < 2 {
		return fmt.Errorf("coherence: %d cores", c.Cores)
	}
	for _, g := range []struct {
		name              string
		size, ways, block int
	}{
		{"L1", c.L1SizeBytes, c.L1Ways, c.L1BlockBytes},
		{"L2", c.L2SizeBytes, c.L2Ways, c.L2BlockBytes},
	} {
		if g.size < 1 || g.ways < 1 || g.block < 1 {
			return fmt.Errorf("coherence: %s geometry %d/%d/%d", g.name, g.size, g.ways, g.block)
		}
		sets := g.size / (g.ways * g.block)
		if sets < 1 || sets&(sets-1) != 0 {
			return fmt.Errorf("coherence: %s set count %d not a power of two", g.name, sets)
		}
	}
	if c.MemLatency < 1 || c.SnoopLatency < 1 {
		return fmt.Errorf("coherence: latencies %d/%d", c.MemLatency, c.SnoopLatency)
	}
	return nil
}

// lineState is the MSI coherence state of a cached line.
type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

// way is one cache way.
type way struct {
	tag   uint64
	state lineState
	used  uint64 // LRU timestamp
}

// cache is a set-associative, write-back, LRU cache.
type cache struct {
	sets      [][]way
	blockBits uint
	setBits   uint
	setMask   uint64
	tick      uint64
}

// newCache builds a cache from size/ways/block geometry.
func newCache(sizeBytes, ways, blockBytes int) *cache {
	sets := sizeBytes / (ways * blockBytes)
	c := &cache{
		sets:    make([][]way, sets),
		setMask: uint64(sets - 1),
	}
	for b := blockBytes; b > 1; b >>= 1 {
		c.blockBits++
	}
	for m := c.setMask; m > 0; m >>= 1 {
		c.setBits++
	}
	for i := range c.sets {
		c.sets[i] = make([]way, ways)
	}
	return c
}

// index returns the set slice and tag for an address.
func (c *cache) index(addr uint64) ([]way, uint64) {
	line := addr >> c.blockBits
	return c.sets[line&c.setMask], line >> c.setBits
}

// lookup returns the way holding addr, or nil. It refreshes LRU state on a
// hit.
func (c *cache) lookup(addr uint64) *way {
	set, tag := c.index(addr)
	for i := range set {
		if set[i].state != invalid && set[i].tag == tag {
			c.tick++
			set[i].used = c.tick
			return &set[i]
		}
	}
	return nil
}

// insert fills addr into its set, evicting the LRU way. It returns the
// victim's line address and state (victim.state == invalid when the slot
// was free).
func (c *cache) insert(addr uint64, st lineState) (victimAddr uint64, victimState lineState) {
	set, tag := c.index(addr)
	lru := 0
	for i := range set {
		if set[i].state == invalid {
			lru = i
			break
		}
		if set[i].used < set[lru].used {
			lru = i
		}
	}
	victimState = set[lru].state
	if victimState != invalid {
		victimAddr = ((set[lru].tag << c.setBits) | (addr >> c.blockBits & c.setMask)) << c.blockBits
	}
	c.tick++
	set[lru] = way{tag: tag, state: st, used: c.tick}
	return victimAddr, victimState
}

// invalidate drops addr if present, returning its previous state.
func (c *cache) invalidate(addr uint64) lineState {
	set, tag := c.index(addr)
	for i := range set {
		if set[i].state != invalid && set[i].tag == tag {
			st := set[i].state
			set[i].state = invalid
			return st
		}
	}
	return invalid
}

// setState updates the state of a resident line; it is a no-op when the
// line is absent.
func (c *cache) setState(addr uint64, st lineState) {
	if w := c.lookup(addr); w != nil {
		w.state = st
	}
}
