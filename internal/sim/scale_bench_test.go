package sim_test

// Benchmarks for the mesh-size scaling story: the event-driven electrical
// kernel against the dense-walk reference at low injection rates, where
// idle routers dominate and the active set should keep per-cycle cost
// proportional to traffic, not mesh area. cmd/bench -scale is the
// reporting front-end for the same comparison; these benchmarks are the
// profiling-friendly form (go test -bench BenchmarkKernel -cpuprofile …).

import (
	"fmt"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// benchCycles drives net under uniform-random load at rate for b.N
// inject+Step cycles after a pool-warming phase.
func benchCycles(b *testing.B, net sim.Network, rate float64, warmup int) {
	inj := traffic.NewInjector(traffic.UniformRandom(net.Nodes(), 1), net.Nodes(), rate, 2)
	var id uint64
	var buf []sim.Delivery
	dsts := make([]mesh.NodeID, 1)
	cycle := func() {
		for _, in := range inj.Tick() {
			if net.NICFree(in.Src) > 0 {
				id++
				dsts[0] = in.Dst
				net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: dsts, Op: packet.OpSynthetic})
			}
		}
		buf = net.Step(buf[:0])
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

func BenchmarkKernelLowRate(b *testing.B) {
	const rate = 0.002
	for _, size := range []int{8, 16, 32} {
		warmup := 500 + size*size/2
		b.Run(fmt.Sprintf("electrical-event-%dx%d", size, size), func(b *testing.B) {
			cfg := electrical.DefaultConfig()
			cfg.Width, cfg.Height = size, size
			benchCycles(b, electrical.New(cfg), rate, warmup)
		})
		b.Run(fmt.Sprintf("electrical-dense-%dx%d", size, size), func(b *testing.B) {
			cfg := electrical.DefaultConfig()
			cfg.Width, cfg.Height = size, size
			benchCycles(b, electrical.NewReference(cfg), rate, warmup)
		})
		b.Run(fmt.Sprintf("optical-%dx%d", size, size), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Width, cfg.Height = size, size
			benchCycles(b, core.New(cfg), rate, warmup)
		})
	}
}
