package sim_test

import (
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/figures"
	"phastlane/internal/obs"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

func obsNets() map[string]func() sim.Network {
	return map[string]func() sim.Network{
		"optical": func() sim.Network {
			cfg := core.DefaultConfig()
			cfg.Seed = 7
			return core.New(cfg)
		},
		"electrical": func() sim.Network {
			cfg := electrical.DefaultConfig()
			cfg.Seed = 7
			return electrical.New(cfg)
		},
	}
}

// TestRunRateWithCollector: the observability bundle must agree with the
// harness's own counters for both networks.
func TestRunRateWithCollector(t *testing.T) {
	for name, build := range obsNets() {
		t.Run(name, func(t *testing.T) {
			c := &obs.Collector{
				Metrics: obs.NewMetrics(8, 8),
				Sampler: obs.NewSampler(64, 500),
			}
			r := sim.RunRate(build(), sim.RateConfig{
				Pattern: traffic.Transpose(64), Rate: 0.1,
				Warmup: 300, Measure: 1500, Seed: 7, Obs: c,
			})
			if r.Saturated {
				t.Fatal("unexpected saturation at rate 0.1")
			}
			// Every delivery in the network is an eject event, and the
			// run injects at least as many (warmup included).
			ejects := c.Metrics.Total(obs.KindEject)
			if ejects < r.Run.Delivered {
				t.Errorf("ejects %d < delivered %d", ejects, r.Run.Delivered)
			}
			if c.Metrics.Total(obs.KindLaunch) == 0 {
				t.Error("no launches traced")
			}
			var util int64
			for _, v := range c.Metrics.LinkUtilization() {
				util += v
			}
			if util != r.Run.LinkTraversals {
				t.Errorf("link matrix sum %d != LinkTraversals %d", util, r.Run.LinkTraversals)
			}
			// Sampler bins must re-add to the harness totals.
			var completed, drops int64
			var latSum float64
			for _, b := range c.Sampler.Bins() {
				completed += b.Completed
				latSum += b.LatencySum
				drops += b.Drops
			}
			if completed != int64(r.Run.Latency.Count()) {
				t.Errorf("sampler completed %d != measured %d", completed, r.Run.Latency.Count())
			}
			if want := r.Run.Latency.Mean() * float64(completed); latSum < want-1e-6 || latSum > want+1e-6 {
				t.Errorf("sampler latency sum %v != %v", latSum, want)
			}
			if drops != r.Run.Drops {
				t.Errorf("sampler drops %d != run drops %d", drops, r.Run.Drops)
			}
		})
	}
}

// TestRunRateObsIdentical: attaching observers must not change any
// simulation number (the zero-cost-when-off contract's stronger sibling).
func TestRunRateObsIdentical(t *testing.T) {
	for name, build := range obsNets() {
		t.Run(name, func(t *testing.T) {
			cfg := sim.RateConfig{
				Pattern: traffic.Transpose(64), Rate: 0.15,
				Warmup: 200, Measure: 1000, Seed: 7,
			}
			plain := sim.RunRate(build(), cfg)
			cfg.Obs = &obs.Collector{Metrics: obs.NewMetrics(8, 8), Sampler: obs.NewSampler(64, 0)}
			traced := sim.RunRate(build(), cfg)
			if plain.Run.Latency.Mean() != traced.Run.Latency.Mean() ||
				plain.Run.Delivered != traced.Run.Delivered ||
				plain.Run.Drops != traced.Run.Drops ||
				plain.Run.TotalEnergyPJ() != traced.Run.TotalEnergyPJ() {
				t.Errorf("observability changed results: %+v vs %+v", plain.Run, traced.Run)
			}
		})
	}
}

// TestRunTraceWithCollector: trace replay feeds the same bundle.
func TestRunTraceWithCollector(t *testing.T) {
	tr, err := figures.TraceFor("LU", 2000, 17)
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range obsNets() {
		t.Run(name, func(t *testing.T) {
			c := &obs.Collector{
				Metrics: obs.NewMetrics(8, 8),
				Sampler: obs.NewSampler(64, 0),
			}
			res, err := sim.RunTrace(build(), tr, sim.ReplayConfig{Obs: c})
			if err != nil {
				t.Fatal(err)
			}
			if c.Metrics.Total(obs.KindEject) == 0 {
				t.Error("no ejects traced during replay")
			}
			var completed int64
			for _, b := range c.Sampler.Bins() {
				completed += b.Completed
			}
			if completed != res.Run.Delivered {
				t.Errorf("sampler completed %d != delivered %d", completed, res.Run.Delivered)
			}
			if len(c.Sampler.Bins()) < 2 {
				t.Errorf("replay produced %d bins", len(c.Sampler.Bins()))
			}
		})
	}
}

// TestSweepPercentiles: sweep points carry ordered tail-latency
// percentiles.
func TestSweepPercentiles(t *testing.T) {
	pts := sim.Sweep(func() sim.Network {
		cfg := core.DefaultConfig()
		cfg.Seed = 7
		return core.New(cfg)
	}, traffic.Transpose(64), []float64{0.05}, 7)
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	if p.P50 <= 0 || p.P50 > p.P95 || p.P95 > p.P99 {
		t.Errorf("percentiles out of order: %+v", p)
	}
}
