package sim_test

import (
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

// stressPlan is a nasty but survivable fault mix: enough dead hardware to
// force detours and isolate the occasional destination, plus background
// control corruption.
func stressPlan(seed int64) *fault.Plan {
	return fault.RandomPlan(seed, 8, 8, fault.RandomSpec{
		DeadLinks:    6,
		StuckRouters: 1,
		SlotFaults:   4,
		CorruptRate:  0.01,
	})
}

// stressAccounting drives net far past its saturation knee under a random
// fault plan and then verifies the delivery guarantee: every injected
// message is either delivered exactly once or reported lost exactly once —
// never silently dropped, never duplicated — and the network drains to
// quiescence because the delivery layer resolves everything it abandons.
func stressAccounting(t *testing.T, net sim.Network, seed int64) {
	t.Helper()
	stressAccountingLoad(t, net, seed, 200, 40)
}

// stressAccountingLoad is stressAccounting with the load knobs exposed:
// injectCycles of bursting with pct% injection probability per node per
// cycle. Large meshes use a lighter mix to keep the test time sane.
func stressAccountingLoad(t *testing.T, net sim.Network, seed int64, injectCycles, pct int) {
	t.Helper()
	type acct struct{ delivered, lost int }
	accts := []acct{{}} // index by message ID; ID 0 unused
	net.(sim.LossReporting).SetLossHandler(func(l sim.Loss) {
		if int(l.MsgID) >= len(accts) {
			t.Fatalf("loss reported for unknown message %d", l.MsgID)
		}
		accts[l.MsgID].lost += l.Count
	})

	// Deterministic traffic source: pct% injection probability per node
	// per cycle, uniform destinations. The default 40% is far past the
	// knee for both simulators on an 8x8 mesh, especially with faulted
	// hardware.
	rng := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	var deliveries []sim.Delivery
	record := func() {
		deliveries = net.Step(deliveries[:0])
		for _, d := range deliveries {
			if int(d.MsgID) >= len(accts) {
				t.Fatalf("delivery of unknown message %d", d.MsgID)
			}
			accts[d.MsgID].delivered++
		}
	}

	nodes := uint64(net.Nodes())
	for c := 0; c < injectCycles; c++ {
		for n := 0; n < net.Nodes(); n++ {
			if next()%100 >= uint64(pct) {
				continue
			}
			src := mesh.NodeID(n)
			if net.NICFree(src) <= 0 {
				continue // saturated or faulted source
			}
			dst := mesh.NodeID(next() % nodes)
			if dst == src {
				dst = mesh.NodeID((uint64(dst) + 1) % nodes)
			}
			id := uint64(len(accts))
			accts = append(accts, acct{})
			net.Inject(sim.Message{ID: id, Src: src, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
		}
		record()
	}
	for i := 0; i < 60000 && !net.Quiescent(); i++ {
		record()
	}
	if !net.Quiescent() {
		t.Fatal("network failed to drain: delivery layer left messages unresolved")
	}

	injected := len(accts) - 1
	if injected < 1000 {
		t.Fatalf("only %d messages injected: stress load too light", injected)
	}
	var delivered, lost, bad int
	for id := 1; id < len(accts); id++ {
		a := accts[id]
		delivered += a.delivered
		lost += a.lost
		if a.delivered+a.lost != 1 {
			bad++
			if bad <= 5 {
				t.Errorf("msg %d: delivered %d, lost %d (want exactly one outcome)", id, a.delivered, a.lost)
			}
		}
	}
	if bad > 5 {
		t.Errorf("... and %d more mis-accounted messages", bad-5)
	}
	if lost == 0 {
		t.Error("no losses under a fault plan with isolating faults: loss reporting is dead")
	}
	if got := net.Run().Lost; got != int64(lost) {
		t.Errorf("Run().Lost = %d, handler saw %d", got, lost)
	}
	t.Logf("injected %d, delivered %d, lost %d", injected, delivered, lost)
}

func TestStressDeliveryGuaranteeCore(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Faults = stressPlan(11)
	cfg.RetryLimit = 10
	cfg.LossTimeout = 4000
	stressAccounting(t, core.New(cfg), 11)
}

func TestStressDeliveryGuaranteeElectrical(t *testing.T) {
	cfg := electrical.DefaultConfig()
	cfg.Faults = stressPlan(11)
	cfg.LossTimeout = 4000
	stressAccounting(t, electrical.New(cfg), 11)
}
