package sim_test

import (
	"fmt"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// The golden values below were captured from the serial, pre-engine
// sim.Sweep (commit 030f018) on transpose traffic, seed 7, rates
// {0.05, 0.10, 0.20, 0.30, 0.40, 0.45}. They pin two contracts at once:
// the simulators' numeric behaviour is unchanged by the parallel
// experiment engine, and the two-consecutive-saturated early exit still
// stops the sweep before the 0.45 point (five points, not six).
var goldenRates = []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.45}

var goldenOptical = []sim.SweepPoint{
	{Rate: 0.05, AvgLatency: 1.946569683908046, Throughput: 0.0435, Saturated: false},
	{Rate: 0.1, AvgLatency: 2.2867151711129075, Throughput: 0.0869765625, Saturated: false},
	{Rate: 0.2, AvgLatency: 65.36322369400209, Throughput: 0.1574765625, Saturated: false},
	{Rate: 0.3, AvgLatency: 136.7354320881391, Throughput: 0.18153125, Saturated: true},
	{Rate: 0.4, AvgLatency: 152.53994557000303, Throughput: 0.19376953125, Saturated: true},
}

var goldenElectrical = []sim.SweepPoint{
	{Rate: 0.05, AvgLatency: 20.229885057471265, Throughput: 0.0435, Saturated: false},
	{Rate: 0.1, AvgLatency: 20.516796910087127, Throughput: 0.0869765625, Saturated: false},
	{Rate: 0.2, AvgLatency: 109.64624294698119, Throughput: 0.15715234375, Saturated: false},
	{Rate: 0.3, AvgLatency: 173.4296725299804, Throughput: 0.18143359375, Saturated: true},
	{Rate: 0.4, AvgLatency: 208.24885453040793, Throughput: 0.19352734375, Saturated: true},
}

func goldenOpticalNet() sim.Network {
	cfg := core.DefaultConfig()
	cfg.MaxHops = 4
	cfg.Seed = 7
	return core.New(cfg)
}

func goldenElectricalNet() sim.Network {
	cfg := electrical.DefaultConfig()
	cfg.Seed = 7
	return electrical.New(cfg)
}

func TestSweepMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	for _, tc := range []struct {
		name   string
		newNet func() sim.Network
		want   []sim.SweepPoint
	}{
		{"optical", goldenOpticalNet, goldenOptical},
		{"electrical", goldenElectricalNet, goldenElectrical},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := sim.Sweep(tc.newNet, traffic.Transpose(64), goldenRates, 7)
			// Project onto the fields the golden capture predates:
			// the later-added latency percentiles are checked for
			// internal consistency below, not against the capture.
			proj := make([]sim.SweepPoint, len(got))
			for i, p := range got {
				proj[i] = sim.SweepPoint{Rate: p.Rate, AvgLatency: p.AvgLatency,
					Throughput: p.Throughput, Saturated: p.Saturated}
			}
			if fmt.Sprintf("%#v", proj) != fmt.Sprintf("%#v", tc.want) {
				t.Errorf("sweep drifted from pre-refactor golden capture:\n got: %#v\nwant: %#v", proj, tc.want)
			}
			for i, p := range got {
				if p.P50 <= 0 || p.P50 > p.P95 || p.P95 > p.P99 {
					t.Errorf("point %d has inconsistent percentiles: %+v", i, p)
				}
				if p.AvgLatency > p.P99 {
					t.Errorf("point %d mean %v above p99 %v", i, p.AvgLatency, p.P99)
				}
			}
		})
	}
}

// TestSweepEarlyExitContract pins the early-exit behaviour documented on
// SweepPoint: the sweep stops after two consecutive saturated points, so
// later rates are never simulated - and SaturationRate only considers the
// points actually run, even when a later (never-run) rate would have been
// unsaturated. The rate grid deliberately places easy rates after the
// saturating ones to prove they are skipped.
func TestSweepEarlyExitContract(t *testing.T) {
	rates := []float64{0.01, 0.9, 1.0, 0.02, 0.05}
	pts := sim.Sweep(func() sim.Network {
		cfg := core.DefaultConfig()
		cfg.Seed = 7
		return core.New(cfg)
	}, traffic.Transpose(64), rates, 7)
	if len(pts) != 3 {
		t.Fatalf("sweep ran %d points, want 3 (early exit after two consecutive saturated)", len(pts))
	}
	if pts[0].Saturated || !pts[1].Saturated || !pts[2].Saturated {
		t.Fatalf("unexpected saturation pattern: %+v", pts)
	}
	for i, want := range []float64{0.01, 0.9, 1.0} {
		if pts[i].Rate != want {
			t.Errorf("point %d rate %v, want %v", i, pts[i].Rate, want)
		}
	}
	if sat := sim.SaturationRate(pts); sat != 0.01 {
		t.Errorf("SaturationRate = %v, want 0.01: rates beyond the early exit must not count", sat)
	}
}
