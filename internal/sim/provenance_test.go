package sim_test

import (
	"reflect"
	"testing"

	"phastlane/internal/provenance"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// TestProvenanceDoesNotPerturbResults pins the observer-effect contract
// for the provenance layer: a run with a tracker teed into the event
// stream produces exactly the result of the same run without one, for
// both simulators. Provenance only listens; it never touches network or
// harness state.
func TestProvenanceDoesNotPerturbResults(t *testing.T) {
	for _, tc := range []struct {
		name   string
		newNet func() sim.Network
	}{
		{"optical", optical},
		{"electrical", baseline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// UniformRandom is stateful, so each run needs a fresh pattern.
			run := func(prov *provenance.Tracker) sim.Result {
				return sim.RunRate(tc.newNet(), sim.RateConfig{
					Pattern: traffic.UniformRandom(64, 1),
					Rate:    0.10, Warmup: 300, Measure: 1500, Seed: 7,
					Prov: prov,
				})
			}
			plain := run(nil)
			tr := provenance.New(provenance.Config{K: 32, Seed: 7, Width: 8, Height: 8})
			observed := run(tr)

			if !reflect.DeepEqual(plain, observed) {
				t.Errorf("provenance perturbed the run:\nplain:    %+v\nobserved: %+v", plain, observed)
			}
			if tr.Completed() != plain.Run.Delivered {
				t.Errorf("tracker completed %d, want %d", tr.Completed(), plain.Run.Delivered)
			}
		})
	}
}

// TestProvenanceOffIsFree asserts the nil-tracker path installs no
// tracer: with neither a collector nor a tracker configured, both
// networks run the same zero-allocation steady state the kernel tests
// pin, and the harness branch on a nil *Tracker costs nothing per
// message. (The per-network zero-alloc pins live in kernel_test.go; this
// test guards the attachObs seam specifically: a nil collector and nil
// tracker must tee to a nil tracer.)
func TestProvenanceOffIsFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		newNet func() sim.Network
	}{
		{"optical", optical},
		{"electrical", baseline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stepZeroAlloc(t, tc.newNet(), 500)
		})
	}
}
