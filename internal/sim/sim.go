// Package sim provides the common simulation harness driving both the
// Phastlane optical network and the electrical baseline: the Network
// interface, rate-driven synthetic runs (Fig. 9), dependency-aware trace
// replay (Figs. 10 and 11), and saturation sweeps.
package sim

import (
	"fmt"

	"phastlane/internal/cc"
	"phastlane/internal/exp"
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/packet"
	"phastlane/internal/provenance"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
	"phastlane/internal/trace"
	"phastlane/internal/traffic"
)

// Message is a logical network message handed to a Network. A broadcast
// message lists every destination; the network chooses its own multicast
// mechanism (Phastlane column sweeps, VCTM trees).
type Message struct {
	ID   uint64
	Src  mesh.NodeID
	Dsts []mesh.NodeID // one entry for unicast
	Op   packet.Op
}

// Delivery reports one (message, destination) arrival.
type Delivery struct {
	MsgID uint64
	Dst   mesh.NodeID
}

// Network is the cycle-driven interface both simulators implement.
type Network interface {
	// Nodes returns the node count.
	Nodes() int
	// NICFree returns the free injection-queue entries at node n.
	NICFree(n mesh.NodeID) int
	// Inject places a message into its source NIC. It panics when the
	// NIC is full; callers must check NICFree first. The network does
	// not retain m.Dsts, so callers may reuse the slice across calls.
	Inject(m Message)
	// Step advances one clock cycle, appends this cycle's deliveries
	// to buf, and returns the extended slice (the same contract as the
	// built-in append).
	//
	// Buffer ownership: buf belongs to the caller. The network never
	// retains it past the call and never reads buf[:len(buf)], so a
	// harness can truncate and resubmit one buffer every cycle
	// (buf = net.Step(buf[:0])) and the steady-state loop performs no
	// allocation. Passing nil is valid and allocates as needed.
	Step(buf []Delivery) []Delivery
	// Quiescent reports whether no packet is queued or in flight.
	Quiescent() bool
	// Run returns the accumulating counters. Latency is recorded by
	// the harness, not the network.
	Run() *stats.Run
}

// Traceable is implemented by networks that can report router-level
// events through the shared obs vocabulary. SetTracer installs a callback
// invoked synchronously for every event; nil disables tracing (the
// default, which must cost nothing). The harness and the figures layer
// attach observability through this single interface — a network that
// implements it gets tracing everywhere, with no per-simulator wiring.
type Traceable interface {
	SetTracer(func(obs.Event))
}

// LossReason classifies why the delivery layer abandoned a message.
type LossReason int

// Loss reasons.
const (
	// LossRetryBudget: the per-message retry budget was exhausted.
	LossRetryBudget LossReason = iota
	// LossTimeout: the message aged past the loss-detection timeout.
	LossTimeout
	// LossUnreachable: no usable route to the destination existed.
	LossUnreachable
)

// String names the reason.
func (r LossReason) String() string {
	switch r {
	case LossRetryBudget:
		return "retry-budget"
	case LossTimeout:
		return "timeout"
	case LossUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("LossReason(%d)", int(r))
	}
}

// Loss reports that a network's delivery layer has given up on part of a
// message: Count destinations of MsgID will never receive it. Node is
// where the message was abandoned (its last owner).
type Loss struct {
	MsgID  uint64
	Node   mesh.NodeID
	Count  int
	Reason LossReason
}

// LossReporting is implemented by networks whose delivery layer can
// abandon messages (fault plans, retry budgets, loss timeouts). The
// handler is invoked synchronously from Step, once per abandoned parcel;
// nil disables reporting. The harness attaches itself through this
// interface so lost messages resolve instead of stalling the drain phase.
type LossReporting interface {
	SetLossHandler(func(Loss))
}

// attachLoss installs handler on net when the network supports loss
// reporting; without support the handler never fires (lossless networks).
func attachLoss(net Network, handler func(Loss)) {
	if lr, ok := net.(LossReporting); ok {
		lr.SetLossHandler(handler)
	}
}

// CongestionReporting is implemented by networks whose NIC layer can
// attribute congestion nacks to the responsible sender: an optical drop
// notice returning to the parcel's owner, or an electrical injection
// stall (NIC head blocked with no free local VC). The handler is invoked
// synchronously from Step, once per nack; nil disables reporting (the
// default, costing nothing). The harness attaches the congestion
// governor's Nack sink through this interface.
type CongestionReporting interface {
	SetNackHandler(func(src mesh.NodeID))
}

// attachCC installs the governor's nack sink on net when the network can
// attribute nacks; fabrics without nacks (fabsim is lossless in-network)
// still get governed through the harness's ack/loss plumbing.
func attachCC(net Network, gov *cc.Governor) {
	if gov == nil {
		return
	}
	if cr, ok := net.(CongestionReporting); ok {
		cr.SetNackHandler(gov.Nack)
	}
}

// attachObs installs the run's event tap on net when both sides support
// it — the collector's tracer teed with the provenance tracker's Observe
// — and returns the sampler the harness must drive, if any. This is the
// one type-assertion through which every observability attachment flows.
func attachObs(net Network, c *obs.Collector, prov *provenance.Tracker) *obs.Sampler {
	var pt func(obs.Event)
	if prov != nil {
		pt = prov.Observe
	}
	if tr := obs.Tee(c.Tracer(), pt); tr != nil {
		if t, ok := net.(Traceable); ok {
			t.SetTracer(tr)
		}
	}
	if c == nil {
		return nil
	}
	return c.Sampler
}

// attachTelemetry installs t's phase profile on net (when the network is
// instrumentable) and returns the network's optional telemetry views:
// the active-set size reporter and the invariant checker, nil when
// unsupported. The counterpart of attachObs for the telemetry layer.
func attachTelemetry(net Network, t *telemetry.Run) (telemetry.ActiveSetReporter, telemetry.InvariantChecker) {
	if t == nil {
		return nil, nil
	}
	if in, ok := net.(telemetry.Instrumentable); ok {
		in.SetPhases(t.Phases)
	}
	asr, _ := net.(telemetry.ActiveSetReporter)
	ic, _ := net.(telemetry.InvariantChecker)
	return asr, ic
}

// telemetryFlush drives one watchdog-and-flight-record flush, gathering
// the optional network views. activeRouters is -1 without an active set.
func telemetryFlush(t *telemetry.Run, asr telemetry.ActiveSetReporter, ic telemetry.InvariantChecker, s telemetry.FlushStats) {
	s.ActiveRouters = -1
	if asr != nil {
		s.ActiveRouters = asr.ActiveRouters()
	}
	if ic != nil {
		s.InvariantErr = ic.CheckInvariants()
	}
	t.Flush(s)
}

// Result summarises one harness run.
type Result struct {
	Run stats.Run
	// OfferedRate is packets/node/cycle presented (synthetic runs).
	OfferedRate float64
	// Offered counts packets the traffic generator presented during a
	// synthetic run, whether or not the NIC accepted them. The chain
	// Delivered <= Injected <= Offered always holds: accepted packets
	// are a subset of offered ones and deliveries a subset of those.
	Offered int64
	// Makespan is the delivery cycle of the last message (trace runs).
	Makespan int64
	// Saturated is set when the network failed to drain or its
	// accepted throughput fell well short of the offered rate.
	Saturated bool
	// Lost counts measured messages the network's delivery layer
	// abandoned and reported (see LossReporting); always zero for
	// lossless configurations.
	Lost int64
	// Unresolved counts measured messages still outstanding when the
	// drain phase gave up: neither delivered nor reported lost.
	Unresolved int64
	// Paced counts offered packets the congestion governor declined to
	// admit (synthetic runs with RateConfig.CC); always zero ungoverned.
	Paced int64
	// DeliveredBySender counts fully-delivered measured messages per
	// source node (synthetic runs only) — the input to Jain's fairness
	// index in the governed studies.
	DeliveredBySender []int64
	// LatencyByOp breaks trace-replay latency down by message class
	// (broadcast requests vs unicast replies vs writebacks).
	LatencyByOp map[packet.Op]*stats.Latency
}

// messageState tracks outstanding destinations and injection time for
// latency accounting. The harness keeps these in slices indexed by
// message ID (IDs are dense and bounded in both run modes), not maps:
// per-message map inserts used to dominate steady-state allocation.
type messageState struct {
	inject    int64
	remaining int
	// src is the injecting node, kept for per-sender delivery accounting
	// and the congestion governor's ack/loss attribution.
	src mesh.NodeID
	// lost marks a message with at least one abandoned delivery; its
	// completion is counted as a loss, not a latency sample.
	lost bool
	// measured marks a message injected during the measure phase —
	// the only ones latency stats, loss counts, and the drain phase
	// consider. Governed runs track warmup messages too (with measured
	// false) so the governor's ack stream is symmetric with its nack
	// stream from cycle zero.
	measured bool
}

// RateConfig controls a synthetic rate-driven run.
type RateConfig struct {
	Pattern traffic.Pattern
	// Rate is packets per node per cycle.
	Rate float64
	// Warmup, Measure: cycles before/while recording latency.
	Warmup, Measure int
	// DrainLimit caps the drain phase after measurement; a network
	// that cannot drain by then is saturated.
	DrainLimit int
	Seed       int64
	// Obs, when non-nil, attaches the observability bundle: its tracer
	// is installed on the network (if the network supports tracing) and
	// its Sampler is fed once per cycle. Nil costs nothing.
	Obs *obs.Collector
	// Telemetry, when non-nil, attaches the live telemetry bundle: the
	// network gets the sampled phase profile (if it supports
	// instrumentation), counters tick once per cycle, and the flight
	// recorder and watchdogs flush every Telemetry.FlushEvery cycles.
	// Nil costs one branch per cycle.
	Telemetry *telemetry.Run
	// Prov, when non-nil, attaches the per-packet latency provenance
	// tracker: its event tap is teed next to the Obs tracer, and the
	// harness reports every measured message's injection, completion
	// and loss so the tracker can decompose end-to-end latency. Nil
	// costs one branch per message event.
	Prov *provenance.Tracker
	// CC, when non-nil, attaches the per-sender congestion governor: it
	// ticks once per injection cycle, gates every injection (a declined
	// packet counts against the offered load like a full NIC, in
	// Result.Paced), receives each measured message's inject→eject
	// latency as an ack, and receives nacks (via CongestionReporting)
	// and losses. Like the network, a governor is bound to one run —
	// build a fresh one per experiment point. Nil costs one branch per
	// cycle and keeps results bit-identical to an ungoverned run.
	CC *cc.Governor
}

// RunRate drives net with Bernoulli pattern traffic and measures average
// packet latency, following the standard warmup / measure / drain
// methodology.
func RunRate(net Network, cfg RateConfig) Result {
	if cfg.Warmup <= 0 {
		cfg.Warmup = 1000
	}
	if cfg.Measure <= 0 {
		cfg.Measure = 4000
	}
	if cfg.DrainLimit <= 0 {
		cfg.DrainLimit = 30000
	}
	inj := traffic.NewInjector(cfg.Pattern, net.Nodes(), cfg.Rate, cfg.Seed)
	res := Result{OfferedRate: cfg.Rate}
	// states[i] tracks message ID base+uint64(i); only messages injected
	// during the measure phase are recorded. base == 0 means nothing has
	// been recorded yet (IDs start at 1).
	var states []messageState
	var base uint64
	var active int
	var nextID uint64
	var cycle int64
	var offered, accepted int64
	prov := cfg.Prov
	sampler := attachObs(net, cfg.Obs, prov)
	tel := cfg.Telemetry
	telASR, telIC := attachTelemetry(net, tel)
	gov := cfg.CC
	attachCC(net, gov)
	res.DeliveredBySender = make([]int64, net.Nodes())
	nrun := net.Run()
	// Losses reported by the delivery layer resolve measured messages so
	// the drain phase does not wait forever for packets that will never
	// arrive. Unrecorded (warmup) losses need no bookkeeping.
	var recorded int64
	attachLoss(net, func(l Loss) {
		if base == 0 || l.MsgID < base || l.MsgID-base >= uint64(len(states)) {
			return
		}
		st := &states[l.MsgID-base]
		if st.remaining == 0 {
			return
		}
		st.lost = true
		st.remaining -= l.Count
		if st.remaining <= 0 {
			st.remaining = 0
			if gov != nil {
				gov.Lost(st.src)
			}
			if !st.measured {
				return
			}
			active--
			res.Lost++
			if tel != nil {
				tel.Lost.Inc()
			}
			if prov != nil {
				prov.Lost(l.MsgID)
			}
		}
	})
	var cycleInjected int
	var deliveries []Delivery // reused across cycles (Step buffer contract)
	dsts := make([]mesh.NodeID, 1)

	injectTick := func(record bool) {
		cycleInjected = 0
		if gov != nil {
			gov.Tick(cycle)
		}
		for _, in := range inj.Tick() {
			offered++
			if gov != nil && !gov.Allow(in.Src) {
				// Governor declined: the packet is paced out, an
				// admission decision rather than a saturation symptom.
				res.Paced++
				continue
			}
			if net.NICFree(in.Src) <= 0 {
				// Source-queue full: the packet is lost to the
				// measurement, a saturation symptom.
				continue
			}
			accepted++
			cycleInjected++
			nextID++
			if record && prov != nil {
				// Before net.Inject, so the network's inject event
				// (and everything after) lands in the packet's log.
				prov.Inject(nextID, in.Src, cycle)
			}
			dsts[0] = in.Dst
			net.Inject(Message{ID: nextID, Src: in.Src, Dsts: dsts, Op: packet.OpSynthetic})
			if record || gov != nil {
				if base == 0 {
					base = nextID
				}
				states = append(states, messageState{inject: cycle, remaining: 1, src: in.Src, measured: record})
				if record {
					active++
					recorded++
				}
			}
		}
	}
	stepTick := func() {
		deliveries = net.Step(deliveries[:0])
		var completed int
		var latencySum float64
		for _, d := range deliveries {
			if base == 0 || d.MsgID < base || d.MsgID-base >= uint64(len(states)) {
				continue // not recorded (warmup traffic)
			}
			st := &states[d.MsgID-base]
			st.remaining--
			if st.remaining == 0 {
				if st.measured {
					active--
				}
				if st.lost {
					// A partially-lost message completing its
					// surviving deliveries counts as a loss.
					if !st.measured {
						continue
					}
					res.Lost++
					if tel != nil {
						tel.Lost.Inc()
					}
					if prov != nil {
						prov.Lost(d.MsgID)
					}
					continue
				}
				lat := float64(cycle - st.inject + 1)
				if gov != nil {
					gov.Ack(st.src, lat)
				}
				if !st.measured {
					continue
				}
				res.Run.Latency.Add(lat)
				completed++
				latencySum += lat
				res.DeliveredBySender[st.src]++
				if tel != nil {
					tel.Latency.Observe(lat)
				}
				if prov != nil {
					prov.Complete(d.MsgID, cycle)
				}
			}
		}
		if sampler != nil {
			sampler.Tick(cycle, len(deliveries), completed, latencySum, cycleInjected, net.Run().Drops)
		}
		cycle++
		if tel != nil {
			tel.Tick(cycleInjected, len(deliveries), nrun.Drops, nrun.Retries, active)
			if cycle%tel.FlushEvery == 0 {
				telemetryFlush(tel, telASR, telIC, telemetry.FlushStats{
					Cycle:             cycle,
					Injected:          recorded,
					Delivered:         int64(res.Run.Latency.Count()),
					Lost:              res.Lost,
					InFlight:          int64(active),
					CheckConservation: true,
				})
			}
		}
		cycleInjected = 0
	}

	for i := 0; i < cfg.Warmup; i++ {
		injectTick(false)
		stepTick()
	}
	for i := 0; i < cfg.Measure; i++ {
		injectTick(true)
		stepTick()
	}
	// Drain: stop injecting, wait for measured packets to arrive.
	for i := 0; i < cfg.DrainLimit && active > 0; i++ {
		stepTick()
	}
	// A closing flush audits conservation over the whole run even when
	// the run is shorter than a flush period.
	if tel != nil {
		telemetryFlush(tel, telASR, telIC, telemetry.FlushStats{
			Cycle:             cycle,
			Injected:          recorded,
			Delivered:         int64(res.Run.Latency.Count()),
			Lost:              res.Lost,
			InFlight:          int64(active),
			CheckConservation: true,
		})
	}
	res.Run.Cycles = int64(cfg.Measure)
	res.Offered = offered
	res.Run.Injected = accepted
	res.Run.Delivered = int64(res.Run.Latency.Count())
	res.Unresolved = int64(active)
	copyCounters(&res.Run, net.Run())
	// Paced-out packets were an admission decision, not an overload
	// symptom, so the accepted-fraction test measures against what the
	// governor actually presented to the NIC.
	presented := offered - res.Paced
	if active > 0 || (presented > 0 && float64(accepted) < 0.9*float64(presented)) {
		res.Saturated = true
	}
	return res
}

// copyCounters merges the network-side counters into the harness run.
func copyCounters(dst, src *stats.Run) {
	dst.Drops = src.Drops
	dst.Retries = src.Retries
	dst.Lost = src.Lost
	dst.Unreachable = src.Unreachable
	dst.Corrupt = src.Corrupt
	dst.LinkTraversals = src.LinkTraversals
	dst.BufferedPackets = src.BufferedPackets
	dst.ElectricalEnergyPJ = src.ElectricalEnergyPJ
	dst.OpticalEnergyPJ = src.OpticalEnergyPJ
	dst.LeakagePJ = src.LeakagePJ
}

// ReplayConfig controls dependency-aware trace replay.
type ReplayConfig struct {
	// Limit aborts the replay after this many cycles (0 = 20M).
	Limit int64
	// Obs, when non-nil, attaches the observability bundle as in
	// RateConfig.Obs.
	Obs *obs.Collector
	// Telemetry, when non-nil, attaches the live telemetry bundle as in
	// RateConfig.Telemetry. Trace replays skip the conservation audit
	// (the replay's own dependency accounting subsumes it) but keep the
	// network invariant checks and the flight record.
	Telemetry *telemetry.Run
	// Prov, when non-nil, attaches per-packet latency provenance as in
	// RateConfig.Prov. Replay latency is measured from readiness, so a
	// NIC-stall before injection shows up as nic-queue time.
	Prov *provenance.Tracker
}

// RunTrace replays tr on net: each message injects once its EarliestCycle
// has passed, its dependency (if any) has been fully delivered, and its
// think time has elapsed. The result's Makespan is the cycle the last
// message completed - the network-performance figure of merit behind the
// paper's Fig. 10 speedups.
func RunTrace(net Network, tr *trace.Trace, cfg ReplayConfig) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if tr.Nodes != net.Nodes() {
		return Result{}, fmt.Errorf("sim: trace has %d nodes, network %d", tr.Nodes, net.Nodes())
	}
	limit := cfg.Limit
	if limit == 0 {
		limit = 20_000_000
	}
	// readyAt[id] is the cycle message id may inject; -1 = dependency
	// not yet delivered. dependents is the child adjacency as intrusive
	// linked lists over the (dense, 1-based) message IDs — no per-ID
	// slice or map entry. states[id] replaces the old per-message map:
	// a message is outstanding while states[id].remaining > 0.
	readyAt := make([]int64, len(tr.Messages)+1)
	firstDep := make([]uint64, len(tr.Messages)+1)
	nextDep := make([]uint64, len(tr.Messages)+1)
	states := make([]messageState, len(tr.Messages)+1)
	pending := make([]uint64, 0, len(tr.Messages)) // ids not yet injected, in ID order
	for _, m := range tr.Messages {
		pending = append(pending, m.ID)
		if m.Dep == 0 {
			readyAt[m.ID] = m.EarliestCycle
		} else {
			readyAt[m.ID] = -1
		}
	}
	// Build the child lists back to front so each list reads in
	// ascending ID order, matching the append order of the old map.
	for i := len(tr.Messages) - 1; i >= 0; i-- {
		m := tr.Messages[i]
		if m.Dep != 0 {
			nextDep[m.ID] = firstDep[m.Dep]
			firstDep[m.Dep] = m.ID
		}
	}
	res := Result{LatencyByOp: make(map[packet.Op]*stats.Latency)}
	var cycle int64
	remainingDeliveries := 0
	prov := cfg.Prov
	sampler := attachObs(net, cfg.Obs, prov)
	tel := cfg.Telemetry
	telASR, telIC := attachTelemetry(net, tel)
	nrun := net.Run()
	// wake readies the children of a completed message (delivered or
	// abandoned): think time from now, never before EarliestCycle.
	wake := func(id uint64) {
		for dep := firstDep[id]; dep != 0; dep = nextDep[dep] {
			think := tr.Messages[dep-1].Think
			at := cycle + 1 + think
			if e := tr.Messages[dep-1].EarliestCycle; e > at {
				at = e
			}
			readyAt[dep] = at
		}
	}
	// A lost message resolves like a delivery for dependency purposes —
	// its children proceed — but contributes no latency sample, so a
	// faulty replay degrades instead of deadlocking.
	attachLoss(net, func(l Loss) {
		st := &states[l.MsgID]
		if st.remaining == 0 {
			return
		}
		st.lost = true
		count := l.Count
		if count > st.remaining {
			count = st.remaining
		}
		st.remaining -= count
		remainingDeliveries -= count
		if st.remaining == 0 {
			res.Lost++
			if tel != nil {
				tel.Lost.Inc()
			}
			if prov != nil {
				prov.Lost(l.MsgID)
			}
			wake(l.MsgID)
		}
	})
	var deliveries []Delivery // reused across cycles (Step buffer contract)
	// dsts is the injection scratch: one entry for unicasts, everyone
	// but the source for broadcasts. Inject does not retain it.
	dsts := make([]mesh.NodeID, 0, tr.Nodes)

	for len(pending) > 0 || remainingDeliveries > 0 {
		if cycle >= limit {
			res.Saturated = true
			break
		}
		// Inject every ready message whose NIC has room, in ID
		// order per source.
		rest := pending[:0]
		cycleInjected := 0
		for _, id := range pending {
			m := tr.Messages[id-1]
			r := readyAt[id]
			if r < 0 || r > cycle || net.NICFree(m.Src) <= 0 {
				rest = append(rest, id)
				continue
			}
			dsts = dsts[:0]
			if m.IsBroadcast() {
				for n := 0; n < tr.Nodes; n++ {
					if mesh.NodeID(n) != m.Src {
						dsts = append(dsts, mesh.NodeID(n))
					}
				}
			} else {
				dsts = append(dsts, m.Dst)
			}
			if prov != nil {
				prov.Inject(id, m.Src, r)
			}
			net.Inject(Message{ID: id, Src: m.Src, Dsts: dsts, Op: m.Op})
			// Latency is measured from readiness (dependency
			// resolved, think time elapsed), so time spent
			// stalled behind a full NIC counts against the
			// network.
			states[id] = messageState{inject: r, remaining: len(dsts)}
			remainingDeliveries += len(dsts)
			res.Run.Injected++
			cycleInjected++
		}
		pending = rest

		deliveries = net.Step(deliveries[:0])
		var completed int
		var latencySum float64
		for _, d := range deliveries {
			st := &states[d.MsgID]
			if st.remaining == 0 {
				continue
			}
			st.remaining--
			remainingDeliveries--
			if st.remaining > 0 {
				continue
			}
			if st.lost {
				res.Lost++
				if tel != nil {
					tel.Lost.Inc()
				}
				if prov != nil {
					prov.Lost(d.MsgID)
				}
				wake(d.MsgID)
				continue
			}
			lat := float64(cycle - st.inject + 1)
			res.Run.Latency.Add(lat)
			completed++
			latencySum += lat
			if tel != nil {
				tel.Latency.Observe(lat)
			}
			if prov != nil {
				prov.Complete(d.MsgID, cycle)
			}
			res.Run.Delivered++
			res.Makespan = cycle + 1
			m := tr.Messages[d.MsgID-1]
			ol, ok := res.LatencyByOp[m.Op]
			if !ok {
				ol = &stats.Latency{}
				res.LatencyByOp[m.Op] = ol
			}
			ol.Add(lat)
			wake(d.MsgID)
		}
		if sampler != nil {
			sampler.Tick(cycle, len(deliveries), completed, latencySum, cycleInjected, net.Run().Drops)
		}
		cycle++
		if tel != nil {
			// Message-level in-flight is derived: every injected message
			// resolves as exactly one completion or loss.
			inFlight := res.Run.Injected - int64(res.Run.Latency.Count()) - res.Lost
			tel.Tick(cycleInjected, len(deliveries), nrun.Drops, nrun.Retries, int(inFlight))
			if cycle%tel.FlushEvery == 0 {
				telemetryFlush(tel, telASR, telIC, telemetry.FlushStats{
					Cycle:     cycle,
					Injected:  res.Run.Injected,
					Delivered: int64(res.Run.Latency.Count()),
					Lost:      res.Lost,
					InFlight:  inFlight,
				})
			}
		}
	}
	if tel != nil {
		telemetryFlush(tel, telASR, telIC, telemetry.FlushStats{
			Cycle:     cycle,
			Injected:  res.Run.Injected,
			Delivered: int64(res.Run.Latency.Count()),
			Lost:      res.Lost,
			InFlight:  res.Run.Injected - int64(res.Run.Latency.Count()) - res.Lost,
		})
	}
	res.Run.Cycles = cycle
	copyCounters(&res.Run, net.Run())
	return res, nil
}

// SweepPoint is one (rate, latency) sample of a saturation sweep.
//
// Early-exit contract: Sweep stops appending points once two consecutive
// points report Saturated, so a sweep's point slice is a prefix of its
// rate grid ending at most one point past the second consecutive
// saturated sample. Saturated itself is set by RunRate from either
// symptom of overload — the network failed to drain within DrainLimit, or
// accepted throughput fell below 90% of the offered load. Rates beyond
// the early exit are never simulated and thus never appear in the slice;
// SaturationRate consequently reports the highest non-saturated rate
// among the points actually run, which is the intended reading (a
// higher-rate point after two consecutive saturated ones could not be
// non-saturated in any meaningful sense).
type SweepPoint struct {
	Rate       float64
	AvgLatency float64
	Throughput float64
	Saturated  bool
	// P50, P95, P99 are latency percentiles of the point's measured
	// packets, exposing tail latency next to the mean.
	P50, P95, P99 float64
}

// PointFrom summarises one RunRate result as a sweep point, filling the
// latency percentiles alongside the mean.
func PointFrom(rate float64, r Result, nodes int) SweepPoint {
	return SweepPoint{
		Rate:       rate,
		AvgLatency: r.Run.Latency.Mean(),
		Throughput: r.Run.ThroughputPerNode(nodes),
		Saturated:  r.Saturated,
		P50:        r.Run.Latency.Percentile(50),
		P95:        r.Run.Latency.Percentile(95),
		P99:        r.Run.Latency.Percentile(99),
	}
}

// sweepCut is the early-exit predicate shared by the serial and parallel
// sweeps: keep points up to and including the second of two consecutive
// saturated ones, then stop.
func sweepCut(prefix []SweepPoint) (int, bool) {
	run := 0
	for i, p := range prefix {
		if !p.Saturated {
			run = 0
			continue
		}
		run++
		if run >= 2 {
			return i + 1, true
		}
	}
	return len(prefix), false
}

// Sweep runs RunRate over the given rates on a worker pool sized to
// runtime.GOMAXPROCS, stopping early once two consecutive points saturate
// (see SweepPoint for the exact contract). newNet must build a fresh
// network per point; every point runs on its own network instance with
// the same base seed, so results are bit-identical to a serial sweep
// regardless of scheduling.
func Sweep(newNet func() Network, pattern traffic.Pattern, rates []float64, seed int64) []SweepPoint {
	return SweepParallel(newNet, pattern, rates, seed, exp.Options{})
}

// SweepParallel is Sweep with explicit engine options (worker count,
// progress callback). The early exit is honoured via chunked speculative
// dispatch: points past the cutoff may be evaluated and discarded, but
// the returned slice is exactly what the serial sweep produces.
//
// pattern.Dest is called concurrently from every worker, so the pattern
// must be stateless (all the Fig. 9 bit-permutation patterns are).
// Stateful patterns such as traffic.UniformRandom are not safe here; run
// those with Workers: 1 or build one pattern per point yourself.
func SweepParallel(newNet func() Network, pattern traffic.Pattern, rates []float64, seed int64, opt exp.Options) []SweepPoint {
	pts := exp.RunUntil(rates, func(_ int, rate float64) SweepPoint {
		net := newNet()
		r := RunRate(net, RateConfig{Pattern: pattern, Rate: rate, Seed: seed})
		return PointFrom(rate, r, net.Nodes())
	}, sweepCut, opt)
	if len(pts) == 0 {
		return nil
	}
	return pts
}

// SaturationRate returns the highest non-saturated rate of a sweep, or 0.
// It only sees the points Sweep actually ran: after the two-consecutive-
// saturated early exit, higher rates are absent from pts by construction
// (see SweepPoint), not silently treated as unsaturated.
func SaturationRate(pts []SweepPoint) float64 {
	best := 0.0
	for _, p := range pts {
		if !p.Saturated && p.Rate > best {
			best = p.Rate
		}
	}
	return best
}
