package sim_test

import (
	"testing"

	"phastlane/internal/circuit"
	"phastlane/internal/core"
	"phastlane/internal/corona"
	"phastlane/internal/electrical"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/trace"
	"phastlane/internal/traffic"
)

func optical() sim.Network    { return core.New(core.DefaultConfig()) }
func baseline() sim.Network   { return electrical.New(electrical.DefaultConfig()) }
func networks() []sim.Network { return []sim.Network{optical(), baseline()} }

func TestRunRateLowLoadDeliversEverything(t *testing.T) {
	for _, net := range networks() {
		r := sim.RunRate(net, sim.RateConfig{
			Pattern: traffic.UniformRandom(64, 1),
			Rate:    0.02, Warmup: 200, Measure: 1000, Seed: 2,
		})
		if r.Saturated {
			t.Errorf("%T saturated at rate 0.02", net)
		}
		if r.Run.Latency.Count() == 0 {
			t.Errorf("%T recorded no latencies", net)
		}
		if r.Run.Delivered != int64(r.Run.Latency.Count()) {
			t.Errorf("%T delivered/count mismatch", net)
		}
		if r.Run.Latency.Mean() <= 0 {
			t.Errorf("%T non-positive mean latency", net)
		}
	}
}

func TestOpticalLatencyAdvantage(t *testing.T) {
	// The headline Fig. 9 property: at low load the optical network's
	// average latency is several times lower than the electrical
	// baseline's.
	cfg := sim.RateConfig{Pattern: traffic.UniformRandom(64, 3), Rate: 0.01, Warmup: 300, Measure: 2000, Seed: 4}
	opt := sim.RunRate(optical(), cfg)
	ele := sim.RunRate(baseline(), cfg)
	ratio := ele.Run.Latency.Mean() / opt.Run.Latency.Mean()
	if ratio < 3 {
		t.Errorf("optical advantage %.2fx, want >= 3x (opt %.1f vs ele %.1f)",
			ratio, opt.Run.Latency.Mean(), ele.Run.Latency.Mean())
	}
}

func TestRunRateSaturationDetected(t *testing.T) {
	// Full-rate bit-complement slams an 8x8 mesh well past saturation.
	r := sim.RunRate(optical(), sim.RateConfig{
		Pattern: traffic.BitComplement(64),
		Rate:    1.0, Warmup: 200, Measure: 500, DrainLimit: 300, Seed: 5,
	})
	if !r.Saturated {
		t.Error("rate 1.0 bit-complement not flagged saturated")
	}
}

func TestSweepFindsKnee(t *testing.T) {
	rates := []float64{0.01, 0.05, 0.6, 0.9, 1.0}
	pts := sim.Sweep(func() sim.Network {
		cfg := core.DefaultConfig()
		cfg.Seed = 7
		return core.New(cfg)
	}, traffic.Transpose(64), rates, 7)
	if len(pts) < 2 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	if pts[0].Saturated {
		t.Error("lowest rate saturated")
	}
	sat := sim.SaturationRate(pts)
	if sat <= 0 {
		t.Error("no non-saturated rate found")
	}
	// Latency is non-decreasing from the first to the last
	// non-saturated point, roughly.
	if pts[0].AvgLatency <= 0 {
		t.Error("zero latency at low rate")
	}
}

func tinyTrace() *trace.Trace {
	return &trace.Trace{
		Nodes: 64,
		Messages: []trace.Message{
			{ID: 1, Src: 0, Dst: 5, Op: packet.OpReadReq},
			{ID: 2, Src: 5, Dst: 0, Op: packet.OpDataReply, Dep: 1, Think: 2},
			{ID: 3, Src: 0, Dst: 9, Op: packet.OpReadReq, Dep: 2, Think: 4},
			{ID: 4, Src: 2, Dst: trace.Broadcast, Op: packet.OpWriteReq},
		},
	}
}

func TestRunTraceHonoursDependencies(t *testing.T) {
	for _, net := range networks() {
		res, err := sim.RunTrace(net, tinyTrace(), sim.ReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Saturated {
			t.Fatalf("%T: tiny trace hit the cycle limit", net)
		}
		if res.Run.Delivered != 4 {
			t.Errorf("%T: delivered %d messages, want 4", net, res.Run.Delivered)
		}
		// Chain 1 -> 2 -> 3 with think times forces a minimum
		// makespan: at least think(2)+think(3) plus three traversals.
		if res.Makespan < 8 {
			t.Errorf("%T: makespan %d suspiciously small", net, res.Makespan)
		}
	}
}

func TestRunTraceMakespanOrdering(t *testing.T) {
	// The optical network must finish the same dependency chain faster
	// - this is the mechanism behind Fig. 10's network speedup.
	msgs := []trace.Message{}
	id := uint64(1)
	// A long request/reply ping-pong between distant nodes.
	var dep uint64
	for i := 0; i < 40; i++ {
		msgs = append(msgs, trace.Message{ID: id, Src: 0, Dst: 63, Op: packet.OpReadReq, Dep: dep, Think: 2})
		dep = id
		id++
		msgs = append(msgs, trace.Message{ID: id, Src: 63, Dst: 0, Op: packet.OpDataReply, Dep: dep, Think: 2})
		dep = id
		id++
	}
	tr := &trace.Trace{Nodes: 64, Messages: msgs}
	opt, err := sim.RunTrace(optical(), tr, sim.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ele, err := sim.RunTrace(baseline(), tr, sim.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(ele.Makespan) / float64(opt.Makespan)
	if speedup < 1.5 {
		t.Errorf("optical trace speedup %.2fx, want >= 1.5x (opt %d vs ele %d)",
			speedup, opt.Makespan, ele.Makespan)
	}
}

func TestRunTraceRejectsMismatchedNodes(t *testing.T) {
	tr := &trace.Trace{Nodes: 16, Messages: []trace.Message{{ID: 1, Src: 0, Dst: 1}}}
	if _, err := sim.RunTrace(optical(), tr, sim.ReplayConfig{}); err == nil {
		t.Error("node-count mismatch accepted")
	}
}

func TestRunTraceRejectsInvalidTrace(t *testing.T) {
	tr := &trace.Trace{Nodes: 64, Messages: []trace.Message{{ID: 5, Src: 0, Dst: 1}}}
	if _, err := sim.RunTrace(optical(), tr, sim.ReplayConfig{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestRunTraceLimit(t *testing.T) {
	res, err := sim.RunTrace(optical(), tinyTrace(), sim.ReplayConfig{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("cycle-limit abort not flagged")
	}
}

func TestBroadcastDeliveryCountsInTrace(t *testing.T) {
	tr := &trace.Trace{Nodes: 64, Messages: []trace.Message{
		{ID: 1, Src: 7, Dst: trace.Broadcast, Op: packet.OpWriteReq},
	}}
	for _, net := range networks() {
		res, err := sim.RunTrace(net, tr, sim.ReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Run.Delivered != 1 {
			t.Errorf("%T: broadcast counted as %d completed messages, want 1", net, res.Run.Delivered)
		}
		if res.Saturated {
			t.Errorf("%T: broadcast trace stalled", net)
		}
	}
}

// Differential test: all four architectures must deliver exactly the same
// (message, destination) multiset for the same trace - only timing differs.
func TestAllNetworksDeliverIdenticalSets(t *testing.T) {
	msgs := []trace.Message{
		{ID: 1, Src: 0, Dst: 63, Op: packet.OpReadReq},
		{ID: 2, Src: 63, Dst: 0, Op: packet.OpDataReply, Dep: 1, Think: 2},
		{ID: 3, Src: 5, Dst: trace.Broadcast, Op: packet.OpWriteReq},
		{ID: 4, Src: 17, Dst: 42, Op: packet.OpWriteback},
		{ID: 5, Src: 42, Dst: trace.Broadcast, Op: packet.OpReadReq, Dep: 4, Think: 1},
	}
	tr := &trace.Trace{Nodes: 64, Messages: msgs}
	nets := map[string]sim.Network{
		"phastlane":  core.New(core.DefaultConfig()),
		"electrical": electrical.New(electrical.DefaultConfig()),
		"corona":     corona.New(corona.DefaultConfig()),
		"circuit":    circuit.New(circuit.DefaultConfig()),
	}
	for name, net := range nets {
		res, err := sim.RunTrace(net, tr, sim.ReplayConfig{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Saturated {
			t.Fatalf("%s: stalled", name)
		}
		if res.Run.Delivered != int64(len(msgs)) {
			t.Fatalf("%s: completed %d of %d messages", name, res.Run.Delivered, len(msgs))
		}
	}
}

func TestRunTraceLatencyByOp(t *testing.T) {
	res, err := sim.RunTrace(optical(), tinyTrace(), sim.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range res.LatencyByOp {
		total += l.Count()
	}
	if total != int(res.Run.Delivered) {
		t.Errorf("per-op latency counts %d != delivered %d", total, res.Run.Delivered)
	}
	if res.LatencyByOp[packet.OpWriteReq] == nil {
		t.Error("missing broadcast class")
	}
	if res.LatencyByOp[packet.OpDataReply] == nil {
		t.Error("missing reply class")
	}
}
