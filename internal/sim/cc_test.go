package sim_test

import (
	"reflect"
	"testing"

	"phastlane/internal/cc"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// ccRun drives one fresh optical network at a post-knee load with the
// given governor (nil = ungoverned).
func ccRun(gov *cc.Governor) sim.Result {
	return sim.RunRate(optical(), sim.RateConfig{
		Pattern: traffic.UniformRandom(64, 11),
		Rate:    0.30, Warmup: 150, Measure: 600, Seed: 4,
		CC: gov,
	})
}

// TestCCDisabledBitIdentical checks the nil-governor contract: with CC
// unset the harness takes the pre-cc path and repeated runs are
// bit-identical, DeliveredBySender and all.
func TestCCDisabledBitIdentical(t *testing.T) {
	a, b := ccRun(nil), ccRun(nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ungoverned runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Paced != 0 {
		t.Fatalf("%d packets paced with no governor", a.Paced)
	}
}

// TestCCUnityGovernorMatchesUngoverned checks the admission gate is
// transparent when it never denies: a governor pinned at one token per
// cycle reproduces the ungoverned run exactly — same deliveries, same
// latencies, same per-sender counts — because Tick/Allow/Ack/Nack only
// observe the run, they never perturb the network.
func TestCCUnityGovernorMatchesUngoverned(t *testing.T) {
	cfg := cc.DefaultConfig()
	cfg.InitRate, cfg.MinRate, cfg.MaxRate = 1, 1, 1
	gov := cc.New(cfg, 64)
	governed := ccRun(gov)
	bare := ccRun(nil)
	if governed.Paced != 0 {
		t.Fatalf("unity governor paced %d packets", governed.Paced)
	}
	if !reflect.DeepEqual(governed, bare) {
		t.Fatalf("unity-governed run diverged from ungoverned:\n%+v\n%+v",
			governed, bare)
	}
}

// TestCCGovernorPacesAndSignals checks the closed loop is actually
// wired: a tight static cap at a saturating offered load paces
// injections, the governor sees ack traffic, and the paced packets are
// excluded from the saturation verdict's presented load.
func TestCCGovernorPacesAndSignals(t *testing.T) {
	cfg := cc.DefaultConfig()
	cfg.InitRate, cfg.MinRate, cfg.MaxRate = 0.05, 0.05, 0.05
	gov := cc.New(cfg, 64)
	res := ccRun(gov)
	if res.Paced == 0 {
		t.Fatal("cap 0.05 at offered 0.30 paced nothing")
	}
	if res.Run.Delivered == 0 {
		t.Fatal("governed run delivered nothing")
	}
	if res.Saturated {
		t.Fatal("paced-down run flagged saturated: presented load should exclude paced packets")
	}
	if got := gov.MeanRate(); got < 0.049 || got > 0.051 {
		t.Fatalf("pinned governor rate drifted to %v", got)
	}
}

// TestCCGovernedDeterminism checks governed runs reproduce bit-for-bit:
// fresh network + fresh governor + same seeds is the same contract the
// experiment engine relies on for worker-count independence.
func TestCCGovernedDeterminism(t *testing.T) {
	build := func() sim.Result {
		cfg := cc.DefaultConfig()
		cfg.Seed = 7
		return ccRun(cc.New(cfg, 64))
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("governed runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Paced == 0 {
		t.Fatal("AIMD governor at offered 0.30 never paced; knee tuning changed?")
	}
}
