package sim_test

// Large-mesh scaling coverage: the simulators were born on 8×8 meshes,
// and these tests hold the full methodology — injection, relaunch
// chains past the 14-group packet format, drain, loss accounting — at
// 32×32 and 64×64. The electrical side exercises the event-driven
// kernel where the idle fraction dominates; the optical side exercises
// control-packet relaunch over long routes.

import (
	"fmt"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// TestScaleRunRateAccounting runs both simulators at 32×32 and 64×64
// under light uniform load and checks the harness-level resolution
// invariant: every measured message is delivered or reported lost
// (unresolved == 0), nothing is lost on a lossless configuration, and
// the run drains — at mesh sizes where every long route crosses
// multiple relaunch segments. (Run.Injected includes warmup traffic,
// so it exceeds the measured delivery count by design; the per-message
// delivered+lost==injected form is pinned by the direct-drive tests
// below.)
func TestScaleRunRateAccounting(t *testing.T) {
	sizes := []int{32, 64}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, size := range sizes {
		for _, kind := range []string{"optical", "electrical"} {
			size, kind := size, kind
			t.Run(fmt.Sprintf("%s-%dx%d", kind, size, size), func(t *testing.T) {
				t.Parallel()
				var net sim.Network
				switch kind {
				case "optical":
					cfg := core.DefaultConfig()
					cfg.Width, cfg.Height = size, size
					net = core.New(cfg)
				case "electrical":
					cfg := electrical.DefaultConfig()
					cfg.Width, cfg.Height = size, size
					net = electrical.New(cfg)
				}
				r := sim.RunRate(net, sim.RateConfig{
					Pattern: traffic.UniformRandom(size*size, 1),
					Rate:    0.002,
					Warmup:  100, Measure: 300, DrainLimit: 30000,
					Seed: 17,
				})
				if r.Saturated {
					t.Fatal("saturated at rate 0.002: drain or throughput broke at scale")
				}
				if r.Run.Injected == 0 {
					t.Fatal("nothing injected")
				}
				if r.Lost != 0 || r.Unresolved != 0 {
					t.Errorf("lost %d, unresolved %d on a lossless run", r.Lost, r.Unresolved)
				}
				if r.Run.Delivered == 0 || r.Run.Delivered > r.Run.Injected {
					t.Errorf("delivered %d outside (0, injected=%d]", r.Run.Delivered, r.Run.Injected)
				}
			})
		}
	}
}

// TestScaleExactlyOnce64 direct-drives both simulators on a fault-free
// 64×64 mesh and checks the per-message invariant exactly: every
// injected message is delivered exactly once, and the network drains.
func TestScaleExactlyOnce64(t *testing.T) {
	if testing.Short() {
		t.Skip("large-mesh accounting skipped in -short")
	}
	for _, kind := range []string{"optical", "electrical"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			var net sim.Network
			if kind == "optical" {
				cfg := core.DefaultConfig()
				cfg.Width, cfg.Height = 64, 64
				net = core.New(cfg)
			} else {
				cfg := electrical.DefaultConfig()
				cfg.Width, cfg.Height = 64, 64
				net = electrical.New(cfg)
			}
			nodes := net.Nodes()
			rng := uint64(97)
			next := func() uint64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return rng >> 33
			}
			delivered := []int{0} // by message ID; ID 0 unused
			var buf []sim.Delivery
			record := func() {
				buf = net.Step(buf[:0])
				for _, d := range buf {
					delivered[d.MsgID]++
				}
			}
			for c := 0; c < 120; c++ {
				for k := 0; k < 20; k++ { // ~0.5% of nodes inject per cycle
					src := mesh.NodeID(next() % uint64(nodes))
					if net.NICFree(src) <= 0 {
						continue
					}
					dst := mesh.NodeID(next() % uint64(nodes))
					if dst == src {
						dst = mesh.NodeID((int(dst) + 1) % nodes)
					}
					id := uint64(len(delivered))
					delivered = append(delivered, 0)
					net.Inject(sim.Message{ID: id, Src: src, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
				}
				record()
			}
			for i := 0; i < 60000 && !net.Quiescent(); i++ {
				record()
			}
			if !net.Quiescent() {
				t.Fatal("64x64 network failed to drain")
			}
			bad := 0
			for id := 1; id < len(delivered); id++ {
				if delivered[id] != 1 {
					bad++
					if bad <= 5 {
						t.Errorf("msg %d delivered %d times, want exactly 1", id, delivered[id])
					}
				}
			}
			if bad > 5 {
				t.Errorf("... and %d more mis-delivered messages", bad-5)
			}
			t.Logf("injected %d, all delivered exactly once", len(delivered)-1)
		})
	}
}

// TestScaleStressDeliveryGuarantee32 is the PR-4 stress invariant on a
// 32×32 mesh with a proportionally scaled fault plan, running on the
// event-driven electrical kernel: every message delivered exactly once
// or reported lost exactly once, and the network drains.
func TestScaleStressDeliveryGuarantee32(t *testing.T) {
	if testing.Short() {
		t.Skip("large-mesh stress skipped in -short")
	}
	cfg := electrical.DefaultConfig()
	cfg.Width, cfg.Height = 32, 32
	cfg.Faults = fault.RandomPlan(29, 32, 32, fault.RandomSpec{
		DeadLinks:    24,
		StuckRouters: 2,
		SlotFaults:   10,
		CorruptRate:  0.005,
	})
	cfg.LossTimeout = 4000
	stressAccountingLoad(t, electrical.New(cfg), 29, 60, 8)
}
