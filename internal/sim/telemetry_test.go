package sim_test

import (
	"reflect"
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/telemetry"
	"phastlane/internal/traffic"
)

// TestTelemetryDoesNotPerturbResults pins the observer-effect contract:
// a run with the full telemetry bundle attached (phase timers sampling
// every cycle, watchdog, counters) produces exactly the result of the
// same run without it, for both simulators.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	for _, tc := range []struct {
		name   string
		newNet func() sim.Network
	}{
		{"optical", optical},
		{"electrical", baseline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// UniformRandom is stateful, so each run needs a fresh pattern.
			run := func(tel *telemetry.Run) sim.Result {
				return sim.RunRate(tc.newNet(), sim.RateConfig{
					Pattern: traffic.UniformRandom(64, 1),
					Rate:    0.05, Warmup: 300, Measure: 1500, Seed: 7,
					Telemetry: tel,
				})
			}
			plain := run(nil)
			tel := telemetry.NewRun(telemetry.Options{
				SampleEvery: 1,
				FlushEvery:  500,
				Watchdog:    &telemetry.Watchdog{Abort: true},
			})
			observed := run(tel)

			if !reflect.DeepEqual(plain, observed) {
				t.Errorf("telemetry perturbed the run:\nplain:    %+v\nobserved: %+v", plain, observed)
			}
			// The telemetry counters cover the whole run, warmup and
			// drain included, so they bound the measured counts from above.
			if got := tel.Delivered.Load(); got < plain.Run.Delivered {
				t.Errorf("delivered counter = %d, want >= %d", got, plain.Run.Delivered)
			}
			if tel.Cycles.Load() == 0 || tel.Injected.Load() < plain.Run.Injected {
				t.Errorf("counters did not accumulate: cycles %d injected %d",
					tel.Cycles.Load(), tel.Injected.Load())
			}
		})
	}
}

// TestTelemetryWatchdogCleanRun asserts that a healthy run trips no
// watchdog: conservation holds at every flush and both networks' own
// invariant checks pass mid-flight. Abort is set, so a trip fails loudly.
func TestTelemetryWatchdogCleanRun(t *testing.T) {
	for _, tc := range []struct {
		name   string
		newNet func() sim.Network
	}{
		{"optical", optical},
		{"electrical", baseline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tel := telemetry.NewRun(telemetry.Options{
				FlushEvery: 250,
				Watchdog:   &telemetry.Watchdog{Abort: true},
			})
			sim.RunRate(tc.newNet(), sim.RateConfig{
				Pattern: traffic.UniformRandom(64, 1),
				Rate:    0.10, Warmup: 300, Measure: 2000, Seed: 11,
				Telemetry: tel,
			})
			if trips := tel.Watchdog.Trips(); len(trips) != 0 {
				t.Errorf("clean run tripped the watchdog: %v", trips)
			}
		})
	}
}

// TestPhaseAttributionCoversStep is the acceptance check for the
// time-attribution table: on a busy 8x8 electrical run with phase
// timers sampling every cycle, the named pipeline phases must account
// for at least 90% of the measured Step time.
func TestPhaseAttributionCoversStep(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive attribution check")
	}
	tel := telemetry.NewRun(telemetry.Options{SampleEvery: 1})
	sim.RunRate(baseline(), sim.RateConfig{
		Pattern: traffic.UniformRandom(64, 1),
		Rate:    0.30, Warmup: 500, Measure: 4000, Seed: 3,
		Telemetry: tel,
	})
	s := tel.Phases.Snapshot()
	if s.SampledCycles == 0 {
		t.Fatal("no cycles sampled")
	}
	if f := s.AttributedFraction(); f < 0.90 {
		t.Errorf("named phases cover %.1f%% of step time, want >= 90%%\n%s",
			f*100, tel.Phases.Table())
	}
}

// TestTelemetryTickZeroAlloc pins the enabled-path overhead contract:
// between flush boundaries, a warmed-up run with counters and phase
// timers live allocates nothing per cycle.
func TestTelemetryTickZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  sim.Network
	}{
		{"optical", optical()},
		{"electrical", baseline()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := tc.net
			tel := telemetry.NewRun(telemetry.Options{SampleEvery: 1})
			if in, ok := net.(telemetry.Instrumentable); ok {
				in.SetPhases(tel.Phases)
			} else {
				t.Fatalf("%T is not instrumentable", net)
			}
			inj := traffic.NewInjector(traffic.UniformRandom(net.Nodes(), 1), net.Nodes(), 0.05, 2)
			var id uint64
			var buf []sim.Delivery
			dsts := make([]mesh.NodeID, 1)
			cycle := func() {
				injected := 0
				for _, in := range inj.Tick() {
					if net.NICFree(in.Src) > 0 {
						id++
						dsts[0] = in.Dst
						net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: dsts, Op: packet.OpSynthetic})
						injected++
					}
				}
				buf = net.Step(buf[:0])
				r := net.Run()
				tel.Tick(injected, len(buf), r.Drops, r.Retries, 0)
				tel.Latency.Observe(1)
			}
			for i := 0; i < 3000; i++ {
				cycle()
			}
			if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
				t.Errorf("telemetry-on inject+Step+Tick allocates %.2f times per cycle, want 0", allocs)
			}
		})
	}
}
