package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// TestInjectPanicNamesNodeAndFreeCount pins the NICFree-then-Inject
// contract on every simulator: injecting into a full NIC panics, and the
// message names the offending node, reports the free-entry count, and
// points the caller at NICFree.
func TestInjectPanicNamesNodeAndFreeCount(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  sim.Network
	}{
		{"optical", optical()},
		{"electrical", baseline()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := tc.net
			var id uint64
			for net.NICFree(0) > 0 {
				id++
				net.Inject(sim.Message{ID: id, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
			}
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("inject into full NIC did not panic")
				}
				msg := fmt.Sprint(r)
				for _, want := range []string{"node 0", "0 free entries", "NICFree"} {
					if !strings.Contains(msg, want) {
						t.Errorf("panic %q does not mention %q", msg, want)
					}
				}
			}()
			id++
			net.Inject(sim.Message{ID: id, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
		})
	}
}

// stepZeroAlloc drives net under sustained uniform-random load past
// warmup, then asserts that further inject+Step cycles allocate nothing:
// the steady-state kernel must run entirely from pools, scratch slices,
// and the caller-owned delivery buffer.
func stepZeroAlloc(t *testing.T, net sim.Network, warmup int) {
	t.Helper()
	inj := traffic.NewInjector(traffic.UniformRandom(net.Nodes(), 1), net.Nodes(), 0.05, 2)
	var id uint64
	var buf []sim.Delivery
	dsts := make([]mesh.NodeID, 1)
	cycle := func() {
		for _, in := range inj.Tick() {
			if net.NICFree(in.Src) > 0 {
				id++
				dsts[0] = in.Dst
				net.Inject(sim.Message{ID: id, Src: in.Src, Dsts: dsts, Op: packet.OpSynthetic})
			}
		}
		buf = net.Step(buf[:0])
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("warmed-up inject+Step allocates %.2f times per cycle, want 0", allocs)
	}
}

func TestOpticalStepZeroAlloc(t *testing.T) {
	stepZeroAlloc(t, core.New(core.DefaultConfig()), 500)
}

func TestElectricalStepZeroAlloc(t *testing.T) {
	stepZeroAlloc(t, electrical.New(electrical.DefaultConfig()), 500)
}

// TestElectricalStepZeroAlloc32 holds the zero-allocation contract on a
// 32×32 mesh: the event-driven kernel's active-set maintenance (merge,
// scratch arrays, pools) must stay allocation-free once the in-flight
// population stabilises, not just at the 8×8 size the pools grew up on.
func TestElectricalStepZeroAlloc32(t *testing.T) {
	cfg := electrical.DefaultConfig()
	cfg.Width, cfg.Height = 32, 32
	stepZeroAlloc(t, electrical.New(cfg), 800)
}
