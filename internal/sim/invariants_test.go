package sim_test

import (
	"math"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/mesh"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// Property and metamorphic tests for the RunRate harness: simulator-
// independent invariants that must hold for any network implementing
// sim.Network, at any load.

// minPatternHops returns the smallest hop distance any packet of the
// pattern travels on an 8x8 mesh: a lower bound on delivery work.
func minPatternHops(p traffic.Pattern) int {
	m := mesh.New(8, 8)
	min := math.MaxInt
	for n := 0; n < 64; n++ {
		src := mesh.NodeID(n)
		dst := p.Dest(src)
		if dst == src {
			continue // self-directed slots are never injected
		}
		if d := m.HopDistance(src, dst); d < min {
			min = d
		}
	}
	return min
}

func TestRunRateConservationInvariants(t *testing.T) {
	patterns := []traffic.Pattern{
		traffic.BitComplement(64), traffic.Shuffle(64), traffic.Transpose(64),
	}
	nets := []struct {
		name string
		make func() sim.Network
		// minCyclesPerHop converts the pattern's minimal hop count
		// into a latency floor: the optical network covers up to
		// MaxHops links per cycle, the electrical baseline pays the
		// router pipeline every hop.
		minCycles func(hops int) float64
	}{
		{"phastlane", optical, func(hops int) float64 {
			return math.Ceil(float64(hops) / float64(core.DefaultConfig().MaxHops))
		}},
		{"electrical", baseline, func(hops int) float64 {
			return float64(hops * electrical.DefaultConfig().RouterDelay)
		}},
	}
	for _, n := range nets {
		for _, p := range patterns {
			for _, rate := range []float64{0.02, 0.15, 0.60} {
				r := sim.RunRate(n.make(), sim.RateConfig{
					Pattern: p, Rate: rate,
					Warmup: 200, Measure: 800, DrainLimit: 5000, Seed: 31,
				})
				name := n.name + "/" + p.Name()
				// Conservation chain: nothing is delivered that was
				// not injected, nothing injected that was not offered.
				if r.Run.Delivered > r.Run.Injected {
					t.Errorf("%s@%v: delivered %d > injected %d", name, rate, r.Run.Delivered, r.Run.Injected)
				}
				if r.Run.Injected > r.Offered {
					t.Errorf("%s@%v: injected %d > offered %d", name, rate, r.Run.Injected, r.Offered)
				}
				if r.Offered == 0 {
					t.Errorf("%s@%v: no packets offered at positive rate", name, rate)
				}
				// Latency floor: no packet beats the physics of its
				// shortest possible journey.
				if r.Run.Latency.Count() > 0 {
					floor := n.minCycles(minPatternHops(p))
					if mean := r.Run.Latency.Mean(); mean < floor {
						t.Errorf("%s@%v: mean latency %.3f below minimal hop latency %.0f", name, rate, mean, floor)
					}
				}
				// Throughput cannot meaningfully exceed the offered
				// load; Bernoulli injection fluctuates around the
				// nominal rate, so allow a small sampling margin.
				if tp := r.Run.ThroughputPerNode(64); tp > rate*1.05+0.001 {
					t.Errorf("%s@%v: throughput %.4f exceeds offered rate", name, rate, tp)
				}
			}
		}
	}
}

func TestRunRateZeroRateYieldsZeroThroughput(t *testing.T) {
	for _, net := range networks() {
		r := sim.RunRate(net, sim.RateConfig{
			Pattern: traffic.Transpose(64), Rate: 0,
			Warmup: 100, Measure: 500, Seed: 3,
		})
		if r.Offered != 0 || r.Run.Injected != 0 || r.Run.Delivered != 0 {
			t.Errorf("%T: zero rate moved packets (offered %d, injected %d, delivered %d)",
				net, r.Offered, r.Run.Injected, r.Run.Delivered)
		}
		if tp := r.Run.ThroughputPerNode(64); tp != 0 {
			t.Errorf("%T: zero rate yields throughput %v", net, tp)
		}
		if r.Saturated {
			t.Errorf("%T: zero rate flagged saturated", net)
		}
	}
}

// TestRunRateMeasureDoublingStable is the metamorphic check: well below
// saturation, the measured mean latency is a property of the operating
// point, not the observation window, so doubling Measure must not move it
// by more than a sampling tolerance.
func TestRunRateMeasureDoublingStable(t *testing.T) {
	for _, n := range []struct {
		name string
		make func() sim.Network
	}{{"phastlane", optical}, {"electrical", baseline}} {
		base := sim.RunRate(n.make(), sim.RateConfig{
			Pattern: traffic.Transpose(64), Rate: 0.05,
			Warmup: 500, Measure: 2000, Seed: 17,
		})
		doubled := sim.RunRate(n.make(), sim.RateConfig{
			Pattern: traffic.Transpose(64), Rate: 0.05,
			Warmup: 500, Measure: 4000, Seed: 17,
		})
		if base.Saturated || doubled.Saturated {
			t.Fatalf("%s: operating point unexpectedly saturated", n.name)
		}
		m1, m2 := base.Run.Latency.Mean(), doubled.Run.Latency.Mean()
		if m1 <= 0 || m2 <= 0 {
			t.Fatalf("%s: empty latency sample", n.name)
		}
		if diff := math.Abs(m1-m2) / m1; diff > 0.15 {
			t.Errorf("%s: doubling Measure moved mean latency %.3f -> %.3f (%.1f%%), want < 15%%",
				n.name, m1, m2, diff*100)
		}
	}
}
