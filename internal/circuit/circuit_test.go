package circuit

import (
	"math/rand"
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

func stepUntilQuiescent(t *testing.T, n *Network, limit int) []sim.Delivery {
	t.Helper()
	var all []sim.Delivery
	for i := 0; i < limit; i++ {
		all = append(all, n.Step(nil)...)
		if n.Quiescent() {
			return all
		}
	}
	t.Fatalf("network not quiescent after %d cycles", limit)
	return nil
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Width = 1 },
		func(c *Config) { c.SetupCyclesPerHop = 0 },
		func(c *Config) { c.TransferCycles = 0 },
		func(c *Config) { c.TeardownCycles = -1 },
		func(c *Config) { c.NICEntries = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUnicastDelivery(t *testing.T) {
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	ds := stepUntilQuiescent(t, n, 50)
	if len(ds) != 1 || ds[0].Dst != 9 {
		t.Fatalf("deliveries = %v", ds)
	}
}

func TestSetupLatencyDominates(t *testing.T) {
	// For a distance-d transfer the setup walk alone costs about
	// d*SetupCyclesPerHop cycles: the single-flit unsuitability the
	// paper argues. Distance 14 => delivery no earlier than cycle 14.
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{63}, Op: packet.OpSynthetic})
	for i := 0; i < 50; i++ {
		if ds := n.Step(nil); len(ds) > 0 {
			if i < 14 {
				t.Fatalf("corner-to-corner delivered at cycle %d, faster than the setup walk", i)
			}
			return
		}
	}
	t.Fatal("never delivered")
}

func TestLinksReleasedAfterTeardown(t *testing.T) {
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{7}, Op: packet.OpSynthetic})
	stepUntilQuiescent(t, n, 50)
	for i, f := range n.linkOwner {
		if f != nil {
			t.Fatalf("link %d still held after teardown", i)
		}
	}
}

func TestCircuitBlocking(t *testing.T) {
	// Two flows crossing the same link serialise: the second setup
	// stalls until the first tears down.
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{7}, Op: packet.OpSynthetic})
	n.Inject(sim.Message{ID: 2, Src: 1, Dsts: []mesh.NodeID{7}, Op: packet.OpSynthetic})
	arrival := map[uint64]int{}
	for i := 0; i < 100 && len(arrival) < 2; i++ {
		for _, d := range n.Step(nil) {
			arrival[d.MsgID] = i
		}
	}
	if len(arrival) != 2 {
		t.Fatal("not all delivered")
	}
	if arrival[1] == arrival[2] {
		t.Error("conflicting circuits completed simultaneously")
	}
}

func TestBroadcastIsSerialCircuits(t *testing.T) {
	n := New(DefaultConfig())
	var all []mesh.NodeID
	for i := mesh.NodeID(1); i < 64; i++ {
		all = append(all, i)
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: all, Op: packet.OpWriteReq})
	got := map[mesh.NodeID]int{}
	ds := stepUntilQuiescent(t, n, 5000)
	for _, d := range ds {
		got[d.Dst]++
	}
	if len(got) != 63 {
		t.Fatalf("broadcast reached %d nodes", len(got))
	}
	// 63 serial circuits, each at least setup+transfer+teardown: the
	// completion time must reflect the serialisation.
	if n.cycle < 63*3 {
		t.Errorf("broadcast completed at cycle %d, impossibly fast for serial circuits", n.cycle)
	}
}

func TestExactOnceUnderLoad(t *testing.T) {
	n := New(DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	injected := map[uint64]mesh.NodeID{}
	delivered := map[uint64]int{}
	var id uint64
	for cycle := 0; cycle < 400; cycle++ {
		for node := mesh.NodeID(0); node < 64; node++ {
			if rng.Float64() < 0.05 && n.NICFree(node) > 0 {
				dst := mesh.NodeID(rng.Intn(64))
				if dst == node {
					continue
				}
				id++
				injected[id] = dst
				n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
			}
		}
		for _, d := range n.Step(nil) {
			if injected[d.MsgID] != d.Dst {
				t.Fatalf("msg %d delivered to %d, want %d", d.MsgID, d.Dst, injected[d.MsgID])
			}
			delivered[d.MsgID]++
		}
	}
	for i := 0; i < 30000 && !n.Quiescent(); i++ {
		for _, d := range n.Step(nil) {
			delivered[d.MsgID]++
		}
	}
	if !n.Quiescent() {
		t.Fatal("network failed to drain (circuit deadlock?)")
	}
	if len(delivered) != len(injected) {
		t.Fatalf("delivered %d distinct, injected %d", len(delivered), len(injected))
	}
	for m, c := range delivered {
		if c != 1 {
			t.Fatalf("msg %d delivered %d times", m, c)
		}
	}
}

func TestNICCapacityAndPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NICEntries = 1
	n := New(cfg)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	if n.NICFree(0) != 0 {
		t.Error("NICFree should be 0")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("full NIC", func() {
		n.Inject(sim.Message{ID: 2, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	})
	n2 := New(DefaultConfig())
	mustPanic("self-directed", func() {
		n2.Inject(sim.Message{ID: 1, Src: 2, Dsts: []mesh.NodeID{2}, Op: packet.OpSynthetic})
	})
	mustPanic("no destinations", func() {
		n2.Inject(sim.Message{ID: 1, Src: 2, Dsts: nil, Op: packet.OpSynthetic})
	})
}

func TestEnergyAccumulates(t *testing.T) {
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	stepUntilQuiescent(t, n, 50)
	if n.Run().OpticalEnergyPJ <= 0 || n.Run().ElectricalEnergyPJ <= 0 || n.Run().LeakagePJ <= 0 {
		t.Error("energy not accumulating")
	}
}
