// Package circuit implements a Columbia-style circuit-switched photonic
// mesh (Shacham, Bergman, Carloni, NOCS 2007) as a comparison substrate:
// the switched-optical alternative the paper contrasts Phastlane against.
//
// Data moves through a 2D grid of optical waveguides with turn resonators,
// but the switches are configured by an electrical setup network: a setup
// flit walks hop by hop toward the destination reserving every optical
// link; when the path is complete, an acknowledgement returns optically and
// the source fires the payload end to end at light speed; a teardown then
// releases the links. The architecture amortises well over long DMA-style
// transfers, but for single-cache-line packets the electrical setup
// round-trip dominates and held circuits block each other - exactly the
// unsuitability for coherence traffic that motivates Phastlane (paper
// Sections 1 and 6).
package circuit

import (
	"fmt"

	"phastlane/internal/mesh"
	"phastlane/internal/photonic"
	"phastlane/internal/power"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/topo"
)

// Config parameterises the circuit-switched mesh.
type Config struct {
	Width, Height int
	// SetupCyclesPerHop is the electrical setup network's per-hop
	// latency (a light flit through a small electrical router).
	SetupCyclesPerHop int
	// TransferCycles is the optical end-to-end payload time once the
	// circuit is up (modulate + fly + receive), independent of hops.
	TransferCycles int
	// TeardownCycles is the time to release a circuit after transfer.
	TeardownCycles int
	// NICEntries is the injection queue capacity per node.
	NICEntries int
	Seed       int64
}

// DefaultConfig matches the paper's 8x8, 4 GHz context: a 1-cycle-per-hop
// setup network, a 2-cycle optical transfer, 1-cycle teardown.
func DefaultConfig() Config {
	return Config{
		Width: 8, Height: 8,
		SetupCyclesPerHop: 1,
		TransferCycles:    2,
		TeardownCycles:    1,
		NICEntries:        50,
		Seed:              1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width < 2 || c.Height < 2 {
		return fmt.Errorf("circuit: mesh %dx%d too small", c.Width, c.Height)
	}
	if c.SetupCyclesPerHop < 1 || c.TransferCycles < 1 || c.TeardownCycles < 0 {
		return fmt.Errorf("circuit: setup %d / transfer %d / teardown %d",
			c.SetupCyclesPerHop, c.TransferCycles, c.TeardownCycles)
	}
	if c.NICEntries < 1 {
		return fmt.Errorf("circuit: NIC entries %d", c.NICEntries)
	}
	return nil
}

// circuitState is the setup/transfer FSM of one message.
type circuitState int

const (
	setupWalking circuitState = iota // setup flit progressing hop by hop
	transferring                     // circuit up, payload in flight
	tearingDown                      // links being released
)

// flow is one in-progress connection.
type flow struct {
	msgID uint64
	src   mesh.NodeID
	// dsts holds the remaining destinations (broadcasts are serial
	// circuits, one per destination).
	dsts []mesh.NodeID
	// route is the DOR link list for the current destination; reserved
	// counts how many links the setup flit has locked so far.
	route    []mesh.NodeID // nodes visited, inclusive of endpoints
	dirs     []mesh.Dir
	reserved int
	state    circuitState
	// nextAt is the cycle of the flow's next state-machine action.
	nextAt int64
}

// Network is the circuit-switched simulator implementing sim.Network.
type Network struct {
	cfg Config
	// top compiles routes; m is the mesh geometry the link-reservation
	// walk steps across.
	top   topo.Topology
	m     *mesh.Mesh
	run   stats.Run
	cycle int64
	// linkOwner[node*4+dir] is the flow holding the optical link, nil
	// when free.
	linkOwner []*flow
	queues    [][]*flow
	active    []*flow
	live      int
}

var _ sim.Network = (*Network)(nil)

// New builds a circuit-switched mesh; it panics on invalid configuration.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	top := topo.NewMesh2D(cfg.Width, cfg.Height)
	m := top.Mesh()
	return &Network{
		cfg:       cfg,
		top:       top,
		m:         m,
		linkOwner: make([]*flow, m.Nodes()*mesh.NumLinkDirs),
		queues:    make([][]*flow, m.Nodes()),
	}
}

// Nodes implements sim.Network.
func (n *Network) Nodes() int { return n.m.Nodes() }

// Run implements sim.Network.
func (n *Network) Run() *stats.Run { return &n.run }

// NICFree implements sim.Network.
func (n *Network) NICFree(node mesh.NodeID) int {
	f := n.cfg.NICEntries - len(n.queues[node])
	if f < 0 {
		return 0
	}
	return f
}

// Quiescent implements sim.Network.
func (n *Network) Quiescent() bool { return n.live == 0 }

// Inject implements sim.Network. Broadcasts become one flow that opens a
// circuit to each destination in turn - the architecture has no multicast.
func (n *Network) Inject(m sim.Message) {
	if free := n.NICFree(m.Src); free <= 0 {
		panic(fmt.Sprintf("circuit: inject into full NIC at node %d (%d free entries; check NICFree before Inject)", m.Src, free))
	}
	n.run.Injected++
	f := &flow{msgID: m.ID, src: m.Src}
	switch {
	case len(m.Dsts) == 0:
		panic("circuit: message without destinations")
	case len(m.Dsts) == 1 && m.Dsts[0] == m.Src:
		panic("circuit: self-directed message")
	default:
		f.dsts = append(f.dsts, m.Dsts...)
	}
	n.queues[m.Src] = append(n.queues[m.Src], f)
	n.live++
}

// linkIndex addresses the directed link out of node toward d.
func linkIndex(node mesh.NodeID, d mesh.Dir) int {
	return int(node)*mesh.NumLinkDirs + int(d)
}

// Step implements sim.Network. Deliveries are appended to buf (see
// sim.Network for the buffer-ownership contract).
func (n *Network) Step(buf []sim.Delivery) []sim.Delivery {
	out := buf

	// 1. Start a setup for each idle node with a queued flow (one
	// outstanding circuit per node, as in the original design).
	for node := range n.queues {
		if len(n.queues[node]) == 0 {
			continue
		}
		busy := false
		for _, f := range n.active {
			if f.src == mesh.NodeID(node) {
				busy = true
				break
			}
		}
		if busy {
			continue
		}
		f := n.queues[node][0]
		copy(n.queues[node], n.queues[node][1:])
		n.queues[node] = n.queues[node][:len(n.queues[node])-1]
		n.beginSetup(f)
		n.active = append(n.active, f)
	}

	// 2. Advance every active flow's state machine.
	rest := n.active[:0]
	for _, f := range n.active {
		done := n.advance(f, &out)
		if !done {
			rest = append(rest, f)
		}
	}
	n.active = rest

	n.run.LeakagePJ += power.LeakagePJ(leakageWPerRouter, n.m.Nodes(), 1, photonic.DefaultClockGHz)
	n.cycle++
	return out
}

// beginSetup aims the flow at its next destination.
func (n *Network) beginSetup(f *flow) {
	dst := f.dsts[0]
	f.dirs = n.top.AppendRoute(f.dirs[:0], f.src, dst)
	f.route = append(f.route[:0], f.src)
	cur := f.src
	for _, d := range f.dirs {
		next, ok := n.top.Neighbor(cur, d)
		if !ok {
			panic("circuit: route walks off fabric")
		}
		cur = next
		f.route = append(f.route, cur)
	}
	f.reserved = 0
	f.state = setupWalking
	f.nextAt = n.cycle
}

// advance runs one cycle of a flow's FSM; it returns true when the flow has
// served every destination and retires.
func (n *Network) advance(f *flow, out *[]sim.Delivery) bool {
	if f.nextAt > n.cycle {
		return false
	}
	switch f.state {
	case setupWalking:
		// Try to reserve the next link; a held link stalls the
		// setup flit in the electrical network (it retries each
		// cycle).
		node := f.route[f.reserved]
		idx := linkIndex(node, f.dirs[f.reserved])
		if n.linkOwner[idx] != nil {
			n.run.ElectricalEnergyPJ += setupStallPJ
			return false
		}
		n.linkOwner[idx] = f
		f.reserved++
		n.run.ElectricalEnergyPJ += setupHopPJ
		f.nextAt = n.cycle + int64(n.cfg.SetupCyclesPerHop)
		if f.reserved == len(f.dirs) {
			// Path complete: the grant returns optically and
			// the payload flies.
			f.state = transferring
			f.nextAt = n.cycle + int64(n.cfg.TransferCycles)
		}
		return false
	case transferring:
		dst := f.dsts[0]
		*out = append(*out, sim.Delivery{MsgID: f.msgID, Dst: dst})
		n.run.OpticalEnergyPJ += transferPJ
		n.run.ElectricalEnergyPJ += receivePJ
		n.run.LinkTraversals += int64(len(f.dirs))
		f.state = tearingDown
		f.nextAt = n.cycle + int64(n.cfg.TeardownCycles)
		return false
	default: // tearingDown
		n.release(f)
		f.dsts = f.dsts[1:]
		if len(f.dsts) == 0 {
			n.live--
			return true
		}
		n.beginSetup(f)
		return false
	}
}

// release frees every link the flow holds.
func (n *Network) release(f *flow) {
	for i := 0; i < f.reserved; i++ {
		idx := linkIndex(f.route[i], f.dirs[i])
		if n.linkOwner[idx] != f {
			panic("circuit: releasing a link owned by another flow")
		}
		n.linkOwner[idx] = nil
	}
	f.reserved = 0
}

// Energy constants: optical transfer is cheap (few crossings per grid
// path); the electrical setup network pays per-hop flit costs.
const (
	setupHopPJ        = 18.0
	setupStallPJ      = 1.0
	transferPJ        = 16.0
	receivePJ         = 5.7
	leakageWPerRouter = 0.020
)
