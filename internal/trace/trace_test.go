package trace

import (
	"bytes"
	"strings"
	"testing"

	"phastlane/internal/packet"
)

func sample() *Trace {
	return &Trace{
		Nodes: 64,
		Messages: []Message{
			{ID: 1, EarliestCycle: 0, Src: 0, Dst: 5, Op: packet.OpReadReq},
			{ID: 2, EarliestCycle: 0, Src: 5, Dst: 0, Op: packet.OpDataReply, Dep: 1, Think: 3},
			{ID: 3, EarliestCycle: 10, Src: 2, Dst: Broadcast, Op: packet.OpWriteReq},
			{ID: 4, EarliestCycle: 0, Src: 0, Dst: 9, Op: packet.OpReadReq, Dep: 2, Think: 12},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Nodes != want.Nodes || len(got.Messages) != len(want.Messages) {
		t.Fatalf("shape mismatch: %d/%d", got.Nodes, len(got.Messages))
	}
	for i := range want.Messages {
		if got.Messages[i] != want.Messages[i] {
			t.Errorf("message %d = %+v, want %+v", i, got.Messages[i], want.Messages[i])
		}
	}
}

func TestBroadcastFlag(t *testing.T) {
	m := Message{Dst: Broadcast}
	if !m.IsBroadcast() {
		t.Error("Broadcast not detected")
	}
	if (Message{Dst: 5}).IsBroadcast() {
		t.Error("unicast flagged broadcast")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := map[string]*Trace{
		"bad nodes": {Nodes: 0},
		"non-dense ids": {Nodes: 4, Messages: []Message{
			{ID: 2, Src: 0, Dst: 1},
		}},
		"forward dep": {Nodes: 4, Messages: []Message{
			{ID: 1, Src: 0, Dst: 1, Dep: 1},
		}},
		"src range": {Nodes: 4, Messages: []Message{
			{ID: 1, Src: 9, Dst: 1},
		}},
		"dst range": {Nodes: 4, Messages: []Message{
			{ID: 1, Src: 0, Dst: 9},
		}},
		"self-directed": {Nodes: 4, Messages: []Message{
			{ID: 1, Src: 2, Dst: 2},
		}},
		"negative think": {Nodes: 4, Messages: []Message{
			{ID: 1, Src: 0, Dst: 1, Think: -1},
		}},
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	if err := sample().Validate(); err != nil {
		t.Errorf("sample invalid: %v", err)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Nodes: 0}); err == nil {
		t.Error("Write accepted invalid trace")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTATRACE_______")); err == nil {
		t.Error("Read accepted bad magic")
	}
	if _, err := Read(strings.NewReader("PH")); err == nil {
		t.Error("Read accepted truncated header")
	}
	// Valid header claiming one message but no body.
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Nodes: 4, Messages: []Message{{ID: 1, Src: 0, Dst: 1}}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:len(buf.Bytes())-8]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("Read accepted truncated record")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Nodes: 16}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != 16 || len(got.Messages) != 0 {
		t.Error("empty trace round-trip failed")
	}
}
