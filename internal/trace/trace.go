// Package trace defines the packet-trace format shared by the Phastlane and
// electrical-baseline simulators, mirroring the paper's methodology of
// feeding both simulators the same trace files (Section 4).
//
// A trace is an ordered sequence of message records. Each record may depend
// on an earlier message (e.g. a data reply depends on the request that
// triggered it, and a core's next miss depends on its previous miss
// completing); replay injects a message only after its dependency has been
// delivered and a think time has elapsed. Makespan-style replay of such
// dependency chains is what turns per-packet latency differences into the
// "network speedup" of Fig. 10.
//
// The on-disk format is a little-endian binary stream: a 16-byte header
// ("PHTRACE1", node count, message count) followed by fixed-width records.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
)

// Magic identifies trace files.
const Magic = "PHTRACE1"

// Broadcast is the destination value marking an all-nodes multicast.
const Broadcast mesh.NodeID = -1

// Message is one trace record.
type Message struct {
	// ID is unique and dense (1..N). ID 0 is reserved for "no
	// dependency".
	ID uint64
	// EarliestCycle is the first cycle the message may inject,
	// independent of dependencies.
	EarliestCycle int64
	// Src is the injecting node.
	Src mesh.NodeID
	// Dst is the destination, or Broadcast for an all-node multicast.
	Dst mesh.NodeID
	// Op is the coherence/synthetic operation type.
	Op packet.Op
	// Dep is the ID of the message that must be fully delivered before
	// this one may inject, or 0.
	Dep uint64
	// Think is the number of cycles after the dependency's delivery
	// before this message injects (models computation between misses).
	Think int64
}

// IsBroadcast reports whether the message fans out to every node.
func (m Message) IsBroadcast() bool { return m.Dst == Broadcast }

// Trace is an in-memory trace.
type Trace struct {
	Nodes    int
	Messages []Message
}

// Validate checks trace invariants: IDs dense and ascending from 1,
// dependencies referencing earlier messages only (acyclic by construction),
// and node IDs in range.
func (t *Trace) Validate() error {
	if t.Nodes < 1 {
		return fmt.Errorf("trace: node count %d", t.Nodes)
	}
	for i, m := range t.Messages {
		if m.ID != uint64(i+1) {
			return fmt.Errorf("trace: message %d has ID %d, want %d", i, m.ID, i+1)
		}
		if m.Dep >= m.ID {
			return fmt.Errorf("trace: message %d depends on later/self message %d", m.ID, m.Dep)
		}
		if m.Src < 0 || int(m.Src) >= t.Nodes {
			return fmt.Errorf("trace: message %d src %d out of range", m.ID, m.Src)
		}
		if !m.IsBroadcast() && (m.Dst < 0 || int(m.Dst) >= t.Nodes) {
			return fmt.Errorf("trace: message %d dst %d out of range", m.ID, m.Dst)
		}
		if !m.IsBroadcast() && m.Dst == m.Src {
			return fmt.Errorf("trace: message %d is self-directed", m.ID)
		}
		if m.EarliestCycle < 0 || m.Think < 0 {
			return fmt.Errorf("trace: message %d has negative timing", m.ID)
		}
	}
	return nil
}

const recordBytes = 8 + 8 + 4 + 4 + 1 + 7 + 8 + 8 // ID, cycle, src, dst, op, pad, dep, think

// Write serialises the trace.
func Write(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(t.Nodes)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Messages))); err != nil {
		return err
	}
	var rec [recordBytes]byte
	for _, m := range t.Messages {
		binary.LittleEndian.PutUint64(rec[0:], m.ID)
		binary.LittleEndian.PutUint64(rec[8:], uint64(m.EarliestCycle))
		binary.LittleEndian.PutUint32(rec[16:], uint32(int32(m.Src)))
		binary.LittleEndian.PutUint32(rec[20:], uint32(int32(m.Dst)))
		rec[24] = byte(m.Op)
		for i := 25; i < 32; i++ {
			rec[i] = 0
		}
		binary.LittleEndian.PutUint64(rec[32:], m.Dep)
		binary.LittleEndian.PutUint64(rec[40:], uint64(m.Think))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write and validates it.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, errors.New("trace: bad magic")
	}
	var nodes, count uint32
	if err := binary.Read(br, binary.LittleEndian, &nodes); err != nil {
		return nil, fmt.Errorf("trace: reading node count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading message count: %w", err)
	}
	t := &Trace{Nodes: int(nodes), Messages: make([]Message, 0, count)}
	var rec [recordBytes]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		t.Messages = append(t.Messages, Message{
			ID:            binary.LittleEndian.Uint64(rec[0:]),
			EarliestCycle: int64(binary.LittleEndian.Uint64(rec[8:])),
			Src:           mesh.NodeID(int32(binary.LittleEndian.Uint32(rec[16:]))),
			Dst:           mesh.NodeID(int32(binary.LittleEndian.Uint32(rec[20:]))),
			Op:            packet.Op(rec[24]),
			Dep:           binary.LittleEndian.Uint64(rec[32:]),
			Think:         int64(binary.LittleEndian.Uint64(rec[40:])),
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
