package traffic

import (
	"testing"

	"phastlane/internal/mesh"
)

func TestBitComplement(t *testing.T) {
	p := BitComplement(64)
	cases := map[mesh.NodeID]mesh.NodeID{0: 63, 63: 0, 1: 62, 21: 42}
	for src, want := range cases {
		if got := p.Dest(src); got != want {
			t.Errorf("BitComp(%d) = %d, want %d", src, got, want)
		}
	}
}

func TestBitReverse(t *testing.T) {
	p := BitReverse(64)
	// 6-bit reverse: 000001 -> 100000.
	cases := map[mesh.NodeID]mesh.NodeID{1: 32, 32: 1, 0: 0, 63: 63, 0b000110: 0b011000}
	for src, want := range cases {
		if got := p.Dest(src); got != want {
			t.Errorf("BitRev(%d) = %d, want %d", src, got, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	p := Shuffle(64)
	// Rotate left: 100000 -> 000001.
	cases := map[mesh.NodeID]mesh.NodeID{32: 1, 1: 2, 63: 63, 0b101010: 0b010101}
	for src, want := range cases {
		if got := p.Dest(src); got != want {
			t.Errorf("Shuffle(%d) = %d, want %d", src, got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	p := Transpose(64)
	m := mesh.New(8, 8)
	for src := mesh.NodeID(0); src < 64; src++ {
		c := m.Coord(src)
		want := m.ID(mesh.Coord{X: c.Y, Y: c.X})
		if got := p.Dest(src); got != want {
			t.Errorf("Transpose(%d)=(%v) = %d, want %d", src, c, got, want)
		}
	}
}

// Every bit-permutation pattern is a bijection.
func TestPatternsAreBijections(t *testing.T) {
	for _, p := range Patterns(64) {
		seen := make(map[mesh.NodeID]bool)
		for src := mesh.NodeID(0); src < 64; src++ {
			d := p.Dest(src)
			if d < 0 || d >= 64 {
				t.Fatalf("%s(%d) = %d out of range", p.Name(), src, d)
			}
			if seen[d] {
				t.Fatalf("%s maps two sources to %d", p.Name(), d)
			}
			seen[d] = true
		}
	}
}

func TestUniformRandomAvoidsSelf(t *testing.T) {
	p := UniformRandom(64, 1)
	for i := 0; i < 1000; i++ {
		src := mesh.NodeID(i % 64)
		if p.Dest(src) == src {
			t.Fatal("uniform pattern returned self")
		}
	}
}

func TestInjectorRate(t *testing.T) {
	in := NewInjector(UniformRandom(64, 2), 64, 0.25, 3)
	total := 0
	cycles := 2000
	for i := 0; i < cycles; i++ {
		total += len(in.Tick())
	}
	got := float64(total) / float64(cycles) / 64
	if got < 0.22 || got > 0.28 {
		t.Errorf("measured injection rate %.3f, want ~0.25", got)
	}
}

func TestInjectorZeroRate(t *testing.T) {
	in := NewInjector(BitComplement(64), 64, 0, 1)
	for i := 0; i < 100; i++ {
		if len(in.Tick()) != 0 {
			t.Fatal("zero-rate injector produced packets")
		}
	}
}

func TestInjectorSkipsSelfSlots(t *testing.T) {
	// Transpose fixes the diagonal; those slots must be skipped.
	in := NewInjector(Transpose(64), 64, 1.0, 1)
	m := mesh.New(8, 8)
	for _, inj := range in.Tick() {
		c := m.Coord(inj.Src)
		if c.X == c.Y {
			t.Fatalf("diagonal node %d injected under transpose", inj.Src)
		}
		if inj.Src == inj.Dst {
			t.Fatal("self-directed injection")
		}
	}
}

func TestInjectorPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewInjector(rate=2) did not panic")
		}
	}()
	NewInjector(BitComplement(64), 64, 2, 1)
}

func TestLog2PanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BitComplement(48) did not panic")
		}
	}()
	BitComplement(48)
}

func TestPatternNames(t *testing.T) {
	want := []string{"BitComp", "BitRev", "Shuffle", "Transpose"}
	ps := Patterns(64)
	if len(ps) != len(want) {
		t.Fatalf("Patterns returned %d patterns", len(ps))
	}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Errorf("pattern %d = %s, want %s", i, p.Name(), want[i])
		}
	}
}
