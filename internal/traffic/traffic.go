// Package traffic provides the synthetic workloads of the paper's Fig. 9:
// bit-complement, bit-reverse, shuffle, and transpose permutation patterns,
// plus uniform-random and nearest-neighbour generators, each driven by a
// Bernoulli injection process at a configurable rate.
package traffic

import (
	"fmt"
	"math/rand"

	"phastlane/internal/mesh"
)

// Pattern maps a source node to its destination for permutation traffic.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Dest returns the destination for packets injected at src. For
	// randomised patterns it may differ per call.
	Dest(src mesh.NodeID) mesh.NodeID
}

// bitPattern implements the classic bit-permutation patterns over the
// node-index bits. nodeBits is log2(nodes).
type bitPattern struct {
	name     string
	nodeBits uint
	permute  func(idx, bits uint) uint
}

func (p *bitPattern) Name() string { return p.name }

func (p *bitPattern) Dest(src mesh.NodeID) mesh.NodeID {
	return mesh.NodeID(p.permute(uint(src), p.nodeBits))
}

// log2 returns log2(n) for exact powers of two and panics otherwise: the
// bit-permutation patterns are only defined on power-of-two networks.
func log2(n int) uint {
	bits := uint(0)
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	if 1<<bits != n {
		panic(fmt.Sprintf("traffic: node count %d is not a power of two", n))
	}
	return bits
}

// BitComplement returns the pattern dst = ~src (per-bit complement).
func BitComplement(nodes int) Pattern {
	return &bitPattern{
		name:     "BitComp",
		nodeBits: log2(nodes),
		permute: func(idx, bits uint) uint {
			return (^idx) & ((1 << bits) - 1)
		},
	}
}

// BitReverse returns the pattern that reverses the node-index bits.
func BitReverse(nodes int) Pattern {
	return &bitPattern{
		name:     "BitRev",
		nodeBits: log2(nodes),
		permute: func(idx, bits uint) uint {
			var out uint
			for i := uint(0); i < bits; i++ {
				if idx&(1<<i) != 0 {
					out |= 1 << (bits - 1 - i)
				}
			}
			return out
		},
	}
}

// Shuffle returns the perfect-shuffle pattern: rotate the index bits left
// by one.
func Shuffle(nodes int) Pattern {
	return &bitPattern{
		name:     "Shuffle",
		nodeBits: log2(nodes),
		permute: func(idx, bits uint) uint {
			mask := uint(1<<bits) - 1
			return ((idx << 1) | (idx >> (bits - 1))) & mask
		},
	}
}

// Transpose returns the matrix-transpose pattern: swap the high and low
// halves of the index bits (on the mesh, (x,y) -> (y,x)).
func Transpose(nodes int) Pattern {
	return &bitPattern{
		name:     "Transpose",
		nodeBits: log2(nodes),
		permute: func(idx, bits uint) uint {
			half := bits / 2
			lo := idx & ((1 << half) - 1)
			hi := idx >> half
			return (lo << half) | hi
		},
	}
}

// UniformRandom returns a pattern that picks a uniformly random destination
// different from the source.
func UniformRandom(nodes int, seed int64) Pattern {
	return &uniformPattern{nodes: nodes, rng: rand.New(rand.NewSource(seed))}
}

type uniformPattern struct {
	nodes int
	rng   *rand.Rand
}

func (p *uniformPattern) Name() string { return "Uniform" }

func (p *uniformPattern) Dest(src mesh.NodeID) mesh.NodeID {
	for {
		d := mesh.NodeID(p.rng.Intn(p.nodes))
		if d != src {
			return d
		}
	}
}

// Patterns returns the four Fig. 9 patterns for the given node count in
// paper order.
func Patterns(nodes int) []Pattern {
	return []Pattern{
		BitComplement(nodes),
		BitReverse(nodes),
		Shuffle(nodes),
		Transpose(nodes),
	}
}

// Injector generates packets with Bernoulli timing: each node independently
// injects with probability Rate each cycle.
type Injector struct {
	pattern Pattern
	nodes   int
	rate    float64
	rng     *rand.Rand
	buf     []Injection // reused across Tick calls
}

// NewInjector builds an injector. rate is packets per node per cycle in
// [0, 1].
func NewInjector(p Pattern, nodes int, rate float64, seed int64) *Injector {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("traffic: injection rate %v out of [0,1]", rate))
	}
	return &Injector{pattern: p, nodes: nodes, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Injection describes one generated packet.
type Injection struct {
	Src, Dst mesh.NodeID
}

// Tick returns the injections for one cycle. Self-directed permutation
// slots (e.g. transpose's diagonal) are skipped, as is conventional.
//
// The returned slice is the injector's scratch buffer: it is valid until
// the next Tick call and must not be retained. Steady-state ticks do not
// allocate.
func (in *Injector) Tick() []Injection {
	out := in.buf[:0]
	for n := 0; n < in.nodes; n++ {
		if in.rng.Float64() >= in.rate {
			continue
		}
		src := mesh.NodeID(n)
		dst := in.pattern.Dest(src)
		if dst == src {
			continue
		}
		out = append(out, Injection{Src: src, Dst: dst})
	}
	in.buf = out
	return out
}
