// Package corona implements a Corona-style optical crossbar network
// (Vantrease et al., ISCA 2008) as a comparison substrate: the bus-based
// alternative the paper's introduction and related-work sections argue
// against for snoopy cache-coherent traffic.
//
// Each node owns one multiple-writer single-reader (MWSR) optical data
// channel routed in a snake past every node; a writer must first seize the
// channel's circulating optical token, then modulates the full packet onto
// the owner's channel in a single bus transaction. Broadcasts use one
// shared broadcast channel whose power is split among all readers. The
// model captures the architecture's first-order behaviour: token
// acquisition latency, snake propagation delay, per-channel serialisation,
// and the single broadcast bus that saturates under snoopy request storms
// - the scalability limit Phastlane's switched multicast avoids.
package corona

import (
	"fmt"
	"math/rand"

	"phastlane/internal/mesh"
	"phastlane/internal/photonic"
	"phastlane/internal/power"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
)

// Config parameterises the Corona-style network.
type Config struct {
	// Nodes is the endpoint count (one data channel per node).
	Nodes int
	// RingCycles is the full snake round-trip time in clock cycles;
	// a token needs this long to circulate once.
	RingCycles int
	// TokenTurnaround is the dead time on a channel between one
	// writer releasing the token and the next acquiring it.
	TokenTurnaround int
	// NICEntries is the injection queue capacity per node.
	NICEntries int
	Seed       int64
}

// DefaultConfig sizes the snake for the paper's 16 nm 8x8 die: 64 nodes,
// a ~128 mm snake at 10.45 ps/mm is ~6 cycles at 4 GHz.
func DefaultConfig() Config {
	return Config{
		Nodes:           64,
		RingCycles:      6,
		TokenTurnaround: 2,
		NICEntries:      50,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("corona: %d nodes", c.Nodes)
	}
	if c.RingCycles < 1 || c.TokenTurnaround < 0 {
		return fmt.Errorf("corona: ring %d / turnaround %d", c.RingCycles, c.TokenTurnaround)
	}
	if c.NICEntries < 1 {
		return fmt.Errorf("corona: NIC entries %d", c.NICEntries)
	}
	return nil
}

// request is one queued bus transaction.
type request struct {
	msgID     uint64
	src       mesh.NodeID
	dst       mesh.NodeID // ignored for broadcast
	broadcast bool
	// tokenAt is the earliest cycle the writer can have the channel's
	// token (its random phase alignment with the circulating token).
	tokenAt int64
}

// delivery is a scheduled arrival.
type delivery struct {
	at  int64
	out sim.Delivery
}

// channel is one MWSR bus: its owner reads, everyone writes after seizing
// the token.
type channel struct {
	freeAt int64
	rr     int // round-robin pointer over writers
}

// Network is the Corona-style simulator implementing sim.Network.
type Network struct {
	cfg Config
	rng *rand.Rand
	// queues[n] is node n's injection FIFO.
	queues [][]*request
	// channels[d] carries traffic to reader d; channels[Nodes] is the
	// broadcast bus.
	channels []channel
	inFlight []delivery
	// writing is per-cycle scratch: which nodes already drove a channel.
	writing []bool
	live    int
	run     stats.Run
	cycle   int64
}

var _ sim.Network = (*Network)(nil)

// New builds a Corona-style network; it panics on invalid configuration.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		queues:   make([][]*request, cfg.Nodes),
		channels: make([]channel, cfg.Nodes+1),
		writing:  make([]bool, cfg.Nodes),
	}
}

// Nodes implements sim.Network.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Run implements sim.Network.
func (n *Network) Run() *stats.Run { return &n.run }

// NICFree implements sim.Network.
func (n *Network) NICFree(node mesh.NodeID) int {
	f := n.cfg.NICEntries - len(n.queues[node])
	if f < 0 {
		return 0
	}
	return f
}

// Quiescent implements sim.Network.
func (n *Network) Quiescent() bool { return n.live == 0 && len(n.inFlight) == 0 }

// Inject implements sim.Network.
func (n *Network) Inject(m sim.Message) {
	if free := n.NICFree(m.Src); free <= 0 {
		panic(fmt.Sprintf("corona: inject into full NIC at node %d (%d free entries; check NICFree before Inject)", m.Src, free))
	}
	n.run.Injected++
	r := &request{msgID: m.ID, src: m.Src,
		tokenAt: n.cycle + int64(n.rng.Intn(n.cfg.RingCycles))}
	switch {
	case len(m.Dsts) == 1:
		if m.Dsts[0] == m.Src {
			panic("corona: self-directed message")
		}
		r.dst = m.Dsts[0]
	case len(m.Dsts) == n.cfg.Nodes-1:
		r.broadcast = true
	default:
		panic(fmt.Sprintf("corona: message with %d destinations: only unicast or full broadcast supported", len(m.Dsts)))
	}
	n.queues[m.Src] = append(n.queues[m.Src], r)
	n.live++
}

// propCycles is the snake propagation time from writer to reader: the
// distance along the ring, as a fraction of the full circulation time.
func (n *Network) propCycles(src, dst mesh.NodeID) int64 {
	dist := (int(dst) - int(src) + n.cfg.Nodes) % n.cfg.Nodes
	c := int64(dist) * int64(n.cfg.RingCycles) / int64(n.cfg.Nodes)
	if c < 1 {
		c = 1
	}
	return c
}

// Step implements sim.Network: deliver matured transactions, then let each
// free channel serve its next writer in round-robin token order.
// Deliveries are appended to buf (see sim.Network for the
// buffer-ownership contract).
func (n *Network) Step(buf []sim.Delivery) []sim.Delivery {
	out := buf
	rest := n.inFlight[:0]
	for _, d := range n.inFlight {
		if d.at <= n.cycle {
			out = append(out, d.out)
		} else {
			rest = append(rest, d)
		}
	}
	n.inFlight = rest

	// One write per node per cycle: a node's modulator bank drives one
	// channel at a time. The flag slice is network scratch, reused
	// across cycles.
	writing := n.writing
	for i := range writing {
		writing[i] = false
	}
	for ch := range n.channels {
		n.serveChannel(ch, writing)
	}
	n.run.LeakagePJ += power.LeakagePJ(leakageWPerNode, n.cfg.Nodes, 1, photonic.DefaultClockGHz)
	n.cycle++
	return out
}

// serveChannel grants channel ch to its next eligible writer.
func (n *Network) serveChannel(ch int, writing []bool) {
	c := &n.channels[ch]
	if c.freeAt > n.cycle {
		return
	}
	for k := 0; k < n.cfg.Nodes; k++ {
		writer := (c.rr + k) % n.cfg.Nodes
		if writing[writer] || len(n.queues[writer]) == 0 {
			continue
		}
		head := n.queues[writer][0]
		if head.tokenAt > n.cycle || channelOf(head, n.cfg.Nodes) != ch {
			continue
		}
		// Seize the token and transmit.
		copy(n.queues[writer], n.queues[writer][1:])
		n.queues[writer] = n.queues[writer][:len(n.queues[writer])-1]
		writing[writer] = true
		c.rr = (writer + 1) % n.cfg.Nodes
		c.freeAt = n.cycle + 1 + int64(n.cfg.TokenTurnaround)
		n.transmit(head)
		return
	}
}

// channelOf maps a request to its bus: the reader's channel, or the shared
// broadcast bus.
func channelOf(r *request, nodes int) int {
	if r.broadcast {
		return nodes
	}
	return int(r.dst)
}

// transmit schedules the deliveries and charges energy.
func (n *Network) transmit(r *request) {
	n.live--
	if r.broadcast {
		// The broadcast bus splits its power among all readers;
		// everyone receives after the full snake traversal.
		at := n.cycle + int64(n.cfg.RingCycles)
		for d := 0; d < n.cfg.Nodes; d++ {
			if mesh.NodeID(d) == r.src {
				continue
			}
			n.inFlight = append(n.inFlight, delivery{
				at:  at,
				out: sim.Delivery{MsgID: r.msgID, Dst: mesh.NodeID(d)},
			})
		}
		n.run.OpticalEnergyPJ += broadcastTransmitPJ(n.cfg.Nodes)
		n.run.ElectricalEnergyPJ += float64(n.cfg.Nodes-1) * receivePJ
		n.run.LinkTraversals += int64(n.cfg.RingCycles)
		return
	}
	n.inFlight = append(n.inFlight, delivery{
		at:  n.cycle + n.propCycles(r.src, r.dst),
		out: sim.Delivery{MsgID: r.msgID, Dst: r.dst},
	})
	n.run.OpticalEnergyPJ += unicastTransmitPJ
	n.run.ElectricalEnergyPJ += receivePJ + modulatePJ
	n.run.LinkTraversals += n.propCycles(r.src, r.dst)
}

// Energy constants: the snake has no waveguide crossings, so unicast
// transmission is cheap; the broadcast bus pays an N-way power split.
const (
	unicastTransmitPJ = 12.0
	receivePJ         = 5.7
	modulatePJ        = 7.1
)

// leakageWPerNode covers the per-node receiver front-ends and queues.
const leakageWPerNode = 0.006

func broadcastTransmitPJ(nodes int) float64 {
	return unicastTransmitPJ * float64(nodes) / 4
}
