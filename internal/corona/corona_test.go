package corona

import (
	"math/rand"
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

func stepUntilQuiescent(t *testing.T, n *Network, limit int) []sim.Delivery {
	t.Helper()
	var all []sim.Delivery
	for i := 0; i < limit; i++ {
		all = append(all, n.Step(nil)...)
		if n.Quiescent() {
			return all
		}
	}
	t.Fatalf("network not quiescent after %d cycles", limit)
	return nil
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.RingCycles = 0 },
		func(c *Config) { c.TokenTurnaround = -1 },
		func(c *Config) { c.NICEntries = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUnicastDelivery(t *testing.T) {
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 3, Dsts: []mesh.NodeID{40}, Op: packet.OpSynthetic})
	ds := stepUntilQuiescent(t, n, 100)
	if len(ds) != 1 || ds[0].Dst != 40 || ds[0].MsgID != 1 {
		t.Fatalf("deliveries = %v", ds)
	}
}

func TestUnicastLatencyBounded(t *testing.T) {
	// Uncontended: token wait < RingCycles, propagation <= RingCycles.
	cfg := DefaultConfig()
	n := New(cfg)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{32}, Op: packet.OpSynthetic})
	for i := 0; i < 3*cfg.RingCycles+2; i++ {
		if ds := n.Step(nil); len(ds) == 1 {
			return
		}
	}
	t.Fatal("uncontended unicast exceeded the token+propagation bound")
}

func TestBroadcastDelivery(t *testing.T) {
	n := New(DefaultConfig())
	var all []mesh.NodeID
	for i := mesh.NodeID(0); i < 64; i++ {
		if i != 5 {
			all = append(all, i)
		}
	}
	n.Inject(sim.Message{ID: 1, Src: 5, Dsts: all, Op: packet.OpWriteReq})
	got := map[mesh.NodeID]int{}
	for _, d := range stepUntilQuiescent(t, n, 100) {
		got[d.Dst]++
	}
	if len(got) != 63 {
		t.Fatalf("broadcast reached %d nodes", len(got))
	}
	for node, c := range got {
		if c != 1 {
			t.Errorf("node %d received %d copies", node, c)
		}
	}
}

func TestChannelSerialisation(t *testing.T) {
	// Two writers to the same reader must serialise on the token: the
	// second delivery is at least TokenTurnaround+1 after the first
	// grant.
	cfg := DefaultConfig()
	cfg.RingCycles = 1 // eliminate token-phase randomness
	n := New(cfg)
	n.Inject(sim.Message{ID: 1, Src: 1, Dsts: []mesh.NodeID{10}, Op: packet.OpSynthetic})
	n.Inject(sim.Message{ID: 2, Src: 2, Dsts: []mesh.NodeID{10}, Op: packet.OpSynthetic})
	arrival := map[uint64]int{}
	for i := 0; i < 60; i++ {
		for _, d := range n.Step(nil) {
			arrival[d.MsgID] = i
		}
		if len(arrival) == 2 {
			break
		}
	}
	if len(arrival) != 2 {
		t.Fatal("not all packets delivered")
	}
	gap := arrival[2] - arrival[1]
	if gap < 0 {
		gap = -gap
	}
	if gap < cfg.TokenTurnaround {
		t.Errorf("same-channel deliveries only %d cycles apart, want >= %d", gap, cfg.TokenTurnaround)
	}
}

func TestBroadcastBusBottleneck(t *testing.T) {
	// Many simultaneous broadcasts share ONE bus: total completion time
	// grows linearly with the broadcast count - the scalability limit
	// Phastlane's switched multicast avoids.
	cfg := DefaultConfig()
	n := New(cfg)
	const sources = 16
	var all [][]mesh.NodeID
	for s := mesh.NodeID(0); s < sources; s++ {
		var dsts []mesh.NodeID
		for i := mesh.NodeID(0); i < 64; i++ {
			if i != s {
				dsts = append(dsts, i)
			}
		}
		all = append(all, dsts)
	}
	for s := 0; s < sources; s++ {
		n.Inject(sim.Message{ID: uint64(s + 1), Src: mesh.NodeID(s), Dsts: all[s], Op: packet.OpWriteReq})
	}
	ds := stepUntilQuiescent(t, n, 1000)
	if len(ds) != sources*63 {
		t.Fatalf("delivered %d, want %d", len(ds), sources*63)
	}
	// Lower bound: each broadcast holds the bus for 1+turnaround.
	if got := n.cycle; got < int64(sources*(1+cfg.TokenTurnaround)) {
		t.Errorf("completion at cycle %d, impossibly fast for a single bus", got)
	}
}

func TestExactOnceUnderLoad(t *testing.T) {
	n := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	injected := map[uint64]mesh.NodeID{}
	delivered := map[uint64]int{}
	var id uint64
	for cycle := 0; cycle < 300; cycle++ {
		for node := mesh.NodeID(0); node < 64; node++ {
			if rng.Float64() < 0.1 && n.NICFree(node) > 0 {
				dst := mesh.NodeID(rng.Intn(64))
				if dst == node {
					continue
				}
				id++
				injected[id] = dst
				n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
			}
		}
		for _, d := range n.Step(nil) {
			delivered[d.MsgID]++
		}
	}
	for i := 0; i < 5000 && !n.Quiescent(); i++ {
		for _, d := range n.Step(nil) {
			delivered[d.MsgID]++
		}
	}
	if len(delivered) != len(injected) {
		t.Fatalf("delivered %d distinct, injected %d", len(delivered), len(injected))
	}
	for m, c := range delivered {
		if c != 1 || injected[m] == 0 && c != 1 {
			t.Fatalf("msg %d delivered %d times", m, c)
		}
	}
}

func TestNICCapacityAndPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NICEntries = 1
	n := New(cfg)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	if n.NICFree(0) != 0 {
		t.Error("NICFree should be 0")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("full NIC", func() {
		n.Inject(sim.Message{ID: 2, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	})
	n2 := New(DefaultConfig())
	mustPanic("self-directed", func() {
		n2.Inject(sim.Message{ID: 1, Src: 2, Dsts: []mesh.NodeID{2}, Op: packet.OpSynthetic})
	})
	mustPanic("partial multicast", func() {
		n2.Inject(sim.Message{ID: 1, Src: 2, Dsts: []mesh.NodeID{3, 4}, Op: packet.OpSynthetic})
	})
}

func TestEnergyAccumulates(t *testing.T) {
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	stepUntilQuiescent(t, n, 100)
	if n.Run().OpticalEnergyPJ <= 0 || n.Run().ElectricalEnergyPJ <= 0 || n.Run().LeakagePJ <= 0 {
		t.Error("energy not accumulating")
	}
}
