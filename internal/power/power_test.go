package power

import (
	"testing"
	"testing/quick"
)

func TestElectricalHopEnergy(t *testing.T) {
	e := NewElectrical()
	if e.HopPJ() <= 0 {
		t.Fatal("non-positive hop energy")
	}
	sum := e.BufferWritePJ + e.BufferReadPJ + e.ArbitrationPJ + e.CrossbarPJ + e.LinkPJ
	if e.HopPJ() != sum {
		t.Errorf("HopPJ %v != component sum %v", e.HopPJ(), sum)
	}
	if e.LeakageWPerRouter <= 0 {
		t.Error("electrical leakage must be positive")
	}
}

func TestOpticalProvisioningGrowsWithHops(t *testing.T) {
	o4 := NewOptical(64, 4, 0.98)
	o5 := NewOptical(64, 5, 0.98)
	o8 := NewOptical(64, 8, 0.98)
	if !(o4.TransmitMulticastPJ < o5.TransmitMulticastPJ && o5.TransmitMulticastPJ < o8.TransmitMulticastPJ) {
		t.Errorf("multicast provisioning not increasing: %v %v %v",
			o4.TransmitMulticastPJ, o5.TransmitMulticastPJ, o8.TransmitMulticastPJ)
	}
	if o4.TransmitUnicastPJ >= o4.TransmitMulticastPJ {
		t.Error("unicast provisioning should be below multicast (no tap compensation)")
	}
}

func TestOpticalLeakageBelowElectrical(t *testing.T) {
	o := NewOptical(64, 4, 0.98)
	e := NewElectrical()
	if o.LeakageWPerRouter*4 > e.LeakageWPerRouter {
		t.Errorf("optical leakage %v not well below electrical %v",
			o.LeakageWPerRouter, e.LeakageWPerRouter)
	}
}

func TestTransmitSegmentMonotone(t *testing.T) {
	o := NewOptical(64, 4, 0.98)
	f := func(linksRaw, tapsRaw uint8) bool {
		links := 1 + int(linksRaw)%7
		taps := int(tapsRaw) % links
		base := o.TransmitSegmentPJ(links, taps)
		longer := o.TransmitSegmentPJ(links+1, taps)
		if longer <= base {
			return false
		}
		if taps+1 < links {
			if o.TransmitSegmentPJ(links, taps+1) <= base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransmitSegmentBelowProvisioned(t *testing.T) {
	// Any actual segment within the hop budget costs no more than the
	// worst-case provisioning.
	o := NewOptical(64, 4, 0.98)
	for links := 1; links <= 4; links++ {
		for taps := 0; taps < links; taps++ {
			if got := o.TransmitSegmentPJ(links, taps); got > o.TransmitMulticastPJ+1e-9 {
				t.Errorf("segment(%d,%d) = %v exceeds provisioned %v",
					links, taps, got, o.TransmitMulticastPJ)
			}
		}
	}
	// The full-length, fully-tapped segment equals the multicast
	// provisioning.
	if got, want := o.TransmitSegmentPJ(4, 3), o.TransmitMulticastPJ; !almost(got, want) {
		t.Errorf("max segment %v != provisioned %v", got, want)
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

func TestTransmitSegmentClampsTaps(t *testing.T) {
	o := NewOptical(64, 4, 0.98)
	// taps >= links is clamped to links-1 rather than rejected, since
	// callers count taps defensively.
	if got, want := o.TransmitSegmentPJ(3, 99), o.TransmitSegmentPJ(3, 2); got != want {
		t.Errorf("tap clamp: %v != %v", got, want)
	}
}

func TestTransmitSegmentPanicsOnZeroLinks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero-link segment")
		}
	}()
	NewOptical(64, 4, 0.98).TransmitSegmentPJ(0, 0)
}

func TestLeakagePJ(t *testing.T) {
	// 1 W x 64 routers for 4e9 cycles at 4 GHz = 64 J = 6.4e13 pJ.
	got := LeakagePJ(1.0, 64, 4_000_000_000, 4.0)
	if !almost(got, 6.4e13) {
		t.Errorf("LeakagePJ = %v, want 6.4e13", got)
	}
	if LeakagePJ(0.5, 64, 0, 4.0) != 0 {
		t.Error("zero cycles should leak nothing")
	}
}

func TestNewOpticalPanicsOnBadHops(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on maxHops 0")
		}
	}()
	NewOptical(64, 0, 0.98)
}

// The Fig. 11 energy asymmetry: one electrical flit-hop costs several times
// an optical in-flight router traversal (which is passive - only endpoints
// pay receive/modulate energy).
func TestHopEnergyAsymmetry(t *testing.T) {
	e := NewElectrical()
	o := NewOptical(64, 4, 0.98)
	perHopOptical := o.TransmitSegmentPJ(4, 0) / 4 // laser share per link
	if e.HopPJ() < 5*perHopOptical {
		t.Errorf("electrical hop %v pJ not >= 5x optical per-link laser %v pJ",
			e.HopPJ(), perHopOptical)
	}
}
