// Package power provides the energy accounting used for the paper's Fig. 11
// comparison: per-event dynamic energies plus static leakage for the
// electrical baseline router (CACTI / Balfour-Dally style) and for the
// hybrid optical router (electrical receivers, drivers and buffers plus the
// provisioned laser transmit power, after Kirman et al.).
//
// The constants are parameterised for 16 nm, 1.0 V, 4 GHz operation. The
// paper's power claims are relative (optical consumes >=70-80% less;
// the 8-hop network is markedly costlier than 4/5-hop); any internally
// consistent choice of absolute constants inside published ranges preserves
// those relationships, which the calibration tests pin down.
package power

import (
	"fmt"
	"math"

	"phastlane/internal/packet"
	"phastlane/internal/photonic"
)

// Per-bit energies at 16 nm (picojoules per bit).
const (
	bufferWritePJPerBit = 0.050
	bufferReadPJPerBit  = 0.050
	crossbarPJPerBit    = 0.040 // 20x4 matrix with input speedup 4
	linkPJPerBitPerMM   = 0.055
	receiverPJPerBit    = 0.008 // optical receive: detector + TIA + latch
	modulatorPJPerBit   = 0.010 // electrical drive of a ring modulator
	// Phastlane's blocked-packet buffers are small and single-ported;
	// they cost less per access than the baseline's multi-ported VC
	// buffers.
	opticalBufferPJPerBit = 0.020
)

// flitBits is the single-flit packet width (payload + control).
const flitBits = packet.PayloadBits + packet.MaxGroups*packet.GroupBits

// Electrical models the baseline virtual-channel router (Table 2).
type Electrical struct {
	// Per-event dynamic energies, pJ.
	BufferWritePJ float64
	BufferReadPJ  float64
	CrossbarPJ    float64
	LinkPJ        float64
	ArbitrationPJ float64
	// LeakageWPerRouter is static power per router: the 10x4 VC
	// buffers, allocators and crossbar dominate.
	LeakageWPerRouter float64
}

// NewElectrical returns the 16 nm baseline energy model.
func NewElectrical() Electrical {
	return Electrical{
		BufferWritePJ:     bufferWritePJPerBit * flitBits,
		BufferReadPJ:      bufferReadPJPerBit * flitBits,
		CrossbarPJ:        crossbarPJPerBit * flitBits,
		LinkPJ:            linkPJPerBitPerMM * flitBits * photonic.TilePitchMM,
		ArbitrationPJ:     2.0,
		LeakageWPerRouter: 0.080,
	}
}

// HopPJ returns the dynamic energy of one flit-hop through the router and
// its outgoing link: buffer write and read, allocation, crossbar, link.
func (e Electrical) HopPJ() float64 {
	return e.BufferWritePJ + e.BufferReadPJ + e.ArbitrationPJ + e.CrossbarPJ + e.LinkPJ
}

// Optical models the Phastlane router's energy: an electrical side
// (receivers, modulator drivers, blocked-packet buffers) plus the optical
// transmit power the laser must provision for the configured worst case.
type Optical struct {
	// TransmitUnicastPJ is the laser energy for one transmission cycle
	// of a unicast packet's wavelengths at the provisioned power.
	TransmitUnicastPJ float64
	// TransmitMulticastPJ adds the tap-compensation: multicast packets
	// must survive power extraction at every intermediate router.
	TransmitMulticastPJ float64
	// ModulatePJ is the electrical energy driving the source (or
	// relaunching buffer's) modulators for one packet.
	ModulatePJ float64
	// ReceivePJ is the electrical energy of receiving a packet
	// (ejection, multicast tap, or capture into a buffer).
	ReceivePJ float64
	// BufferWritePJ and BufferReadPJ cover blocked-packet buffering.
	BufferWritePJ float64
	BufferReadPJ  float64
	// DropNoticePJ is the seven-bit return-path signal.
	DropNoticePJ float64
	// wdm and crossingEff parameterise per-segment transmit energy.
	wdm         int
	crossingEff float64
	// LeakageWPerRouter is static power per router: the five small
	// electrical buffers and receiver front-ends. Far below the
	// electrical baseline's, whose forty VC buffers, speculative
	// allocators and wide crossbar leak continuously.
	LeakageWPerRouter float64
}

// NewOptical derives the Phastlane energy model for a network provisioned
// to cover maxHops links per cycle at the given WDM degree and crossing
// efficiency. Higher maxHops raises the per-wavelength laser power
// exponentially (more crossings and taps before regeneration), which is
// why the 8-hop configuration spends far more transmit power (Fig. 11).
func NewOptical(wdm, maxHops int, crossingEff float64) Optical {
	if maxHops < 1 {
		panic(fmt.Sprintf("power: maxHops %d", maxHops))
	}
	lambdas := float64(photonic.LambdasPerPacket(wdm))
	cycleNS := 1.0 / photonic.DefaultClockGHz
	// Unicast provisioning: survive crossing losses only.
	uniEff := photonic.PathEfficiency(wdm, maxHops, crossingEff) /
		multicastRetention(maxHops)
	uniMW := photonic.ReceiverSensitivityMW / uniEff
	// Multicast provisioning: also survive the per-router taps.
	mcMW := photonic.RequiredInputPowerMW(wdm, maxHops, crossingEff)
	return Optical{
		wdm:                 wdm,
		crossingEff:         crossingEff,
		TransmitUnicastPJ:   uniMW * lambdas * cycleNS,
		TransmitMulticastPJ: mcMW * lambdas * cycleNS,
		ModulatePJ:          modulatorPJPerBit * flitBits,
		ReceivePJ:           receiverPJPerBit * flitBits,
		BufferWritePJ:       opticalBufferPJPerBit * flitBits,
		BufferReadPJ:        opticalBufferPJPerBit * flitBits,
		DropNoticePJ:        1.0,
		LeakageWPerRouter:   0.008,
	}
}

// multicastRetention is the fraction of power remaining after the
// intermediate routers' multicast taps.
func multicastRetention(maxHops int) float64 {
	r := 1.0
	for i := 0; i < maxHops-1; i++ {
		r *= 1 - photonic.MulticastTapFraction
	}
	return r
}

// TransmitPJ selects the worst-case per-launch laser energy by packet
// kind: what the laser must be provisioned for.
func (o Optical) TransmitPJ(multicast bool) float64 {
	if multicast {
		return o.TransmitMulticastPJ
	}
	return o.TransmitUnicastPJ
}

// TransmitSegmentPJ is the laser energy actually spent by one transmission
// covering the given number of links with the given number of intermediate
// multicast taps: the injected power must overcome the crossing losses of
// every router traversed plus each tap's power extraction. This is the
// quantity Fig. 11 averages - "the average transmit power increases
// sharply due to additional crossing losses and the additional receivers
// to drive" in longer-reach configurations.
func (o Optical) TransmitSegmentPJ(links, taps int) float64 {
	if links < 1 {
		panic(fmt.Sprintf("power: segment of %d links", links))
	}
	if taps < 0 || taps >= links {
		taps = links - 1
	}
	crossings := links * photonic.CrossingsPerRouter(o.wdm)
	eff := math.Pow(o.crossingEff, float64(crossings))
	for i := 0; i < taps; i++ {
		eff *= 1 - photonic.MulticastTapFraction
	}
	mw := photonic.ReceiverSensitivityMW / eff
	lambdas := float64(photonic.LambdasPerPacket(o.wdm))
	return mw * lambdas / photonic.DefaultClockGHz
}

// LeakagePJ converts a router-count x cycle-count exposure to static
// energy at the given clock.
func LeakagePJ(leakageWPerRouter float64, routers int, cycles int64, clockGHz float64) float64 {
	seconds := float64(cycles) / (clockGHz * 1e9)
	return leakageWPerRouter * float64(routers) * seconds * 1e12
}
