// Package exp is the parallel experiment engine behind the paper's
// evaluation grids. The figures of Sections 3 and 5 are embarrassingly
// parallel products of (network config x traffic pattern x injection rate x
// seed); exp fans such a slice of independent experiment points out over a
// bounded worker pool and hands the results back in submission order, so
// callers observe exactly what a serial loop would have produced.
//
// Determinism is the design centre: experiment functions must derive all
// randomness from their own point (typically via DeriveSeed of a base seed
// and the point index), never from shared state or scheduling order. Under
// that contract, Run and RunUntil yield bit-identical results for any
// worker count, which the test suite pins down by comparing workers=1
// against workers=8 runs.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one engine invocation.
type Options struct {
	// Workers is the pool size; values below 1 mean runtime.GOMAXPROCS(0)
	// (one worker per available core).
	Workers int
	// Progress, when non-nil, is called after each point completes with
	// the number of completed points and the total submitted so far.
	// Calls are serialised by the engine; the callback needs no locking
	// of its own, but it runs on worker goroutines and must not block
	// for long.
	Progress func(done, total int)
}

// workers resolves the effective pool size.
func (o Options) workers() int {
	if o.Workers >= 1 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DeriveSeed maps (base seed, point index) to a decorrelated per-point
// seed using the splitmix64 finaliser. Points of one grid get seeds that
// are deterministic functions of their index alone, so a grid evaluated in
// parallel, in reverse, or resumed halfway sees the same random streams as
// a serial sweep. The mapping avoids returning 0 because several PRNGs
// treat a zero seed as degenerate.
func DeriveSeed(base int64, index uint64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return int64(z)
}

// Run evaluates fn over every item on a worker pool and returns the
// results in item order. fn receives the item's index and value; it must
// be safe for concurrent invocation and derive any randomness from its
// arguments only. A panicking fn is re-panicked on the caller's goroutine
// after the pool drains, so failures surface where the grid was launched.
func Run[T, R any](items []T, fn func(i int, item T) R, opt Options) []R {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results
	}
	w := opt.workers()
	if w > len(items) {
		w = len(items)
	}
	if w == 1 {
		// Serial fast path: no goroutines, same results by contract.
		for i, it := range items {
			results[i] = fn(i, it)
			if opt.Progress != nil {
				opt.Progress(i+1, len(items))
			}
		}
		return results
	}

	var (
		next     atomic.Int64
		done     int
		panicked atomic.Value
		progress sync.Mutex
		wg       sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &poolPanic{val: r})
						}
					}()
					results[i] = fn(i, items[i])
				}()
				if opt.Progress != nil {
					progress.Lock()
					done++
					opt.Progress(done, len(items))
					progress.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.(*poolPanic).val)
	}
	return results
}

// poolPanic wraps a worker panic value for transport across goroutines.
type poolPanic struct{ val any }

// Cut inspects an ordered prefix of results and decides whether the grid
// can stop early. It returns the number of leading results to keep and
// whether that cutoff is final; once final, no later item can appear in
// the output. Cut is always called with a contiguous prefix, exactly as a
// serial loop would have observed it.
type Cut[R any] func(prefix []R) (keep int, stop bool)

// RunUntil evaluates fn over items in order with chunked speculative
// dispatch, honouring an early-exit predicate without giving up
// determinism. Items are dispatched in chunks of about twice the worker
// count; after each chunk completes, cut examines the full ordered prefix
// computed so far. When cut stops, the kept prefix is returned and no
// further chunks launch. Because every item is evaluated independently,
// the kept results are bit-identical to a serial loop applying the same
// predicate — parallelism only risks evaluating a bounded number of
// points past the cutoff, never changing their values.
func RunUntil[T, R any](items []T, fn func(i int, item T) R, cut Cut[R], opt Options) []R {
	if cut == nil {
		return Run(items, fn, opt)
	}
	w := opt.workers()
	chunk := 2 * w
	if chunk < 1 {
		chunk = 1
	}
	var results []R
	var submitted int
	for start := 0; start < len(items); start += chunk {
		end := start + chunk
		if end > len(items) {
			end = len(items)
		}
		sub := opt
		if opt.Progress != nil {
			base := submitted
			sub.Progress = func(done, _ int) {
				opt.Progress(base+done, len(items))
			}
		}
		results = append(results, Run(items[start:end], func(i int, it T) R {
			return fn(start+i, it)
		}, sub)...)
		submitted = end
		if keep, stop := cut(results); stop {
			if keep < 0 {
				keep = 0
			}
			if keep > len(results) {
				keep = len(results)
			}
			return results[:keep]
		}
	}
	return results
}

// Logger returns a Progress callback that writes "label: done/total
// (elapsed)" lines to out, rate-limited to one line per interval (plus
// the final line). It is the standard progress reporter of the cmd/
// drivers; pass it to Options.Progress.
func Logger(out io.Writer, label string, interval time.Duration) func(done, total int) {
	start := time.Now()
	var mu sync.Mutex
	var last time.Time
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done < total && now.Sub(last) < interval {
			return
		}
		last = now
		fmt.Fprintf(out, "%s: %d/%d points (%.1fs elapsed)\n",
			label, done, total, now.Sub(start).Seconds())
	}
}
