package exp

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	for i := uint64(0); i < 100; i++ {
		if DeriveSeed(42, i) != DeriveSeed(42, i) {
			t.Fatalf("DeriveSeed(42, %d) not stable", i)
		}
	}
}

func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := map[int64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		s := DeriveSeed(1, i)
		if s == 0 {
			t.Fatalf("DeriveSeed(1, %d) = 0", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(1, %d) collides with index %d", i, j)
		}
		seen[s] = i
	}
	// Adjacent base seeds must not produce overlapping streams.
	if DeriveSeed(1, 1) == DeriveSeed(2, 0) {
		t.Error("trivially shifted streams collide")
	}
}

func TestRunOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 8, 200} {
		got := Run(items, func(i, it int) int {
			if i != it {
				t.Errorf("fn called with index %d for item %d", i, it)
			}
			return it * it
		}, Options{Workers: workers})
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(nil, func(int, int) int { return 1 }, Options{}); len(got) != 0 {
		t.Errorf("Run(nil) returned %d results", len(got))
	}
}

func TestRunWorkerCountsAgree(t *testing.T) {
	items := make([]uint64, 64)
	for i := range items {
		items[i] = uint64(i)
	}
	fn := func(i int, it uint64) int64 { return DeriveSeed(7, it) }
	serial := Run(items, fn, Options{Workers: 1})
	parallel := Run(items, fn, Options{Workers: 8})
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result[%d]: workers=1 %d vs workers=8 %d", i, serial[i], parallel[i])
		}
	}
}

func TestRunProgressMonotonic(t *testing.T) {
	items := make([]int, 50)
	var calls []int
	Run(items, func(i, _ int) int { return i }, Options{
		Workers: 4,
		Progress: func(done, total int) {
			if total != 50 {
				t.Errorf("total = %d, want 50", total)
			}
			calls = append(calls, done)
		},
	})
	if len(calls) != 50 {
		t.Fatalf("progress called %d times, want 50", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence broken at call %d: got %d", i, d)
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		if fmt.Sprint(r) != "boom 13" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	items := make([]int, 32)
	Run(items, func(i, _ int) int {
		if i == 13 {
			panic("boom 13")
		}
		return i
	}, Options{Workers: 4})
}

// serialUntil is the reference semantics RunUntil must reproduce: evaluate
// in order, consult cut after every point.
func serialUntil[T, R any](items []T, fn func(int, T) R, cut Cut[R]) []R {
	var out []R
	for i, it := range items {
		out = append(out, fn(i, it))
		if keep, stop := cut(out); stop {
			return out[:keep]
		}
	}
	return out
}

func TestRunUntilMatchesSerial(t *testing.T) {
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	fn := func(i, it int) int { return it * 3 }
	// Stop once two consecutive values exceed 60, keeping both - the
	// shape of sim.Sweep's saturation exit.
	cut := func(prefix []int) (int, bool) {
		run := 0
		for i, v := range prefix {
			if v <= 60 {
				run = 0
				continue
			}
			if run++; run >= 2 {
				return i + 1, true
			}
		}
		return len(prefix), false
	}
	want := serialUntil(items, fn, cut)
	for _, workers := range []int{1, 3, 8} {
		got := RunUntil(items, fn, cut, Options{Workers: workers})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunUntilNoStopRunsEverything(t *testing.T) {
	items := []int{1, 2, 3, 4, 5}
	got := RunUntil(items, func(_, it int) int { return it }, func(p []int) (int, bool) {
		return len(p), false
	}, Options{Workers: 2})
	if len(got) != len(items) {
		t.Fatalf("got %d results, want %d", len(got), len(items))
	}
}

func TestRunUntilNilCut(t *testing.T) {
	got := RunUntil([]int{1, 2, 3}, func(_, it int) int { return it }, nil, Options{Workers: 2})
	if len(got) != 3 {
		t.Fatalf("nil cut: got %d results, want 3", len(got))
	}
}

func TestRunUntilProgressCoversAllPoints(t *testing.T) {
	items := make([]int, 17)
	var max, calls int
	RunUntil(items, func(i, _ int) int { return i }, func(p []int) (int, bool) {
		return len(p), false
	}, Options{Workers: 3, Progress: func(done, total int) {
		calls++
		if total != 17 {
			t.Errorf("total = %d, want 17", total)
		}
		if done > max {
			max = done
		}
	}})
	if calls != 17 || max != 17 {
		t.Fatalf("progress calls=%d max=%d, want 17/17", calls, max)
	}
}

func TestLogger(t *testing.T) {
	var b strings.Builder
	log := Logger(&b, "grid", time.Hour)
	log(1, 3) // first line always prints
	log(2, 3) // suppressed: within interval, not final
	log(3, 3) // final: always printed
	out := b.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("logger wrote %q, want first and final lines only", out)
	}
	if !strings.Contains(out, "grid: 1/3 points") || !strings.Contains(out, "grid: 3/3 points") {
		t.Fatalf("logger wrote %q", out)
	}
}

func TestLoggerImmediateInterval(t *testing.T) {
	var b strings.Builder
	log := Logger(&b, "grid", 0)
	log(1, 2)
	log(2, 2)
	if strings.Count(b.String(), "\n") != 2 {
		t.Fatalf("logger wrote %q, want two lines", b.String())
	}
}
