// Determinism tests pinning the engine's core guarantee on the real
// simulators: a (config x rate) grid evaluated with workers=1 and
// workers=8 must produce byte-identical results, for both the Phastlane
// optical network and the electrical baseline. These live in an external
// test package because sim itself builds on exp.
package exp_test

import (
	"fmt"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/exp"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// gridPoint is one (config, rate) cell of the determinism grid.
type gridPoint struct {
	name  string
	build func(seed int64) sim.Network
	rate  float64
}

// opticalGrid is a 3-config x 3-rate grid of Phastlane variants.
func opticalGrid() []gridPoint {
	var pts []gridPoint
	for _, hops := range []int{4, 5, 8} {
		h := hops
		for _, rate := range []float64{0.02, 0.10, 0.20} {
			pts = append(pts, gridPoint{
				name: fmt.Sprintf("Optical%d@%.2f", h, rate),
				build: func(seed int64) sim.Network {
					cfg := core.DefaultConfig()
					cfg.MaxHops = h
					cfg.Seed = seed
					return core.New(cfg)
				},
				rate: rate,
			})
		}
	}
	return pts
}

// electricalGrid is a 3-config x 3-rate grid of baseline variants.
func electricalGrid() []gridPoint {
	var pts []gridPoint
	for _, delay := range []int{2, 3, 4} {
		d := delay
		for _, rate := range []float64{0.02, 0.10, 0.20} {
			pts = append(pts, gridPoint{
				name: fmt.Sprintf("Electrical%d@%.2f", d, rate),
				build: func(seed int64) sim.Network {
					cfg := electrical.DefaultConfig()
					cfg.RouterDelay = d
					cfg.Seed = seed
					return electrical.New(cfg)
				},
				rate: rate,
			})
		}
	}
	return pts
}

// runGrid evaluates the grid with the given worker count and renders each
// point's full result to a string, so comparisons are byte-exact.
func runGrid(pts []gridPoint, workers int) []string {
	return exp.Run(pts, func(i int, p gridPoint) string {
		seed := exp.DeriveSeed(99, uint64(i))
		r := sim.RunRate(p.build(seed), sim.RateConfig{
			Pattern: traffic.Transpose(64),
			Rate:    p.rate, Warmup: 200, Measure: 800, Seed: seed,
		})
		return fmt.Sprintf("%s: offered=%d injected=%d delivered=%d mean=%.17g p99=%.17g sat=%v drops=%d energy=%.17g",
			p.name, r.Offered, r.Run.Injected, r.Run.Delivered,
			r.Run.Latency.Mean(), r.Run.Latency.Percentile(99), r.Saturated,
			r.Run.Drops, r.Run.TotalEnergyPJ())
	}, exp.Options{Workers: workers})
}

func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, tc := range []struct {
		family string
		pts    []gridPoint
	}{
		{"phastlane", opticalGrid()},
		{"electrical", electricalGrid()},
	} {
		t.Run(tc.family, func(t *testing.T) {
			serial := runGrid(tc.pts, 1)
			parallel := runGrid(tc.pts, 8)
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Errorf("point %d differs:\n  workers=1: %s\n  workers=8: %s", i, serial[i], parallel[i])
				}
			}
			// Repeat runs must also be stable (no hidden global state).
			again := runGrid(tc.pts, 8)
			for i := range parallel {
				if parallel[i] != again[i] {
					t.Errorf("point %d unstable across repeated parallel runs", i)
				}
			}
		})
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	newNet := func() sim.Network {
		cfg := core.DefaultConfig()
		cfg.Seed = 11
		return core.New(cfg)
	}
	rates := []float64{0.02, 0.05, 0.10}
	serial := sim.SweepParallel(newNet, traffic.Shuffle(64), rates, 11, exp.Options{Workers: 1})
	parallel := sim.SweepParallel(newNet, traffic.Shuffle(64), rates, 11, exp.Options{Workers: 8})
	if fmt.Sprintf("%#v", serial) != fmt.Sprintf("%#v", parallel) {
		t.Errorf("sweep differs across worker counts:\n  workers=1: %#v\n  workers=8: %#v", serial, parallel)
	}
}
