// Package fault is the deterministic fault-injection subsystem shared by
// the Phastlane optical simulator and the electrical baseline. A Plan
// schedules permanent and transient hardware faults — dead links, stuck
// routers, electrical buffer-slot failures, and control-bit corruption
// from resonator drift — and is compiled per network instance into an
// Injector the simulators consult on their hot paths.
//
// Determinism is the design centre, matching internal/exp: every fault in
// a plan is explicit, RandomPlan derives placements from a seed with
// splitmix64, and control corruption is a pure hash of (seed, cycle, node,
// message), so two runs of the same plan produce bit-identical event
// streams regardless of scheduling. A nil or empty plan costs nothing:
// the simulators guard every consultation behind a nil-injector check,
// the same discipline internal/obs uses for tracers.
package fault

import (
	"encoding/json"
	"fmt"
	"strings"

	"phastlane/internal/mesh"
)

// Kind classifies a scheduled fault.
type Kind int

// Fault kinds.
const (
	// DeadLink disables the directed link out of Node toward Dir (and,
	// because optical waveguides and their drop-signal return paths fail
	// together, the simulators treat the reverse direction independently:
	// schedule both if the whole physical channel dies).
	DeadLink Kind = iota
	// StuckRouter freezes the router at Node: it cannot launch, eject,
	// or accept traffic, and every link touching it is unusable while
	// the fault is active.
	StuckRouter
	// BufferSlots disables Slots entries of the electrical buffer on
	// port Dir of Node (mesh.Local addresses the NIC injection queue;
	// in the electrical baseline the slots are virtual channels).
	BufferSlots

	numKinds
)

// String names the kind using the spec-DSL keyword.
func (k Kind) String() string {
	switch k {
	case DeadLink:
		return "dead-link"
	case StuckRouter:
		return "stuck"
	case BufferSlots:
		return "slots"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// kindByName maps the spec/JSON keyword back to the kind.
func kindByName(s string) (Kind, bool) {
	switch s {
	case "dead-link":
		return DeadLink, true
	case "stuck":
		return StuckRouter, true
	case "slots":
		return BufferSlots, true
	}
	return 0, false
}

// Fault is one scheduled fault. The zero Until means the fault is
// permanent; otherwise the fault is transient and heals at cycle Until
// (exclusive: the hardware works again from Until on).
type Fault struct {
	Kind Kind
	Node mesh.NodeID
	// Dir is the affected link (DeadLink) or buffer port (BufferSlots);
	// ignored for StuckRouter.
	Dir mesh.Dir
	// Slots is how many buffer entries fail (BufferSlots only).
	Slots int
	// From is the activation cycle; Until the heal cycle (0 = never).
	From, Until int64
}

// validate checks one fault against the mesh dimensions.
func (f Fault) validate(m *mesh.Mesh) error {
	if f.Node < 0 || int(f.Node) >= m.Nodes() {
		return fmt.Errorf("fault: node %d outside the %d-node mesh", f.Node, m.Nodes())
	}
	if f.From < 0 {
		return fmt.Errorf("fault: %s@%d activates at negative cycle %d", f.Kind, f.Node, f.From)
	}
	if f.Until != 0 && f.Until <= f.From {
		return fmt.Errorf("fault: %s@%d heals at %d, not after activation at %d", f.Kind, f.Node, f.Until, f.From)
	}
	switch f.Kind {
	case DeadLink:
		if f.Dir < 0 || f.Dir >= mesh.NumLinkDirs {
			return fmt.Errorf("fault: dead-link@%d with non-link direction %s", f.Node, f.Dir)
		}
		if _, ok := m.Neighbor(f.Node, f.Dir); !ok {
			return fmt.Errorf("fault: dead-link@%d:%s points off the mesh edge", f.Node, f.Dir)
		}
	case StuckRouter:
		// No direction.
	case BufferSlots:
		if f.Dir < 0 || f.Dir >= mesh.NumDirs {
			return fmt.Errorf("fault: slots@%d with direction %s", f.Node, f.Dir)
		}
		if f.Slots < 1 {
			return fmt.Errorf("fault: slots@%d:%s disables %d entries", f.Node, f.Dir, f.Slots)
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", int(f.Kind))
	}
	return nil
}

// Plan is a complete fault schedule plus the corruption model. The zero
// value (and nil) is the empty plan: no faults, no corruption.
type Plan struct {
	// Seed drives the corruption hash and nothing else; fault placement
	// is explicit in Faults.
	Seed int64
	// CorruptRate is the per-hop probability that resonator drift
	// corrupts a packet's control group at a router, in [0, 1).
	CorruptRate float64
	Faults      []Fault
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Faults) == 0 && p.CorruptRate == 0)
}

// Validate checks the plan against a width x height mesh.
func (p *Plan) Validate(width, height int) error {
	if p == nil {
		return nil
	}
	if width < 1 || height < 1 {
		return fmt.Errorf("fault: plan validated against %dx%d mesh", width, height)
	}
	if p.CorruptRate < 0 || p.CorruptRate >= 1 {
		return fmt.Errorf("fault: corruption rate %v outside [0,1)", p.CorruptRate)
	}
	m := mesh.New(width, height)
	for i, f := range p.Faults {
		if err := f.validate(m); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// faultJSON is the wire form of one fault: kind and direction as strings.
type faultJSON struct {
	Kind  string `json:"kind"`
	Node  int    `json:"node"`
	Dir   string `json:"dir,omitempty"`
	Slots int    `json:"slots,omitempty"`
	From  int64  `json:"from,omitempty"`
	Until int64  `json:"until,omitempty"`
}

// planJSON is the wire form of a plan.
type planJSON struct {
	Seed        int64       `json:"seed,omitempty"`
	CorruptRate float64     `json:"corrupt_rate,omitempty"`
	Faults      []faultJSON `json:"faults,omitempty"`
}

// MarshalJSON encodes the plan with symbolic kinds and directions.
func (p *Plan) MarshalJSON() ([]byte, error) {
	out := planJSON{Seed: p.Seed, CorruptRate: p.CorruptRate}
	for _, f := range p.Faults {
		jf := faultJSON{Kind: f.Kind.String(), Node: int(f.Node), Slots: f.Slots, From: f.From, Until: f.Until}
		if f.Kind != StuckRouter {
			jf.Dir = f.Dir.String()
		}
		out.Faults = append(out.Faults, jf)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the wire form; unknown kinds or directions are
// errors, missing directions default to Local (valid only where a kind
// ignores them).
func (p *Plan) UnmarshalJSON(data []byte) error {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	plan := Plan{Seed: in.Seed, CorruptRate: in.CorruptRate}
	for i, jf := range in.Faults {
		k, ok := kindByName(jf.Kind)
		if !ok {
			return fmt.Errorf("fault %d: unknown kind %q", i, jf.Kind)
		}
		f := Fault{Kind: k, Node: mesh.NodeID(jf.Node), Dir: mesh.Local, Slots: jf.Slots, From: jf.From, Until: jf.Until}
		if jf.Dir != "" {
			d, ok := dirByName(jf.Dir)
			if !ok {
				return fmt.Errorf("fault %d: unknown direction %q", i, jf.Dir)
			}
			f.Dir = d
		}
		plan.Faults = append(plan.Faults, f)
	}
	*p = plan
	return nil
}

// ParseJSON decodes and structurally checks a JSON plan. Mesh-dependent
// validation (node ranges, edge links) happens in Validate.
func ParseJSON(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan JSON: %w", err)
	}
	return &p, nil
}

// dirByName parses the single-letter direction names mesh.Dir.String uses.
func dirByName(s string) (mesh.Dir, bool) {
	switch strings.ToUpper(s) {
	case "N":
		return mesh.North, true
	case "E":
		return mesh.East, true
	case "S":
		return mesh.South, true
	case "W":
		return mesh.West, true
	case "L":
		return mesh.Local, true
	}
	return 0, false
}
