package fault

import (
	"fmt"
	"math"
	"sort"

	"phastlane/internal/mesh"
)

// window is one active interval [from, until).
type window struct {
	from, until int64
}

func (w window) active(cycle int64) bool { return cycle >= w.from && cycle < w.until }

// slotWindow is a buffer-slot failure: slots entries lost while active.
type slotWindow struct {
	window
	slots int
}

// Effect is the outcome of one control-corruption event.
type Effect int

// Corruption effects.
const (
	// EffectNone: the packet's control bits survived this hop.
	EffectNone Effect = iota
	// EffectDrop: the router detected garbage control and dropped the
	// packet, returning the drop signal to the responsible sender.
	EffectDrop
	// EffectMisroute: the drifted resonator steered the packet off its
	// route; the router captures it and the owner must re-route.
	EffectMisroute
)

// Transition is one fault boundary: a fault activating or healing.
type Transition struct {
	Cycle int64
	Kind  Kind
	Node  mesh.NodeID
	Dir   mesh.Dir
	// Start is true at activation, false at heal.
	Start bool
}

// Injector is a plan compiled against one mesh instance: dense per-link
// and per-node window tables the simulators query on their hot paths.
// Each network arms its own Injector (the transition cursor is per-run
// state); the underlying Plan is never mutated and may be shared.
//
// All query methods are safe on a nil receiver and report "no fault", but
// the simulators skip even the call when no plan is armed.
type Injector struct {
	nodes int
	// links[node*NumLinkDirs+dir] holds the dead windows of the directed
	// link out of node toward dir, including windows inherited from
	// stuck routers at either endpoint.
	links [][]window
	// stuck[node] holds the node's stuck windows.
	stuck [][]window
	// slots[node*NumDirs+dir] holds buffer-slot failures of the port.
	slots [][]slotWindow
	// corruptThreshold is CorruptRate scaled to the uint64 range; 0
	// disables corruption. seed feeds the corruption hash.
	corruptThreshold uint64
	seed             uint64

	transitions []Transition
	cursor      int
}

// Arm compiles the plan against m. The empty plan arms to nil, so callers
// can keep a single nil check on hot paths.
func (p *Plan) Arm(m *mesh.Mesh) (*Injector, error) {
	if p.Empty() {
		return nil, nil
	}
	if err := p.Validate(m.Width(), m.Height()); err != nil {
		return nil, err
	}
	in := &Injector{
		nodes: m.Nodes(),
		links: make([][]window, m.Nodes()*mesh.NumLinkDirs),
		stuck: make([][]window, m.Nodes()),
		slots: make([][]slotWindow, m.Nodes()*mesh.NumDirs),
		seed:  splitmix64(uint64(p.Seed) ^ 0x9e3779b97f4a7c15),
	}
	if p.CorruptRate > 0 {
		in.corruptThreshold = uint64(p.CorruptRate * math.MaxUint64)
	}
	for _, f := range p.Faults {
		w := window{from: f.From, until: f.Until}
		if w.until == 0 {
			w.until = math.MaxInt64
		}
		switch f.Kind {
		case DeadLink:
			in.addLink(f.Node, f.Dir, w)
			in.transition(f, w)
		case StuckRouter:
			in.stuck[f.Node] = append(in.stuck[f.Node], w)
			// A stuck router takes down every link touching it, in
			// both directions, so routing and transit checks need
			// only the link table.
			for d := mesh.Dir(0); d < mesh.NumLinkDirs; d++ {
				nb, ok := m.Neighbor(f.Node, d)
				if !ok {
					continue
				}
				in.addLink(f.Node, d, w)
				in.addLink(nb, d.Opposite(), w)
			}
			in.transition(f, w)
		case BufferSlots:
			idx := int(f.Node)*mesh.NumDirs + int(f.Dir)
			in.slots[idx] = append(in.slots[idx], slotWindow{window: w, slots: f.Slots})
			in.transition(f, w)
		default:
			return nil, fmt.Errorf("fault: unknown kind %d", int(f.Kind))
		}
	}
	sort.SliceStable(in.transitions, func(a, b int) bool {
		return in.transitions[a].Cycle < in.transitions[b].Cycle
	})
	return in, nil
}

// addLink records a dead window on the directed link (node, dir).
func (in *Injector) addLink(node mesh.NodeID, dir mesh.Dir, w window) {
	idx := int(node)*mesh.NumLinkDirs + int(dir)
	in.links[idx] = append(in.links[idx], w)
}

// transition records the activation (and heal, for transient faults)
// boundaries of f for event emission.
func (in *Injector) transition(f Fault, w window) {
	in.transitions = append(in.transitions, Transition{Cycle: w.from, Kind: f.Kind, Node: f.Node, Dir: f.Dir, Start: true})
	if w.until != math.MaxInt64 {
		in.transitions = append(in.transitions, Transition{Cycle: w.until, Kind: f.Kind, Node: f.Node, Dir: f.Dir, Start: false})
	}
}

// LinkDown reports whether the directed link out of node toward d is
// unusable at cycle (dead, or touching a stuck router).
func (in *Injector) LinkDown(cycle int64, node mesh.NodeID, d mesh.Dir) bool {
	if in == nil {
		return false
	}
	for _, w := range in.links[int(node)*mesh.NumLinkDirs+int(d)] {
		if w.active(cycle) {
			return true
		}
	}
	return false
}

// NodeStuck reports whether the router at node is frozen at cycle.
func (in *Injector) NodeStuck(cycle int64, node mesh.NodeID) bool {
	if in == nil {
		return false
	}
	for _, w := range in.stuck[node] {
		if w.active(cycle) {
			return true
		}
	}
	return false
}

// LostSlots returns how many buffer entries of port d at node are failed
// at cycle.
func (in *Injector) LostSlots(cycle int64, node mesh.NodeID, d mesh.Dir) int {
	if in == nil {
		return 0
	}
	lost := 0
	for _, w := range in.slots[int(node)*mesh.NumDirs+int(d)] {
		if w.active(cycle) {
			lost += w.slots
		}
	}
	return lost
}

// Corrupt reports whether resonator drift corrupts the control group of
// msgID arriving at node this cycle, and with what effect. The decision
// is a pure hash of (plan seed, cycle, node, msgID): independent of
// evaluation order, so armed runs are reproducible event for event.
func (in *Injector) Corrupt(cycle int64, node mesh.NodeID, msgID uint64) Effect {
	if in == nil || in.corruptThreshold == 0 {
		return EffectNone
	}
	h := splitmix64(in.seed ^ uint64(cycle)*0xbf58476d1ce4e5b9 ^ uint64(node)*0x94d049bb133111eb ^ msgID*0xd6e8feb86659fd93)
	if h >= in.corruptThreshold {
		return EffectNone
	}
	if splitmix64(h)&1 == 0 {
		return EffectDrop
	}
	return EffectMisroute
}

// Step hands the caller every fault boundary due at or before cycle, once,
// in schedule order — the simulators surface these as observability
// events. Cycles must be visited in non-decreasing order (one call per
// Step, as the simulators do).
func (in *Injector) Step(cycle int64, emit func(Transition)) {
	if in == nil {
		return
	}
	for in.cursor < len(in.transitions) && in.transitions[in.cursor].Cycle <= cycle {
		if emit != nil {
			emit(in.transitions[in.cursor])
		}
		in.cursor++
	}
}

// Pending reports whether any transition at or before cycle has not been
// delivered yet — the cheap guard the simulators use before calling Step.
func (in *Injector) Pending(cycle int64) bool {
	return in != nil && in.cursor < len(in.transitions) && in.transitions[in.cursor].Cycle <= cycle
}

// splitmix64 is the splitmix64 finaliser, the same mixing function the
// experiment engine uses for per-point seed derivation.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
