package fault

import (
	"fmt"

	"phastlane/internal/mesh"
)

// RandomSpec sizes a randomly-placed fault plan.
type RandomSpec struct {
	// DeadLinks is how many distinct directed links die.
	DeadLinks int
	// StuckRouters is how many distinct routers freeze.
	StuckRouters int
	// SlotFaults is how many (node, port) buffer-slot failures occur;
	// each disables one entry.
	SlotFaults int
	// CorruptRate is the per-hop control-corruption probability.
	CorruptRate float64
}

// RandomPlan places rs's faults uniformly over a width x height mesh,
// deterministically from seed: the same (seed, dims, spec) always yields
// the same plan, so degradation sweeps are reproducible run to run. All
// faults are permanent from cycle 0. Placements are distinct per
// category; the function panics when a category asks for more faults than
// the mesh has places (a configuration error).
func RandomPlan(seed int64, width, height int, rs RandomSpec) *Plan {
	m := mesh.New(width, height)
	p := &Plan{Seed: seed, CorruptRate: rs.CorruptRate}
	state := uint64(seed)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return splitmix64(state)
	}

	// Directed interior links: enumerate once so draws are O(1) and
	// distinct by index.
	type link struct {
		node mesh.NodeID
		dir  mesh.Dir
	}
	var links []link
	for n := 0; n < m.Nodes(); n++ {
		for d := mesh.Dir(0); d < mesh.NumLinkDirs; d++ {
			if _, ok := m.Neighbor(mesh.NodeID(n), d); ok {
				links = append(links, link{mesh.NodeID(n), d})
			}
		}
	}
	for _, l := range drawDistinct(rs.DeadLinks, len(links), next, "dead links") {
		p.Faults = append(p.Faults, Fault{Kind: DeadLink, Node: links[l].node, Dir: links[l].dir})
	}
	for _, n := range drawDistinct(rs.StuckRouters, m.Nodes(), next, "stuck routers") {
		p.Faults = append(p.Faults, Fault{Kind: StuckRouter, Node: mesh.NodeID(n)})
	}
	for _, s := range drawDistinct(rs.SlotFaults, m.Nodes()*mesh.NumDirs, next, "slot faults") {
		p.Faults = append(p.Faults, Fault{
			Kind: BufferSlots, Node: mesh.NodeID(s / mesh.NumDirs), Dir: mesh.Dir(s % mesh.NumDirs), Slots: 1,
		})
	}
	return p
}

// drawDistinct draws count distinct indices from [0, n) using the given
// uniform source, by rejection; index order follows the draw sequence.
func drawDistinct(count, n int, next func() uint64, what string) []int {
	if count > n {
		panic(fmt.Sprintf("fault: %d %s requested but only %d places exist", count, what, n))
	}
	seen := make(map[int]bool, count)
	out := make([]int, 0, count)
	for len(out) < count {
		i := int(next() % uint64(n))
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	return out
}
