package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"phastlane/internal/mesh"
)

func samplePlan() *Plan {
	return &Plan{
		Seed:        7,
		CorruptRate: 0.001,
		Faults: []Fault{
			{Kind: DeadLink, Node: 12, Dir: mesh.North},
			{Kind: DeadLink, Node: 9, Dir: mesh.East, From: 100, Until: 500},
			// Dir is ignored for stuck routers; both parsers
			// canonicalise it to the Local placeholder.
			{Kind: StuckRouter, Node: 5, Dir: mesh.Local, From: 1000},
			{Kind: BufferSlots, Node: 3, Dir: mesh.Local, Slots: 2},
		},
	}
}

func TestSpecRoundTrip(t *testing.T) {
	p := samplePlan()
	spec := p.Spec()
	back, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("spec round trip:\n  plan %+v\n  spec %q\n  back %+v", p, spec, back)
	}
}

func TestParseSpecExamples(t *testing.T) {
	p, err := ParseSpec(" seed=7; corrupt=0.25 ;dead-link@12:N#100-500; stuck@5 ;slots@3:L=1#0-200 ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.CorruptRate != 0.25 || len(p.Faults) != 3 {
		t.Fatalf("parsed %+v", p)
	}
	want := []Fault{
		{Kind: DeadLink, Node: 12, Dir: mesh.North, From: 100, Until: 500},
		{Kind: StuckRouter, Node: 5, Dir: mesh.Local},
		{Kind: BufferSlots, Node: 3, Dir: mesh.Local, Slots: 1, Until: 200},
	}
	// ParseSpec leaves Dir at the Local placeholder for stuck routers.
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("faults %+v, want %+v", p.Faults, want)
	}
	if empty, err := ParseSpec("  "); err != nil || !empty.Empty() {
		t.Fatalf("blank spec: %+v, %v", empty, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"dead-link@12",        // missing direction
		"stuck@5:N",           // stuck routers take no direction
		"slots@3:L",           // missing slot count
		"dead-link@12:N=2",    // slot count on a non-slots fault
		"dead-link@12:Q",      // unknown direction
		"dead-link@twelve:N",  // bad node
		"seed=x",              // bad seed
		"corrupt=1.5",         // rate out of range
		"slots@3:L=x",         // bad slot count
		"dead-link@1:N#x",     // bad window start
		"dead-link@1:N#5-x",   // bad window end
		"wat@3:N",             // unknown kind
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := samplePlan()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("ParseJSON(%s): %v", data, err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("JSON round trip:\n  plan %+v\n  json %s\n  back %+v", p, data, back)
	}
	if _, err := ParseJSON([]byte(`{"faults":[{"kind":"warp","node":1}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseJSON([]byte(`{"faults":[{"kind":"dead-link","node":1,"dir":"Q"}]}`)); err == nil {
		t.Error("unknown direction accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := (*Plan)(nil).Validate(8, 8); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	if err := samplePlan().Validate(8, 8); err != nil {
		t.Errorf("sample plan: %v", err)
	}
	bad := []Plan{
		{CorruptRate: 1},
		{CorruptRate: -0.1},
		{Faults: []Fault{{Kind: DeadLink, Node: 64, Dir: mesh.North}}},   // off mesh
		{Faults: []Fault{{Kind: DeadLink, Node: 0, Dir: mesh.South}}},    // edge link (node 0 has no south neighbor)
		{Faults: []Fault{{Kind: DeadLink, Node: 1, Dir: mesh.Local}}},    // not a link direction
		{Faults: []Fault{{Kind: BufferSlots, Node: 1, Dir: mesh.North}}}, // zero slots
		{Faults: []Fault{{Kind: StuckRouter, Node: 1, From: -1}}},        // negative start
		{Faults: []Fault{{Kind: StuckRouter, Node: 1, From: 5, Until: 5}}},
		{Faults: []Fault{{Kind: Kind(99), Node: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(8, 8); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestArmEmptyPlan(t *testing.T) {
	for _, p := range []*Plan{nil, {}, {Seed: 3}} {
		in, err := p.Arm(mesh.New(4, 4))
		if err != nil || in != nil {
			t.Fatalf("Arm(%+v) = %v, %v; want nil, nil", p, in, err)
		}
	}
	// All queries are nil-receiver safe and report no fault.
	var in *Injector
	if in.LinkDown(0, 0, mesh.East) || in.NodeStuck(0, 0) || in.LostSlots(0, 0, mesh.Local) != 0 {
		t.Error("nil injector reports faults")
	}
	if in.Corrupt(0, 0, 1) != EffectNone {
		t.Error("nil injector corrupts")
	}
	if in.Pending(1 << 40) {
		t.Error("nil injector has pending transitions")
	}
	in.Step(0, nil)
}

func TestInjectorWindows(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: DeadLink, Node: 9, Dir: mesh.East, From: 100, Until: 500},
	}}
	in, err := p.Arm(mesh.New(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cycle int64
		down  bool
	}{{0, false}, {99, false}, {100, true}, {499, true}, {500, false}} {
		if got := in.LinkDown(tc.cycle, 9, mesh.East); got != tc.down {
			t.Errorf("LinkDown(%d) = %v, want %v", tc.cycle, got, tc.down)
		}
	}
	if in.LinkDown(200, 9, mesh.West) || in.LinkDown(200, 10, mesh.East) {
		t.Error("unrelated links report down")
	}
}

func TestStuckRouterKillsAdjacentLinks(t *testing.T) {
	m := mesh.New(8, 8)
	p := &Plan{Faults: []Fault{{Kind: StuckRouter, Node: 27}}}
	in, err := p.Arm(m)
	if err != nil {
		t.Fatal(err)
	}
	if !in.NodeStuck(0, 27) || in.NodeStuck(0, 26) {
		t.Fatal("NodeStuck wrong")
	}
	for d := mesh.Dir(0); d < mesh.NumLinkDirs; d++ {
		nb, ok := m.Neighbor(27, d)
		if !ok {
			continue
		}
		if !in.LinkDown(0, 27, d) {
			t.Errorf("link out of stuck node toward %s alive", d)
		}
		if !in.LinkDown(0, nb, d.Opposite()) {
			t.Errorf("link into stuck node from %d alive", nb)
		}
	}
}

func TestLostSlotsAccumulate(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: BufferSlots, Node: 3, Dir: mesh.Local, Slots: 2},
		{Kind: BufferSlots, Node: 3, Dir: mesh.Local, Slots: 1, From: 50, Until: 60},
	}}
	in, err := p.Arm(mesh.New(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.LostSlots(0, 3, mesh.Local); got != 2 {
		t.Errorf("LostSlots(0) = %d, want 2", got)
	}
	if got := in.LostSlots(55, 3, mesh.Local); got != 3 {
		t.Errorf("LostSlots(55) = %d, want 3", got)
	}
	if got := in.LostSlots(55, 3, mesh.North); got != 0 {
		t.Errorf("other port lost %d", got)
	}
}

func TestCorruptDeterministicAndRated(t *testing.T) {
	p := &Plan{Seed: 42, CorruptRate: 0.01}
	arm := func() *Injector {
		in, err := p.Arm(mesh.New(8, 8))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := arm(), arm()
	hits := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		cycle, node, msg := int64(i%977), mesh.NodeID(i%64), uint64(i)
		ea := a.Corrupt(cycle, node, msg)
		if eb := b.Corrupt(cycle, node, msg); ea != eb {
			t.Fatalf("corruption not a pure function at draw %d: %v vs %v", i, ea, eb)
		}
		if ea != EffectNone {
			hits++
		}
	}
	rate := float64(hits) / draws
	if rate < 0.005 || rate > 0.02 {
		t.Errorf("observed corruption rate %v far from configured 0.01", rate)
	}
}

func TestTransitions(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: DeadLink, Node: 9, Dir: mesh.East, From: 100, Until: 500},
		{Kind: StuckRouter, Node: 5},
	}}
	in, err := p.Arm(mesh.New(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	var got []Transition
	collect := func(tr Transition) { got = append(got, tr) }
	if !in.Pending(0) {
		t.Fatal("cycle-0 activation not pending")
	}
	in.Step(0, collect)
	if len(got) != 1 || got[0].Kind != StuckRouter || !got[0].Start {
		t.Fatalf("cycle 0 transitions: %+v", got)
	}
	if in.Pending(50) {
		t.Error("pending between boundaries")
	}
	in.Step(250, collect)
	in.Step(600, collect)
	if len(got) != 3 || !got[1].Start || got[2].Start {
		t.Fatalf("transitions: %+v", got)
	}
	if in.Pending(1 << 40) {
		t.Error("transitions left after drain")
	}
}

func TestRandomPlanDeterministicAndValid(t *testing.T) {
	rs := RandomSpec{DeadLinks: 6, StuckRouters: 2, SlotFaults: 4, CorruptRate: 0.001}
	a := RandomPlan(11, 8, 8, rs)
	b := RandomPlan(11, 8, 8, rs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if err := a.Validate(8, 8); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	c := RandomPlan(12, 8, 8, rs)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if got := len(a.Faults); got != 12 {
		t.Fatalf("fault count %d, want 12", got)
	}
}
