package fault

import (
	"reflect"
	"testing"

	"phastlane/internal/mesh"
)

// FuzzParseSpec drives the flag DSL parser with arbitrary input: it must
// never panic, and any spec it accepts must render (Spec) and re-parse to
// the identical plan, and survive mesh validation without panicking.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=7;corrupt=0.001")
	f.Add("dead-link@12:N;dead-link@9:E#100-500")
	f.Add("stuck@5#1000;slots@3:L=2;slots@3:E=1#0-200")
	f.Add("dead-link@-1:N#-5--3")
	f.Add(";;; ;")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseSpec(spec)
		if err != nil {
			return
		}
		_ = p.Validate(8, 8) // must not panic, errors are fine
		rendered := p.Spec()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendered %q fails to re-parse: %v", spec, rendered, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("spec %q -> %q round trip changed the plan:\n%+v\n%+v", spec, rendered, p, back)
		}
	})
}

// FuzzParseJSON drives the JSON plan parser with arbitrary bytes: no
// panics, and accepted plans must survive a marshal/parse round trip and
// an Arm against a mesh (when they validate).
func FuzzParseJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed":7,"corrupt_rate":0.001}`))
	f.Add([]byte(`{"faults":[{"kind":"dead-link","node":12,"dir":"N"}]}`))
	f.Add([]byte(`{"faults":[{"kind":"stuck","node":5,"from":1000}]}`))
	f.Add([]byte(`{"faults":[{"kind":"slots","node":3,"dir":"L","slots":2,"from":0,"until":200}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseJSON(data)
		if err != nil {
			return
		}
		out, err := p.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted %q but cannot re-marshal: %v", data, err)
		}
		back, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("re-marshalled %s fails to parse: %v", out, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("JSON round trip changed the plan:\n%+v\n%+v", p, back)
		}
		if p.Validate(8, 8) == nil {
			if _, err := p.Arm(mesh.New(8, 8)); err != nil {
				t.Fatalf("validated plan fails to arm: %v", err)
			}
		}
	})
}
