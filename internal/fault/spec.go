package fault

import (
	"fmt"
	"strconv"
	"strings"

	"phastlane/internal/mesh"
)

// ParseSpec parses the compact fault-plan DSL used by command-line flags.
// A spec is a semicolon-separated list of items:
//
//	seed=7                     corruption-hash seed
//	corrupt=0.001              per-hop control-corruption probability
//	dead-link@12:N             permanent dead link out of node 12 north
//	dead-link@12:N#100-500     transient: active cycles [100,500)
//	stuck@5                    permanently stuck router 5
//	stuck@5#1000               router 5 stuck from cycle 1000 on
//	slots@3:E=2                2 failed buffer entries on port E of node 3
//	slots@3:L=1#0-200          NIC slot fault, healed at cycle 200
//
// Whitespace around items is ignored; an empty spec is the empty plan.
// ParseSpec checks structure only — validate the result against a mesh
// with Plan.Validate.
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		switch {
		case strings.HasPrefix(item, "seed="):
			v, err := strconv.ParseInt(item[len("seed="):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed in %q: %v", item, err)
			}
			p.Seed = v
		case strings.HasPrefix(item, "corrupt="):
			v, err := strconv.ParseFloat(item[len("corrupt="):], 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad corruption rate in %q: %v", item, err)
			}
			if v < 0 || v >= 1 {
				return nil, fmt.Errorf("fault: corruption rate %v outside [0,1)", v)
			}
			p.CorruptRate = v
		default:
			f, err := parseFaultItem(item)
			if err != nil {
				return nil, err
			}
			p.Faults = append(p.Faults, f)
		}
	}
	return p, nil
}

// parseFaultItem parses one "kind@node[:dir][=slots][#from[-until]]" item.
func parseFaultItem(item string) (Fault, error) {
	kindStr, rest, ok := strings.Cut(item, "@")
	if !ok {
		return Fault{}, fmt.Errorf("fault: %q is not kind@node[...]", item)
	}
	kind, ok := kindByName(kindStr)
	if !ok {
		return Fault{}, fmt.Errorf("fault: unknown kind %q in %q", kindStr, item)
	}
	f := Fault{Kind: kind, Dir: mesh.Local}
	// Split off the optional #from[-until] window first.
	rest, window, hasWindow := cutLast(rest, '#')
	if hasWindow {
		fromStr, untilStr, hasUntil := strings.Cut(window, "-")
		v, err := strconv.ParseInt(fromStr, 10, 64)
		if err != nil {
			return Fault{}, fmt.Errorf("fault: bad window start in %q: %v", item, err)
		}
		f.From = v
		if hasUntil {
			u, err := strconv.ParseInt(untilStr, 10, 64)
			if err != nil {
				return Fault{}, fmt.Errorf("fault: bad window end in %q: %v", item, err)
			}
			f.Until = u
		}
	}
	// Then the optional =slots count.
	rest, slotsStr, hasSlots := cutLast(rest, '=')
	if hasSlots != (kind == BufferSlots) {
		return Fault{}, fmt.Errorf("fault: %q: slot count is required for slots faults and invalid elsewhere", item)
	}
	if hasSlots {
		v, err := strconv.Atoi(slotsStr)
		if err != nil {
			return Fault{}, fmt.Errorf("fault: bad slot count in %q: %v", item, err)
		}
		f.Slots = v
	}
	// Finally node[:dir].
	nodeStr, dirStr, hasDir := strings.Cut(rest, ":")
	if hasDir != (kind != StuckRouter) {
		return Fault{}, fmt.Errorf("fault: %q: a direction is required for %s faults and invalid for stuck routers", item, kind)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return Fault{}, fmt.Errorf("fault: bad node in %q: %v", item, err)
	}
	f.Node = mesh.NodeID(node)
	if hasDir {
		d, ok := dirByName(dirStr)
		if !ok {
			return Fault{}, fmt.Errorf("fault: unknown direction %q in %q", dirStr, item)
		}
		f.Dir = d
	}
	return f, nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s string, sep byte) (before, after string, found bool) {
	if i := strings.LastIndexByte(s, sep); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}

// Spec renders the plan in the DSL ParseSpec accepts, so plans round-trip
// through flags and log lines.
func (p *Plan) Spec() string {
	if p == nil {
		return ""
	}
	var items []string
	if p.Seed != 0 {
		items = append(items, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.CorruptRate != 0 {
		items = append(items, fmt.Sprintf("corrupt=%g", p.CorruptRate))
	}
	for _, f := range p.Faults {
		var b strings.Builder
		fmt.Fprintf(&b, "%s@%d", f.Kind, f.Node)
		if f.Kind != StuckRouter {
			fmt.Fprintf(&b, ":%s", f.Dir)
		}
		if f.Kind == BufferSlots {
			fmt.Fprintf(&b, "=%d", f.Slots)
		}
		if f.From != 0 || f.Until != 0 {
			fmt.Fprintf(&b, "#%d", f.From)
			if f.Until != 0 {
				fmt.Fprintf(&b, "-%d", f.Until)
			}
		}
		items = append(items, b.String())
	}
	return strings.Join(items, ";")
}
