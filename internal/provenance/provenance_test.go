package provenance

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/telemetry"
)

// feed drives one synthetic packet through the tracker: inject, events,
// complete.
func feed(tr *Tracker, id uint64, src mesh.NodeID, inject, complete int64, evs []obs.Event) {
	tr.Inject(id, src, inject)
	for _, e := range evs {
		e.MsgID = id
		tr.Observe(e)
	}
	tr.Complete(id, complete)
}

func opticalFlight(id uint64, inject int64, hops int64) []obs.Event {
	return []obs.Event{
		{Cycle: inject, Kind: obs.KindInject, Node: 0},
		{Cycle: inject + hops, Kind: obs.KindLaunch, Node: 0, Dir: mesh.East},
		{Cycle: inject + hops, Kind: obs.KindEject, Node: 1},
	}
}

func TestTrackerAccumulates(t *testing.T) {
	tr := New(Config{K: 4, Seed: 1, Width: 8, Height: 8})
	feed(tr, 1, 0, 0, 4, opticalFlight(1, 0, 4)) // 5-cycle flight, 4 in NIC
	feed(tr, 2, 0, 10, 12, opticalFlight(2, 10, 2))
	tr.Inject(3, 0, 20)
	tr.Lost(3)
	if tr.Completed() != 2 {
		t.Fatalf("completed = %d, want 2", tr.Completed())
	}
	if tr.Unresolved() != 0 {
		t.Fatalf("unresolved = %d, want 0", tr.Unresolved())
	}
	r := tr.Report("unit")
	if r.Completed != 2 || r.Lost != 1 {
		t.Fatalf("report completed/lost = %d/%d, want 2/1", r.Completed, r.Lost)
	}
	if r.Cohort != 2 {
		t.Fatalf("cohort = %d, want 2", r.Cohort)
	}
	if r.Packets[0].Latency != 5 || r.Packets[1].Latency != 3 {
		t.Fatalf("cohort latencies = %d, %d; want 5, 3 (slowest first)",
			r.Packets[0].Latency, r.Packets[1].Latency)
	}
	if r.AttributionMin < 1 || r.AttributionOverall < 1 {
		t.Fatalf("clean flights must attribute 100%%: min %.3f overall %.3f",
			r.AttributionMin, r.AttributionOverall)
	}
	// Stage cycles of each sampled packet must sum to its latency.
	for _, p := range r.Packets {
		var sum int64
		for _, s := range p.Stages {
			sum += s.Cycles
		}
		if sum != p.Latency {
			t.Fatalf("msg %d stages sum %d != latency %d", p.ID, sum, p.Latency)
		}
	}
}

func TestTrackerIgnoresUntracked(t *testing.T) {
	tr := New(Config{K: 2})
	tr.Observe(obs.Event{Cycle: 1, Kind: obs.KindLaunch, MsgID: 99}) // never injected
	tr.Observe(obs.Event{Cycle: 1, Kind: obs.KindCreditStall, MsgID: 0})
	tr.Complete(99, 5)
	if tr.Completed() != 0 {
		t.Fatalf("untracked completion was counted")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	tr := New(Config{K: 4, Seed: 1, Width: 8, Height: 8})
	feed(tr, 1, 0, 0, 6, []obs.Event{
		{Cycle: 0, Kind: obs.KindInject, Node: 0},
		{Cycle: 3, Kind: obs.KindLaunch, Node: 0, Dir: mesh.East},
		{Cycle: 3, Kind: obs.KindBuffer, Node: 2, Dir: mesh.East},
		{Cycle: 6, Kind: obs.KindLaunch, Node: 2, Dir: mesh.East},
		{Cycle: 6, Kind: obs.KindEject, Node: 4},
	})
	r := tr.Report("json")
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != "json" || back.Completed != 1 || back.Cohort != 1 {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
	// Both the source NIC (node 0) and the interim buffer (node 2) are
	// blamed 3 cycles each; the tie breaks toward the lower node.
	if len(back.Blame) != 2 || back.Blame[0].Node != 0 || back.Blame[1].Node != 2 {
		t.Fatalf("blame round-trip: %+v (want nodes 0 and 2)", back.Blame)
	}
	if back.Blame[1].X != 2 || back.Blame[1].Y != 0 {
		t.Fatalf("blame coords = (%d,%d), want (2,0)", back.Blame[1].X, back.Blame[1].Y)
	}
}

func TestReportFormatRenders(t *testing.T) {
	tr := New(Config{K: 4, Seed: 1, Width: 8, Height: 8})
	feed(tr, 7, 0, 0, 4, opticalFlight(7, 0, 4))
	out := tr.Report("fmt").Format(5)
	for _, want := range []string{"tail-blame report: fmt", "nic-queue", "msg 7", "attribution"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyTrackerReport(t *testing.T) {
	r := New(Config{K: 4}).Report("empty")
	if r.Completed != 0 || r.Cohort != 0 || r.AttributionMin != 0 {
		t.Fatalf("empty report: %+v", r)
	}
	if out := r.Format(5); !strings.Contains(out, "0 completed") {
		t.Fatalf("empty Format():\n%s", out)
	}
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("empty report marshal: %v", err)
	}
}

func TestExportPerfettoValidates(t *testing.T) {
	tr := New(Config{K: 4, Seed: 1, Width: 8, Height: 8})
	feed(tr, 1, 0, 0, 6, []obs.Event{
		{Cycle: 0, Kind: obs.KindInject, Node: 0},
		{Cycle: 3, Kind: obs.KindLaunch, Node: 0, Dir: mesh.East},
		{Cycle: 3, Kind: obs.KindBuffer, Node: 2, Dir: mesh.East},
		{Cycle: 6, Kind: obs.KindLaunch, Node: 2, Dir: mesh.East},
		{Cycle: 6, Kind: obs.KindEject, Node: 4},
	})
	feed(tr, 2, 1, 10, 12, opticalFlight(2, 10, 2))
	var buf bytes.Buffer
	tf := obs.NewTraceFile(&buf)
	tr.ExportPerfetto(tf, 3, "unit")
	if err := tf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	out := buf.String()
	n, err := obs.ValidateTrace(strings.NewReader(out))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	// 1 process_name + 2 thread_name + spans + flows; exact span count
	// depends on the walk, just require a sane floor.
	if n < 8 {
		t.Fatalf("trace has %d objects, want >= 8", n)
	}
	for _, want := range []string{"why:unit slowest packets", `"ph":"X"`, `"ph":"s"`, `"ph":"f"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTrackerRegisterTelemetry(t *testing.T) {
	tr := New(Config{K: 4, Seed: 1})
	reg := telemetry.NewRegistry()
	tr.Register(reg, "8x8 optical")
	feed(tr, 1, 0, 0, 4, opticalFlight(1, 0, 4))
	var dump bytes.Buffer
	reg.WritePrometheus(&dump)
	text := dump.String()
	if !strings.Contains(text, "phastlane_e2e_latency_cycles_8x8_optical") {
		t.Fatalf("missing latency histogram:\n%s", text)
	}
	if !strings.Contains(text, `phastlane_provenance_stage_cycles_total{net="8x8_optical",stage="nic-queue"} 4`) {
		t.Fatalf("missing nic-queue stage counter:\n%s", text)
	}
}

func TestCLIClamp(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterFlags(fs)
	if err := fs.Parse([]string{"-why", "-why-sample=-3", "-why-top=0"}); err != nil {
		t.Fatal(err)
	}
	c.Clamp()
	if !c.Why || c.Sample != DefaultK || c.Top != DefaultTop {
		t.Fatalf("clamped CLI = %+v, want Why with defaults", c)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	c2 := RegisterAlwaysOn(fs2)
	if err := fs2.Parse([]string{"-why-sample=12"}); err != nil {
		t.Fatal(err)
	}
	c2.Clamp()
	if !c2.Why || c2.Sample != 12 {
		t.Fatalf("always-on CLI = %+v", c2)
	}
	if fs2.Lookup("why") != nil {
		t.Fatalf("always-on bundle must not register -why")
	}
}
