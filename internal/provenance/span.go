package provenance

import (
	"fmt"

	"phastlane/internal/mesh"
	"phastlane/internal/obs"
)

// Stage classifies one attributed segment of a packet's life. The
// taxonomy covers both simulators: the optical lifecycle contributes
// backoff, buffer-wait and wire stages, the electrical pipeline
// contributes VC-alloc, switch and link stages, and both share the NIC
// queue and the closing ejection cycle.
type Stage int

// Stages, in rough lifecycle order.
const (
	// StageNICQueue: source-NIC residency — from harness injection (or
	// a retry re-queue) to the departure onto the network, including
	// trace-replay stalls behind a full NIC.
	StageNICQueue Stage = iota
	// StageBackoff: an optical drop's randomized-backoff window, from
	// the drop signal returning to the owner until the retry re-queues.
	StageBackoff
	// StageBufferWait: optical interim-buffer residency — captured at a
	// mid-route router, waiting to win relaunch arbitration.
	StageBufferWait
	// StageVCWait: electrical wait for a downstream virtual-channel
	// grant (includes credit starvation).
	StageVCWait
	// StageSwitchWait: electrical wait from VC grant to crossbar
	// traversal (switch allocation plus the router pipeline).
	StageSwitchWait
	// StageLink: electrical link flight into the next arrival buffer.
	StageLink
	// StageWire: optical waveguide flight (multi-hop transit completes
	// within one cycle, so this stage is usually zero).
	StageWire
	// StageEject: the closing delivery cycle(s) at the destination,
	// from the final arrival-buffer capture to ejection.
	StageEject
	// StageOther: residue no classification rule claims — nonzero only
	// when the event log is incomplete (e.g. merged multicast streams).
	StageOther

	// NumStages bounds Stage for dense arrays.
	NumStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageNICQueue:
		return "nic-queue"
	case StageBackoff:
		return "retry-backoff"
	case StageBufferWait:
		return "buffer-wait"
	case StageVCWait:
		return "vc-alloc-wait"
	case StageSwitchWait:
		return "switch-wait"
	case StageLink:
		return "link"
	case StageWire:
		return "wire"
	case StageEject:
		return "eject"
	case StageOther:
		return "other"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Queueing reports whether the stage is time spent waiting for a
// resource — the stages that blame a router in the tail report. Flight
// stages (wire, link) and the ejection cycle are structural latency.
func (s Stage) Queueing() bool {
	switch s {
	case StageNICQueue, StageBackoff, StageBufferWait, StageVCWait, StageSwitchWait:
		return true
	}
	return false
}

// Span is one attributed [Start, End) segment of a packet's latency.
type Span struct {
	Stage Stage
	// Node is where the time was spent: for queueing stages the router
	// to blame, for flight stages the hop being traversed.
	Node mesh.NodeID
	// Dir is the outgoing direction the packet was waiting on or moving
	// toward (Local when not meaningful).
	Dir        mesh.Dir
	Start, End int64
}

// Cycles is the span's length.
func (sp Span) Cycles() int64 { return sp.End - sp.Start }

// Walk replays a packet's ordered event log, calling fn for every
// non-empty attributed span. inject and complete are the harness-side
// bounds: the harness measures latency as complete-inject+1, and the
// emitted spans partition exactly that interval — each event pair's gap
// is classified by the transition between kinds, and the closing
// delivery cycle lands in StageEject. Gaps no rule claims fall into
// StageOther rather than disappearing, so the spans always sum to the
// measured latency and the attributed fraction is honest.
func Walk(inject, complete int64, events []obs.Event, fn func(Span)) {
	if len(events) == 0 {
		// No event stream (untraceable network): everything is residue.
		fn(Span{Stage: StageOther, Node: -1, Dir: mesh.Local, Start: inject, End: complete + 1})
		return
	}
	prevCycle := inject
	prev := obs.Event{Cycle: inject, Kind: obs.KindInject, Node: events[0].Node, Dir: mesh.Local}
	lastDrop := prev // most recent drop event, for backoff blame
	for _, e := range events {
		if e.Cycle > complete {
			break // stragglers past delivery (merged multicast streams)
		}
		if dt := e.Cycle - prevCycle; dt > 0 {
			st, node, dir := classify(prev, e, lastDrop)
			fn(Span{Stage: st, Node: node, Dir: dir, Start: prevCycle, End: e.Cycle})
		}
		if e.Kind == obs.KindDrop {
			lastDrop = e
		}
		prevCycle, prev = e.Cycle, e
	}
	// The harness counts the delivery cycle inclusively
	// (latency = complete-inject+1): the closing cycle is the ejection.
	fn(Span{Stage: StageEject, Node: prev.Node, Dir: mesh.Local, Start: prevCycle, End: complete + 1})
}

// classify attributes the gap ending at cur by the (prev kind, cur kind)
// transition. The rules mirror the simulators' emission points: see the
// stage taxonomy above and DESIGN.md §12 for the transition table.
func classify(prev, cur, lastDrop obs.Event) (Stage, mesh.NodeID, mesh.Dir) {
	switch cur.Kind {
	case obs.KindInject:
		// Trace replay: readiness to NIC acceptance is a source stall.
		return StageNICQueue, cur.Node, mesh.Local
	case obs.KindLaunch:
		switch prev.Kind {
		case obs.KindInject:
			return StageNICQueue, cur.Node, cur.Dir
		case obs.KindBuffer:
			// Optical interim stop: blamed on the buffering router
			// toward the direction it was waiting to relaunch.
			return StageBufferWait, prev.Node, prev.Dir
		case obs.KindRetry:
			// Re-queued after backoff: NIC residency again.
			return StageNICQueue, cur.Node, cur.Dir
		}
	case obs.KindRetry:
		// The backoff window is blamed on the router that dropped.
		return StageBackoff, lastDrop.Node, lastDrop.Dir
	case obs.KindVCAlloc:
		if prev.Kind == obs.KindBuffer || prev.Kind == obs.KindLaunch {
			return StageVCWait, cur.Node, cur.Dir
		}
	case obs.KindSwitch:
		if prev.Kind == obs.KindVCAlloc {
			return StageSwitchWait, cur.Node, cur.Dir
		}
	case obs.KindBuffer:
		switch prev.Kind {
		case obs.KindSwitch:
			return StageLink, prev.Node, prev.Dir
		case obs.KindLaunch, obs.KindPass:
			return StageWire, prev.Node, prev.Dir
		}
	case obs.KindPass, obs.KindDrop:
		if prev.Kind == obs.KindLaunch || prev.Kind == obs.KindPass {
			return StageWire, prev.Node, prev.Dir
		}
	case obs.KindEject, obs.KindTap:
		switch prev.Kind {
		case obs.KindBuffer:
			// Buffered at the destination, waiting for ejection.
			return StageEject, cur.Node, mesh.Local
		case obs.KindSwitch:
			return StageLink, prev.Node, prev.Dir
		case obs.KindLaunch, obs.KindPass:
			return StageWire, prev.Node, prev.Dir
		}
	}
	return StageOther, cur.Node, mesh.Local
}
