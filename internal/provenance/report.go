package provenance

import (
	"fmt"
	"sort"
	"strings"

	"phastlane/internal/mesh"
	"phastlane/internal/stats"
)

// Report is the tail-blame report of one run: the per-stage latency
// decomposition over all completed packets and over the sampled slowest
// cohort, routers and links ranked by queueing time contributed to the
// sampled slow packets, and the sampled packets themselves with their
// span trees. It round-trips through encoding/json for the CI gate.
type Report struct {
	Name       string `json:"name"`
	Completed  int64  `json:"completed"`
	Lost       int64  `json:"lost"`
	Unresolved int    `json:"unresolved"`

	Latency LatencySummary `json:"latency_cycles"`

	// SampleK is the configured cohort size; Cohort the packets
	// actually retained; TailThreshold the fastest retained latency.
	SampleK       int   `json:"sample_k"`
	Cohort        int   `json:"cohort"`
	TailThreshold int64 `json:"tail_threshold_cycles"`

	// Stages decomposes all completed packets; TailStages only the
	// sampled cohort.
	Stages     []StageShare `json:"stages"`
	TailStages []StageShare `json:"tail_stages"`

	// Blame ranks routers by queueing cycles contributed to sampled
	// slow packets; Links the same per outgoing link.
	Blame []BlameRow `json:"blame"`
	Links []LinkRow  `json:"links"`

	// Packets are the sampled cohort, slowest first.
	Packets []PacketReport `json:"packets"`

	// AttributionOverall is the named-stage share of all completed
	// latency; AttributionMin/Mean summarise the sampled packets.
	AttributionOverall float64 `json:"attribution_overall"`
	AttributionMin     float64 `json:"attribution_min"`
	AttributionMean    float64 `json:"attribution_mean"`
}

// LatencySummary mirrors the harness latency distribution.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// StageShare is one stage's share of a latency total.
type StageShare struct {
	Stage  string  `json:"stage"`
	Cycles int64   `json:"cycles"`
	Share  float64 `json:"share"`
}

// BlameRow ranks one router.
type BlameRow struct {
	Node int `json:"node"`
	X    int `json:"x"`
	Y    int `json:"y"`
	// Label is the topology's node name when the tracker was configured
	// with one (Config.Label); it replaces the x/y columns in tables.
	Label   string  `json:"label,omitempty"`
	Cycles  int64   `json:"cycles"`
	Share   float64 `json:"share"`
	Packets int     `json:"packets"`
}

// LinkRow ranks one outgoing link by queueing time spent waiting on it.
type LinkRow struct {
	Node   int    `json:"node"`
	Dir    string `json:"dir"`
	Cycles int64  `json:"cycles"`
}

// PacketReport is one sampled slow packet.
type PacketReport struct {
	ID         uint64       `json:"id"`
	Src        int          `json:"src"`
	Inject     int64        `json:"inject"`
	Complete   int64        `json:"complete"`
	Latency    int64        `json:"latency"`
	Attributed float64      `json:"attributed"`
	Stages     []StageShare `json:"stages"`
	Spans      []SpanReport `json:"spans"`
}

// SpanReport is one attributed span of a sampled packet.
type SpanReport struct {
	Stage  string `json:"stage"`
	Node   int    `json:"node"`
	Dir    string `json:"dir"`
	Start  int64  `json:"start"`
	Cycles int64  `json:"cycles"`
}

// share divides, tolerating a zero denominator.
func share(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// stageShares renders a dense stage array, dropping empty stages.
func stageShares(totals *[NumStages]int64, whole int64) []StageShare {
	out := make([]StageShare, 0, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		if totals[s] == 0 {
			continue
		}
		out = append(out, StageShare{Stage: s.String(), Cycles: totals[s], Share: share(totals[s], whole)})
	}
	return out
}

// Report aggregates the tracker's state into the tail-blame report.
// The sampled packets' event logs are replayed through the same Walk
// that computed their stage totals, so spans, blame and stage shares
// agree by construction.
func (t *Tracker) Report(name string) *Report {
	r := &Report{
		Name:       name,
		Completed:  t.completed,
		Lost:       t.lost,
		Unresolved: len(t.logs),
		SampleK:    t.cfg.K,
		Latency: LatencySummary{
			Mean: t.lat.Mean(),
			P50:  t.lat.Percentile(50),
			P95:  t.lat.Percentile(95),
			P99:  t.lat.Percentile(99),
			Max:  t.lat.Max(),
		},
		Stages:             stageShares(&t.totals, t.latSum),
		AttributionOverall: 1 - share(t.totals[StageOther], t.latSum),
	}
	if t.latSum == 0 {
		r.AttributionOverall = 0
	}

	cohort := t.res.cohort()
	r.Cohort = len(cohort)
	if len(cohort) > 0 {
		r.TailThreshold = cohort[len(cohort)-1].latency
	}

	var tailTotals [NumStages]int64
	var tailLat int64
	blame := map[mesh.NodeID]*BlameRow{}
	links := map[[2]int]int64{} // {node, dir} -> cycles
	r.AttributionMin = 1
	for _, l := range cohort {
		pr := PacketReport{
			ID: l.id, Src: int(l.src),
			Inject: l.inject, Complete: l.complete, Latency: l.latency,
			Attributed: l.attributed(),
			Stages:     stageShares(&l.stages, l.latency),
		}
		blamed := map[mesh.NodeID]bool{}
		Walk(l.inject, l.complete, l.events, func(sp Span) {
			pr.Spans = append(pr.Spans, SpanReport{
				Stage: sp.Stage.String(), Node: int(sp.Node), Dir: sp.Dir.String(),
				Start: sp.Start, Cycles: sp.Cycles(),
			})
			tailTotals[sp.Stage] += sp.Cycles()
			if !sp.Stage.Queueing() || sp.Node < 0 {
				return
			}
			row, ok := blame[sp.Node]
			if !ok {
				row = &BlameRow{Node: int(sp.Node)}
				if t.cfg.Label != nil {
					row.Label = t.cfg.Label(sp.Node)
				} else if t.cfg.Width > 0 {
					row.X, row.Y = int(sp.Node)%t.cfg.Width, int(sp.Node)/t.cfg.Width
				}
				blame[sp.Node] = row
			}
			row.Cycles += sp.Cycles()
			if !blamed[sp.Node] {
				blamed[sp.Node] = true
				row.Packets++
			}
			if sp.Dir != mesh.Local {
				links[[2]int{int(sp.Node), int(sp.Dir)}] += sp.Cycles()
			}
		})
		tailLat += l.latency
		if pr.Attributed < r.AttributionMin {
			r.AttributionMin = pr.Attributed
		}
		r.AttributionMean += pr.Attributed
		r.Packets = append(r.Packets, pr)
	}
	if len(cohort) > 0 {
		r.AttributionMean /= float64(len(cohort))
	} else {
		r.AttributionMin, r.AttributionMean = 0, 0
	}
	r.TailStages = stageShares(&tailTotals, tailLat)

	var queueTotal int64
	for _, row := range blame {
		queueTotal += row.Cycles
	}
	for _, row := range blame {
		row.Share = share(row.Cycles, queueTotal)
		r.Blame = append(r.Blame, *row)
	}
	sort.Slice(r.Blame, func(i, j int) bool {
		if r.Blame[i].Cycles != r.Blame[j].Cycles {
			return r.Blame[i].Cycles > r.Blame[j].Cycles
		}
		return r.Blame[i].Node < r.Blame[j].Node
	})
	for k, c := range links {
		r.Links = append(r.Links, LinkRow{Node: k[0], Dir: mesh.Dir(k[1]).String(), Cycles: c})
	}
	sort.Slice(r.Links, func(i, j int) bool {
		a, b := r.Links[i], r.Links[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Dir < b.Dir
	})
	return r
}

// StageTable renders the all-packets and tail-cohort decompositions side
// by side.
func (r *Report) StageTable() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Latency decomposition: %s", r.Name),
		Columns: []string{"stage", "cycles", "share", "tail-cycles", "tail-share"},
	}
	tail := map[string]StageShare{}
	for _, s := range r.TailStages {
		tail[s.Stage] = s
	}
	seen := map[string]bool{}
	for _, s := range r.Stages {
		ts := tail[s.Stage]
		t.AddRow(s.Stage, fmt.Sprintf("%d", s.Cycles), pct(s.Share),
			fmt.Sprintf("%d", ts.Cycles), pct(ts.Share))
		seen[s.Stage] = true
	}
	for _, s := range r.TailStages {
		if !seen[s.Stage] {
			t.AddRow(s.Stage, "0", pct(0), fmt.Sprintf("%d", s.Cycles), pct(s.Share))
		}
	}
	return t
}

// BlameTable renders the top routers by queueing time contributed to the
// sampled slow packets.
func (r *Report) BlameTable(top int) *stats.Table {
	labeled := len(r.Blame) > 0 && r.Blame[0].Label != ""
	t := &stats.Table{
		Title:   fmt.Sprintf("Routers by queueing time in sampled slow packets: %s", r.Name),
		Columns: []string{"node", "x", "y", "queue-cycles", "share", "packets"},
	}
	if labeled {
		t.Columns = []string{"node", "label", "queue-cycles", "share", "packets"}
	}
	for i, row := range r.Blame {
		if top > 0 && i >= top {
			break
		}
		if labeled {
			t.AddRow(fmt.Sprintf("%d", row.Node), row.Label,
				fmt.Sprintf("%d", row.Cycles), pct(row.Share), fmt.Sprintf("%d", row.Packets))
			continue
		}
		t.AddRow(fmt.Sprintf("%d", row.Node), fmt.Sprintf("%d", row.X), fmt.Sprintf("%d", row.Y),
			fmt.Sprintf("%d", row.Cycles), pct(row.Share), fmt.Sprintf("%d", row.Packets))
	}
	return t
}

// LinkTable renders the top outgoing links by queueing time.
func (r *Report) LinkTable(top int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Links by queueing time in sampled slow packets: %s", r.Name),
		Columns: []string{"node", "dir", "queue-cycles"},
	}
	for i, row := range r.Links {
		if top > 0 && i >= top {
			break
		}
		t.AddRow(fmt.Sprintf("%d", row.Node), row.Dir, fmt.Sprintf("%d", row.Cycles))
	}
	return t
}

// PacketTable summarises the slowest sampled packets.
func (r *Report) PacketTable(top int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Slowest sampled packets: %s", r.Name),
		Columns: []string{"msg", "src", "inject", "latency", "attributed", "dominant-stage"},
	}
	for i, p := range r.Packets {
		if top > 0 && i >= top {
			break
		}
		dom := ""
		var domC int64 = -1
		for _, s := range p.Stages {
			if s.Cycles > domC {
				dom, domC = s.Stage, s.Cycles
			}
		}
		t.AddRow(fmt.Sprintf("%d", p.ID), fmt.Sprintf("%d", p.Src),
			fmt.Sprintf("%d", p.Inject), fmt.Sprintf("%d", p.Latency),
			pct(p.Attributed), fmt.Sprintf("%s (%d)", dom, domC))
	}
	return t
}

// SpanTree renders one sampled packet's hop-by-hop span tree: spans are
// grouped under the node where the time was spent, in order.
func (p *PacketReport) SpanTree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msg %d: %d cycles, src %d, inject @%d, delivered @%d (%.0f%% attributed)\n",
		p.ID, p.Latency, p.Src, p.Inject, p.Complete, p.Attributed*100)
	// Group consecutive spans by node into hops.
	for i := 0; i < len(p.Spans); {
		j := i
		for j < len(p.Spans) && p.Spans[j].Node == p.Spans[i].Node {
			j++
		}
		hopBranch, spanPrefix := "├─", "│    "
		if j == len(p.Spans) {
			hopBranch, spanPrefix = "└─", "     "
		}
		fmt.Fprintf(&b, "  %s @%d\n", hopBranch, p.Spans[i].Node)
		for k := i; k < j; k++ {
			sp := p.Spans[k]
			branch := "├─"
			if k == j-1 {
				branch = "└─"
			}
			dir := ""
			if sp.Dir != "L" {
				dir = " ->" + sp.Dir
			}
			fmt.Fprintf(&b, "  %s%s %-13s c%d +%d%s\n", spanPrefix, branch, sp.Stage, sp.Start, sp.Cycles, dir)
		}
		i = j
	}
	return b.String()
}

// pct formats a share.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Format renders the full human-readable report: header, stage
// decomposition, router/link blame, the slowest packets, and the
// slowest packet's span tree. top caps table rows (0 = all).
func (r *Report) Format(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tail-blame report: %s — %d completed, %d lost, %d unresolved; sampled %d slowest (tail >= %d cycles)\n",
		r.Name, r.Completed, r.Lost, r.Unresolved, r.Cohort, r.TailThreshold)
	fmt.Fprintf(&b, "latency cycles: mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		stats.F(r.Latency.Mean), stats.F(r.Latency.P50), stats.F(r.Latency.P95),
		stats.F(r.Latency.P99), stats.F(r.Latency.Max))
	fmt.Fprintf(&b, "attribution: overall %s, cohort mean %s, cohort min %s\n\n",
		pct(r.AttributionOverall), pct(r.AttributionMean), pct(r.AttributionMin))
	b.WriteString(r.StageTable().String())
	b.WriteString("\n\n")
	b.WriteString(r.BlameTable(top).String())
	b.WriteString("\n\n")
	if len(r.Links) > 0 {
		b.WriteString(r.LinkTable(top).String())
		b.WriteString("\n\n")
	}
	b.WriteString(r.PacketTable(top).String())
	b.WriteString("\n\n")
	if len(r.Packets) > 0 {
		b.WriteString(r.Packets[0].SpanTree())
	}
	return b.String()
}
