package provenance_test

import (
	"reflect"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/exp"
	"phastlane/internal/provenance"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// runProv drives one synthetic 8x8 run with a provenance tracker teed
// into the event stream and returns its report.
func runProv(net sim.Network, rate float64, seed int64) (*provenance.Report, sim.Result) {
	tr := provenance.New(provenance.Config{K: 32, Seed: seed, Width: 8, Height: 8})
	res := sim.RunRate(net, sim.RateConfig{
		Pattern: traffic.UniformRandom(net.Nodes(), seed),
		Rate:    rate, Warmup: 200, Measure: 800, Seed: seed,
		Prov: tr,
	})
	return tr.Report("it"), res
}

// TestAttributionCoversLatencyBothSims is the headline acceptance check:
// for every sampled slow packet in both simulators, the named stages sum
// to >= 95% of the measured end-to-end latency, and the stage spans
// (named + residue) partition it exactly.
func TestAttributionCoversLatencyBothSims(t *testing.T) {
	cases := []struct {
		name string
		net  sim.Network
		rate float64
	}{
		{"optical", core.New(core.DefaultConfig()), 0.30},
		{"electrical", electrical.New(electrical.DefaultConfig()), 0.20},
	}
	for _, tc := range cases {
		rep, res := runProv(tc.net, tc.rate, 11)
		if rep.Cohort == 0 {
			t.Fatalf("%s: empty cohort (delivered %d)", tc.name, res.Run.Delivered)
		}
		if rep.Completed != res.Run.Delivered {
			t.Errorf("%s: tracker completed %d != harness delivered %d",
				tc.name, rep.Completed, res.Run.Delivered)
		}
		for _, p := range rep.Packets {
			var sum int64
			for _, s := range p.Stages {
				sum += s.Cycles
			}
			if sum != p.Latency {
				t.Errorf("%s: msg %d stage cycles %d != latency %d",
					tc.name, p.ID, sum, p.Latency)
			}
		}
		if rep.AttributionMin < 0.95 {
			t.Errorf("%s: cohort attribution min %.3f < 0.95\n%s",
				tc.name, rep.AttributionMin, rep.Format(10))
		}
		if rep.AttributionOverall < 0.95 {
			t.Errorf("%s: overall attribution %.3f < 0.95", tc.name, rep.AttributionOverall)
		}
		// The harness and the tracker measure the same latency.
		if got, want := rep.Latency.Mean, res.Run.Latency.Mean(); got != want {
			t.Errorf("%s: tracker mean %.3f != harness mean %.3f", tc.name, got, want)
		}
	}
}

// cohortSig is what determinism is asserted over: identity and latency
// of every sampled packet plus its full stage decomposition.
type cohortSig struct {
	ID      uint64
	Latency int64
	Stages  []provenance.StageShare
}

func signature(rep *provenance.Report) []cohortSig {
	out := make([]cohortSig, 0, len(rep.Packets))
	for _, p := range rep.Packets {
		out = append(out, cohortSig{ID: p.ID, Latency: p.Latency, Stages: p.Stages})
	}
	return out
}

// TestReservoirDeterminismWorkers runs the same four-point grid at one
// worker and at eight and requires bit-identical cohorts: the sampled
// set must be a function of the run, not of scheduling.
func TestReservoirDeterminismWorkers(t *testing.T) {
	points := []int64{3, 4, 5, 6}
	run := func(workers int) [][]cohortSig {
		return exp.Run(points, func(i int, seed int64) []cohortSig {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			rep, _ := runProv(core.New(cfg), 0.25, seed)
			return signature(rep)
		}, exp.Options{Workers: workers})
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("cohorts differ between 1 and 8 workers:\n1: %+v\n8: %+v", serial, parallel)
	}
}

// TestReservoirKernelEquivalence runs the event-driven electrical kernel
// and the dense reference against the same configuration and requires
// identical cohorts and stage decompositions — the provenance layer sees
// through the kernel optimisation.
func TestReservoirKernelEquivalence(t *testing.T) {
	cfg := electrical.DefaultConfig()
	cfg.Seed = 5
	repEvent, _ := runProv(electrical.New(cfg), 0.20, 5)
	repRef, _ := runProv(electrical.NewReference(cfg), 0.20, 5)
	if !reflect.DeepEqual(signature(repEvent), signature(repRef)) {
		t.Fatalf("cohorts differ between kernels:\nevent: %+v\nref:   %+v",
			signature(repEvent), signature(repRef))
	}
	if !reflect.DeepEqual(repEvent.Stages, repRef.Stages) {
		t.Fatalf("stage decompositions differ:\nevent: %+v\nref:   %+v",
			repEvent.Stages, repRef.Stages)
	}
}
