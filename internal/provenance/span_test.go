package provenance

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/obs"
)

// collect runs Walk and returns the spans.
func collect(inject, complete int64, events []obs.Event) []Span {
	var out []Span
	Walk(inject, complete, events, func(sp Span) { out = append(out, sp) })
	return out
}

// checkPartition asserts the spans tile [inject, complete+1) exactly.
func checkPartition(t *testing.T, inject, complete int64, spans []Span) {
	t.Helper()
	at := inject
	var sum int64
	for i, sp := range spans {
		if sp.Start != at {
			t.Fatalf("span %d starts at %d, want %d (gap or overlap)", i, sp.Start, at)
		}
		if sp.End <= sp.Start {
			t.Fatalf("span %d is empty or inverted: [%d, %d)", i, sp.Start, sp.End)
		}
		at = sp.End
		sum += sp.Cycles()
	}
	if at != complete+1 {
		t.Fatalf("spans end at %d, want %d", at, complete+1)
	}
	if want := complete - inject + 1; sum != want {
		t.Fatalf("span cycles sum to %d, want latency %d", sum, want)
	}
}

func TestWalkEmptyLogIsAllOther(t *testing.T) {
	spans := collect(10, 19, nil)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Stage != StageOther || spans[0].Cycles() != 10 {
		t.Fatalf("got %v, want 10-cycle other span", spans[0])
	}
	checkPartition(t, 10, 19, spans)
}

func TestWalkOpticalLifecycle(t *testing.T) {
	// Inject at 100, launch at 103 (NIC queue), dropped in flight at 103
	// by node 5, retry at 109 (backoff), relaunch at 112 (NIC queue),
	// buffered mid-route at 112, relaunch from buffer at 117
	// (buffer-wait), delivered at 117 (eject closes the final cycle).
	ev := []obs.Event{
		{Cycle: 100, Kind: obs.KindInject, MsgID: 1, Node: 0, Dir: mesh.Local},
		{Cycle: 103, Kind: obs.KindLaunch, MsgID: 1, Node: 0, Dir: mesh.East},
		{Cycle: 103, Kind: obs.KindDrop, MsgID: 1, Node: 5, Dir: mesh.East},
		{Cycle: 109, Kind: obs.KindRetry, MsgID: 1, Node: 0, Dir: mesh.Local},
		{Cycle: 112, Kind: obs.KindLaunch, MsgID: 1, Node: 0, Dir: mesh.East},
		{Cycle: 112, Kind: obs.KindBuffer, MsgID: 1, Node: 3, Dir: mesh.East},
		{Cycle: 117, Kind: obs.KindLaunch, MsgID: 1, Node: 3, Dir: mesh.East},
		{Cycle: 117, Kind: obs.KindEject, MsgID: 1, Node: 7, Dir: mesh.Local},
	}
	spans := collect(100, 117, ev)
	checkPartition(t, 100, 117, spans)
	want := []struct {
		stage  Stage
		node   mesh.NodeID
		cycles int64
	}{
		{StageNICQueue, 0, 3}, // 100 -> 103
		{StageBackoff, 5, 6},  // 103 -> 109, blamed on the dropping router
		{StageNICQueue, 0, 3}, // 109 -> 112 (retry -> launch)
		{StageBufferWait, 3, 5},
		{StageEject, 7, 1}, // the inclusive delivery cycle
	}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans %v, want %d", len(spans), spans, len(want))
	}
	for i, w := range want {
		sp := spans[i]
		if sp.Stage != w.stage || sp.Node != w.node || sp.Cycles() != w.cycles {
			t.Errorf("span %d = %v (%s), want stage %s node %d cycles %d",
				i, sp, sp.Stage, w.stage, w.node, w.cycles)
		}
	}
}

func TestWalkElectricalLifecycle(t *testing.T) {
	// Inject at 50, NIC->VC at 52, VC grant at 55, crossbar at 56, link
	// arrival at 57, local VC grant at 58, switch 59, buffered at
	// destination 60, delivered at 61.
	ev := []obs.Event{
		{Cycle: 50, Kind: obs.KindInject, MsgID: 2, Node: 1, Dir: mesh.Local},
		{Cycle: 52, Kind: obs.KindLaunch, MsgID: 2, Node: 1, Dir: mesh.Local},
		{Cycle: 55, Kind: obs.KindVCAlloc, MsgID: 2, Node: 1, Dir: mesh.East},
		{Cycle: 56, Kind: obs.KindSwitch, MsgID: 2, Node: 1, Dir: mesh.East},
		{Cycle: 57, Kind: obs.KindBuffer, MsgID: 2, Node: 2, Dir: mesh.East},
		{Cycle: 58, Kind: obs.KindVCAlloc, MsgID: 2, Node: 2, Dir: mesh.Local},
		{Cycle: 59, Kind: obs.KindSwitch, MsgID: 2, Node: 2, Dir: mesh.Local},
		{Cycle: 60, Kind: obs.KindBuffer, MsgID: 2, Node: 2, Dir: mesh.Local},
		{Cycle: 61, Kind: obs.KindEject, MsgID: 2, Node: 2, Dir: mesh.Local},
	}
	spans := collect(50, 61, ev)
	checkPartition(t, 50, 61, spans)
	wantStages := []Stage{
		StageNICQueue,   // 50 -> 52
		StageVCWait,     // 52 -> 55
		StageSwitchWait, // 55 -> 56
		StageLink,       // 56 -> 57
		StageVCWait,     // 57 -> 58
		StageSwitchWait, // 58 -> 59
		StageLink,       // 59 -> 60
		StageEject,      // 60 -> 61 (buffer -> eject)
		StageEject,      // 61 -> 62 closing delivery cycle
	}
	if len(spans) != len(wantStages) {
		t.Fatalf("got %d spans %v, want %d", len(spans), spans, len(wantStages))
	}
	for i, w := range wantStages {
		if spans[i].Stage != w {
			t.Errorf("span %d stage = %s, want %s", i, spans[i].Stage, w)
		}
	}
	// None of this clean unicast flight may fall into the residue bucket.
	for _, sp := range spans {
		if sp.Stage == StageOther {
			t.Errorf("clean lifecycle produced an other span: %v", sp)
		}
	}
}

func TestWalkUnknownTransitionFallsToOther(t *testing.T) {
	// eject -> eject is no rule's transition (merged multicast stream).
	ev := []obs.Event{
		{Cycle: 10, Kind: obs.KindEject, MsgID: 3, Node: 4},
		{Cycle: 14, Kind: obs.KindEject, MsgID: 3, Node: 6},
	}
	spans := collect(8, 14, ev)
	checkPartition(t, 8, 14, spans)
	var other int64
	for _, sp := range spans {
		if sp.Stage == StageOther {
			other += sp.Cycles()
		}
	}
	// Both gaps are unclassified: the synthetic inject -> eject lead-in
	// (8 -> 10) and the eject -> eject stream merge (10 -> 14).
	if other != 6 {
		t.Fatalf("other cycles = %d, want 6 (both unclassified gaps)", other)
	}
}

func TestWalkIgnoresStragglersPastDelivery(t *testing.T) {
	ev := []obs.Event{
		{Cycle: 0, Kind: obs.KindInject, MsgID: 4, Node: 0},
		{Cycle: 2, Kind: obs.KindLaunch, MsgID: 4, Node: 0, Dir: mesh.East},
		{Cycle: 2, Kind: obs.KindTap, MsgID: 4, Node: 1},
		{Cycle: 9, Kind: obs.KindEject, MsgID: 4, Node: 5}, // past complete=4
	}
	spans := collect(0, 4, ev)
	checkPartition(t, 0, 4, spans)
	last := spans[len(spans)-1]
	if last.Stage != StageEject || last.Node != 1 {
		t.Fatalf("closing span = %v, want eject at the tap node", last)
	}
}

func TestStageQueueing(t *testing.T) {
	queueing := map[Stage]bool{
		StageNICQueue: true, StageBackoff: true, StageBufferWait: true,
		StageVCWait: true, StageSwitchWait: true,
	}
	for s := Stage(0); s < NumStages; s++ {
		if s.Queueing() != queueing[s] {
			t.Errorf("%s.Queueing() = %v, want %v", s, s.Queueing(), queueing[s])
		}
	}
}
