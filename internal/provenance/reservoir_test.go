package provenance

import (
	"math/rand"
	"testing"
)

// ids extracts the cohort's message IDs, slowest-first.
func ids(r *tailReservoir) []uint64 {
	var out []uint64
	for _, l := range r.cohort() {
		out = append(out, l.id)
	}
	return out
}

func TestReservoirKeepsSlowest(t *testing.T) {
	r := tailReservoir{k: 3, seed: 7}
	for i := 1; i <= 10; i++ {
		l := &packetLog{id: uint64(i), latency: int64(i * 10)}
		released := r.offer(l)
		if i <= 3 && released != nil {
			t.Fatalf("offer %d released %v while the reservoir had room", i, released.id)
		}
		if i > 3 && released == nil {
			t.Fatalf("offer %d released nothing from a full reservoir", i)
		}
	}
	got := ids(&r)
	want := []uint64{10, 9, 8}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("cohort = %v, want %v", got, want)
		}
	}
}

func TestReservoirReleasesFastPacket(t *testing.T) {
	r := tailReservoir{k: 2, seed: 1}
	r.offer(&packetLog{id: 1, latency: 100})
	r.offer(&packetLog{id: 2, latency: 100})
	fast := &packetLog{id: 3, latency: 1}
	if released := r.offer(fast); released != fast {
		t.Fatalf("fast packet not released: got %v", released)
	}
}

func TestReservoirOrderIndependence(t *testing.T) {
	// The retained cohort is the top K of a total order, so any arrival
	// permutation yields the identical cohort — including latency ties,
	// which is the case that defeats naive "first seen wins" reservoirs.
	const n, k = 200, 16
	lats := make([]int64, n)
	for i := range lats {
		lats[i] = int64(50 + i%7) // heavy tie pressure
	}
	baseline := func(perm []int) []uint64 {
		r := tailReservoir{k: k, seed: 42}
		for _, i := range perm {
			r.offer(&packetLog{id: uint64(i + 1), latency: lats[i]})
		}
		return ids(&r)
	}
	ref := baseline(identity(n))
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(n)
		got := baseline(perm)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: cohort size %d, want %d", trial, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: cohort %v != reference %v", trial, got, ref)
			}
		}
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestReservoirSeedChangesTieBreaks(t *testing.T) {
	// With all latencies tied, the cohort is chosen purely by the seeded
	// hash; two seeds should (overwhelmingly) pick different cohorts.
	run := func(seed int64) []uint64 {
		r := tailReservoir{k: 4, seed: seed}
		for i := 1; i <= 64; i++ {
			r.offer(&packetLog{id: uint64(i), latency: 10})
		}
		return ids(&r)
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 1 and 2 picked the identical tied cohort %v", a)
	}
	// But the same seed must reproduce exactly.
	c := run(1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("seed 1 is not reproducible: %v vs %v", a, c)
		}
	}
}

func TestNewClampsK(t *testing.T) {
	if tr := New(Config{K: 0}); tr.cfg.K != DefaultK {
		t.Fatalf("K=0 clamped to %d, want %d", tr.cfg.K, DefaultK)
	}
	if tr := New(Config{K: -5}); tr.cfg.K != DefaultK {
		t.Fatalf("K=-5 clamped to %d, want %d", tr.cfg.K, DefaultK)
	}
	if tr := New(Config{K: 7}); tr.cfg.K != 7 {
		t.Fatalf("K=7 rewritten to %d", tr.cfg.K)
	}
}
