// Package provenance reconstructs per-packet latency provenance from the
// shared obs event stream: where each packet's end-to-end latency went,
// stage by stage (NIC queueing, retry backoff, per-hop VC-allocation
// wait, switch traversal, link and wire flight, ejection), and which
// routers contributed the queueing. A Tracker tails the event stream of
// one harness run, deterministically reservoir-samples the slowest K
// packets, and aggregates everything into a tail-blame report; sampled
// span trees export to the Perfetto TraceFile as per-packet tracks.
//
// The tracker follows the platform's zero-cost-when-off contract: a nil
// *Tracker installs no tracer and costs the harness one branch per
// message event. Trackers are single-run, single-goroutine objects (one
// per point of a parallel grid), which is what makes the sampled cohort
// bit-identical at any worker count.
package provenance

import (
	"fmt"
	"strings"

	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
)

// DefaultK is the slow-packet cohort size when none is given.
const DefaultK = 64

// Config sizes a Tracker.
type Config struct {
	// K is the slowest-packet cohort size (<= 0 clamps to DefaultK).
	K int
	// Seed breaks latency ties in the reservoir deterministically; use
	// the run's seed so re-runs sample the same cohort.
	Seed int64
	// Width, Height shape the (x, y) coordinates in reports. Zero
	// width leaves coordinates zeroed.
	Width, Height int
	// Label names nodes in blame reports (typically a topo.Topology's
	// NodeLabel); when set it wins over the Width/Height mesh
	// coordinates, so non-mesh fabrics get meaningful blame rows.
	Label func(mesh.NodeID) string
}

// packetLog is the per-tracked-packet record: identity, harness-side
// bounds, the raw event log, and (after completion) the stage totals.
type packetLog struct {
	id       uint64
	src      mesh.NodeID
	inject   int64
	complete int64
	latency  int64
	stages   [NumStages]int64
	events   []obs.Event
}

// attributed is the fraction of the packet's latency that named stages
// (everything but StageOther) explain.
func (l *packetLog) attributed() float64 {
	if l.latency <= 0 {
		return 0
	}
	return 1 - float64(l.stages[StageOther])/float64(l.latency)
}

// Tracker tails one run's event stream and accumulates provenance.
type Tracker struct {
	cfg  Config
	logs map[uint64]*packetLog
	free []*packetLog
	res  tailReservoir

	totals    [NumStages]int64
	latSum    int64
	lat       stats.Latency
	completed int64
	lost      int64

	// Optional live telemetry, wired by Register.
	hist     *telemetry.Histogram
	stageCtr [NumStages]*telemetry.Counter
}

// New builds a tracker.
func New(cfg Config) *Tracker {
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	return &Tracker{
		cfg:  cfg,
		logs: make(map[uint64]*packetLog),
		res:  tailReservoir{k: cfg.K, seed: cfg.Seed},
	}
}

// getLog pops a recycled log or allocates one.
func (t *Tracker) getLog() *packetLog {
	if n := len(t.free); n > 0 {
		l := t.free[n-1]
		t.free = t.free[:n-1]
		return l
	}
	return &packetLog{}
}

// putLog recycles a log, keeping its event backing array.
func (t *Tracker) putLog(l *packetLog) {
	l.events = l.events[:0]
	l.stages = [NumStages]int64{}
	t.free = append(t.free, l)
}

// Inject starts tracking a message. The harness calls it immediately
// before Network.Inject with the harness-side injection cycle (readiness
// for trace replays), so the network's KindInject event and everything
// after lands in the log.
func (t *Tracker) Inject(id uint64, src mesh.NodeID, cycle int64) {
	l := t.getLog()
	l.id, l.src, l.inject = id, src, cycle
	t.logs[id] = l
}

// Observe is the event tap the harness tees next to the obs collector.
// Events for untracked messages (warmup traffic, MsgID-0 topology
// events) are dropped.
func (t *Tracker) Observe(e obs.Event) {
	if e.MsgID == 0 {
		return
	}
	if l, ok := t.logs[e.MsgID]; ok {
		l.events = append(l.events, e)
	}
}

// Complete resolves a tracked message at its delivery cycle: the event
// log is folded into per-stage totals (the same Walk the report and the
// Perfetto export replay), live telemetry observes the end-to-end
// latency, and the log is offered to the tail reservoir.
func (t *Tracker) Complete(id uint64, cycle int64) {
	l, ok := t.logs[id]
	if !ok {
		return
	}
	delete(t.logs, id)
	l.complete = cycle
	l.latency = cycle - l.inject + 1
	Walk(l.inject, l.complete, l.events, func(sp Span) {
		l.stages[sp.Stage] += sp.Cycles()
	})
	for s := Stage(0); s < NumStages; s++ {
		t.totals[s] += l.stages[s]
		if c := t.stageCtr[s]; c != nil && l.stages[s] != 0 {
			c.Add(l.stages[s])
		}
	}
	t.completed++
	t.latSum += l.latency
	t.lat.Add(float64(l.latency))
	if t.hist != nil {
		t.hist.Observe(float64(l.latency))
	}
	if released := t.res.offer(l); released != nil {
		t.putLog(released)
	}
}

// Lost abandons a tracked message (the delivery layer reported it lost):
// no latency sample, no cohort entry.
func (t *Tracker) Lost(id uint64) {
	if l, ok := t.logs[id]; ok {
		delete(t.logs, id)
		t.putLog(l)
		t.lost++
	}
}

// Completed returns the number of resolved (delivered) packets.
func (t *Tracker) Completed() int64 { return t.completed }

// Unresolved returns the number of packets still tracked — injected but
// neither completed nor lost (a drain that gave up).
func (t *Tracker) Unresolved() int { return len(t.logs) }

// metricName sanitises a run name into Prometheus metric-name charset.
func metricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, name)
}

// Register wires the tracker into a live telemetry registry under the
// run name: an end-to-end latency histogram (so Prometheus scrapes tail
// quantiles, not just phase timers) and per-stage attributed-cycle
// counters. Call before the run; nil-safe on the tracker's hot path
// (unregistered trackers skip both).
func (t *Tracker) Register(reg *telemetry.Registry, name string) {
	n := metricName(name)
	t.hist = reg.Histogram("phastlane_e2e_latency_cycles_"+n,
		"end-to-end packet latency in cycles ("+name+")", 0)
	for s := Stage(0); s < NumStages; s++ {
		t.stageCtr[s] = reg.Counter(
			fmt.Sprintf("phastlane_provenance_stage_cycles_total{net=%q,stage=%q}", n, s.String()),
			"packet latency cycles attributed per provenance stage")
	}
}
