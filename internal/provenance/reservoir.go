package provenance

import "sort"

// tailEntry orders one retained packet inside the reservoir.
type tailEntry struct {
	lat int64
	tie uint64
	log *packetLog
}

// tailReservoir keeps the K slowest completed packets seen so far. It is
// a min-heap ordered by (latency, seeded tie-break hash, message ID):
// the root is the entry closest to eviction. Because the retained set is
// the top K of a total order over (latency, tie, id) — a function of the
// packet alone, not of arrival order — the cohort is bit-identical for
// any event interleaving and any worker count, given the same seed.
type tailReservoir struct {
	k    int
	seed int64
	h    []tailEntry
}

// mix64 is the splitmix64 finalizer, the same mixing function the exp
// engine uses for per-point seed derivation.
func mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// less reports whether a orders strictly before b (a is faster, so a is
// evicted first). Ties in latency break by seeded hash, then by ID, so
// the order is total and deterministic.
func less(a, b tailEntry) bool {
	if a.lat != b.lat {
		return a.lat < b.lat
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.log.id < b.log.id
}

// offer considers a completed packet. It returns the log the reservoir
// released — l itself when it was not slow enough, the evicted previous
// occupant when l displaced it, nil when the reservoir had room.
func (r *tailReservoir) offer(l *packetLog) *packetLog {
	e := tailEntry{lat: l.latency, tie: mix64(uint64(r.seed) ^ l.id), log: l}
	if len(r.h) < r.k {
		r.h = append(r.h, e)
		r.siftUp(len(r.h) - 1)
		return nil
	}
	if !less(r.h[0], e) {
		return l
	}
	evicted := r.h[0].log
	r.h[0] = e
	r.siftDown(0)
	return evicted
}

func (r *tailReservoir) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !less(r.h[i], r.h[p]) {
			return
		}
		r.h[i], r.h[p] = r.h[p], r.h[i]
		i = p
	}
}

func (r *tailReservoir) siftDown(i int) {
	for {
		l, rt := 2*i+1, 2*i+2
		m := i
		if l < len(r.h) && less(r.h[l], r.h[m]) {
			m = l
		}
		if rt < len(r.h) && less(r.h[rt], r.h[m]) {
			m = rt
		}
		if m == i {
			return
		}
		r.h[i], r.h[m] = r.h[m], r.h[i]
		i = m
	}
}

// cohort returns the retained packets slowest-first.
func (r *tailReservoir) cohort() []*packetLog {
	es := make([]tailEntry, len(r.h))
	copy(es, r.h)
	sort.Slice(es, func(i, j int) bool { return less(es[j], es[i]) })
	out := make([]*packetLog, len(es))
	for i, e := range es {
		out[i] = e.log
	}
	return out
}
