package provenance

import "flag"

// DefaultTop is the default row cap of blame and slow-packet tables.
const DefaultTop = 10

// CLI is the shared command-line surface of the provenance layer,
// mirroring telemetry.CLI: cmd/inspect and cmd/sweep register the full
// bundle (opt-in via -why), cmd/why registers the always-on variant.
type CLI struct {
	// Why is -why: attach provenance and print tail-blame reports.
	Why bool
	// Sample is -why-sample: the slowest-packet cohort size.
	Sample int
	// Top is -why-top: rows shown in blame and slow-packet tables.
	Top int
}

// RegisterFlags registers -why, -why-sample and -why-top on fs.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Why, "why", false,
		"attach per-packet latency provenance and print a tail-blame report per run")
	registerShared(fs, c)
	return c
}

// RegisterAlwaysOn registers -why-sample and -why-top with provenance
// unconditionally enabled (cmd/why).
func RegisterAlwaysOn(fs *flag.FlagSet) *CLI {
	c := &CLI{Why: true}
	registerShared(fs, c)
	return c
}

func registerShared(fs *flag.FlagSet, c *CLI) {
	fs.IntVar(&c.Sample, "why-sample", DefaultK,
		"slowest-packet cohort size for the tail-blame report (<= 0 clamps to the default)")
	fs.IntVar(&c.Top, "why-top", DefaultTop,
		"rows shown in blame and slow-packet tables (<= 0 clamps to the default)")
}

// Clamp normalises out-of-range flag values instead of letting them
// silently misbehave downstream (a zero cohort would sample nothing, a
// negative one would panic the reservoir). Sample returns the clamped
// cohort size; commands call Clamp once after flag.Parse.
func (c *CLI) Clamp() {
	if c.Sample <= 0 {
		c.Sample = DefaultK
	}
	if c.Top <= 0 {
		c.Top = DefaultTop
	}
}
