package provenance

import (
	"fmt"

	"phastlane/internal/obs"
)

// ExportPerfetto writes the sampled span trees into tf as one extra
// trace process: one thread per slow packet (slowest first), one
// duration slice per attributed span, and flow arrows chaining each
// packet's spans from injection to delivery. Loads next to the per-node
// network tracks in ui.perfetto.dev.
func (t *Tracker) ExportPerfetto(tf *obs.TraceFile, pid int, name string) {
	tf.ProcessName(pid, "why:"+name+" slowest packets")
	for rank, l := range t.res.cohort() {
		tf.Thread(pid, rank, fmt.Sprintf("#%d msg %d (%d cyc)", rank+1, l.id, l.latency))
		var spans []Span
		Walk(l.inject, l.complete, l.events, func(sp Span) {
			spans = append(spans, sp)
		})
		for i, sp := range spans {
			args := fmt.Sprintf(`{"msg":%d,"node":%d,"dir":%q}`, l.id, sp.Node, sp.Dir.String())
			tf.Slice(pid, rank, sp.Stage.String(), sp.Start, sp.Cycles(), args)
			if len(spans) < 2 {
				continue
			}
			step := "t"
			switch i {
			case 0:
				step = "s"
			case len(spans) - 1:
				step = "f"
			}
			tf.Flow(pid, rank, step, l.id, sp.Start)
		}
	}
}
