package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders labelled (x, y) series as a fixed-size ASCII chart for
// terminal output of the latency/saturation figures. Each series is drawn
// with its own glyph; y may be log-scaled, which suits latency curves that
// hockey-stick at saturation.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Width  int // plot-area columns (default 60)
	Height int // plot-area rows (default 16)
	Series []Series
}

// glyphs assigns one marker per series.
var glyphs = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// String renders the chart.
func (p *Plot) String() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.Series {
		for i := range s.X {
			y := s.Y[i]
			if p.LogY && y <= 0 {
				continue
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if points == 0 {
		return p.Title + ": (no data)\n"
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	yOf := func(v float64) float64 {
		if p.LogY {
			return math.Log(v)
		}
		return v
	}
	loY, hiY := yOf(minY), yOf(maxY)

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			y := s.Y[i]
			if p.LogY && y <= 0 {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((yOf(y)-loY)/(hiY-loY)*float64(h-1))
			grid[row][col] = g
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yTop, yBot := F(maxY), F(minY)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, yTop)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", labelW), w-len(F(maxX)), F(minX), F(maxX))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s%s\n", strings.Repeat(" ", labelW), p.XLabel, p.YLabel, logNote(p.LogY))
	}
	var legend []string
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Label))
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "  "))
	return b.String()
}

func logNote(on bool) string {
	if on {
		return " (log)"
	}
	return ""
}

// CSV renders a table as comma-separated values for external plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

// SortSeriesByLabel orders series alphabetically for stable legends.
func SortSeriesByLabel(series []Series) {
	sort.Slice(series, func(i, j int) bool { return series[i].Label < series[j].Label })
}
