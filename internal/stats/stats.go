// Package stats collects and summarises network simulation metrics:
// per-packet latencies, throughput, drops and retries, and the derived
// quantities the paper reports (average latency, saturation, speedup).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Latency accumulates packet latency samples in cycles.
type Latency struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Add records one latency sample.
func (l *Latency) Add(cycles float64) {
	l.samples = append(l.samples, cycles)
	l.sum += cycles
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average latency, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	return l.sum / float64(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 with no
// samples.
func (l *Latency) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	idx := int(math.Ceil(p/100*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Max returns the largest sample, or 0 with no samples.
func (l *Latency) Max() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	return l.samples[len(l.samples)-1]
}

// Run aggregates the outcome of one simulation run.
type Run struct {
	// Latency of delivered packets, in cycles, injection to delivery.
	Latency Latency
	// Cycles is the simulated duration (measurement phase).
	Cycles int64
	// Injected counts logical messages entering NIC queues;
	// Delivered counts messages fully delivered (all multicast
	// destinations served).
	Injected, Delivered int64
	// Drops counts packet drops; Retries counts retransmissions.
	Drops, Retries int64
	// Lost counts (message, destination) deliveries the delivery layer
	// abandoned and reported (retry budget exhausted, loss timeout, or
	// an unreachable destination under faults); zero without faults or
	// delivery limits armed.
	Lost int64
	// Unreachable counts relaunch attempts that found no usable route
	// to the destination under the active fault set.
	Unreachable int64
	// Corrupt counts control-bit corruption events injected by a fault
	// plan (resonator drift misroutes and spurious drops).
	Corrupt int64
	// LinkTraversals counts packet-link crossings (for power).
	LinkTraversals int64
	// BufferedPackets counts receptions into electrical buffers.
	BufferedPackets int64
	// Energy in picojoules, split by domain.
	ElectricalEnergyPJ, OpticalEnergyPJ float64
	// LeakagePJ is the accumulated static energy.
	LeakagePJ float64
}

// ThroughputPerNode returns delivered packets per node per cycle.
func (r *Run) ThroughputPerNode(nodes int) float64 {
	if r.Cycles == 0 || nodes == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Cycles) / float64(nodes)
}

// TotalEnergyPJ sums dynamic and static energy.
func (r *Run) TotalEnergyPJ() float64 {
	return r.ElectricalEnergyPJ + r.OpticalEnergyPJ + r.LeakagePJ
}

// PowerW converts total energy to average power at the given clock.
func (r *Run) PowerW(clockGHz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / (clockGHz * 1e9)
	return r.TotalEnergyPJ() * 1e-12 / seconds
}

// Series is a labelled sequence of (x, y) points: one curve of a figure.
type Series struct {
	Label  string
	X, Y   []float64
	YLabel string
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders labelled rows for terminal output, mimicking the figure
// data the paper plots.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		// Rows may carry more cells than there are column headers; grow
		// the width set so they render instead of indexing past it.
		for len(widths) < len(row) {
			widths = append(widths, 0)
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// GeoMean returns the geometric mean of positive values, or 0 when empty.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
