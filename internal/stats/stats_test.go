package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLatencyMean(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Count() != 0 {
		t.Error("empty latency should report zeros")
	}
	for _, v := range []float64{10, 20, 30} {
		l.Add(v)
	}
	if got := l.Mean(); got != 20 {
		t.Errorf("Mean = %v, want 20", got)
	}
	if l.Count() != 3 {
		t.Errorf("Count = %d", l.Count())
	}
}

func TestLatencyPercentileAndMax(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(float64(i))
	}
	if got := l.Percentile(50); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := l.Percentile(99); got != 99 {
		t.Errorf("p99 = %v", got)
	}
	if got := l.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
	// Adding after sorting still works.
	l.Add(1000)
	if got := l.Max(); got != 1000 {
		t.Errorf("Max after re-add = %v", got)
	}
}

func TestLatencyPercentileEmpty(t *testing.T) {
	var l Latency
	if l.Percentile(99) != 0 || l.Max() != 0 {
		t.Error("empty percentile/max should be 0")
	}
}

// Property: mean lies within [min, max] of the samples.
func TestLatencyMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			l.Add(v)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		m := l.Mean()
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunThroughput(t *testing.T) {
	r := Run{Cycles: 1000, Delivered: 6400}
	if got := r.ThroughputPerNode(64); got != 0.1 {
		t.Errorf("throughput = %v, want 0.1", got)
	}
	var empty Run
	if empty.ThroughputPerNode(64) != 0 {
		t.Error("empty run throughput should be 0")
	}
}

func TestRunPower(t *testing.T) {
	r := Run{Cycles: 4000, ElectricalEnergyPJ: 500, OpticalEnergyPJ: 300, LeakagePJ: 200}
	// 4000 cycles at 4 GHz = 1 µs; 1000 pJ / 1 µs = 1 mW.
	if got := r.PowerW(4.0); !almostEq(got, 0.001) {
		t.Errorf("PowerW = %v, want 0.001", got)
	}
	if r.TotalEnergyPJ() != 1000 {
		t.Errorf("TotalEnergyPJ = %v", r.TotalEnergyPJ())
	}
	var empty Run
	if empty.PowerW(4.0) != 0 {
		t.Error("empty run power should be 0")
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 20)
	if len(s.X) != 2 || s.Y[1] != 20 {
		t.Error("Series.Append broken")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22222") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

// TestTableOverlongRow: rows wider than the header used to index past the
// per-column width slice and panic; they must render instead.
func TestTableOverlongRow(t *testing.T) {
	tb := Table{Columns: []string{"name", "value"}}
	tb.AddRow("alpha", "1", "surplus", "cells")
	tb.AddRow("b")
	out := tb.String()
	for _, want := range []string{"alpha", "surplus", "cells", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing cell %q:\n%s", want, out)
		}
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2) {
		t.Errorf("GeoMean(1,4) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with non-positive value should be 0")
	}
}
