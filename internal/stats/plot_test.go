package stats

import (
	"strings"
	"testing"
)

func demoPlot() *Plot {
	return &Plot{
		Title: "demo", XLabel: "rate", YLabel: "latency", LogY: true,
		Series: []Series{
			{Label: "optical", X: []float64{0.1, 0.2, 0.3}, Y: []float64{2, 3, 70}},
			{Label: "electrical", X: []float64{0.1, 0.2}, Y: []float64{20, 25}},
		},
	}
}

func TestPlotRenders(t *testing.T) {
	out := demoPlot().String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "o=optical") || !strings.Contains(out, "+=electrical") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Error("missing data glyphs")
	}
	if !strings.Contains(out, "(log)") {
		t.Error("missing log annotation")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 16 {
		t.Errorf("plot suspiciously short: %d lines", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	if !strings.Contains(p.String(), "no data") {
		t.Error("empty plot should say so")
	}
	// Log scale with only non-positive values is also empty.
	p2 := &Plot{LogY: true, Series: []Series{{Label: "z", X: []float64{1}, Y: []float64{0}}}}
	if !strings.Contains(p2.String(), "no data") {
		t.Error("all-filtered plot should be empty")
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	p := &Plot{Series: []Series{{Label: "pt", X: []float64{1}, Y: []float64{5}}}}
	out := p.String()
	if !strings.Contains(out, "o") {
		t.Error("single point not plotted")
	}
}

func TestPlotCustomSize(t *testing.T) {
	p := demoPlot()
	p.Width, p.Height = 20, 5
	out := p.String()
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 5 {
		t.Errorf("plot area has %d rows, want 5", plotLines)
	}
}

func TestCSV(t *testing.T) {
	tb := Table{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "x,y"}, {"2", `say "hi"`}}}
	csv := tb.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestSortSeriesByLabel(t *testing.T) {
	s := []Series{{Label: "b"}, {Label: "a"}}
	SortSeriesByLabel(s)
	if s[0].Label != "a" {
		t.Error("not sorted")
	}
}
