package electrical

// The differential equivalence suite: the event-driven active-set kernel
// (New) and the dense reference walk (NewReference) are driven in
// lockstep over randomized configurations, traffic schedules and fault
// plans, and must stay bit-identical in every observable dimension —
// per-cycle delivery slices, the full obs event stream, loss reports,
// quiescence, NIC occupancy and the network-side Run counters (including
// float energy accumulators, whose addition order the ascending active
// walk preserves). Every future kernel change regresses against this
// harness; FuzzElectricalEquivalence extends it with coverage-guided
// schedules.

import (
	"fmt"
	"math/rand"
	"testing"

	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// diffNets drives the two kernels in lockstep.
type diffNets struct {
	ev, ref           *Network
	evEvents, refEvts []obs.Event
	evLoss, refLoss   []sim.Loss
	cycle             int64
}

func newDiff(cfg Config) *diffNets {
	d := &diffNets{ev: New(cfg), ref: NewReference(cfg)}
	d.ev.SetTracer(func(e obs.Event) { d.evEvents = append(d.evEvents, e) })
	d.ref.SetTracer(func(e obs.Event) { d.refEvts = append(d.refEvts, e) })
	d.ev.SetLossHandler(func(l sim.Loss) { d.evLoss = append(d.evLoss, l) })
	d.ref.SetLossHandler(func(l sim.Loss) { d.refLoss = append(d.refLoss, l) })
	return d
}

// inject places m into both networks after checking that they agree on
// NIC headroom; it reports whether the message was accepted.
func (d *diffNets) inject(t *testing.T, m sim.Message) bool {
	t.Helper()
	fe, fr := d.ev.NICFree(m.Src), d.ref.NICFree(m.Src)
	if fe != fr {
		t.Fatalf("cycle %d: NICFree(%d) diverged: event-driven %d, reference %d", d.cycle, m.Src, fe, fr)
	}
	if fe <= 0 {
		return false
	}
	d.ev.Inject(m)
	d.ref.Inject(m)
	return true
}

// step advances both networks one cycle and fails the test on any
// divergence in deliveries or quiescence.
func (d *diffNets) step(t *testing.T) {
	t.Helper()
	evBuf := d.ev.Step(nil)
	refBuf := d.ref.Step(nil)
	if len(evBuf) != len(refBuf) {
		t.Fatalf("cycle %d: %d deliveries vs %d on the reference", d.cycle, len(evBuf), len(refBuf))
	}
	for i := range evBuf {
		if evBuf[i] != refBuf[i] {
			t.Fatalf("cycle %d: delivery %d diverged: %+v vs %+v", d.cycle, i, evBuf[i], refBuf[i])
		}
	}
	if qe, qr := d.ev.Quiescent(), d.ref.Quiescent(); qe != qr {
		t.Fatalf("cycle %d: Quiescent diverged: event-driven %v, reference %v", d.cycle, qe, qr)
	}
	d.cycle++
}

// finish compares everything accumulated over the run: event streams,
// loss reports, per-node NIC occupancy, and the network-side counters.
func (d *diffNets) finish(t *testing.T) {
	t.Helper()
	if len(d.evEvents) != len(d.refEvts) {
		t.Fatalf("event streams: %d events vs %d on the reference", len(d.evEvents), len(d.refEvts))
	}
	for i := range d.evEvents {
		if d.evEvents[i] != d.refEvts[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, d.evEvents[i], d.refEvts[i])
		}
	}
	if len(d.evLoss) != len(d.refLoss) {
		t.Fatalf("loss reports: %d vs %d on the reference", len(d.evLoss), len(d.refLoss))
	}
	for i := range d.evLoss {
		if d.evLoss[i] != d.refLoss[i] {
			t.Fatalf("loss %d diverged: %+v vs %+v", i, d.evLoss[i], d.refLoss[i])
		}
	}
	for node := 0; node < d.ev.Nodes(); node++ {
		if fe, fr := d.ev.NICFree(mesh.NodeID(node)), d.ref.NICFree(mesh.NodeID(node)); fe != fr {
			t.Errorf("NICFree(%d): %d vs %d on the reference", node, fe, fr)
		}
	}
	re, rr := d.ev.Run(), d.ref.Run()
	if re.Injected != rr.Injected {
		t.Errorf("Injected: %d vs %d", re.Injected, rr.Injected)
	}
	if re.Lost != rr.Lost {
		t.Errorf("Lost: %d vs %d", re.Lost, rr.Lost)
	}
	if re.LinkTraversals != rr.LinkTraversals {
		t.Errorf("LinkTraversals: %d vs %d", re.LinkTraversals, rr.LinkTraversals)
	}
	if re.ElectricalEnergyPJ != rr.ElectricalEnergyPJ {
		t.Errorf("ElectricalEnergyPJ: %v vs %v (must be bit-identical)", re.ElectricalEnergyPJ, rr.ElectricalEnergyPJ)
	}
	if re.LeakagePJ != rr.LeakagePJ {
		t.Errorf("LeakagePJ: %v vs %v", re.LeakagePJ, rr.LeakagePJ)
	}
}

// randomEqConfig draws a configuration biased toward the awkward corners:
// tiny VC counts, minimum router delay, small NICs that backpressure, and
// the occasional loss timeout.
func randomEqConfig(r *rand.Rand) Config {
	cfg := Config{
		Width:        2 + r.Intn(6),
		Height:       2 + r.Intn(6),
		VCs:          1 + r.Intn(4),
		RouterDelay:  2 + r.Intn(2),
		InputSpeedup: 1 + r.Intn(4),
		Iterations:   1 + r.Intn(2),
		NICEntries:   1 + r.Intn(6),
		Seed:         r.Int63(),
	}
	if r.Intn(4) == 0 {
		cfg.Width, cfg.Height = 8, 8
		cfg.VCs = 10
	}
	if r.Intn(3) == 0 {
		cfg.LossTimeout = 150 + int64(r.Intn(400))
	}
	return cfg
}

// randomEqPlan draws a fault plan for roughly half the runs, mixing
// permanent placements with mid-run activation/heal windows so the
// kernels cross fault transitions while loaded.
func randomEqPlan(r *rand.Rand, w, h int) *fault.Plan {
	if r.Intn(2) == 0 {
		return nil
	}
	plan := fault.RandomPlan(r.Int63(), w, h, fault.RandomSpec{
		DeadLinks:    1 + r.Intn(3),
		StuckRouters: r.Intn(2),
		SlotFaults:   r.Intn(3),
	})
	for i := range plan.Faults {
		if r.Intn(2) == 0 {
			from := int64(r.Intn(120))
			plan.Faults[i].From = from
			plan.Faults[i].Until = from + 40 + int64(r.Intn(200))
		}
	}
	return plan
}

// runEquivalence drives one randomized scenario end to end: bursty
// unicast/multicast traffic with idle gaps, then a drain phase, then the
// full cross-kernel comparison.
func runEquivalence(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := randomEqConfig(r)
	cfg.Faults = randomEqPlan(r, cfg.Width, cfg.Height)
	d := newDiff(cfg)
	nodes := cfg.Width * cfg.Height

	var id uint64
	injecting := true
	total := 250 + r.Intn(250)
	for c := 0; c < total; c++ {
		// Toggle between burst and idle phases: the idle gaps drain
		// the active set, the bursts rebuild it.
		if r.Intn(40) == 0 {
			injecting = !injecting
		}
		if injecting {
			for k := r.Intn(3); k > 0; k-- {
				src := mesh.NodeID(r.Intn(nodes))
				id++
				m := sim.Message{ID: id, Src: src, Op: packet.OpSynthetic}
				if r.Intn(10) == 0 {
					// Multicast to a random ascending subset.
					for n := 0; n < nodes; n++ {
						if mesh.NodeID(n) != src && r.Intn(3) == 0 {
							m.Dsts = append(m.Dsts, mesh.NodeID(n))
						}
					}
				}
				if len(m.Dsts) == 0 {
					dst := mesh.NodeID(r.Intn(nodes))
					if dst == src {
						dst = mesh.NodeID((int(dst) + 1) % nodes)
					}
					m.Dsts = []mesh.NodeID{dst}
				}
				if !d.inject(t, m) {
					id--
				}
			}
		}
		d.step(t)
	}
	for i := 0; i < 30000 && !(d.ev.Quiescent() && d.ref.Quiescent()); i++ {
		d.step(t)
	}
	d.finish(t)
	if id == 0 {
		t.Fatal("scenario injected nothing; generator is broken")
	}
}

// TestEquivalenceRandomized is the headline differential suite: many
// randomized scenarios, each comparing the event-driven kernel against
// the dense reference event for event.
func TestEquivalenceRandomized(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 8
	}
	for s := 0; s < seeds; s++ {
		seed := int64(1000 + s*7919)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runEquivalence(t, seed)
		})
	}
}

// TestEquivalenceRunRateResults runs the sim harness's full synthetic
// methodology (warmup, measure, drain) on both kernels and compares the
// complete Result — the structure every sweep, figure and experiment is
// built from.
func TestEquivalenceRunRateResults(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		rate float64
	}{
		{"light", DefaultConfig(), 0.02},
		{"heavy", DefaultConfig(), 0.30},
		{"faulted", func() Config {
			cfg := DefaultConfig()
			cfg.Faults = fault.RandomPlan(5, 8, 8, fault.RandomSpec{DeadLinks: 4, StuckRouters: 1, SlotFaults: 2})
			cfg.LossTimeout = 2000
			return cfg
		}(), 0.10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(net sim.Network) sim.Result {
				return sim.RunRate(net, sim.RateConfig{
					Pattern: traffic.Transpose(tc.cfg.Width * tc.cfg.Height),
					Rate:    tc.rate,
					Warmup:  200, Measure: 800, DrainLimit: 20000,
					Seed: 11,
				})
			}
			re, rr := run(New(tc.cfg)), run(NewReference(tc.cfg))
			if re.Run.Latency.Count() != rr.Run.Latency.Count() {
				t.Errorf("latency samples: %d vs %d", re.Run.Latency.Count(), rr.Run.Latency.Count())
			}
			if re.Run.Latency.Mean() != rr.Run.Latency.Mean() {
				t.Errorf("mean latency: %v vs %v", re.Run.Latency.Mean(), rr.Run.Latency.Mean())
			}
			if re.Run.Latency.Percentile(99) != rr.Run.Latency.Percentile(99) {
				t.Errorf("p99 latency: %v vs %v", re.Run.Latency.Percentile(99), rr.Run.Latency.Percentile(99))
			}
			if re.Run.Injected != rr.Run.Injected || re.Run.Delivered != rr.Run.Delivered {
				t.Errorf("injected/delivered: %d/%d vs %d/%d",
					re.Run.Injected, re.Run.Delivered, rr.Run.Injected, rr.Run.Delivered)
			}
			if re.Offered != rr.Offered || re.Lost != rr.Lost || re.Unresolved != rr.Unresolved {
				t.Errorf("offered/lost/unresolved: %d/%d/%d vs %d/%d/%d",
					re.Offered, re.Lost, re.Unresolved, rr.Offered, rr.Lost, rr.Unresolved)
			}
			if re.Saturated != rr.Saturated {
				t.Errorf("saturated: %v vs %v", re.Saturated, rr.Saturated)
			}
			if re.Run.ElectricalEnergyPJ != rr.Run.ElectricalEnergyPJ {
				t.Errorf("energy: %v vs %v", re.Run.ElectricalEnergyPJ, rr.Run.ElectricalEnergyPJ)
			}
			if re.Run.LinkTraversals != rr.Run.LinkTraversals {
				t.Errorf("link traversals: %d vs %d", re.Run.LinkTraversals, rr.Run.LinkTraversals)
			}
		})
	}
}
