package electrical

// FuzzElectricalEquivalence is the coverage-guided arm of the
// differential suite: the fuzz input is decoded into a configuration, an
// optional fault plan with activation windows, and an injection schedule
// (bursts, idle gaps, multicasts), and the event-driven kernel must stay
// bit-identical to the dense reference over the whole run — deliveries,
// events, loss accounting and final counters. The seed corpus under
// testdata/fuzz covers the structural corners (single-VC credit stalls,
// stuck routers, loss timeouts, multicast trees); CI replays it as a
// normal test.

import (
	"testing"

	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

// fuzzEquivalence decodes data and drives one lockstep run. The decoder
// is total: every byte string yields a valid scenario.
func fuzzEquivalence(t *testing.T, data []byte) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	cfg := Config{
		Width:        2 + int(next())%5,
		Height:       2 + int(next())%5,
		VCs:          1 + int(next())%4,
		RouterDelay:  2 + int(next())%2,
		InputSpeedup: 1 + int(next())%4,
		Iterations:   1 + int(next())%2,
		NICEntries:   1 + int(next())%5,
		Seed:         int64(next()),
	}
	nodes := cfg.Width * cfg.Height
	if fb := next(); fb%2 == 1 {
		plan := fault.RandomPlan(int64(fb), cfg.Width, cfg.Height, fault.RandomSpec{
			DeadLinks:    int(next()) % 3,
			StuckRouters: int(next()) % 2,
			SlotFaults:   int(next()) % 3,
		})
		for i := range plan.Faults {
			if w := next(); w%2 == 1 {
				from := int64(w) % 100
				plan.Faults[i].From = from
				plan.Faults[i].Until = from + 30 + int64(next())%150
			}
		}
		if len(plan.Faults) > 0 {
			cfg.Faults = plan
		}
	}
	if tb := next(); tb%2 == 1 {
		cfg.LossTimeout = 100 + int64(tb)*3
	}

	d := newDiff(cfg)
	var id uint64
	events := 0
	for pos < len(data) && events < 400 {
		kind, a, b := next(), next(), next()
		events++
		if kind%8 == 0 {
			// Idle gap: the active set drains while cycles pass.
			for g := int(a) % 48; g >= 0; g-- {
				d.step(t)
			}
			continue
		}
		src := mesh.NodeID(int(a) % nodes)
		id++
		m := sim.Message{ID: id, Src: src, Op: packet.OpSynthetic}
		if kind%16 == 1 {
			// Multicast to a deterministic pseudo-random subset.
			for n := 0; n < nodes; n++ {
				if mesh.NodeID(n) != src && (n*int(kind)+int(b))%3 == 0 {
					m.Dsts = append(m.Dsts, mesh.NodeID(n))
				}
			}
		}
		if len(m.Dsts) == 0 {
			dst := mesh.NodeID(int(b) % nodes)
			if dst == src {
				dst = mesh.NodeID((int(dst) + 1) % nodes)
			}
			m.Dsts = []mesh.NodeID{dst}
		}
		if !d.inject(t, m) {
			id--
		}
		d.step(t)
	}
	for i := 0; i < 20000 && !(d.ev.Quiescent() && d.ref.Quiescent()); i++ {
		d.step(t)
	}
	d.finish(t)
}

func FuzzElectricalEquivalence(f *testing.F) {
	// Structural corners mirrored in testdata/fuzz: defaults, a
	// single-VC mesh under back-to-back load, a faulted run with stuck
	// routers and windows, multicast bursts, and loss-timeout reaping.
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0, 1, 3, 1, 4, 7, 0, 0, 3, 0, 0, 5, 0, 1, 9, 0, 2, 17, 0, 3})
	f.Add([]byte{2, 2, 0, 0, 0, 0, 0, 9, 1, 2, 1, 2, 91, 255, 3, 1, 0, 7, 5, 2, 12, 30, 0, 3, 3, 9, 1, 22})
	f.Add([]byte{4, 4, 3, 1, 3, 1, 4, 13, 0, 201, 17, 5, 40, 17, 8, 41, 1, 60, 2, 9})
	f.Add([]byte{3, 3, 1, 0, 2, 0, 2, 31, 1, 2, 1, 2, 7, 77, 9, 1, 30, 11, 2, 15, 8, 40, 0, 1, 23, 3, 30})
	f.Fuzz(fuzzEquivalence)
}
