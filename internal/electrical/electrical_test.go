package electrical

import (
	"math/rand"
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

func mustNew(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg)
}

func stepUntilQuiescent(t *testing.T, n *Network, limit int) []sim.Delivery {
	t.Helper()
	var all []sim.Delivery
	for i := 0; i < limit; i++ {
		all = append(all, n.Step(nil)...)
		if n.Quiescent() {
			return all
		}
	}
	t.Fatalf("network not quiescent after %d cycles", limit)
	return nil
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.RouterDelay = 1 },
		func(c *Config) { c.InputSpeedup = 0 },
		func(c *Config) { c.NICEntries = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
}

func TestDefaultMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.VCs != 10 {
		t.Errorf("VCs = %d, want 10", cfg.VCs)
	}
	if cfg.RouterDelay != 3 {
		t.Errorf("RouterDelay = %d, want 3", cfg.RouterDelay)
	}
	if cfg.InputSpeedup != 4 {
		t.Errorf("InputSpeedup = %d, want 4", cfg.InputSpeedup)
	}
	if cfg.NICEntries != 50 {
		t.Errorf("NICEntries = %d, want 50", cfg.NICEntries)
	}
}

// deliverCycle injects one unicast message and returns the cycle of
// delivery.
func deliverCycle(t *testing.T, n *Network, src, dst mesh.NodeID) int {
	t.Helper()
	n.Inject(sim.Message{ID: 1, Src: src, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
	for i := 0; i < 200; i++ {
		if ds := n.Step(nil); len(ds) > 0 {
			if ds[0].Dst != dst {
				t.Fatalf("delivered to %d, want %d", ds[0].Dst, dst)
			}
			return i
		}
	}
	t.Fatal("packet never delivered")
	return -1
}

func TestPerHopLatencyThreeCycles(t *testing.T) {
	// One hop with a 3-cycle router: inject at cycle 0, VC entry at 0,
	// SA at 2, link arrival at 3, ejection at 4.
	if got := deliverCycle(t, mustNew(t, nil), 0, 1); got != 4 {
		t.Errorf("1-hop delivery at cycle %d, want 4", got)
	}
	// Each extra hop adds RouterDelay cycles.
	if got := deliverCycle(t, mustNew(t, nil), 0, 2); got != 7 {
		t.Errorf("2-hop delivery at cycle %d, want 7", got)
	}
}

func TestPerHopLatencyTwoCycles(t *testing.T) {
	fast := func(c *Config) { c.RouterDelay = 2 }
	if got := deliverCycle(t, mustNew(t, fast), 0, 1); got != 3 {
		t.Errorf("1-hop delivery at cycle %d, want 3", got)
	}
	if got := deliverCycle(t, mustNew(t, fast), 0, 2); got != 5 {
		t.Errorf("2-hop delivery at cycle %d, want 5", got)
	}
}

func TestCornerToCorner(t *testing.T) {
	// 14 hops at 3 cycles each + ejection: 14*3 + 1 = 43.
	if got := deliverCycle(t, mustNew(t, nil), 0, 63); got != 43 {
		t.Errorf("corner-to-corner at cycle %d, want 43", got)
	}
}

func TestBroadcastViaVCTM(t *testing.T) {
	n := mustNew(t, nil)
	var dsts []mesh.NodeID
	for i := mesh.NodeID(0); i < 64; i++ {
		if i != 27 {
			dsts = append(dsts, i)
		}
	}
	n.Inject(sim.Message{ID: 1, Src: 27, Dsts: dsts, Op: packet.OpReadReq})
	got := make(map[mesh.NodeID]int)
	for _, d := range stepUntilQuiescent(t, n, 2000) {
		got[d.Dst]++
	}
	if len(got) != 63 {
		t.Fatalf("broadcast reached %d nodes, want 63", len(got))
	}
	for node, c := range got {
		if c != 1 {
			t.Errorf("node %d received %d copies", node, c)
		}
	}
}

func TestTreeCacheReused(t *testing.T) {
	n := mustNew(t, nil)
	var dsts []mesh.NodeID
	for i := mesh.NodeID(1); i < 64; i++ {
		dsts = append(dsts, i)
	}
	// Full broadcasts use the per-source cache, not the keyed map.
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: dsts, Op: packet.OpReadReq})
	stepUntilQuiescent(t, n, 2000)
	first := n.bcast[0]
	if first == nil {
		t.Fatal("broadcast tree not cached for source 0")
	}
	if len(n.trees) != 0 {
		t.Fatalf("full broadcast landed in the keyed cache (%d entries)", len(n.trees))
	}
	n.Inject(sim.Message{ID: 2, Src: 0, Dsts: dsts, Op: packet.OpReadReq})
	stepUntilQuiescent(t, n, 2000)
	if n.bcast[0] != first {
		t.Error("repeat broadcast rebuilt the cached tree")
	}
	// Partial multicasts fall back to the keyed cache.
	part := dsts[:5]
	n.Inject(sim.Message{ID: 3, Src: 0, Dsts: part, Op: packet.OpReadReq})
	stepUntilQuiescent(t, n, 2000)
	if len(n.trees) != 1 {
		t.Fatalf("keyed cache has %d entries after partial multicast", len(n.trees))
	}
	n.Inject(sim.Message{ID: 4, Src: 0, Dsts: part, Op: packet.OpReadReq})
	stepUntilQuiescent(t, n, 2000)
	if len(n.trees) != 1 {
		t.Errorf("keyed cache grew to %d entries on repeat multicast", len(n.trees))
	}
}

func TestExactOnceUnderLoad(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.Seed = 5 })
	rng := rand.New(rand.NewSource(42))
	injected := make(map[uint64]mesh.NodeID)
	delivered := make(map[uint64]int)
	var id uint64
	collect := func(ds []sim.Delivery) {
		for _, d := range ds {
			delivered[d.MsgID]++
		}
	}
	for cycle := 0; cycle < 400; cycle++ {
		for node := mesh.NodeID(0); node < 64; node++ {
			if rng.Float64() < 0.15 && n.NICFree(node) > 0 {
				dst := mesh.NodeID(rng.Intn(64))
				if dst == node {
					continue
				}
				id++
				injected[id] = dst
				n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
			}
		}
		collect(n.Step(nil))
	}
	for i := 0; i < 30000 && !n.Quiescent(); i++ {
		collect(n.Step(nil))
	}
	if !n.Quiescent() {
		t.Fatal("network failed to drain")
	}
	if len(delivered) != len(injected) {
		t.Fatalf("delivered %d messages, injected %d", len(delivered), len(injected))
	}
	for m, c := range delivered {
		if c != 1 {
			t.Fatalf("msg %d delivered %d times", m, c)
		}
	}
}

func TestMixedUnicastAndBroadcast(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.Seed = 9 })
	var all []mesh.NodeID
	for i := mesh.NodeID(1); i < 64; i++ {
		all = append(all, i)
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: all, Op: packet.OpWriteReq})
	want := map[uint64]int{1: 63}
	id := uint64(2)
	for s := mesh.NodeID(8); s < 24; s++ {
		n.Inject(sim.Message{ID: id, Src: s, Dsts: []mesh.NodeID{63 - s}, Op: packet.OpSynthetic})
		want[id] = 1
		id++
	}
	got := make(map[uint64]int)
	for _, d := range stepUntilQuiescent(t, n, 5000) {
		got[d.MsgID]++
	}
	for m, w := range want {
		if got[m] != w {
			t.Errorf("msg %d delivered %d times, want %d", m, got[m], w)
		}
	}
}

func TestNICCapacityAndPanics(t *testing.T) {
	n := mustNew(t, func(c *Config) { c.NICEntries = 1 })
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	if n.NICFree(0) != 0 {
		t.Error("NICFree should be 0")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("full NIC", func() {
		n.Inject(sim.Message{ID: 2, Src: 0, Dsts: []mesh.NodeID{1}, Op: packet.OpSynthetic})
	})
	n2 := mustNew(t, nil)
	mustPanic("self-directed", func() {
		n2.Inject(sim.Message{ID: 1, Src: 3, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	})
	mustPanic("no destinations", func() {
		n2.Inject(sim.Message{ID: 1, Src: 3, Dsts: nil, Op: packet.OpSynthetic})
	})
}

func TestEnergyAccumulates(t *testing.T) {
	n := mustNew(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	stepUntilQuiescent(t, n, 200)
	r := n.Run()
	if r.ElectricalEnergyPJ <= 0 || r.LeakagePJ <= 0 {
		t.Errorf("energy not accumulating: %v / %v", r.ElectricalEnergyPJ, r.LeakagePJ)
	}
	if r.OpticalEnergyPJ != 0 {
		t.Error("electrical network should have no optical energy")
	}
	if r.LinkTraversals != 2 {
		t.Errorf("link traversals = %d, want 2", r.LinkTraversals)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		n := mustNew(t, nil)
		rng := rand.New(rand.NewSource(7))
		var id uint64
		for cycle := 0; cycle < 200; cycle++ {
			for node := mesh.NodeID(0); node < 64; node++ {
				if rng.Float64() < 0.2 && n.NICFree(node) > 0 {
					dst := mesh.NodeID(rng.Intn(64))
					if dst == node {
						continue
					}
					id++
					n.Inject(sim.Message{ID: id, Src: node, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
				}
			}
			n.Step(nil)
		}
		return n.Run().ElectricalEnergyPJ, n.Run().LinkTraversals
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", e1, l1, e2, l2)
	}
}

func TestWaitForTailCreditLimitsSingleVC(t *testing.T) {
	// With one VC per port, back-to-back packets over the same link
	// serialise on the credit round-trip: each packet holds the
	// downstream VC until it departs, and the credit returns one cycle
	// later. Throughput must be well below 1 flit/cycle.
	n := mustNew(t, func(c *Config) { c.VCs = 1 })
	const packets = 20
	for i := uint64(1); i <= packets; i++ {
		n.Inject(sim.Message{ID: i, Src: 0, Dsts: []mesh.NodeID{2}, Op: packet.OpSynthetic})
	}
	ds := stepUntilQuiescent(t, n, 2000)
	if len(ds) != packets {
		t.Fatalf("delivered %d of %d", len(ds), packets)
	}
	// Each hop takes RouterDelay=3 plus credit turnaround: 20 packets
	// over a single VC chain cannot finish in under ~20*4 cycles.
	if n.cycle < packets*4 {
		t.Errorf("completed at cycle %d, too fast for single-VC credit flow", n.cycle)
	}
}

func TestTenVCsRecoverThroughput(t *testing.T) {
	// The Table 2 configuration pipelines 10 packets per port
	// concurrently, finishing the same workload far sooner.
	slow := mustNew(t, func(c *Config) { c.VCs = 1 })
	fast := mustNew(t, nil) // 10 VCs
	const packets = 20
	run := func(n *Network) int64 {
		for i := uint64(1); i <= packets; i++ {
			n.Inject(sim.Message{ID: i, Src: 0, Dsts: []mesh.NodeID{2}, Op: packet.OpSynthetic})
		}
		stepUntilQuiescent(t, n, 2000)
		return n.cycle
	}
	tSlow, tFast := run(slow), run(fast)
	if tFast*2 > tSlow {
		t.Errorf("10 VCs (%d cycles) should be far faster than 1 VC (%d cycles)", tFast, tSlow)
	}
}

func TestInputSpeedupAllowsParallelOutputs(t *testing.T) {
	// One input port feeding four different outputs in the same window:
	// input speedup 4 lets all four flits traverse without serialising
	// on the crossbar input.
	n := mustNew(t, nil)
	// Node 9 (1,1) has all four neighbours; send one packet each way.
	dsts := []mesh.NodeID{10, 8, 17, 1}
	for i, d := range dsts {
		n.Inject(sim.Message{ID: uint64(i + 1), Src: 9, Dsts: []mesh.NodeID{d}, Op: packet.OpSynthetic})
	}
	// All four arrive within one cycle of each other: injection is one
	// per cycle into separate VCs, but switch traversal overlaps.
	arrivals := map[uint64]int64{}
	for i := int64(0); i < 40 && len(arrivals) < 4; i++ {
		for _, d := range n.Step(nil) {
			arrivals[d.MsgID] = i
		}
	}
	if len(arrivals) != 4 {
		t.Fatalf("delivered %d of 4", len(arrivals))
	}
	var minAt, maxAt int64 = 1 << 62, -1
	for _, at := range arrivals {
		if at < minAt {
			minAt = at
		}
		if at > maxAt {
			maxAt = at
		}
	}
	// Injection serialises (1 NIC move/cycle) but nothing else should:
	// spread <= number of packets.
	if maxAt-minAt > 4 {
		t.Errorf("arrival spread %d cycles, want <= 4", maxAt-minAt)
	}
}

func TestQuiescentInitially(t *testing.T) {
	if !mustNew(t, nil).Quiescent() {
		t.Error("fresh network not quiescent")
	}
}
