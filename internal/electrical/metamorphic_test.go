package electrical

// Metamorphic tests for the event-driven kernel: transformations of a
// scenario that provably cannot change per-packet behaviour must leave
// the observable results untouched. Unlike the differential suite these
// need no reference implementation — each test checks the kernel against
// a transformed copy of itself.
//
//   - Translation: XY dimension-order routing never leaves the bounding
//     box of source and destination, so traffic confined to a block of a
//     larger mesh behaves identically wherever the block sits. Moving the
//     block permutes the IDs of routers that never see a flit — exactly
//     the inactive-router permutation the active set must be insensitive
//     to.
//   - Idle gaps: once the network is quiescent and credit timers have
//     settled, extra idle cycles are unobservable. Inserting gaps between
//     bursts must not change any packet's latency, the delivered count,
//     or the traversal count.

import (
	"math/rand"
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
)

// blockEvent is one injection in block-local coordinates.
type blockEvent struct {
	gap      int   // idle cycles before this injection
	src, dst int   // block-local node indices
	dsts     []int // non-nil for multicast
}

// blockSchedule draws a deterministic burst schedule inside a side×side
// block.
func blockSchedule(seed int64, side, events int) []blockEvent {
	r := rand.New(rand.NewSource(seed))
	sched := make([]blockEvent, events)
	for i := range sched {
		ev := blockEvent{gap: r.Intn(4), src: r.Intn(side * side)}
		if r.Intn(8) == 0 {
			for n := 0; n < side*side; n++ {
				if n != ev.src && r.Intn(3) == 0 {
					ev.dsts = append(ev.dsts, n)
				}
			}
		}
		if ev.dsts == nil {
			ev.dst = r.Intn(side*side - 1)
			if ev.dst >= ev.src {
				ev.dst++
			}
		}
		sched[i] = ev
	}
	return sched
}

// latencyKey identifies one (message, block-local destination) delivery.
type latencyKey struct {
	msgID uint64
	local int
}

// runBlock replays sched inside the block at origin (ox,oy) of a cfg-sized
// mesh and returns every delivery's latency plus the final counters.
func runBlock(t *testing.T, cfg Config, ox, oy, side int, sched []blockEvent) (map[latencyKey]int64, *stats.Run) {
	t.Helper()
	n := New(cfg)
	toNode := func(local int) mesh.NodeID {
		return mesh.NodeID((oy+local/side)*cfg.Width + ox + local%side)
	}
	toLocal := make(map[mesh.NodeID]int, side*side)
	for l := 0; l < side*side; l++ {
		toLocal[toNode(l)] = l
	}
	born := map[uint64]int64{}
	lat := map[latencyKey]int64{}
	var cycle int64
	var buf []sim.Delivery
	step := func() {
		buf = n.Step(buf[:0])
		for _, d := range buf {
			local, ok := toLocal[d.Dst]
			if !ok {
				t.Fatalf("delivery at node %d outside the traffic block", d.Dst)
			}
			lat[latencyKey{d.MsgID, local}] = cycle - born[d.MsgID]
		}
		cycle++
	}
	var id uint64
	for _, ev := range sched {
		for g := 0; g < ev.gap; g++ {
			step()
		}
		src := toNode(ev.src)
		if n.NICFree(src) <= 0 {
			step()
			if n.NICFree(src) <= 0 {
				continue // same schedule position skips in every run
			}
		}
		id++
		m := sim.Message{ID: id, Src: src, Op: packet.OpSynthetic}
		for _, d := range ev.dsts {
			m.Dsts = append(m.Dsts, toNode(d))
		}
		if len(m.Dsts) == 0 {
			m.Dsts = []mesh.NodeID{toNode(ev.dst)}
		}
		born[id] = cycle
		n.Inject(m)
		step()
	}
	for i := 0; i < 20000 && !n.Quiescent(); i++ {
		step()
	}
	if !n.Quiescent() {
		t.Fatal("network failed to drain")
	}
	return lat, n.Run()
}

// TestMetamorphicTranslation runs the same block schedule at three
// origins of a 12×10 mesh. Every placement renames the inactive routers;
// nothing observable may change.
func TestMetamorphicTranslation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 12, 10
	const side = 4
	sched := blockSchedule(42, side, 120)
	base, baseRun := runBlock(t, cfg, 0, 0, side, sched)
	if len(base) == 0 {
		t.Fatal("schedule delivered nothing")
	}
	for _, origin := range []struct{ ox, oy int }{{8, 6}, {5, 3}, {0, 6}} {
		lat, run := runBlock(t, cfg, origin.ox, origin.oy, side, sched)
		if len(lat) != len(base) {
			t.Fatalf("origin (%d,%d): %d deliveries, want %d", origin.ox, origin.oy, len(lat), len(base))
		}
		for k, want := range base {
			if got := lat[k]; got != want {
				t.Errorf("origin (%d,%d): msg %d → local %d latency %d, want %d",
					origin.ox, origin.oy, k.msgID, k.local, got, want)
			}
		}
		if run.Delivered != baseRun.Delivered || run.LinkTraversals != baseRun.LinkTraversals {
			t.Errorf("origin (%d,%d): delivered/traversals %d/%d, want %d/%d",
				origin.ox, origin.oy, run.Delivered, run.LinkTraversals, baseRun.Delivered, baseRun.LinkTraversals)
		}
		if run.ElectricalEnergyPJ != baseRun.ElectricalEnergyPJ {
			t.Errorf("origin (%d,%d): dynamic energy %v, want %v (bit-identical)",
				origin.ox, origin.oy, run.ElectricalEnergyPJ, baseRun.ElectricalEnergyPJ)
		}
	}
}

// runGapped replays bursts of unicast traffic, draining to quiescence
// between bursts and then idling for settle+gap extra cycles, and returns
// per-packet latencies and the final counters.
func runGapped(t *testing.T, cfg Config, gap int) (map[latencyKey]int64, *stats.Run) {
	t.Helper()
	n := New(cfg)
	nodes := cfg.Width * cfg.Height
	r := rand.New(rand.NewSource(7))
	born := map[uint64]int64{}
	lat := map[latencyKey]int64{}
	var cycle int64
	var buf []sim.Delivery
	step := func() {
		buf = n.Step(buf[:0])
		for _, d := range buf {
			lat[latencyKey{d.MsgID, int(d.Dst)}] = cycle - born[d.MsgID]
		}
		cycle++
	}
	var id uint64
	for burst := 0; burst < 12; burst++ {
		for k := 0; k < 6; k++ {
			src := mesh.NodeID(r.Intn(nodes))
			dst := mesh.NodeID(r.Intn(nodes - 1))
			if dst >= src {
				dst++
			}
			for n.NICFree(src) <= 0 {
				step()
			}
			id++
			born[id] = cycle
			n.Inject(sim.Message{ID: id, Src: src, Dsts: []mesh.NodeID{dst}, Op: packet.OpSynthetic})
			if k%2 == 0 {
				step()
			}
		}
		for i := 0; i < 20000 && !n.Quiescent(); i++ {
			step()
		}
		// Settle past any in-flight credit timers so the pre-burst state
		// is cycle-invariant, then insert the metamorphic gap.
		for g := 0; g < 4*cfg.RouterDelay+8+gap; g++ {
			step()
		}
	}
	return lat, n.Run()
}

// TestMetamorphicIdleGaps inserts idle gaps between quiescent bursts:
// per-packet latencies, delivered counts and traversals must not move.
func TestMetamorphicIdleGaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 6, 6
	base, baseRun := runGapped(t, cfg, 0)
	if len(base) == 0 {
		t.Fatal("schedule delivered nothing")
	}
	for _, gap := range []int{1, 37, 256} {
		lat, run := runGapped(t, cfg, gap)
		if len(lat) != len(base) {
			t.Fatalf("gap %d: %d deliveries, want %d", gap, len(lat), len(base))
		}
		for k, want := range base {
			if got := lat[k]; got != want {
				t.Errorf("gap %d: msg %d → node %d latency %d, want %d", gap, k.msgID, k.local, got, want)
			}
		}
		if run.Delivered != baseRun.Delivered || run.LinkTraversals != baseRun.LinkTraversals {
			t.Errorf("gap %d: delivered/traversals %d/%d, want %d/%d",
				gap, run.Delivered, run.LinkTraversals, baseRun.Delivered, baseRun.LinkTraversals)
		}
	}
}
