package electrical

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

// TestCheckInvariantsDetectsUnlistedBusyRouter corrupts the active-set
// membership flag of a busy router and asserts the telemetry invariant
// check notices — a passing watchdog is evidence, not vacuity.
func TestCheckInvariantsDetectsUnlistedBusyRouter(t *testing.T) {
	n := New(DefaultConfig())
	n.Inject(sim.Message{ID: 1, Src: 3, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("fresh inject: %v", err)
	}
	if !n.busy(3) || !n.listed[3] {
		t.Fatal("inject did not make router 3 busy and listed")
	}
	n.listed[3] = false
	if err := n.CheckInvariants(); err == nil {
		t.Error("unlisted busy router not detected")
	}
	n.listed[3] = true
}

// TestActiveRoutersTracksLoad drives a few cycles and checks the
// active-set size report stays within [1, nodes] while work exists.
func TestActiveRoutersTracksLoad(t *testing.T) {
	n := New(DefaultConfig())
	if n.ActiveRouters() != 0 {
		t.Fatalf("idle network reports %d active routers", n.ActiveRouters())
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{63}, Op: packet.OpSynthetic})
	var buf []sim.Delivery
	for i := 0; i < 100 && !n.Quiescent(); i++ {
		if a := n.ActiveRouters(); a < 1 || a > n.Nodes() {
			t.Fatalf("active routers = %d with work in flight", a)
		}
		buf = n.Step(buf[:0])
	}
	if !n.Quiescent() {
		t.Fatal("single message did not drain in 100 cycles")
	}
}
