package electrical

// Active-set maintenance for the event-driven kernel.
//
// A router belongs in the active set exactly while it holds work: at least
// one occupied VC (occ[node] > 0) or a queued NIC entry. Everything a
// pipeline phase does — ejection, injection, VC allocation, switch
// allocation, aging — requires one of those, so walking only set members
// is behaviourally identical to the dense walk (the differential
// equivalence suite enforces this, event for event). State that idle
// routers merely *expose* to busy neighbours — empty-VC credit timers
// (availAt), upstream reservations — is read in place by the busy side
// and never requires the idle router to run.
//
// Representation: a sorted []mesh.NodeID (ascending, so phase walks visit
// routers in exactly the dense order and event streams, float energy
// accumulation order, iSLIP pointer updates and transit append order all
// match bit for bit), plus an intrusive per-router membership flag
// (listed) that makes activation O(1) and idempotent. Routers activated
// since the last cycle accumulate in activeAdd; once per Step,
// mergeActive sorts that delta, merges it into the sorted list, and drops
// members that went idle — O(active + changed·log changed) per cycle,
// with zero steady-state allocation (the merge ping-pongs between two
// retained backing arrays).
//
// Invariant (both kernels maintain it; Quiescent depends on it):
// busy(node) ⇒ listed[node]. Activation happens at the only two
// idle→busy edges — Inject appending to a NIC and a link arrival filling
// a VC. Deactivation is lazy: a router that went idle stays listed until
// the next merge, where every phase no-ops on it, exactly as the dense
// walk no-ops on idle routers.

import (
	"slices"

	"phastlane/internal/mesh"
)

// busy reports whether node currently holds work.
func (n *Network) busy(node mesh.NodeID) bool {
	return n.occ[node] > 0 || len(n.routers[node].nic) > 0
}

// activate enrolls node in the active set; a no-op for members.
func (n *Network) activate(node mesh.NodeID) {
	if !n.listed[node] {
		n.listed[node] = true
		n.activeAdd = append(n.activeAdd, node)
	}
}

// mergeActive folds newly activated routers into the sorted active list,
// compacts out routers that went idle, and returns the list for this
// cycle's phase walk. Called once per Step by the event-driven kernel
// (the dense reference walks allNodes and never merges; its activeAdd
// grows to at most the ever-active router set, keeping Quiescent exact).
func (n *Network) mergeActive() []mesh.NodeID {
	if len(n.activeAdd) > 1 {
		slices.Sort(n.activeAdd)
	}
	// n.active and n.activeAdd are disjoint (the listed flag guards
	// admission), so a plain two-way merge yields strictly ascending IDs.
	out := n.activeScratch[:0]
	i, j := 0, 0
	for i < len(n.active) || j < len(n.activeAdd) {
		var node mesh.NodeID
		if j >= len(n.activeAdd) || (i < len(n.active) && n.active[i] < n.activeAdd[j]) {
			node = n.active[i]
			i++
		} else {
			node = n.activeAdd[j]
			j++
		}
		if n.busy(node) {
			out = append(out, node)
		} else {
			n.listed[node] = false
		}
	}
	n.activeScratch = n.active[:0]
	n.active = out
	n.activeAdd = n.activeAdd[:0]
	return n.active
}
