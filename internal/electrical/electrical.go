// Package electrical implements the paper's baseline network (Section 4,
// Table 2): an aggressive input-queued virtual-channel router mesh with
// iSLIP virtual-channel and switch allocation, 10 single-flit VCs per port,
// credit-based flow control with wait-for-tail-credit, a 2-or-3-cycle
// per-hop router latency (pipeline speculation and route lookahead
// assumed), input speedup 4, direct 1-cycle ejection that bypasses the
// crossbar, and Virtual Circuit Tree Multicasting for broadcasts.
//
// The simulator runs on an event-driven kernel: every per-cycle pipeline
// phase walks only the routers that currently hold work (occupied VCs or
// queued NIC entries), so idle routers and empty VCs cost nothing. The
// historical walk-every-router-every-cycle loop is preserved behind
// NewReference as the dense reference implementation the differential
// equivalence suite checks the kernel against (see activeset.go).
package electrical

import (
	"fmt"
	"math/rand"

	"phastlane/internal/fault"
	"phastlane/internal/islip"
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/photonic"
	"phastlane/internal/power"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
	"phastlane/internal/topo"
	"phastlane/internal/vctm"
)

// Config parameterises the baseline network. DefaultConfig matches Table 2
// with the three-cycle router; set RouterDelay to 2 for the "very
// aggressive" variant of Section 5.
type Config struct {
	Width, Height int
	// VCs is the number of virtual channels per input port, each
	// holding one flit (Table 2).
	VCs int
	// RouterDelay is the per-hop latency in cycles (2 or 3).
	RouterDelay int
	// InputSpeedup is how many flits one input port may push through
	// the crossbar per cycle (Table 2: 4).
	InputSpeedup int
	// Iterations is the iSLIP iteration count for both allocators.
	Iterations int
	// NICEntries is the injection queue capacity (Table 2: 50).
	NICEntries int
	// Faults, when non-nil and non-empty, arms the shared deterministic
	// fault-injection plan (package fault): dead links, stuck routers and
	// failed VC/NIC slots. Unicast packets route around dead hardware;
	// multicast tree branches stall on it (VCTM trees are pinned).
	// Control corruption does not apply to the electrical baseline. Nil
	// (or an empty plan) costs nothing.
	Faults *fault.Plan
	// LossTimeout, when positive, arms the delivery watchdog: a packet
	// still buffered that many cycles after injection is abandoned and
	// reported lost. 0 disables timeouts; the baseline's credit-based
	// flow control never drops packets on its own.
	LossTimeout int64
	Seed        int64
}

// DefaultConfig returns the Table 2 baseline.
func DefaultConfig() Config {
	return Config{
		Width: 8, Height: 8,
		VCs:          10,
		RouterDelay:  3,
		InputSpeedup: 4,
		Iterations:   2,
		NICEntries:   50,
		Seed:         1,
	}
}

// Validate reports configuration errors. The mesh radix is unbounded
// above: the baseline scales to 32x32 and 64x64 meshes (the scaling-study
// configurations) with per-cycle cost proportional to active routers, not
// mesh size.
func (c Config) Validate() error {
	if c.Width < 2 || c.Height < 2 {
		return fmt.Errorf("electrical: mesh %dx%d too small", c.Width, c.Height)
	}
	if c.VCs < 1 {
		return fmt.Errorf("electrical: VCs %d", c.VCs)
	}
	if c.RouterDelay < 2 {
		return fmt.Errorf("electrical: router delay %d below the 2-cycle floor", c.RouterDelay)
	}
	if c.InputSpeedup < 1 || c.Iterations < 1 || c.NICEntries < 1 {
		return fmt.Errorf("electrical: bad speedup/iterations/NIC (%d/%d/%d)",
			c.InputSpeedup, c.Iterations, c.NICEntries)
	}
	if c.LossTimeout < 0 {
		return fmt.Errorf("electrical: negative loss timeout %d", c.LossTimeout)
	}
	if err := c.Faults.Validate(c.Width, c.Height); err != nil {
		return err
	}
	return nil
}

// epacket is one logical packet (a single flit). Multicast packets carry
// their VCTM tree and are replicated in-network at branch routers; all
// replicas share one epacket, tracked by refs. Packets are pooled on the
// network (pktFree) and recycled when the last reference drops.
type epacket struct {
	msgID uint64
	dst   mesh.NodeID // unicast destination; ignored when tree != nil
	tree  *vctm.Tree
	// born is the injection cycle, the delivery watchdog's age base.
	born int64
	// refs counts live holders: the NIC entry or VC slot owning the
	// packet plus every in-transit link arrival.
	refs int
}

// branch is one pending replication of a packet out of a router.
type branch struct {
	dir   mesh.Dir
	outVC int // downstream VC reserved by VA, or -1
}

// vcState is one single-flit virtual channel.
type vcState struct {
	pkt      *epacket
	age      int
	deliver  bool // pending ejection to the local node
	branches []branch
	// availAt is when the (empty) VC may be reserved again by an
	// upstream VA - the credit round-trip of wait-for-tail-credit.
	availAt  int64
	reserved bool
}

func (v *vcState) empty() bool { return v.pkt == nil }

// erouter is one baseline router: five input ports (N, E, S, W, local
// injection) of VCs single-flit channels, per-output-port VC allocators,
// and a switch allocator with input speedup.
type erouter struct {
	vcs [mesh.NumDirs][]vcState
	va  [mesh.NumLinkDirs]*islip.Allocator
	sa  *islip.Allocator
	nic []*epacket
}

// arrival is a flit in transit on a link, applied at the next cycle.
type arrival struct {
	node mesh.NodeID
	port mesh.Dir
	vc   int
	pkt  *epacket
}

// Network is the electrical baseline simulator implementing sim.Network.
type Network struct {
	cfg Config
	// top is the routing view of the fabric: next-hop lookups, VCTM
	// tree routes and fault detours all compile through it, while m
	// stays the concrete mesh geometry the wormhole datapath (ports,
	// credits, link walk) is built around.
	top    topo.Topology
	det    topo.FaultRouting
	m      *mesh.Mesh
	energy power.Electrical
	rng     *rand.Rand
	routers []erouter
	transit []arrival
	trees   map[string]*vctm.Tree
	// bcast caches the full-broadcast VCTM tree per source so the common
	// broadcast inject skips the map-key allocation of vctm.Key.
	bcast []*vctm.Tree
	// pktFree is the epacket free list; vcReqs/vcFree are the VC
	// allocator's per-call scratch. All exist so the steady-state Step
	// loop allocates nothing.
	pktFree []*epacket
	vcReqs  []bool
	vcFree  []bool
	// tracer receives router events when set (SetTracer).
	tracer func(obs.Event)
	// phases receives sampled per-phase step timings when set
	// (SetPhases); nil — the default — costs one branch per Step.
	phases *telemetry.Phases

	// Event-driven kernel state (activeset.go). dense selects the
	// reference walk-every-router loop (NewReference); allNodes is that
	// walk's 0..Nodes-1 order. occ counts occupied VCs per router;
	// listed, active, activeAdd and activeScratch implement the sorted
	// active set with O(changed routers) maintenance.
	dense         bool
	allNodes      []mesh.NodeID
	occ           []int32
	listed        []bool
	active        []mesh.NodeID
	activeAdd     []mesh.NodeID
	activeScratch []mesh.NodeID

	// Fault injection and the delivery watchdog (fault.go). faults is
	// nil unless a plan is armed; watchEvery > 0 arms the watchdog.
	faults      *fault.Injector
	routeUsable mesh.LinkUsable
	frDirs      []mesh.Dir
	lossHandler func(sim.Loss)
	nackHandler func(src mesh.NodeID)
	watchEvery  int64
	nextScan    int64
	starveAfter int64

	run   stats.Run
	cycle int64
}

var (
	_ sim.Network                 = (*Network)(nil)
	_ sim.Traceable               = (*Network)(nil)
	_ obs.Traceable               = (*Network)(nil)
	_ telemetry.Instrumentable    = (*Network)(nil)
	_ telemetry.ActiveSetReporter = (*Network)(nil)
	_ telemetry.InvariantChecker  = (*Network)(nil)
)

// SetTracer installs a callback invoked synchronously for every router
// event, using the shared obs vocabulary (buffer occupancy, ejection, NIC
// launch, VC allocation, switch traversal, credit stalls, multicast tree
// forks); nil disables tracing — the default, costing nothing when off.
func (n *Network) SetTracer(f func(obs.Event)) { n.tracer = f }

// SetPhases installs a sampled per-phase step profile (telemetry); nil
// disables it — the default, costing one branch per Step.
func (n *Network) SetPhases(p *telemetry.Phases) { n.phases = p }

// ActiveRouters reports the size of the event-driven active set as of
// the last merge (plus routers activated since); under the dense
// reference kernel it degrades to the ever-active router count.
func (n *Network) ActiveRouters() int { return len(n.active) + len(n.activeAdd) }

// CheckInvariants audits the active-set contract busy(node) ⇒
// listed[node] for every router. It is O(nodes) and meant for watchdog
// flush boundaries, never the per-cycle path.
func (n *Network) CheckInvariants() error {
	for node := range n.routers {
		id := mesh.NodeID(node)
		if n.busy(id) && !n.listed[id] {
			return fmt.Errorf("electrical: router %d busy (occ %d, nic %d) but not active-set-listed",
				node, n.occ[id], len(n.routers[id].nic))
		}
	}
	return nil
}

// emit reports an event to the tracer, if any.
func (n *Network) emit(kind obs.Kind, msgID uint64, node mesh.NodeID, dir mesh.Dir) {
	if n.tracer != nil {
		n.tracer(obs.Event{Cycle: n.cycle, Kind: kind, MsgID: msgID, Node: node, Dir: dir})
	}
}

// New builds a baseline network on the event-driven kernel; it panics on
// invalid configuration.
func New(cfg Config) *Network {
	return newNetwork(cfg, false)
}

// newNetwork is the shared constructor behind New and NewReference.
func newNetwork(cfg Config, dense bool) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	top := topo.NewMesh2D(cfg.Width, cfg.Height)
	m := top.Mesh()
	n := &Network{
		cfg:     cfg,
		top:     top,
		det:     top,
		m:       m,
		energy:  power.NewElectrical(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		routers: make([]erouter, m.Nodes()),
		trees:   make(map[string]*vctm.Tree),
		bcast:   make([]*vctm.Tree, m.Nodes()),
		vcReqs:  make([]bool, mesh.NumDirs*cfg.VCs),
		vcFree:  make([]bool, cfg.VCs),
		dense:   dense,
		occ:     make([]int32, m.Nodes()),
		listed:  make([]bool, m.Nodes()),
	}
	if dense {
		n.allNodes = make([]mesh.NodeID, m.Nodes())
		for i := range n.allNodes {
			n.allNodes[i] = mesh.NodeID(i)
		}
	}
	for i := range n.routers {
		r := &n.routers[i]
		for p := 0; p < mesh.NumDirs; p++ {
			r.vcs[p] = make([]vcState, cfg.VCs)
			// Pre-size every branch list so a packet's first visit to a
			// cold VC never allocates: at low rates the working set of
			// (router, port, VC) states grows for thousands of cycles,
			// and lazily-grown slices would show up as a steady
			// allocation trickle. A packet forks into at most one branch
			// per link direction.
			for v := range r.vcs[p] {
				r.vcs[p][v].branches = make([]branch, 0, mesh.NumLinkDirs)
			}
		}
		// The NIC queue is bounded; give it its full backing up front.
		r.nic = make([]*epacket, 0, cfg.NICEntries)
		for p := 0; p < mesh.NumLinkDirs; p++ {
			r.va[p] = islip.New(mesh.NumDirs*cfg.VCs, cfg.VCs, 1, cfg.Iterations)
		}
		r.sa = islip.New(mesh.NumDirs, mesh.NumLinkDirs, cfg.InputSpeedup, cfg.Iterations)
	}
	n.faultInit()
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes implements sim.Network.
func (n *Network) Nodes() int { return n.m.Nodes() }

// Run implements sim.Network.
func (n *Network) Run() *stats.Run { return &n.run }

// NICFree implements sim.Network. A stuck router's NIC accepts nothing;
// failed injection-queue slots reduce the reported capacity.
func (n *Network) NICFree(node mesh.NodeID) int {
	f := n.cfg.NICEntries - len(n.routers[node].nic)
	if n.faults != nil {
		if n.faults.NodeStuck(n.cycle, node) {
			return 0
		}
		f -= n.faults.LostSlots(n.cycle, node, mesh.Local)
	}
	if f < 0 {
		return 0
	}
	return f
}

// Quiescent implements sim.Network. Any router holding work is listed in
// the active set (the busy-implies-listed invariant both kernels
// maintain), so only listed routers need checking — O(active), not
// O(mesh).
func (n *Network) Quiescent() bool {
	if len(n.transit) > 0 {
		return false
	}
	for _, node := range n.active {
		if n.busy(node) {
			return false
		}
	}
	for _, node := range n.activeAdd {
		if n.busy(node) {
			return false
		}
	}
	return true
}

// getPacket takes an epacket from the free list (or allocates one) and
// resets it; the caller sets all fields.
func (n *Network) getPacket() *epacket {
	if k := len(n.pktFree); k > 0 {
		p := n.pktFree[k-1]
		n.pktFree = n.pktFree[:k-1]
		*p = epacket{}
		return p
	}
	return &epacket{}
}

// dropRef releases one reference to p, returning it to the free list when
// the last holder lets go. Callers must not touch p afterwards.
func (n *Network) dropRef(p *epacket) {
	p.refs--
	if p.refs == 0 {
		n.pktFree = append(n.pktFree, p)
	}
}

// broadcastTree returns the cached full-broadcast tree for src when dsts is
// exactly "every node but src" in ascending order (the shape the sim
// harness emits), or nil so the caller falls back to the keyed cache. The
// per-source cache avoids vctm.Key's string allocation on the hot inject
// path of broadcast-heavy workloads.
func (n *Network) broadcastTree(src mesh.NodeID, dsts []mesh.NodeID) *vctm.Tree {
	nodes := n.m.Nodes()
	if len(dsts) != nodes-1 {
		return nil
	}
	want := mesh.NodeID(0)
	for _, d := range dsts {
		if want == src {
			want++
		}
		if d != want {
			return nil
		}
		want++
	}
	if t := n.bcast[src]; t != nil {
		return t
	}
	t := vctm.Build(n.top, src, dsts)
	n.bcast[src] = t
	return t
}

// Inject implements sim.Network. Broadcasts become a single packet with a
// cached VCTM tree, replicated at branch routers. The source router joins
// the active set.
func (n *Network) Inject(m sim.Message) {
	if free := n.NICFree(m.Src); free <= 0 {
		panic(fmt.Sprintf("electrical: inject into full NIC at node %d (%d free entries; check NICFree before Inject)", m.Src, free))
	}
	n.run.Injected++
	n.emit(obs.KindInject, m.ID, m.Src, mesh.Local)
	p := n.getPacket()
	p.msgID = m.ID
	p.born = n.cycle
	p.refs = 1
	switch {
	case len(m.Dsts) == 1:
		if m.Dsts[0] == m.Src {
			panic("electrical: self-directed message")
		}
		p.dst = m.Dsts[0]
	case len(m.Dsts) > 1:
		if tree := n.broadcastTree(m.Src, m.Dsts); tree != nil {
			p.tree = tree
			break
		}
		key := vctm.Key(m.Src, m.Dsts)
		tree, ok := n.trees[key]
		if !ok {
			tree = vctm.Build(n.top, m.Src, m.Dsts)
			n.trees[key] = tree
		}
		p.tree = tree
	default:
		panic("electrical: message without destinations")
	}
	n.routers[m.Src].nic = append(n.routers[m.Src].nic, p)
	n.activate(m.Src)
}

// fill loads a packet into an empty VC, computing its replication set (the
// onward branches and whether it ejects locally) into the VC's reusable
// branch scratch. The VC keeps its branch backing array across occupants so
// the steady-state loop does not allocate.
func (n *Network) fill(vc *vcState, p *epacket, at mesh.NodeID) {
	bs := vc.branches[:0]
	deliver := false
	if p.tree != nil {
		for _, d := range p.tree.Children(at) {
			bs = append(bs, branch{dir: d, outVC: -1})
		}
		deliver = p.tree.Deliver(at)
	} else if at == p.dst {
		deliver = true
	} else if d, ok := n.nextDir(at, p.dst); ok {
		bs = append(bs, branch{dir: d, outVC: -1})
	}
	// An unreachable unicast destination leaves the VC with no work;
	// the fill call-sites reap it through the loss path when a plan is
	// armed (reapStranded).
	vc.pkt = p
	vc.age = 0
	vc.deliver = deliver
	vc.branches = bs
	vc.availAt = 0
	vc.reserved = false
	n.occ[at]++
}

// Step implements sim.Network: apply link arrivals, eject, inject, run VC
// allocation then switch allocation, launch winners, age VCs. Deliveries
// are appended to buf (see sim.Network for the buffer-ownership contract).
//
// The five pipeline phases run over a node list in ascending ID order: the
// full mesh under the dense reference kernel, the sorted active set under
// the event-driven kernel. Because every phase already no-ops on routers
// without work, the two walks are behaviourally identical — the
// differential equivalence suite pins this, event for event.
func (n *Network) Step(buf []sim.Delivery) []sim.Delivery {
	sp := n.phases.Begin(n.cycle)
	if n.watchEvery > 0 {
		n.faultStep()
	}
	sp.Mark(telemetry.PhaseWatchdog)
	n.applyArrivals()
	sp.Mark(telemetry.PhaseArrivals)
	var nodes []mesh.NodeID
	if n.dense {
		nodes = n.allNodes
	} else {
		nodes = n.mergeActive()
	}
	sp.Mark(telemetry.PhaseActiveSet)
	buf = n.ejectPhase(buf, nodes)
	sp.Mark(telemetry.PhaseEject)
	n.injectPhase(nodes)
	sp.Mark(telemetry.PhaseInject)
	n.allocateVCs(nodes)
	sp.Mark(telemetry.PhaseVCAlloc)
	n.allocateSwitch(nodes)
	sp.Mark(telemetry.PhaseSwitch)
	n.agePhase(nodes)
	sp.Mark(telemetry.PhaseAge)
	n.run.LeakagePJ += power.LeakagePJ(n.energy.LeakageWPerRouter, n.m.Nodes(), 1, photonic.DefaultClockGHz)
	n.cycle++
	sp.End()
	return buf
}

// applyArrivals moves last cycle's link traversals into their reserved
// downstream VCs (phase 1). Receiving routers join the active set before
// the phase walk of this cycle sees them.
func (n *Network) applyArrivals() {
	for _, a := range n.transit {
		vc := &n.routers[a.node].vcs[a.port][a.vc]
		if !vc.empty() || !vc.reserved {
			panic("electrical: arrival into non-reserved VC")
		}
		n.activate(a.node)
		n.fill(vc, a.pkt, a.node)
		n.run.ElectricalEnergyPJ += n.energy.BufferWritePJ
		n.emit(obs.KindBuffer, a.pkt.msgID, a.node, a.port)
		if a.pkt.tree != nil && len(vc.branches) > 1 {
			n.emit(obs.KindTreeFork, a.pkt.msgID, a.node, mesh.Local)
		}
		if n.faults != nil {
			n.reapStranded(vc, a.node)
		}
	}
	n.transit = n.transit[:0]
}

// ejectPhase delivers packets to their local nodes one cycle after they
// entered the router, bypassing the crossbar (phase 2).
func (n *Network) ejectPhase(buf []sim.Delivery, nodes []mesh.NodeID) []sim.Delivery {
	for _, node := range nodes {
		if n.faults != nil && n.faults.NodeStuck(n.cycle, node) {
			continue
		}
		r := &n.routers[node]
		for p := 0; p < mesh.NumDirs; p++ {
			for v := range r.vcs[p] {
				vc := &r.vcs[p][v]
				if vc.empty() || !vc.deliver || vc.age < 1 {
					continue
				}
				buf = append(buf, sim.Delivery{MsgID: vc.pkt.msgID, Dst: node})
				n.run.ElectricalEnergyPJ += n.energy.BufferReadPJ
				n.emit(obs.KindEject, vc.pkt.msgID, node, mesh.Local)
				vc.deliver = false
				n.freeIfDone(node, vc)
			}
		}
	}
	return buf
}

// injectPhase moves each NIC head into a free local-port VC, one per node
// per cycle (phase 3).
func (n *Network) injectPhase(nodes []mesh.NodeID) {
	for _, node := range nodes {
		r := &n.routers[node]
		if len(r.nic) == 0 {
			continue
		}
		if n.faults != nil && n.faults.NodeStuck(n.cycle, node) {
			continue
		}
		injected := false
		for v := range r.vcs[mesh.Local] {
			vc := &r.vcs[mesh.Local][v]
			if !vc.empty() || vc.reserved || vc.availAt > n.cycle {
				continue
			}
			pkt := r.nic[0]
			copy(r.nic, r.nic[1:])
			r.nic = r.nic[:len(r.nic)-1]
			n.fill(vc, pkt, node)
			n.run.ElectricalEnergyPJ += n.energy.BufferWritePJ
			n.emit(obs.KindLaunch, pkt.msgID, node, mesh.Local)
			if pkt.tree != nil && len(vc.branches) > 1 {
				n.emit(obs.KindTreeFork, pkt.msgID, node, mesh.Local)
			}
			if n.faults != nil {
				n.reapStranded(vc, node)
			}
			injected = true
			break
		}
		if !injected && n.nackHandler != nil {
			// NIC head stalled with no free local VC: the credit
			// protocol's backpressure, reported as a congestion nack
			// against the stalling node (its own traffic is what is
			// queued here).
			n.nackHandler(node)
		}
	}
}

// agePhase ages occupied VCs (phase 6). A stuck router's pipeline is
// frozen, so its VCs do not age while the fault is active.
func (n *Network) agePhase(nodes []mesh.NodeID) {
	for _, node := range nodes {
		if n.faults != nil && n.faults.NodeStuck(n.cycle, node) {
			continue
		}
		r := &n.routers[node]
		for p := 0; p < mesh.NumDirs; p++ {
			for v := range r.vcs[p] {
				if !r.vcs[p][v].empty() {
					r.vcs[p][v].age++
				}
			}
		}
	}
}

// freeIfDone releases a VC whose packet has no pending work; the credit
// returns to upstream VA one cycle later (wait-for-tail-credit). The VC's
// reference to the packet drops, recycling it once no transit arrival
// holds it either. node is the router owning vc (the active-set occupancy
// count it decrements).
func (n *Network) freeIfDone(node mesh.NodeID, vc *vcState) {
	if vc.deliver || len(vc.branches) > 0 {
		return
	}
	n.dropRef(vc.pkt)
	vc.pkt = nil
	vc.age = 0
	vc.availAt = n.cycle + 1
	n.occ[node]--
}

// allocateVCs runs the per-output-port iSLIP VC allocators (phase 4).
// Requests and free downstream VCs are gathered up front (into network
// scratch) so idle ports skip the matching entirely.
func (n *Network) allocateVCs(nodes []mesh.NodeID) {
	reqs := n.vcReqs
	free := n.vcFree
	for _, node := range nodes {
		if n.faults != nil && n.faults.NodeStuck(n.cycle, node) {
			continue
		}
		r := &n.routers[node]
		for out := 0; out < mesh.NumLinkDirs; out++ {
			dir := mesh.Dir(out)
			next, ok := n.m.Neighbor(node, dir)
			if !ok {
				continue
			}
			// No reservations across a dead link; packets wanting it
			// wait (multicast) or get rerouted (rerouteFaults).
			if n.faults != nil && n.faults.LinkDown(n.cycle, node, dir) {
				continue
			}
			down := &n.routers[next]
			inPort := dir.Opposite()
			anyReq := false
			for p := 0; p < mesh.NumDirs; p++ {
				for v := range r.vcs[p] {
					want := false
					vc := &r.vcs[p][v]
					if !vc.empty() {
						for _, b := range vc.branches {
							if b.dir == dir && b.outVC < 0 {
								want = true
								break
							}
						}
					}
					reqs[p*n.cfg.VCs+v] = want
					anyReq = anyReq || want
				}
			}
			if !anyReq {
				continue
			}
			// Failed buffer slots mask the highest-numbered VCs of the
			// downstream port for new reservations.
			limit := n.cfg.VCs
			if n.faults != nil {
				limit -= n.faults.LostSlots(n.cycle, next, inPort)
			}
			anyFree := false
			for v := 0; v < n.cfg.VCs; v++ {
				dvc := &down.vcs[inPort][v]
				free[v] = v < limit && dvc.empty() && !dvc.reserved && dvc.availAt <= n.cycle
				anyFree = anyFree || free[v]
			}
			if !anyFree {
				// Credit starvation: packets want this output but
				// every downstream VC is occupied or inside its
				// credit round-trip.
				n.emit(obs.KindCreditStall, 0, node, dir)
				continue
			}
			match := r.va[out].Match(func(in, outVC int) bool {
				return reqs[in] && free[outVC]
			})
			for outVC, in := range match {
				if in < 0 {
					continue
				}
				p, v := in/n.cfg.VCs, in%n.cfg.VCs
				vc := &r.vcs[p][v]
				for i := range vc.branches {
					if vc.branches[i].dir == dir && vc.branches[i].outVC < 0 {
						vc.branches[i].outVC = outVC
						break
					}
				}
				down.vcs[inPort][outVC].reserved = true
				n.run.ElectricalEnergyPJ += n.energy.ArbitrationPJ
				n.emit(obs.KindVCAlloc, vc.pkt.msgID, node, dir)
			}
		}
	}
}

// allocateSwitch runs the iSLIP switch allocator (input speedup 4) and
// launches the granted flits onto their links (phase 5).
func (n *Network) allocateSwitch(nodes []mesh.NodeID) {
	ready := n.cfg.RouterDelay - 1
	for _, node := range nodes {
		if n.faults != nil && n.faults.NodeStuck(n.cycle, node) {
			continue
		}
		r := &n.routers[node]
		// An input port requests an output when any of its VCs has
		// an allocated, unsent branch and has aged through the
		// pipeline. A dead output link takes no requests: an already
		// allocated branch holds its downstream VC until the link
		// heals or the watchdog reclaims the packet.
		match := r.sa.Match(func(in, out int) bool {
			dir := mesh.Dir(out)
			if n.faults != nil && n.faults.LinkDown(n.cycle, node, dir) {
				return false
			}
			for v := range r.vcs[in] {
				vc := &r.vcs[in][v]
				if vc.empty() || vc.age < ready {
					continue
				}
				for _, b := range vc.branches {
					if b.dir == dir && b.outVC >= 0 {
						return true
					}
				}
			}
			return false
		})
		for out, in := range match {
			if in < 0 {
				continue
			}
			dir := mesh.Dir(out)
			// Pick the oldest eligible VC on this input port.
			bestV, bestAge, bestB := -1, -1, -1
			for v := range r.vcs[in] {
				vc := &r.vcs[in][v]
				if vc.empty() || vc.age < ready || vc.age <= bestAge {
					continue
				}
				for bi, b := range vc.branches {
					if b.dir == dir && b.outVC >= 0 {
						bestV, bestAge, bestB = v, vc.age, bi
						break
					}
				}
			}
			if bestV < 0 {
				panic("electrical: SA grant without eligible VC")
			}
			vc := &r.vcs[in][bestV]
			b := vc.branches[bestB]
			next, ok := n.m.Neighbor(node, dir)
			if !ok {
				panic("electrical: traversal off mesh edge")
			}
			vc.pkt.refs++ // the transit arrival is a new holder
			n.transit = append(n.transit, arrival{
				node: next, port: dir.Opposite(), vc: b.outVC, pkt: vc.pkt,
			})
			vc.branches = append(vc.branches[:bestB], vc.branches[bestB+1:]...)
			n.run.ElectricalEnergyPJ += n.energy.BufferReadPJ + n.energy.CrossbarPJ +
				n.energy.LinkPJ + n.energy.ArbitrationPJ
			n.run.LinkTraversals++
			n.emit(obs.KindSwitch, vc.pkt.msgID, node, dir)
			n.freeIfDone(node, vc)
		}
	}
}
