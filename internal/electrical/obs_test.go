package electrical

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
)

func traceNet(t *testing.T, mutate func(*Config)) (*Network, *obs.Metrics) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	if mutate != nil {
		mutate(&cfg)
	}
	n := New(cfg)
	m := obs.NewMetrics(cfg.Width, cfg.Height)
	n.SetTracer(m.Observe)
	return n, m
}

func drain(t *testing.T, n *Network, limit int) []sim.Delivery {
	t.Helper()
	var all []sim.Delivery
	for i := 0; i < limit; i++ {
		all = append(all, n.Step(nil)...)
		if n.Quiescent() {
			return all
		}
	}
	t.Fatalf("network did not drain within %d cycles", limit)
	return nil
}

// TestTracerUnicastLifecycle pins the electrical event vocabulary on a
// simple two-hop unicast: NIC launch, VC allocations and switch
// traversals per hop, buffer occupancy downstream, one ejection.
func TestTracerUnicastLifecycle(t *testing.T) {
	n, m := traceNet(t, nil)
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{2}, Op: packet.OpSynthetic})
	deliveries := drain(t, n, 200)
	if len(deliveries) != 1 || deliveries[0].Dst != 2 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	if got := m.Count(obs.KindLaunch, 0); got != 1 {
		t.Errorf("launches at source = %d, want 1", got)
	}
	// Two hops 0->1->2: a VC allocation and a switch traversal at nodes
	// 0 and 1, buffer arrivals at nodes 1 and 2.
	for _, node := range []mesh.NodeID{0, 1} {
		if got := m.Count(obs.KindSwitch, node); got != 1 {
			t.Errorf("switch traversals at %d = %d, want 1", node, got)
		}
		if got := m.Count(obs.KindVCAlloc, node); got != 1 {
			t.Errorf("VC allocations at %d = %d, want 1", node, got)
		}
		if got := m.Link(node, mesh.East); got != 1 {
			t.Errorf("link use %d->E = %d, want 1", node, got)
		}
	}
	for _, node := range []mesh.NodeID{1, 2} {
		if got := m.Count(obs.KindBuffer, node); got != 1 {
			t.Errorf("buffer arrivals at %d = %d, want 1", node, got)
		}
	}
	if got := m.Count(obs.KindEject, 2); got != 1 {
		t.Errorf("ejects at destination = %d, want 1", got)
	}
	if got := m.Total(obs.KindDrop); got != 0 {
		t.Errorf("electrical network dropped %d packets", got)
	}
}

// TestTracerBroadcastForks: a VCTM broadcast must fork at branch routers
// and eject once per destination.
func TestTracerBroadcastForks(t *testing.T) {
	n, m := traceNet(t, nil)
	var dsts []mesh.NodeID
	for i := 1; i < 16; i++ {
		dsts = append(dsts, mesh.NodeID(i))
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: dsts, Op: packet.OpReadReq})
	deliveries := drain(t, n, 500)
	if len(deliveries) != 15 {
		t.Fatalf("broadcast delivered %d, want 15", len(deliveries))
	}
	if m.Total(obs.KindTreeFork) == 0 {
		t.Error("no tree forks traced for a broadcast")
	}
	if got := m.Total(obs.KindEject); got != 15 {
		t.Errorf("ejects = %d, want 15", got)
	}
	// The link matrix must equal the run's link-traversal counter.
	var links int64
	for node := 0; node < 16; node++ {
		for d := 0; d < mesh.NumLinkDirs; d++ {
			links += m.Link(mesh.NodeID(node), mesh.Dir(d))
		}
	}
	if links != n.Run().LinkTraversals {
		t.Errorf("link matrix sum %d != LinkTraversals %d", links, n.Run().LinkTraversals)
	}
}

// TestTracerCreditStall: one downstream VC under a two-source hot spot
// must starve credits at some point.
func TestTracerCreditStall(t *testing.T) {
	n, m := traceNet(t, func(c *Config) { c.VCs = 1; c.NICEntries = 30 })
	var id uint64
	for i := 0; i < 10; i++ {
		id++
		n.Inject(sim.Message{ID: id, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
		id++
		n.Inject(sim.Message{ID: id, Src: 4, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	}
	deliveries := drain(t, n, 2000)
	if len(deliveries) != int(id) {
		t.Fatalf("delivered %d, want %d", len(deliveries), id)
	}
	if m.Total(obs.KindCreditStall) == 0 {
		t.Error("no credit stalls traced under a single-VC hot spot")
	}
}

// TestTracerOffByDefault: without SetTracer no events flow and behaviour
// is identical (counters match a traced twin).
func TestTracerOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	plain, traced := New(cfg), New(cfg)
	m := obs.NewMetrics(4, 4)
	traced.SetTracer(m.Observe)
	for _, n := range []*Network{plain, traced} {
		n.Inject(sim.Message{ID: 1, Src: 5, Dsts: []mesh.NodeID{10}, Op: packet.OpSynthetic})
		drain(t, n, 200)
	}
	if plain.Run().LinkTraversals != traced.Run().LinkTraversals ||
		plain.Run().ElectricalEnergyPJ != traced.Run().ElectricalEnergyPJ {
		t.Error("tracing changed simulation results")
	}
	if m.Total(obs.KindEject) != 1 {
		t.Errorf("traced twin saw %d ejects", m.Total(obs.KindEject))
	}
	// Disabling again stops the stream.
	traced.SetTracer(nil)
	traced.Inject(sim.Message{ID: 2, Src: 5, Dsts: []mesh.NodeID{10}, Op: packet.OpSynthetic})
	drain(t, traced, 200)
	if m.Total(obs.KindEject) != 1 {
		t.Error("events recorded after tracer removed")
	}
}
