package electrical

// Fault handling and the delivery watchdog for the electrical baseline.
// Everything here is inert unless a fault plan is armed or LossTimeout is
// configured; the hot paths guard each consultation behind a nil-injector
// check so the fault-free simulation stays bit-identical.
//
// The baseline's flow control is lossless, so its fault semantics differ
// from the optical network's drop/retry protocol: unicast packets
// re-route around dead hardware at each router; multicast packets follow
// pinned VCTM trees and stall on dead branches until the fault heals or
// the watchdog reclaims them; packets whose destination becomes
// unreachable are abandoned immediately (there is no retransmission
// protocol to hold them for).

import (
	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/sim"
	"phastlane/internal/vctm"
)

const (
	// watchdogDefaultPeriod is the watchdog scan interval when no
	// LossTimeout bounds it more tightly.
	watchdogDefaultPeriod = 64
	// starveDefault is the starvation-report threshold (cycles buffered
	// without progress) when no LossTimeout is configured.
	starveDefault = 4096
)

// faultInit arms the configured fault plan and delivery watchdog; called
// once from New. Panics on an invalid plan (New's contract).
func (n *Network) faultInit() {
	inj, err := n.cfg.Faults.Arm(n.m)
	if err != nil {
		panic(err)
	}
	n.faults = inj
	if inj != nil {
		n.routeUsable = func(from mesh.NodeID, d mesh.Dir) bool {
			return !n.faults.LinkDown(n.cycle, from, d)
		}
	}
	if inj != nil || n.cfg.LossTimeout > 0 {
		n.watchEvery = watchdogDefaultPeriod
		n.starveAfter = starveDefault
		if t := n.cfg.LossTimeout; t > 0 {
			n.starveAfter = t / 2
			if p := t / 4; p > 0 && p < n.watchEvery {
				n.watchEvery = p
			}
			if n.starveAfter < 1 {
				n.starveAfter = 1
			}
		}
	}
}

// SetLossHandler implements sim.LossReporting: handler is invoked
// synchronously whenever the delivery layer abandons deliveries. Nil
// disables reporting (losses are still counted in Run().Lost).
func (n *Network) SetLossHandler(handler func(sim.Loss)) { n.lossHandler = handler }

var _ sim.LossReporting = (*Network)(nil)

// SetNackHandler implements sim.CongestionReporting: handler is invoked
// synchronously with the stalled node whenever a NIC head cannot find a
// free local VC during the inject phase — the credit protocol's
// backpressure signal. Nil disables reporting (the default).
func (n *Network) SetNackHandler(handler func(src mesh.NodeID)) { n.nackHandler = handler }

var _ sim.CongestionReporting = (*Network)(nil)

// nextDir picks the next hop from at toward dst: dimension-order on a
// healthy mesh, the minimal fault-aware detour under an armed plan. ok is
// false when no usable route exists right now.
func (n *Network) nextDir(at, dst mesh.NodeID) (mesh.Dir, bool) {
	if n.faults == nil {
		return n.top.PortAt(at, dst, 0), true
	}
	dirs, ok := n.det.AppendDetour(n.frDirs[:0], at, dst, n.routeUsable)
	n.frDirs = dirs
	if !ok || len(dirs) == 0 {
		return 0, false
	}
	return dirs[0], true
}

// faultStep runs once per cycle when the watchdog is armed: it surfaces
// fault boundaries as observability events, re-routes packets stranded by
// newly-dead links, and periodically scans for timed-out packets.
func (n *Network) faultStep() {
	if n.faults.Pending(n.cycle) {
		n.faults.Step(n.cycle, n.emitTransition)
		// Fault state only changes at transition boundaries, so this
		// is the only moment existing routes can go stale.
		n.rerouteFaults()
	}
	if n.cycle >= n.nextScan {
		n.watchdogScan()
		n.nextScan = n.cycle + n.watchEvery
	}
}

// emitTransition reports one fault boundary through the tracer.
func (n *Network) emitTransition(tr fault.Transition) {
	n.emit(obs.KindFault, 0, tr.Node, tr.Dir)
}

// rerouteFaults re-resolves the route of every unallocated unicast branch
// that points at a link dead as of this cycle. Branches that already hold
// a downstream VC keep it (the switch allocator skips them while the link
// is dead); multicast branches are pinned to their tree.
func (n *Network) rerouteFaults() {
	for node := range n.routers {
		at := mesh.NodeID(node)
		r := &n.routers[node]
		for p := 0; p < mesh.NumDirs; p++ {
			for v := range r.vcs[p] {
				vc := &r.vcs[p][v]
				if vc.empty() || vc.pkt.tree != nil {
					continue
				}
				for i := range vc.branches {
					b := &vc.branches[i]
					if b.outVC >= 0 || !n.faults.LinkDown(n.cycle, at, b.dir) {
						continue
					}
					if d, ok := n.nextDir(at, vc.pkt.dst); ok {
						b.dir = d
					} else {
						n.losePacket(vc, at, sim.LossUnreachable)
						break // the VC is empty now
					}
				}
			}
		}
	}
}

// reapStranded abandons a freshly-filled VC left with no pending work
// because its unicast destination is unreachable under the current fault
// set. Called from the two fill sites only when a plan is armed.
func (n *Network) reapStranded(vc *vcState, at mesh.NodeID) {
	if vc.deliver || len(vc.branches) > 0 {
		return
	}
	n.losePacket(vc, at, sim.LossUnreachable)
}

// losePacket abandons the packet replica occupying vc: its outstanding
// deliveries (the local ejection plus every destination in the subtrees
// of its remaining branches) are reported lost, downstream VC
// reservations are released, and the VC frees.
func (n *Network) losePacket(vc *vcState, at mesh.NodeID, reason sim.LossReason) {
	count := 1
	if t := vc.pkt.tree; t != nil {
		count = 0
		if vc.deliver {
			count++
		}
		for _, b := range vc.branches {
			count += n.subtreeDeliveries(t, n.branchTarget(at, b.dir))
		}
	}
	for _, b := range vc.branches {
		if b.outVC >= 0 {
			next := n.branchTarget(at, b.dir)
			n.routers[next].vcs[b.dir.Opposite()][b.outVC].reserved = false
		}
	}
	n.reportLoss(vc.pkt.msgID, at, count, reason)
	vc.deliver = false
	vc.branches = vc.branches[:0]
	n.freeIfDone(at, vc)
}

// branchTarget resolves the neighbor a branch points at.
func (n *Network) branchTarget(at mesh.NodeID, d mesh.Dir) mesh.NodeID {
	next, ok := n.m.Neighbor(at, d)
	if !ok {
		panic("electrical: branch points off the mesh edge")
	}
	return next
}

// subtreeDeliveries counts the delivery targets of the multicast subtree
// rooted at node.
func (n *Network) subtreeDeliveries(t *vctm.Tree, node mesh.NodeID) int {
	c := 0
	if t.Deliver(node) {
		c++
	}
	for _, d := range t.Children(node) {
		c += n.subtreeDeliveries(t, n.branchTarget(node, d))
	}
	return c
}

// reportLoss accounts abandoned deliveries and tells the loss handler.
func (n *Network) reportLoss(msgID uint64, at mesh.NodeID, count int, reason sim.LossReason) {
	if count <= 0 {
		return
	}
	n.run.Lost += int64(count)
	n.emit(obs.KindLost, msgID, at, mesh.Local)
	if n.lossHandler != nil {
		n.lossHandler(sim.Loss{MsgID: msgID, Node: at, Count: count, Reason: reason})
	}
}

// watchdogScan is the livelock/starvation watchdog: it abandons NIC
// entries and VC occupants older than LossTimeout and reports packets
// that crossed the starvation threshold since the last scan.
func (n *Network) watchdogScan() {
	for node := range n.routers {
		at := mesh.NodeID(node)
		r := &n.routers[node]
		if n.cfg.LossTimeout > 0 && len(r.nic) > 0 {
			w := 0
			for _, p := range r.nic {
				if n.cycle-p.born >= n.cfg.LossTimeout {
					count := 1
					if p.tree != nil {
						count = n.subtreeDeliveries(p.tree, at)
					}
					n.reportLoss(p.msgID, at, count, sim.LossTimeout)
					n.dropRef(p)
					continue
				}
				r.nic[w] = p
				w++
			}
			for i := w; i < len(r.nic); i++ {
				r.nic[i] = nil
			}
			r.nic = r.nic[:w]
		}
		for p := 0; p < mesh.NumDirs; p++ {
			for v := range r.vcs[p] {
				vc := &r.vcs[p][v]
				if vc.empty() {
					continue
				}
				age := n.cycle - vc.pkt.born
				if n.cfg.LossTimeout > 0 && age >= n.cfg.LossTimeout {
					n.losePacket(vc, at, sim.LossTimeout)
					continue
				}
				if age >= n.starveAfter && age-n.watchEvery < n.starveAfter {
					n.emit(obs.KindStarve, vc.pkt.msgID, at, mesh.Dir(p))
				}
			}
		}
	}
}
