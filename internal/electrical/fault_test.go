package electrical

import (
	"reflect"
	"testing"

	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/packet"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
)

// isolateNode cuts every link into and out of node.
func isolateNode(m *mesh.Mesh, node mesh.NodeID) []fault.Fault {
	var fs []fault.Fault
	for d := mesh.Dir(0); d < mesh.NumLinkDirs; d++ {
		nb, ok := m.Neighbor(node, d)
		if !ok {
			continue
		}
		fs = append(fs,
			fault.Fault{Kind: fault.DeadLink, Node: node, Dir: d},
			fault.Fault{Kind: fault.DeadLink, Node: nb, Dir: d.Opposite()},
		)
	}
	return fs
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.LossTimeout = -1 },
		func(c *Config) { c.Faults = &fault.Plan{CorruptRate: -1} },
		func(c *Config) {
			c.Faults = &fault.Plan{Faults: []fault.Fault{{Kind: fault.DeadLink, Node: 64, Dir: mesh.North}}}
		},
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad fault config %d passed validation", i)
		}
	}
}

func TestEmptyPlanBitIdentical(t *testing.T) {
	run := func(p *fault.Plan) stats.Run {
		n := mustNew(t, func(c *Config) { c.Faults = p })
		for i := uint64(0); i < 24; i++ {
			src := mesh.NodeID(i % 8)
			n.Inject(sim.Message{ID: i + 1, Src: src, Dsts: []mesh.NodeID{63 - src}, Op: packet.OpSynthetic})
		}
		stepUntilQuiescent(t, n, 2000)
		return *n.Run()
	}
	a := run(nil)
	b := run(&fault.Plan{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("empty plan changed the run:\nnil:   %+v\nempty: %+v", a, b)
	}
}

func TestDeadLinkReroutesDelivery(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.DeadLink, Node: 1, Dir: mesh.East},
			{Kind: fault.DeadLink, Node: 2, Dir: mesh.West},
		}}
	})
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: []mesh.NodeID{3}, Op: packet.OpSynthetic})
	deliveries := stepUntilQuiescent(t, n, 500)
	if len(deliveries) != 1 || deliveries[0].MsgID != 1 || deliveries[0].Dst != 3 {
		t.Fatalf("deliveries %+v, want msg 1 at node 3", deliveries)
	}
	if n.Run().Lost != 0 {
		t.Fatalf("rerouted delivery reported %d losses", n.Run().Lost)
	}
}

func TestUnreachableUnicastReportedImmediately(t *testing.T) {
	m := mesh.New(8, 8)
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: isolateNode(m, 9)}
	})
	var losses []sim.Loss
	n.SetLossHandler(func(l sim.Loss) { losses = append(losses, l) })
	n.Inject(sim.Message{ID: 5, Src: 0, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	deliveries := stepUntilQuiescent(t, n, 500)
	if len(deliveries) != 0 {
		t.Fatalf("deliveries %+v to an isolated node", deliveries)
	}
	if len(losses) != 1 || losses[0].MsgID != 5 || losses[0].Count != 1 || losses[0].Reason != sim.LossUnreachable {
		t.Fatalf("losses %+v, want one unreachable loss of msg 5", losses)
	}
	if n.Run().Lost != 1 {
		t.Fatalf("Run().Lost = %d", n.Run().Lost)
	}
}

// TestBroadcastLossAccountingUnderFaults pins exact delivery accounting
// for pinned multicast trees: a broadcast into a mesh with an isolated
// region must deliver to every reachable destination and report the rest
// lost (via the watchdog timeout), with delivered + lost == 63 and no
// duplicates.
func TestBroadcastLossAccountingUnderFaults(t *testing.T) {
	m := mesh.New(8, 8)
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: isolateNode(m, 63)}
		c.LossTimeout = 400
	})
	var lost int
	n.SetLossHandler(func(l sim.Loss) { lost += l.Count })
	dsts := make([]mesh.NodeID, 0, 63)
	for i := 1; i < 64; i++ {
		dsts = append(dsts, mesh.NodeID(i))
	}
	n.Inject(sim.Message{ID: 1, Src: 0, Dsts: dsts, Op: packet.OpSynthetic})
	deliveries := stepUntilQuiescent(t, n, 5000)
	seen := map[mesh.NodeID]int{}
	for _, d := range deliveries {
		seen[d.Dst]++
		if seen[d.Dst] > 1 {
			t.Fatalf("duplicate delivery at node %d", d.Dst)
		}
	}
	if seen[63] != 0 {
		t.Fatal("delivered to the isolated node")
	}
	if len(deliveries)+lost != 63 {
		t.Fatalf("delivered %d + lost %d != 63", len(deliveries), lost)
	}
	if lost == 0 {
		t.Fatal("no losses for the isolated subtree")
	}
}

// TestTransientFaultLosesThenHeals pins the electrical loss semantics:
// there is no retransmit protocol, so a packet whose destination is
// unreachable at fill time is lost immediately — but once the fault
// window closes, later traffic to the same destination flows normally.
func TestTransientFaultLosesThenHeals(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.StuckRouter, Node: 9, Until: 60},
		}}
	})
	var losses []sim.Loss
	n.SetLossHandler(func(l sim.Loss) { losses = append(losses, l) })
	n.Inject(sim.Message{ID: 1, Src: 8, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	var deliveries []sim.Delivery
	for i := 0; i < 100; i++ {
		deliveries = append(deliveries, n.Step(nil)...)
	}
	if len(deliveries) != 0 {
		t.Fatalf("deliveries %+v while the destination was stuck", deliveries)
	}
	if len(losses) != 1 || losses[0].MsgID != 1 || losses[0].Reason != sim.LossUnreachable {
		t.Fatalf("losses %+v, want one immediate unreachable loss of msg 1", losses)
	}
	// Past the fault window the destination is healthy again.
	n.Inject(sim.Message{ID: 2, Src: 8, Dsts: []mesh.NodeID{9}, Op: packet.OpSynthetic})
	deliveries = stepUntilQuiescent(t, n, 1000)
	if len(deliveries) != 1 || deliveries[0].MsgID != 2 || deliveries[0].Dst != 9 {
		t.Fatalf("deliveries %+v, want msg 2 at node 9 after heal", deliveries)
	}
	if n.Run().Lost != 1 {
		t.Fatalf("Run().Lost = %d, want exactly the pre-heal loss", n.Run().Lost)
	}
}

func TestNICSlotFaultReducesCapacity(t *testing.T) {
	n := mustNew(t, func(c *Config) {
		c.Faults = &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.BufferSlots, Node: 4, Dir: mesh.Local, Slots: DefaultConfig().NICEntries},
		}}
	})
	if free := n.NICFree(4); free != 0 {
		t.Fatalf("NICFree = %d with every slot failed", free)
	}
	if free := n.NICFree(5); free != DefaultConfig().NICEntries {
		t.Fatalf("healthy NICFree = %d", free)
	}
}
