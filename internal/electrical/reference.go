package electrical

// NewReference builds a baseline network on the dense reference kernel:
// every per-cycle pipeline phase walks every router of the mesh, exactly
// as the simulator did before the event-driven rework. The reference
// exists for differential testing only — the equivalence suite and
// FuzzElectricalEquivalence drive it in lockstep with the event-driven
// kernel (New) over randomized configs, traffic and fault plans, and
// assert bit-identical event streams, deliveries, loss accounting and
// counters. It is deliberately kept O(mesh) per cycle; production callers
// want New.
//
// It panics on invalid configuration, like New.
func NewReference(cfg Config) *Network {
	return newNetwork(cfg, true)
}

// Reference reports whether the network runs the dense reference kernel.
func (n *Network) Reference() bool { return n.dense }
