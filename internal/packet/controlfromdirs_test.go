package packet

import (
	"testing"

	"phastlane/internal/mesh"
)

// walkControl drives a control hop by hop from src, asserting each group
// is consistent with the travel direction, and returns the stop node and
// whether the walk ended at a truncation interim.
func walkControl(t *testing.T, m *mesh.Mesh, src mesh.NodeID, c Control, launch mesh.Dir) mesh.NodeID {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatalf("control invalid: %v", err)
	}
	at, travel := src, launch
	for {
		next, ok := m.Neighbor(at, travel)
		if !ok {
			t.Fatalf("control walks off mesh at %d going %s", at, travel)
		}
		at = next
		g := c.Shift()
		if g.Zero() {
			t.Fatalf("control ran out of groups at %d", at)
		}
		if g.Local {
			// Final stop or interim/truncation stop: the walk ends
			// here (an interim would buffer and relaunch).
			return at
		}
		travel = DirAfterTurn(travel, g)
	}
}

func TestControlFromDirsMatchesBuildControl(t *testing.T) {
	m := mesh.New(8, 8)
	for src := mesh.NodeID(0); src < 64; src += 7 {
		for dst := mesh.NodeID(0); dst < 64; dst += 5 {
			if src == dst {
				continue
			}
			dirs := m.AppendRoute(nil, src, dst)
			gotCtl, gotLaunch := ControlFromDirs(dirs)
			wantCtl, wantLaunch := BuildControl(m, src, dst)
			if gotCtl != wantCtl || gotLaunch != wantLaunch {
				t.Fatalf("%d->%d: ControlFromDirs diverges from BuildControl on the dimension-order route:\n%+v %s\n%+v %s",
					src, dst, gotCtl, gotLaunch, wantCtl, wantLaunch)
			}
		}
	}
}

func TestControlFromDirsDetour(t *testing.T) {
	m := mesh.New(8, 8)
	// A non-dimension-order detour: east, north, east, south ends two
	// columns east of the start.
	src := mesh.NodeID(17)
	dirs := []mesh.Dir{mesh.East, mesh.North, mesh.East, mesh.South}
	ctl, launch := ControlFromDirs(dirs)
	if launch != mesh.East {
		t.Fatalf("launch %s, want E", launch)
	}
	if end := walkControl(t, m, src, ctl, launch); end != 19 {
		t.Fatalf("detour ends at %d, want 19", end)
	}
}

func TestControlFromDirsTruncates(t *testing.T) {
	m := mesh.New(16, 16)
	// A 20-link snake: longer than MaxGroups, so the control must stop
	// at a truncation interim after MaxGroups links with the
	// continuation turn encoded.
	var dirs []mesh.Dir
	for i := 0; i < 10; i++ {
		dirs = append(dirs, mesh.East)
	}
	for i := 0; i < 10; i++ {
		dirs = append(dirs, mesh.North)
	}
	ctl, launch := ControlFromDirs(dirs)
	if ctl.Used != MaxGroups {
		t.Fatalf("Used %d, want %d", ctl.Used, MaxGroups)
	}
	last := ctl.Groups[MaxGroups-1]
	if !last.Local || !last.Transit() {
		t.Fatalf("truncation group %+v is not an interim stop", last)
	}
	if end := walkControl(t, m, 0, ctl, launch); end != mesh.NodeID(4*16+10) {
		// 10 east + 4 north = MaxGroups(14) links from node 0.
		t.Fatalf("truncated walk ends at %d, want %d", end, 4*16+10)
	}
}

func TestControlFromDirsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty route")
		}
	}()
	ControlFromDirs(nil)
}
