package packet

// Large-mesh coverage for the fixed 14-group packet format: routes on
// 32×32 and 64×64 meshes exceed MaxGroups by far, so delivery relies on
// the Section 2.1.3 relaunch chain — BuildControl truncates at an interim
// stop on the 14th router, which assumes responsibility and rebuilds the
// control for the remainder. These tests walk whole chains and pin the
// segment arithmetic.

import (
	"testing"

	"phastlane/internal/mesh"
)

// walkChain follows relaunch segments from src to dst, rebuilding the
// control at every interim stop exactly as a router does, and returns
// (total hops, segments).
func walkChain(t *testing.T, m *mesh.Mesh, src, dst mesh.NodeID) (int, int) {
	t.Helper()
	hops, segments := 0, 0
	cur := src
	for cur != dst {
		c, launch := BuildControl(m, cur, dst)
		if err := c.Validate(); err != nil {
			t.Fatalf("segment %d control invalid: %v", segments, err)
		}
		segments++
		if segments > m.Nodes() {
			t.Fatalf("relaunch chain does not terminate (src %d, dst %d)", src, dst)
		}
		pos, ok := m.Neighbor(cur, launch)
		if !ok {
			t.Fatalf("segment %d launches off the mesh edge", segments)
		}
		travel := launch
		hops++
		for {
			g := c.Shift()
			if g.Zero() {
				t.Fatalf("segment %d ran out of groups before a stop", segments)
			}
			if g.Local {
				break // final delivery or interim stop; pos takes over
			}
			travel = DirAfterTurn(travel, g)
			pos, ok = m.Neighbor(pos, travel)
			if !ok {
				t.Fatalf("segment %d walks off the mesh edge", segments)
			}
			hops++
		}
		cur = pos
	}
	return hops, segments
}

func TestRelaunchChainLargeMesh(t *testing.T) {
	for _, tc := range []struct {
		w, h         int
		src, dst     mesh.NodeID
		wantSegments int
	}{
		// 32×32 corner to corner: 62 hops = 4 full segments + 6.
		{32, 32, 0, 32*32 - 1, 5},
		// 64×64 corner to corner: 126 hops = exactly 9 full segments.
		{64, 64, 0, 64*64 - 1, 9},
		// 64×64 asymmetric: (0,0) → (63,31) is 94 hops = 6 full + 10.
		{64, 64, 0, 31*64 + 63, 7},
		// Short route on a huge mesh: a single untruncated segment.
		{64, 64, 0, 3, 1},
	} {
		hops, segments := walkChain(t, mesh.New(tc.w, tc.h), tc.src, tc.dst)
		want := mesh.New(tc.w, tc.h).HopDistance(tc.src, tc.dst)
		if hops != want {
			t.Errorf("%dx%d %d→%d: chain covers %d hops, want %d", tc.w, tc.h, tc.src, tc.dst, hops, want)
		}
		if segments != tc.wantSegments {
			t.Errorf("%dx%d %d→%d: %d segments, want %d", tc.w, tc.h, tc.src, tc.dst, segments, tc.wantSegments)
		}
	}
}

// TestRelaunchChainExhaustive64 walks the chain from the corner to every
// node of a 64×64 mesh row/column extreme set, checking the hop total
// against HopDistance each time.
func TestRelaunchChainEdges64(t *testing.T) {
	m := mesh.New(64, 64)
	src := mesh.NodeID(0)
	for _, dst := range []mesh.NodeID{1, 63, 64, 64 * 63, 64*64 - 1, 64*32 + 17, 13*64 + 62} {
		hops, _ := walkChain(t, m, src, dst)
		if want := m.HopDistance(src, dst); hops != want {
			t.Errorf("0→%d: %d hops, want %d", dst, hops, want)
		}
	}
}
