package packet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phastlane/internal/mesh"
)

func TestGroupPackRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		g := UnpackGroup(raw & 0x1f)
		return g.Pack() == raw&0x1f
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupValid(t *testing.T) {
	cases := []struct {
		g    Group
		want bool
	}{
		{Group{Straight: true}, true},
		{Group{Left: true}, true},
		{Group{Local: true}, true},
		{Group{Local: true, Straight: true}, true}, // interim
		{Group{Straight: true, Left: true}, false},
		{Group{Left: true, Right: true}, false},
		{Group{}, true},
	}
	for _, tc := range cases {
		if got := tc.g.Valid(); got != tc.want {
			t.Errorf("Valid(%s) = %v, want %v", tc.g, got, tc.want)
		}
	}
}

func TestGroupInterim(t *testing.T) {
	if !(Group{Local: true, Straight: true}).Interim() {
		t.Error("Local+Straight should be interim")
	}
	if (Group{Local: true}).Interim() {
		t.Error("Local alone is a final stop, not interim")
	}
}

func TestControlShift(t *testing.T) {
	var c Control
	c.Groups[0] = Group{Straight: true}
	c.Groups[1] = Group{Right: true}
	c.Groups[2] = Group{Local: true}
	c.Used = 3
	if got := c.Shift(); !got.Straight {
		t.Fatalf("first shift = %s", got)
	}
	if got := c.Head(); !got.Right {
		t.Fatalf("head after shift = %s", got)
	}
	if c.Used != 2 {
		t.Fatalf("used after shift = %d", c.Used)
	}
	c.Shift()
	c.Shift()
	if c.Used != 0 || !c.Head().Zero() {
		t.Fatalf("control not empty after consuming all groups: %s", c.String())
	}
	// Shifting an empty control stays empty.
	c.Shift()
	if c.Used != 0 {
		t.Fatal("shift on empty control changed Used")
	}
}

func TestBuildControlStraightLine(t *testing.T) {
	m := mesh.New(8, 8)
	src, dst := m.ID(mesh.Coord{X: 0, Y: 0}), m.ID(mesh.Coord{X: 3, Y: 0})
	c, launch := BuildControl(m, src, dst)
	if launch != mesh.East {
		t.Fatalf("launch = %s, want E", launch)
	}
	if c.Used != 3 {
		t.Fatalf("used = %d, want 3", c.Used)
	}
	if !c.Groups[0].Straight || !c.Groups[1].Straight {
		t.Errorf("transit groups not straight: %s", c.String())
	}
	if !c.Groups[2].Local || c.Groups[2].Transit() {
		t.Errorf("final group should be pure Local: %s", c.String())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildControlWithTurn(t *testing.T) {
	m := mesh.New(8, 8)
	// East then North: the turn router sees travel=E out=N => left turn.
	src, dst := m.ID(mesh.Coord{X: 0, Y: 0}), m.ID(mesh.Coord{X: 2, Y: 2})
	c, launch := BuildControl(m, src, dst)
	if launch != mesh.East {
		t.Fatalf("launch = %s", launch)
	}
	// Groups: router(1,0): straight E; router(2,0): turn to N = left;
	// router(2,1): straight N; router(2,2): local.
	want := []Group{
		{Straight: true},
		{Left: true},
		{Straight: true},
		{Local: true},
	}
	if c.Used != len(want) {
		t.Fatalf("used = %d, want %d (%s)", c.Used, len(want), c.String())
	}
	for i, g := range want {
		if c.Groups[i] != g {
			t.Errorf("group %d = %s, want %s", i, c.Groups[i], g)
		}
	}
}

func TestBuildControlPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BuildControl(src == dst) did not panic")
		}
	}()
	BuildControl(mesh.New(4, 4), 3, 3)
}

// Property: walking the control groups from any src reaches dst with the
// remaining control exactly describing the remaining route after each
// shift/translate, and the walk length equals the hop distance.
func TestControlWalkReachesDestination(t *testing.T) {
	m := mesh.New(8, 8)
	f := func(srcRaw, dstRaw uint8) bool {
		src := mesh.NodeID(int(srcRaw) % m.Nodes())
		dst := mesh.NodeID(int(dstRaw) % m.Nodes())
		if src == dst {
			return true
		}
		c, launch := BuildControl(m, src, dst)
		if c.Validate() != nil {
			return false
		}
		cur, ok := m.Neighbor(src, launch)
		if !ok {
			return false
		}
		travel := launch
		hops := 1
		for {
			g := c.Shift()
			if g.Zero() {
				return false
			}
			if g.Local {
				return cur == dst && hops == m.HopDistance(src, dst) && c.Used == 0
			}
			travel = DirAfterTurn(travel, g)
			cur, ok = m.Neighbor(cur, travel)
			if !ok {
				return false
			}
			hops++
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestMarkInterims(t *testing.T) {
	m := mesh.New(8, 8)
	// 0 -> 63 is 14 links; with maxHops=4 interim Locals land on groups
	// 3, 7, 11 (0-based), final group 13 already Local.
	c, _ := BuildControl(m, 0, 63)
	c.MarkInterims(4)
	for i := 0; i < c.Used; i++ {
		wantLocal := i == 3 || i == 7 || i == 11 || i == c.Used-1
		if c.Groups[i].Local != wantLocal {
			t.Errorf("group %d Local = %v, want %v", i, c.Groups[i].Local, wantLocal)
		}
		if wantLocal && i != c.Used-1 && !c.Groups[i].Interim() {
			t.Errorf("group %d should be interim (keep direction)", i)
		}
	}
	if got := c.NextStop(); got != 4 {
		t.Errorf("NextStop = %d, want 4", got)
	}
}

func TestMarkInterimsShortRouteUntouched(t *testing.T) {
	m := mesh.New(8, 8)
	c, _ := BuildControl(m, 0, 3)
	before := c
	c.MarkInterims(4)
	if c != before {
		t.Errorf("3-hop route should not gain interims at maxHops=4")
	}
}

func TestNextStopNoInterim(t *testing.T) {
	m := mesh.New(8, 8)
	c, _ := BuildControl(m, 0, 2)
	if got := c.NextStop(); got != 2 {
		t.Errorf("NextStop = %d, want 2", got)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	var c Control
	c.Groups[0] = Group{Straight: true}
	c.Used = 1
	if err := c.Validate(); err == nil {
		t.Error("control not ending in Local should fail validation")
	}
	c.Groups[0] = Group{Local: true}
	c.Groups[5] = Group{Straight: true} // beyond Used
	if err := c.Validate(); err == nil {
		t.Error("set group beyond Used should fail validation")
	}
	c.Groups[5] = Group{}
	c.Groups[0] = Group{Straight: true, Right: true, Local: true}
	if err := c.Validate(); err == nil {
		t.Error("two direction bits should fail validation")
	}
}

func TestDirAfterTurn(t *testing.T) {
	cases := []struct {
		travel mesh.Dir
		g      Group
		want   mesh.Dir
	}{
		{mesh.North, Group{Straight: true}, mesh.North},
		{mesh.North, Group{Left: true}, mesh.West},
		{mesh.North, Group{Right: true}, mesh.East},
		{mesh.South, Group{Left: true}, mesh.East},
		{mesh.West, Group{Right: true}, mesh.North},
		{mesh.East, Group{Local: true}, mesh.Local},
	}
	for _, tc := range cases {
		if got := DirAfterTurn(tc.travel, tc.g); got != tc.want {
			t.Errorf("DirAfterTurn(%s,%s) = %s, want %s", tc.travel, tc.g, got, tc.want)
		}
	}
}

func TestBuildBroadcastCoverage(t *testing.T) {
	m := mesh.New(8, 8)
	for _, src := range []mesh.NodeID{0, 7, 27, 56, 63, 35} {
		msgs := BuildBroadcast(m, src, 4)
		served := make(map[mesh.NodeID]int)
		for _, msg := range msgs {
			for _, d := range msg.Delivers {
				served[d]++
			}
		}
		if len(served) != m.Nodes()-1 {
			t.Fatalf("src %d: broadcast covers %d nodes, want %d", src, len(served), m.Nodes()-1)
		}
		for n, cnt := range served {
			if cnt != 1 {
				t.Errorf("src %d: node %d served %d times", src, n, cnt)
			}
		}
		if served[src] != 0 {
			t.Errorf("src %d delivered to itself", src)
		}
	}
}

func TestBuildBroadcastMessageCount(t *testing.T) {
	m := mesh.New(8, 8)
	// Interior row: up to 16 messages.
	if got := len(BuildBroadcast(m, 27, 4)); got != 16 {
		t.Errorf("interior broadcast: %d messages, want 16", got)
	}
	// Bottom row: only upward sweeps => 8.
	if got := len(BuildBroadcast(m, 3, 4)); got != 8 {
		t.Errorf("bottom-row broadcast: %d messages, want 8", got)
	}
	// Top row: only downward sweeps (row nodes folded into them) => 8.
	if got := len(BuildBroadcast(m, 59, 4)); got != 8 {
		t.Errorf("top-row broadcast: %d messages, want 8", got)
	}
}

// Property: every broadcast message's control validates and its walk visits
// exactly the delivery nodes with multicast taps.
func TestBroadcastWalk(t *testing.T) {
	m := mesh.New(8, 8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		src := mesh.NodeID(rng.Intn(m.Nodes()))
		for _, msg := range BuildBroadcast(m, src, 5) {
			if err := msg.Control.Validate(); err != nil {
				t.Fatalf("src %d: %v (control %s)", src, err, msg.Control.String())
			}
			// Walk and record multicast-tap nodes.
			c := msg.Control
			cur, ok := m.Neighbor(src, msg.Launch)
			if !ok {
				t.Fatalf("src %d: bad launch %s", src, msg.Launch)
			}
			travel := msg.Launch
			var tapped []mesh.NodeID
			for {
				g := c.Shift()
				if g.Multicast {
					tapped = append(tapped, cur)
				}
				if g.Local && !g.Transit() {
					break
				}
				travel = DirAfterTurn(travel, g)
				next, ok := m.Neighbor(cur, travel)
				if !ok {
					t.Fatalf("src %d: walk off mesh at %d", src, cur)
				}
				cur = next
			}
			if len(tapped) != len(msg.Delivers) {
				t.Fatalf("src %d: tapped %v, declared %v", src, tapped, msg.Delivers)
			}
			for i := range tapped {
				if tapped[i] != msg.Delivers[i] {
					t.Fatalf("src %d: tapped %v, declared %v", src, tapped, msg.Delivers)
				}
			}
		}
	}
}

func TestOpString(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("Op(%d) has empty name", op)
		}
	}
}

func TestControlString(t *testing.T) {
	m := mesh.New(8, 8)
	c, _ := BuildControl(m, 0, 2)
	if got := c.String(); got != "[S Loc]" {
		t.Errorf("String = %q", got)
	}
}

func TestBuildControlTruncatesLongRoutes(t *testing.T) {
	m := mesh.New(16, 16)
	src, dst := m.ID(mesh.Coord{X: 0, Y: 0}), m.ID(mesh.Coord{X: 15, Y: 15})
	c, launch := BuildControl(m, src, dst)
	if launch != mesh.East {
		t.Fatalf("launch = %s", launch)
	}
	if c.Used != MaxGroups {
		t.Fatalf("used = %d, want %d", c.Used, MaxGroups)
	}
	last := c.Groups[c.Used-1]
	if !last.Interim() {
		t.Fatalf("truncated route must end in an interim group, got %s", last)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBroadcastLargeMesh(t *testing.T) {
	m := mesh.New(16, 16)
	for _, src := range []mesh.NodeID{0, 255, 100} {
		served := map[mesh.NodeID]int{}
		for _, msg := range BuildBroadcast(m, src, 4) {
			if err := msg.Control.Validate(); err != nil {
				t.Fatalf("src %d: %v", src, err)
			}
			for _, d := range msg.Delivers {
				served[d]++
			}
		}
		if len(served) != m.Nodes()-1 {
			t.Fatalf("src %d: covers %d nodes, want %d", src, len(served), m.Nodes()-1)
		}
		for n, c := range served {
			if c != 1 {
				t.Fatalf("src %d: node %d served %d times", src, n, c)
			}
		}
	}
}
