// Package packet defines the Phastlane single-flit packet: a full cache
// line of payload plus the predecoded source-routing control bits that the
// optical router consumes directly, with no electrical setup network.
//
// Physically (paper Section 2.1, Figure 3) a packet occupies ten payload
// waveguides (D0-D9, 64-way WDM) and two control waveguides (C0 and C1,
// 35-way WDM). The 70 control bits form up to 14 groups of five bits -
// Straight, Left, Right, Local, Multicast - one group per router the packet
// may traverse after leaving its source. Each router consumes Group 1 from
// C0, frequency-translates C0's Groups 2-7 down one position onto the output
// C1 waveguide, and physically shifts the old C1 into the C0 position, so
// the next router again finds its own bits in Group 1 of C0.
package packet

import (
	"fmt"
	"strings"

	"phastlane/internal/mesh"
)

// Control-group geometry fixed by the paper's Table 1.
const (
	// GroupBits is the size of one router-control group.
	GroupBits = 5
	// MaxGroups is the number of control groups a packet carries
	// (70 control bits / 5 bits per group).
	MaxGroups = 14
	// ControlWDM is the WDM degree of each of the two control waveguides.
	ControlWDM = 35
	// ControlWaveguides carries the 14 groups (7 groups per waveguide).
	ControlWaveguides = 2
	// PayloadWaveguides carries data+address+misc at PayloadWDM.
	PayloadWaveguides = 10
	// PayloadWDM is the default WDM degree of payload waveguides.
	PayloadWDM = 64
	// SizeBytes is the single-flit packet size: 64B cache line plus
	// address, operation, source ID, and ECC/misc (80 bytes total).
	SizeBytes = 80
	// PayloadBits is the total optical payload width.
	PayloadBits = SizeBytes * 8
)

// Op is the message operation type carried in the packet header. The set
// matches what a snoopy cache-coherent system sends over the network.
type Op uint8

// Operation types.
const (
	OpReadReq   Op = iota // broadcast L2-miss read request
	OpWriteReq            // broadcast write/upgrade request (invalidate)
	OpDataReply           // cache-line data reply from owner or MC
	OpAck                 // invalidation acknowledgement
	OpWriteback           // dirty line eviction to memory controller
	OpSynthetic           // synthetic-traffic payload (pattern workloads)
	NumOps
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpReadReq:
		return "read-req"
	case OpWriteReq:
		return "write-req"
	case OpDataReply:
		return "data-reply"
	case OpAck:
		return "ack"
	case OpWriteback:
		return "writeback"
	case OpSynthetic:
		return "synthetic"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Group is one 5-bit router-control group. Exactly one of Straight, Left,
// Right may be set for a transit group; Local marks ejection (interim or
// final); Multicast marks the tap-and-continue broadcast mode.
type Group struct {
	Straight  bool
	Left      bool
	Right     bool
	Local     bool
	Multicast bool
}

// Zero reports whether no bit is set (an unused trailing group).
func (g Group) Zero() bool {
	return !g.Straight && !g.Left && !g.Right && !g.Local && !g.Multicast
}

// Transit reports whether the group routes the packet onward through the
// router (exactly one direction bit set).
func (g Group) Transit() bool { return g.Straight || g.Left || g.Right }

// Valid reports whether the group is internally consistent: at most one
// direction bit set. Local may coexist with a direction bit: that marks an
// interim node, which receives the packet and later relaunches it in the
// encoded direction (paper Section 2.1.3).
func (g Group) Valid() bool {
	dirs := 0
	if g.Straight {
		dirs++
	}
	if g.Left {
		dirs++
	}
	if g.Right {
		dirs++
	}
	return dirs <= 1
}

// Interim reports whether the group marks an interim stop: the packet is
// received here and relaunched later toward the direction bits.
func (g Group) Interim() bool { return g.Local && g.Transit() }

// Turn converts the group to a mesh.Turn. Direction bits take precedence so
// that interim groups (Local + direction) report the relaunch turn; a pure
// Local group ejects. It panics on an empty group; callers validate routes
// at construction time.
func (g Group) Turn() mesh.Turn {
	switch {
	case g.Straight:
		return mesh.Straight
	case g.Left:
		return mesh.LeftTurn
	case g.Right:
		return mesh.RightTurn
	case g.Local:
		return mesh.Eject
	default:
		panic("packet: Turn on empty control group")
	}
}

// String renders the set bits, e.g. "S", "L+M", "Loc".
func (g Group) String() string {
	var parts []string
	if g.Straight {
		parts = append(parts, "S")
	}
	if g.Left {
		parts = append(parts, "L")
	}
	if g.Right {
		parts = append(parts, "R")
	}
	if g.Local {
		parts = append(parts, "Loc")
	}
	if g.Multicast {
		parts = append(parts, "M")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "+")
}

// Pack encodes the group into its 5-bit wire form (bit 0 = Straight ...
// bit 4 = Multicast), mirroring the λ1-λ5 assignment on the C0 waveguide.
func (g Group) Pack() uint8 {
	var b uint8
	if g.Straight {
		b |= 1 << 0
	}
	if g.Left {
		b |= 1 << 1
	}
	if g.Right {
		b |= 1 << 2
	}
	if g.Local {
		b |= 1 << 3
	}
	if g.Multicast {
		b |= 1 << 4
	}
	return b
}

// UnpackGroup decodes a 5-bit wire form produced by Pack.
func UnpackGroup(b uint8) Group {
	return Group{
		Straight:  b&(1<<0) != 0,
		Left:      b&(1<<1) != 0,
		Right:     b&(1<<2) != 0,
		Local:     b&(1<<3) != 0,
		Multicast: b&(1<<4) != 0,
	}
}

// Control is the full predecoded route: Groups[0] is the Group 1 the next
// router will consume. Used is the number of meaningful groups.
type Control struct {
	Groups [MaxGroups]Group
	Used   int
}

// Head returns the group the next router consumes.
func (c *Control) Head() Group {
	if c.Used == 0 {
		return Group{}
	}
	return c.Groups[0]
}

// Shift consumes Group 1 and moves every later group up one position,
// modelling the C1->C0 physical shift plus the frequency translation of
// Groups 2-7 performed at each output port (Figure 3). It returns the
// consumed group.
func (c *Control) Shift() Group {
	head := c.Groups[0]
	copy(c.Groups[:], c.Groups[1:])
	c.Groups[MaxGroups-1] = Group{}
	if c.Used > 0 {
		c.Used--
	}
	return head
}

// Validate checks structural invariants: every used group valid and
// non-empty, every unused group empty, and the final used group ejecting
// (Local set) so the packet always leaves the network.
func (c *Control) Validate() error {
	if c.Used < 0 || c.Used > MaxGroups {
		return fmt.Errorf("packet: control uses %d groups, want 0..%d", c.Used, MaxGroups)
	}
	for i := 0; i < c.Used; i++ {
		g := c.Groups[i]
		if !g.Valid() {
			return fmt.Errorf("packet: group %d invalid: %s", i+1, g)
		}
		if g.Zero() {
			return fmt.Errorf("packet: group %d empty but within used range %d", i+1, c.Used)
		}
	}
	for i := c.Used; i < MaxGroups; i++ {
		if !c.Groups[i].Zero() {
			return fmt.Errorf("packet: group %d set beyond used range %d", i+1, c.Used)
		}
	}
	if c.Used > 0 && !c.Groups[c.Used-1].Local {
		return fmt.Errorf("packet: final group %s does not eject", c.Groups[c.Used-1])
	}
	return nil
}

// String renders the used groups, e.g. "[S S R Loc]".
func (c *Control) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < c.Used; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.Groups[i].String())
	}
	b.WriteByte(']')
	return b.String()
}

// Packet is a single Phastlane flit. Packets are passed by pointer; the
// simulator allocates one per logical message and reuses it across
// retransmissions (updating Control and bookkeeping fields).
type Packet struct {
	// ID uniquely identifies the logical message for statistics.
	ID uint64
	// Src is the original injecting node; Dst the final destination.
	// For multicast messages Dst is the last node of the sweep and
	// MulticastDsts lists every node the message must deliver to.
	Src, Dst mesh.NodeID
	// Op is the message type.
	Op Op
	// Addr is the cache-line address for coherence traffic (diagnostic).
	Addr uint64
	// Control holds the remaining predecoded route, relative to the
	// router the packet is about to enter.
	Control Control
	// Multicast route metadata: destinations not yet served. Nil for
	// unicast packets.
	MulticastDsts []mesh.NodeID
	// InjectCycle is when the message first entered a NIC queue;
	// LaunchCycle is when the current transmission attempt launched.
	InjectCycle, LaunchCycle int64
	// Hops accumulates link traversals across all attempts (for power).
	Hops int
	// Retries counts drop-triggered retransmissions.
	Retries int
	// Dep, if non-zero, is the ID of the message that must be delivered
	// before this one may be injected (trace replay dependency).
	Dep uint64
}

// DirAfterTurn applies the turn encoded by g to a packet travelling in
// direction travel and returns the new travel direction, or Local when the
// group ejects.
func DirAfterTurn(travel mesh.Dir, g Group) mesh.Dir {
	switch g.Turn() {
	case mesh.Eject:
		return mesh.Local
	case mesh.Straight:
		return travel
	case mesh.LeftTurn:
		return leftOf(travel)
	default:
		return rightOf(travel)
	}
}

func leftOf(d mesh.Dir) mesh.Dir {
	switch d {
	case mesh.North:
		return mesh.West
	case mesh.West:
		return mesh.South
	case mesh.South:
		return mesh.East
	default:
		return mesh.North
	}
}

func rightOf(d mesh.Dir) mesh.Dir {
	switch d {
	case mesh.North:
		return mesh.East
	case mesh.East:
		return mesh.South
	case mesh.South:
		return mesh.West
	default:
		return mesh.North
	}
}

// GroupForStep builds the control group for one router of a route: the
// packet arrives travelling in direction travel and must leave in direction
// out (or eject when out == mesh.Local). multicast marks tap-and-continue.
func GroupForStep(travel, out mesh.Dir, multicast bool) Group {
	g := Group{Multicast: multicast}
	if out == mesh.Local {
		g.Local = true
		return g
	}
	switch mesh.TurnFor(travel, out) {
	case mesh.Straight:
		g.Straight = true
	case mesh.LeftTurn:
		g.Left = true
	case mesh.RightTurn:
		g.Right = true
	default:
		panic(fmt.Sprintf("packet: cannot encode %s->%s in one group", travel, out))
	}
	return g
}

// BuildControl predecodes the dimension-order route from src to dst on m
// into control groups. The source router's own routing decision is made at
// injection time and is not represented as a group; Groups[0] is consumed by
// the first router after the source. It returns the direction the source
// must launch the packet in. src == dst is a configuration error and panics.
//
// Routes longer than the 14 groups a packet can carry are truncated at an
// interim stop on the 14th router: that node receives the packet, assumes
// responsibility, and rebuilds the control for the remainder (the Section
// 2.1.3 relaunch path). This extends the 8x8 packet format to larger
// meshes; within an 8x8 mesh no route exceeds 14 groups.
//
// Ownership: route compilation belongs to the topology layer. Simulators
// and harnesses must obtain control words through a topo.Topology's
// ControlEncoder (topo.Mesh2D delegates here); calling BuildControl
// directly outside internal/topo and this package's tests is deprecated —
// it hard-wires the caller to mesh geometry.
func BuildControl(m *mesh.Mesh, src, dst mesh.NodeID) (Control, mesh.Dir) {
	total := m.HopDistance(src, dst)
	if total == 0 {
		panic(fmt.Sprintf("packet: BuildControl with src == dst == %d", src))
	}
	// The route directions are read via mesh.RouteDir rather than a
	// materialised m.Route slice: BuildControl sits on the relaunch hot
	// path (every bypass re-segmentation) and must not allocate.
	n, truncated := total, false
	if n > MaxGroups {
		n, truncated = MaxGroups, true
	}
	var c Control
	launch := m.RouteDir(src, dst, 0)
	for i := 1; i <= n; i++ {
		travel := m.RouteDir(src, dst, i-1)
		out := mesh.Local
		if i < n {
			out = m.RouteDir(src, dst, i)
		}
		c.Groups[i-1] = GroupForStep(travel, out, false)
		c.Used = i
	}
	if truncated {
		// The final group becomes an interim stop: Local plus the
		// direction the journey continues in.
		last := &c.Groups[c.Used-1]
		last.Local = true
		cont := m.RouteDir(src, dst, MaxGroups)
		g := GroupForStep(m.RouteDir(src, dst, n-1), cont, false)
		last.Straight, last.Left, last.Right = g.Straight, g.Left, g.Right
	}
	return c, launch
}

// ControlFromDirs predecodes an explicit sequence of travel directions
// into control groups, returning the control and the direction the source
// must launch in. It is the arbitrary-route counterpart of BuildControl
// for fault-aware detours that leave the dimension-order template: dirs
// lists every link of the route in travel order, and consecutive
// directions must differ by at most one turn (no reversals — a minimal
// route never doubles back). Routes longer than MaxGroups are truncated
// at an interim stop exactly as BuildControl truncates, leaving the
// interim node to rebuild the remainder. It panics on an empty route.
func ControlFromDirs(dirs []mesh.Dir) (Control, mesh.Dir) {
	if len(dirs) == 0 {
		panic("packet: ControlFromDirs with empty route")
	}
	n, truncated := len(dirs), false
	if n > MaxGroups {
		n, truncated = MaxGroups, true
	}
	var c Control
	for i := 1; i <= n; i++ {
		out := mesh.Local
		if i < n {
			out = dirs[i]
		}
		c.Groups[i-1] = GroupForStep(dirs[i-1], out, false)
		c.Used = i
	}
	if truncated {
		last := &c.Groups[c.Used-1]
		last.Local = true
		g := GroupForStep(dirs[n-1], dirs[n], false)
		last.Straight, last.Left, last.Right = g.Straight, g.Left, g.Right
	}
	return c, dirs[0]
}

// MarkInterims sets the Local bit at every maxHops-th router of an existing
// control so that journeys longer than a single cycle stop at interim nodes
// that buffer and relaunch the packet (paper Section 2.1.3). The direction
// bits are retained: an interim group (Local + direction) tells the interim
// node which way to relaunch. maxHops counts links traversed per cycle; the
// source-to-first-router link is hop 1, so the first interim Local lands on
// group index maxHops-1 (0-based).
func (c *Control) MarkInterims(maxHops int) {
	if maxHops < 1 {
		panic(fmt.Sprintf("packet: MarkInterims with maxHops %d", maxHops))
	}
	for i := maxHops - 1; i < c.Used-1; i += maxHops {
		c.Groups[i].Local = true
	}
}

// NextStop returns the number of groups up to and including the first group
// with Local set (the distance, in links, the current launch will cover
// before the packet is next received), or Used when no Local bit remains
// (malformed; Validate rejects such controls).
func (c *Control) NextStop() int {
	for i := 0; i < c.Used; i++ {
		if c.Groups[i].Local {
			return i + 1
		}
	}
	return c.Used
}

// MulticastMessage is one column-sweep message of a broadcast: the launch
// direction out of the source, the predecoded control, and the nodes it
// delivers to, in visit order.
type MulticastMessage struct {
	Launch   mesh.Dir
	Control  Control
	Delivers []mesh.NodeID
}

// BuildBroadcast decomposes a broadcast from src into up to 16 multicast
// column-sweep messages (8 when src sits on the top or bottom row), per
// paper Section 2.1.4. Each message travels along src's row to a target
// column (no deliveries en route), turns North or South, and delivers to
// every node of that column segment via multicast taps, ejecting at the
// segment end. The row-crossing node of each column is served by the upward
// sweep, or by the downward sweep when src is on the top row. src itself is
// never delivered to. maxHops interim stops are marked on every message.
func BuildBroadcast(m *mesh.Mesh, src mesh.NodeID, maxHops int) []MulticastMessage {
	cs := m.Coord(src)
	top := m.Height() - 1
	var msgs []MulticastMessage
	for x := 0; x < m.Width(); x++ {
		if cs.Y < top {
			// Upward sweep covers (x, cs.Y) .. (x, top), minus src.
			yFirst := cs.Y
			if x == cs.X {
				yFirst = cs.Y + 1
			}
			if up := buildSweep(m, src, x, mesh.North, yFirst, top); up != nil {
				msgs = append(msgs, *up)
			}
		}
		// Downward sweep covers (x, cs.Y-1) .. (x, 0); when src is on
		// the top row it also covers the row-crossing node (x, cs.Y).
		yFirst := cs.Y - 1
		if cs.Y == top && x != cs.X {
			yFirst = cs.Y
		}
		if down := buildSweep(m, src, x, mesh.South, yFirst, 0); down != nil {
			msgs = append(msgs, *down)
		}
	}
	for i := range msgs {
		msgs[i].Control.MarkInterims(maxHops)
	}
	return msgs
}

// buildSweep constructs the multicast message from src that serves rows
// yFirst..yLast (inclusive, in vert order) of column x, or nil when the
// segment is empty.
func buildSweep(m *mesh.Mesh, src mesh.NodeID, x int, vert mesh.Dir, yFirst, yLast int) *MulticastMessage {
	cs := m.Coord(src)
	if (vert == mesh.North && yFirst > yLast) || (vert == mesh.South && yFirst < yLast) {
		return nil
	}
	// Horizontal approach along src's row.
	var dirs []mesh.Dir
	h := mesh.East
	if x < cs.X {
		h = mesh.West
	}
	for i := 0; i < absInt(x-cs.X); i++ {
		dirs = append(dirs, h)
	}
	// Vertical sweep.
	step := 1
	if vert == mesh.South {
		step = -1
	}
	sweepLinks := absInt(yLast - cs.Y)
	for i := 0; i < sweepLinks; i++ {
		dirs = append(dirs, vert)
	}
	if len(dirs) == 0 {
		return nil
	}
	// Sweeps longer than the control capacity are truncated at an
	// interim stop that relaunches the remainder (see BuildControl).
	var contDir mesh.Dir
	truncated := false
	if len(dirs) > MaxGroups {
		contDir = dirs[MaxGroups]
		dirs = dirs[:MaxGroups]
		truncated = true
	}
	msg := &MulticastMessage{Launch: dirs[0]}
	// Delivery set: every node of the column segment.
	y := yFirst
	for {
		msg.Delivers = append(msg.Delivers, m.ID(mesh.Coord{X: x, Y: y}))
		if y == yLast {
			break
		}
		y += step
	}
	// Control groups: router i (0-based, the i-th router after src) sees
	// travel dirs[i] and exits dirs[i+1] (Local at the end). Multicast
	// bit set on every group that serves a delivery node.
	deliver := make(map[mesh.NodeID]bool, len(msg.Delivers))
	for _, d := range msg.Delivers {
		deliver[d] = true
	}
	cur := src
	for i := 0; i < len(dirs); i++ {
		next, ok := m.Neighbor(cur, dirs[i])
		if !ok {
			panic(fmt.Sprintf("packet: broadcast sweep walks off mesh at %d going %s", cur, dirs[i]))
		}
		cur = next
		out := mesh.Local
		if i+1 < len(dirs) {
			out = dirs[i+1]
		}
		g := GroupForStep(dirs[i], out, deliver[cur])
		msg.Control.Groups[i] = g
		msg.Control.Used = i + 1
	}
	if truncated {
		last := &msg.Control.Groups[msg.Control.Used-1]
		last.Local = true
		g := GroupForStep(dirs[len(dirs)-1], contDir, false)
		last.Straight, last.Left, last.Right = g.Straight, g.Left, g.Right
	}
	return msg
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
