package packet_test

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/packet"
)

// FuzzGroupPackRoundTrip pins the 5-bit wire encoding: any byte decodes
// without panicking, re-encodes to its low five bits, and double
// round-trips are stable.
func FuzzGroupPackRoundTrip(f *testing.F) {
	for b := 0; b < 32; b += 7 {
		f.Add(uint8(b))
	}
	f.Add(uint8(0x1f))
	f.Add(uint8(0xff))
	f.Fuzz(func(t *testing.T, b uint8) {
		g := packet.UnpackGroup(b)
		packed := g.Pack()
		if packed != b&0x1f {
			t.Errorf("UnpackGroup(%#x).Pack() = %#x, want %#x", b, packed, b&0x1f)
		}
		if again := packet.UnpackGroup(packed); again != g {
			t.Errorf("double round-trip unstable: %#x -> %+v -> %#x -> %+v", b, g, packed, again)
		}
		// String must not panic on any group, valid or not.
		_ = g.String()
	})
}

// FuzzBuildControlRouteWalk drives BuildControl over arbitrary mesh
// geometries and node pairs, then walks the resulting control hop by hop:
// the walk must stay on the mesh, the control must validate, and the
// packet must eject exactly at the destination (or at a truncation-interim
// stop strictly before it on oversized meshes).
func FuzzBuildControlRouteWalk(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint16(0), uint16(63))
	f.Add(uint8(8), uint8(8), uint16(63), uint16(0))
	f.Add(uint8(2), uint8(2), uint16(1), uint16(2))
	f.Add(uint8(16), uint8(16), uint16(0), uint16(255))
	f.Add(uint8(1), uint8(9), uint16(3), uint16(8))
	f.Fuzz(func(t *testing.T, w, h uint8, srcRaw, dstRaw uint16) {
		width := int(w%16) + 1
		height := int(h%16) + 1
		m := mesh.New(width, height)
		nodes := m.Nodes()
		if nodes < 2 {
			t.Skip("mesh too small for a route")
		}
		src := mesh.NodeID(int(srcRaw) % nodes)
		dst := mesh.NodeID(int(dstRaw) % nodes)
		if src == dst {
			t.Skip("BuildControl is defined for distinct endpoints only")
		}
		ctl, launch := packet.BuildControl(m, src, dst)
		if err := ctl.Validate(); err != nil {
			t.Fatalf("BuildControl(%dx%d, %d->%d) invalid: %v", width, height, src, dst, err)
		}
		truncated := m.HopDistance(src, dst) > packet.MaxGroups

		cur := src
		travel := launch
		for i := 0; i < ctl.Used; i++ {
			next, ok := m.Neighbor(cur, travel)
			if !ok {
				t.Fatalf("walk leaves the mesh at node %d going %s (group %d)", cur, travel, i)
			}
			cur = next
			g := ctl.Groups[i]
			last := i == ctl.Used-1
			switch {
			case g.Interim():
				if !last || !truncated {
					t.Fatalf("unexpected interim group %d on a %d-hop route", i, m.HopDistance(src, dst))
				}
				if cur == dst {
					t.Fatalf("truncation interim landed on the destination")
				}
			case g.Local:
				if !last {
					t.Fatalf("eject group %d before the end of the control", i)
				}
				if cur != dst {
					t.Fatalf("walk ejects at %d, want %d", cur, dst)
				}
			default:
				travel = packet.DirAfterTurn(travel, g)
			}
		}
		if !truncated && cur != dst {
			t.Fatalf("walk ended at %d, want %d", cur, dst)
		}
	})
}

// FuzzControlShiftStability checks that shifting a built control consumes
// groups one by one without ever producing an invalid intermediate state.
func FuzzControlShiftStability(f *testing.F) {
	f.Add(uint8(8), uint16(0), uint16(63))
	f.Add(uint8(4), uint16(5), uint16(10))
	f.Fuzz(func(t *testing.T, w uint8, srcRaw, dstRaw uint16) {
		width := int(w%15) + 2
		m := mesh.New(width, width)
		nodes := m.Nodes()
		src := mesh.NodeID(int(srcRaw) % nodes)
		dst := mesh.NodeID(int(dstRaw) % nodes)
		if src == dst {
			t.Skip()
		}
		ctl, _ := packet.BuildControl(m, src, dst)
		used := ctl.Used
		for i := 0; i < used; i++ {
			head := ctl.Head()
			if shifted := ctl.Shift(); shifted != head {
				t.Fatalf("Shift returned %+v, Head promised %+v", shifted, head)
			}
			if ctl.Used != used-i-1 {
				t.Fatalf("Used = %d after %d shifts, want %d", ctl.Used, i+1, used-i-1)
			}
		}
		if !ctl.Head().Zero() {
			t.Fatalf("drained control still has a head: %+v", ctl.Head())
		}
	})
}
