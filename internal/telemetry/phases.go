package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"

	"phastlane/internal/stats"
)

// Phase names one pipeline stage of a simulation kernel's Step. The
// electrical kernel reports the first block; the optical kernel the
// second. PhaseWatchdog and PhaseOther are shared.
type Phase int

// Pipeline phases, in execution order.
const (
	// PhaseWatchdog: the fault/loss watchdog scan (both kernels).
	PhaseWatchdog Phase = iota
	// PhaseArrivals: applying last cycle's link traversals into their
	// reserved VCs (the link/credit half of the electrical pipeline).
	PhaseArrivals
	// PhaseActiveSet: event-driven active-set merge and compaction.
	PhaseActiveSet
	// PhaseEject: direct ejection to local nodes.
	PhaseEject
	// PhaseInject: NIC head to local-port VC injection.
	PhaseInject
	// PhaseVCAlloc: iSLIP request gathering plus VC allocation.
	PhaseVCAlloc
	// PhaseSwitch: iSLIP switch allocation and link traversal.
	PhaseSwitch
	// PhaseAge: VC pipeline aging.
	PhaseAge
	// PhaseDropWindow: optical drop-window resolution (retry requeues).
	PhaseDropWindow
	// PhaseLaunch: optical rotating-priority launch arbitration.
	PhaseLaunch
	// PhaseWalk: the optical wavefront walk (passes, taps, captures).
	PhaseWalk
	// PhaseOther is the Step residue outside any marked phase
	// (energy accounting, cycle bookkeeping).
	PhaseOther

	// NumPhases bounds Phase for dense arrays.
	NumPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseWatchdog:
		return "watchdog"
	case PhaseArrivals:
		return "arrivals"
	case PhaseActiveSet:
		return "active-set"
	case PhaseEject:
		return "eject"
	case PhaseInject:
		return "inject"
	case PhaseVCAlloc:
		return "vcalloc"
	case PhaseSwitch:
		return "switch"
	case PhaseAge:
		return "age"
	case PhaseDropWindow:
		return "drop-window"
	case PhaseLaunch:
		return "launch"
	case PhaseWalk:
		return "walk"
	case PhaseOther:
		return "other"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// epoch anchors the monotonic clock; nanotime reads are differences
// against it, so only the monotonic component matters.
var epoch = time.Now()

func nanotime() int64 { return int64(time.Since(epoch)) }

// Phases accumulates sampled per-phase wall time for one or more
// networks (concurrent sweeps may share one profile; all writes are
// atomic). A nil *Phases is valid and free: Begin returns an inactive
// span whose marks are single nil checks.
type Phases struct {
	// every is the sampling period: cycles where cycle%every != 0 are
	// not timed, bounding overhead on the busy path.
	every int64

	nanos   [NumPhases]atomic.Int64
	total   atomic.Int64
	sampled atomic.Int64
}

// DefaultSampleEvery is the phase-timer sampling period used when none
// is given: one cycle in 16 is timed.
const DefaultSampleEvery = 16

// NewPhases builds a profile sampling one cycle in every (<= 0 uses
// DefaultSampleEvery; 1 times every cycle).
func NewPhases(every int) *Phases {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Phases{every: int64(every)}
}

// Span times one sampled Step; the zero Span is inactive and free.
type Span struct {
	p           *Phases
	start, last int64
}

// Begin starts a span for the given cycle. It returns the inactive span
// when p is nil (telemetry off) or the cycle is not sampled.
func (p *Phases) Begin(cycle int64) Span {
	if p == nil || cycle%p.every != 0 {
		return Span{}
	}
	now := nanotime()
	return Span{p: p, start: now, last: now}
}

// Mark attributes the time since the previous mark (or Begin) to ph.
func (s *Span) Mark(ph Phase) {
	if s.p == nil {
		return
	}
	now := nanotime()
	s.p.nanos[ph].Add(now - s.last)
	s.last = now
}

// End closes the span: the residue since the last mark lands in
// PhaseOther and the whole span in the total.
func (s *Span) End() {
	if s.p == nil {
		return
	}
	now := nanotime()
	s.p.nanos[PhaseOther].Add(now - s.last)
	s.p.total.Add(now - s.start)
	s.p.sampled.Add(1)
}

// PhaseStat is one phase's share of the sampled step time.
type PhaseStat struct {
	Phase    string  `json:"phase"`
	Nanos    int64   `json:"nanos"`
	PerCycle float64 `json:"ns_per_cycle"`
	Share    float64 `json:"share"`
}

// PhasesSnapshot is the attribution summary at one instant.
type PhasesSnapshot struct {
	SampledCycles int64       `json:"sampled_cycles"`
	TotalNanos    int64       `json:"total_nanos"`
	Stats         []PhaseStat `json:"phases"`
}

// Snapshot summarises the profile. Phases that never ran are omitted.
func (p *Phases) Snapshot() PhasesSnapshot {
	s := PhasesSnapshot{SampledCycles: p.sampled.Load(), TotalNanos: p.total.Load()}
	for ph := Phase(0); ph < NumPhases; ph++ {
		ns := p.nanos[ph].Load()
		if ns == 0 {
			continue
		}
		st := PhaseStat{Phase: ph.String(), Nanos: ns}
		if s.SampledCycles > 0 {
			st.PerCycle = float64(ns) / float64(s.SampledCycles)
		}
		if s.TotalNanos > 0 {
			st.Share = float64(ns) / float64(s.TotalNanos)
		}
		s.Stats = append(s.Stats, st)
	}
	return s
}

// AttributedFraction is the share of the sampled step time covered by
// named phases (everything except PhaseOther) — the "does the
// attribution table explain the step" figure of merit.
func (s PhasesSnapshot) AttributedFraction() float64 {
	if s.TotalNanos == 0 {
		return 0
	}
	var named int64
	for _, st := range s.Stats {
		if st.Phase != PhaseOther.String() {
			named += st.Nanos
		}
	}
	return float64(named) / float64(s.TotalNanos)
}

// Table renders the time-attribution table: per-phase ns/cycle and the
// share of the measured step time, the data the slim-router work item
// needs to decide what to cut.
func (p *Phases) Table() *stats.Table {
	s := p.Snapshot()
	t := &stats.Table{Columns: []string{"phase", "ns/cycle", "share"}}
	for _, st := range s.Stats {
		t.AddRow(st.Phase, fmt.Sprintf("%.1f", st.PerCycle), fmt.Sprintf("%5.1f%%", st.Share*100))
	}
	if s.SampledCycles > 0 {
		t.AddRow("total",
			fmt.Sprintf("%.1f", float64(s.TotalNanos)/float64(s.SampledCycles)),
			fmt.Sprintf("%5.1f%%", 100.0))
	}
	return t
}

// Register exposes the profile's counters on reg as a labelled
// phastlane_phase_nanos_total series plus the sampled-cycle count.
func (p *Phases) Register(reg *Registry) {
	for ph := Phase(0); ph < NumPhases; ph++ {
		ph := ph
		reg.CounterFunc(
			fmt.Sprintf("phastlane_phase_nanos_total{phase=%q}", ph.String()),
			"sampled wall nanoseconds attributed to each kernel pipeline phase",
			func() float64 { return float64(p.nanos[ph].Load()) })
	}
	reg.CounterFunc("phastlane_phase_sampled_cycles_total",
		"cycles timed by the phase profiler",
		func() float64 { return float64(p.sampled.Load()) })
}

// Instrumentable is implemented by networks whose Step pipeline can
// report per-phase timings. SetPhases(nil) — the default — must cost
// nothing on the step path.
type Instrumentable interface {
	SetPhases(*Phases)
}

// ActiveSetReporter is implemented by networks that maintain an active
// set (the event-driven electrical kernel): ActiveRouters reports its
// current size for the flight recorder and the active-set gauge.
type ActiveSetReporter interface {
	ActiveRouters() int
}

// InvariantChecker is implemented by networks that can audit their own
// structural invariants (busy ⇒ active-set-listed, live-parcel
// accounting). The check may be O(mesh); the watchdog calls it only at
// flush boundaries, never per cycle.
type InvariantChecker interface {
	CheckInvariants() error
}
