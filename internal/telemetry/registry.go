// Package telemetry is the live observability layer shared by both
// simulators and every long-running command. Where package obs answers
// "what happened in this run" after the fact (event matrices, Perfetto
// traces), telemetry answers "what is happening right now" while a
// multi-billion-cycle run is still going: a lock-free metrics registry
// scraped over HTTP (Prometheus text + JSON snapshot + net/http/pprof),
// sampled per-pipeline-phase timers that attribute where a kernel's
// step time goes, a JSONL flight recorder for post-hoc diagnosis of long
// runs, and invariant watchdogs that trip (and optionally abort) when
// the simulation's conservation laws break.
//
// Overhead contract: everything is nil-guarded zero-cost when off. A
// network with a nil *Phases pays one nil check per Step; a harness with
// a nil *Run pays one branch per cycle. When on, metric updates are
// single atomic operations and phase timing is sampled (one cycle in
// SampleEvery), so both kernels keep their 0 allocs/cycle budget with
// telemetry attached.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous float value, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records observations into a fixed-size ring buffer of the
// most recent samples plus exact count/sum totals. Quantiles are computed
// at snapshot time over the ring, so a scrape sees the recent
// distribution without the writer ever taking a lock or allocating.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	ring    []atomic.Uint64
	mask    uint64
}

// DefaultHistogramWindow is the ring size used when none is given.
const DefaultHistogramWindow = 1024

func newHistogram(window int) *Histogram {
	if window <= 0 {
		window = DefaultHistogramWindow
	}
	// Round up to a power of two so the ring index is a mask.
	size := 1
	for size < window {
		size *= 2
	}
	return &Histogram{ring: make([]atomic.Uint64, size), mask: uint64(size - 1)}
}

// Observe records one sample. Lock-free: one atomic add for the slot,
// one store, and a CAS loop for the running sum.
func (h *Histogram) Observe(v float64) {
	i := uint64(h.count.Add(1)-1) & h.mask
	h.ring[i].Store(math.Float64bits(v))
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot summarises a histogram at one instant.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot computes quantiles over the retained ring of recent samples.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: math.Float64frombits(h.sumBits.Load())}
	n := s.Count
	if n == 0 {
		return s
	}
	if n > int64(len(h.ring)) {
		n = int64(len(h.ring))
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(h.ring[i].Load())
	}
	sort.Float64s(vals)
	q := func(p float64) float64 {
		idx := int(math.Ceil(p/100*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		return vals[idx]
	}
	s.Min, s.Max = vals[0], vals[len(vals)-1]
	s.Mean = s.Sum / float64(s.Count)
	s.P50, s.P95, s.P99 = q(50), q(95), q(99)
	return s
}

// metric is one registered entry; exactly one of the pointers is set.
type metric struct {
	name, help string
	typ        string // "counter", "gauge", "summary"
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	fn         func() float64
}

// Registry holds named metrics in registration order. Registration takes
// a lock; metric updates and scrapes never do (they read atomics).
type Registry struct {
	mu     sync.RWMutex
	order  []*metric
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// validName checks the Prometheus metric-name grammar: a bare name, or
// name{key="value",...} for a pre-labelled series.
func validName(name string) error {
	base := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") || i == 0 {
			return fmt.Errorf("telemetry: malformed labels in metric %q", name)
		}
		base = name[:i]
	}
	for i, r := range base {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q", name)
		}
	}
	if base == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	return nil
}

// baseName strips a {labels} suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register inserts m, panicking on invalid or conflicting names
// (registration is programmer-controlled, so both are programming
// errors). Registering the same name twice returns the existing metric
// when the kinds match.
func (r *Registry) register(m *metric) *metric {
	if err := validName(m.name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name]; ok {
		if prev.typ != m.typ {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", m.name, m.typ, prev.typ))
		}
		return prev
	}
	r.byName[m.name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, typ: "counter", counter: &Counter{}})
	return m.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, typ: "gauge", gauge: &Gauge{}})
	return m.gauge
}

// Histogram registers (or fetches) a ring-buffer histogram retaining the
// last window samples (0 = DefaultHistogramWindow). Histogram names must
// not carry labels: the summary exposition adds its own quantile label.
func (r *Registry) Histogram(name, help string, window int) *Histogram {
	if strings.ContainsRune(name, '{') {
		panic(fmt.Sprintf("telemetry: histogram %q must not carry labels", name))
	}
	m := r.register(&metric{name: name, help: help, typ: "summary", hist: newHistogram(window)})
	return m.hist
}

// CounterFunc registers a counter whose value is computed at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", fn: fn})
}

// snapshotMetrics returns the ordered metric list under the read lock.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*metric, len(r.order))
	copy(out, r.order)
	return out
}

// value returns the metric's current scalar value (not for histograms).
func (m *metric) value() float64 {
	switch {
	case m.fn != nil:
		return m.fn()
	case m.counter != nil:
		return float64(m.counter.Load())
	case m.gauge != nil:
		return m.gauge.Load()
	}
	return 0
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Metrics sharing a base name (labelled series)
// emit one HELP/TYPE header for the group.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastBase string
	for _, m := range r.snapshotMetrics() {
		base := baseName(m.name)
		if base != lastBase {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, m.help, base, m.typ); err != nil {
				return err
			}
			lastBase = base
		}
		if m.hist != nil {
			s := m.hist.Snapshot()
			if _, err := fmt.Fprintf(w,
				"%s{quantile=\"0.5\"} %v\n%s{quantile=\"0.95\"} %v\n%s{quantile=\"0.99\"} %v\n%s_sum %v\n%s_count %d\n",
				m.name, s.P50, m.name, s.P95, m.name, s.P99, m.name, s.Sum, m.name, s.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %v\n", m.name, m.value()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot is the JSON document served at /telemetry.json: every
// registered metric by name. It round-trips through encoding/json.
// Counters holds the integer atomic counters; scrape-time func metrics
// are float-valued and land in Gauges regardless of exposition type.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	for _, m := range r.snapshotMetrics() {
		switch {
		case m.hist != nil:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[m.name] = m.hist.Snapshot()
		case m.typ == "counter" && m.fn == nil:
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[m.name] = m.counter.Load()
		default:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[m.name] = m.value()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
