package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "a counter")
	g := reg.Gauge("test_gauge", "a gauge")
	h := reg.Histogram("test_latency", "a histogram", 8)
	c.Add(3)
	c.Inc()
	g.Set(2.5)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if c.Load() != 4 {
		t.Errorf("counter = %d, want 4", c.Load())
	}
	if g.Load() != 2.5 {
		t.Errorf("gauge = %v, want 2.5", g.Load())
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("hist count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Errorf("hist sum = %v, want 5050", s.Sum)
	}
	// The ring holds only the last 8 samples (93..100).
	if s.Min != 93 || s.Max != 100 {
		t.Errorf("ring min/max = %v/%v, want 93/100", s.Min, s.Max)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 || s.Sum != 8000 {
		t.Errorf("count/sum = %d/%v, want 8000/8000", s.Count, s.Sum)
	}
}

func TestRegistryDuplicateAndInvalidNames(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "x")
	b := reg.Counter("dup_total", "x")
	if a != b {
		t.Error("re-registering the same counter did not return the original")
	}
	for _, bad := range []string{"", "9starts_with_digit", "has space", "labels{unterminated"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %q did not panic", bad)
				}
			}()
			reg.Counter(bad, "x")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		reg.Gauge("dup_total", "x")
	}()
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exp_total", "events").Add(7)
	reg.Gauge("exp_gauge", "level").Set(1.5)
	reg.Counter(`exp_labeled_total{phase="eject"}`, "labelled").Add(2)
	reg.Counter(`exp_labeled_total{phase="walk"}`, "labelled").Add(3)
	reg.Histogram("exp_hist", "dist", 8).Observe(4)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP exp_total events",
		"# TYPE exp_total counter",
		"exp_total 7",
		"exp_gauge 1.5",
		`exp_labeled_total{phase="eject"} 2`,
		`exp_labeled_total{phase="walk"} 3`,
		`exp_hist{quantile="0.5"} 4`,
		"exp_hist_sum 4",
		"exp_hist_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One header per base name, even with two labelled series.
	if n := strings.Count(out, "# TYPE exp_labeled_total"); n != 1 {
		t.Errorf("labelled series emitted %d TYPE headers, want 1", n)
	}
}

// TestSnapshotRoundTrip pins the JSON serialization: a snapshot survives
// a marshal/unmarshal round trip bit-identically, so the /telemetry.json
// endpoint and any log post-processing agree on the numbers.
func TestSnapshotRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_total", "c").Add(42)
	reg.Gauge("rt_gauge", "g").Set(0.1)
	h := reg.Histogram("rt_hist", "h", 16)
	for i := 0; i < 37; i++ {
		h.Observe(float64(i) * 1.5)
	}
	snap := reg.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
	if back.Counters["rt_total"] != 42 {
		t.Errorf("counter = %d, want 42", back.Counters["rt_total"])
	}
	if back.Histograms["rt_hist"].Count != 37 {
		t.Errorf("hist count = %d, want 37", back.Histograms["rt_hist"].Count)
	}
}

func TestPhasesAttribution(t *testing.T) {
	p := NewPhases(1)
	for cycle := int64(0); cycle < 50; cycle++ {
		sp := p.Begin(cycle)
		busyWork(2000)
		sp.Mark(PhaseEject)
		busyWork(2000)
		sp.Mark(PhaseSwitch)
		sp.End()
	}
	s := p.Snapshot()
	if s.SampledCycles != 50 {
		t.Fatalf("sampled %d cycles, want 50", s.SampledCycles)
	}
	if f := s.AttributedFraction(); f < 0.5 {
		t.Errorf("attributed fraction %.2f, want most of the span in named phases", f)
	}
	if len(s.Stats) == 0 || p.Table().String() == "" {
		t.Error("empty attribution table")
	}
}

func TestPhasesSampling(t *testing.T) {
	p := NewPhases(4)
	for cycle := int64(0); cycle < 16; cycle++ {
		sp := p.Begin(cycle)
		sp.Mark(PhaseWalk)
		sp.End()
	}
	if got := p.Snapshot().SampledCycles; got != 4 {
		t.Errorf("sampled %d cycles with every=4 over 16, want 4", got)
	}
}

// TestNilPhasesFree pins the off-state contract: a nil profile hands out
// inactive spans whose marks are no-ops.
func TestNilPhasesFree(t *testing.T) {
	var p *Phases
	sp := p.Begin(0)
	sp.Mark(PhaseEject)
	sp.End()
}

var busySink int

// busyWork burns a deterministic amount of CPU so phase spans have
// measurable width without sleeping.
func busyWork(n int) {
	s := 0
	for i := 0; i < n; i++ {
		s += i * i
	}
	busySink = s
}

func TestWatchdogTripAndFlush(t *testing.T) {
	var buf bytes.Buffer
	var tripped []Trip
	run := NewRun(Options{
		Recorder: NewRecorder(&buf),
		Watchdog: &Watchdog{OnTrip: func(tr Trip) { tripped = append(tripped, tr) }},
	})
	run.Tick(3, 2, 0, 0, 1)
	// Conservation violated: 1+0+1 != 3.
	run.Flush(FlushStats{
		Cycle: 100, Injected: 3, Delivered: 1, Lost: 0, InFlight: 1,
		CheckConservation: true, ActiveRouters: -1,
	})
	if len(tripped) != 1 || tripped[0].Name != "conservation" {
		t.Fatalf("trips = %+v, want one conservation trip", tripped)
	}
	if len(run.Watchdog.Trips()) != 1 {
		t.Errorf("watchdog recorded %d trips, want 1", len(run.Watchdog.Trips()))
	}
	var rec Record
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("flight record is not JSONL: %v\n%s", err, buf.String())
	}
	if rec.Type != "watchdog" || !strings.Contains(rec.Trip, "conservation") {
		t.Errorf("record = %+v, want a stamped watchdog sample", rec)
	}
}

func TestWatchdogAbort(t *testing.T) {
	run := NewRun(Options{Watchdog: &Watchdog{Abort: true}})
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "watchdog abort") {
			t.Errorf("abort watchdog did not panic: %v", r)
		}
	}()
	run.Flush(FlushStats{
		Cycle: 1, Injected: 2, CheckConservation: true, ActiveRouters: -1,
	})
}

func TestRecorderSeries(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Write(Record{Type: "sample", Cycle: 1000, Injected: 10}, 100)
	r.Write(Record{Type: "sample", Cycle: 3000, Injected: 25}, 300)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var second Record
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second.CyclesPerSec <= 0 {
		t.Errorf("second record has no cycle rate: %+v", second)
	}
	// 200 allocs over 2000 cycles.
	if second.AllocsPerCycle != 0.1 {
		t.Errorf("allocs/cycle = %v, want 0.1", second.AllocsPerCycle)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	reg.Counter("served_total", "c").Add(5)
	addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	for _, want := range []string{"served_total 5", "go_goroutines", "process_uptime_seconds"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/telemetry.json")), &snap); err != nil {
		t.Fatalf("/telemetry.json is not valid JSON: %v", err)
	}
	if snap.Counters["served_total"] != 5 {
		t.Errorf("snapshot counter = %d, want 5", snap.Counters["served_total"])
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Error("/debug/pprof/ index missing profile link")
	}
}
