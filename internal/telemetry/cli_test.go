package telemetry

import (
	"flag"
	"testing"
)

func TestCLIClampNormalisesOutOfRangeFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterFlags(fs)
	if err := fs.Parse([]string{"-phase-sample=0", "-flight-every=-100"}); err != nil {
		t.Fatal(err)
	}
	c.Clamp()
	if c.SampleEvery != DefaultSampleEvery {
		t.Errorf("SampleEvery = %d, want default %d", c.SampleEvery, DefaultSampleEvery)
	}
	if c.FlushEvery != DefaultFlushEvery {
		t.Errorf("FlushEvery = %d, want default %d", c.FlushEvery, DefaultFlushEvery)
	}
}

func TestCLIClampKeepsValidFlags(t *testing.T) {
	c := &CLI{SampleEvery: 4, FlushEvery: 250}
	c.Clamp()
	if c.SampleEvery != 4 || c.FlushEvery != 250 {
		t.Errorf("Clamp rewrote valid values: %+v", c)
	}
}

func TestStartRunClamps(t *testing.T) {
	// StartRun with a flight path set (Enabled) must clamp before
	// building the bundle; the returned run samples at the default rate.
	c := &CLI{Flight: t.TempDir() + "/flight.jsonl", SampleEvery: -1, FlushEvery: 0}
	run, err := c.StartRun()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if c.SampleEvery != DefaultSampleEvery || c.FlushEvery != DefaultFlushEvery {
		t.Errorf("StartRun did not clamp: %+v", c)
	}
}
