package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// Handler serves the registry: Prometheus text at /metrics, the JSON
// snapshot at /telemetry.json, and the standard net/http/pprof handlers
// under /debug/pprof/ (so a CPU profile of a live run is one curl away,
// replacing per-command profiling flags).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "phastlane telemetry\n\n/metrics\n/telemetry.json\n/debug/pprof/\n")
	})
	return mux
}

// Serve binds addr (":0" picks a free port) and serves the registry on a
// background goroutine, returning the bound address. The server lives
// for the remainder of the process — simulation commands exit when the
// run ends, which is the shutdown.
func Serve(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "telemetry: serve: %v\n", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Start is the shared -telemetry-addr wiring used by every command:
// with an empty addr it does nothing (telemetry stays off); otherwise it
// registers the process metrics on reg (creating a registry when nil),
// serves it, and logs the bound address to stderr. It returns the
// registry so callers can hang more metrics on it.
func Start(addr string, reg *Registry) (*Registry, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	if addr == "" {
		return reg, nil
	}
	RegisterProcessMetrics(reg)
	bound, err := Serve(addr, reg)
	if err != nil {
		return reg, err
	}
	fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/ (metrics, telemetry.json, debug/pprof)\n", bound)
	return reg, nil
}

// RegisterProcessMetrics adds process-level gauges computed at scrape
// time: goroutines, heap, cumulative allocations, GC cycles, RSS and
// uptime. Idempotent per registry.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	mem := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return f(&m)
		}
	}
	reg.GaugeFunc("go_goroutines", "current goroutine count",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "live heap bytes",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	reg.CounterFunc("go_total_alloc_bytes", "cumulative heap bytes allocated",
		mem(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) }))
	reg.CounterFunc("go_mallocs_total", "cumulative heap allocations",
		mem(func(m *runtime.MemStats) float64 { return float64(m.Mallocs) }))
	reg.CounterFunc("go_gc_cycles_total", "completed GC cycles",
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	reg.GaugeFunc("process_rss_bytes", "resident set size",
		func() float64 { return float64(readRSS()) })
	reg.GaugeFunc("process_uptime_seconds", "seconds since telemetry start",
		func() float64 { return time.Since(start).Seconds() })
}
