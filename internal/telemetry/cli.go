package telemetry

import (
	"flag"
	"fmt"
	"io"
)

// CLI is the shared command-line surface of the telemetry layer. Long-
// running commands register it with RegisterFlags; single-run commands
// then build the full bundle with StartRun, while sweep-style commands
// call Start directly with just the address (endpoint and process
// metrics, no per-run counters).
type CLI struct {
	// Addr is -telemetry-addr: serve /metrics, /telemetry.json and
	// /debug/pprof/ on this address ("" = off, ":0" = any free port).
	Addr string
	// Flight is -flight-record: append the JSONL flight record here.
	Flight string
	// SampleEvery is -phase-sample: phase-timer sampling period.
	SampleEvery int
	// FlushEvery is -flight-every: cycles between flight-recorder
	// samples and watchdog audits.
	FlushEvery int64
	// Abort is -watchdog-abort: panic on the first tripped invariant.
	Abort bool
}

// RegisterFlags registers the telemetry flags on fs (flag.CommandLine
// for commands) and returns the destination.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.Addr, "telemetry-addr", "",
		"serve live telemetry (Prometheus /metrics, /telemetry.json, /debug/pprof/) on this address; empty = off")
	fs.StringVar(&c.Flight, "flight-record", "",
		"append a JSONL flight record of the run to this file; empty = off")
	fs.IntVar(&c.SampleEvery, "phase-sample", DefaultSampleEvery,
		"sample per-phase step timings every N cycles (1 = every cycle)")
	fs.Int64Var(&c.FlushEvery, "flight-every", DefaultFlushEvery,
		"cycles between flight-recorder samples and watchdog audits")
	fs.BoolVar(&c.Abort, "watchdog-abort", false,
		"abort the run on the first tripped invariant watchdog")
	return c
}

// Enabled reports whether any telemetry output was requested.
func (c *CLI) Enabled() bool { return c.Addr != "" || c.Flight != "" }

// Clamp normalises out-of-range flag values: a zero or negative
// -phase-sample would divide by zero in the phase timers (and a negative
// -flight-every would never flush), so both fall back to their defaults.
// StartRun calls it, so commands using the bundle get it for free.
func (c *CLI) Clamp() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = DefaultFlushEvery
	}
}

// StartRun builds the full telemetry bundle from the parsed flags and
// starts the HTTP endpoint when requested. It returns nil when no
// telemetry output was requested — the zero-cost default; callers pass
// the nil straight into RateConfig/ReplayConfig.Telemetry.
func (c *CLI) StartRun() (*Run, error) {
	if !c.Enabled() {
		return nil, nil
	}
	c.Clamp()
	opt := Options{
		SampleEvery: c.SampleEvery,
		FlushEvery:  c.FlushEvery,
		Watchdog:    &Watchdog{Abort: c.Abort},
	}
	if c.Flight != "" {
		rec, err := OpenRecorder(c.Flight)
		if err != nil {
			return nil, err
		}
		opt.Recorder = rec
	}
	run := NewRun(opt)
	if _, err := Start(c.Addr, run.Reg); err != nil {
		return nil, err
	}
	return run, nil
}

// Finish closes the run's flight recorder, prints the phase-attribution
// table to w when any cycles were sampled, and reports tripped
// watchdogs. Nil-safe, mirroring StartRun's nil return.
func (c *CLI) Finish(run *Run, w io.Writer) error {
	if run == nil {
		return nil
	}
	if s := run.Phases.Snapshot(); s.SampledCycles > 0 {
		fmt.Fprintf(w, "\nstep time attribution (sampled every %d cycles, %.0f%% attributed):\n%s",
			c.SampleEvery, s.AttributedFraction()*100, run.Phases.Table())
	}
	if trips := run.Watchdog.Trips(); len(trips) > 0 {
		fmt.Fprintf(w, "\nWATCHDOG: %d invariant trip(s):\n", len(trips))
		for _, tr := range trips {
			fmt.Fprintf(w, "  %s\n", tr)
		}
	}
	return run.Close()
}
