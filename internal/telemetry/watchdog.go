package telemetry

import (
	"fmt"
	"sync"
)

// Trip records one tripped invariant.
type Trip struct {
	Cycle  int64
	Name   string
	Detail string
}

func (t Trip) String() string {
	return fmt.Sprintf("c%d %s: %s", t.Cycle, t.Name, t.Detail)
}

// Watchdog audits the simulation's conservation laws at flight-recorder
// flush boundaries (never per cycle). A tripped check is recorded,
// stamped into the flight record by the Run driving it, passed to
// OnTrip, and — with Abort set — panics, turning silent corruption of a
// multi-billion-cycle run into an immediate, diagnosable stop.
//
// Checks: message conservation (delivered + lost + in-flight ==
// injected), the network's own structural invariants (busy ⇒
// active-set-listed, live-parcel accounting; see InvariantChecker), and
// an allocation budget (allocs/cycle between flushes; 0 disables — an
// HTTP scrape allocates on another goroutine, so the budget must
// tolerate serving traffic).
type Watchdog struct {
	// Abort panics on the first trip when set.
	Abort bool
	// OnTrip, when non-nil, is called synchronously for every trip.
	OnTrip func(Trip)
	// AllocBudget is the tolerated allocations per cycle between
	// flushes; 0 disables the check.
	AllocBudget float64

	mu    sync.Mutex
	trips []Trip
}

// trip records a failed check and applies the configured consequences.
func (w *Watchdog) trip(cycle int64, name, detail string) Trip {
	t := Trip{Cycle: cycle, Name: name, Detail: detail}
	w.mu.Lock()
	w.trips = append(w.trips, t)
	w.mu.Unlock()
	if w.OnTrip != nil {
		w.OnTrip(t)
	}
	if w.Abort {
		panic("telemetry: watchdog abort: " + t.String())
	}
	return t
}

// Trips returns every trip recorded so far.
func (w *Watchdog) Trips() []Trip {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Trip, len(w.trips))
	copy(out, w.trips)
	return out
}
