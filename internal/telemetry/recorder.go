package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Record is one JSONL line of a flight record. Type is "sample" for the
// periodic snapshots, "watchdog" for a tripped invariant (Trip carries
// the detail), and "final" for the closing record written by Close.
type Record struct {
	Type         string  `json:"type"`
	WallMs       int64   `json:"wall_ms"`
	Cycle        int64   `json:"cycle"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Injected     int64   `json:"injected"`
	Delivered    int64   `json:"delivered"`
	Lost         int64   `json:"lost"`
	InFlight     int64   `json:"in_flight"`
	Drops        int64   `json:"drops"`
	Retries      int64   `json:"retries"`
	// ActiveRouters is -1 when the network has no active set.
	ActiveRouters  int     `json:"active_routers"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	HeapBytes      uint64  `json:"heap_bytes"`
	RSSBytes       uint64  `json:"rss_bytes"`
	Trip           string  `json:"trip,omitempty"`
}

// Recorder writes a flight record: one JSON object per line, flushed on
// every write so a crash or kill loses at most the current line. Not
// goroutine-safe: one recorder per run, driven from the harness.
type Recorder struct {
	w     *bufio.Writer
	c     io.Closer
	enc   *json.Encoder
	start time.Time

	lastWall    time.Time
	lastCycle   int64
	lastMallocs uint64
	haveLast    bool
}

// NewRecorder writes the flight record to w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	now := time.Now()
	return &Recorder{w: bw, enc: json.NewEncoder(bw), start: now, lastWall: now}
}

// OpenRecorder appends the flight record to the file at path, creating
// it as needed.
func OpenRecorder(path string) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	r := NewRecorder(f)
	r.c = f
	return r, nil
}

// Write stamps rec with wall time and the cycle/alloc rates since the
// previous record and appends it. mallocs is the cumulative allocation
// count (runtime.MemStats.Mallocs); pass 0 to skip the alloc rate.
func (r *Recorder) Write(rec Record, mallocs uint64) {
	now := time.Now()
	rec.WallMs = now.Sub(r.start).Milliseconds()
	if r.haveLast {
		dt := now.Sub(r.lastWall).Seconds()
		dc := rec.Cycle - r.lastCycle
		if dt > 0 && dc > 0 {
			rec.CyclesPerSec = float64(dc) / dt
			if mallocs > 0 && mallocs >= r.lastMallocs {
				rec.AllocsPerCycle = float64(mallocs-r.lastMallocs) / float64(dc)
			}
		}
	}
	r.lastWall, r.lastCycle, r.haveLast = now, rec.Cycle, true
	if mallocs > 0 {
		r.lastMallocs = mallocs
	}
	r.enc.Encode(rec) // Encode adds the newline; errors surface at Close
	r.w.Flush()
}

// Close flushes and closes the underlying file, if any.
func (r *Recorder) Close() error {
	if err := r.w.Flush(); err != nil {
		return err
	}
	if r.c != nil {
		return r.c.Close()
	}
	return nil
}

// pageSize for /proc/self/statm; Linux uses 4KiB pages on every platform
// this project targets.
const pageSize = 4096

// readRSS returns the process resident set size in bytes, or 0 when the
// platform does not expose /proc/self/statm.
func readRSS() uint64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * pageSize
}
