package telemetry

import (
	"fmt"
	"runtime"
)

// Options configures a Run bundle.
type Options struct {
	// Registry to register the run's metrics on; nil creates one.
	Registry *Registry
	// SampleEvery is the phase-timer sampling period (0 =
	// DefaultSampleEvery, 1 = every cycle).
	SampleEvery int
	// FlushEvery is the cycle period of flight-recorder samples and
	// watchdog checks (0 = DefaultFlushEvery).
	FlushEvery int64
	// Recorder receives the JSONL flight record; nil disables it.
	Recorder *Recorder
	// Watchdog configures invariant checking; nil installs a default
	// watchdog (record trips, never abort).
	Watchdog *Watchdog
}

// DefaultFlushEvery is the flush period when none is given.
const DefaultFlushEvery = 10_000

// Run bundles the live telemetry of one harness run: the registry the
// HTTP endpoint scrapes, the kernel phase profile, the flight recorder,
// and the watchdog. The sim harness drives it: Tick once per cycle
// (atomic updates only — the warmed-up loop stays allocation-free) and
// Flush every FlushEvery cycles.
type Run struct {
	Reg      *Registry
	Phases   *Phases
	Recorder *Recorder
	Watchdog *Watchdog
	// FlushEvery is the harness's flush period in cycles.
	FlushEvery int64

	// Harness-fed metrics. Cycles/Injected/Delivered/Lost count the
	// whole run (warmup included); Drops/Retries mirror the network's
	// cumulative counters; InFlight/ActiveRouters are instantaneous.
	Cycles        *Counter
	Injected      *Counter
	Delivered     *Counter
	Lost          *Counter
	Drops         *Counter
	Retries       *Counter
	InFlight      *Gauge
	ActiveRouters *Gauge
	// Latency samples completed measured messages (cycles).
	Latency *Histogram

	lastDrops, lastRetries int64
}

// NewRun builds a telemetry bundle, registering the simulation metric
// vocabulary and the phase profile on the registry.
func NewRun(opt Options) *Run {
	reg := opt.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	if opt.FlushEvery <= 0 {
		opt.FlushEvery = DefaultFlushEvery
	}
	wd := opt.Watchdog
	if wd == nil {
		wd = &Watchdog{}
	}
	t := &Run{
		Reg:        reg,
		Phases:     NewPhases(opt.SampleEvery),
		Recorder:   opt.Recorder,
		Watchdog:   wd,
		FlushEvery: opt.FlushEvery,

		Cycles:        reg.Counter("phastlane_cycles_total", "simulated cycles stepped"),
		Injected:      reg.Counter("phastlane_injected_total", "messages accepted by NICs"),
		Delivered:     reg.Counter("phastlane_delivered_total", "per-destination deliveries"),
		Lost:          reg.Counter("phastlane_lost_total", "measured messages abandoned by the delivery layer"),
		Drops:         reg.Counter("phastlane_drops_total", "optical packet drops"),
		Retries:       reg.Counter("phastlane_retries_total", "drop-retry requeues (retry pressure)"),
		InFlight:      reg.Gauge("phastlane_in_flight", "measured messages outstanding"),
		ActiveRouters: reg.Gauge("phastlane_active_routers", "routers in the event-driven active set (-1: no active set)"),
		Latency:       reg.Histogram("phastlane_latency_cycles", "completed measured-message latency in cycles", 0),
	}
	t.Phases.Register(reg)
	return t
}

// Tick records one harness cycle: accepted injections, per-destination
// deliveries, the network's cumulative drop/retry counters (differenced
// here), and the instantaneous in-flight count. Atomic updates only.
func (t *Run) Tick(injected, delivered int, drops, retries int64, inFlight int) {
	t.Cycles.Inc()
	if injected > 0 {
		t.Injected.Add(int64(injected))
	}
	if delivered > 0 {
		t.Delivered.Add(int64(delivered))
	}
	if d := drops - t.lastDrops; d > 0 {
		t.Drops.Add(d)
		t.lastDrops = drops
	}
	if d := retries - t.lastRetries; d > 0 {
		t.Retries.Add(d)
		t.lastRetries = retries
	}
	t.InFlight.Set(float64(inFlight))
}

// FlushStats carries the harness-side accounting a flush audits and
// records. The message-level counts cover measured messages only (the
// set whose conservation the harness actually guarantees).
type FlushStats struct {
	Cycle    int64
	Injected int64
	// Delivered counts fully completed, non-lost messages.
	Delivered int64
	Lost      int64
	InFlight  int64
	// CheckConservation enables the delivered+lost+in-flight ==
	// injected audit (synthetic runs; trace replays skip it).
	CheckConservation bool
	// ActiveRouters is -1 when the network has no active set.
	ActiveRouters int
	// InvariantErr is the network's own CheckInvariants result.
	InvariantErr error
}

// Flush runs the watchdog checks and appends one flight-recorder sample.
// The harness calls it every FlushEvery cycles; it may read MemStats and
// write a JSONL line, so it must stay off the per-cycle path.
func (t *Run) Flush(s FlushStats) {
	t.ActiveRouters.Set(float64(s.ActiveRouters))

	var trip string
	fail := func(name, detail string) {
		tr := t.Watchdog.trip(s.Cycle, name, detail)
		if trip == "" {
			trip = tr.String()
		}
	}
	if s.CheckConservation && s.Delivered+s.Lost+s.InFlight != s.Injected {
		fail("conservation", fmt.Sprintf(
			"delivered %d + lost %d + in-flight %d != injected %d",
			s.Delivered, s.Lost, s.InFlight, s.Injected))
	}
	if s.InvariantErr != nil {
		fail("network-invariant", s.InvariantErr.Error())
	}

	needMem := t.Recorder != nil || t.Watchdog.AllocBudget > 0
	var mem runtime.MemStats
	if needMem {
		runtime.ReadMemStats(&mem)
	}
	if b := t.Watchdog.AllocBudget; b > 0 && t.Recorder != nil {
		// The recorder's malloc bookkeeping provides the window delta;
		// the budget check rides on the next record's rate, computed
		// below by Write. Pre-check with the recorder's last counters.
		if t.Recorder.haveLast && mem.Mallocs >= t.Recorder.lastMallocs {
			if dc := s.Cycle - t.Recorder.lastCycle; dc > 0 {
				rate := float64(mem.Mallocs-t.Recorder.lastMallocs) / float64(dc)
				if rate > b {
					fail("alloc-budget", fmt.Sprintf("%.3f allocs/cycle over budget %.3f", rate, b))
				}
			}
		}
	}
	if t.Recorder != nil {
		typ := "sample"
		if trip != "" {
			typ = "watchdog"
		}
		t.Recorder.Write(Record{
			Type:          typ,
			Cycle:         s.Cycle,
			Injected:      s.Injected,
			Delivered:     s.Delivered,
			Lost:          s.Lost,
			InFlight:      s.InFlight,
			Drops:         t.Drops.Load(),
			Retries:       t.Retries.Load(),
			ActiveRouters: s.ActiveRouters,
			HeapBytes:     mem.HeapAlloc,
			RSSBytes:      readRSS(),
			Trip:          trip,
		}, mem.Mallocs)
	}
}

// Close finalises the run: a closing flight record and recorder flush.
func (t *Run) Close() error {
	if t.Recorder == nil {
		return nil
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	t.Recorder.Write(Record{
		Type:          "final",
		Cycle:         t.Cycles.Load(),
		Injected:      t.Injected.Load(),
		Delivered:     t.Delivered.Load(),
		Lost:          t.Lost.Load(),
		InFlight:      int64(t.InFlight.Load()),
		Drops:         t.Drops.Load(),
		Retries:       t.Retries.Load(),
		ActiveRouters: int(t.ActiveRouters.Load()),
		HeapBytes:     mem.HeapAlloc,
		RSSBytes:      readRSS(),
	}, mem.Mallocs)
	return t.Recorder.Close()
}
