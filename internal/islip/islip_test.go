package islip

import (
	"math/rand"
	"testing"
)

// wantFrom builds a request predicate from a matrix.
func wantFrom(m [][]bool) func(int, int) bool {
	return func(in, out int) bool { return m[in][out] }
}

func TestSingleRequest(t *testing.T) {
	a := New(4, 4, 1, 1)
	m := [][]bool{
		{false, true, false, false},
		{false, false, false, false},
		{false, false, false, false},
		{false, false, false, false},
	}
	got := a.Match(wantFrom(m))
	if got[1] != 0 {
		t.Fatalf("match = %v, want output 1 -> input 0", got)
	}
	for _, o := range []int{0, 2, 3} {
		if got[o] != -1 {
			t.Errorf("output %d matched to %d, want -1", o, got[o])
		}
	}
}

func TestFullPermutationMatched(t *testing.T) {
	// All inputs request all outputs: with enough iterations a maximal
	// matching (here perfect) must be found.
	a := New(4, 4, 1, 4)
	all := func(in, out int) bool { return true }
	got := a.Match(all)
	seen := map[int]bool{}
	for o, in := range got {
		if in < 0 {
			t.Fatalf("output %d unmatched in all-request pattern: %v", o, got)
		}
		if seen[in] {
			t.Fatalf("input %d matched twice: %v", in, got)
		}
		seen[in] = true
	}
}

func TestQuotaRespectedAndUsed(t *testing.T) {
	// One input requesting all 4 outputs with quota 4 gets all of them.
	a := New(2, 4, 4, 4)
	m := [][]bool{
		{true, true, true, true},
		{false, false, false, false},
	}
	got := a.Match(wantFrom(m))
	for o, in := range got {
		if in != 0 {
			t.Errorf("output %d -> %d, want 0", o, in)
		}
	}
	// Quota 2 limits it.
	a2 := New(2, 4, 2, 4)
	got2 := a2.Match(wantFrom(m))
	count := 0
	for _, in := range got2 {
		if in == 0 {
			count++
		}
	}
	if count != 2 {
		t.Errorf("input 0 matched %d times, want quota 2", count)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Two inputs permanently contending for one output should
	// alternate thanks to the pointer updates.
	a := New(2, 1, 1, 1)
	m := [][]bool{{true}, {true}}
	wins := map[int]int{}
	for i := 0; i < 100; i++ {
		got := a.Match(wantFrom(m))
		wins[got[0]]++
	}
	if wins[0] != 50 || wins[1] != 50 {
		t.Errorf("wins = %v, want perfect alternation 50/50", wins)
	}
}

func TestDesynchronisation(t *testing.T) {
	// The classic iSLIP property: under persistent uniform requests
	// the pointers desynchronise and throughput reaches 100% (every
	// output matched every cycle) after a warmup.
	a := New(4, 4, 1, 1)
	all := func(in, out int) bool { return true }
	for i := 0; i < 8; i++ {
		a.Match(all) // warmup
	}
	for i := 0; i < 20; i++ {
		got := a.Match(all)
		for o, in := range got {
			if in < 0 {
				t.Fatalf("cycle %d: output %d unmatched after desync: %v", i, o, got)
			}
		}
	}
}

// Property: matchings are always valid - no output double-matched (by
// construction) and no input exceeds quota; matched pairs were requested.
func TestMatchingValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(6, 5, 2, 3)
	for trial := 0; trial < 500; trial++ {
		m := make([][]bool, 6)
		for i := range m {
			m[i] = make([]bool, 5)
			for j := range m[i] {
				m[i][j] = rng.Intn(3) == 0
			}
		}
		got := a.Match(wantFrom(m))
		counts := map[int]int{}
		for o, in := range got {
			if in < 0 {
				continue
			}
			if !m[in][o] {
				t.Fatalf("matched unrequested pair in=%d out=%d", in, o)
			}
			counts[in]++
		}
		for in, c := range counts {
			if c > 2 {
				t.Fatalf("input %d matched %d times, quota 2", in, c)
			}
		}
	}
}

// Property: iSLIP finds a maximal matching given enough iterations - no
// (input, output) pair remains where both are unmatched/unsaturated and a
// request exists.
func TestMaximalWithIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New(5, 5, 1, 5)
	for trial := 0; trial < 300; trial++ {
		m := make([][]bool, 5)
		for i := range m {
			m[i] = make([]bool, 5)
			for j := range m[i] {
				m[i][j] = rng.Intn(2) == 0
			}
		}
		got := a.Match(wantFrom(m))
		matchedIn := map[int]bool{}
		for _, in := range got {
			if in >= 0 {
				matchedIn[in] = true
			}
		}
		for in := 0; in < 5; in++ {
			if matchedIn[in] {
				continue
			}
			for o := 0; o < 5; o++ {
				if got[o] == -1 && m[in][o] {
					t.Fatalf("non-maximal: input %d / output %d both free with request", in, o)
				}
			}
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,...) did not panic")
		}
	}()
	New(0, 4, 1, 1)
}
