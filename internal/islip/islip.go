// Package islip implements the iSLIP iterative round-robin scheduling
// algorithm for input-queued switches (McKeown, ToN 1999), used by the
// electrical baseline router for both virtual-channel and switch allocation
// (paper Table 2).
//
// Each iteration performs a grant phase (every unmatched output grants the
// requesting input nearest its round-robin pointer) and an accept phase
// (every input accepts the granting output nearest its pointer, up to its
// quota). Pointers advance past granted/accepted positions only for matches
// made in the first iteration, which is what gives iSLIP its desynchronised,
// starvation-free behaviour.
package islip

import "fmt"

// Allocator matches inputs to outputs. The zero value is unusable;
// construct with New. Allocators are stateful: the round-robin pointers
// persist across Match calls, as in hardware.
type Allocator struct {
	inputs, outputs int
	quota           int // max outputs matched to one input per cycle
	iterations      int
	grantPtr        []int // per output, next input to favour
	acceptPtr       []int // per input, next output to favour
	// scratch, reused across calls
	accepted []int   // per input, matches this call
	matchIn  []int   // per output, matched input or -1
	grants   [][]int // per input, outputs granting it this iteration
}

// New returns an allocator for the given port counts. quota is the input
// speedup: how many distinct outputs a single input may be matched to in
// one cycle (1 for classic iSLIP, 4 for the baseline router's input
// speedup). iterations is the number of grant/accept rounds per cycle.
func New(inputs, outputs, quota, iterations int) *Allocator {
	if inputs < 1 || outputs < 1 || quota < 1 || iterations < 1 {
		panic(fmt.Sprintf("islip: invalid geometry in=%d out=%d quota=%d iter=%d",
			inputs, outputs, quota, iterations))
	}
	a := &Allocator{
		inputs: inputs, outputs: outputs,
		quota: quota, iterations: iterations,
		grantPtr:  make([]int, outputs),
		acceptPtr: make([]int, inputs),
		accepted:  make([]int, inputs),
		matchIn:   make([]int, outputs),
		grants:    make([][]int, inputs),
	}
	for i := range a.grants {
		a.grants[i] = make([]int, 0, outputs)
	}
	return a
}

// Match computes a matching for the current request pattern: want(in, out)
// reports whether input in requests output out. The result maps each output
// to its matched input, or -1. No output is matched twice; no input is
// matched more than its quota.
//
// The returned slice is the allocator's scratch buffer: it is valid until
// the next Match call and must not be retained or mutated. Match performs
// no allocation, which keeps the electrical router's steady-state cycle
// loop allocation-free.
func (a *Allocator) Match(want func(in, out int) bool) []int {
	for i := range a.accepted {
		a.accepted[i] = 0
	}
	for o := range a.matchIn {
		a.matchIn[o] = -1
	}
	for iter := 0; iter < a.iterations; iter++ {
		// Grant phase: each unmatched output picks the first
		// requesting, non-saturated input at or after its pointer.
		// Each output grants at most one input, so the per-input
		// grant lists are disjoint and the accept phase below is
		// order-independent across inputs.
		for i := range a.grants {
			a.grants[i] = a.grants[i][:0]
		}
		granted := false
		for o := 0; o < a.outputs; o++ {
			if a.matchIn[o] >= 0 {
				continue
			}
			for k := 0; k < a.inputs; k++ {
				in := (a.grantPtr[o] + k) % a.inputs
				if a.accepted[in] >= a.quota || !want(in, o) {
					continue
				}
				a.grants[in] = append(a.grants[in], o)
				granted = true
				break
			}
		}
		if !granted {
			break
		}
		// Accept phase: each input takes the granting outputs
		// nearest its pointer, up to its remaining quota.
		for in := 0; in < a.inputs; in++ {
			outs := a.grants[in]
			if len(outs) == 0 {
				continue
			}
			take := a.quota - a.accepted[in]
			if take > len(outs) {
				take = len(outs)
			}
			for t := 0; t < take; t++ {
				best, bestDist := -1, a.outputs+1
				for _, o := range outs {
					if a.matchIn[o] >= 0 {
						continue
					}
					d := (o - a.acceptPtr[in] + a.outputs) % a.outputs
					if d < bestDist {
						best, bestDist = o, d
					}
				}
				if best < 0 {
					break
				}
				a.matchIn[best] = in
				a.accepted[in]++
				if iter == 0 {
					a.grantPtr[best] = (in + 1) % a.inputs
					a.acceptPtr[in] = (best + 1) % a.outputs
				}
			}
		}
	}
	return a.matchIn
}
