package cliflags

import (
	"flag"

	"phastlane/internal/cc"
)

// CC is the shared congestion-control flag block: -cc arms the
// per-sender AIMD governor on the injection path, and the -cc-* knobs
// override the cc.DefaultConfig tuning. Zero-valued knobs keep the
// defaults, so "-cc" alone runs the studied configuration.
type CC struct {
	Enabled bool
	Rate    float64
	Min     float64
	Max     float64
	Beta    float64
	Gain    float64
	Every   int
	Depth   float64
}

// RegisterCC registers the congestion-control block on fs and returns
// the destination.
func RegisterCC(fs *flag.FlagSet) *CC {
	c := &CC{}
	fs.BoolVar(&c.Enabled, "cc", false,
		"govern injection with per-sender delay-gradient AIMD congestion control")
	fs.Float64Var(&c.Rate, "cc-rate", 0,
		"cc: initial admitted rate in packets/node/cycle (0 = default)")
	fs.Float64Var(&c.Min, "cc-min", 0,
		"cc: floor on the admitted rate (0 = default)")
	fs.Float64Var(&c.Max, "cc-max", 0,
		"cc: cap on the admitted rate (0 = default)")
	fs.Float64Var(&c.Beta, "cc-beta", 0,
		"cc: multiplicative decrease factor (0 = default)")
	fs.Float64Var(&c.Gain, "cc-gain", 0,
		"cc: additive increase per update window (0 = default)")
	fs.IntVar(&c.Every, "cc-every", 0,
		"cc: controller update period in cycles (0 = default)")
	fs.Float64Var(&c.Depth, "cc-depth", 0,
		"cc: token-bucket burst depth in packets (0 = default)")
	return c
}

// Config materialises the block over cc.DefaultConfig with the given
// governor seed.
func (c *CC) Config(seed int64) cc.Config {
	cfg := cc.DefaultConfig()
	cfg.Seed = seed
	if c.Rate > 0 {
		cfg.InitRate = c.Rate
	}
	if c.Min > 0 {
		cfg.MinRate = c.Min
	}
	if c.Max > 0 {
		cfg.MaxRate = c.Max
	}
	if c.Beta > 0 {
		cfg.Beta = c.Beta
	}
	if c.Gain > 0 {
		cfg.Gain = c.Gain
	}
	if c.Every > 0 {
		cfg.UpdateEvery = c.Every
	}
	if c.Depth > 0 {
		cfg.BucketDepth = c.Depth
	}
	return cfg
}

// Governor builds the governor for a nodes-sender run, or nil when the
// block is disabled (the zero-cost path). It returns the validation
// error instead of panicking so cmds can fail uniformly.
func (c *CC) Governor(nodes int, seed int64) (*cc.Governor, error) {
	if !c.Enabled {
		return nil, nil
	}
	cfg := c.Config(seed)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cc.New(cfg, nodes), nil
}
