package cliflags

import (
	"flag"
	"testing"
)

func TestRegisterGeometryDefaultsAndBuild(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	g := RegisterGeometry(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !g.IsMesh() || g.Width != 8 || g.Height != 8 {
		t.Fatalf("defaults: %+v", g)
	}
	tp, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name() != "mesh" || tp.Endpoints() != g.Endpoints() {
		t.Fatalf("built %s with %d endpoints, want mesh with %d",
			tp.Name(), tp.Endpoints(), g.Endpoints())
	}
}

func TestGeometryFabrics(t *testing.T) {
	for _, tc := range []struct {
		args      []string
		name      string
		endpoints int
	}{
		{[]string{"-topo", "benes", "-width", "8", "-height", "1"}, "benes", 8},
		{[]string{"-topo", "shufflecast", "-width", "4", "-height", "4", "-arity", "2"}, "shufflecast", 16},
	} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		g := RegisterGeometry(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		if g.IsMesh() {
			t.Fatalf("%v parsed as mesh", tc.args)
		}
		if err := g.RequireMesh("trace replay"); err == nil {
			t.Fatalf("%v: RequireMesh passed", tc.args)
		}
		tp, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		if tp.Name() != tc.name || tp.Endpoints() != tc.endpoints {
			t.Fatalf("%v built %s/%d, want %s/%d",
				tc.args, tp.Name(), tp.Endpoints(), tc.name, tc.endpoints)
		}
		net, err := g.FabricNetwork(2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if net.Nodes() != tc.endpoints {
			t.Fatalf("%v fabsim nodes %d, want %d", tc.args, net.Nodes(), tc.endpoints)
		}
	}
}

func TestGeometryRejectsUnknownFabric(t *testing.T) {
	g := &Geometry{Topo: "torus", Width: 8, Height: 8, Arity: 2}
	if _, err := g.Build(); err == nil {
		t.Fatal("unknown fabric built")
	}
}

func TestParseFaultArgSpecAndJSON(t *testing.T) {
	if _, err := ParseFaultArg("dead-link@3:E"); err != nil {
		t.Fatalf("spec: %v", err)
	}
	if _, err := ParseFaultArg(`{"faults":[]}`); err != nil {
		t.Fatalf("json: %v", err)
	}
	if _, err := ParseFaultArg("@/nonexistent/plan.json"); err == nil {
		t.Fatal("missing @file accepted")
	}
}
