// Package cliflags consolidates the command-line blocks the cmds used
// to copy-paste: the topology/geometry flags (-topo, -width, -height,
// -arity) behind one fabric builder, the shared -seed flag, the plain
// -telemetry-addr endpoint flag, the -faults argument parser, and the
// uniform error exit. Single-run cmds still register the full
// telemetry.CLI bundle (flight recorder, phase sampling) on top of
// these; sweep-style cmds take just the endpoint address.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"phastlane/internal/fabsim"
	"phastlane/internal/fault"
	"phastlane/internal/topo"
)

// Geometry is the shared fabric-selection flag block. The mesh reads
// -width x -height directly; the indirect fabrics (benes, shufflecast)
// take width*height as their endpoint count, so "-topo benes -width 8
// -height 1" is an 8-endpoint Benes and per-node matrices stay shaped
// width x height on every fabric.
type Geometry struct {
	Topo          string
	Width, Height int
	Arity         int
}

// RegisterGeometry registers the topology/geometry block on fs
// (flag.CommandLine for commands) and returns the destination.
func RegisterGeometry(fs *flag.FlagSet) *Geometry {
	g := &Geometry{}
	fs.StringVar(&g.Topo, "topo", "mesh",
		"fabric: "+strings.Join(topo.Names(), ", "))
	fs.IntVar(&g.Width, "width", 8,
		"mesh width; indirect fabrics use width*height endpoints")
	fs.IntVar(&g.Height, "height", 8, "mesh height")
	fs.IntVar(&g.Arity, "arity", 2,
		"shufflecast radix (ignored by other fabrics)")
	return g
}

// Build constructs the selected topology.
func (g *Geometry) Build() (topo.Topology, error) {
	return topo.New(g.Topo, g.Width, g.Height, g.Arity)
}

// Endpoints is the endpoint count the geometry implies on every fabric.
func (g *Geometry) Endpoints() int { return g.Width * g.Height }

// IsMesh reports whether the 2D-mesh-specific simulators (core,
// electrical) apply; the indirect fabrics run on fabsim instead.
func (g *Geometry) IsMesh() bool { return g.Topo == "" || g.Topo == "mesh" }

// RequireMesh errors when a mesh-only feature is combined with an
// indirect fabric, naming the feature in the message.
func (g *Geometry) RequireMesh(feature string) error {
	if g.IsMesh() {
		return nil
	}
	return fmt.Errorf("%s requires -topo mesh (got %q)", feature, g.Topo)
}

// FabricNetwork builds the generic store-and-forward simulator over the
// selected fabric — the execution substrate the cmds use for non-mesh
// topologies. routerDelay <= 0 keeps the fabsim default; lossTimeout > 0
// arms fabsim's delivery watchdog, honouring the shared -loss-timeout
// flag on fabric runs exactly as the mesh simulators do.
func (g *Geometry) FabricNetwork(routerDelay int, lossTimeout int64, seed int64) (*fabsim.Network, error) {
	t, err := g.Build()
	if err != nil {
		return nil, err
	}
	cfg := fabsim.DefaultConfig(t)
	if routerDelay > 0 {
		cfg.RouterDelay = routerDelay
	}
	cfg.LossTimeout = lossTimeout
	cfg.Seed = seed
	return fabsim.New(cfg), nil
}

// Seed registers the shared -seed flag.
func Seed(fs *flag.FlagSet) *int64 { return fs.Int64("seed", 1, "random seed") }

// TelemetryAddr registers the endpoint-only telemetry flag the
// sweep-style cmds use with telemetry.Start; single-run cmds register
// the full telemetry.CLI bundle instead.
func TelemetryAddr(fs *flag.FlagSet) *string {
	return fs.String("telemetry-addr", "",
		"serve live telemetry (Prometheus /metrics, /telemetry.json, /debug/pprof/) on this address; empty = off")
}

// ParseFaultArg turns a -faults argument into a plan: @path loads a
// file, a leading '{' parses as JSON, anything else as the compact
// spec string.
func ParseFaultArg(arg string) (*fault.Plan, error) {
	text := arg
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		text = string(data)
	}
	if strings.HasPrefix(strings.TrimSpace(text), "{") {
		return fault.ParseJSON([]byte(text))
	}
	return fault.ParseSpec(strings.TrimSpace(text))
}

// Fail prints "cmd: err" to stderr and exits 1 — the uniform cmd error
// path.
func Fail(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(1)
}
