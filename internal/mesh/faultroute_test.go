package mesh

import (
	"math/rand"
	"testing"
)

// allUsable is the healthy-mesh predicate.
func allUsable(NodeID, Dir) bool { return true }

// walkRoute follows dirs from src, failing on off-mesh steps or unusable
// links, and returns the final node.
func walkRoute(t *testing.T, m *Mesh, src NodeID, dirs []Dir, usable LinkUsable) NodeID {
	t.Helper()
	at := src
	for i, d := range dirs {
		if !usable(at, d) {
			t.Fatalf("route step %d crosses unusable link %d->%s", i, at, d)
		}
		next, ok := m.Neighbor(at, d)
		if !ok {
			t.Fatalf("route step %d walks off mesh at %d going %s", i, at, d)
		}
		at = next
	}
	return at
}

// refShortest is an independent BFS distance under the usable predicate,
// or -1 when unreachable.
func refShortest(m *Mesh, src, dst NodeID, usable LinkUsable) int {
	dist := make([]int, m.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for d := Dir(0); d < NumLinkDirs; d++ {
			next, ok := m.Neighbor(cur, d)
			if !ok || !usable(cur, d) || dist[next] >= 0 {
				continue
			}
			dist[next] = dist[cur] + 1
			queue = append(queue, next)
		}
	}
	return dist[dst]
}

func TestFaultRouteHealthyMatchesDimensionOrder(t *testing.T) {
	m := New(8, 8)
	fr := NewFaultRouter(m)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		src := NodeID(rng.Intn(m.Nodes()))
		dst := NodeID(rng.Intn(m.Nodes()))
		got, ok := fr.AppendRoute(nil, src, dst, allUsable)
		if !ok {
			t.Fatalf("healthy mesh unreachable %d->%d", src, dst)
		}
		want := m.AppendRoute(nil, src, dst)
		if len(got) != len(want) {
			t.Fatalf("route %d->%d: %v, want %v", src, dst, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("route %d->%d: %v, want dimension-order %v", src, dst, got, want)
			}
		}
	}
}

func TestFaultRouteDetoursAreShortest(t *testing.T) {
	m := New(8, 8)
	fr := NewFaultRouter(m)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		// Kill a random set of directed links (both directions, so the
		// reference BFS and the router see the same topology).
		dead := make(map[[2]int]bool)
		for k := 0; k < 8; k++ {
			n := NodeID(rng.Intn(m.Nodes()))
			d := Dir(rng.Intn(int(NumLinkDirs)))
			nb, ok := m.Neighbor(n, d)
			if !ok {
				continue
			}
			dead[[2]int{int(n), int(d)}] = true
			dead[[2]int{int(nb), int(d.Opposite())}] = true
		}
		usable := func(from NodeID, d Dir) bool { return !dead[[2]int{int(from), int(d)}] }
		src := NodeID(rng.Intn(m.Nodes()))
		dst := NodeID(rng.Intn(m.Nodes()))
		if src == dst {
			continue
		}
		want := refShortest(m, src, dst, usable)
		got, ok := fr.AppendRoute(nil, src, dst, usable)
		if (want >= 0) != ok {
			t.Fatalf("trial %d: reachability mismatch %d->%d: ref %d, ok %v", trial, src, dst, want, ok)
		}
		if !ok {
			continue
		}
		if len(got) != want {
			t.Fatalf("trial %d: route %d->%d length %d, shortest is %d (%v)", trial, src, dst, len(got), want, got)
		}
		if end := walkRoute(t, m, src, got, usable); end != dst {
			t.Fatalf("trial %d: route ends at %d, want %d", trial, end, dst)
		}
	}
}

func TestFaultRouteUnreachable(t *testing.T) {
	m := New(8, 8)
	fr := NewFaultRouter(m)
	dst := NodeID(27)
	usable := func(from NodeID, d Dir) bool {
		next, ok := m.Neighbor(from, d)
		return ok && next != dst
	}
	buf := []Dir{East, East}
	got, ok := fr.AppendRoute(buf, 0, dst, usable)
	if ok {
		t.Fatal("isolated destination reported reachable")
	}
	if len(got) != len(buf) || got[0] != East || got[1] != East {
		t.Fatalf("buf modified on unreachable: %v", got)
	}
	// The router must recover cleanly on the next query.
	if _, ok := fr.AppendRoute(nil, 0, 5, allUsable); !ok {
		t.Fatal("router broken after unreachable query")
	}
}

func TestFaultRouteDeterministic(t *testing.T) {
	m := New(8, 8)
	usable := func(from NodeID, d Dir) bool {
		// Kill the whole middle column's east links to force detours.
		return !(m.Coord(from).X == 3 && d == East)
	}
	a := NewFaultRouter(m)
	b := NewFaultRouter(m)
	for src := NodeID(0); src < 16; src++ {
		dst := NodeID(m.Nodes() - 1 - int(src))
		ra, oka := a.AppendRoute(nil, src, dst, usable)
		// Repeat on the same router and on a fresh one.
		ra2, _ := a.AppendRoute(nil, src, dst, usable)
		rb, okb := b.AppendRoute(nil, src, dst, usable)
		if oka != okb {
			t.Fatalf("%d->%d: reachability differs", src, dst)
		}
		for i := range ra {
			if ra[i] != rb[i] || ra[i] != ra2[i] {
				t.Fatalf("%d->%d: detours differ: %v / %v / %v", src, dst, ra, ra2, rb)
			}
		}
	}
}

func TestFaultRouteSelfAndScratchReuse(t *testing.T) {
	m := New(8, 8)
	fr := NewFaultRouter(m)
	if got, ok := fr.AppendRoute(nil, 9, 9, allUsable); !ok || len(got) != 0 {
		t.Fatalf("src==dst: %v, %v", got, ok)
	}
	// Steady-state queries must not allocate once buf capacity suffices:
	// the routing scratch lives on the router.
	usable := func(from NodeID, d Dir) bool { return !(from == 1 && d == East) }
	buf := make([]Dir, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		var ok bool
		buf, ok = fr.AppendRoute(buf, 0, 7, usable)
		if !ok {
			t.Fatal("reachable destination reported unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendRoute allocates %v per query at steady state", allocs)
	}
}
