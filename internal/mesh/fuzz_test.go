package mesh_test

import (
	"testing"

	"phastlane/internal/mesh"
)

// FuzzRouteWalk checks the dimension-order router on arbitrary mesh
// geometries and node pairs: the route has exactly HopDistance links,
// walking it neighbor by neighbor never leaves the mesh, it ends at the
// destination, and it turns at most once (X then Y).
func FuzzRouteWalk(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint16(0), uint16(63))
	f.Add(uint8(8), uint8(8), uint16(63), uint16(0))
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0))
	f.Add(uint8(32), uint8(1), uint16(31), uint16(0))
	f.Add(uint8(3), uint8(7), uint16(20), uint16(20))
	f.Fuzz(func(t *testing.T, w, h uint8, srcRaw, dstRaw uint16) {
		width := int(w%32) + 1
		height := int(h%32) + 1
		m := mesh.New(width, height)
		nodes := m.Nodes()
		src := mesh.NodeID(int(srcRaw) % nodes)
		dst := mesh.NodeID(int(dstRaw) % nodes)

		route := m.Route(src, dst)
		if len(route) != m.HopDistance(src, dst) {
			t.Fatalf("route has %d links, HopDistance says %d", len(route), m.HopDistance(src, dst))
		}
		if src == dst && len(route) != 0 {
			t.Fatalf("self-route has %d links", len(route))
		}

		cur := src
		turns := 0
		for i, d := range route {
			next, ok := m.Neighbor(cur, d)
			if !ok {
				t.Fatalf("route leaves the %dx%d mesh at node %d going %s (link %d)", width, height, cur, d, i)
			}
			cur = next
			if i > 0 && route[i-1] != d {
				turns++
			}
		}
		if cur != dst {
			t.Fatalf("route from %d ends at %d, want %d", src, cur, dst)
		}
		if turns > 1 {
			t.Fatalf("dimension-order route turns %d times: %v", turns, route)
		}

		// RouteNodes must agree with the walk, endpoints included.
		rn := m.RouteNodes(src, dst)
		if len(rn) != len(route)+1 || rn[0] != src || rn[len(rn)-1] != dst {
			t.Fatalf("RouteNodes endpoints wrong: %v for route %v", rn, route)
		}
		// Every step of RouteNodes stays inside the mesh.
		for _, n := range rn {
			if !m.Contains(m.Coord(n)) {
				t.Fatalf("RouteNodes visits off-mesh node %d", n)
			}
		}
	})
}

// FuzzCoordRoundTrip checks ID/Coord are inverse bijections on any mesh.
func FuzzCoordRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint16(17))
	f.Add(uint8(1), uint8(32), uint16(31))
	f.Fuzz(func(t *testing.T, w, h uint8, idRaw uint16) {
		width := int(w%32) + 1
		height := int(h%32) + 1
		m := mesh.New(width, height)
		id := mesh.NodeID(int(idRaw) % m.Nodes())
		c := m.Coord(id)
		if !m.Contains(c) {
			t.Fatalf("Coord(%d) = %v outside %dx%d", id, c, width, height)
		}
		if back := m.ID(c); back != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, back)
		}
	})
}
