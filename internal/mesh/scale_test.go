package mesh

// Large-mesh route coverage: dimension-order routing must produce exact
// X-then-Y walks at 32×32 and 64×64, where routes run an order of
// magnitude past the 8×8 diameters the simulator grew up on.

import "testing"

// walkDimOrder follows RouteDir hop by hop from src and returns the node
// reached and the number of links crossed.
func walkDimOrder(t *testing.T, m *Mesh, src, dst NodeID) (NodeID, int) {
	t.Helper()
	cur := src
	hops := 0
	for cur != dst {
		d := m.RouteDir(cur, dst, 0)
		next, ok := m.Neighbor(cur, d)
		if !ok {
			t.Fatalf("route %d→%d walks off the edge at %d going %v", src, dst, cur, d)
		}
		cur = next
		hops++
		if hops > m.Nodes() {
			t.Fatalf("route %d→%d does not terminate", src, dst)
		}
	}
	return cur, hops
}

func TestLargeMeshRoutes(t *testing.T) {
	for _, size := range []int{32, 64} {
		m := New(size, size)
		n := NodeID(size*size - 1)
		for _, tc := range []struct{ src, dst NodeID }{
			{0, n},                         // full diagonal
			{n, 0},                         // and back
			{0, NodeID(size - 1)},          // one full row
			{0, NodeID(size * (size - 1))}, // one full column
			{NodeID(size + 1), NodeID(size*size - size - 2)}, // interior diagonal
		} {
			got, hops := walkDimOrder(t, m, tc.src, tc.dst)
			if got != tc.dst {
				t.Errorf("%d: route %d→%d ends at %d", size, tc.src, tc.dst, got)
			}
			if want := m.HopDistance(tc.src, tc.dst); hops != want {
				t.Errorf("%d: route %d→%d takes %d hops, want %d", size, tc.src, tc.dst, hops, want)
			}
		}
		// X-before-Y order: the first leg of the full diagonal moves only
		// along X. RouteDir indexes the precomputed dimension-order route.
		for i := 0; i < size-1; i++ {
			if d := m.RouteDir(0, n, i); d != East {
				t.Fatalf("%d: diagonal hop %d is %v, want East (X first)", size, i, d)
			}
		}
		if d := m.RouteDir(0, n, size-1); d != South && d != North {
			t.Errorf("%d: diagonal hop %d is %v, want a Y move", size, size-1, d)
		}
	}
}
