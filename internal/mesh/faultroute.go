package mesh

// LinkUsable reports whether the directed link out of from toward d can
// carry a packet right now. FaultRouter treats a false return as a dead
// link; callers typically close over a fault injector and the current
// cycle.
type LinkUsable func(from NodeID, d Dir) bool

// FaultRouter computes minimal routes around unusable links and routers.
// It first tries the plain dimension-order (X-then-Y) route — the one
// both simulators use on healthy meshes — and falls back to a
// breadth-first search for a shortest detour when that route crosses a
// dead link. The BFS visits neighbours in fixed N, E, S, W order from a
// FIFO frontier, so the detour chosen for a given fault set is
// deterministic.
//
// The router owns reusable scratch (visit stamps, predecessor table,
// frontier), so repeated queries do not allocate once the scratch has
// grown; it is not safe for concurrent use. A zero FaultRouter is not
// usable; construct with NewFaultRouter.
type FaultRouter struct {
	m *Mesh
	// seen[n] == epoch marks n visited in the current query; the epoch
	// bump replaces a per-query clear.
	seen  []int64
	epoch int64
	// via[n] is the direction taken to first reach n.
	via   []Dir
	queue []NodeID
}

// NewFaultRouter returns a router for m.
func NewFaultRouter(m *Mesh) *FaultRouter {
	return &FaultRouter{
		m:     m,
		seen:  make([]int64, m.Nodes()),
		via:   make([]Dir, m.Nodes()),
		queue: make([]NodeID, 0, m.Nodes()),
	}
}

// AppendRoute appends a minimal route from src to dst avoiding links
// where usable returns false, and reports whether dst is reachable at
// all. When the dimension-order route is clear it is returned unchanged
// (so fault-free queries cost one pass over the route); otherwise the
// shortest detour is found by BFS. On unreachable destinations buf is
// returned unmodified with ok == false. src == dst yields an empty route.
func (r *FaultRouter) AppendRoute(buf []Dir, src, dst NodeID, usable LinkUsable) ([]Dir, bool) {
	if src == dst {
		return buf, true
	}
	// Fast path: the dimension-order route, validated link by link.
	n := r.m.HopDistance(src, dst)
	at := src
	clear := true
	for i := 0; i < n; i++ {
		d := r.m.RouteDir(src, dst, i)
		if !usable(at, d) {
			clear = false
			break
		}
		next, ok := r.m.Neighbor(at, d)
		if !ok {
			panic("mesh: dimension-order route walks off the mesh")
		}
		at = next
	}
	if clear {
		return r.m.AppendRoute(buf, src, dst), true
	}

	// BFS for a shortest detour over usable links.
	r.epoch++
	r.seen[src] = r.epoch
	q := r.queue[:0]
	q = append(q, src)
	found := false
	for i := 0; i < len(q) && !found; i++ {
		cur := q[i]
		for d := Dir(0); d < NumLinkDirs; d++ {
			next, ok := r.m.Neighbor(cur, d)
			if !ok || r.seen[next] == r.epoch || !usable(cur, d) {
				continue
			}
			r.seen[next] = r.epoch
			r.via[next] = d
			if next == dst {
				found = true
				break
			}
			q = append(q, next)
		}
	}
	r.queue = q
	if !found {
		return buf, false
	}
	// Walk the predecessor chain back from dst, then reverse in place.
	start := len(buf)
	for at := dst; at != src; {
		d := r.via[at]
		buf = append(buf, d)
		prev, ok := r.m.Neighbor(at, d.Opposite())
		if !ok {
			panic("mesh: BFS predecessor walks off the mesh")
		}
		at = prev
	}
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf, true
}
