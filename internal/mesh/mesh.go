// Package mesh models the 2D mesh topology underlying both the Phastlane
// optical network and the electrical baseline: node coordinates, port
// directions, and minimal dimension-order (X-then-Y) routes.
//
// The paper evaluates an 8x8 mesh of 64 nodes, but every function here is
// parameterised by the mesh radix so smaller meshes can be used in tests and
// examples.
package mesh

import "fmt"

// NodeID identifies a node (router + attached core/cache/memory-controller
// tile) in row-major order: id = y*width + x.
type NodeID int

// Dir is a port direction on a router. Local is the port facing the attached
// node (NIC); the four cardinal directions face neighbouring routers.
type Dir int

// Port directions. The zero value is North so that fixed-priority
// arbitration order (N, E, S, W) matches iteration order.
const (
	North Dir = iota
	East
	South
	West
	Local
	NumDirs = 5 // including Local
	// NumLinkDirs counts only the four inter-router directions.
	NumLinkDirs = 4
)

// String returns the conventional single-letter name of the direction.
func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// Opposite returns the direction a packet arriving from d travels toward,
// i.e. the port on the neighbouring router that faces this one.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// Turn describes how a packet moves through a router relative to its input
// port. Phastlane's 5-bit control groups encode exactly these cases plus the
// multicast flag (see package packet).
type Turn int

// Turn kinds, in fixed arbitration priority order: straight-through paths
// have priority over turns (paper Section 2.1).
const (
	Straight Turn = iota
	LeftTurn
	RightTurn
	Eject // leave the network at this router (Local bit)
)

// String names the turn for diagnostics.
func (t Turn) String() string {
	switch t {
	case Straight:
		return "straight"
	case LeftTurn:
		return "left"
	case RightTurn:
		return "right"
	case Eject:
		return "eject"
	default:
		return fmt.Sprintf("Turn(%d)", int(t))
	}
}

// TurnFor classifies the movement from input direction in (the direction of
// travel, not the port name) to output direction out. Travelling North and
// exiting West is a left turn, exiting East a right turn.
func TurnFor(travel, out Dir) Turn {
	if travel == out {
		return Straight
	}
	if out == Local {
		return Eject
	}
	// Left of N is W, of W is S, of S is E, of E is N.
	left := map[Dir]Dir{North: West, West: South, South: East, East: North}
	if left[travel] == out {
		return LeftTurn
	}
	return RightTurn
}

// Coord is an (x, y) mesh coordinate. x grows East, y grows North.
type Coord struct {
	X, Y int
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Mesh is a width x height 2D mesh. The zero value is not usable; construct
// with New.
type Mesh struct {
	width, height int
}

// New returns a mesh with the given dimensions. It panics if either
// dimension is less than 1 (a configuration error, not a runtime condition).
func New(width, height int) *Mesh {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	return &Mesh{width: width, height: height}
}

// Width returns the number of columns.
func (m *Mesh) Width() int { return m.width }

// Height returns the number of rows.
func (m *Mesh) Height() int { return m.height }

// Nodes returns the total node count.
func (m *Mesh) Nodes() int { return m.width * m.height }

// Coord returns the coordinate of id.
func (m *Mesh) Coord(id NodeID) Coord {
	return Coord{X: int(id) % m.width, Y: int(id) / m.width}
}

// ID returns the node at coordinate c.
func (m *Mesh) ID(c Coord) NodeID { return NodeID(c.Y*m.width + c.X) }

// Contains reports whether c lies inside the mesh.
func (m *Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.width && c.Y >= 0 && c.Y < m.height
}

// Neighbor returns the node adjacent to id in direction d and true, or an
// undefined node and false at a mesh edge.
func (m *Mesh) Neighbor(id NodeID, d Dir) (NodeID, bool) {
	c := m.Coord(id)
	switch d {
	case North:
		c.Y++
	case South:
		c.Y--
	case East:
		c.X++
	case West:
		c.X--
	default:
		return 0, false
	}
	if !m.Contains(c) {
		return 0, false
	}
	return m.ID(c), true
}

// HopDistance returns the Manhattan distance between two nodes, which equals
// the number of links a minimal route traverses.
func (m *Mesh) HopDistance(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// Route returns the sequence of travel directions of the dimension-order
// (X-then-Y) minimal route from src to dst. The slice has HopDistance
// entries; it is empty when src == dst. Dimension-order routing performs at
// most one turn, which keeps Phastlane's per-router control to a single
// 5-bit group and guarantees deadlock freedom in the electrical baseline.
//
// Ownership: route compilation belongs to the topology layer — simulators
// and harnesses route through a topo.Topology (AppendRoute/PortAt), and
// topo.Mesh2D delegates to the primitives here. Direct calls outside
// internal/topo and geometry-level tests are deprecated.
func (m *Mesh) Route(src, dst NodeID) []Dir {
	return m.AppendRoute(nil, src, dst)
}

// AppendRoute appends the dimension-order route from src to dst to buf and
// returns the extended slice — the allocation-free form of Route for hot
// paths that reuse a scratch buffer across calls.
func (m *Mesh) AppendRoute(buf []Dir, src, dst NodeID) []Dir {
	cs, cd := m.Coord(src), m.Coord(dst)
	for x := cs.X; x < cd.X; x++ {
		buf = append(buf, East)
	}
	for x := cs.X; x > cd.X; x-- {
		buf = append(buf, West)
	}
	for y := cs.Y; y < cd.Y; y++ {
		buf = append(buf, North)
	}
	for y := cs.Y; y > cd.Y; y-- {
		buf = append(buf, South)
	}
	return buf
}

// RouteDir returns the i-th travel direction (0-based) of the
// dimension-order route from src to dst without materialising the route
// slice — the allocation-free form of Route(src, dst)[i] for hot paths
// that only need one step (next-hop lookup, control rebuilds). i must be
// in [0, HopDistance(src, dst)); out-of-range indices panic.
func (m *Mesh) RouteDir(src, dst NodeID, i int) Dir {
	cs, cd := m.Coord(src), m.Coord(dst)
	dx, dy := cd.X-cs.X, cd.Y-cs.Y
	if i >= 0 && i < abs(dx) {
		if dx > 0 {
			return East
		}
		return West
	}
	i -= abs(dx)
	if i >= 0 && i < abs(dy) {
		if dy > 0 {
			return North
		}
		return South
	}
	panic(fmt.Sprintf("mesh: RouteDir index out of range for route %d->%d", src, dst))
}

// RouteNodes returns the nodes visited by the dimension-order route from src
// to dst, inclusive of both endpoints.
func (m *Mesh) RouteNodes(src, dst NodeID) []NodeID {
	dirs := m.Route(src, dst)
	nodes := make([]NodeID, 0, len(dirs)+1)
	nodes = append(nodes, src)
	cur := src
	for _, d := range dirs {
		next, ok := m.Neighbor(cur, d)
		if !ok {
			panic(fmt.Sprintf("mesh: route from %d to %d walks off the mesh at %d going %s", src, dst, cur, d))
		}
		cur = next
		nodes = append(nodes, cur)
	}
	return nodes
}

// MaxRouteGroups returns the largest number of routers a dimension-order
// route can visit, destination included: (width-1)+(height-1)+1. For the 8x8
// mesh this is 15; the paper's 14 control groups cover the up-to-14 routers
// a packet can traverse after leaving the source router, plus the source
// router's own group consumed at injection.
func (m *Mesh) MaxRouteGroups() int { return m.width + m.height - 1 }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
