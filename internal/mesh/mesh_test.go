package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	m := New(8, 8)
	for id := NodeID(0); id < NodeID(m.Nodes()); id++ {
		c := m.Coord(id)
		if got := m.ID(c); got != id {
			t.Errorf("ID(Coord(%d)) = %d", id, got)
		}
		if !m.Contains(c) {
			t.Errorf("Contains(%v) = false for in-mesh node", c)
		}
	}
}

func TestCoordLayoutRowMajor(t *testing.T) {
	m := New(4, 3)
	cases := []struct {
		id NodeID
		c  Coord
	}{
		{0, Coord{0, 0}},
		{3, Coord{3, 0}},
		{4, Coord{0, 1}},
		{11, Coord{3, 2}},
	}
	for _, tc := range cases {
		if got := m.Coord(tc.id); got != tc.c {
			t.Errorf("Coord(%d) = %v, want %v", tc.id, got, tc.c)
		}
	}
}

func TestNeighbor(t *testing.T) {
	m := New(3, 3)
	center := m.ID(Coord{1, 1})
	wants := map[Dir]Coord{
		North: {1, 2},
		South: {1, 0},
		East:  {2, 1},
		West:  {0, 1},
	}
	for d, c := range wants {
		got, ok := m.Neighbor(center, d)
		if !ok || got != m.ID(c) {
			t.Errorf("Neighbor(center, %s) = %d,%v want %d", d, got, ok, m.ID(c))
		}
	}
	// Edges.
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), West); ok {
		t.Error("Neighbor off west edge should fail")
	}
	if _, ok := m.Neighbor(m.ID(Coord{2, 2}), North); ok {
		t.Error("Neighbor off north edge should fail")
	}
	if _, ok := m.Neighbor(center, Local); ok {
		t.Error("Neighbor(Local) should fail")
	}
}

func TestOpposite(t *testing.T) {
	pairs := [][2]Dir{{North, South}, {East, West}}
	for _, p := range pairs {
		if p[0].Opposite() != p[1] || p[1].Opposite() != p[0] {
			t.Errorf("Opposite mismatch for %s/%s", p[0], p[1])
		}
	}
	if Local.Opposite() != Local {
		t.Error("Local.Opposite() != Local")
	}
}

func TestTurnFor(t *testing.T) {
	cases := []struct {
		travel, out Dir
		want        Turn
	}{
		{North, North, Straight},
		{North, West, LeftTurn},
		{North, East, RightTurn},
		{East, North, LeftTurn},
		{East, South, RightTurn},
		{South, East, LeftTurn},
		{South, West, RightTurn},
		{West, South, LeftTurn},
		{West, North, RightTurn},
		{West, Local, Eject},
	}
	for _, tc := range cases {
		if got := TurnFor(tc.travel, tc.out); got != tc.want {
			t.Errorf("TurnFor(%s,%s) = %s, want %s", tc.travel, tc.out, got, tc.want)
		}
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	m := New(8, 8)
	src := m.ID(Coord{1, 1})
	dst := m.ID(Coord{4, 6})
	route := m.Route(src, dst)
	want := []Dir{East, East, East, North, North, North, North, North}
	if len(route) != len(want) {
		t.Fatalf("route length %d, want %d", len(route), len(want))
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route[%d] = %s, want %s (full %v)", i, route[i], want[i], route)
		}
	}
}

func TestRouteEmptyForSelf(t *testing.T) {
	m := New(8, 8)
	if r := m.Route(5, 5); len(r) != 0 {
		t.Errorf("Route(5,5) = %v, want empty", r)
	}
}

func TestRouteNodesEndpoints(t *testing.T) {
	m := New(8, 8)
	nodes := m.RouteNodes(0, 63)
	if nodes[0] != 0 || nodes[len(nodes)-1] != 63 {
		t.Fatalf("RouteNodes endpoints wrong: %v", nodes)
	}
	if len(nodes) != m.HopDistance(0, 63)+1 {
		t.Fatalf("RouteNodes length %d, want %d", len(nodes), m.HopDistance(0, 63)+1)
	}
}

func TestMaxRouteGroups8x8(t *testing.T) {
	if got := New(8, 8).MaxRouteGroups(); got != 15 {
		t.Errorf("MaxRouteGroups = %d, want 15 (14 control groups + source)", got)
	}
}

// Property: routes are minimal (length == Manhattan distance), X-then-Y
// ordered, and land on the destination.
func TestRouteProperties(t *testing.T) {
	m := New(8, 8)
	f := func(srcRaw, dstRaw uint8) bool {
		src := NodeID(int(srcRaw) % m.Nodes())
		dst := NodeID(int(dstRaw) % m.Nodes())
		route := m.Route(src, dst)
		if len(route) != m.HopDistance(src, dst) {
			return false
		}
		// X-then-Y: no horizontal move after a vertical one.
		seenVertical := false
		for _, d := range route {
			vertical := d == North || d == South
			if seenVertical && !vertical {
				return false
			}
			seenVertical = seenVertical || vertical
		}
		// Walk it.
		cur := src
		for _, d := range route {
			next, ok := m.Neighbor(cur, d)
			if !ok {
				return false
			}
			cur = next
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: dimension-order routes contain at most one turn, which is what
// lets Phastlane encode each router's action in a single predecoded group.
func TestRouteSingleTurn(t *testing.T) {
	m := New(8, 8)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		src := NodeID(rng.Intn(m.Nodes()))
		dst := NodeID(rng.Intn(m.Nodes()))
		route := m.Route(src, dst)
		turns := 0
		for j := 1; j < len(route); j++ {
			if route[j] != route[j-1] {
				turns++
			}
		}
		if turns > 1 {
			t.Fatalf("route %d->%d has %d turns: %v", src, dst, turns, route)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 5) did not panic")
		}
	}()
	New(0, 5)
}

func TestDirString(t *testing.T) {
	if North.String() != "N" || Local.String() != "L" {
		t.Error("Dir.String wrong")
	}
	if Dir(9).String() != "Dir(9)" {
		t.Error("unknown Dir.String wrong")
	}
}
