package figures

import (
	"math"
	"strings"
	"testing"

	"phastlane/internal/sim"
)

func TestDesignSpaceTablesRender(t *testing.T) {
	tables := map[string]func() interface{ String() string }{
		"Fig4":   func() interface{ String() string } { return Fig4() },
		"Fig5":   func() interface{ String() string } { return Fig5() },
		"Fig6":   func() interface{ String() string } { return Fig6() },
		"Fig7":   func() interface{ String() string } { return Fig7() },
		"Fig8":   func() interface{ String() string } { return Fig8() },
		"Table1": func() interface{ String() string } { return Table1() },
		"Table2": func() interface{ String() string } { return Table2() },
		"Table3": func() interface{ String() string } { return Table3() },
		"Table4": func() interface{ String() string } { return Table4() },
	}
	for name, f := range tables {
		out := f().String()
		if len(out) < 50 || !strings.Contains(out, "==") {
			t.Errorf("%s renders suspiciously short output:\n%s", name, out)
		}
	}
}

func TestFig6TableContent(t *testing.T) {
	out := Fig6().String()
	for _, want := range []string{"8", "5", "4", "optimistic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3ListsAllBenchmarks(t *testing.T) {
	out := Table3().String()
	for _, b := range []string{"Barnes", "Ocean", "FMM", "Water-Spatial"} {
		if !strings.Contains(out, b) {
			t.Errorf("Table 3 missing %s", b)
		}
	}
}

func TestConfigsNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range append(Fig9Configs(), Fig10Configs()...) {
		if c.Name == "" || c.Build == nil {
			t.Fatalf("config %+v incomplete", c)
		}
		seen[c.Name] = true
	}
	for _, want := range []string{"Optical4", "Optical5", "Optical8",
		"Optical4B32", "Optical4B64", "Optical4IB", "Electrical3", "Electrical2"} {
		if !seen[want] {
			t.Errorf("missing config %s", want)
		}
	}
}

func TestConfigBuildsFreshNetworks(t *testing.T) {
	a := Optical4.Build(1)
	b := Optical4.Build(1)
	if a == b {
		t.Fatal("Build returned a shared network")
	}
	if a.Nodes() != 64 {
		t.Errorf("nodes = %d", a.Nodes())
	}
	if Electrical3.Optical {
		t.Error("Electrical3 flagged optical")
	}
	if !Optical4IB.Optical {
		t.Error("Optical4IB not flagged optical")
	}
}

// A reduced-size end-to-end Fig. 9 slice: optical latency well below
// electrical at low load.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig9(Fig9Opts{Rates: []float64{0.02}, Warmup: 100, Measure: 500, Seed: 3})
	if len(res) != 4 {
		t.Fatalf("Fig9 returned %d patterns", len(res))
	}
	for _, r := range res {
		lat := map[string]float64{}
		for _, c := range r.Curves {
			if len(c.Points) == 0 {
				t.Fatalf("%s/%s: empty curve", r.Pattern, c.Config)
			}
			lat[c.Config] = c.Points[0].AvgLatency
		}
		if !(lat["Optical4"]*3 < lat["Electrical3"]) {
			t.Errorf("%s: Optical4 %.1f not well below Electrical3 %.1f",
				r.Pattern, lat["Optical4"], lat["Electrical3"])
		}
		if !(lat["Electrical2"] < lat["Electrical3"]) {
			t.Errorf("%s: 2-cycle router not faster than 3-cycle", r.Pattern)
		}
		tbl := Fig9Table(r).String()
		if !strings.Contains(tbl, "Optical4") {
			t.Error("Fig9Table missing config column")
		}
	}
}

// A reduced-size end-to-end Fig. 10/11 slice on one light and one bursty
// benchmark: the headline orderings must hold.
func TestSplashShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Splash(SplashOpts{
		Benchmarks: []string{"Water-Spatial", "FMM"},
		Messages:   4000,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]SplashRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	ws := byName["Water-Spatial"]
	if s := ws.Speedup("Optical4"); s < 1.5 {
		t.Errorf("Water-Spatial Optical4 speedup %.2f, want >= 1.5", s)
	}
	if s := ws.Speedup("Electrical2"); s < 1.0 || s > 2.0 {
		t.Errorf("Water-Spatial Electrical2 speedup %.2f out of plausible band", s)
	}
	// Power: optical 4/5-hop well below electrical; 8-hop above 4-hop.
	if !(ws.PowerW["Optical4"] < 0.5*ws.PowerW["Electrical3"]) {
		t.Errorf("Optical4 power %.1f not well below Electrical3 %.1f",
			ws.PowerW["Optical4"], ws.PowerW["Electrical3"])
	}
	if !(ws.PowerW["Optical8"] > 1.3*ws.PowerW["Optical4"]) {
		t.Errorf("Optical8 power %.1f not well above Optical4 %.1f",
			ws.PowerW["Optical8"], ws.PowerW["Optical4"])
	}
	// The bursty benchmark drops packets at 10 buffers and far fewer
	// with 64.
	fmm := byName["FMM"]
	if fmm.Drops["Optical4"] == 0 {
		t.Error("FMM produced no drops at 10 buffers")
	}
	if fmm.Drops["Optical4IB"] != 0 {
		t.Error("infinite buffers dropped packets")
	}
	if fmm.Drops["Optical4B64"]*2 > fmm.Drops["Optical4"] {
		t.Errorf("64 buffers should cut drops sharply: %d vs %d",
			fmm.Drops["Optical4B64"], fmm.Drops["Optical4"])
	}
	// FMM is far more drop- and buffer-stressed than Water.
	if fmm.Drops["Optical4"] < 10*ws.Drops["Optical4"]+1 {
		t.Errorf("FMM drops %d not far above Water-Spatial %d",
			fmm.Drops["Optical4"], ws.Drops["Optical4"])
	}
	// Tables render.
	if out := Fig10Table(rows).String(); !strings.Contains(out, "FMM") {
		t.Error("Fig10Table missing benchmark")
	}
	if out := Fig11Table(rows).String(); !strings.Contains(out, "Electrical3") {
		t.Error("Fig11Table missing baseline")
	}
	h := Summarise(rows, "Optical4")
	if math.IsNaN(h.GeoMeanSpeedup) || h.GeoMeanSpeedup <= 0 {
		t.Errorf("headline speedup %v", h.GeoMeanSpeedup)
	}
}

func TestSpeedupNaNWithoutBaseline(t *testing.T) {
	r := SplashRow{Latency: map[string]float64{"Optical4": 5}}
	if !math.IsNaN(r.Speedup("Optical4")) {
		t.Error("missing baseline should yield NaN")
	}
}

func TestTraceFor(t *testing.T) {
	tr, err := TraceFor("LU", 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Messages) < 2000 {
		t.Errorf("trace has %d messages", len(tr.Messages))
	}
	if _, err := TraceFor("Nope", 0, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestDefaultFig9Rates(t *testing.T) {
	rates := DefaultFig9Rates()
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatal("rates not increasing")
		}
	}
}

// The architecture comparison's qualitative ordering: Phastlane fastest at
// low load; the circuit-switched mesh worst on coherence traffic; the
// Corona bus collapses under broadcast storms.
func TestCompareShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := Compare(CompareOpts{
		Rates: []float64{0.02}, Measure: 600, Messages: 2500, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CompareResult{}
	for _, r := range results {
		byName[r.Config] = r
	}
	opt, ele := byName["Optical4"], byName["Electrical3"]
	bus, cir := byName["Corona-bus"], byName["Circuit-sw"]
	if !(opt.UniformLatency[0.02] < bus.UniformLatency[0.02]) {
		t.Errorf("Phastlane %.1f not below Corona %.1f at low load",
			opt.UniformLatency[0.02], bus.UniformLatency[0.02])
	}
	if !(opt.UniformLatency[0.02] < ele.UniformLatency[0.02]) {
		t.Error("Phastlane not below electrical at low load")
	}
	if !(cir.TraceLatency > 3*ele.TraceLatency) {
		t.Errorf("circuit switching %.0f should be far worse than electrical %.0f on coherence traffic",
			cir.TraceLatency, ele.TraceLatency)
	}
	if !(bus.TraceLatency > opt.TraceLatency) {
		t.Errorf("the single broadcast bus %.0f should trail Phastlane %.0f on coherence traffic",
			bus.TraceLatency, opt.TraceLatency)
	}
	if out := CompareTable(results, []float64{0.02}).String(); !strings.Contains(out, "Corona-bus") {
		t.Error("comparison table missing architecture")
	}
}

func TestFig9PlotRenders(t *testing.T) {
	r := Fig9Result{Pattern: "demo", Curves: []Fig9Curve{
		{Config: "Optical4", Points: []sim.SweepPoint{{Rate: 0.1, AvgLatency: 2}}},
		{Config: "Electrical3", Points: []sim.SweepPoint{{Rate: 0.1, AvgLatency: 20}}},
	}}
	out := Fig9Plot(r).String()
	if !strings.Contains(out, "Optical4") || !strings.Contains(out, "(log)") {
		t.Errorf("plot malformed:\n%s", out)
	}
}

func TestSensitivitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts, err := Sensitivity(SensitivityOpts{Messages: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	knobs := map[string]int{}
	for _, p := range pts {
		knobs[p.Knob]++
		if p.Latency <= 0 || p.PowerW <= 0 {
			t.Errorf("%s=%s: degenerate point %+v", p.Knob, p.Value, p)
		}
	}
	for _, k := range []string{"MaxHops", "BufferEntries", "BackoffMax", "NICEntries", "CrossingEff", "Arbiter"} {
		if knobs[k] < 3 {
			t.Errorf("knob %s has %d points", k, knobs[k])
		}
	}
	if out := SensitivityTable(pts, "x").String(); !strings.Contains(out, "CrossingEff") {
		t.Error("table missing knob")
	}
	// Physical orderings: higher crossing efficiency means less power;
	// more buffers mean fewer drops.
	byKV := map[string]SensitivityPoint{}
	for _, p := range pts {
		byKV[p.Knob+"="+p.Value] = p
	}
	if !(byKV["CrossingEff=99%"].PowerW < byKV["CrossingEff=97%"].PowerW) {
		t.Error("crossing efficiency should reduce power")
	}
	if !(byKV["BufferEntries=inf"].Drops == 0) {
		t.Error("infinite buffers dropped")
	}
	if !(byKV["BufferEntries=4"].Drops > byKV["BufferEntries=10"].Drops) {
		t.Error("fewer buffers should drop more")
	}
	if !(byKV["MaxHops=8"].PowerW > byKV["MaxHops=4"].PowerW) {
		t.Error("8-hop provisioning should cost more power")
	}
}
