package figures

import (
	"reflect"
	"testing"
)

// TestJainFairness checks the index at its anchor points: uniform
// shares score 1, a single hog scores 1/n, all-zero scores 0.
func TestJainFairness(t *testing.T) {
	if f := JainFairness([]int64{5, 5, 5, 5}); f != 1 {
		t.Fatalf("uniform shares scored %v, want 1", f)
	}
	if f := JainFairness([]int64{20, 0, 0, 0}); f != 0.25 {
		t.Fatalf("single hog scored %v, want 0.25", f)
	}
	if f := JainFairness([]int64{0, 0}); f != 0 {
		t.Fatalf("all-zero population scored %v, want 0", f)
	}
}

// governedSmallOpts is a cut-down sweep for determinism tests: one
// config, one pattern, two rates, short cycles.
func governedSmallOpts(workers int) GovernedOpts {
	return GovernedOpts{
		Configs: []string{"Optical4"}, Patterns: []string{"Uniform"},
		Rates:  []float64{0.30, 0.60},
		Warmup: 50, Measure: 300, Seed: 3, Workers: workers,
	}
}

// TestGovernedWorkerIndependence checks the study's reproducibility
// contract: one worker and eight workers produce DeepEqual point sets.
func TestGovernedWorkerIndependence(t *testing.T) {
	a := Governed(governedSmallOpts(1))
	b := Governed(governedSmallOpts(8))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker counts diverged:\nw=1: %+v\nw=8: %+v", a, b)
	}
}

// TestGovernedSweepShape checks the point grid and mode behaviours: all
// (pattern, mode, rate) combinations present in stable order, governed
// modes report an admitted rate, only governed modes pace.
func TestGovernedSweepShape(t *testing.T) {
	pts := Governed(governedSmallOpts(0))
	if len(pts) != 6 { // 1 config x 1 pattern x 3 modes x 2 rates
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for _, p := range pts {
		switch p.Mode {
		case ModeNone:
			if p.CCRate != 0 || p.Paced != 0 {
				t.Fatalf("ungoverned point reports cc_rate %v, paced %d", p.CCRate, p.Paced)
			}
		case ModeStatic, ModeAIMD:
			if p.CCRate <= 0 {
				t.Fatalf("%s point missing cc_rate", p.Mode)
			}
		}
		if p.Delivered == 0 {
			t.Fatalf("%s@%v delivered nothing", p.Mode, p.Rate)
		}
		if p.Fairness <= 0 || p.Fairness > 1 {
			t.Fatalf("%s@%v fairness %v outside (0, 1]", p.Mode, p.Rate, p.Fairness)
		}
	}
	// Static pacing at 2x its cap must actually decline injections.
	var staticPaced int64
	for _, p := range pts {
		if p.Mode == ModeStatic && p.Rate == 0.60 {
			staticPaced = p.Paced
		}
	}
	if staticPaced == 0 {
		t.Fatal("static cap 0.30 at offered 0.60 paced nothing")
	}
}

// TestGovernedRecovery checks the closed loop reacts to hardware
// faults: senders back off while the bisection links are dead and
// re-converge upward after the heal.
func TestGovernedRecovery(t *testing.T) {
	r := GovernedRecovery(RecoveryOpts{Measure: 3600, Seed: 2})
	if len(r.Samples) == 0 {
		t.Fatal("no rate history recorded")
	}
	if r.PreRate == 0 || r.FaultRate == 0 || r.PostRate == 0 {
		t.Fatalf("empty phase mean: pre %v fault %v post %v",
			r.PreRate, r.FaultRate, r.PostRate)
	}
	if r.FaultRate >= r.PreRate {
		t.Fatalf("no back-off: pre %v -> fault %v", r.PreRate, r.FaultRate)
	}
	if r.PostRate <= r.FaultRate {
		t.Fatalf("no re-convergence: fault %v -> post %v", r.FaultRate, r.PostRate)
	}
}
