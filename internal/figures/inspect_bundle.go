package figures

import (
	"fmt"
	"io"
	"os"
	"phastlane/internal/mesh"

	"phastlane/internal/exp"
	"phastlane/internal/obs"
	"phastlane/internal/provenance"
	"phastlane/internal/stats"
)

// BundleOpts selects the file outputs of InspectBundle; the cmd tools map
// their -trace-out/-metrics-out/-heatmap flags straight onto it.
type BundleOpts struct {
	// TracePath, when non-empty, receives a Perfetto trace-event JSON
	// file covering every inspected point (one trace process per point,
	// one thread per node). The file is re-read and validated after the
	// run so a truncated or malformed trace fails loudly.
	TracePath string
	// MetricsPath receives the merged per-node event matrices as CSV.
	MetricsPath string
	// SeriesPath receives the merged cycle-windowed time series as CSV.
	SeriesPath string
	// Heatmap prints link-utilization and drop heatmaps to the writer.
	Heatmap bool
	// WhyTop caps the table rows of the tail-blame reports printed for
	// points that carried a provenance tracker (0 = provenance default).
	WhyTop int
}

// InspectBundle runs an inspection grid and materialises the requested
// outputs: the summary table (always) and optional heatmaps on w, the CSV
// files, and a self-validated Perfetto trace.
func InspectBundle(opts []InspectOpts, engine exp.Options, b BundleOpts, w io.Writer) ([]InspectResult, error) {
	var tf *obs.TraceFile
	if b.TracePath != "" {
		f, err := os.Create(b.TracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tf = obs.NewTraceFile(f)
		for pid := range opts {
			if tp := opts[pid].Topo; tp != nil {
				tf.ProcessNodes(pid, opts[pid].Name, tp.Endpoints(), func(n int) string {
					return tp.NodeLabel(mesh.NodeID(n))
				})
			} else {
				tf.Process(pid, opts[pid].Name, opts[pid].Width, opts[pid].Height)
			}
			opts[pid].Trace = tf.Tracer(pid)
		}
	}
	results := InspectGrid(opts, engine)
	fmt.Fprintln(w, InspectSummaryTable(results))
	if b.Heatmap {
		fmt.Fprint(w, InspectHeatmaps(results))
	}
	top := b.WhyTop
	if top <= 0 {
		top = provenance.DefaultTop
	}
	for i := range results {
		r := &results[i]
		if r.Prov == nil {
			continue
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, r.Prov.Report(r.Name).Format(top))
		if tf != nil {
			// The slow-packet span trees load as an extra trace process
			// next to the per-node network tracks.
			r.Prov.ExportPerfetto(tf, len(opts)+i, r.Name)
		}
	}
	writeCSV := func(path string, t *stats.Table) error {
		if path == "" {
			return nil
		}
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
		return nil
	}
	if err := writeCSV(b.MetricsPath, InspectMetricsTable(results)); err != nil {
		return nil, err
	}
	if err := writeCSV(b.SeriesPath, InspectSeriesTable(results)); err != nil {
		return nil, err
	}
	if tf != nil {
		if err := tf.Close(); err != nil {
			return nil, err
		}
		f, err := os.Open(b.TracePath)
		if err != nil {
			return nil, err
		}
		n, err := obs.ValidateTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace %s failed validation: %w", b.TracePath, err)
		}
		fmt.Fprintf(w, "wrote %s (%d events, Perfetto trace-event format)\n", b.TracePath, n)
	}
	return results, nil
}

// Enabled reports whether any output was requested; the cmd tools use it
// to decide whether to run the inspection stage at all.
func (b BundleOpts) Enabled() bool {
	return b.TracePath != "" || b.MetricsPath != "" || b.SeriesPath != "" || b.Heatmap
}
