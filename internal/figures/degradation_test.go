package figures

import (
	"fmt"
	"testing"
)

// smallDegradation keeps the sweep cheap for tests: one trial, short
// phases. Determinism must hold at any size.
func smallDegradation(workers int) DegradationOpts {
	return DegradationOpts{
		Rate: 0.08, Warmup: 100, Measure: 400, Trials: 1, Seed: 5,
		Workers: workers,
	}
}

func TestDegradationDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := Degradation(smallDegradation(1))
	parallel := Degradation(smallDegradation(8))
	if got, want := fmt.Sprintf("%#v", parallel), fmt.Sprintf("%#v", serial); got != want {
		t.Errorf("Degradation differs across worker counts:\nworkers=1: %s\nworkers=8: %s", want, got)
	}
}

func TestDegradationCurvesBehave(t *testing.T) {
	pts := Degradation(smallDegradation(0))
	byKey := map[string]DegradationPoint{}
	for _, p := range pts {
		byKey[fmt.Sprintf("%s/%v/%s", p.Axis, p.Level, p.Config)] = p
		// The delivery guarantee must hold at every point: nothing
		// injected during measurement may vanish unresolved.
		if p.Unresolved != 0 {
			t.Errorf("%s level %v %s: %d unresolved messages", p.Axis, p.Level, p.Config, p.Unresolved)
		}
	}

	// Zero-fault points must deliver essentially everything.
	for _, key := range []string{"dead-links/0/Optical4", "dead-links/0/Electrical3"} {
		p, ok := byKey[key]
		if !ok {
			t.Fatalf("missing point %s", key)
		}
		if p.LostFrac != 0 {
			t.Errorf("%s: lost %.3f of traffic with no faults", key, p.LostFrac)
		}
		if p.Throughput < 0.9*0.08 {
			t.Errorf("%s: healthy throughput %.4f below offered 0.08", key, p.Throughput)
		}
	}

	// Heavy hardware loss must show up as lost traffic: with 48 dead
	// links some destinations are typically unreachable.
	heavy := byKey["dead-links/48/Optical4"]
	light := byKey["dead-links/4/Optical4"]
	if heavy.LostFrac <= light.LostFrac {
		t.Errorf("dead-links curve not degrading: 48 links lost %.4f <= 4 links lost %.4f",
			heavy.LostFrac, light.LostFrac)
	}

	// The corruption axis is optical-only.
	for _, p := range pts {
		if p.Axis == "corruption" && p.Config != "Optical4" {
			t.Errorf("corruption axis ran on %s", p.Config)
		}
	}
}

func TestDegradationTableAndPlot(t *testing.T) {
	pts := Degradation(DegradationOpts{Rate: 0.05, Warmup: 50, Measure: 150, Trials: 1, Seed: 9})
	tbl := DegradationTable(pts)
	if len(tbl.Rows) != len(pts) {
		t.Fatalf("table has %d rows for %d points", len(tbl.Rows), len(pts))
	}
	plot := DegradationPlot("dead-links", pts)
	if len(plot.Series) != 2 {
		t.Fatalf("dead-links plot has %d series, want Optical4 + Electrical3", len(plot.Series))
	}
	if s := plot.String(); s == "" {
		t.Fatal("empty plot render")
	}
}
