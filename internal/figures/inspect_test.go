package figures

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/exp"
	"phastlane/internal/obs"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// inspectTestOpts builds a small grid of inspection points on a 4x4 mesh.
// Patterns are stateful, so every call returns fresh instances - required
// when the same logical grid is run twice (e.g. at different worker
// counts).
func inspectTestOpts(t *testing.T) []InspectOpts {
	t.Helper()
	builds := []struct {
		name  string
		build func(seed int64) sim.Network
	}{
		{"optical", func(seed int64) sim.Network {
			cfg := core.DefaultConfig()
			cfg.Width, cfg.Height = 4, 4
			cfg.Seed = seed
			return core.New(cfg)
		}},
		{"electrical", func(seed int64) sim.Network {
			cfg := electrical.DefaultConfig()
			cfg.Width, cfg.Height = 4, 4
			cfg.Seed = seed
			return electrical.New(cfg)
		}},
	}
	var opts []InspectOpts
	for _, b := range builds {
		p, err := PatternByName("Uniform", 16, 5)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, InspectOpts{
			Name: b.name, Build: b.build, Width: 4, Height: 4,
			Pattern: p, Rate: 0.10, Warmup: 200, Measure: 800,
			Window: 200, Seed: 5,
		})
	}
	return opts
}

// TestInspectGridDeterministic pins the acceptance criterion that the
// metrics bundle is bit-identical whether the grid runs serially or on
// the full worker pool.
func TestInspectGridDeterministic(t *testing.T) {
	serial := InspectGrid(inspectTestOpts(t), exp.Options{Workers: 1})
	pool := InspectGrid(inspectTestOpts(t), exp.Options{Workers: 8})
	if len(serial) != len(pool) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(pool))
	}
	for i := range serial {
		s, p := &serial[i], &pool[i]
		if s.Name != p.Name {
			t.Fatalf("point %d order differs: %s vs %s", i, s.Name, p.Name)
		}
		if !s.Metrics.Equal(p.Metrics) {
			t.Errorf("%s: metrics differ between 1 and 8 workers", s.Name)
		}
		if !s.Sampler.Equal(p.Sampler) {
			t.Errorf("%s: sampler bins differ between 1 and 8 workers", s.Name)
		}
		if s.Run.Run.Latency.Mean() != p.Run.Run.Latency.Mean() ||
			s.Run.Run.Delivered != p.Run.Run.Delivered {
			t.Errorf("%s: run results differ between 1 and 8 workers", s.Name)
		}
	}
}

// TestInspectTraced: both simulators are instrumented; the zero-valued
// metrics of an uninstrumented network render as "unavailable".
func TestInspectTraced(t *testing.T) {
	results := InspectGrid(inspectTestOpts(t), exp.Options{Workers: 2})
	for i := range results {
		r := &results[i]
		if !r.Traced {
			t.Errorf("%s: not traced", r.Name)
		}
		if r.Metrics.Total(obs.KindEject) < r.Run.Run.Delivered {
			t.Errorf("%s: ejects %d < delivered %d", r.Name,
				r.Metrics.Total(obs.KindEject), r.Run.Run.Delivered)
		}
	}
	untraced := Inspect(InspectOpts{
		Name: "corona", Build: CoronaStyle.Build, Width: 8, Height: 8,
		Pattern: mustPattern(t, "Uniform", 64), Rate: 0.05,
		Warmup: 100, Measure: 400, Seed: 5,
	})
	if untraced.Traced {
		t.Error("corona unexpectedly reports instrumentation")
	}
	if got := InspectHeatmaps([]InspectResult{untraced}); !strings.Contains(got, "unavailable") {
		t.Errorf("heatmaps for untraced network should say unavailable:\n%s", got)
	}
	// The harness-side time series still fills for untraced networks.
	if len(untraced.Sampler.Bins()) == 0 {
		t.Error("untraced network produced no sampler bins")
	}
}

func mustPattern(t *testing.T, name string, nodes int) traffic.Pattern {
	t.Helper()
	p, err := PatternByName(name, nodes, 5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInspectBundle drives the full cmd-facing path: summary + heatmaps on
// the writer, CSVs on disk, and a Perfetto trace that self-validates.
func TestInspectBundle(t *testing.T) {
	dir := t.TempDir()
	b := BundleOpts{
		TracePath:   filepath.Join(dir, "trace.json"),
		MetricsPath: filepath.Join(dir, "metrics.csv"),
		SeriesPath:  filepath.Join(dir, "series.csv"),
		Heatmap:     true,
	}
	if !b.Enabled() {
		t.Fatal("bundle with outputs reports disabled")
	}
	if (BundleOpts{}).Enabled() {
		t.Fatal("empty bundle reports enabled")
	}
	var out strings.Builder
	results, err := InspectBundle(inspectTestOpts(t), exp.Options{Workers: 2}, b, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, want := range []string{"Inspection summary", "link utilization", "drops/node", "Perfetto"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("bundle output missing %q:\n%s", want, out.String())
		}
	}
	f, err := os.Open(b.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := obs.ValidateTrace(f)
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	if n == 0 {
		t.Error("trace is empty")
	}
	metrics, err := os.ReadFile(b.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(metrics), "\n", 2)[0]
	for _, col := range []string{"network", "launch", "eject", "drop", "linkN"} {
		if !strings.Contains(head, col) {
			t.Errorf("metrics CSV header missing %q: %s", col, head)
		}
	}
	// 2 networks x 16 nodes + header.
	if lines := strings.Count(strings.TrimSpace(string(metrics)), "\n"); lines != 32 {
		t.Errorf("metrics CSV has %d data lines, want 32", lines)
	}
	series, err := os.ReadFile(b.SeriesPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(series), "throughput") {
		t.Errorf("series CSV missing throughput column: %s", series)
	}
}

// TestFig9TailTable checks the long-form percentile rendering.
func TestFig9TailTable(t *testing.T) {
	r := Fig9Result{Pattern: "Transpose", Curves: []Fig9Curve{{
		Config: "Optical4",
		Points: []sim.SweepPoint{
			{Rate: 0.05, AvgLatency: 2, P50: 2, P95: 4, P99: 5},
			{Rate: 0.30, AvgLatency: 150, P50: 90, P95: 600, P99: 900, Saturated: true},
		},
	}}}
	out := Fig9TailTable(r).String()
	for _, want := range []string{"p50", "p95", "p99", "Optical4", "sat", "900"} {
		if !strings.Contains(out, want) {
			t.Errorf("tail table missing %q:\n%s", want, out)
		}
	}
}
