package figures

import (
	"phastlane/internal/circuit"
	"phastlane/internal/corona"
	"phastlane/internal/exp"
	"phastlane/internal/fabsim"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/topo"
	"phastlane/internal/traffic"
)

// The architecture comparison goes beyond the paper's own evaluation: it
// quantifies the Section 1/6 qualitative arguments by running the two
// related-work photonic architectures - a Corona-style MWSR token-bus
// crossbar and a Columbia-style circuit-switched mesh - against
// Phastlane, the electrical baseline, and the indirect fabrics behind
// the topology layer (a 64-endpoint Benes and a radix-4 Shufflecast de
// Bruijn graph on the generic fabric simulator) on identical traffic.

// CoronaStyle and CircuitStyle are the related-work comparison networks.
var (
	CoronaStyle = NetConfig{
		Name:    "Corona-bus",
		Optical: true,
		Build: func(seed int64) sim.Network {
			cfg := corona.DefaultConfig()
			cfg.Seed = seed
			return corona.New(cfg)
		},
	}
	CircuitStyle = NetConfig{
		Name:    "Circuit-sw",
		Optical: true,
		Build: func(seed int64) sim.Network {
			cfg := circuit.DefaultConfig()
			cfg.Seed = seed
			return circuit.New(cfg)
		},
	}
)

// fabricCfg builds a comparison entry for an indirect fabric: the named
// topology running on the generic fabric simulator, with the topology
// kept for node labeling in deep dives.
func fabricCfg(name, fabric string, width, height, arity int) NetConfig {
	t, err := topo.New(fabric, width, height, arity)
	if err != nil {
		panic(err) // static geometry below; cannot fail
	}
	return NetConfig{
		Name:    name,
		Optical: true,
		Topo:    t,
		Build: func(seed int64) sim.Network {
			cfg := fabsim.DefaultConfig(t)
			cfg.Seed = seed
			return fabsim.New(cfg)
		},
	}
}

// BenesFabric and ShuffleFabric are the indirect-fabric comparison
// networks at the evaluation's 64-endpoint scale.
var (
	BenesFabric   = fabricCfg("benes", "benes", 64, 1, 0)
	ShuffleFabric = fabricCfg("shufflecast", "shufflecast", 64, 1, 4)
)

// CompareConfigs returns the architectures of the N-way comparison.
func CompareConfigs() []NetConfig {
	return []NetConfig{Optical4, Electrical3, CoronaStyle, CircuitStyle, BenesFabric, ShuffleFabric}
}

// CompareOpts controls the architecture comparison.
type CompareOpts struct {
	// Rates for the synthetic (uniform-random) latency sweep.
	Rates           []float64
	Warmup, Measure int
	// Benchmark and Messages select the coherence-trace round.
	Benchmark string
	Messages  int
	Seed      int64
	// Workers sizes the pool the architectures fan out over; values
	// below 1 use one worker per core.
	Workers int
	// Progress, when non-nil, receives (completed, total) architecture
	// counts.
	Progress func(done, total int)
}

// CompareResult holds one architecture's numbers.
type CompareResult struct {
	Config string
	// UniformLatency maps injection rate to mean latency; saturated
	// points are absent.
	UniformLatency map[float64]float64
	// SaturationRate is the highest non-saturated swept rate.
	SaturationRate float64
	// TraceLatency and TracePowerW come from the coherence replay.
	TraceLatency float64
	TracePowerW  float64
	TraceDrops   int64
}

// Compare runs the synthetic sweep and the coherence-trace round on every
// architecture.
func Compare(opts CompareOpts) ([]CompareResult, error) {
	if opts.Rates == nil {
		opts.Rates = []float64{0.02, 0.05, 0.10, 0.20, 0.30}
	}
	if opts.Benchmark == "" {
		opts.Benchmark = "LU"
	}
	tr, err := TraceFor(opts.Benchmark, opts.Messages, opts.Seed+21)
	if err != nil {
		return nil, err
	}
	type archOut struct {
		res CompareResult
		err error
	}
	results := exp.Run(CompareConfigs(), func(_ int, cfg NetConfig) archOut {
		res := CompareResult{Config: cfg.Name, UniformLatency: map[float64]float64{}}
		for _, rate := range opts.Rates {
			// A fresh UniformRandom per point keeps its RNG private
			// to this worker and its stream independent of how the
			// architectures are scheduled.
			r := sim.RunRate(cfg.Build(opts.Seed), sim.RateConfig{
				Pattern: traffic.UniformRandom(64, opts.Seed+5),
				Rate:    rate, Warmup: opts.Warmup, Measure: opts.Measure,
				Seed: opts.Seed,
			})
			if r.Saturated {
				break
			}
			res.UniformLatency[rate] = r.Run.Latency.Mean()
			res.SaturationRate = rate
		}
		trres, err := sim.RunTrace(cfg.Build(opts.Seed), tr, sim.ReplayConfig{})
		if err != nil {
			return archOut{err: err}
		}
		res.TraceLatency = trres.Run.Latency.Mean()
		res.TracePowerW = trres.Run.PowerW(4.0)
		res.TraceDrops = trres.Run.Drops
		return archOut{res: res}
	}, exp.Options{Workers: opts.Workers, Progress: opts.Progress})
	var out []CompareResult
	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		out = append(out, o.res)
	}
	return out, nil
}

// CompareTable renders the comparison.
func CompareTable(results []CompareResult, rates []float64) *stats.Table {
	if rates == nil {
		rates = []float64{0.02, 0.05, 0.10, 0.20, 0.30}
	}
	cols := []string{"architecture"}
	for _, r := range rates {
		cols = append(cols, "lat@"+stats.F(r))
	}
	cols = append(cols, "coherence-lat", "coherence-W")
	t := &stats.Table{Title: "Architecture comparison (uniform traffic + coherence trace)", Columns: cols}
	for _, res := range results {
		cells := []string{res.Config}
		for _, r := range rates {
			if v, ok := res.UniformLatency[r]; ok {
				cells = append(cells, stats.F(v))
			} else {
				cells = append(cells, "sat")
			}
		}
		cells = append(cells, stats.F(res.TraceLatency), stats.F(res.TracePowerW))
		t.AddRow(cells...)
	}
	return t
}
