package figures

import (
	"fmt"
	"testing"
)

// The figures layer fans grids out over the exp engine; these tests pin
// the guarantee users rely on when passing -parallel: worker count never
// changes any reported number.

func TestFig9DeterministicAcrossWorkerCounts(t *testing.T) {
	opts := Fig9Opts{
		Rates:  []float64{0.02, 0.10, 0.30},
		Warmup: 150, Measure: 500, Seed: 5,
	}
	opts.Workers = 1
	serial := Fig9(opts)
	opts.Workers = 8
	parallel := Fig9(opts)
	if got, want := fmt.Sprintf("%#v", parallel), fmt.Sprintf("%#v", serial); got != want {
		t.Errorf("Fig9 differs across worker counts:\nworkers=1: %s\nworkers=8: %s", want, got)
	}
	if len(serial) != 4 {
		t.Fatalf("Fig9 produced %d patterns, want 4", len(serial))
	}
	for _, res := range serial {
		if len(res.Curves) != len(Fig9Configs()) {
			t.Errorf("%s: %d curves, want %d", res.Pattern, len(res.Curves), len(Fig9Configs()))
		}
	}
}

func TestSplashDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := SplashOpts{Benchmarks: []string{"Barnes", "LU"}, Messages: 1500, Seed: 5}
	opts.Workers = 1
	serial, err := Splash(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := Splash(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", parallel), fmt.Sprintf("%#v", serial); got != want {
		t.Errorf("Splash differs across worker counts:\nworkers=1: %s\nworkers=8: %s", want, got)
	}
}

func TestSensitivityDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := SensitivityOpts{Benchmark: "LU", Messages: 1200, Seed: 5}
	opts.Workers = 1
	serial, err := Sensitivity(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := Sensitivity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", parallel), fmt.Sprintf("%#v", serial); got != want {
		t.Errorf("Sensitivity differs across worker counts:\nworkers=1: %s\nworkers=8: %s", want, got)
	}
}

func TestCompareDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := CompareOpts{Rates: []float64{0.02, 0.10}, Warmup: 150, Measure: 500, Messages: 1200, Seed: 5}
	opts.Workers = 1
	serial, err := Compare(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := Compare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", parallel), fmt.Sprintf("%#v", serial); got != want {
		t.Errorf("Compare differs across worker counts:\nworkers=1: %s\nworkers=8: %s", want, got)
	}
}
