package figures

import (
	"fmt"

	"phastlane/internal/coherence"
	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/photonic"
	"phastlane/internal/stats"
)

// fig5WDMs are the wavelength counts the paper sweeps.
var fig5WDMs = []int{32, 64, 128}

// Fig4 tabulates the transmit and receive delay scaling trends from 45 nm
// to 16 nm under the three fitting assumptions (paper Fig. 4).
func Fig4() *stats.Table {
	t := &stats.Table{
		Title: "Fig. 4: transmit/receive delay scaling (ps)",
		Columns: []string{"node(nm)",
			"tx-opt", "tx-avg", "tx-pess",
			"rx-opt", "rx-avg", "rx-pess"},
	}
	for _, node := range []float64{45, 38, 32, 27, 22, 18, 16} {
		row := []string{stats.F(node)}
		for _, s := range photonic.Scenarios() {
			row = append(row, stats.F(photonic.DelaysAt(s, node).TransmitPs))
		}
		for _, s := range photonic.Scenarios() {
			row = append(row, stats.F(photonic.DelaysAt(s, node).ReceivePs))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5 tabulates the router critical-path delays (PP, PB, PA, PIA) per
// scaling scenario and wavelength count (paper Fig. 5).
func Fig5() *stats.Table {
	t := &stats.Table{
		Title:   "Fig. 5: router critical-path delays (ps)",
		Columns: []string{"scenario", "wdm", "PP", "PB", "PA", "PIA"},
	}
	for _, s := range photonic.Scenarios() {
		for _, wdm := range fig5WDMs {
			cp := photonic.Paths(s, wdm)
			t.AddRow(s.String(), fmt.Sprint(wdm),
				stats.F(cp.PacketPass), stats.F(cp.PacketBlock),
				stats.F(cp.PacketAccept), stats.F(cp.PacketInterimAccept))
		}
	}
	return t
}

// Fig6 tabulates the maximum hops per 4 GHz cycle (paper Fig. 6: 8/5/4
// independent of wavelength count).
func Fig6() *stats.Table {
	t := &stats.Table{
		Title:   "Fig. 6: max hops per 4 GHz cycle",
		Columns: []string{"wdm", "optimistic", "average", "pessimistic"},
	}
	for _, wdm := range fig5WDMs {
		row := []string{fmt.Sprint(wdm)}
		for _, s := range photonic.Scenarios() {
			row = append(row, fmt.Sprint(photonic.MaxHopsPerCycle(s, wdm, photonic.DefaultClockGHz)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7 tabulates the peak optical input power contour over crossing
// efficiency, wavelength count and per-cycle hop limit (paper Fig. 7).
func Fig7() *stats.Table {
	effs := []float64{0.97, 0.98, 0.99, 0.995}
	t := &stats.Table{
		Title:   "Fig. 7: peak optical power (W)",
		Columns: []string{"wdm", "hops", "eff97%", "eff98%", "eff99%", "eff99.5%"},
	}
	for _, wdm := range fig5WDMs {
		for _, hops := range []int{2, 3, 4, 5, 8} {
			row := []string{fmt.Sprint(wdm), fmt.Sprint(hops)}
			for _, e := range effs {
				row = append(row, stats.F(photonic.PeakOpticalPowerW(wdm, hops, e)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Fig8 tabulates router area versus wavelength count and the tile-fit
// outcomes (paper Fig. 8: sweet spot at 64).
func Fig8() *stats.Table {
	t := &stats.Table{
		Title:   "Fig. 8: router area vs wavelengths",
		Columns: []string{"wdm", "internal(um)", "port(um)", "area(mm2)", "fits-1core", "fits-2core", "fits-4core"},
	}
	for _, wdm := range []int{16, 32, 64, 128, 256} {
		a := photonic.AreaAt(wdm)
		t.AddRow(fmt.Sprint(wdm),
			stats.F(a.InternalLengthUM), stats.F(a.PortLengthUM), stats.F(a.TotalMM2),
			fmt.Sprint(photonic.FitsTile(wdm, photonic.TileAreaSingleCoreMM2)),
			fmt.Sprint(photonic.FitsTile(wdm, photonic.TileAreaDualCoreMM2)),
			fmt.Sprint(photonic.FitsTile(wdm, photonic.TileAreaQuadCoreMM2)))
	}
	return t
}

// Table1 renders the optical network configuration (paper Table 1).
func Table1() *stats.Table {
	cfg := core.DefaultConfig()
	t := &stats.Table{Title: "Table 1: optical network configuration", Columns: []string{"parameter", "value"}}
	t.AddRow("Flits Per Packet", "1 (80 Bytes)")
	t.AddRow("Packet Payload WDM", fmt.Sprint(cfg.WDM))
	t.AddRow("Packet Payload Waveguides", fmt.Sprint(photonic.DataWaveguides(cfg.WDM)))
	t.AddRow("Routing Function", "Dimension-Order")
	t.AddRow("Packet Control Bits", "70")
	t.AddRow("Packet Control WDM", "35")
	t.AddRow("Packet Control Waveguides", "2")
	t.AddRow("Buffer Entries in NIC", fmt.Sprint(cfg.NICEntries))
	t.AddRow("Max Hops Per Cycle", "4, 5, or 8")
	t.AddRow("Node Transmit Arbitration", "Rotating Priority")
	t.AddRow("Network Path Arbitration", "Fixed Priority")
	return t
}

// Table2 renders the electrical baseline parameters (paper Table 2).
func Table2() *stats.Table {
	cfg := electrical.DefaultConfig()
	t := &stats.Table{Title: "Table 2: baseline electrical router", Columns: []string{"parameter", "value"}}
	t.AddRow("Flits per Packet", "1 (80 Bytes)")
	t.AddRow("Routing Function", "Dimension-Order")
	t.AddRow("Number of VCs per Port", fmt.Sprint(cfg.VCs))
	t.AddRow("Number of Entries per VC", "1")
	t.AddRow("Wait for Tail Credit", "YES")
	t.AddRow("VC_Allocator", "ISLIP")
	t.AddRow("SW_Allocator", "ISLIP")
	t.AddRow("Total Router Delay", "2 or 3 cycles")
	t.AddRow("Input Speedup", fmt.Sprint(cfg.InputSpeedup))
	t.AddRow("Output Speedup", "1")
	t.AddRow("Buffer Entries in NIC", fmt.Sprint(cfg.NICEntries))
	return t
}

// Table3 renders the SPLASH2 benchmarks and input sets (paper Table 3).
func Table3() *stats.Table {
	t := &stats.Table{Title: "Table 3: SPLASH2 benchmarks", Columns: []string{"benchmark", "data set"}}
	for _, p := range coherence.Benchmarks() {
		t.AddRow(p.Name, p.DataSet)
	}
	return t
}

// Table4 renders the cache and memory parameters (paper Table 4).
func Table4() *stats.Table {
	cfg := coherence.DefaultConfig()
	t := &stats.Table{Title: "Table 4: cache and memory parameters", Columns: []string{"parameter", "value"}}
	t.AddRow("Simulated Cache Sizes", fmt.Sprintf("%dKB L1I, %dKB L1D, %dKB L2",
		cfg.L1SizeBytes>>10, cfg.L1SizeBytes>>10, cfg.L2SizeBytes>>10))
	t.AddRow("Cache Associativity", fmt.Sprintf("%d Way L1, %d Way L2", cfg.L1Ways, cfg.L2Ways))
	t.AddRow("Block Size", fmt.Sprintf("%dB L1, %dB L2", cfg.L1BlockBytes, cfg.L2BlockBytes))
	t.AddRow("Memory Latency", fmt.Sprintf("%d cycles", cfg.MemLatency))
	return t
}
