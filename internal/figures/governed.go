package figures

import (
	"fmt"

	"phastlane/internal/cc"
	"phastlane/internal/exp"
	"phastlane/internal/fault"
	"phastlane/internal/mesh"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/traffic"
)

// Governed is the closed-loop congestion-control study: it drives both
// simulators through the saturation knee three ways — ungoverned, a
// static backoff (fixed conservative injection cap), and the cc package's
// delay-gradient AIMD governor — and reports delivered throughput, tail
// latency, and Jain's fairness at each offered load. The question it
// answers is whether sensing congestion beats provisioning for it: the
// static cap is the safe rate an operator would pick offline, AIMD finds
// the operating point online from per-message latency and nack signals.

// Governed mode names.
const (
	// ModeNone runs the network bare: injection is limited only by NIC
	// backpressure, so offered loads past the knee fall off the
	// saturation cliff.
	ModeNone = "none"
	// ModeStatic is the static backoff baseline: every sender is paced
	// by a fixed token bucket at GovernedOpts.StaticRate, regardless of
	// what the network reports back.
	ModeStatic = "static"
	// ModeAIMD is the closed loop: cc.DefaultConfig delay-gradient AIMD
	// senders.
	ModeAIMD = "aimd"
)

// GovernedOpts controls the sweep.
type GovernedOpts struct {
	// Configs selects the network variants (default Optical4 and
	// Electrical3, the same pair as the degradation study).
	Configs []string
	// Patterns selects the traffic patterns by name. The default runs
	// Uniform — where the cliff shows as a latency-tail explosion — and
	// BitComp, the adversarial permutation where the optical retry
	// churn produces genuine congestion collapse (delivered throughput
	// falls as offered load rises), the regime the governor exists for.
	Patterns []string
	// Rates is the offered-load grid; the default spans the healthy
	// region through the cliff (8x8 uniform knee ~0.45): 0.30, 0.40,
	// 0.50, 0.60, 0.70.
	Rates []float64
	// StaticRate is the fixed cap of the static-backoff baseline
	// (default 0.30 — the conservative below-knee rate an operator
	// would provision without feedback).
	StaticRate float64
	// Warmup and Measure cycles per point; zero uses 300 and 2000.
	Warmup, Measure int
	Seed            int64
	// Workers sizes the pool the points fan out over; values below 1
	// use one worker per core. Results are identical for any count.
	Workers int
	// Progress, when non-nil, receives (completed, total) point counts.
	Progress func(done, total int)
}

// GovernedPoint is one (config, pattern, mode, rate) outcome.
type GovernedPoint struct {
	// Config is the network variant ("Optical4" or "Electrical3").
	Config string `json:"config"`
	// Pattern is the traffic pattern name.
	Pattern string `json:"pattern"`
	// Mode is the sender discipline: "none", "static", or "aimd".
	Mode string `json:"mode"`
	// Rate is the offered load (packets/node/cycle).
	Rate float64 `json:"rate"`
	// Throughput is delivered packets/node/cycle.
	Throughput float64 `json:"throughput"`
	// AvgLatency and P99 are delivered-packet latency in cycles.
	AvgLatency float64 `json:"avg_latency"`
	P99        float64 `json:"p99"`
	// Fairness is Jain's index over per-sender delivered counts (1 =
	// perfectly fair).
	Fairness float64 `json:"fairness"`
	// CCRate is the governor's mean admitted rate at run end (governed
	// modes only).
	CCRate float64 `json:"cc_rate,omitempty"`
	// Paced counts injections the governor declined.
	Paced int64 `json:"paced"`
	// Delivered, Retries and Lost summarise the delivery layer.
	Delivered int64 `json:"delivered"`
	Retries   int64 `json:"retries"`
	Lost      int64 `json:"lost"`
	// Saturated reports the harness's overload verdict.
	Saturated bool `json:"saturated"`
}

const defaultStaticRate = 0.30

// staticGovernor builds the static-backoff discipline: the cc machinery
// with a degenerate tuning — InitRate == MinRate == MaxRate == the cap —
// so both governed modes pay the identical token-bucket admission path
// and differ only in adaptation.
func staticGovernor(rate float64, nodes int, seed int64) *cc.Governor {
	cfg := cc.DefaultConfig()
	cfg.InitRate, cfg.MinRate, cfg.MaxRate = rate, rate, rate
	cfg.Seed = seed
	return cc.New(cfg, nodes)
}

// JainFairness computes Jain's index over per-sender delivered counts:
// (sum x)^2 / (n * sum x^2), which is 1 when every sender got the same
// share and 1/n when one sender got everything. Senders that delivered
// nothing count; an all-zero population returns 0.
func JainFairness(delivered []int64) float64 {
	var sum, sumSq float64
	for _, d := range delivered {
		x := float64(d)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(delivered)) * sumSq)
}

// governedPattern builds a pattern by name for a nodes-endpoint run;
// stateful patterns (Uniform) get the derived seed so every point owns a
// fresh generator.
func governedPattern(name string, nodes int, seed int64) traffic.Pattern {
	switch name {
	case "Uniform":
		return traffic.UniformRandom(nodes, seed)
	case "BitComp":
		return traffic.BitComplement(nodes)
	case "BitRev":
		return traffic.BitReverse(nodes)
	case "Shuffle":
		return traffic.Shuffle(nodes)
	case "Transpose":
		return traffic.Transpose(nodes)
	default:
		panic("figures: unknown governed pattern " + name)
	}
}

// Governed runs the sweep and returns all points in a stable (config,
// pattern, mode, rate) order. Every point builds a fresh network and a
// fresh governor, so two runs with the same options are bit-identical
// regardless of worker count.
func Governed(opts GovernedOpts) []GovernedPoint {
	if len(opts.Configs) == 0 {
		opts.Configs = []string{"Optical4", "Electrical3"}
	}
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"Uniform", "BitComp"}
	}
	if len(opts.Rates) == 0 {
		opts.Rates = []float64{0.30, 0.40, 0.50, 0.60, 0.70}
	}
	if opts.StaticRate == 0 {
		opts.StaticRate = defaultStaticRate
	}
	if opts.Warmup == 0 {
		opts.Warmup = 300
	}
	if opts.Measure == 0 {
		opts.Measure = 2000
	}
	type job struct {
		config  string
		pattern string
		mode    string
		rate    float64
	}
	var jobs []job
	for _, config := range opts.Configs {
		for _, pattern := range opts.Patterns {
			for _, mode := range []string{ModeNone, ModeStatic, ModeAIMD} {
				for _, rate := range opts.Rates {
					jobs = append(jobs, job{config, pattern, mode, rate})
				}
			}
		}
	}
	pts := exp.Run(jobs, func(ji int, j job) GovernedPoint {
		net := degradationNet(j.config, nil, opts.Seed+7)
		var gov *cc.Governor
		switch j.mode {
		case ModeStatic:
			gov = staticGovernor(opts.StaticRate, net.Nodes(), exp.DeriveSeed(opts.Seed, uint64(ji)))
		case ModeAIMD:
			cfg := cc.DefaultConfig()
			cfg.Seed = exp.DeriveSeed(opts.Seed, uint64(ji))
			gov = cc.New(cfg, net.Nodes())
		}
		r := sim.RunRate(net, sim.RateConfig{
			Pattern: governedPattern(j.pattern, net.Nodes(), exp.DeriveSeed(opts.Seed, uint64(ji)*64+32)),
			Rate:    j.rate,
			Warmup:  opts.Warmup, Measure: opts.Measure,
			Seed: opts.Seed,
			CC:   gov,
		})
		pt := GovernedPoint{
			Config: j.config, Pattern: j.pattern, Mode: j.mode, Rate: j.rate,
			Throughput: r.Run.ThroughputPerNode(net.Nodes()),
			AvgLatency: r.Run.Latency.Mean(),
			P99:        r.Run.Latency.Percentile(99),
			Fairness:   JainFairness(r.DeliveredBySender),
			Paced:      r.Paced,
			Delivered:  r.Run.Delivered,
			Retries:    r.Run.Retries,
			Lost:       r.Lost,
			Saturated:  r.Saturated,
		}
		if gov != nil {
			pt.CCRate = gov.MeanRate()
		}
		return pt
	}, exp.Options{Workers: opts.Workers, Progress: opts.Progress})
	return pts
}

// GovernedTable renders the sweep in long form, one row per point.
func GovernedTable(pts []GovernedPoint) *stats.Table {
	t := &stats.Table{
		Title: "Governed: sender discipline vs the saturation cliff",
		Columns: []string{"config", "pattern", "mode", "rate", "throughput", "latency",
			"p99", "fairness", "cc_rate", "paced", "lost", "sat"},
	}
	for _, p := range pts {
		sat := ""
		if p.Saturated {
			sat = "SAT"
		}
		t.AddRow(p.Config, p.Pattern, p.Mode, stats.F(p.Rate), stats.F(p.Throughput),
			stats.F(p.AvgLatency), stats.F(p.P99), stats.F(p.Fairness),
			stats.F(p.CCRate), fmt.Sprint(p.Paced), fmt.Sprint(p.Lost), sat)
	}
	return t
}

// GovernedPlot renders one (config, pattern) slice's delivered-throughput
// curves, one series per sender discipline.
func GovernedPlot(config, pattern string, pts []GovernedPoint) *stats.Plot {
	return governedSeries(config, pattern, pts,
		fmt.Sprintf("Governed (%s, %s): delivered throughput vs offered load", config, pattern),
		"pkts/node/cycle",
		func(p GovernedPoint) float64 { return p.Throughput })
}

// GovernedTailPlot renders one (config, pattern) slice's p99 latency curves.
func GovernedTailPlot(config, pattern string, pts []GovernedPoint) *stats.Plot {
	return governedSeries(config, pattern, pts,
		fmt.Sprintf("Governed (%s, %s): p99 latency vs offered load", config, pattern),
		"cycles",
		func(p GovernedPoint) float64 { return p.P99 })
}

func governedSeries(config, pattern string, pts []GovernedPoint, title, ylabel string, y func(GovernedPoint) float64) *stats.Plot {
	p := &stats.Plot{Title: title, XLabel: "offered rate", YLabel: ylabel}
	series := map[string]*stats.Series{}
	var order []string
	for _, pt := range pts {
		if pt.Config != config || pt.Pattern != pattern {
			continue
		}
		s, ok := series[pt.Mode]
		if !ok {
			s = &stats.Series{Label: pt.Mode}
			series[pt.Mode] = s
			order = append(order, pt.Mode)
		}
		s.Append(pt.Rate, y(pt))
	}
	for _, name := range order {
		p.Series = append(p.Series, *series[name])
	}
	return p
}

// RecoveryOpts controls the fault back-off/re-convergence study.
type RecoveryOpts struct {
	// Rate is the offered load (default 0.25 — past the healthy knee,
	// so the governor is actively governing when the links die).
	Rate float64
	// DeadLinks is how many vertical-bisection links die mid-run
	// (default 6 of the 8x8 mesh's 8).
	DeadLinks int
	// Warmup and Measure cycles (defaults 300 and 6000; the fault
	// window and heal need room inside the measure phase).
	Warmup, Measure int
	Seed            int64
}

// RecoveryResult is the study outcome: the governor's rate history plus
// phase means around the fault window.
type RecoveryResult struct {
	// From and Until are the fault window boundaries in run cycles.
	From  int64 `json:"from"`
	Until int64 `json:"until"`
	// Samples is the governor's population history (cc.RateSample).
	Samples []cc.RateSample `json:"samples"`
	// PreRate, FaultRate and PostRate are the mean admitted rates over
	// the three phases: before the links die, while they are dead, and
	// after they heal (excluding a settle margin after each boundary).
	PreRate   float64 `json:"pre_rate"`
	FaultRate float64 `json:"fault_rate"`
	PostRate  float64 `json:"post_rate"`
	// Delivered and Lost summarise the run.
	Delivered int64 `json:"delivered"`
	Lost      int64 `json:"lost"`
}

// GovernedRecovery runs the AIMD governor on the optical mesh through a
// mid-run dead-link fault window — DeadLinks vertical bisection links go
// down together, then heal — and returns the rate history: the
// population backs off while the fabric is degraded and re-converges
// after it heals. Deterministic for fixed opts.
func GovernedRecovery(opts RecoveryOpts) RecoveryResult {
	if opts.Rate == 0 {
		opts.Rate = 0.25
	}
	if opts.DeadLinks == 0 {
		opts.DeadLinks = 6
	}
	if opts.Warmup == 0 {
		opts.Warmup = 300
	}
	if opts.Measure == 0 {
		opts.Measure = 6000
	}
	total := int64(opts.Warmup + opts.Measure)
	from := int64(opts.Warmup) + total/3
	until := int64(opts.Warmup) + 2*total/3
	plan := &fault.Plan{}
	for i := 0; i < opts.DeadLinks && i < 8; i++ {
		// East links out of column 3: the 8x8 mesh's vertical bisection.
		plan.Faults = append(plan.Faults, fault.Fault{
			Kind: fault.DeadLink,
			Node: mesh.NodeID(i*8 + 3),
			Dir:  mesh.East,
			From: from, Until: until,
		})
	}
	net := degradationNet("Optical4", plan, opts.Seed+7)
	ccCfg := cc.DefaultConfig()
	ccCfg.Seed = exp.DeriveSeed(opts.Seed, 1)
	ccCfg.HistoryEvery = 64
	gov := cc.New(ccCfg, net.Nodes())
	r := sim.RunRate(net, sim.RateConfig{
		Pattern: traffic.UniformRandom(net.Nodes(), exp.DeriveSeed(opts.Seed, 2)),
		Rate:    opts.Rate,
		Warmup:  opts.Warmup, Measure: opts.Measure,
		Seed: opts.Seed,
		CC:   gov,
	})
	res := RecoveryResult{
		From: from, Until: until,
		Samples:   append([]cc.RateSample(nil), gov.History()...),
		Delivered: r.Run.Delivered,
		Lost:      r.Lost,
	}
	// Phase means skip a settle margin after each boundary so the
	// controller's reaction time does not blur the phases together.
	const settle = 512
	var preSum, faultSum, postSum float64
	var preN, faultN, postN int
	for _, s := range res.Samples {
		switch {
		case s.Cycle >= int64(opts.Warmup) && s.Cycle < from:
			preSum += s.MeanRate
			preN++
		case s.Cycle >= from+settle && s.Cycle < until:
			faultSum += s.MeanRate
			faultN++
		case s.Cycle >= until+settle:
			postSum += s.MeanRate
			postN++
		}
	}
	if preN > 0 {
		res.PreRate = preSum / float64(preN)
	}
	if faultN > 0 {
		res.FaultRate = faultSum / float64(faultN)
	}
	if postN > 0 {
		res.PostRate = postSum / float64(postN)
	}
	return res
}

// RecoveryPlot renders the governor's mean admitted rate over the run,
// with the fault window called out in the title.
func RecoveryPlot(r RecoveryResult) *stats.Plot {
	p := &stats.Plot{
		Title: fmt.Sprintf("Recovery: mean admitted rate (links dead %d-%d)",
			r.From, r.Until),
		XLabel: "cycle", YLabel: "rate",
	}
	s := stats.Series{Label: "aimd"}
	for _, sm := range r.Samples {
		s.Append(float64(sm.Cycle), sm.MeanRate)
	}
	p.Series = append(p.Series, s)
	return p
}
