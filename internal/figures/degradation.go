package figures

import (
	"fmt"

	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/exp"
	"phastlane/internal/fault"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/traffic"
)

// Degradation sweeps fault rate against delivered throughput and latency
// for the two simulators, producing the robustness counterpart of the
// Fig. 9 load curves: instead of asking how much traffic a healthy network
// sustains, it asks how much hardware can die before a fixed offered load
// stops arriving. Each point injects a randomly-placed fault plan (dead
// links, stuck routers, or control corruption) and measures what fraction
// of the offered traffic still gets through, at what latency, and how much
// the delivery layer had to abandon.

// DegradationOpts controls the sweep.
type DegradationOpts struct {
	// Rate is the fixed offered load (packets/node/cycle); the default
	// 0.10 sits comfortably below the healthy-network knee so any
	// degradation is attributable to the faults.
	Rate float64
	// Warmup and Measure cycles per point; zero uses 300 and 1500 — the
	// sweep runs many points, so the defaults are deliberately shorter
	// than RunRate's.
	Warmup, Measure int
	// Trials is how many independent fault placements are averaged per
	// point (default 2). More trials smooth placement luck.
	Trials int
	Seed   int64
	// Workers sizes the pool the points fan out over; values below 1 use
	// one worker per core. Results are identical for any worker count.
	Workers int
	// Progress, when non-nil, receives (completed, total) point counts.
	Progress func(done, total int)
}

// DegradationPoint is one (axis, level, config) outcome, averaged over the
// sweep's trials.
type DegradationPoint struct {
	// Axis names the fault dimension: "dead-links", "stuck-routers" or
	// "corruption".
	Axis string `json:"axis"`
	// Level is the axis value: a fault count for the hardware axes, a
	// per-hop probability for corruption.
	Level float64 `json:"level"`
	// Config is the network variant ("Optical4" or "Electrical3").
	Config string `json:"config"`
	// Throughput is delivered packets/node/cycle.
	Throughput float64 `json:"throughput"`
	// AvgLatency is the mean delivered-packet latency in cycles.
	AvgLatency float64 `json:"avg_latency"`
	// LostFrac is the fraction of measured messages the delivery layer
	// abandoned (reported lost / resolved).
	LostFrac float64 `json:"lost_frac"`
	// Unresolved counts measured messages neither delivered nor reported
	// lost when the drain gave up, summed over trials; nonzero values
	// mean the delivery guarantee failed at this point.
	Unresolved int64 `json:"unresolved"`
}

// degradationAxes enumerates the sweep grid. Corruption is an optical
// phenomenon (resonator drift flipping predecoded control bits), so that
// axis runs on the Phastlane network only; the hardware axes run on both.
func degradationAxes() []struct {
	axis   string
	levels []float64
	spec   func(level float64) fault.RandomSpec
	both   bool
} {
	return []struct {
		axis   string
		levels []float64
		spec   func(level float64) fault.RandomSpec
		both   bool
	}{
		{
			axis:   "dead-links",
			levels: []float64{0, 4, 8, 16, 32, 48},
			spec:   func(l float64) fault.RandomSpec { return fault.RandomSpec{DeadLinks: int(l)} },
			both:   true,
		},
		{
			axis:   "stuck-routers",
			levels: []float64{0, 1, 2, 4, 8},
			spec:   func(l float64) fault.RandomSpec { return fault.RandomSpec{StuckRouters: int(l)} },
			both:   true,
		},
		{
			axis:   "corruption",
			levels: []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05},
			spec:   func(l float64) fault.RandomSpec { return fault.RandomSpec{CorruptRate: l} },
			both:   false,
		},
	}
}

// degradationNet builds the named variant with plan installed and the
// delivery layer armed, so faulted runs resolve every message instead of
// hanging the drain phase.
func degradationNet(config string, plan *fault.Plan, seed int64) sim.Network {
	switch config {
	case "Optical4":
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Faults = plan
		cfg.RetryLimit = 16
		cfg.LossTimeout = 4000
		return core.New(cfg)
	case "Electrical3":
		cfg := electrical.DefaultConfig()
		cfg.Seed = seed
		cfg.Faults = plan
		cfg.LossTimeout = 4000
		return electrical.New(cfg)
	default:
		panic("figures: unknown degradation config " + config)
	}
}

// Degradation runs the fault sweeps and returns all points in a stable
// order (axis, level, config). Each point's fault placements derive from
// (Seed, point index, trial) alone, so two runs with the same options are
// bit-identical regardless of worker count.
func Degradation(opts DegradationOpts) []DegradationPoint {
	if opts.Rate == 0 {
		opts.Rate = 0.10
	}
	if opts.Warmup == 0 {
		opts.Warmup = 300
	}
	if opts.Measure == 0 {
		opts.Measure = 1500
	}
	if opts.Trials == 0 {
		opts.Trials = 2
	}
	type job struct {
		axis   string
		level  float64
		config string
		spec   fault.RandomSpec
	}
	var jobs []job
	for _, ax := range degradationAxes() {
		configs := []string{"Optical4", "Electrical3"}
		if !ax.both {
			configs = configs[:1]
		}
		for _, level := range ax.levels {
			for _, cfg := range configs {
				jobs = append(jobs, job{ax.axis, level, cfg, ax.spec(level)})
			}
		}
	}
	pts := exp.Run(jobs, func(ji int, j job) DegradationPoint {
		pt := DegradationPoint{Axis: j.axis, Level: j.level, Config: j.config}
		for trial := 0; trial < opts.Trials; trial++ {
			planSeed := exp.DeriveSeed(opts.Seed, uint64(ji)*64+uint64(trial))
			plan := fault.RandomPlan(planSeed, 8, 8, j.spec)
			net := degradationNet(j.config, plan, opts.Seed+7)
			r := sim.RunRate(net, sim.RateConfig{
				Pattern: traffic.UniformRandom(64, exp.DeriveSeed(opts.Seed, uint64(ji)*64+32+uint64(trial))),
				Rate:    opts.Rate,
				Warmup:  opts.Warmup, Measure: opts.Measure,
				Seed: opts.Seed,
			})
			pt.Throughput += r.Run.ThroughputPerNode(net.Nodes())
			pt.AvgLatency += r.Run.Latency.Mean()
			if resolved := r.Run.Delivered + r.Lost; resolved > 0 {
				pt.LostFrac += float64(r.Lost) / float64(resolved)
			}
			pt.Unresolved += r.Unresolved
		}
		n := float64(opts.Trials)
		pt.Throughput /= n
		pt.AvgLatency /= n
		pt.LostFrac /= n
		return pt
	}, exp.Options{Workers: opts.Workers, Progress: opts.Progress})
	return pts
}

// DegradationTable renders the sweep in long form, one row per point.
func DegradationTable(pts []DegradationPoint) *stats.Table {
	t := &stats.Table{
		Title:   "Degradation: throughput/latency vs fault rate (offered 0.10 uniform)",
		Columns: []string{"axis", "level", "config", "throughput", "latency", "lost", "unresolved"},
	}
	for _, p := range pts {
		t.AddRow(p.Axis, stats.F(p.Level), p.Config, stats.F(p.Throughput),
			stats.F(p.AvgLatency), stats.F(p.LostFrac), fmt.Sprint(p.Unresolved))
	}
	return t
}

// DegradationPlot renders one axis's curves (delivered throughput versus
// fault level, one series per config).
func DegradationPlot(axis string, pts []DegradationPoint) *stats.Plot {
	p := &stats.Plot{
		Title:  fmt.Sprintf("Degradation (%s): delivered throughput vs fault level", axis),
		XLabel: axis, YLabel: "pkts/node/cycle",
	}
	series := map[string]*stats.Series{}
	var order []string
	for _, pt := range pts {
		if pt.Axis != axis {
			continue
		}
		s, ok := series[pt.Config]
		if !ok {
			s = &stats.Series{Label: pt.Config}
			series[pt.Config] = s
			order = append(order, pt.Config)
		}
		s.Append(pt.Level, pt.Throughput)
	}
	for _, name := range order {
		p.Series = append(p.Series, *series[name])
	}
	return p
}
