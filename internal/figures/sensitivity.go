package figures

import (
	"fmt"

	"phastlane/internal/core"
	"phastlane/internal/exp"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
)

// Sensitivity sweeps the Phastlane design knobs one at a time around the
// paper's operating point (Optical4 on a mixed coherence workload),
// reporting how latency, drops and power respond. This extends the paper's
// buffer-size study (Fig. 10) to the other free parameters.

// SensitivityOpts controls the sweep.
type SensitivityOpts struct {
	// Benchmark and Messages pick the workload (default Barnes, 6000).
	Benchmark string
	Messages  int
	Seed      int64
	// Workers sizes the pool the knob settings fan out over; values
	// below 1 use one worker per core.
	Workers int
	// Progress, when non-nil, receives (completed, total) point counts.
	Progress func(done, total int)
}

// SensitivityPoint is one knob setting's outcome.
type SensitivityPoint struct {
	Knob    string
	Value   string
	Latency float64
	Drops   int64
	PowerW  float64
}

// sensitivityJob is one knob setting awaiting its run.
type sensitivityJob struct {
	knob, value string
	mutate      func(*core.Config)
}

// sensitivityJobs enumerates the one-at-a-time sweep grid in report order.
func sensitivityJobs() []sensitivityJob {
	var jobs []sensitivityJob
	add := func(knob, value string, mutate func(*core.Config)) {
		jobs = append(jobs, sensitivityJob{knob, value, mutate})
	}
	for _, hops := range []int{2, 4, 5, 8} {
		h := hops
		add("MaxHops", fmt.Sprint(h), func(c *core.Config) { c.MaxHops = h })
	}
	for _, buf := range []int{4, 10, 32, 64, -1} {
		b := buf
		v := fmt.Sprint(b)
		if b < 0 {
			v = "inf"
		}
		add("BufferEntries", v, func(c *core.Config) { c.BufferEntries = b })
	}
	for _, bo := range []int{1, 8, 64, 256} {
		m := bo
		add("BackoffMax", fmt.Sprint(m), func(c *core.Config) {
			if c.BackoffBase > m {
				c.BackoffBase = m
			}
			c.BackoffMax = m
		})
	}
	for _, nic := range []int{8, 20, 50, 200} {
		v := nic
		add("NICEntries", fmt.Sprint(v), func(c *core.Config) { c.NICEntries = v })
	}
	for _, eff := range []float64{0.97, 0.98, 0.99, 0.995} {
		e := eff
		add("CrossingEff", stats.F(e*100)+"%", func(c *core.Config) { c.CrossingEff = e })
	}
	for _, arb := range []core.Arbiter{core.ArbRotating, core.ArbOldestFirst, core.ArbLongestQueue} {
		a := arb
		add("Arbiter", a.String(), func(c *core.Config) { c.Arbiter = a })
	}
	return jobs
}

// Sensitivity runs the one-at-a-time sweeps and returns all points,
// grouped by knob in a stable order. The knob settings are independent
// replays of one shared trace, so they fan out over the exp worker pool;
// each point builds its own network from a fresh config.
func Sensitivity(opts SensitivityOpts) ([]SensitivityPoint, error) {
	if opts.Benchmark == "" {
		opts.Benchmark = "Barnes"
	}
	if opts.Messages == 0 {
		opts.Messages = 6000
	}
	tr, err := TraceFor(opts.Benchmark, opts.Messages, opts.Seed+31)
	if err != nil {
		return nil, err
	}
	jobs := sensitivityJobs()
	type out struct {
		pt  SensitivityPoint
		err error
	}
	results := exp.Run(jobs, func(_ int, j sensitivityJob) out {
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed + 7
		j.mutate(&cfg)
		res, err := sim.RunTrace(core.New(cfg), tr, sim.ReplayConfig{})
		if err != nil {
			return out{err: fmt.Errorf("%s=%s: %w", j.knob, j.value, err)}
		}
		return out{pt: SensitivityPoint{
			Knob: j.knob, Value: j.value,
			Latency: res.Run.Latency.Mean(),
			Drops:   res.Run.Drops,
			PowerW:  res.Run.PowerW(photonic.DefaultClockGHz),
		}}
	}, exp.Options{Workers: opts.Workers, Progress: opts.Progress})
	pts := make([]SensitivityPoint, 0, len(results))
	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		pts = append(pts, o.pt)
	}
	return pts, nil
}

// SensitivityTable renders the sweep.
func SensitivityTable(pts []SensitivityPoint, workload string) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Design-knob sensitivity (Optical4 on %s)", workload),
		Columns: []string{"knob", "value", "latency", "drops", "power(W)"},
	}
	for _, p := range pts {
		t.AddRow(p.Knob, p.Value, stats.F(p.Latency), fmt.Sprint(p.Drops), stats.F(p.PowerW))
	}
	return t
}
