package figures

import (
	"fmt"
	"phastlane/internal/topo"
	"strings"

	"phastlane/internal/exp"
	"phastlane/internal/obs"
	"phastlane/internal/photonic"
	"phastlane/internal/provenance"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/traffic"
)

// The inspection path is the single-run deep dive behind cmd/inspect and
// the -trace-out/-metrics-out/-heatmap flags of cmd/sweep, cmd/reproduce
// and cmd/compare: it re-runs one (network, pattern, rate) point with the
// full observability bundle attached and hands back per-node matrices,
// cycle-windowed time series, and (optionally) a Perfetto event trace.
// Because sweeps are deterministic, a re-run with the same seed observes
// exactly the simulation the sweep measured - observability costs the
// parallel grids nothing.

// InspectOpts describes one observability deep dive.
type InspectOpts struct {
	// Name labels the run in tables, heatmaps and traces.
	Name string
	// Build constructs the network (typically NetConfig.Build).
	Build func(seed int64) sim.Network
	// Width, Height shape the per-node matrices.
	Width, Height int
	// Topo, when non-nil, names nodes in traces and blame reports via
	// NodeLabel (non-mesh fabrics); Width*Height must still equal its
	// endpoint count so the matrices line up.
	Topo topo.Topology
	// Pattern drives injection. Patterns may be stateful, so give every
	// InspectOpts (and every repeated run) its own instance.
	Pattern traffic.Pattern
	// Rate is the injection rate (packets/node/cycle).
	Rate float64
	// Warmup, Measure: cycles before/while recording (RunRate defaults
	// when zero).
	Warmup, Measure int
	// Window is the sampler bin width (0 = obs.DefaultWindow).
	Window int64
	Seed   int64
	// Trace, when non-nil, receives every event - typically
	// obs.TraceFile.Tracer(pid) with a per-run pid.
	Trace func(obs.Event)
	// WhySample, when positive, attaches a provenance tracker sampling
	// the WhySample slowest packets for the tail-blame report.
	WhySample int
	// Prov, when non-nil, is a caller-built tracker (already registered
	// with telemetry, say) and wins over WhySample.
	Prov *provenance.Tracker
}

// InspectResult bundles the observability outputs of one point.
type InspectResult struct {
	Name string
	// Traced reports whether the network emits events; the related-work
	// architectures are not instrumented, so their matrices stay zero
	// while the harness-side time series still fills.
	Traced  bool
	Metrics *obs.Metrics
	Sampler *obs.Sampler
	Run     sim.Result
	// Prov is the provenance tracker when the point asked for one
	// (WhySample/Prov in InspectOpts); nil otherwise.
	Prov *provenance.Tracker
}

// Inspect runs one point with the observability bundle attached.
func Inspect(o InspectOpts) InspectResult {
	c := &obs.Collector{
		Metrics: obs.NewMetrics(o.Width, o.Height),
		Sampler: obs.NewSampler(o.Width*o.Height, o.Window),
		Trace:   o.Trace,
	}
	net := o.Build(o.Seed)
	res := InspectResult{Name: o.Name, Metrics: c.Metrics, Sampler: c.Sampler}
	_, res.Traced = net.(sim.Traceable)
	res.Prov = o.Prov
	if res.Prov == nil && o.WhySample > 0 {
		pc := provenance.Config{
			K: o.WhySample, Seed: o.Seed, Width: o.Width, Height: o.Height,
		}
		if o.Topo != nil {
			pc.Label = o.Topo.NodeLabel
		}
		res.Prov = provenance.New(pc)
	}
	res.Run = sim.RunRate(net, sim.RateConfig{
		Pattern: o.Pattern, Rate: o.Rate,
		Warmup: o.Warmup, Measure: o.Measure,
		Seed: o.Seed, Obs: c, Prov: res.Prov,
	})
	return res
}

// InspectGrid fans several inspections out over the experiment engine.
// Each point owns its metrics, sampler and network, so every matrix and
// series is bit-identical for any worker count; only the interleaving of
// events inside a shared trace file is scheduling-dependent.
func InspectGrid(opts []InspectOpts, engine exp.Options) []InspectResult {
	return exp.Run(opts, func(_ int, o InspectOpts) InspectResult {
		return Inspect(o)
	}, engine)
}

// InspectSummaryTable renders one row per inspected point: delivery,
// latency distribution, drop/retry behaviour.
func InspectSummaryTable(results []InspectResult) *stats.Table {
	t := &stats.Table{
		Title: "Inspection summary",
		Columns: []string{"network", "rate", "delivered", "mean", "p50", "p95", "p99",
			"drops", "retries", "buffered", "power-W", "saturated"},
	}
	for i := range results {
		r := &results[i]
		run := &r.Run.Run
		sat := ""
		if r.Run.Saturated {
			sat = "sat"
		}
		t.AddRow(r.Name, stats.F(r.Run.OfferedRate),
			fmt.Sprintf("%d", run.Delivered),
			stats.F(run.Latency.Mean()), stats.F(run.Latency.Percentile(50)),
			stats.F(run.Latency.Percentile(95)), stats.F(run.Latency.Percentile(99)),
			fmt.Sprintf("%d", run.Drops), fmt.Sprintf("%d", run.Retries),
			fmt.Sprintf("%d", run.BufferedPackets),
			stats.F(run.PowerW(photonic.DefaultClockGHz)), sat)
	}
	return t
}

// InspectMetricsTable merges every traced point's per-node matrices into
// one long-form table; its CSV() is the -metrics-out format.
func InspectMetricsTable(results []InspectResult) *stats.Table {
	var t *stats.Table
	for i := range results {
		r := &results[i]
		if !r.Traced {
			continue
		}
		part := r.Metrics.Table(r.Name)
		if t == nil {
			t = part
			continue
		}
		t.Rows = append(t.Rows, part.Rows...)
	}
	if t == nil {
		t = &stats.Table{Columns: []string{"network"}}
	}
	t.Title = "Per-node event matrices"
	return t
}

// InspectSeriesTable merges every point's cycle-windowed time series into
// one long-form table (all networks, traced or not).
func InspectSeriesTable(results []InspectResult) *stats.Table {
	var t *stats.Table
	for i := range results {
		part := results[i].Sampler.Table(results[i].Name)
		if t == nil {
			t = part
			continue
		}
		t.Rows = append(t.Rows, part.Rows...)
	}
	if t == nil {
		t = &stats.Table{Columns: []string{"network"}}
	}
	t.Title = "Cycle-windowed time series"
	return t
}

// InspectHeatmaps renders link-utilization and drop heatmaps for every
// traced point.
func InspectHeatmaps(results []InspectResult) string {
	var b strings.Builder
	for i := range results {
		r := &results[i]
		if !r.Traced {
			fmt.Fprintf(&b, "%s: no event instrumentation (heatmap unavailable)\n\n", r.Name)
			continue
		}
		b.WriteString(r.Metrics.UtilizationHeatmap(r.Name))
		b.WriteByte('\n')
		b.WriteString(r.Metrics.DropHeatmap(r.Name))
		b.WriteByte('\n')
	}
	return b.String()
}

// PatternByName builds a sized traffic pattern for the inspection cmds.
// Uniform is stateful, so callers must not share the returned pattern
// across concurrent runs.
func PatternByName(name string, nodes int, seed int64) (traffic.Pattern, error) {
	switch name {
	case "Uniform":
		return traffic.UniformRandom(nodes, seed), nil
	case "BitComp":
		return traffic.BitComplement(nodes), nil
	case "BitRev":
		return traffic.BitReverse(nodes), nil
	case "Shuffle":
		return traffic.Shuffle(nodes), nil
	case "Transpose":
		return traffic.Transpose(nodes), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}
