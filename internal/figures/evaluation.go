package figures

import (
	"fmt"
	"math"

	"phastlane/internal/coherence"
	"phastlane/internal/exp"
	"phastlane/internal/photonic"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/trace"
	"phastlane/internal/traffic"
)

// Fig9Opts controls the synthetic latency-versus-injection-rate sweeps.
type Fig9Opts struct {
	// Rates to sample (packets/node/cycle); nil uses the default grid.
	Rates []float64
	// Warmup and Measure cycles per point; zero uses RunRate defaults.
	Warmup, Measure int
	Seed            int64
	// Workers sizes the pool the (pattern x config) curves fan out over;
	// values below 1 use one worker per core. Results are identical for
	// any worker count.
	Workers int
	// Progress, when non-nil, receives (completed, total) curve counts.
	Progress func(done, total int)
}

// DefaultFig9Rates spans from deep pre-saturation to past the knee.
func DefaultFig9Rates() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
}

// Fig9Curve is one network's latency curve for one traffic pattern.
type Fig9Curve struct {
	Config string
	Points []sim.SweepPoint
}

// Fig9Result holds the curves of one subfigure (one pattern).
type Fig9Result struct {
	Pattern string
	Curves  []Fig9Curve
}

// Fig9 sweeps the four permutation patterns over the Fig. 9
// configurations. The (pattern x config) curves are independent, so they
// fan out over the exp worker pool; within a curve, rates run in order so
// the first-saturated-point early exit wastes no work. Every curve builds
// fresh networks and patterns, making the output bit-identical for any
// worker count.
func Fig9(opts Fig9Opts) []Fig9Result {
	rates := opts.Rates
	if rates == nil {
		rates = DefaultFig9Rates()
	}
	patterns := traffic.Patterns(64)
	configs := Fig9Configs()
	type job struct{ pi, ci int }
	jobs := make([]job, 0, len(patterns)*len(configs))
	for pi := range patterns {
		for ci := range configs {
			jobs = append(jobs, job{pi, ci})
		}
	}
	curves := exp.Run(jobs, func(_ int, j job) []sim.SweepPoint {
		// A fresh pattern per curve keeps stateful patterns (none in
		// the Fig. 9 set today) from sharing RNGs across workers.
		pattern := traffic.Patterns(64)[j.pi]
		cfg := configs[j.ci]
		var pts []sim.SweepPoint
		for _, rate := range rates {
			net := cfg.Build(opts.Seed + 1)
			r := sim.RunRate(net, sim.RateConfig{
				Pattern: pattern, Rate: rate,
				Warmup: opts.Warmup, Measure: opts.Measure,
				Seed: opts.Seed,
			})
			pts = append(pts, sim.PointFrom(rate, r, net.Nodes()))
			if r.Saturated {
				break // the curve has left the plot
			}
		}
		return pts
	}, exp.Options{Workers: opts.Workers, Progress: opts.Progress})
	out := make([]Fig9Result, len(patterns))
	for ji, j := range jobs {
		if out[j.pi].Pattern == "" {
			out[j.pi].Pattern = patterns[j.pi].Name()
		}
		out[j.pi].Curves = append(out[j.pi].Curves, Fig9Curve{Config: configs[j.ci].Name, Points: curves[ji]})
	}
	return out
}

// Fig9Table renders one pattern's curves as a rate-by-config latency table
// ("sat" marks points past saturation).
func Fig9Table(r Fig9Result) *stats.Table {
	cols := []string{"rate"}
	for _, c := range r.Curves {
		cols = append(cols, c.Config)
	}
	t := &stats.Table{Title: fmt.Sprintf("Fig. 9 (%s): avg packet latency (cycles)", r.Pattern), Columns: cols}
	maxLen := 0
	for _, c := range r.Curves {
		if len(c.Points) > maxLen {
			maxLen = len(c.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		var rate float64
		cells := make([]string, 0, len(cols))
		for _, c := range r.Curves {
			if i < len(c.Points) {
				rate = c.Points[i].Rate
			}
		}
		cells = append(cells, stats.F(rate))
		for _, c := range r.Curves {
			switch {
			case i >= len(c.Points):
				cells = append(cells, "-")
			case c.Points[i].Saturated:
				cells = append(cells, "sat")
			default:
				cells = append(cells, stats.F(c.Points[i].AvgLatency))
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig9TailTable renders one pattern's curves in long form with the tail of
// the latency distribution: one row per (rate, config) carrying
// mean/p50/p95/p99, the data behind the -csv sweep export.
func Fig9TailTable(r Fig9Result) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig. 9 (%s): latency distribution (cycles)", r.Pattern),
		Columns: []string{"rate", "config", "mean", "p50", "p95", "p99", "saturated"},
	}
	for _, c := range r.Curves {
		for _, p := range c.Points {
			sat := ""
			if p.Saturated {
				sat = "sat"
			}
			t.AddRow(stats.F(p.Rate), c.Config, stats.F(p.AvgLatency),
				stats.F(p.P50), stats.F(p.P95), stats.F(p.P99), sat)
		}
	}
	return t
}

// Fig9Plot renders one pattern's curves as an ASCII chart (log-y latency
// versus injection rate), the visual form of the paper's Fig. 9.
func Fig9Plot(r Fig9Result) *stats.Plot {
	p := &stats.Plot{
		Title:  fmt.Sprintf("Fig. 9 (%s): latency vs injection rate", r.Pattern),
		XLabel: "packets/node/cycle", YLabel: "cycles", LogY: true,
	}
	for _, c := range r.Curves {
		s := stats.Series{Label: c.Config}
		for _, pt := range c.Points {
			if !pt.Saturated {
				s.Append(pt.Rate, pt.AvgLatency)
			}
		}
		p.Series = append(p.Series, s)
	}
	return p
}

// SplashOpts controls the Fig. 10 / Fig. 11 SPLASH2 runs.
type SplashOpts struct {
	// Benchmarks filters Table 3 by name; nil runs all ten.
	Benchmarks []string
	// Messages overrides each workload's trace length (0 = full).
	Messages int
	// Limit caps each replay's cycles (0 = RunTrace default).
	Limit int64
	Seed  int64
	// Workers sizes the pool the (benchmark x config) replays fan out
	// over; values below 1 use one worker per core.
	Workers int
	// Progress, when non-nil, receives (completed, total) replay counts.
	Progress func(done, total int)
}

// SplashRow holds one benchmark's results across every configuration,
// including the Electrical3 baseline.
type SplashRow struct {
	Benchmark string
	Messages  int
	// Latency is the mean packet latency (cycles): the basis of the
	// Fig. 10 "network speedup" (Electrical3 latency / config latency).
	Latency map[string]float64
	// Makespan is the dependency-driven replay completion time.
	Makespan map[string]int64
	// PowerW is the average network power (Fig. 11).
	PowerW map[string]float64
	// Drops and Retries expose the Phastlane drop behaviour.
	Drops map[string]int64
}

// Speedup returns the Fig. 10 network speedup of cfg on this row.
func (r SplashRow) Speedup(cfg string) float64 {
	base, ok := r.Latency["Electrical3"]
	if !ok || r.Latency[cfg] == 0 {
		return math.NaN()
	}
	return base / r.Latency[cfg]
}

// Splash generates each benchmark's trace once and replays it on the
// Electrical3 baseline plus every Fig. 10 configuration. Trace generation
// fans out per benchmark and the (benchmark x config) replays fan out as
// one flat grid; each replay builds its own network and only reads the
// shared trace, so results match a serial run exactly.
func Splash(opts SplashOpts) ([]SplashRow, error) {
	var benches []coherence.Params
	for _, p := range coherence.Benchmarks() {
		if !selected(p.Name, opts.Benchmarks) {
			continue
		}
		if opts.Messages > 0 {
			p.Messages = opts.Messages
		}
		benches = append(benches, p)
	}
	engine := exp.Options{Workers: opts.Workers}

	type traceOut struct {
		tr  *trace.Trace
		err error
	}
	traces := exp.Run(benches, func(_ int, p coherence.Params) traceOut {
		tr, err := coherence.GenerateTrace(p, coherence.DefaultConfig(), opts.Seed+11)
		return traceOut{tr, err}
	}, engine)
	for i, tout := range traces {
		if tout.err != nil {
			return nil, fmt.Errorf("%s: %w", benches[i].Name, tout.err)
		}
	}

	configs := append([]NetConfig{Electrical3}, Fig10Configs()...)
	type job struct{ bi, ci int }
	jobs := make([]job, 0, len(benches)*len(configs))
	for bi := range benches {
		for ci := range configs {
			jobs = append(jobs, job{bi, ci})
		}
	}
	type replayOut struct {
		res sim.Result
		err error
	}
	engine.Progress = opts.Progress
	replays := exp.Run(jobs, func(_ int, j job) replayOut {
		cfg := configs[j.ci]
		res, err := sim.RunTrace(cfg.Build(opts.Seed+3), traces[j.bi].tr, sim.ReplayConfig{Limit: opts.Limit})
		if err != nil {
			err = fmt.Errorf("%s on %s: %w", benches[j.bi].Name, cfg.Name, err)
		}
		return replayOut{res, err}
	}, engine)

	rows := make([]SplashRow, len(benches))
	for bi, p := range benches {
		rows[bi] = SplashRow{
			Benchmark: p.Name,
			Messages:  len(traces[bi].tr.Messages),
			Latency:   map[string]float64{},
			Makespan:  map[string]int64{},
			PowerW:    map[string]float64{},
			Drops:     map[string]int64{},
		}
	}
	for ji, j := range jobs {
		out := replays[ji]
		if out.err != nil {
			return nil, out.err
		}
		row := &rows[j.bi]
		name := configs[j.ci].Name
		row.Latency[name] = out.res.Run.Latency.Mean()
		row.Makespan[name] = out.res.Makespan
		row.PowerW[name] = out.res.Run.PowerW(photonic.DefaultClockGHz)
		row.Drops[name] = out.res.Run.Drops
	}
	return rows, nil
}

func selected(name string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == name {
			return true
		}
	}
	return false
}

// Fig10Table renders the network speedups relative to Electrical3.
func Fig10Table(rows []SplashRow) *stats.Table {
	cols := []string{"benchmark"}
	for _, c := range Fig10Configs() {
		cols = append(cols, c.Name)
	}
	t := &stats.Table{Title: "Fig. 10: network speedup vs Electrical3", Columns: cols}
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for _, c := range Fig10Configs() {
			cells = append(cells, stats.F(r.Speedup(c.Name)))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig11Table renders the average network power per configuration.
func Fig11Table(rows []SplashRow) *stats.Table {
	configs := append([]NetConfig{Electrical3}, Fig10Configs()...)
	cols := []string{"benchmark"}
	for _, c := range configs {
		cols = append(cols, c.Name)
	}
	t := &stats.Table{Title: "Fig. 11: network power (W)", Columns: cols}
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for _, c := range configs {
			cells = append(cells, stats.F(r.PowerW[c.Name]))
		}
		t.AddRow(cells...)
	}
	return t
}

// Headline summarises the paper's abstract claim for the four-hop network:
// geometric-mean network speedup and mean power reduction versus
// Electrical3.
type Headline struct {
	GeoMeanSpeedup float64
	PowerReduction float64 // fraction, e.g. 0.8 for "80% less power"
}

// Summarise computes the headline numbers for a configuration.
func Summarise(rows []SplashRow, cfg string) Headline {
	var speedups []float64
	var reduction float64
	for _, r := range rows {
		speedups = append(speedups, r.Speedup(cfg))
		reduction += 1 - r.PowerW[cfg]/r.PowerW["Electrical3"]
	}
	if len(rows) == 0 {
		return Headline{}
	}
	return Headline{
		GeoMeanSpeedup: stats.GeoMean(speedups),
		PowerReduction: reduction / float64(len(rows)),
	}
}

// TraceFor exposes trace generation for tools that want to save traces.
func TraceFor(benchmark string, messages int, seed int64) (*trace.Trace, error) {
	p, err := coherence.BenchmarkByName(benchmark)
	if err != nil {
		return nil, err
	}
	if messages > 0 {
		p.Messages = messages
	}
	return coherence.GenerateTrace(p, coherence.DefaultConfig(), seed)
}
