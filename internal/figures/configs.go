// Package figures regenerates every table and figure of the paper's
// evaluation: the Section 3 design-space analyses (Figs. 4-8), the
// configuration tables (Tables 1-4), the synthetic latency/saturation
// curves (Fig. 9), and the SPLASH2 network speedup and power comparisons
// (Figs. 10-11). The cmd/ tools and the top-level benchmarks are thin
// wrappers around this package.
package figures

import (
	"phastlane/internal/core"
	"phastlane/internal/electrical"
	"phastlane/internal/sim"
	"phastlane/internal/topo"
)

// NetConfig is one named network configuration of Section 5.
type NetConfig struct {
	Name string
	// Optical distinguishes Phastlane variants from the baseline.
	Optical bool
	// Build constructs a fresh network for one run.
	Build func(seed int64) sim.Network
	// Topo, when non-nil, is the fabric behind Build for the indirect
	// topologies: deep dives use its NodeLabel for trace swimlanes and
	// blame rows. Mesh configurations leave it nil. Must be safe for
	// concurrent readers (the route compilers of the registered fabrics
	// are stateless).
	Topo topo.Topology
}

// opticalCfg builds a Phastlane variant.
func opticalCfg(name string, maxHops, buffers int) NetConfig {
	return NetConfig{
		Name:    name,
		Optical: true,
		Build: func(seed int64) sim.Network {
			cfg := core.DefaultConfig()
			cfg.MaxHops = maxHops
			cfg.BufferEntries = buffers
			cfg.Seed = seed
			return core.New(cfg)
		},
	}
}

// electricalCfg builds a baseline variant.
func electricalCfg(name string, routerDelay int) NetConfig {
	return NetConfig{
		Name: name,
		Build: func(seed int64) sim.Network {
			cfg := electrical.DefaultConfig()
			cfg.RouterDelay = routerDelay
			cfg.Seed = seed
			return electrical.New(cfg)
		},
	}
}

// Section 5 configurations. Electrical3 is the normalisation baseline.
var (
	// Optical4/5/8: pessimistic, average, optimistic device scaling
	// with 10 buffer entries.
	Optical4 = opticalCfg("Optical4", 4, 10)
	Optical5 = opticalCfg("Optical5", 5, 10)
	Optical8 = opticalCfg("Optical8", 8, 10)
	// Buffer-size variants of the four-hop network.
	Optical4B32 = opticalCfg("Optical4B32", 4, 32)
	Optical4B64 = opticalCfg("Optical4B64", 4, 64)
	Optical4IB  = opticalCfg("Optical4IB", 4, -1)
	// Electrical baselines with 3- and 2-cycle routers.
	Electrical3 = electricalCfg("Electrical3", 3)
	Electrical2 = electricalCfg("Electrical2", 2)
)

// Fig9Configs returns the configurations plotted in Fig. 9.
func Fig9Configs() []NetConfig {
	return []NetConfig{Optical4, Optical5, Optical8, Electrical3, Electrical2}
}

// Fig10Configs returns the configurations plotted in Figs. 10 and 11,
// excluding the Electrical3 baseline they are normalised against.
func Fig10Configs() []NetConfig {
	return []NetConfig{Optical4, Optical5, Optical8, Optical4B32, Optical4B64, Optical4IB, Electrical2}
}
