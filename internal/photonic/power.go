package photonic

import (
	"fmt"
	"math"

	"phastlane/internal/packet"
)

// Optical power model (paper Section 3.2, Fig. 7).
//
// The per-wavelength laser input power must be large enough that, after
// every waveguide crossing on the longest single-cycle path and after every
// multicast tap extracts its share, the remaining power still meets the
// receiver sensitivity. Fewer wavelengths mean more waveguides, more
// crossings inside each router crossbar, and exponentially more loss.
const (
	// ReceiverSensitivityMW is the minimum detectable per-wavelength
	// power at the receiver.
	ReceiverSensitivityMW = 0.010
	// MulticastTapFraction is the share of power a broadcast
	// resonator/receiver extracts at each multicast router while the
	// packet continues.
	MulticastTapFraction = 0.28
	// ReturnPathPowerMW is the per-router budget for the seven-bit drop
	// return path, charged when every return path is active.
	ReturnPathPowerMW = 2.0
)

// DataWaveguides returns the number of payload waveguides needed to carry
// the 640 packet payload bits at the given WDM degree.
func DataWaveguides(wdm int) int {
	if wdm < 1 {
		panic(fmt.Sprintf("photonic: invalid WDM degree %d", wdm))
	}
	return (packet.PayloadBits + wdm - 1) / wdm
}

// TotalWaveguides returns payload plus the two control waveguides.
func TotalWaveguides(wdm int) int {
	return DataWaveguides(wdm) + packet.ControlWaveguides
}

// CrossingsPerRouter returns the number of waveguide crossings a packet's
// waveguides suffer traversing one router: inside the crossbar each
// waveguide crosses the perpendicular waveguides of both transverse ports.
func CrossingsPerRouter(wdm int) int {
	return 2 * TotalWaveguides(wdm)
}

// LambdasPerPacket returns the number of simultaneously lit wavelengths a
// packet occupies: payload waveguides at the WDM degree, plus the 70
// control bits. It is nearly constant across WDM degrees because the bit
// count is fixed.
func LambdasPerPacket(wdm int) int {
	return DataWaveguides(wdm)*wdm + packet.ControlWaveguides*packet.ControlWDM
}

// PathEfficiency returns the fraction of injected per-wavelength power that
// survives a worst-case maxHops-link transmission: crossing losses at every
// router traversed plus multicast tap extraction at the intermediate
// routers (the final router receives what remains).
func PathEfficiency(wdm, maxHops int, crossingEff float64) float64 {
	if crossingEff <= 0 || crossingEff > 1 {
		panic(fmt.Sprintf("photonic: crossing efficiency %v out of (0,1]", crossingEff))
	}
	if maxHops < 1 {
		panic(fmt.Sprintf("photonic: maxHops %d < 1", maxHops))
	}
	crossings := maxHops * CrossingsPerRouter(wdm)
	taps := maxHops - 1
	return math.Pow(crossingEff, float64(crossings)) *
		math.Pow(1-MulticastTapFraction, float64(taps))
}

// RequiredInputPowerMW returns the per-wavelength laser power needed so the
// worst-case path still meets receiver sensitivity.
func RequiredInputPowerMW(wdm, maxHops int, crossingEff float64) float64 {
	return ReceiverSensitivityMW / PathEfficiency(wdm, maxHops, crossingEff)
}

// PeakOpticalPowerW returns the chip-wide peak optical input power in watts
// for an 8x8 network: the worst single cycle has every input port of every
// router receiving a turning multicast packet from its nearest neighbour
// while all drop return paths signal (paper Section 3.2).
func PeakOpticalPowerW(wdm, maxHops int, crossingEff float64) float64 {
	return PeakOpticalPowerWFor(64, wdm, maxHops, crossingEff)
}

// PeakOpticalPowerWFor is PeakOpticalPowerW for an arbitrary router count.
func PeakOpticalPowerWFor(routers, wdm, maxHops int, crossingEff float64) float64 {
	perLambdaMW := RequiredInputPowerMW(wdm, maxHops, crossingEff)
	activeLambdas := float64(routers) * 4 * float64(LambdasPerPacket(wdm))
	returnMW := float64(routers) * ReturnPathPowerMW
	return (activeLambdas*perLambdaMW + returnMW) / 1000.0
}

// PowerContour evaluates PeakOpticalPowerW over a grid for Fig. 7: one row
// per (wdm, maxHops) pair, one column per crossing efficiency.
type ContourPoint struct {
	WDM         int
	MaxHops     int
	CrossingEff float64
	PowerW      float64
}

// Contour sweeps the peak-power model over the given axes.
func Contour(wdms, hops []int, effs []float64) []ContourPoint {
	var pts []ContourPoint
	for _, w := range wdms {
		for _, h := range hops {
			for _, e := range effs {
				pts = append(pts, ContourPoint{
					WDM: w, MaxHops: h, CrossingEff: e,
					PowerW: PeakOpticalPowerW(w, h, e),
				})
			}
		}
	}
	return pts
}

// TransmissionEnergyPJ estimates the optical energy spent by one packet
// transmission attempt that covers the given number of links, under a
// network provisioned for maxHops links per cycle at the given crossing
// efficiency. The laser runs at the worst-case provisioned power for the
// cycle (one 250 ps slot at 4 GHz) on the packet's wavelengths; this is
// what makes the 8-hop configuration markedly more power-hungry than the
// 4-hop one even for identical traffic (paper Fig. 11).
func TransmissionEnergyPJ(wdm, maxHops int, crossingEff float64) float64 {
	perLambdaMW := RequiredInputPowerMW(wdm, maxHops, crossingEff)
	lambdas := float64(LambdasPerPacket(wdm))
	cycleNS := 1.0 / DefaultClockGHz
	// mW * ns = pJ.
	return perLambdaMW * lambdas * cycleNS
}
