package photonic

import (
	"fmt"
	"math"
)

// Link-budget model: the peak-power analysis of Fig. 7 aggregates all
// losses into a single "crossing efficiency". This file decomposes the
// optical path into its published per-component insertion losses so the
// aggregate can be cross-checked against device numbers (Bogaerts et al.
// for crossings, ring drop/through losses, coupler and bend losses) and so
// the wall-plug laser power - what the chip actually draws - can be derived
// from the in-waveguide optical power.

// LossBudget itemises the insertion losses of one worst-case packet path,
// in decibels (positive numbers are losses).
type LossBudget struct {
	// CouplerDB is the laser-to-chip coupling loss, paid once.
	CouplerDB float64
	// CrossingDB is per waveguide crossing.
	CrossingDB float64
	// ThroughRingDB is per off-resonance ring passed.
	ThroughRingDB float64
	// DropRingDB is the on-resonance drop (turn) loss, per turn.
	DropRingDB float64
	// BendDB is per 90-degree waveguide bend.
	BendDB float64
	// PropagationDBPerMM is the waveguide attenuation.
	PropagationDBPerMM float64
	// ReceiverPenaltyDB is margin for detector non-idealities.
	ReceiverPenaltyDB float64
}

// DefaultLossBudget returns 16 nm-era component losses from the
// literature the paper cites: ~0.09 dB/crossing (matching the 98% crossing
// efficiency operating point), low-loss SOI propagation, and sub-0.1 dB
// through-ring losses.
func DefaultLossBudget() LossBudget {
	return LossBudget{
		CouplerDB:          1.0,
		CrossingDB:         EfficiencyToDB(0.98),
		ThroughRingDB:      0.01,
		DropRingDB:         0.5,
		BendDB:             0.02,
		PropagationDBPerMM: 0.10,
		ReceiverPenaltyDB:  1.0,
	}
}

// EfficiencyToDB converts a per-element power efficiency to dB loss.
func EfficiencyToDB(eff float64) float64 {
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("photonic: efficiency %v out of (0,1]", eff))
	}
	return -10 * math.Log10(eff)
}

// DBToEfficiency converts a dB loss to a power efficiency.
func DBToEfficiency(db float64) float64 { return math.Pow(10, -db/10) }

// PathLoss describes one end-to-end worst-case packet path through the
// Phastlane mesh for budgeting purposes.
type PathLoss struct {
	Links     int // inter-router links traversed
	Crossings int // waveguide crossings inside routers
	Turns     int // drop-ring turns
	Taps      int // multicast taps (power extraction)
	ThruRings int // off-resonance rings passed
	LengthMM  float64
}

// WorstCasePath builds the Fig. 7 worst case for a given WDM degree and
// per-cycle hop budget: every router crossed contributes its crossbar
// crossings, one turn, a multicast tap, and the ring loading of its ports.
func WorstCasePath(wdm, maxHops int) PathLoss {
	if maxHops < 1 {
		panic(fmt.Sprintf("photonic: maxHops %d", maxHops))
	}
	return PathLoss{
		Links:     maxHops,
		Crossings: maxHops * CrossingsPerRouter(wdm),
		Turns:     1, // dimension-order: at most one turn per journey
		Taps:      maxHops - 1,
		ThruRings: maxHops * wdm, // each port's resonator string
		LengthMM:  float64(maxHops) * TilePitchMM,
	}
}

// TotalDB sums the path's losses under the budget, excluding the multicast
// taps (which are a designed power split, not a loss, and are handled by
// MulticastTapFraction).
func (b LossBudget) TotalDB(p PathLoss) float64 {
	return b.CouplerDB +
		float64(p.Crossings)*b.CrossingDB +
		float64(p.Turns)*b.DropRingDB +
		float64(p.ThruRings)*b.ThroughRingDB +
		p.LengthMM*b.PropagationDBPerMM +
		b.ReceiverPenaltyDB
}

// RequiredLaserPowerMW returns the per-wavelength laser output needed to
// meet receiver sensitivity over the path, including the multicast tap
// splits.
func (b LossBudget) RequiredLaserPowerMW(p PathLoss) float64 {
	eff := DBToEfficiency(b.TotalDB(p))
	for i := 0; i < p.Taps; i++ {
		eff *= 1 - MulticastTapFraction
	}
	return ReceiverSensitivityMW / eff
}

// WallPlugPowerW converts in-waveguide optical power to electrical power at
// the laser, using the wall-plug efficiency of the hybrid silicon lasers
// the paper's infrastructure assumes.
func WallPlugPowerW(opticalW float64) float64 {
	const wallPlugEfficiency = 0.15
	return opticalW / wallPlugEfficiency
}

// BudgetConsistentWithFig7 cross-checks the itemised budget against the
// aggregate crossing-efficiency model: with crossings dominating, the two
// must agree within a small factor. It returns the ratio
// (itemised / aggregate) of required per-wavelength powers.
func BudgetConsistentWithFig7(wdm, maxHops int, crossingEff float64) float64 {
	b := DefaultLossBudget()
	b.CrossingDB = EfficiencyToDB(crossingEff)
	itemised := b.RequiredLaserPowerMW(WorstCasePath(wdm, maxHops))
	aggregate := RequiredInputPowerMW(wdm, maxHops, crossingEff)
	return itemised / aggregate
}
