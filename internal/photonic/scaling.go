// Package photonic models the optical device physics behind the Phastlane
// router: technology-scaling trends for transmit/receive delays (Fig. 4),
// router critical-path delays (Fig. 5), the number of hops traversable in a
// 4 GHz cycle (Fig. 6), peak optical input power (Fig. 7), and router area
// (Fig. 8).
//
// The paper derives its 16 nm numbers by curve-fitting the 45-to-22 nm
// component analysis of Kirman et al. with logarithmic (optimistic), linear
// (average) and exponential (pessimistic) extrapolations. We reproduce the
// published 16 nm endpoints exactly - transmit 8.0/13.0/19.4 ps, receive
// 1.8/2.7/3.7 ps, waveguide propagation fixed at 10.45 ps/mm - and anchor
// the fits at the same 45 nm starting point so the intermediate nodes trace
// the same three curve shapes.
package photonic

import (
	"fmt"
	"math"
)

// Scenario selects a device-delay scaling assumption for 16 nm.
type Scenario int

// Scaling scenarios (paper Section 3.1). Average is the paper's default.
const (
	Optimistic Scenario = iota
	Average
	Pessimistic
	NumScenarios
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case Optimistic:
		return "optimistic"
	case Average:
		return "average"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Scenarios lists all three scaling assumptions in paper order.
func Scenarios() []Scenario { return []Scenario{Optimistic, Average, Pessimistic} }

// Physical constants shared by all models.
const (
	// WaveguidePsPerMM is the on-chip waveguide propagation delay,
	// assumed constant across technology nodes (paper Section 3.1,
	// after Kirman et al.).
	WaveguidePsPerMM = 10.45
	// TilePitchMM is the center-to-center router spacing of the 8x8
	// mesh: 64 single-core tiles of ~3.5 mm^2 plus wiring overhead.
	TilePitchMM = 2.0
	// RouterSpanMM is the optical-switch internal traversal distance,
	// already included in TilePitchMM; the remainder is inter-router
	// waveguide.
	RouterSpanMM = 0.9
	// RegisterSkewPs is register overhead plus clock skew charged once
	// per clock cycle of transmission (paper Section 3.1).
	RegisterSkewPs = 12.0
	// DefaultClockGHz is the processor and network clock.
	DefaultClockGHz = 4.0
)

// anchor45nm holds the 45 nm starting points for the curve fits. The
// absolute values follow the aggregate transmit (modulator driver +
// modulation) and receive (detector + amplifier) delays of the Kirman et
// al. analysis.
const (
	transmit45Ps  = 38.0
	receive45Ps   = 7.3
	resonator45Ps = 26.0
)

// target16nm holds the published 16 nm endpoints per scenario.
var (
	transmit16Ps  = [NumScenarios]float64{8.0, 13.0, 19.4}
	receive16Ps   = [NumScenarios]float64{1.8, 2.7, 3.7}
	resonator16Ps = [NumScenarios]float64{2.5, 9.0, 12.5}
)

// DeviceDelays aggregates the optical component delays at one technology
// node under one scaling scenario. All values are picoseconds.
type DeviceDelays struct {
	// TransmitPs is the end-to-end transmit delay: modulator driver
	// plus electro-optic modulation.
	TransmitPs float64
	// ReceivePs is the end-to-end receive delay: detection plus
	// amplification to a digital level.
	ReceivePs float64
	// ResonatorDrivePs is the time to charge a ring resonator's driver
	// to switch it on or off resonance; it dominates the router's
	// critical paths (paper Fig. 5).
	ResonatorDrivePs float64
}

// DelaysAt returns the device delays at the given technology node
// (nanometres, 16..45) under scenario s. The three scenarios interpolate
// between the shared 45 nm anchor and their 16 nm endpoints with
// logarithmic, linear, and exponential shapes respectively, mirroring the
// paper's curve fits. Nodes outside [16, 45] extrapolate along the same
// curves.
func DelaysAt(s Scenario, nodeNM float64) DeviceDelays {
	return DeviceDelays{
		TransmitPs:       fit(s, nodeNM, transmit45Ps, transmit16Ps[s]),
		ReceivePs:        fit(s, nodeNM, receive45Ps, receive16Ps[s]),
		ResonatorDrivePs: fit(s, nodeNM, resonator45Ps, resonator16Ps[s]),
	}
}

// Delays16 returns the 16 nm device delays for scenario s; this is what
// every other model in the package consumes.
func Delays16(s Scenario) DeviceDelays { return DelaysAt(s, 16) }

// fit interpolates from (45nm, v45) to (16nm, v16) along the scenario's
// curve family: optimistic d = a + b*ln(node) (delay falls fastest, then
// flattens), average d = a + b*node (straight line), pessimistic
// d = a*exp(b*node) (delay falls slowest approaching 16 nm).
func fit(s Scenario, node, v45, v16 float64) float64 {
	switch s {
	case Optimistic:
		// v = a + b*ln(node); solve for the two anchors.
		b := (v45 - v16) / (math.Log(45) - math.Log(16))
		a := v16 - b*math.Log(16)
		return a + b*math.Log(node)
	case Pessimistic:
		// v = a * exp(b*node).
		b := math.Log(v45/v16) / (45 - 16)
		a := v16 / math.Exp(b*16)
		return a * math.Exp(b*node)
	default:
		// Linear.
		b := (v45 - v16) / (45 - 16)
		a := v16 - b*16
		return a + b*node
	}
}
