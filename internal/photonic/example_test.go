package photonic_test

import (
	"fmt"

	"phastlane/internal/photonic"
)

// Example reproduces the paper's headline Fig. 6 result: the number of
// mesh links a packet can cover in one 4 GHz cycle under each device
// scaling assumption.
func Example() {
	for _, s := range photonic.Scenarios() {
		fmt.Printf("%s: %d hops\n", s,
			photonic.MaxHopsPerCycle(s, 64, photonic.DefaultClockGHz))
	}
	// Output:
	// optimistic: 8 hops
	// average: 5 hops
	// pessimistic: 4 hops
}

// ExamplePeakOpticalPowerW evaluates the Fig. 7 peak-power model at the
// paper's chosen operating point.
func ExamplePeakOpticalPowerW() {
	w := photonic.PeakOpticalPowerW(64, 4, 0.98)
	fmt.Printf("within budget: %v\n", w < 40)
	// Output:
	// within budget: true
}
