package photonic

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// Fig. 4: the 16 nm endpoints must match the published ranges exactly.
func TestFig4Endpoints(t *testing.T) {
	cases := []struct {
		s        Scenario
		tx, rx   float64
		txTol    float64
		scenario string
	}{
		{Optimistic, 8.0, 1.8, 1e-9, "optimistic"},
		{Average, 13.0, 2.7, 1e-9, "average"},
		{Pessimistic, 19.4, 3.7, 1e-9, "pessimistic"},
	}
	for _, tc := range cases {
		d := Delays16(tc.s)
		if !almost(d.TransmitPs, tc.tx, tc.txTol) {
			t.Errorf("%s transmit = %.2f ps, want %.2f", tc.scenario, d.TransmitPs, tc.tx)
		}
		if !almost(d.ReceivePs, tc.rx, tc.txTol) {
			t.Errorf("%s receive = %.2f ps, want %.2f", tc.scenario, d.ReceivePs, tc.rx)
		}
	}
}

// All three curves share the 45 nm anchor.
func TestFig4SharedAnchor(t *testing.T) {
	for _, s := range Scenarios() {
		d := DelaysAt(s, 45)
		if !almost(d.TransmitPs, transmit45Ps, 1e-9) {
			t.Errorf("%s transmit at 45nm = %.2f, want %.2f", s, d.TransmitPs, transmit45Ps)
		}
		if !almost(d.ReceivePs, receive45Ps, 1e-9) {
			t.Errorf("%s receive at 45nm = %.2f, want %.2f", s, d.ReceivePs, receive45Ps)
		}
	}
}

// Delays shrink monotonically as the node scales down, and the scenarios
// order optimistic <= average <= pessimistic at every node below 45 nm.
func TestFig4Monotonicity(t *testing.T) {
	for _, s := range Scenarios() {
		prev := math.Inf(1)
		for node := 45.0; node >= 16; node -= 1 {
			d := DelaysAt(s, node)
			if d.TransmitPs > prev+1e-9 {
				t.Fatalf("%s transmit not monotone at %v nm", s, node)
			}
			prev = d.TransmitPs
		}
	}
	// The three fits agree over the measured 45-22 nm region and only
	// diverge in the extrapolation below it, so scenario ordering is
	// checked in the extrapolated region only.
	for node := 16.0; node <= 22; node += 0.5 {
		o, a, p := DelaysAt(Optimistic, node), DelaysAt(Average, node), DelaysAt(Pessimistic, node)
		if o.TransmitPs > a.TransmitPs+1e-9 || a.TransmitPs > p.TransmitPs+1e-9 {
			t.Fatalf("scenario ordering violated at %v nm: %v %v %v",
				node, o.TransmitPs, a.TransmitPs, p.TransmitPs)
		}
	}
}

// Fig. 5: ordering of the critical paths - accepting is fastest, passing is
// slowest - and WDM degree has little impact.
func TestFig5CriticalPathOrdering(t *testing.T) {
	for _, s := range Scenarios() {
		for _, wdm := range []int{32, 64, 128} {
			cp := Paths(s, wdm)
			if !(cp.PacketAccept < cp.PacketBlock) {
				t.Errorf("%s/%dλ: PA %.1f !< PB %.1f", s, wdm, cp.PacketAccept, cp.PacketBlock)
			}
			if !(cp.PacketBlock < cp.PacketPass) {
				t.Errorf("%s/%dλ: PB %.1f !< PP %.1f", s, wdm, cp.PacketBlock, cp.PacketPass)
			}
			if cp.PacketInterimAccept <= cp.PacketAccept {
				t.Errorf("%s/%dλ: PIA %.1f <= PA %.1f", s, wdm, cp.PacketInterimAccept, cp.PacketAccept)
			}
		}
		// Little impact: quadrupling WDM moves PP by well under 10%.
		lo, hi := Paths(s, 32).PacketPass, Paths(s, 128).PacketPass
		if (hi-lo)/lo > 0.10 {
			t.Errorf("%s: PP moves %.1f%% from 32λ to 128λ, want <10%%", s, 100*(hi-lo)/lo)
		}
	}
}

// Fig. 5: resonator drive dominates the pass path for the average and
// pessimistic scenarios.
func TestFig5ResonatorDriveDominates(t *testing.T) {
	for _, s := range []Scenario{Average, Pessimistic} {
		d := Delays16(s)
		cp := Paths(s, 64)
		if 2*d.ResonatorDrivePs < cp.PacketPass/2 {
			t.Errorf("%s: resonator drive %.1f ps is not the dominant share of PP %.1f ps",
				s, 2*d.ResonatorDrivePs, cp.PacketPass)
		}
	}
}

// Fig. 6: the headline hop counts - 8, 5 and 4 at 4 GHz - for every WDM
// degree the paper sweeps.
func TestFig6MaxHops(t *testing.T) {
	want := map[Scenario]int{Optimistic: 8, Average: 5, Pessimistic: 4}
	for _, s := range Scenarios() {
		for _, wdm := range []int{32, 64, 128} {
			if got := MaxHopsPerCycle(s, wdm, DefaultClockGHz); got != want[s] {
				t.Errorf("MaxHopsPerCycle(%s, %dλ) = %d, want %d", s, wdm, got, want[s])
			}
		}
	}
	hops := HopsByScenario()
	for s, w := range want {
		if hops[s] != w {
			t.Errorf("HopsByScenario[%s] = %d, want %d", s, hops[s], w)
		}
	}
}

// Slower clocks allow more hops per cycle; a fast enough clock allows none.
func TestMaxHopsClockScaling(t *testing.T) {
	at4 := MaxHopsPerCycle(Average, 64, 4)
	at2 := MaxHopsPerCycle(Average, 64, 2)
	if at2 <= at4 {
		t.Errorf("halving the clock should raise hop count: %d !> %d", at2, at4)
	}
	if got := MaxHopsPerCycle(Average, 64, 40); got != 0 {
		t.Errorf("40 GHz should allow 0 hops, got %d", got)
	}
}

// Fig. 7 calibration anchors from the paper's text.
func TestFig7PowerAnchors(t *testing.T) {
	// 64λ, 4 hops, 98% crossing efficiency => ~32 W.
	if p := PeakOpticalPowerW(64, 4, 0.98); !almost(p, 32, 5) {
		t.Errorf("64λ/4hop/98%% = %.1f W, want ~32", p)
	}
	// 128λ, 4 hops, 98% => ~15 W.
	if p := PeakOpticalPowerW(128, 4, 0.98); !almost(p, 15, 3) {
		t.Errorf("128λ/4hop/98%% = %.1f W, want ~15", p)
	}
	// 128λ, 5 hops, 98% => ~32 W (same budget buys one more hop).
	if p := PeakOpticalPowerW(128, 5, 0.98); !almost(p, 32, 6) {
		t.Errorf("128λ/5hop/98%% = %.1f W, want ~32", p)
	}
	// 32λ at 98% and 4 hops is impractical (far above 32 W)...
	if p := PeakOpticalPowerW(32, 4, 0.98); p < 100 {
		t.Errorf("32λ/4hop/98%% = %.1f W, want impractically high (>100)", p)
	}
	// ...but 99% efficiency or a 2-hop limit brings it back down.
	if p := PeakOpticalPowerW(32, 4, 0.99); p > 40 {
		t.Errorf("32λ/4hop/99%% = %.1f W, want reasonable (<40)", p)
	}
	if p := PeakOpticalPowerW(32, 2, 0.98); p > 40 {
		t.Errorf("32λ/2hop/98%% = %.1f W, want reasonable (<40)", p)
	}
}

// Peak power grows with hops and shrinks with crossing efficiency.
func TestFig7Monotonicity(t *testing.T) {
	f := func(wdmSel, hopSel uint8) bool {
		wdms := []int{32, 64, 128}
		wdm := wdms[int(wdmSel)%len(wdms)]
		hops := 2 + int(hopSel)%6
		base := PeakOpticalPowerW(wdm, hops, 0.98)
		return PeakOpticalPowerW(wdm, hops+1, 0.98) > base &&
			PeakOpticalPowerW(wdm, hops, 0.99) < base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWaveguideCounts(t *testing.T) {
	// Table 1: 10 payload waveguides at 64-way WDM.
	if got := DataWaveguides(64); got != 10 {
		t.Errorf("DataWaveguides(64) = %d, want 10", got)
	}
	if got := TotalWaveguides(64); got != 12 {
		t.Errorf("TotalWaveguides(64) = %d, want 12", got)
	}
	if got := DataWaveguides(128); got != 5 {
		t.Errorf("DataWaveguides(128) = %d, want 5", got)
	}
	if got := DataWaveguides(32); got != 20 {
		t.Errorf("DataWaveguides(32) = %d, want 20", got)
	}
	// λ per packet is constant across WDM (fixed bit count).
	if LambdasPerPacket(32) != LambdasPerPacket(64) || LambdasPerPacket(64) != LambdasPerPacket(128) {
		t.Error("LambdasPerPacket should be WDM-independent for full waveguides")
	}
	if got := LambdasPerPacket(64); got != 710 {
		t.Errorf("LambdasPerPacket(64) = %d, want 710", got)
	}
}

func TestPathEfficiencyBounds(t *testing.T) {
	f := func(hopSel, wdmSel uint8) bool {
		wdms := []int{16, 32, 64, 128, 256}
		e := PathEfficiency(wdms[int(wdmSel)%len(wdms)], 1+int(hopSel)%8, 0.985)
		return e > 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Fig. 8: 64λ is the area sweet spot; the paper's tile-fit statements hold.
func TestFig8AreaSweetSpot(t *testing.T) {
	candidates := []int{16, 32, 64, 128, 256}
	if got := SweetSpotWDM(candidates); got != 64 {
		for _, w := range candidates {
			t.Logf("area(%dλ) = %.2f mm²", w, AreaAt(w).TotalMM2)
		}
		t.Fatalf("SweetSpotWDM = %d, want 64", got)
	}
	if !FitsTile(64, TileAreaSingleCoreMM2) {
		t.Errorf("64λ router (%.2f mm²) should fit the 3.5 mm² single-core tile", AreaAt(64).TotalMM2)
	}
	if FitsTile(32, TileAreaSingleCoreMM2) {
		t.Errorf("32λ router (%.2f mm²) should NOT fit the single-core tile", AreaAt(32).TotalMM2)
	}
	if !FitsTile(32, TileAreaDualCoreMM2) {
		t.Errorf("32λ router (%.2f mm²) should fit the 4.5 mm² dual-core tile", AreaAt(32).TotalMM2)
	}
	if !FitsTile(128, TileAreaQuadCoreMM2) {
		t.Errorf("128λ router (%.2f mm²) should fit the 6.5 mm² quad-core tile", AreaAt(128).TotalMM2)
	}
}

// Fig. 8 component trends: internal length falls with WDM, port length
// rises linearly.
func TestFig8ComponentTrends(t *testing.T) {
	prev := AreaAt(16)
	for _, wdm := range []int{32, 64, 128, 256} {
		cur := AreaAt(wdm)
		if cur.InternalLengthUM > prev.InternalLengthUM {
			t.Errorf("internal length rose from %dλ to %dλ", prev.WDM, wdm)
		}
		if cur.PortLengthUM <= prev.PortLengthUM {
			t.Errorf("port length did not rise from %dλ to %dλ", prev.WDM, wdm)
		}
		prev = cur
	}
	// Port length linear in WDM.
	if got, want := AreaAt(128).PortLengthUM, 2*AreaAt(64).PortLengthUM; !almost(got, want, 1e-9) {
		t.Errorf("port length not linear: %v vs %v", got, want)
	}
}

func TestTransmissionEnergyGrowsWithProvisionedHops(t *testing.T) {
	e4 := TransmissionEnergyPJ(64, 4, 0.98)
	e5 := TransmissionEnergyPJ(64, 5, 0.98)
	e8 := TransmissionEnergyPJ(64, 8, 0.98)
	if !(e4 < e5 && e5 < e8) {
		t.Errorf("transmission energy should grow with provisioned hops: %v %v %v", e4, e5, e8)
	}
	// The 8-hop network is markedly (several times) more expensive per
	// transmission than the 4-hop one - the Fig. 11 effect.
	if e8/e4 < 2 {
		t.Errorf("8-hop/4-hop energy ratio %.2f, want >= 2", e8/e4)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("DataWaveguides(0)", func() { DataWaveguides(0) })
	mustPanic("PathEfficiency eff>1", func() { PathEfficiency(64, 4, 1.5) })
	mustPanic("PathEfficiency hops<1", func() { PathEfficiency(64, 0, 0.98) })
	mustPanic("MaxHopsPerCycle clock<=0", func() { MaxHopsPerCycle(Average, 64, 0) })
	mustPanic("AreaAt(0)", func() { AreaAt(0) })
	mustPanic("SweetSpotWDM empty", func() { SweetSpotWDM(nil) })
}

func TestContourGrid(t *testing.T) {
	pts := Contour([]int{32, 64}, []int{2, 4}, []float64{0.98, 0.99})
	if len(pts) != 8 {
		t.Fatalf("contour has %d points, want 8", len(pts))
	}
	for _, p := range pts {
		if p.PowerW <= 0 {
			t.Errorf("non-positive power at %+v", p)
		}
	}
}

func TestScenarioString(t *testing.T) {
	if Optimistic.String() != "optimistic" || Scenario(9).String() == "" {
		t.Error("Scenario.String wrong")
	}
}
