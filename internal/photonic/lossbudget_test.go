package photonic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEfficiencyDBRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		eff := 0.5 + float64(raw)/512 // (0.5, 1.0)
		back := DBToEfficiency(EfficiencyToDB(eff))
		return math.Abs(back-eff) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := EfficiencyToDB(1.0); got != 0 {
		t.Errorf("lossless element has %v dB", got)
	}
	// 50% efficiency is the textbook ~3.01 dB.
	if got := EfficiencyToDB(0.5); math.Abs(got-3.0103) > 0.001 {
		t.Errorf("half power = %v dB, want ~3.01", got)
	}
}

func TestEfficiencyToDBPanics(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EfficiencyToDB(%v) did not panic", bad)
				}
			}()
			EfficiencyToDB(bad)
		}()
	}
}

func TestWorstCasePathScales(t *testing.T) {
	p4 := WorstCasePath(64, 4)
	p8 := WorstCasePath(64, 8)
	if p8.Crossings != 2*p4.Crossings {
		t.Errorf("crossings %d vs %d: not linear in hops", p4.Crossings, p8.Crossings)
	}
	if p4.Turns != 1 {
		t.Errorf("dimension-order path has %d turns, want 1", p4.Turns)
	}
	if p8.Taps != 7 || p4.Taps != 3 {
		t.Errorf("taps = %d/%d, want 3/7", p4.Taps, p8.Taps)
	}
	if p4.LengthMM != 4*TilePitchMM {
		t.Errorf("path length %v", p4.LengthMM)
	}
}

func TestTotalDBMonotoneInPath(t *testing.T) {
	b := DefaultLossBudget()
	small := WorstCasePath(64, 2)
	big := WorstCasePath(64, 6)
	if b.TotalDB(big) <= b.TotalDB(small) {
		t.Error("longer path should lose more")
	}
	if b.TotalDB(small) <= b.CouplerDB+b.ReceiverPenaltyDB {
		t.Error("path losses missing")
	}
}

func TestRequiredLaserPowerIncludesTaps(t *testing.T) {
	b := DefaultLossBudget()
	p := WorstCasePath(64, 4)
	withTaps := b.RequiredLaserPowerMW(p)
	p.Taps = 0
	without := b.RequiredLaserPowerMW(p)
	if withTaps <= without {
		t.Error("multicast taps should raise required power")
	}
}

// The itemised dB budget and the aggregate Fig. 7 crossing-efficiency model
// must agree on required power within a small factor (the itemised model
// adds coupler/ring/propagation terms the aggregate folds into margin).
func TestBudgetConsistentWithFig7(t *testing.T) {
	for _, wdm := range []int{32, 64, 128} {
		for _, hops := range []int{2, 4, 5} {
			ratio := BudgetConsistentWithFig7(wdm, hops, 0.98)
			if ratio < 0.8 || ratio > 12 {
				t.Errorf("wdm %d hops %d: itemised/aggregate power ratio %.2f out of band",
					wdm, hops, ratio)
			}
		}
	}
}

func TestWallPlugPower(t *testing.T) {
	if got := WallPlugPowerW(15); math.Abs(got-100) > 1 {
		t.Errorf("15 W optical -> %v W wall-plug, want ~100 (15%% efficiency)", got)
	}
}
