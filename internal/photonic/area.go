package photonic

import "fmt"

// Router area model (paper Section 3.3, Fig. 8).
//
// The WDM degree pulls router area in two directions: more wavelengths per
// waveguide means fewer waveguides and turn resonators (shrinking the
// internal crossbar), but each input port must string one resonator/receiver
// pair per wavelength along its waveguides (stretching the port). The total
// router footprint is the square of the sum of both spans; the sweet spot
// for an 80-byte packet falls at 64 wavelengths.
const (
	// internalUMPerWaveguide is the crossbar span contributed per
	// waveguide: pitch, turn resonators, and crossing keep-out.
	internalUMPerWaveguide = 75.0
	// portUMPerLambda is the port length contributed per wavelength:
	// one resonator/receiver pair plus spacing.
	portUMPerLambda = 7.0
)

// Tile areas from the Kumar et al. methodology (paper Section 3.3), mm^2.
const (
	TileAreaSingleCoreMM2 = 3.5
	TileAreaDualCoreMM2   = 4.5
	TileAreaQuadCoreMM2   = 6.5
)

// RouterArea describes the footprint of one optical router at a WDM degree.
type RouterArea struct {
	WDM int
	// InternalLengthUM is the crossbar span from waveguides and turn
	// resonators (decreases with WDM).
	InternalLengthUM float64
	// PortLengthUM is the length of one input/output port's
	// resonator/receiver string (increases with WDM).
	PortLengthUM float64
	// SpanUM is the router's edge length: internal span plus a port on
	// either side.
	SpanUM float64
	// TotalMM2 is the router footprint.
	TotalMM2 float64
}

// AreaAt evaluates the router area model at the given WDM degree.
func AreaAt(wdm int) RouterArea {
	if wdm < 1 {
		panic(fmt.Sprintf("photonic: invalid WDM degree %d", wdm))
	}
	a := RouterArea{
		WDM:              wdm,
		InternalLengthUM: internalUMPerWaveguide * float64(TotalWaveguides(wdm)),
		PortLengthUM:     portUMPerLambda * float64(wdm),
	}
	a.SpanUM = a.InternalLengthUM + 2*a.PortLengthUM
	a.TotalMM2 = (a.SpanUM / 1000) * (a.SpanUM / 1000)
	return a
}

// FitsTile reports whether the router at the given WDM degree fits under
// the processor tile of the given area, so the optical die does not force
// the processor die to grow (paper Section 3.3).
func FitsTile(wdm int, tileMM2 float64) bool {
	return AreaAt(wdm).TotalMM2 <= tileMM2
}

// SweetSpotWDM returns the WDM degree among candidates with the smallest
// router footprint. With the paper's packet geometry this is 64.
func SweetSpotWDM(candidates []int) int {
	if len(candidates) == 0 {
		panic("photonic: SweetSpotWDM with no candidates")
	}
	best := candidates[0]
	bestArea := AreaAt(best).TotalMM2
	for _, w := range candidates[1:] {
		if a := AreaAt(w).TotalMM2; a < bestArea {
			best, bestArea = w, a
		}
	}
	return best
}
