package photonic

import (
	"fmt"

	"phastlane/internal/packet"
)

// CriticalPaths holds the delays of the four internal router operations the
// paper analyses (Fig. 5), in picoseconds.
type CriticalPaths struct {
	// PacketPass: a packet passes to an output port, first forcing any
	// contending lower-priority packets to be received at their input
	// ports: receive control bits, drive the blockers' C0 Group-1
	// resonators, those drive the blockers' receive resonators, then
	// traverse the remainder of the switch.
	PacketPass float64
	// PacketBlock: as PacketPass, but the switch traversal is replaced
	// by receiving the blocked packet.
	PacketBlock float64
	// PacketAccept: the packet is accepted at its destination: receive
	// control, drive the receive resonators, receive the packet.
	PacketAccept float64
	// PacketInterimAccept: as PacketAccept at an interim node, plus the
	// latch that arms the relaunch.
	PacketInterimAccept float64
}

// interimLatchPs is the extra write-enable latch delay of an interim
// accept over a destination accept.
const interimLatchPs = 0.5

// resonatorLoadPsPerLambda models the added drive delay from the larger
// ring-loading of ports with more resonator/receiver pairs per waveguide.
// It is deliberately tiny: the paper observes that the number of
// wavelengths has little impact on delay (Fig. 5).
const resonatorLoadPsPerLambda = 0.004

// Paths returns the four critical-path delays for scenario s with the given
// payload WDM degree.
func Paths(s Scenario, wdm int) CriticalPaths {
	d := Delays16(s)
	drive := d.ResonatorDrivePs + resonatorLoadPsPerLambda*float64(wdm)
	// Control-bit receive + the two chained resonator drives shared by
	// the pass and block paths.
	control := d.ReceivePs + 2*drive
	traverse := RouterSpanMM * WaveguidePsPerMM
	return CriticalPaths{
		PacketPass:          control + traverse,
		PacketBlock:         control + d.ReceivePs,
		PacketAccept:        d.ReceivePs + drive + d.ReceivePs,
		PacketInterimAccept: d.ReceivePs + drive + d.ReceivePs + interimLatchPs,
	}
}

// LinkPropagationPs is the inter-router waveguide delay per hop, excluding
// the in-router span already charged to PacketPass.
func LinkPropagationPs() float64 {
	return (TilePitchMM - RouterSpanMM) * WaveguidePsPerMM
}

// MaxHopsPerCycle returns the largest number of links a packet can traverse
// in one clock cycle at clockGHz under scenario s with the given WDM degree,
// accounting for the worst case of contention at every router and late
// arrival relative to competing packets (paper Section 3.1): with X routers
// between source and destination there are X PacketPass delays and X+1 link
// propagations, plus the source modulator drive, the destination
// PacketAccept, and register/skew overhead.
func MaxHopsPerCycle(s Scenario, wdm int, clockGHz float64) int {
	if clockGHz <= 0 {
		panic(fmt.Sprintf("photonic: non-positive clock %v GHz", clockGHz))
	}
	budget := 1000.0 / clockGHz // ps per cycle
	d := Delays16(s)
	cp := Paths(s, wdm)
	hops := 0
	for x := 0; ; x++ {
		total := float64(x)*cp.PacketPass +
			float64(x+1)*LinkPropagationPs() +
			d.TransmitPs + cp.PacketAccept + RegisterSkewPs
		if total > budget {
			return hops
		}
		hops = x + 1
	}
}

// HopsByScenario returns the per-cycle hop limits at the paper's operating
// point (64-way WDM, 4 GHz): 8, 5 and 4 for optimistic, average and
// pessimistic scaling.
func HopsByScenario() map[Scenario]int {
	out := make(map[Scenario]int, NumScenarios)
	for _, s := range Scenarios() {
		out[s] = MaxHopsPerCycle(s, packet.PayloadWDM, DefaultClockGHz)
	}
	return out
}
