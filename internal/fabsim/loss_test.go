package fabsim

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/sim"
	"phastlane/internal/traffic"
)

// TestConservationLossless checks the delivery-conservation ledger on a
// lossless run: every injected unicast is delivered exactly once,
// expected == scheduled once drained, and CheckInvariants stays nil at
// every cycle along the way.
func TestConservationLossless(t *testing.T) {
	for _, top := range fabrics(t) {
		n := New(DefaultConfig(top))
		pat := traffic.UniformRandom(top.Endpoints(), 3)
		var id uint64
		var buf []sim.Delivery
		for cycle := 0; cycle < 300; cycle++ {
			for node := 0; node < top.Endpoints(); node++ {
				src := mesh.NodeID(node)
				dst := pat.Dest(src)
				if dst == src || n.NICFree(src) == 0 || cycle%2 != 0 {
					continue
				}
				id++
				n.Inject(sim.Message{ID: id, Src: src, Dsts: []mesh.NodeID{dst}})
			}
			buf = n.Step(buf)
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("%s cycle %d: %v", top.Name(), cycle, err)
			}
		}
		buf = drain(t, n, buf)
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("%s drained: %v", top.Name(), err)
		}
		if n.run.Lost != 0 {
			t.Fatalf("%s: lossless run lost %d", top.Name(), n.run.Lost)
		}
		if int64(len(buf)) != int64(id) || n.expected != n.scheduled {
			t.Fatalf("%s: %d injected, %d delivered (expected %d, scheduled %d)",
				top.Name(), id, len(buf), n.expected, n.scheduled)
		}
	}
}

// TestWatchdogUnicastAccounting arms a tight delivery watchdog, pushes a
// saturating unicast load, and checks the per-message ledger: every
// message is delivered exactly once or reported lost exactly once, never
// both, and the aggregate invariant holds with losses in play.
func TestWatchdogUnicastAccounting(t *testing.T) {
	for _, top := range fabrics(t) {
		cfg := DefaultConfig(top)
		cfg.LossTimeout = 8
		n := New(cfg)
		lost := make(map[uint64]int)
		n.SetLossHandler(func(l sim.Loss) { lost[l.MsgID] += l.Count })
		pat := traffic.UniformRandom(top.Endpoints(), 9)
		var id uint64
		var buf []sim.Delivery
		delivered := make(map[uint64]int)
		step := func() {
			buf = n.Step(buf[:0])
			for _, d := range buf {
				delivered[d.MsgID]++
			}
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("%s cycle %d: %v", top.Name(), n.cycle, err)
			}
		}
		for cycle := 0; cycle < 400; cycle++ {
			for node := 0; node < top.Endpoints(); node++ {
				src := mesh.NodeID(node)
				dst := pat.Dest(src)
				if dst == src || n.NICFree(src) == 0 {
					continue
				}
				id++
				n.Inject(sim.Message{ID: id, Src: src, Dsts: []mesh.NodeID{dst}})
			}
			step()
		}
		for i := 0; i < 10000 && !n.Quiescent(); i++ {
			step()
		}
		if !n.Quiescent() {
			t.Fatalf("%s: did not drain", top.Name())
		}
		if n.run.Lost == 0 {
			t.Fatalf("%s: watchdog never fired under saturating load", top.Name())
		}
		for m := uint64(1); m <= id; m++ {
			if delivered[m]+lost[m] != 1 {
				t.Fatalf("%s: msg %d delivered %d + lost %d, want exactly 1",
					top.Name(), m, delivered[m], lost[m])
			}
		}
	}
}

// TestWatchdogMulticastBranchLoss checks the exact-count contract on
// multicast: when the watchdog reclaims a branch mid-tree, the loss
// report carries the branch's remaining subtree, so delivered + lost
// still equals the destination count.
func TestWatchdogMulticastBranchLoss(t *testing.T) {
	for _, top := range fabrics(t) {
		cfg := DefaultConfig(top)
		cfg.LossTimeout = 6
		n := New(cfg)
		lostCount := 0
		n.SetLossHandler(func(l sim.Loss) { lostCount += l.Count })
		var dsts []mesh.NodeID
		for d := 1; d < top.Endpoints(); d++ {
			dsts = append(dsts, mesh.NodeID(d))
		}
		n.Inject(sim.Message{ID: 1, Src: 0, Dsts: dsts})
		var buf []sim.Delivery
		for i := 0; i < 10000 && !n.Quiescent(); i++ {
			buf = n.Step(buf)
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("%s cycle %d: %v", top.Name(), n.cycle, err)
			}
		}
		if !n.Quiescent() {
			t.Fatalf("%s: did not drain", top.Name())
		}
		if len(buf)+lostCount != len(dsts) {
			t.Fatalf("%s: %d delivered + %d lost != %d destinations",
				top.Name(), len(buf), lostCount, len(dsts))
		}
		if int64(lostCount) != n.run.Lost {
			t.Fatalf("%s: handler count %d != Run().Lost %d", top.Name(), lostCount, n.run.Lost)
		}
	}
}

// hotspot sends every packet at endpoint 0, overloading its ingress
// links on any fabric so the watchdog is guaranteed work.
type hotspot struct{}

func (hotspot) Name() string                     { return "Hotspot" }
func (hotspot) Dest(src mesh.NodeID) mesh.NodeID { return 0 }

// TestHarnessLossAccounting runs the full RunRate harness with the
// watchdog armed under a hotspot overload and checks the harness-level
// ledger: measured deliveries plus measured losses resolve every
// measured message (Unresolved == 0 after drain).
func TestHarnessLossAccounting(t *testing.T) {
	for _, top := range fabrics(t) {
		cfg := DefaultConfig(top)
		cfg.LossTimeout = 64
		n := New(cfg)
		res := sim.RunRate(n, sim.RateConfig{
			Pattern: hotspot{},
			Rate:    0.9, Warmup: 100, Measure: 600, Seed: 21,
		})
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", top.Name(), err)
		}
		if res.Unresolved != 0 {
			t.Fatalf("%s: %d measured messages unresolved", top.Name(), res.Unresolved)
		}
		if res.Lost == 0 {
			t.Fatalf("%s: no losses at rate 0.9 with a 64-cycle timeout", top.Name())
		}
	}
}
