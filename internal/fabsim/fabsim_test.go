package fabsim

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/sim"
	"phastlane/internal/topo"
	"phastlane/internal/traffic"
)

func fabrics(t *testing.T) []topo.Topology {
	t.Helper()
	b, err := topo.NewBenes(16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := topo.NewShufflecast(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []topo.Topology{topo.NewMesh2D(4, 4), b, s}
}

// drain steps until quiescent, with a generous cycle bound.
func drain(t *testing.T, n *Network, buf []sim.Delivery) []sim.Delivery {
	t.Helper()
	for i := 0; i < 10000 && !n.Quiescent(); i++ {
		buf = n.Step(buf)
	}
	if !n.Quiescent() {
		t.Fatal("network did not drain")
	}
	return buf
}

// TestUnicastDelivery injects one unicast between every endpoint pair
// (staggered) and checks every message arrives exactly once at the right
// place.
func TestUnicastDelivery(t *testing.T) {
	for _, top := range fabrics(t) {
		n := New(DefaultConfig(top))
		want := make(map[uint64]mesh.NodeID)
		var id uint64
		var buf []sim.Delivery
		for src := 0; src < top.Endpoints(); src++ {
			for dst := 0; dst < top.Endpoints(); dst++ {
				if src == dst {
					continue
				}
				id++
				want[id] = mesh.NodeID(dst)
				for n.NICFree(mesh.NodeID(src)) == 0 {
					buf = n.Step(buf)
				}
				n.Inject(sim.Message{ID: id, Src: mesh.NodeID(src), Dsts: []mesh.NodeID{mesh.NodeID(dst)}})
			}
		}
		buf = drain(t, n, buf)
		got := make(map[uint64]int)
		for _, d := range buf {
			if want[d.MsgID] != d.Dst {
				t.Fatalf("%s: msg %d delivered to %d, want %d", top.Name(), d.MsgID, d.Dst, want[d.MsgID])
			}
			got[d.MsgID]++
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d of %d messages delivered", top.Name(), len(got), len(want))
		}
		for id, c := range got {
			if c != 1 {
				t.Fatalf("%s: msg %d delivered %d times", top.Name(), id, c)
			}
		}
	}
}

// TestBroadcastDelivery checks a full broadcast reaches every other
// endpoint exactly once.
func TestBroadcastDelivery(t *testing.T) {
	for _, top := range fabrics(t) {
		n := New(DefaultConfig(top))
		var dsts []mesh.NodeID
		for d := 1; d < top.Endpoints(); d++ {
			dsts = append(dsts, mesh.NodeID(d))
		}
		n.Inject(sim.Message{ID: 7, Src: 0, Dsts: dsts})
		buf := drain(t, n, nil)
		seen := make(map[mesh.NodeID]int)
		for _, d := range buf {
			seen[d.Dst]++
		}
		if len(seen) != len(dsts) {
			t.Fatalf("%s: broadcast reached %d endpoints, want %d", top.Name(), len(seen), len(dsts))
		}
		for d, c := range seen {
			if c != 1 {
				t.Fatalf("%s: endpoint %d received %d copies", top.Name(), d, c)
			}
		}
	}
}

// TestSubsetMulticast checks pruned-tree multicast, which the mesh
// simulators do not support but the spanning builder gives for free.
func TestSubsetMulticast(t *testing.T) {
	for _, top := range fabrics(t) {
		n := New(DefaultConfig(top))
		dsts := []mesh.NodeID{1, mesh.NodeID(top.Endpoints() - 1)}
		n.Inject(sim.Message{ID: 3, Src: 0, Dsts: dsts})
		buf := drain(t, n, nil)
		if len(buf) != 2 {
			t.Fatalf("%s: %d deliveries, want 2", top.Name(), len(buf))
		}
	}
}

// TestRunRateDeterminism runs the full harness twice and compares the
// result structs: the model must be bit-identical for a fixed seed.
func TestRunRateDeterminism(t *testing.T) {
	for _, top := range fabrics(t) {
		run := func() sim.Result {
			n := New(DefaultConfig(top))
			return sim.RunRate(n, sim.RateConfig{
				Pattern: traffic.UniformRandom(top.Endpoints(), 11),
				Rate:    0.10, Warmup: 200, Measure: 1000, Seed: 11,
			})
		}
		a, b := run(), run()
		if a.Run.Delivered != b.Run.Delivered || a.Run.Injected != b.Run.Injected ||
			a.Run.Latency.Mean() != b.Run.Latency.Mean() {
			t.Fatalf("%s: non-deterministic runs: %+v vs %+v", top.Name(), a.Run, b.Run)
		}
		if a.Run.Delivered == 0 {
			t.Fatalf("%s: no deliveries", top.Name())
		}
	}
}

// TestStepZeroAllocSteadyState pins the warmed-up Step loop at zero
// allocations per cycle, matching the repo-wide hot-path contract.
func TestStepZeroAllocSteadyState(t *testing.T) {
	for _, top := range fabrics(t) {
		n := New(DefaultConfig(top))
		pat := traffic.UniformRandom(top.Endpoints(), 5)
		buf := make([]sim.Delivery, 0, 4096)
		var id uint64
		dstBuf := make([]mesh.NodeID, 1)
		inject := func() {
			for node := 0; node < top.Endpoints(); node++ {
				id++
				if n.NICFree(mesh.NodeID(node)) == 0 || id%3 != 0 {
					continue
				}
				dst := pat.Dest(mesh.NodeID(node))
				if dst == mesh.NodeID(node) {
					continue
				}
				dstBuf[0] = dst
				n.Inject(sim.Message{ID: id, Src: mesh.NodeID(node), Dsts: dstBuf})
			}
		}
		for i := 0; i < 400; i++ { // warm pools and scratch
			inject()
			buf = n.Step(buf[:0])
		}
		allocs := testing.AllocsPerRun(100, func() {
			inject()
			buf = n.Step(buf[:0])
		})
		if allocs != 0 {
			t.Fatalf("%s: %.2f allocs/cycle in steady state, want 0", top.Name(), allocs)
		}
	}
}

// TestEventStream checks the endpoint-only event protocol: inject,
// launch at the source, eject at the destination, and no event at any
// switch-stage node.
func TestEventStream(t *testing.T) {
	b, err := topo.NewBenes(8)
	if err != nil {
		t.Fatal(err)
	}
	n := New(DefaultConfig(b))
	var events []obs.Event
	n.SetTracer(func(e obs.Event) { events = append(events, e) })
	n.Inject(sim.Message{ID: 9, Src: 2, Dsts: []mesh.NodeID{5}})
	drain(t, n, nil)
	kinds := map[obs.Kind]int{}
	for _, e := range events {
		if int(e.Node) >= b.Endpoints() {
			t.Fatalf("event at switch node %d: %v", e.Node, e)
		}
		kinds[e.Kind]++
	}
	if kinds[obs.KindInject] != 1 || kinds[obs.KindLaunch] != 1 || kinds[obs.KindEject] != 1 {
		t.Fatalf("unexpected event mix: %v", kinds)
	}
}
