// Package fabsim is a topology-generic optical fabric simulator: a
// store-and-forward packet network over any topo.Topology, implementing
// sim.Network so every harness feature — rate sweeps, coherence replay,
// observability, telemetry, latency provenance — runs on fabrics the
// cycle-exact mesh simulators cannot model (Benes multistage networks,
// Shufflecast shuffle trees).
//
// The model is first-order, at the same fidelity as the related-work
// substrates (corona, circuit): each directed link carries one packet
// per cycle, a traversal costs one cycle plus RouterDelay of switch
// processing at the far end, contention is resolved first-come
// first-served in deterministic packet order, and internal buffering is
// ideal (no flow control; the bound is the NIC injection queue, as in
// the other substrates). Multicast follows VCTM-style spanning trees
// built over the fabric graph (vctm.BuildSpanning), replicating at
// branch nodes — the Shufflecast operating mode.
//
// Events use the shared obs vocabulary but are emitted only at endpoint
// nodes (internal switch stages stay out of the endpoint-shaped obs
// matrices): Inject at NIC accept, Launch at every endpoint departure,
// Buffer at intermediate endpoint arrivals, Eject/Tap at deliveries.
// Provenance spans therefore attribute the full latency end to end,
// with switch-stage transit folded into the launch-to-arrival span.
package fabsim

import (
	"fmt"

	"phastlane/internal/mesh"
	"phastlane/internal/obs"
	"phastlane/internal/photonic"
	"phastlane/internal/power"
	"phastlane/internal/sim"
	"phastlane/internal/stats"
	"phastlane/internal/telemetry"
	"phastlane/internal/topo"
	"phastlane/internal/vctm"
)

// Config parameterises the generic fabric simulator.
type Config struct {
	// Topo is the fabric; required.
	Topo topo.Topology
	// RouterDelay is the switch processing time in cycles added at each
	// arrival before the packet may depart again (default 1).
	RouterDelay int
	// NICEntries is the injection queue capacity per endpoint.
	NICEntries int
	// LossTimeout, when positive, arms the delivery watchdog: a packet
	// (or multicast branch) older than this many cycles is abandoned and
	// reported through sim.LossReporting with its exact outstanding
	// delivery count, the same guarantee the mesh simulators give. Zero
	// keeps the fabric lossless (the default).
	LossTimeout int64
	// Seed is accepted for harness uniformity; the model is contention-
	// deterministic and draws no randomness.
	Seed int64
}

// DefaultConfig returns the baseline parameters over the given fabric.
func DefaultConfig(t topo.Topology) Config {
	return Config{Topo: t, RouterDelay: 1, NICEntries: 50, Seed: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topo == nil {
		return fmt.Errorf("fabsim: nil topology")
	}
	if c.RouterDelay < 0 {
		return fmt.Errorf("fabsim: router delay %d", c.RouterDelay)
	}
	if c.NICEntries < 1 {
		return fmt.Errorf("fabsim: NIC entries %d", c.NICEntries)
	}
	if c.LossTimeout < 0 {
		return fmt.Errorf("fabsim: loss timeout %d", c.LossTimeout)
	}
	return nil
}

// flit is one packet instance in the fabric: a unicast packet following
// its compiled route, or one branch of a multicast tree.
type flit struct {
	msgID uint64
	at    mesh.NodeID
	// born is the injection cycle, the delivery watchdog's age base;
	// multicast branches inherit the head's.
	born int64
	// readyAt is when switch processing at the current node completes.
	readyAt int64
	// route/hop drive unicast flits; route is pooled backing.
	route []mesh.Dir
	hop   int
	// tree/port drive multicast branches: the branch departs at through
	// port toward the rest of its subtree.
	tree *vctm.Tree
	port mesh.Dir
}

// delivery is a scheduled arrival handed to the harness when it matures.
type delivery struct {
	at  int64
	out sim.Delivery
}

// Network is the generic fabric simulator implementing sim.Network.
type Network struct {
	cfg Config
	top topo.Topology
	// portBase[n] is the claims offset of node n's ports; claims holds
	// the cycle each directed link was last used (one packet per link
	// per cycle).
	portBase []int
	claims   []int64
	// nics[n] is endpoint n's injection FIFO (queued flits not yet in
	// the fabric).
	nics [][]*flit
	// flits is the in-fabric packet list, processed in stable order.
	flits    []*flit
	scratch  []*flit
	inFlight []delivery
	free     []*flit
	// trees caches multicast trees like the electrical baseline: bcast
	// per source for full broadcasts, keyed for subsets.
	bcast []*vctm.Tree
	trees map[string]*vctm.Tree
	// live counts deliveries not yet scheduled; expected and scheduled
	// are the cumulative conservation counters the invariant audit
	// balances against losses (expected == scheduled + lost + live).
	live      int
	expected  int64
	scheduled int64
	// Loss watchdog (armed when LossTimeout > 0) and its DFS scratch
	// for counting a timed-out branch's outstanding subtree deliveries.
	lossHandler func(sim.Loss)
	watchEvery  int64
	nextScan    int64
	dfs         []mesh.NodeID
	tracer      func(obs.Event)
	run         stats.Run
	cycle       int64
}

var (
	_ sim.Network                = (*Network)(nil)
	_ sim.Traceable              = (*Network)(nil)
	_ obs.Traceable              = (*Network)(nil)
	_ sim.LossReporting          = (*Network)(nil)
	_ telemetry.InvariantChecker = (*Network)(nil)
)

// New builds a generic fabric network; it panics on invalid
// configuration, like the other simulators.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.RouterDelay == 0 {
		cfg.RouterDelay = 1
	}
	t := cfg.Topo
	base := make([]int, t.Nodes()+1)
	for n := 0; n < t.Nodes(); n++ {
		base[n+1] = base[n] + t.Degree(mesh.NodeID(n))
	}
	claims := make([]int64, base[t.Nodes()])
	for i := range claims {
		claims[i] = -1
	}
	n := &Network{
		cfg:      cfg,
		top:      t,
		portBase: base,
		claims:   claims,
		nics:     make([][]*flit, t.Endpoints()),
		bcast:    make([]*vctm.Tree, t.Endpoints()),
		trees:    make(map[string]*vctm.Tree),
	}
	if cfg.LossTimeout > 0 {
		n.watchEvery = cfg.LossTimeout / 4
		if n.watchEvery < 1 {
			n.watchEvery = 1
		}
		n.nextScan = n.watchEvery
	}
	return n
}

// SetLossHandler implements sim.LossReporting: handler is invoked
// synchronously whenever the delivery watchdog abandons a packet or a
// multicast branch (LossTimeout > 0). Nil disables reporting (losses are
// still counted in Run().Lost).
func (n *Network) SetLossHandler(handler func(sim.Loss)) { n.lossHandler = handler }

// CheckInvariants audits delivery conservation: every delivery ever
// promised at Inject must be scheduled, reported lost, or still live in
// the fabric. The telemetry watchdog calls it at flush boundaries.
func (n *Network) CheckInvariants() error {
	if n.expected != n.scheduled+n.run.Lost+int64(n.live) {
		return fmt.Errorf("fabsim: delivery conservation: %d expected != %d scheduled + %d lost + %d live",
			n.expected, n.scheduled, n.run.Lost, n.live)
	}
	return nil
}

// Topology returns the fabric this network runs over.
func (n *Network) Topology() topo.Topology { return n.top }

// Nodes implements sim.Network: the harness sees the endpoints; internal
// switch stages are not injection targets.
func (n *Network) Nodes() int { return n.top.Endpoints() }

// Run implements sim.Network.
func (n *Network) Run() *stats.Run { return &n.run }

// SetTracer implements sim.Traceable / obs.Traceable.
func (n *Network) SetTracer(f func(obs.Event)) { n.tracer = f }

// NICFree implements sim.Network.
func (n *Network) NICFree(node mesh.NodeID) int {
	f := n.cfg.NICEntries - len(n.nics[node])
	if f < 0 {
		return 0
	}
	return f
}

// Quiescent implements sim.Network.
func (n *Network) Quiescent() bool { return n.live == 0 && len(n.inFlight) == 0 }

// emit reports an event when tracing is on and the node is an endpoint
// (obs matrices are endpoint-shaped; switch stages stay invisible).
func (n *Network) emit(cycle int64, kind obs.Kind, msgID uint64, node mesh.NodeID, dir mesh.Dir) {
	if n.tracer != nil && int(node) < n.top.Endpoints() {
		n.tracer(obs.Event{Cycle: cycle, Kind: kind, MsgID: msgID, Node: node, Dir: dir})
	}
}

// getFlit takes a flit from the free list, keeping its route backing.
func (n *Network) getFlit() *flit {
	if k := len(n.free); k > 0 {
		f := n.free[k-1]
		n.free = n.free[:k-1]
		route := f.route
		*f = flit{route: route[:0]}
		return f
	}
	return &flit{}
}

func (n *Network) putFlit(f *flit) { n.free = append(n.free, f) }

// Inject implements sim.Network. Unlike the mesh simulators, any
// destination set is accepted: subsets multicast over pruned spanning
// trees.
func (n *Network) Inject(m sim.Message) {
	if free := n.NICFree(m.Src); free <= 0 {
		panic(fmt.Sprintf("fabsim: inject into full NIC at node %d (check NICFree before Inject)", m.Src))
	}
	n.run.Injected++
	n.emit(n.cycle, obs.KindInject, m.ID, m.Src, mesh.Local)
	f := n.getFlit()
	f.msgID, f.at, f.readyAt, f.born = m.ID, m.Src, n.cycle, n.cycle
	switch {
	case len(m.Dsts) == 1:
		if m.Dsts[0] == m.Src {
			panic("fabsim: self-directed message")
		}
		f.route = n.top.AppendRoute(f.route[:0], m.Src, m.Dsts[0])
		n.live++
		n.expected++
	default:
		f.tree = n.multicastTree(m.Src, m.Dsts)
		n.live += len(m.Dsts)
		n.expected += int64(len(m.Dsts))
	}
	n.nics[m.Src] = append(n.nics[m.Src], f)
}

// multicastTree returns the (cached) spanning tree for the destination
// set.
func (n *Network) multicastTree(src mesh.NodeID, dsts []mesh.NodeID) *vctm.Tree {
	if len(dsts) == n.top.Endpoints()-1 {
		if t := n.bcast[src]; t != nil {
			return t
		}
		t := vctm.BuildSpanning(n.top, src, dsts)
		n.bcast[src] = t
		return t
	}
	key := vctm.Key(src, dsts)
	if t := n.trees[key]; t != nil {
		return t
	}
	t := vctm.BuildSpanning(n.top, src, dsts)
	n.trees[key] = t
	return t
}

// claim takes the directed link (node, p) for this cycle; it reports
// false when another packet already holds it (one packet per link per
// cycle).
func (n *Network) claim(node mesh.NodeID, p mesh.Dir) bool {
	idx := n.portBase[node] + int(p)
	if n.claims[idx] == n.cycle {
		return false
	}
	n.claims[idx] = n.cycle
	return true
}

// Step implements sim.Network: release matured deliveries, move every
// ready flit one link under per-link claims, then dequeue NIC heads into
// the fabric. Deliveries are appended to buf per the sim.Network
// buffer-ownership contract; the steady-state loop does not allocate.
func (n *Network) Step(buf []sim.Delivery) []sim.Delivery {
	if n.watchEvery > 0 && n.cycle >= n.nextScan {
		n.watchdogScan()
		n.nextScan = n.cycle + n.watchEvery
	}
	out := buf
	rest := n.inFlight[:0]
	for _, d := range n.inFlight {
		if d.at <= n.cycle {
			out = append(out, d.out)
		} else {
			rest = append(rest, d)
		}
	}
	n.inFlight = rest

	// Move flits in stable order; a blocked flit keeps its position, so
	// contention resolves deterministically and roughly FIFO. advance
	// re-appends movers (arrivals, forks) to n.flits, which starts this
	// cycle as the recycled scratch list.
	cur := n.flits
	n.flits = n.scratch[:0]
	for _, f := range cur {
		if f.readyAt > n.cycle || !n.advance(f) {
			n.flits = append(n.flits, f)
		}
	}
	n.scratch = cur[:0]

	// One NIC dequeue per endpoint per cycle; the released flit (or
	// tree branches) joins the fabric and moves from the next cycle.
	for node := range n.nics {
		q := n.nics[node]
		if len(q) == 0 {
			continue
		}
		head := q[0]
		if head.readyAt > n.cycle {
			continue
		}
		copy(q, q[1:])
		n.nics[node] = q[:len(q)-1]
		if head.tree != nil {
			n.fork(head, head.tree, mesh.NodeID(node), n.cycle)
		} else {
			head.readyAt = n.cycle + 1
			n.flits = append(n.flits, head)
		}
	}

	n.run.LeakagePJ += power.LeakagePJ(leakageWPerNode, n.top.Nodes(), 1, photonic.DefaultClockGHz)
	n.cycle++
	return out
}

// advance tries to move f one link; it reports whether the flit left the
// list (traversed and was re-queued, delivered, or forked).
func (n *Network) advance(f *flit) bool {
	var port mesh.Dir
	if f.tree != nil {
		port = f.port
	} else {
		port = f.route[f.hop]
	}
	if !n.claim(f.at, port) {
		return false
	}
	next, ok := n.top.Neighbor(f.at, port)
	if !ok {
		panic(fmt.Sprintf("fabsim: route uses dead port %d at node %d", port, f.at))
	}
	n.emit(n.cycle, obs.KindLaunch, f.msgID, f.at, port)
	n.run.LinkTraversals++
	n.run.OpticalEnergyPJ += transmitPJ
	arriveAt := n.cycle + 1
	if f.tree != nil {
		n.arriveMulticast(f, f.tree, next, arriveAt)
		return true
	}
	f.hop++
	if f.hop == len(f.route) {
		n.deliver(f.msgID, next, arriveAt, obs.KindEject)
		n.putFlit(f)
		return true
	}
	n.emit(arriveAt, obs.KindBuffer, f.msgID, next, mesh.Local)
	f.at = next
	f.readyAt = arriveAt + int64(n.cfg.RouterDelay)
	n.flits = append(n.flits, f)
	return true
}

// arriveMulticast lands a tree branch at node: deliver if the tree says
// so, then fork onto the child branches. f is recycled or reused as the
// first branch.
func (n *Network) arriveMulticast(f *flit, tree *vctm.Tree, node mesh.NodeID, at int64) {
	children := tree.Children(node)
	if tree.Deliver(node) {
		kind := obs.KindEject
		if len(children) > 0 {
			kind = obs.KindTap
		}
		n.deliver(f.msgID, node, at, kind)
	} else if len(children) > 0 {
		n.emit(at, obs.KindBuffer, f.msgID, node, mesh.Local)
	}
	if len(children) == 0 {
		n.putFlit(f)
		return
	}
	n.forkInto(f, tree, node, at, children)
}

// fork splits a just-dequeued multicast head into its root branches.
func (n *Network) fork(f *flit, tree *vctm.Tree, node mesh.NodeID, at int64) {
	children := tree.Children(node)
	if len(children) == 0 {
		panic(fmt.Sprintf("fabsim: multicast tree rooted at %d has no branches", node))
	}
	n.forkInto(f, tree, node, at, children)
}

// forkInto queues one branch flit per child port, reusing f for the
// first.
func (n *Network) forkInto(f *flit, tree *vctm.Tree, node mesh.NodeID, at int64, children []mesh.Dir) {
	ready := at + int64(n.cfg.RouterDelay)
	for i, p := range children {
		b := f
		if i > 0 {
			b = n.getFlit()
			b.msgID, b.born = f.msgID, f.born
		}
		b.tree, b.at, b.port, b.readyAt = tree, node, p, ready
		n.flits = append(n.flits, b)
	}
}

// deliver schedules one harness delivery.
func (n *Network) deliver(msgID uint64, dst mesh.NodeID, at int64, kind obs.Kind) {
	n.emit(at, kind, msgID, dst, mesh.Local)
	n.live--
	n.scheduled++
	n.run.ElectricalEnergyPJ += receivePJ
	n.inFlight = append(n.inFlight, delivery{at: at, out: sim.Delivery{MsgID: msgID, Dst: dst}})
}

// lose abandons one flit carrying count outstanding deliveries: the
// conservation counters move from live to lost, the handler hears about
// it, and the flit returns to the free list. The caller removes it from
// whatever queue held it.
func (n *Network) lose(f *flit, at mesh.NodeID, count int) {
	n.live -= count
	n.run.Lost += int64(count)
	n.emit(n.cycle, obs.KindLost, f.msgID, at, mesh.Local)
	if n.lossHandler != nil {
		n.lossHandler(sim.Loss{MsgID: f.msgID, Node: at, Count: count, Reason: sim.LossTimeout})
	}
	n.putFlit(f)
}

// pendingDeliveries counts the deliveries a flit is still responsible
// for: one for a unicast packet, the branch's whole remaining subtree for
// a multicast branch (arrivals deliver before forking, so the subtree
// rooted at the branch's next hop is exactly what is outstanding).
func (n *Network) pendingDeliveries(f *flit) int {
	if f.tree == nil {
		return 1
	}
	next, ok := n.top.Neighbor(f.at, f.port)
	if !ok {
		panic(fmt.Sprintf("fabsim: branch uses dead port %d at node %d", f.port, f.at))
	}
	return n.subtreeDeliveries(f.tree, next)
}

// subtreeDeliveries walks the spanning tree from root and counts its
// delivery nodes, using the network's reusable DFS stack.
func (n *Network) subtreeDeliveries(tree *vctm.Tree, root mesh.NodeID) int {
	stack := append(n.dfs[:0], root)
	count := 0
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if tree.Deliver(node) {
			count++
		}
		for _, p := range tree.Children(node) {
			next, ok := n.top.Neighbor(node, p)
			if !ok {
				panic(fmt.Sprintf("fabsim: tree uses dead port %d at node %d", p, node))
			}
			stack = append(stack, next)
		}
	}
	n.dfs = stack[:0]
	return count
}

// watchdogScan abandons NIC entries and in-fabric flits older than
// LossTimeout, with exact delivery counts: a queued multicast head owes
// its full destination set, an in-fabric branch its remaining subtree.
func (n *Network) watchdogScan() {
	cutoff := n.cycle - n.cfg.LossTimeout
	for node := range n.nics {
		q := n.nics[node]
		w := 0
		for _, f := range q {
			if f.born <= cutoff {
				count := 1
				if f.tree != nil {
					count = f.tree.Destinations()
				}
				n.lose(f, mesh.NodeID(node), count)
				continue
			}
			q[w] = f
			w++
		}
		if w != len(q) {
			n.nics[node] = q[:w]
		}
	}
	w := 0
	for _, f := range n.flits {
		if f.born <= cutoff {
			n.lose(f, f.at, n.pendingDeliveries(f))
			continue
		}
		n.flits[w] = f
		w++
	}
	n.flits = n.flits[:w]
}

// Energy constants, at the same first-order fidelity as the other
// comparison substrates: one modulate+traverse charge per link, a
// receiver charge per delivery, and per-node leakage.
const (
	transmitPJ      = 9.0
	receivePJ       = 5.7
	leakageWPerNode = 0.004
)
