package vctm

import (
	"testing"

	"phastlane/internal/mesh"
	"phastlane/internal/topo"
)

// walkGraphTree traverses a tree over an arbitrary fabric and returns
// per-node delivery counts, failing on cycles or dead ports.
func walkGraphTree(t *testing.T, g Graph, tree *Tree) map[mesh.NodeID]int {
	t.Helper()
	got := make(map[mesh.NodeID]int)
	var visit func(at mesh.NodeID, depth int)
	visit = func(at mesh.NodeID, depth int) {
		if depth > g.Nodes() {
			t.Fatal("tree walk too deep; cycle?")
		}
		if tree.Deliver(at) {
			got[at]++
		}
		for _, d := range tree.Children(at) {
			next, ok := g.Neighbor(at, d)
			if !ok {
				t.Fatalf("tree branch dead port at %d port %d", at, d)
			}
			visit(next, depth+1)
		}
	}
	visit(tree.Src(), 0)
	return got
}

func spanningFabrics(t *testing.T) []topo.Topology {
	t.Helper()
	b, err := topo.NewBenes(16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := topo.NewShufflecast(27, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []topo.Topology{topo.NewMesh2D(4, 4), b, s}
}

// TestSpanningBroadcastCoversAll checks the BFS builder on every fabric:
// a broadcast tree must deliver to each other endpoint exactly once
// without re-entering any terminal.
func TestSpanningBroadcastCoversAll(t *testing.T) {
	for _, g := range spanningFabrics(t) {
		for src := mesh.NodeID(0); int(src) < g.Endpoints(); src++ {
			var dsts []mesh.NodeID
			for d := mesh.NodeID(0); int(d) < g.Endpoints(); d++ {
				if d != src {
					dsts = append(dsts, d)
				}
			}
			tree := BuildSpanning(g, src, dsts)
			got := walkGraphTree(t, g, tree)
			if len(got) != len(dsts) {
				t.Fatalf("%s src %d: delivered to %d endpoints, want %d", g.Name(), src, len(got), len(dsts))
			}
			for n, c := range got {
				if c != 1 {
					t.Fatalf("%s src %d: endpoint %d delivered %d times", g.Name(), src, n, c)
				}
			}
		}
	}
}

// TestSpanningSubsetPrunes checks that a small destination set yields a
// pruned tree: every leaf of the tree delivers.
func TestSpanningSubsetPrunes(t *testing.T) {
	for _, g := range spanningFabrics(t) {
		dsts := []mesh.NodeID{1, mesh.NodeID(g.Endpoints() / 2), mesh.NodeID(g.Endpoints() - 1)}
		tree := BuildSpanning(g, 0, dsts)
		got := walkGraphTree(t, g, tree)
		if len(got) != 3 {
			t.Fatalf("%s: delivered %v", g.Name(), got)
		}
		var checkLeaves func(at mesh.NodeID)
		checkLeaves = func(at mesh.NodeID) {
			if len(tree.Children(at)) == 0 && !tree.Deliver(at) {
				t.Fatalf("%s: leaf %d delivers nothing (unpruned branch)", g.Name(), at)
			}
			for _, d := range tree.Children(at) {
				next, _ := g.Neighbor(at, d)
				checkLeaves(next)
			}
		}
		checkLeaves(tree.Src())
	}
}

// TestBuildMatchesLegacyOnMesh pins that the interface-typed Build still
// produces byte-identical trees to the mesh path-union semantics: the
// topo.Mesh2D and the raw *mesh.Mesh compile the same routes, so the
// trees must agree node by node.
func TestBuildMatchesLegacyOnMesh(t *testing.T) {
	m := mesh.New(8, 8)
	top := topo.NewMesh2D(8, 8)
	dsts := []mesh.NodeID{3, 24, 60, 13, 45}
	a := Build(m, 7, dsts)
	b := Build(top, 7, dsts)
	for n := mesh.NodeID(0); int(n) < m.Nodes(); n++ {
		ca, cb := a.Children(n), b.Children(n)
		if len(ca) != len(cb) {
			t.Fatalf("node %d: children %v vs %v", n, ca, cb)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("node %d: children %v vs %v", n, ca, cb)
			}
		}
		if a.Deliver(n) != b.Deliver(n) {
			t.Fatalf("node %d: deliver mismatch", n)
		}
	}
}
