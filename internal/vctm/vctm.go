// Package vctm implements Virtual Circuit Tree Multicasting (Jerger, Peh,
// Lipasti, ISCA 2008) as used by the paper's electrical baseline to perform
// packet broadcasts (Section 4): a multicast packet follows a pre-built
// tree rooted at its source, and routers replicate it onto each child
// branch.
//
// Two builders exist. Build unions the fabric's unicast routes from the
// root to every destination — on the mesh these are the X-then-Y paths,
// which is exactly the tree the VCTM setup packets would carve out in a
// dimension-order network. BuildSpanning instead grows a breadth-first
// spanning tree over the fabric graph and prunes branches that reach no
// destination; it is the right shape for fabrics whose unicast routes can
// remerge or self-intersect (de Bruijn shuffles, multistage networks).
// The electrical simulator builds one tree per (source, destination-set)
// and caches it, mirroring VCTM's virtual-circuit-tree table reuse.
package vctm

import (
	"fmt"
	"sort"

	"phastlane/internal/mesh"
)

// RouteGraph is the topology view Build needs: unicast route compilation
// plus link traversal. Both *mesh.Mesh and the topo.Topology
// implementations satisfy it.
type RouteGraph interface {
	Neighbor(n mesh.NodeID, p mesh.Dir) (mesh.NodeID, bool)
	AppendRoute(buf []mesh.Dir, src, dst mesh.NodeID) []mesh.Dir
}

// Graph is the topology view BuildSpanning needs: full node/port
// enumeration for the breadth-first walk. topo.Topology satisfies it.
type Graph interface {
	RouteGraph
	Nodes() int
	Degree(n mesh.NodeID) int
}

// Tree is a multicast tree rooted at Src. The zero value is unusable;
// construct with Build or BuildSpanning.
type Tree struct {
	src      mesh.NodeID
	children map[mesh.NodeID][]mesh.Dir
	deliver  map[mesh.NodeID]bool
	size     int
}

// Build constructs the route-union multicast tree from src to dsts.
// It panics when dsts is empty or contains src (configuration errors).
func Build(g RouteGraph, src mesh.NodeID, dsts []mesh.NodeID) *Tree {
	if len(dsts) == 0 {
		panic("vctm: empty destination set")
	}
	edges := make(map[mesh.NodeID]map[mesh.Dir]bool)
	deliver := make(map[mesh.NodeID]bool, len(dsts))
	var route []mesh.Dir
	for _, dst := range dsts {
		if dst == src {
			panic("vctm: destination set contains the source")
		}
		deliver[dst] = true
		cur := src
		route = g.AppendRoute(route[:0], src, dst)
		for _, d := range route {
			if edges[cur] == nil {
				edges[cur] = make(map[mesh.Dir]bool)
			}
			edges[cur][d] = true
			next, ok := g.Neighbor(cur, d)
			if !ok {
				panic(fmt.Sprintf("vctm: route walks off fabric at %d", cur))
			}
			cur = next
		}
	}
	t := &Tree{
		src:      src,
		children: make(map[mesh.NodeID][]mesh.Dir, len(edges)),
		deliver:  deliver,
		size:     len(dsts),
	}
	for node, dirs := range edges {
		list := make([]mesh.Dir, 0, len(dirs))
		for d := range dirs {
			list = append(list, d)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		t.children[node] = list
	}
	return t
}

// BuildSpanning constructs a breadth-first spanning multicast tree from
// src covering dsts, pruned to the branches that reach at least one
// destination. Ports are explored in ascending order, so the tree is
// deterministic. Terminal nodes (degree 1, as on Benes endpoints) are
// never expanded through — a delivered packet does not re-enter the
// fabric — except for src itself, which injects. It panics when dsts is
// empty, contains src, or some destination is unreachable.
func BuildSpanning(g Graph, src mesh.NodeID, dsts []mesh.NodeID) *Tree {
	if len(dsts) == 0 {
		panic("vctm: empty destination set")
	}
	parent := make([]mesh.NodeID, g.Nodes())
	inPort := make([]mesh.Dir, g.Nodes())
	seen := make([]bool, g.Nodes())
	seen[src] = true
	queue := []mesh.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur != src && g.Degree(cur) == 1 {
			continue
		}
		for p := 0; p < g.Degree(cur); p++ {
			next, ok := g.Neighbor(cur, mesh.Dir(p))
			if !ok || seen[next] {
				continue
			}
			seen[next] = true
			parent[next] = cur
			inPort[next] = mesh.Dir(p)
			queue = append(queue, next)
		}
	}
	deliver := make(map[mesh.NodeID]bool, len(dsts))
	kept := make(map[mesh.NodeID]map[mesh.Dir]bool)
	for _, dst := range dsts {
		if dst == src {
			panic("vctm: destination set contains the source")
		}
		if !seen[dst] {
			panic(fmt.Sprintf("vctm: destination %d unreachable from %d", dst, src))
		}
		deliver[dst] = true
		for cur := dst; cur != src; cur = parent[cur] {
			p := parent[cur]
			if kept[p] == nil {
				kept[p] = make(map[mesh.Dir]bool)
			}
			if kept[p][inPort[cur]] {
				break // the rest of the chain is already in the tree
			}
			kept[p][inPort[cur]] = true
		}
	}
	t := &Tree{
		src:      src,
		children: make(map[mesh.NodeID][]mesh.Dir, len(kept)),
		deliver:  deliver,
		size:     len(dsts),
	}
	for node, dirs := range kept {
		list := make([]mesh.Dir, 0, len(dirs))
		for d := range dirs {
			list = append(list, d)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		t.children[node] = list
	}
	return t
}

// Src returns the tree root.
func (t *Tree) Src() mesh.NodeID { return t.src }

// Destinations returns the number of delivery targets.
func (t *Tree) Destinations() int { return t.size }

// Children returns the branch directions a multicast packet replicates
// onto at the given router (empty at leaves). The returned slice is shared;
// callers must not modify it.
func (t *Tree) Children(at mesh.NodeID) []mesh.Dir { return t.children[at] }

// Deliver reports whether the packet is consumed by the local node at the
// given router.
func (t *Tree) Deliver(at mesh.NodeID) bool { return t.deliver[at] }

// Key canonically identifies a destination set for tree caching.
func Key(src mesh.NodeID, dsts []mesh.NodeID) string {
	sorted := append([]mesh.NodeID(nil), dsts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := make([]byte, 0, 4+len(sorted)*2)
	b = append(b, byte(src), byte(src>>8))
	for _, d := range sorted {
		b = append(b, byte(d), byte(d>>8))
	}
	return string(b)
}
