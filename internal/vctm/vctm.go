// Package vctm implements Virtual Circuit Tree Multicasting (Jerger, Peh,
// Lipasti, ISCA 2008) as used by the paper's electrical baseline to perform
// packet broadcasts (Section 4): a multicast packet follows a pre-built
// dimension-order tree rooted at its source, and routers replicate it onto
// each child branch.
//
// Trees are the union of the X-then-Y paths from the root to every
// destination, which is exactly the tree the VCTM setup packets would carve
// out in a dimension-order network. The electrical simulator builds one
// tree per (source, destination-set) and caches it, mirroring VCTM's
// virtual-circuit-tree table reuse.
package vctm

import (
	"fmt"
	"sort"

	"phastlane/internal/mesh"
)

// Tree is a multicast tree rooted at Src. The zero value is unusable;
// construct with Build.
type Tree struct {
	src      mesh.NodeID
	children map[mesh.NodeID][]mesh.Dir
	deliver  map[mesh.NodeID]bool
	size     int
}

// Build constructs the dimension-order multicast tree from src to dsts.
// It panics when dsts is empty or contains src (configuration errors).
func Build(m *mesh.Mesh, src mesh.NodeID, dsts []mesh.NodeID) *Tree {
	if len(dsts) == 0 {
		panic("vctm: empty destination set")
	}
	edges := make(map[mesh.NodeID]map[mesh.Dir]bool)
	deliver := make(map[mesh.NodeID]bool, len(dsts))
	for _, dst := range dsts {
		if dst == src {
			panic("vctm: destination set contains the source")
		}
		deliver[dst] = true
		cur := src
		for _, d := range m.Route(src, dst) {
			if edges[cur] == nil {
				edges[cur] = make(map[mesh.Dir]bool)
			}
			edges[cur][d] = true
			next, ok := m.Neighbor(cur, d)
			if !ok {
				panic(fmt.Sprintf("vctm: route walks off mesh at %d", cur))
			}
			cur = next
		}
	}
	t := &Tree{
		src:      src,
		children: make(map[mesh.NodeID][]mesh.Dir, len(edges)),
		deliver:  deliver,
		size:     len(dsts),
	}
	for node, dirs := range edges {
		list := make([]mesh.Dir, 0, len(dirs))
		for d := range dirs {
			list = append(list, d)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		t.children[node] = list
	}
	return t
}

// Src returns the tree root.
func (t *Tree) Src() mesh.NodeID { return t.src }

// Destinations returns the number of delivery targets.
func (t *Tree) Destinations() int { return t.size }

// Children returns the branch directions a multicast packet replicates
// onto at the given router (empty at leaves). The returned slice is shared;
// callers must not modify it.
func (t *Tree) Children(at mesh.NodeID) []mesh.Dir { return t.children[at] }

// Deliver reports whether the packet is consumed by the local node at the
// given router.
func (t *Tree) Deliver(at mesh.NodeID) bool { return t.deliver[at] }

// Key canonically identifies a destination set for tree caching.
func Key(src mesh.NodeID, dsts []mesh.NodeID) string {
	sorted := append([]mesh.NodeID(nil), dsts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := make([]byte, 0, 4+len(sorted)*2)
	b = append(b, byte(src), byte(src>>8))
	for _, d := range sorted {
		b = append(b, byte(d), byte(d>>8))
	}
	return string(b)
}
