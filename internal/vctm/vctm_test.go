package vctm

import (
	"math/rand"
	"testing"

	"phastlane/internal/mesh"
)

// walkTree simulates tree traversal and returns delivery counts per node.
func walkTree(t *testing.T, m *mesh.Mesh, tree *Tree) map[mesh.NodeID]int {
	t.Helper()
	got := make(map[mesh.NodeID]int)
	var visit func(at mesh.NodeID, depth int)
	visit = func(at mesh.NodeID, depth int) {
		if depth > m.Nodes() {
			t.Fatal("tree walk too deep; cycle?")
		}
		if tree.Deliver(at) {
			got[at]++
		}
		for _, d := range tree.Children(at) {
			next, ok := m.Neighbor(at, d)
			if !ok {
				t.Fatalf("tree branch walks off mesh at %d going %s", at, d)
			}
			visit(next, depth+1)
		}
	}
	visit(tree.Src(), 0)
	return got
}

func TestBroadcastTreeCoversAll(t *testing.T) {
	m := mesh.New(8, 8)
	for _, src := range []mesh.NodeID{0, 7, 27, 63} {
		var dsts []mesh.NodeID
		for i := mesh.NodeID(0); i < 64; i++ {
			if i != src {
				dsts = append(dsts, i)
			}
		}
		tree := Build(m, src, dsts)
		got := walkTree(t, m, tree)
		if len(got) != 63 {
			t.Fatalf("src %d: tree delivers to %d nodes, want 63", src, len(got))
		}
		for n, c := range got {
			if c != 1 {
				t.Errorf("src %d: node %d delivered %d times", src, n, c)
			}
		}
		if tree.Deliver(src) {
			t.Errorf("src %d delivers to itself", src)
		}
	}
}

func TestSubsetTree(t *testing.T) {
	m := mesh.New(8, 8)
	dsts := []mesh.NodeID{3, 24, 60}
	tree := Build(m, 0, dsts)
	got := walkTree(t, m, tree)
	if len(got) != 3 {
		t.Fatalf("delivered to %d nodes, want 3: %v", len(got), got)
	}
	for _, d := range dsts {
		if got[d] != 1 {
			t.Errorf("dst %d delivered %d times", d, got[d])
		}
	}
}

func TestUnicastTreeIsPath(t *testing.T) {
	m := mesh.New(8, 8)
	tree := Build(m, 0, []mesh.NodeID{18})
	// Every tree node has at most one child; total branch edges equal
	// the hop distance.
	edges := 0
	for n := mesh.NodeID(0); n < 64; n++ {
		c := len(tree.Children(n))
		if c > 1 {
			t.Errorf("node %d has %d children on a unicast tree", n, c)
		}
		edges += c
	}
	if edges != m.HopDistance(0, 18) {
		t.Errorf("tree has %d edges, want %d", edges, m.HopDistance(0, 18))
	}
}

// Property: trees are acyclic with dimension-order shape - any node's
// children never include the direction back toward the parent.
func TestTreeShape(t *testing.T) {
	m := mesh.New(8, 8)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		src := mesh.NodeID(rng.Intn(64))
		seen := map[mesh.NodeID]bool{}
		var dsts []mesh.NodeID
		for len(dsts) < 5 {
			d := mesh.NodeID(rng.Intn(64))
			if d != src && !seen[d] {
				seen[d] = true
				dsts = append(dsts, d)
			}
		}
		tree := Build(m, src, dsts)
		got := walkTree(t, m, tree)
		if len(got) != len(dsts) {
			t.Fatalf("src %d dsts %v: delivered %v", src, dsts, got)
		}
	}
}

func TestBuildPanics(t *testing.T) {
	m := mesh.New(4, 4)
	for name, f := range map[string]func(){
		"empty":        func() { Build(m, 0, nil) },
		"self-in-dsts": func() { Build(m, 0, []mesh.NodeID{0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Key(5, []mesh.NodeID{1, 2, 3})
	b := Key(5, []mesh.NodeID{3, 1, 2})
	if a != b {
		t.Error("Key not order-independent")
	}
	if Key(5, []mesh.NodeID{1, 2}) == Key(5, []mesh.NodeID{1, 2, 3}) {
		t.Error("Key collides across different sets")
	}
	if Key(4, []mesh.NodeID{1, 2}) == Key(5, []mesh.NodeID{1, 2}) {
		t.Error("Key ignores source")
	}
}
