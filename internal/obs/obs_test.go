package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"phastlane/internal/mesh"
)

func TestMetricsObserve(t *testing.T) {
	m := NewMetrics(4, 4)
	m.Observe(Event{Cycle: 1, Kind: KindLaunch, MsgID: 1, Node: 0, Dir: mesh.East})
	m.Observe(Event{Cycle: 1, Kind: KindPass, MsgID: 1, Node: 1, Dir: mesh.East})
	m.Observe(Event{Cycle: 1, Kind: KindEject, MsgID: 1, Node: 2, Dir: mesh.Local})
	m.Observe(Event{Cycle: 2, Kind: KindDrop, MsgID: 2, Node: 5, Dir: mesh.North})
	m.Observe(Event{Cycle: 3, Kind: KindSwitch, MsgID: 3, Node: 5, Dir: mesh.South})
	m.Observe(Event{Cycle: 3, Kind: KindLaunch, MsgID: 4, Node: 9, Dir: mesh.Local}) // electrical NIC launch: no link

	if got := m.Count(KindLaunch, 0); got != 1 {
		t.Errorf("launches at node 0 = %d, want 1", got)
	}
	if got := m.Total(KindLaunch); got != 2 {
		t.Errorf("total launches = %d, want 2", got)
	}
	if got := m.Link(0, mesh.East); got != 1 {
		t.Errorf("link 0->E = %d, want 1", got)
	}
	if got := m.Link(5, mesh.South); got != 1 {
		t.Errorf("link 5->S (switch traversal) = %d, want 1", got)
	}
	// Drops and Local-directed launches must not count as link use.
	util := m.LinkUtilization()
	if util[5] != 1 || util[9] != 0 {
		t.Errorf("utilization = %v", util)
	}
	if !m.Equal(m) {
		t.Error("metrics not equal to itself")
	}
	if m.Equal(NewMetrics(4, 4)) {
		t.Error("non-empty metrics equal to empty")
	}
}

func TestMetricsTableAndHeatmap(t *testing.T) {
	m := NewMetrics(2, 2)
	m.Observe(Event{Kind: KindLaunch, Node: 3, Dir: mesh.West})
	m.Observe(Event{Kind: KindDrop, Node: 0, Dir: mesh.North})
	tab := m.Table("optical")
	if len(tab.Rows) != 4 {
		t.Fatalf("table rows = %d, want 4", len(tab.Rows))
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "network,node,x,y,launch") {
		t.Errorf("CSV header missing: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if !strings.Contains(csv, "optical,3,1,1,1") {
		t.Errorf("CSV row for node 3 missing:\n%s", csv)
	}
	hm := m.UtilizationHeatmap("optical")
	if !strings.Contains(hm, "max 1") {
		t.Errorf("heatmap missing max: %s", hm)
	}
	if lines := strings.Split(strings.TrimSpace(hm), "\n"); len(lines) != 4 { // title + 2 rows + scale
		t.Errorf("heatmap has %d lines, want 4:\n%s", len(lines), hm)
	}
	if dh := m.DropHeatmap("optical"); !strings.Contains(dh, "drops/node") {
		t.Errorf("drop heatmap: %s", dh)
	}
	// All-zero surfaces must render without dividing by zero.
	if z := Heatmap("zeros", 2, 2, make([]int64, 4)); !strings.Contains(z, "max 0") {
		t.Errorf("zero heatmap: %s", z)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	f := NewTraceFile(&buf)
	f.Process(0, "phastlane", 2, 2)
	tr := f.Tracer(0)
	tr(Event{Cycle: 5, Kind: KindInject, MsgID: 7, Node: 1, Dir: mesh.Local})
	tr(Event{Cycle: 5, Kind: KindLaunch, MsgID: 7, Node: 1, Dir: mesh.East})
	tr(Event{Cycle: 6, Kind: KindEject, MsgID: 7, Node: 2, Dir: mesh.Local})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Events() != 3 {
		t.Errorf("events = %d, want 3", f.Events())
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v\n%s", err, buf.String())
	}
	// 1 process_name + 4 thread_name + 3 lifecycle slices + 3 flow events.
	if n != 11 {
		t.Errorf("validated %d events, want 11", n)
	}
	if !strings.Contains(buf.String(), `"name":"launch"`) {
		t.Errorf("trace missing launch event:\n%s", buf.String())
	}
	// The lifecycle must be linked by a flow: one start at the inject,
	// steps along the way, one binding end at the eject.
	s := buf.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"t"`, `"ph":"f"`, `"bp":"e"`, `"cat":"flow"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing flow fragment %s:\n%s", want, s)
		}
	}
}

// TestTraceFileFlowAnchors: flow events only make sense bound to a
// duration slice on the same (pid, tid, ts); lifecycle events must be
// written as "X" slices and non-lifecycle kinds stay instants.
func TestTraceFileFlowAnchors(t *testing.T) {
	var buf bytes.Buffer
	f := NewTraceFile(&buf)
	tr := f.Tracer(3)
	tr(Event{Cycle: 9, Kind: KindBuffer, MsgID: 4, Node: 6, Dir: mesh.West})
	tr(Event{Cycle: 9, Kind: KindPass, MsgID: 4, Node: 7, Dir: mesh.West})
	tr(Event{Cycle: 9, Kind: KindCreditStall, MsgID: 0, Node: 7, Dir: mesh.West})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"name":"buffer","cat":"net","ph":"X"`) {
		t.Errorf("buffer event not a slice anchor:\n%s", s)
	}
	if !strings.Contains(s, `"name":"pass","cat":"net","ph":"i"`) {
		t.Errorf("pass event not an instant:\n%s", s)
	}
	// MsgID-0 events describe the topology, not one packet: no flow.
	if strings.Contains(s, `"name":"msg 0"`) {
		t.Errorf("creditstall grew a flow arrow:\n%s", s)
	}
	if f.Events() != 3 {
		t.Errorf("events = %d, want 3", f.Events())
	}
}

func TestTraceFileSliceAndThread(t *testing.T) {
	var buf bytes.Buffer
	f := NewTraceFile(&buf)
	f.ProcessName(9, "why:optical")
	f.Thread(9, 0, "msg 12 (140 cyc)")
	f.Slice(9, 0, "vc-alloc-wait", 100, 40, `{"node":5}`)
	f.Flow(9, 0, "s", 12, 100)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil || n != 4 {
		t.Fatalf("slice/thread trace: n=%d err=%v\n%s", n, err, buf.String())
	}
	if !strings.Contains(buf.String(), `"ph":"X","ts":100,"dur":40`) {
		t.Errorf("slice not written:\n%s", buf.String())
	}
}

func TestTraceFileEmptyAndInvalid(t *testing.T) {
	var buf bytes.Buffer
	f := NewTraceFile(&buf)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Errorf("empty trace: n=%d err=%v", n, err)
	}
	if _, err := ValidateTrace(strings.NewReader("{not json")); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := ValidateTrace(strings.NewReader(`[{"no":"phase"}]`)); err == nil {
		t.Error("trace without phase accepted")
	}
}

// TestTraceFileConcurrent exercises the shared-file locking two parallel
// networks rely on; run under -race this pins the mutex discipline.
func TestTraceFileConcurrent(t *testing.T) {
	var buf bytes.Buffer
	f := NewTraceFile(&buf)
	var wg sync.WaitGroup
	for pid := 0; pid < 2; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			tr := f.Tracer(pid)
			for i := 0; i < 100; i++ {
				tr(Event{Cycle: int64(i), Kind: KindPass, MsgID: uint64(i), Node: 0, Dir: mesh.North})
			}
		}(pid)
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil || n != 200 {
		t.Errorf("concurrent trace: n=%d err=%v", n, err)
	}
}

func TestSamplerBinning(t *testing.T) {
	s := NewSampler(16, 10)
	for c := int64(0); c < 25; c++ {
		drops := int64(0)
		if c >= 20 {
			drops = c - 19 // cumulative: 1..5 over cycles 20..24
		}
		s.Tick(c, 2, 1, 5.0, 1, drops)
	}
	bins := s.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	if bins[0].Start != 0 || bins[1].Start != 10 || bins[2].Start != 20 {
		t.Errorf("bin starts: %+v", bins)
	}
	if bins[0].Delivered != 20 || bins[0].Completed != 10 || bins[0].Drops != 0 {
		t.Errorf("bin 0: %+v", bins[0])
	}
	if bins[2].Delivered != 10 || bins[2].Drops != 5 {
		t.Errorf("bin 2: %+v", bins[2])
	}
	if got := bins[0].MeanLatency(); got != 5.0 {
		t.Errorf("mean latency = %v, want 5", got)
	}
	series := s.Series("net")
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	// Throughput of a full bin: 2 deliveries/cycle over 16 nodes.
	if got := series[0].Y[0]; got != 2.0/16 {
		t.Errorf("throughput = %v", got)
	}
	tab := s.Table("net")
	if len(tab.Rows) != 3 {
		t.Errorf("table rows = %d, want 3", len(tab.Rows))
	}
	if !s.Equal(s) {
		t.Error("sampler not equal to itself")
	}
	if s.Equal(NewSampler(16, 10)) {
		t.Error("sampler equal to empty")
	}
}

func TestSamplerGap(t *testing.T) {
	// A quiet drain period must produce empty bins, not a crash.
	s := NewSampler(4, 5)
	s.Tick(0, 1, 0, 0, 1, 0)
	s.Tick(17, 1, 1, 3, 0, 2)
	bins := s.Bins()
	if len(bins) != 4 {
		t.Fatalf("bins = %d, want 4 (two quiet gaps)", len(bins))
	}
	if bins[1].Delivered != 0 || bins[2].Delivered != 0 {
		t.Errorf("gap bins not empty: %+v", bins)
	}
	if bins[3].Drops != 2 {
		t.Errorf("drop delta lost: %+v", bins[3])
	}
}

func TestCollectorTracer(t *testing.T) {
	var nilC *Collector
	if nilC.Tracer() != nil {
		t.Error("nil collector has a tracer")
	}
	if (&Collector{}).Tracer() != nil {
		t.Error("empty collector has a tracer")
	}
	m := NewMetrics(2, 2)
	var traced int
	c := &Collector{Metrics: m, Trace: func(Event) { traced++ }}
	tr := c.Tracer()
	tr(Event{Kind: KindLaunch, Node: 0, Dir: mesh.East})
	if traced != 1 || m.Total(KindLaunch) != 1 {
		t.Errorf("fan-out failed: traced=%d launches=%d", traced, m.Total(KindLaunch))
	}
	if (&Collector{}).Attach(struct{}{}) {
		t.Error("attach with no tracer succeeded")
	}
	if c.Attach(42) {
		t.Error("attach to non-traceable succeeded")
	}
}

func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) != nil")
	}
	var a, b int
	fa := func(Event) { a++ }
	fb := func(Event) { b++ }
	Tee(fa, nil)(Event{})
	Tee(nil, fb)(Event{})
	Tee(fa, fb)(Event{})
	if a != 2 || b != 2 {
		t.Errorf("tee fan-out: a=%d b=%d, want 2 2", a, b)
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	e := Event{Cycle: 12, Kind: KindLaunch, MsgID: 3, Node: 27, Dir: mesh.North}
	if got := e.String(); got != "c12 launch msg3 @27->N" {
		t.Errorf("event string = %q", got)
	}
}
