package obs

import "testing"

// TestSamplerPartialFinalWindow pins the trailing-bin contract: a run
// ending mid-window still exposes the partial window, with its counts,
// as the last bin.
func TestSamplerPartialFinalWindow(t *testing.T) {
	s := NewSampler(64, 100)
	for cycle := int64(0); cycle < 250; cycle++ {
		s.Tick(cycle, 2, 1, 10, 3, 0)
	}
	bins := s.Bins()
	if len(bins) != 3 {
		t.Fatalf("250 cycles over window 100 produced %d bins, want 3 (2 full + 1 partial)", len(bins))
	}
	for i, want := range []int64{0, 100, 200} {
		if bins[i].Start != want {
			t.Errorf("bin %d starts at %d, want %d", i, bins[i].Start, want)
		}
	}
	if full := bins[0]; full.Delivered != 200 || full.Injected != 300 || full.Completed != 100 {
		t.Errorf("full window = %+v, want 100 cycles' worth of counts", full)
	}
	if partial := bins[2]; partial.Delivered != 100 || partial.Injected != 150 {
		t.Errorf("partial window = %+v, want 50 cycles' worth of counts", partial)
	}
}

// TestSamplerWindowLargerThanRun: a run shorter than one window yields
// exactly one (partial) bin holding the whole run.
func TestSamplerWindowLargerThanRun(t *testing.T) {
	s := NewSampler(64, 10_000)
	for cycle := int64(0); cycle < 37; cycle++ {
		s.Tick(cycle, 1, 0, 0, 1, 0)
	}
	bins := s.Bins()
	if len(bins) != 1 {
		t.Fatalf("37-cycle run with window 10000 produced %d bins, want 1", len(bins))
	}
	if bins[0].Start != 0 || bins[0].Delivered != 37 || bins[0].Injected != 37 {
		t.Errorf("lone bin = %+v, want the whole run at start 0", bins[0])
	}
}

// TestSamplerZeroLengthRun: a sampler that never ticked reports no bins
// at all — not a spurious empty window.
func TestSamplerZeroLengthRun(t *testing.T) {
	s := NewSampler(64, 100)
	if bins := s.Bins(); len(bins) != 0 {
		t.Errorf("unticked sampler reports %d bins, want 0: %+v", len(bins), bins)
	}
	if !s.Equal(NewSampler(64, 100)) {
		t.Error("two unticked samplers compare unequal")
	}
}

// TestSamplerExactWindowBoundary: a run ending exactly on a window
// boundary exposes the last full window plus an empty partial for the
// boundary cycle's window only once the next cycle arrives — ending at
// cycle Window-1 yields exactly one bin.
func TestSamplerExactWindowBoundary(t *testing.T) {
	s := NewSampler(64, 100)
	for cycle := int64(0); cycle < 100; cycle++ {
		s.Tick(cycle, 1, 0, 0, 0, 0)
	}
	bins := s.Bins()
	if len(bins) != 1 {
		t.Fatalf("run of exactly one window produced %d bins, want 1", len(bins))
	}
	if bins[0].Delivered != 100 {
		t.Errorf("boundary bin delivered %d, want 100", bins[0].Delivered)
	}
	// One more cycle rotates the full window out and opens the next.
	s.Tick(100, 1, 0, 0, 0, 0)
	bins = s.Bins()
	if len(bins) != 2 || bins[1].Start != 100 || bins[1].Delivered != 1 {
		t.Errorf("bins after boundary tick = %+v, want full window plus fresh partial", bins)
	}
}
