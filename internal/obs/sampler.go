package obs

import (
	"fmt"

	"phastlane/internal/stats"
)

// Bin is one cycle window of a run's time series.
type Bin struct {
	// Start is the first cycle of the window.
	Start int64
	// Delivered counts per-destination arrivals in the window (all
	// phases, including warmup).
	Delivered int64
	// Completed counts measured messages fully delivered in the
	// window; LatencySum is their summed latency (cycles).
	Completed  int64
	LatencySum float64
	// Injected counts messages accepted by NICs in the window.
	Injected int64
	// Drops counts packet drops in the window.
	Drops int64
}

// MeanLatency returns the window's mean completed-message latency, or 0.
func (b Bin) MeanLatency() float64 {
	if b.Completed == 0 {
		return 0
	}
	return b.LatencySum / float64(b.Completed)
}

// Sampler accumulates cycle-windowed time series during a harness run.
// The sim harness calls Tick once per cycle; the sampler rotates bins
// every Window cycles. Not goroutine-safe: one Sampler per run.
type Sampler struct {
	// Window is the bin width in cycles.
	Window int64
	// Nodes normalises throughput to packets/node/cycle.
	Nodes int

	bins      []Bin
	cur       Bin
	started   bool
	lastDrops int64
}

// DefaultWindow is the bin width used when none is given.
const DefaultWindow = 1000

// NewSampler builds a sampler for a nodes-node network; window <= 0 uses
// DefaultWindow.
func NewSampler(nodes int, window int64) *Sampler {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Sampler{Window: window, Nodes: nodes}
}

// Tick records one simulated cycle: raw per-destination deliveries,
// completed measured messages with their summed latency, accepted
// injections, and the network's cumulative drop counter (the sampler
// differences it into per-window drops).
func (s *Sampler) Tick(cycle int64, delivered, completed int, latencySum float64, injected int, totalDrops int64) {
	if !s.started {
		s.started = true
		s.cur.Start = cycle - cycle%s.Window
	}
	for cycle >= s.cur.Start+s.Window {
		s.bins = append(s.bins, s.cur)
		s.cur = Bin{Start: s.cur.Start + s.Window}
	}
	s.cur.Delivered += int64(delivered)
	s.cur.Completed += int64(completed)
	s.cur.LatencySum += latencySum
	s.cur.Injected += int64(injected)
	s.cur.Drops += totalDrops - s.lastDrops
	s.lastDrops = totalDrops
}

// Bins returns every full window plus the trailing partial one (if it has
// seen any cycle).
func (s *Sampler) Bins() []Bin {
	out := append([]Bin(nil), s.bins...)
	if s.started {
		out = append(out, s.cur)
	}
	return out
}

// Equal reports whether two samplers recorded identical series.
func (s *Sampler) Equal(o *Sampler) bool {
	a, b := s.Bins(), o.Bins()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Series converts the bins into the labelled curves the figures stack
// plots: throughput (packets/node/cycle), mean latency (cycles), and
// drops per 1k cycles, each against the window's starting cycle.
func (s *Sampler) Series(prefix string) []stats.Series {
	th := stats.Series{Label: prefix + " throughput", YLabel: "pkts/node/cycle"}
	lat := stats.Series{Label: prefix + " mean latency", YLabel: "cycles"}
	dr := stats.Series{Label: prefix + " drops", YLabel: "drops/1k cycles"}
	for _, b := range s.Bins() {
		x := float64(b.Start)
		denom := float64(s.Window) * float64(s.Nodes)
		if denom > 0 {
			th.Append(x, float64(b.Delivered)/denom)
		}
		lat.Append(x, b.MeanLatency())
		dr.Append(x, float64(b.Drops)*1000/float64(s.Window))
	}
	return []stats.Series{th, lat, dr}
}

// Table renders the bins as rows, labelled with the given network name;
// Table(...).CSV() is the time-series export format.
func (s *Sampler) Table(network string) *stats.Table {
	t := &stats.Table{Columns: []string{
		"network", "cycle", "delivered", "throughput", "completed",
		"mean-latency", "injected", "drops",
	}}
	for _, b := range s.Bins() {
		th := 0.0
		if s.Window > 0 && s.Nodes > 0 {
			th = float64(b.Delivered) / float64(s.Window) / float64(s.Nodes)
		}
		t.AddRow(network,
			fmt.Sprintf("%d", b.Start),
			fmt.Sprintf("%d", b.Delivered),
			fmt.Sprintf("%.5f", th),
			fmt.Sprintf("%d", b.Completed),
			stats.F(b.MeanLatency()),
			fmt.Sprintf("%d", b.Injected),
			fmt.Sprintf("%d", b.Drops),
		)
	}
	return t
}
