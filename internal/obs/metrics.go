package obs

import (
	"fmt"
	"strings"

	"phastlane/internal/mesh"
	"phastlane/internal/stats"
)

// Metrics accumulates per-node and per-direction counter matrices from an
// Event stream. Use Observe as (or inside) a network tracer; it is not
// goroutine-safe, so give each network its own Metrics.
type Metrics struct {
	Width, Height int
	perNode       [NumKinds][]int64
	// link[node*NumLinkDirs+dir] counts packet traversals of the
	// directed link out of node toward dir (optical launches and
	// passes, electrical switch traversals).
	link []int64
}

// NewMetrics builds an empty matrix set for a width x height mesh.
func NewMetrics(width, height int) *Metrics {
	m := &Metrics{Width: width, Height: height}
	nodes := width * height
	for k := range m.perNode {
		m.perNode[k] = make([]int64, nodes)
	}
	m.link = make([]int64, nodes*mesh.NumLinkDirs)
	return m
}

// Nodes returns the node count.
func (m *Metrics) Nodes() int { return m.Width * m.Height }

// Observe folds one event into the matrices.
func (m *Metrics) Observe(e Event) {
	if e.Kind < 0 || e.Kind >= NumKinds || int(e.Node) >= m.Nodes() {
		return
	}
	m.perNode[e.Kind][e.Node]++
	if e.Dir < mesh.NumLinkDirs {
		switch e.Kind {
		case KindLaunch, KindPass, KindSwitch:
			m.link[int(e.Node)*mesh.NumLinkDirs+int(e.Dir)]++
		}
	}
}

// Count returns the per-node count of one kind.
func (m *Metrics) Count(k Kind, node mesh.NodeID) int64 { return m.perNode[k][node] }

// Total sums one kind over all nodes.
func (m *Metrics) Total(k Kind) int64 {
	var sum int64
	for _, v := range m.perNode[k] {
		sum += v
	}
	return sum
}

// PerNode returns the per-node vector of one kind (live slice, do not
// mutate).
func (m *Metrics) PerNode(k Kind) []int64 { return m.perNode[k] }

// Link returns traversals of the directed link out of node toward d.
func (m *Metrics) Link(node mesh.NodeID, d mesh.Dir) int64 {
	return m.link[int(node)*mesh.NumLinkDirs+int(d)]
}

// LinkUtilization returns, per node, the total traversals of its four
// outgoing links - the utilization surface the heatmap renders.
func (m *Metrics) LinkUtilization() []int64 {
	out := make([]int64, m.Nodes())
	for n := range out {
		for d := 0; d < mesh.NumLinkDirs; d++ {
			out[n] += m.link[n*mesh.NumLinkDirs+d]
		}
	}
	return out
}

// Equal reports whether two matrix sets hold identical counts - the
// determinism tests' comparison.
func (m *Metrics) Equal(o *Metrics) bool {
	if m.Width != o.Width || m.Height != o.Height {
		return false
	}
	for k := range m.perNode {
		for n, v := range m.perNode[k] {
			if o.perNode[k][n] != v {
				return false
			}
		}
	}
	for i, v := range m.link {
		if o.link[i] != v {
			return false
		}
	}
	return true
}

// tableKinds are the columns of the CSV/table export, in lifecycle order.
var tableKinds = []Kind{
	KindLaunch, KindPass, KindTap, KindEject, KindBuffer, KindDrop,
	KindRetry, KindVCAlloc, KindSwitch, KindCreditStall, KindTreeFork,
}

// Table renders the matrices as one row per node, labelled with the given
// network name; Table(...).CSV() is the -metrics-out format.
func (m *Metrics) Table(network string) *stats.Table {
	cols := []string{"network", "node", "x", "y"}
	for _, k := range tableKinds {
		cols = append(cols, k.String())
	}
	cols = append(cols, "linkN", "linkE", "linkS", "linkW")
	t := &stats.Table{Columns: cols}
	for n := 0; n < m.Nodes(); n++ {
		cells := []string{
			network,
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n%m.Width),
			fmt.Sprintf("%d", n/m.Width),
		}
		for _, k := range tableKinds {
			cells = append(cells, fmt.Sprintf("%d", m.perNode[k][n]))
		}
		for d := 0; d < mesh.NumLinkDirs; d++ {
			cells = append(cells, fmt.Sprintf("%d", m.link[n*mesh.NumLinkDirs+d]))
		}
		t.AddRow(cells...)
	}
	return t
}

// heatRamp shades cells from idle to saturated.
var heatRamp = []byte(" .:-=+*#%@")

// Heatmap renders a per-node value surface as a width x height ASCII grid
// (row 0 at the top, matching mesh coordinates), with a scale legend.
func Heatmap(title string, width, height int, values []int64) string {
	var max int64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %d)\n", title, max)
	for y := 0; y < height; y++ {
		b.WriteString("  ")
		for x := 0; x < width; x++ {
			v := values[y*width+x]
			idx := 0
			if max > 0 {
				idx = int(v * int64(len(heatRamp)-1) / max)
			}
			c := heatRamp[idx]
			b.WriteByte(c)
			b.WriteByte(c)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  scale: '%c'=0", heatRamp[0])
	if max > 0 {
		fmt.Fprintf(&b, " ... '%c'=%d", heatRamp[len(heatRamp)-1], max)
	}
	b.WriteByte('\n')
	return b.String()
}

// UtilizationHeatmap renders the outgoing-link utilization surface.
func (m *Metrics) UtilizationHeatmap(network string) string {
	return Heatmap(fmt.Sprintf("%s link utilization (traversals/node)", network),
		m.Width, m.Height, m.LinkUtilization())
}

// DropHeatmap renders the per-node drop surface.
func (m *Metrics) DropHeatmap(network string) string {
	return Heatmap(fmt.Sprintf("%s drops/node", network),
		m.Width, m.Height, m.perNode[KindDrop])
}
