package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceFile streams Events as Chrome trace-event JSON, the format
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load directly.
// The output is line-oriented - one event object per line inside a JSON
// array - so tools can both decode the whole file as JSON and grep
// individual events. Each network writes under its own pid; each router
// is a thread, so the trace UI shows one swimlane per node. Cycles are
// reported as microseconds (1 cycle = 1us) for readable zoom levels.
//
// TraceFile serialises writes internally, so tracers of concurrently
// simulated networks may share one file; event order across networks is
// then scheduling-dependent, which trace viewers do not care about.
type TraceFile struct {
	mu     sync.Mutex
	w      io.Writer
	events int64
	opened bool
	closed bool
	err    error
}

// NewTraceFile starts a trace stream on w.
func NewTraceFile(w io.Writer) *TraceFile { return &TraceFile{w: w} }

// write emits one raw line, handling the array framing and comma rules.
// Callers hold mu.
func (f *TraceFile) write(line string) {
	if f.err != nil || f.closed {
		return
	}
	prefix := ",\n"
	if !f.opened {
		prefix = "[\n"
		f.opened = true
	}
	if _, err := io.WriteString(f.w, prefix+line); err != nil {
		f.err = err
	}
}

// Process registers a named process (one simulated network) and labels a
// thread per node, so the trace UI shows "node 12 (4,1)" swimlanes.
func (f *TraceFile) Process(pid int, name string, width, height int) {
	f.ProcessNodes(pid, name, width*height, func(n int) string {
		return fmt.Sprintf("%d (%d,%d)", n, n%width, n/width)
	})
}

// ProcessNodes registers a named process and labels a thread per node
// using the supplied naming function — typically a topo.Topology's
// NodeLabel, so non-mesh fabrics get fabric-native swimlane names.
func (f *TraceFile) ProcessNodes(pid int, name string, nodes int, label func(n int) string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.write(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, name))
	for n := 0; n < nodes; n++ {
		f.write(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"node %s"}}`,
			pid, n, label(n)))
	}
}

// ProcessName labels a process without node threads; per-packet
// provenance tracks name their own swimlanes through Thread.
func (f *TraceFile) ProcessName(pid int, name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.write(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, name))
}

// Thread labels one swimlane under pid.
func (f *TraceFile) Thread(pid, tid int, name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.write(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, pid, tid, name))
}

// Slice emits a complete-duration event ("ph":"X") of dur cycles.
// argsJSON, when non-empty, must be a complete JSON object literal.
func (f *TraceFile) Slice(pid, tid int, name string, ts, dur int64, argsJSON string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	line := fmt.Sprintf(`{"name":%q,"cat":"prov","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d`, name, ts, dur, pid, tid)
	if argsJSON != "" {
		line += `,"args":` + argsJSON
	}
	f.write(line + "}")
}

// Flow emits one flow event: step is "s" (start), "t" (step) or "f"
// (end). Flow events bind to the duration slice enclosing ts on
// (pid, tid), which is why Tracer anchors lifecycle events as 1-cycle
// slices. Callers hold no lock.
func (f *TraceFile) Flow(pid, tid int, step string, id uint64, ts int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flowLocked(pid, tid, step, id, ts)
}

// flowLocked writes a flow event; callers hold mu. Flow ids are
// namespaced by pid so the same message traced by two networks in one
// file does not grow arrows across processes.
func (f *TraceFile) flowLocked(pid, tid int, step string, id uint64, ts int64) {
	line := fmt.Sprintf(`{"name":"msg %d","cat":"flow","ph":%q,"id":%d,"ts":%d,"pid":%d,"tid":%d`,
		id, step, flowID(pid, id), ts, pid, tid)
	if step == "f" {
		line += `,"bp":"e"`
	}
	f.write(line + "}")
}

// flowID namespaces a message's flow arrows per process.
func flowID(pid int, msgID uint64) uint64 { return uint64(pid+1)<<48 ^ msgID }

// flowStep maps lifecycle kinds to the flow phase that links a packet's
// inject through its intermediate stops to its ejection; other kinds
// (pass, switch, stalls) stay plain instants to keep traces lean.
func flowStep(k Kind) (string, bool) {
	switch k {
	case KindInject:
		return "s", true
	case KindLaunch, KindBuffer, KindDrop, KindRetry:
		return "t", true
	case KindEject, KindTap:
		return "f", true
	}
	return "", false
}

// Tracer returns a network tracer that records every event under pid.
// Lifecycle events (inject, launch, buffer, drop, retry, eject, tap) are
// written as 1-cycle slices carrying a flow event, so the trace UI draws
// arrows from a packet's injection through every stop to its ejection;
// all other kinds remain instant events. Events() counts router events,
// not JSON objects.
func (f *TraceFile) Tracer(pid int) func(Event) {
	return func(e Event) {
		f.mu.Lock()
		if step, ok := flowStep(e.Kind); ok && e.MsgID != 0 {
			f.write(fmt.Sprintf(`{"name":%q,"cat":"net","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d,"args":{"msg":%d,"dir":%q}}`,
				e.Kind.String(), e.Cycle, pid, e.Node, e.MsgID, e.Dir.String()))
			f.flowLocked(pid, int(e.Node), step, e.MsgID, e.Cycle)
		} else {
			f.write(fmt.Sprintf(`{"name":%q,"cat":"net","ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"msg":%d,"dir":%q}}`,
				e.Kind.String(), e.Cycle, pid, e.Node, e.MsgID, e.Dir.String()))
		}
		f.events++
		f.mu.Unlock()
	}
}

// Events returns the number of events recorded so far.
func (f *TraceFile) Events() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.events
}

// Close terminates the JSON array; the file is complete and valid after
// Close returns. It reports any write error seen along the way.
func (f *TraceFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		if !f.opened {
			// An empty trace is still a valid (empty) array.
			if _, err := io.WriteString(f.w, "["); err != nil && f.err == nil {
				f.err = err
			}
			f.opened = true
		}
		if _, err := io.WriteString(f.w, "\n]\n"); err != nil && f.err == nil {
			f.err = err
		}
		f.closed = true
	}
	return f.err
}

// ValidateTrace decodes a trace stream written by TraceFile and returns
// the number of event objects (including metadata events). It fails if the
// file is not a JSON array of objects each carrying a "ph" phase - the
// check the CI smoke step runs on cmd/inspect output.
func ValidateTrace(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, fmt.Errorf("obs: trace is not a JSON event array: %w", err)
	}
	for i, e := range events {
		if _, ok := e["ph"].(string); !ok {
			return 0, fmt.Errorf("obs: trace event %d has no phase field", i)
		}
	}
	return len(events), nil
}
