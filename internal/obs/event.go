// Package obs is the unified observability layer shared by the Phastlane
// optical simulator and the electrical baseline. Both networks report
// router-level actions through one Event vocabulary; obs turns that stream
// into per-node/per-direction counter matrices (Metrics), cycle-windowed
// time series (Sampler), and Chrome/Perfetto trace-event exports
// (TraceFile). Everything is strictly zero-cost when off: networks guard
// every emission behind a nil tracer check, and the sim harness only feeds
// a Sampler when a Collector is installed.
package obs

import (
	"fmt"

	"phastlane/internal/mesh"
)

// Kind classifies a router-level event. The first block is the Phastlane
// optical lifecycle (launch through retry); the second block is the
// electrical baseline's virtual-channel router vocabulary. Both networks
// share Buffer, Eject and Launch so cross-network matrices line up.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// KindLaunch: a packet leaves a buffer (or the NIC) toward the
	// network. Optical: onto its first link of the cycle (Dir is the
	// outgoing link). Electrical: the NIC head enters a local-port
	// virtual channel (Dir is Local).
	KindLaunch Kind = iota
	// KindPass: the packet transits an optical router toward another
	// output without stopping.
	KindPass
	// KindTap: a multicast tap delivers a copy to the local node while
	// the optical packet continues.
	KindTap
	// KindEject: the packet leaves the network at a destination.
	KindEject
	// KindBuffer: the packet is captured into an input-port buffer
	// (optical: blocked or interim stop; electrical: a link arrival
	// occupies its reserved virtual channel).
	KindBuffer
	// KindDrop: an optical buffer was full; the drop signal returns to
	// the responsible sender.
	KindDrop
	// KindRetry: the dropped packet re-enters its owner's queue after
	// backoff.
	KindRetry
	// KindVCAlloc: the electrical router's VC allocator granted a
	// downstream virtual channel toward Dir.
	KindVCAlloc
	// KindSwitch: an electrical flit traversed the crossbar and the
	// link toward Dir.
	KindSwitch
	// KindCreditStall: an electrical output port had requests but no
	// free downstream VC this cycle (credit starvation). MsgID is 0;
	// the event counts the (node, port) stall, not one packet.
	KindCreditStall
	// KindTreeFork: a VCTM multicast packet replicated at a branch
	// router (more than one onward branch).
	KindTreeFork
	// KindFault: a scheduled hardware fault activated (or healed) at
	// Node; Dir names the affected link for link-level faults. MsgID is
	// 0 — the event describes the topology, not one packet.
	KindFault
	// KindCorrupt: control-bit corruption (resonator drift) hit the
	// packet at Node; the router misroutes or spuriously drops it.
	KindCorrupt
	// KindUnreachable: a relaunch found no usable route from Node to
	// the packet's destination under the current fault set.
	KindUnreachable
	// KindStarve: the delivery watchdog found the packet stuck (queued
	// far beyond the starvation threshold) at Node.
	KindStarve
	// KindLost: the delivery layer abandoned the packet at Node (retry
	// budget exhausted or loss timeout exceeded) and reported it lost.
	KindLost
	// KindInject: the NIC at Node accepted the message from the harness.
	// Emitted exactly once per message by both simulators, it anchors
	// per-packet latency provenance: the gap to the first launch is the
	// source-queue wait. (Declared after the lifecycle kinds so existing
	// kind values stay stable.)
	KindInject

	// NumKinds bounds Kind for dense per-kind arrays.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLaunch:
		return "launch"
	case KindPass:
		return "pass"
	case KindTap:
		return "tap"
	case KindEject:
		return "eject"
	case KindBuffer:
		return "buffer"
	case KindDrop:
		return "drop"
	case KindRetry:
		return "retry"
	case KindVCAlloc:
		return "vcalloc"
	case KindSwitch:
		return "switch"
	case KindCreditStall:
		return "creditstall"
	case KindTreeFork:
		return "treefork"
	case KindFault:
		return "fault"
	case KindCorrupt:
		return "corrupt"
	case KindUnreachable:
		return "unreachable"
	case KindStarve:
		return "starve"
	case KindLost:
		return "lost"
	case KindInject:
		return "inject"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one traced router action.
type Event struct {
	Cycle int64
	Kind  Kind
	MsgID uint64
	// Node is where the event happened; Dir its outgoing direction
	// (meaningful for launch/pass/switch/vcalloc; Local otherwise).
	Node mesh.NodeID
	Dir  mesh.Dir
}

// String renders the event compactly, e.g. "c12 launch msg3 @27->N".
func (e Event) String() string {
	return fmt.Sprintf("c%d %s msg%d @%d->%s", e.Cycle, e.Kind, e.MsgID, e.Node, e.Dir)
}

// Traceable is implemented by networks that can emit Events; both
// simulators satisfy it. A nil tracer disables tracing entirely.
type Traceable interface {
	SetTracer(func(Event))
}
