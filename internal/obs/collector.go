package obs

// Collector bundles the optional observers of one run. Any field may be
// nil; a fully nil Collector (or a nil *Collector) observes nothing and
// costs nothing. The sim harness installs Tracer() on the network when it
// is non-nil and drives the Sampler once per cycle.
type Collector struct {
	// Metrics accumulates per-node counter matrices from the event
	// stream.
	Metrics *Metrics
	// Sampler records cycle-windowed time series (fed by the harness,
	// not the event stream).
	Sampler *Sampler
	// Trace receives every event, typically TraceFile.Tracer(pid).
	Trace func(Event)
}

// Tracer returns the event callback to install on a network: the fan-out
// over Metrics and Trace, or nil when neither is set so tracing stays
// completely off.
func (c *Collector) Tracer() func(Event) {
	if c == nil {
		return nil
	}
	switch {
	case c.Metrics != nil && c.Trace != nil:
		return func(e Event) {
			c.Metrics.Observe(e)
			c.Trace(e)
		}
	case c.Metrics != nil:
		return c.Metrics.Observe
	case c.Trace != nil:
		return c.Trace
	default:
		return nil
	}
}

// Tee composes two event callbacks into one, tolerating nils: with one
// side nil the other is returned directly (no wrapper cost), with both
// nil the result is nil so tracing stays completely off. The sim harness
// uses it to feed a provenance tracker next to a Collector's tracer.
func Tee(a, b func(Event)) func(Event) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(e Event) {
		a(e)
		b(e)
	}
}

// Attach installs the collector's tracer on net if the network supports
// tracing, reporting whether events will flow. A nil collector or a
// network without instrumentation leaves net untouched.
func (c *Collector) Attach(net any) bool {
	tr := c.Tracer()
	if tr == nil {
		return false
	}
	t, ok := net.(Traceable)
	if !ok {
		return false
	}
	t.SetTracer(tr)
	return true
}
