// Package phastlane reproduces "Phastlane: A Rapid Transit Optical Routing
// Network" (Cianchetti, Kerekes, Albonesi, ISCA 2009): a hybrid
// electrical/optical network-on-chip whose packets carry predecoded
// source-routing control bits on dedicated wavelengths, letting unblocked
// packets transit several routers per 4 GHz clock cycle.
//
// The repository contains, under internal/:
//
//   - core: the cycle-accurate Phastlane network simulator,
//   - electrical: the Table 2 virtual-channel baseline (iSLIP, VCTM),
//   - photonic: the Section 3 device, latency, power and area models,
//   - coherence: the 64-core snoopy-MSI SPLASH2 workload substrate,
//   - figures: regeneration of every table and figure in the evaluation,
//
// plus runnable tools under cmd/, examples under examples/, and one
// top-level benchmark per table and figure in bench_test.go. See README.md
// for a tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-versus-measured results.
package phastlane
